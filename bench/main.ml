(* The reproduction harness: regenerates every figure of the paper's
   evaluation (Sec. VII) plus the two worked examples, then runs Bechamel
   micro-benchmarks of the solver kernels.

   Figures are reproduced at bench scale by default (see EXPERIMENTS.md for
   the calibration; `bin/postcard_sim --scale paper` runs the paper's exact
   20-datacenter setting). Output is plain text, one section per figure. *)

module Graph = Netgraph.Graph
module File = Postcard.File

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

(* Every macro-benchmark draws its schedulers from the registry; the
   names here are canonical, so a lookup failure is a build bug. *)
let factory_exn name =
  match Postcard.Scheduler.factory name with
  | Some f -> f
  | None -> invalid_arg ("bench: no registered scheduler " ^ name)

let factories names = List.map factory_exn names

(* ------------------------------------------------------------------ *)
(* Worked examples (Fig. 1 and Fig. 3): exact optima. *)

let fig1 () =
  section "Fig. 1 — motivating example (3 DCs, one 6 MB file, 3 intervals)";
  let base = Graph.create ~n:3 in
  ignore (Graph.add_arc base ~src:1 ~dst:2 ~capacity:1000. ~cost:10. ());
  ignore (Graph.add_arc base ~src:1 ~dst:0 ~capacity:1000. ~cost:1. ());
  ignore (Graph.add_arc base ~src:0 ~dst:2 ~capacity:1000. ~cost:3. ());
  let file = File.make ~id:0 ~src:1 ~dst:2 ~size:6. ~deadline:3 ~release:0 in
  let program =
    Postcard.Formulate.create ~base
      ~charged:(Array.make 3 0.)
      ~capacity:(fun ~link:_ ~layer:_ -> 1000.)
      ~files:[ file ] ~epoch:0 ()
  in
  let postcard_cost =
    match Postcard.Formulate.solve program with
    | Postcard.Formulate.Scheduled { objective; _ } -> objective
    | Postcard.Formulate.Infeasible | Postcard.Formulate.Solver_failure _ ->
        nan
  in
  Format.printf "  %-28s %10s %10s@." "strategy" "paper" "measured";
  Format.printf "  %-28s %10.0f %10.0f@." "direct send" 20. (10. *. File.rate file);
  Format.printf "  %-28s %10.0f %10.2f@." "postcard (relay + schedule)" 12.
    postcard_cost

let fig3 () =
  section "Fig. 3 — Sec. V worked example (4 DCs, 2 files, capacity 5)";
  let costs =
    [| [| 0.; 1.; 5.; 6. |];
       [| 1.; 0.; 4.; 11. |];
       [| 5.; 4.; 0.; 6. |];
       [| 6.; 11.; 6.; 0. |] |]
  in
  let base = Netgraph.Topology.of_cost_matrix ~capacity:5. costs in
  let m = Graph.num_arcs base in
  let files =
    [ File.make ~id:1 ~src:1 ~dst:3 ~size:8. ~deadline:4 ~release:0;
      File.make ~id:2 ~src:0 ~dst:3 ~size:10. ~deadline:2 ~release:0 ]
  in
  let postcard_cost =
    let program =
      Postcard.Formulate.create ~base ~charged:(Array.make m 0.)
        ~capacity:(fun ~link:_ ~layer:_ -> 5.)
        ~files ~epoch:0 ()
    in
    match Postcard.Formulate.solve program with
    | Postcard.Formulate.Scheduled { objective; _ } -> objective
    | Postcard.Formulate.Infeasible | Postcard.Formulate.Solver_failure _ ->
        nan
  in
  let flow_cost =
    let inst =
      { Postcard.Flow_baseline.base;
        cap = Array.make m 5.;
        occ_peak = Array.make m 0.;
        charged = Array.make m 0. }
    in
    match Postcard.Flow_baseline.solve_two_stage inst ~files with
    | Some flows -> flows.Postcard.Flow_baseline.estimated_cost
    | None -> nan
  in
  Format.printf "  %-28s %10s %10s@." "strategy" "paper" "measured";
  Format.printf "  %-28s %10.0f %10.2f@." "direct send" 52. 52.;
  Format.printf "  %-28s %10.0f %10.2f@." "flow-based (Sec. II-B)" 50. flow_cost;
  Format.printf "  %-28s %10.2f %10.2f@." "postcard" 32.67 postcard_cost

(* ------------------------------------------------------------------ *)
(* Figs. 4-7: the randomized evaluation at bench scale. *)

let figure ~pool n =
  let setting = Sim.Experiment.scaled_figure n in
  section (Printf.sprintf "Fig. %d — %s" n setting.Sim.Experiment.label);
  let schedulers = factories [ "postcard"; "flow-based"; "direct" ] in
  let results = Sim.Experiment.run_setting ~pool setting ~schedulers in
  Format.printf "%a@." Sim.Report.print_summary results;
  Format.printf "%t"
    (fun ppf ->
      Sim.Report.print_comparison ppf ~baseline:"flow-based"
        ~contender:"postcard" results);
  results

let check_figure_shapes results4 results5 results6 results7 =
  section "Shape checks (paper claims vs measured)";
  let cost results name =
    (Sim.Experiment.find_summary_exn results name).Sim.Experiment.mean_cost
  in
  let verdict ok = if ok then "OK " else "MISS" in
  let p4 = cost results4 "postcard" and f4 = cost results4 "flow-based" in
  let p5 = cost results5 "postcard" and f5 = cost results5 "flow-based" in
  let p6 = cost results6 "postcard" and f6 = cost results6 "flow-based" in
  let p7 = cost results7 "postcard" and f7 = cost results7 "flow-based" in
  Format.printf "  [%s] fig4: flow-based wins with ample capacity (%.0f < %.0f)@."
    (verdict (f4 < p4)) f4 p4;
  Format.printf "  [%s] fig5: flow-based wins with ample capacity (%.0f < %.0f)@."
    (verdict (f5 < p5)) f5 p5;
  Format.printf
    "  [%s] fig6/7: postcard improves relative to flow when capacity throttles (%.2f -> %.2f)@."
    (verdict (p6 /. f6 < p4 /. f4 && p7 /. f7 < p5 /. f5))
    (p4 /. f4) (p6 /. f6);
  Format.printf
    "  [%s] postcard's cost falls with more delay tolerance (fig4 %.0f -> fig5 %.0f, fig6 %.0f -> fig7 %.0f)@."
    (verdict (p5 < p4 && p7 < p6))
    p4 p5 p6 p7;
  Format.printf
    "  [%s] throttled-capacity dominance (paper: postcard wins at c=30; measured ratios %.2f, %.2f — see EXPERIMENTS.md)@."
    (verdict (p6 < f6 && p7 < f7))
    (p6 /. f6) (p7 /. f7)

(* ------------------------------------------------------------------ *)
(* Ablations. *)

let ablation_flow_variants ~pool () =
  section "Ablation — flow-baseline variants (literal vs excess vs joint)";
  let setting =
    { (Sim.Experiment.scaled_figure 6) with Sim.Experiment.runs = 3 }
  in
  let schedulers = factories [ "flow-based"; "flow-excess"; "flow-joint" ] in
  let results = Sim.Experiment.run_setting ~pool setting ~schedulers in
  Format.printf "%a@." Sim.Report.print_summary results;
  Format.printf
    "  The literal Sec. II-B decomposition cannot beat the joint LP; the gap@.";
  Format.printf "  measures what the paper's decomposition gives away.@."

let ablation_greedy_vs_lp ~pool () =
  section "Ablation — exact LP vs combinatorial greedy (speed/quality)";
  let setting =
    { (Sim.Experiment.scaled_figure 6) with Sim.Experiment.runs = 3 }
  in
  let schedulers = factories [ "postcard"; "greedy-snf" ] in
  let t0 = Unix.gettimeofday () in
  let results = Sim.Experiment.run_setting ~pool setting ~schedulers in
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.printf "%a@." Sim.Report.print_summary results;
  Format.printf "%t"
    (fun ppf ->
      Sim.Report.print_comparison ppf ~baseline:"postcard"
        ~contender:"greedy-snf" results);
  Format.printf "  (both schedulers, %d runs: %.1f s total)@."
    setting.Sim.Experiment.runs elapsed;
  Format.printf
    "  greedy-snf routes one min-cost flow per file instead of one LP per@.";
  Format.printf "  epoch; the ratio above is the price of that shortcut.@."

let ablation_price_of_myopia () =
  section "Ablation — price of myopia (online Postcard vs clairvoyant)";
  let nodes = 6 and slots = 15 in
  Format.printf "  %-6s %14s %14s %8s@." "seed" "online cost" "offline cost"
    "ratio";
  let ratios = ref [] in
  List.iter
    (fun seed ->
      let rng = Prelude.Rng.of_int (seed * 7919) in
      let base =
        Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
          ~capacity:40.
      in
      let spec =
        { (Sim.Workload.paper_spec ~nodes ~files_max:3 ~max_deadline:4) with
          Sim.Workload.size_min = 5.;
          size_max = 25.;
          deadlines = Sim.Workload.Uniform_deadline (2, 4) }
      in
      let all_files = ref [] in
      let collector = Sim.Workload.create spec (Prelude.Rng.of_int seed) in
      for slot = 0 to slots - 1 do
        all_files := !all_files @ Sim.Workload.arrivals collector ~slot
      done;
      let outcome =
        Sim.Engine.(
          run
            (make ~base
               ~scheduler:(Postcard.Postcard_scheduler.make ())
               ~workload:(Sim.Workload.create spec (Prelude.Rng.of_int seed))
               ~slots ()))
      in
      let online = outcome.Sim.Engine.cost_series.(slots - 1) in
      match Postcard.Offline.solve ~base ~files:!all_files () with
      | Error msg -> Format.printf "  %-6d offline failed: %s@." seed msg
      | Ok r ->
          let ratio =
            Postcard.Offline.price_of_myopia ~base ~online_cost:online
              ~offline:r
          in
          ratios := ratio :: !ratios;
          Format.printf "  %-6d %14.1f %14.1f %8.3f@." seed online
            r.Postcard.Offline.objective ratio)
    [ 1; 2; 3 ];
  if !ratios <> [] then
    Format.printf
      "  The clairvoyant optimum lower-bounds every online policy; the mean@.\
      \  ratio (%.2f) is what the paper's online assumption itself costs.@."
      (Prelude.Stats.mean (Array.of_list !ratios))

let extension_percentile_billing () =
  section "Extension — 95th-percentile billing and burst-aware scheduling";
  let nodes = 6 and slots = 40 in
  let rng = Prelude.Rng.of_int 2027 in
  let base =
    Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
      ~capacity:50.
  in
  let spec =
    { (Sim.Workload.paper_spec ~nodes ~files_max:3 ~max_deadline:4) with
      Sim.Workload.size_min = 5.;
      size_max = 30. }
  in
  Format.printf "  %-12s %14s %14s@." "scheduler" "bill (100th)" "bill (95th)";
  List.iter
    (fun scheduler ->
      let workload = Sim.Workload.create spec (Prelude.Rng.of_int 8888) in
      let outcome =
        Sim.Engine.(run (make ~base ~scheduler ~workload ~slots ()))
      in
      let bill q =
        Sim.Engine.evaluate_cost outcome ~scheme:(Postcard.Charging.scheme q)
          ~base
      in
      Format.printf "  %-12s %14.1f %14.1f@." (Postcard.Scheduler.name scheduler)
        (bill 100.) (bill 95.))
    [ Postcard.Greedy_scheduler.make ();
      Postcard.Greedy_scheduler.make_percentile () ];
  Format.printf
    "  Under 95th-percentile billing each link's top 5%% of slots are free;@.";
  Format.printf
    "  the burst-aware scheduler concentrates overflow into those slots.@."

let ablation_deadline_heterogeneity ~pool () =
  section "Ablation — deadline heterogeneity (the Figs. 6/7 mechanism)";
  let base_setting =
    { (Sim.Experiment.scaled_figure 6) with Sim.Experiment.runs = 3 }
  in
  let schedulers = factories [ "postcard"; "flow-based" ] in
  List.iter
    (fun (label, uniform) ->
      let setting =
        { base_setting with
          Sim.Experiment.label;
          uniform_deadlines = uniform }
      in
      let results = Sim.Experiment.run_setting ~pool setting ~schedulers in
      Format.printf "%a@." Sim.Report.print_summary results)
    [ ("deadlines uniform in [1, T] (urgent + tolerant mix)", true);
      ("all deadlines = T (no heterogeneity)", false) ];
  Format.printf
    "  Urgent (deadline-1) files are what slotted store-and-forward pays@.";
  Format.printf
    "  for: they burst whole transfers into single slots and reject under@.";
  Format.printf
    "  contention, while the fluid baseline absorbs them by occupying all@.";
  Format.printf
    "  hops simultaneously. With homogeneous deadlines the two models@.";
  Format.printf "  nearly tie (see EXPERIMENTS.md).@."

(* ------------------------------------------------------------------ *)
(* Warm-start macro-benchmark: cold vs basis-crashed simplex across an
   online run (see DESIGN.md, "Warm-started LP pipeline"). *)

let solver_warm_bench ~pool ~json =
  section "Solver warm start — cold vs carried-basis simplex";
  let summary = Sim.Solver_bench.run ~nodes:6 ~slots:12 ~seed:1 ~pool () in
  Format.printf "%a" Sim.Solver_bench.pp_summary summary;
  (* The aggregate counters are recomputed from the per-slot records; a
     mismatch means the summary lies about what the solver did, so fail
     loudly rather than publish it. *)
  (match Sim.Solver_bench.reconcile summary with
   | Ok () -> ()
   | Error msg ->
       Format.eprintf
         "  BENCH FAILURE: aggregate/per-slot counters disagree: %s@." msg;
       exit 1);
  (match json with
   | None -> ()
   | Some path -> (
       match open_out path with
       | oc ->
           output_string oc (Sim.Solver_bench.to_json summary);
           close_out oc;
           Format.printf "  wrote %s@." path
       | exception Sys_error msg ->
           Format.eprintf "  cannot write JSON summary: %s@." msg;
           exit 1));
  summary

(* ------------------------------------------------------------------ *)
(* Scale sweep: cold / primal-warm / dual-reopt iteration and wall-time
   curves as the topology and horizon grow (see EXPERIMENTS.md). *)

let solver_scale_bench ~sizes ~budget_ms ~json =
  section "Solver scale sweep — cold vs primal-warm vs dual re-opt";
  let summary =
    Sim.Solver_bench.scale_sweep ?sizes ~seed:1 ?budget_ms ()
  in
  Format.printf "%a" Sim.Solver_bench.pp_scale summary;
  let total_dual_reopts =
    List.fold_left
      (fun acc p -> acc + p.Sim.Solver_bench.sp_dual_reopts)
      0 summary.Sim.Solver_bench.sc_points
  in
  if total_dual_reopts = 0 then begin
    Format.eprintf
      "  BENCH FAILURE: no slot re-optimized via the dual simplex@.";
    exit 1
  end;
  let total_dual_failures =
    List.fold_left
      (fun acc p -> acc + p.Sim.Solver_bench.sp_dual_failures)
      0 summary.Sim.Solver_bench.sc_points
  in
  if total_dual_failures > 0 then begin
    Format.eprintf "  BENCH FAILURE: %d dual re-opt solve(s) failed@."
      total_dual_failures;
    exit 1
  end;
  let worst_gap =
    List.fold_left
      (fun acc p -> max acc p.Sim.Solver_bench.sp_max_objective_gap)
      0. summary.Sim.Solver_bench.sc_points
  in
  if not (Float.is_finite worst_gap) then begin
    Format.eprintf
      "  BENCH FAILURE: solvers disagreed on feasibility (infinite \
       objective gap)@.";
    exit 1
  end;
  (match json with
   | None -> ()
   | Some path -> (
       match open_out path with
       | oc ->
           output_string oc (Sim.Solver_bench.scale_to_json summary);
           close_out oc;
           Format.printf "  wrote %s@." path
       | exception Sys_error msg ->
           Format.eprintf "  cannot write JSON summary: %s@." msg;
           exit 1))

(* ------------------------------------------------------------------ *)
(* Runner scale-out: the (run, scheduler) sweep spread over a domain
   pool vs the serial runner, on the scaled figure 4 setting. Besides
   the wall-clock ratio this checks the headline determinism contract:
   summaries must be identical for every pool size. *)

let summaries_identical a b =
  let open Sim.Experiment in
  List.length a.summaries = List.length b.summaries
  && List.for_all2
       (fun (x : scheduler_summary) (y : scheduler_summary) ->
         x.scheduler = y.scheduler
         && x.mean_cost = y.mean_cost
         && x.ci95 = y.ci95
         && x.run_costs = y.run_costs
         && x.mean_series = y.mean_series
         && x.rejected = y.rejected)
       a.summaries b.summaries

let runner_scaleout_bench ~pool ~json =
  section "Runner scale-out — serial vs domain-parallel experiment sweep";
  let setting = Sim.Experiment.scaled_figure 4 in
  let schedulers = factories [ "postcard"; "flow-based"; "direct" ] in
  let cells = Sim.Experiment.cells setting ~schedulers in
  let domains = Exec.Pool.size pool in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let serial, serial_s =
    time (fun () -> Sim.Experiment.run_setting setting ~schedulers)
  in
  let par, parallel_s =
    time (fun () -> Sim.Experiment.run_setting ~pool setting ~schedulers)
  in
  let identical = summaries_identical serial par in
  let speedup = if parallel_s > 0. then serial_s /. parallel_s else nan in
  let host_cores = Domain.recommended_domain_count () in
  Format.printf
    "  %d cells over %d domain(s) (host reports %d core(s))@." cells domains
    host_cores;
  Format.printf "  serial %.2f s, parallel %.2f s — speedup %.2fx@." serial_s
    parallel_s speedup;
  Format.printf "  summaries bit-identical: %s@."
    (if identical then "yes" else "NO — determinism contract broken");
  (match json with
   | None -> ()
   | Some path ->
       let oc = open_out path in
       Printf.fprintf oc
         "{\n\
         \  \"bench\": \"runner_scaleout\",\n\
         \  \"setting\": %S,\n\
         \  \"cells\": %d,\n\
         \  \"domains\": %d,\n\
         \  \"host_cores\": %d,\n\
         \  \"serial_s\": %.6f,\n\
         \  \"parallel_s\": %.6f,\n\
         \  \"speedup\": %.4f,\n\
         \  \"identical\": %b\n\
          }\n"
         setting.Sim.Experiment.label cells domains host_cores serial_s
         parallel_s speedup identical;
       close_out oc;
       Format.printf "  wrote %s@." path);
  if not identical then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the solver kernels. *)

let bechamel_benches () =
  section "Solver micro-benchmarks (Bechamel)";
  let open Bechamel in
  let lu_bench =
    (* Factorize + solve a sparse near-triangular 200x200 system. *)
    let n = 200 in
    let rng = Prelude.Rng.of_int 9 in
    let d = Sparselin.Dense.identity n in
    for _ = 1 to 3 * n do
      let i = Prelude.Rng.int rng n and j = Prelude.Rng.int rng n in
      if i <> j then d.(i).(j) <- Prelude.Rng.float_range rng (-0.5) 0.5
    done;
    let col j =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if d.(i).(j) <> 0. then acc := (i, d.(i).(j)) :: !acc
      done;
      Array.of_list !acc
    in
    let b = Array.init n (fun i -> float_of_int (i mod 5)) in
    Test.make ~name:"sparse LU 200x200"
      (Staged.stage (fun () ->
           match Sparselin.Lu.factorize ~dim:n col with
           | Ok f ->
               let x = Array.copy b in
               Sparselin.Lu.solve f x;
               ignore (Sys.opaque_identity x)
           | Error _ -> assert false))
  in
  let simplex_bench =
    let model =
      let m = Lp.Model.create Lp.Model.Minimize in
      let rng = Prelude.Rng.of_int 4 in
      let vars =
        Array.init 60 (fun _ ->
            Lp.Model.add_var m ~obj:(Prelude.Rng.float_range rng 1. 10.) ())
      in
      for _ = 1 to 40 do
        let terms =
          Array.to_list vars
          |> List.filteri (fun i _ -> i mod 3 = 0)
          |> List.map (fun v -> (v, Prelude.Rng.float_range rng 0.1 2.))
        in
        ignore
          (Lp.Model.add_constraint m terms Lp.Model.Ge
             (Prelude.Rng.float_range rng 1. 20.))
      done;
      m
    in
    Test.make ~name:"simplex 60 vars x 40 rows"
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (Lp.Simplex.solve model))))
  in
  let postcard_bench =
    let costs =
      [| [| 0.; 1.; 5.; 6. |];
         [| 1.; 0.; 4.; 11. |];
         [| 5.; 4.; 0.; 6. |];
         [| 6.; 11.; 6.; 0. |] |]
    in
    let base = Netgraph.Topology.of_cost_matrix ~capacity:5. costs in
    let files =
      [ File.make ~id:1 ~src:1 ~dst:3 ~size:8. ~deadline:4 ~release:0;
        File.make ~id:2 ~src:0 ~dst:3 ~size:10. ~deadline:2 ~release:0 ]
    in
    Test.make ~name:"postcard fig3 solve"
      (Staged.stage (fun () ->
           let program =
             Postcard.Formulate.create ~base
               ~charged:(Array.make (Graph.num_arcs base) 0.)
               ~capacity:(fun ~link:_ ~layer:_ -> 5.)
               ~files ~epoch:0 ()
           in
           ignore (Sys.opaque_identity (Postcard.Formulate.solve program))))
  in
  let mcf_bench =
    let rng = Prelude.Rng.of_int 17 in
    let g =
      Netgraph.Topology.complete ~n:12 ~rng ~cost_lo:1. ~cost_hi:10.
        ~capacity:10.
    in
    Test.make ~name:"min-cost flow 12-DC complete"
      (Staged.stage (fun () ->
           ignore
             (Sys.opaque_identity
                (Netgraph.Mincostflow.min_cost_flow g ~src:0 ~dst:11
                   ~amount:25.))))
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Format.printf "  %-32s %12.1f ns/run@." name est
        | Some _ | None -> Format.printf "  %-32s (no estimate)@." name)
      results
  in
  List.iter benchmark [ lu_bench; simplex_bench; postcard_bench; mcf_bench ]

(* Verify the "telemetry off costs nothing" contract: with the metrics
   registry disabled and no trace sink installed, a burst of guarded
   instrumentation calls — the exact pattern sitting on the simplex pivot
   path — must allocate nothing on the minor heap. *)
let obs_noop_bench () =
  section "Telemetry overhead — disabled instrumentation";
  let open Bechamel in
  assert (not (Obs.Metrics.enabled ()));
  assert (not (Obs.Trace.enabled ()));
  let c = Obs.Metrics.counter "bench.noop_counter" in
  let h = Obs.Metrics.histogram "bench.noop_hist" in
  let test =
    Test.make ~name:"1000 guarded metric+trace updates"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             Obs.Metrics.incr c;
             Obs.Metrics.add c i;
             Obs.Metrics.observe h 1.5;
             if Obs.Trace.enabled () then
               Obs.Trace.point "bench.noop" [ ("i", Obs.Trace.Int i) ]
           done))
  in
  let instances = [ Toolkit.Instance.minor_allocated ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.minor_allocated raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          Format.printf "  %-40s %8.2f minor words/run %s@." name est
            (if est < 1. then "(allocation-free: OK)" else "(ALLOCATES)")
      | Some _ | None -> Format.printf "  %-40s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Span-instrumentation overhead: the cost of a disabled Span.begin_/end_
   pair (must stay at a few ns and zero allocation — it sits on the
   simplex pivot path), the cost of an enabled pair into a sink, and the
   end-to-end slowdown of a fully traced engine run. *)

let obs_overhead_bench ~json () =
  section "Telemetry overhead — span instrumentation (begin_/end_ pairs)";
  assert (not (Obs.Span.enabled ()));
  assert (not (Obs.Trace.enabled ()));
  let spin n =
    for _ = 1 to n do
      let s = Obs.Span.begin_ "bench.span" in
      Obs.Span.end_ s
    done
  in
  (* Disabled: the no-op path. *)
  let disabled_calls = 5_000_000 in
  spin 100_000;
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  spin disabled_calls;
  let disabled_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. w0 in
  let disabled_ns = disabled_s /. float_of_int disabled_calls *. 1e9 in
  Format.printf
    "  disabled span pair: %6.2f ns/call, %.2f minor words over %d calls %s@."
    disabled_ns minor_words disabled_calls
    (* [Gc.minor_words] itself boxes its float result, so a few words of
       slack separate "allocation-free" from a real per-call leak. *)
    (if minor_words < 64. then "(allocation-free: OK)" else "(ALLOCATES)");
  (* Enabled: every pair emits two JSONL lines into a counting sink. *)
  let enabled_calls = 200_000 in
  let lines = ref 0 in
  Obs.Trace.set_callback (fun _ -> incr lines);
  Obs.Span.set_enabled true;
  spin 1_000;
  let t0 = Unix.gettimeofday () in
  spin enabled_calls;
  let enabled_s = Unix.gettimeofday () -. t0 in
  Obs.Span.set_enabled false;
  Obs.Trace.close ();
  let enabled_ns = enabled_s /. float_of_int enabled_calls *. 1e9 in
  Format.printf "  enabled span pair:  %6.0f ns/call (%dx the disabled cost)@."
    enabled_ns
    (int_of_float (Float.round (enabled_ns /. Float.max 1e-9 disabled_ns)));
  (* End to end: one engine run, untraced vs fully traced with spans. *)
  let run_once () =
    let rng = Prelude.Rng.of_int 7919 in
    let base =
      Netgraph.Topology.complete ~n:6 ~rng ~cost_lo:1. ~cost_hi:10.
        ~capacity:35.
    in
    let spec = Sim.Workload.paper_spec ~nodes:6 ~files_max:3 ~max_deadline:4 in
    let workload = Sim.Workload.create spec (Prelude.Rng.of_int 1) in
    ignore
      (Sys.opaque_identity
         (Sim.Engine.(
            run
              (make ~base
                 ~scheduler:(Postcard.Postcard_scheduler.make ())
                 ~workload ~slots:12 ()))))
  in
  run_once ();
  let t0 = Unix.gettimeofday () in
  run_once ();
  let untraced_s = Unix.gettimeofday () -. t0 in
  let trace_events = ref 0 in
  Obs.Trace.set_callback (fun _ -> incr trace_events);
  Obs.Span.set_enabled true;
  let t0 = Unix.gettimeofday () in
  run_once ();
  let traced_s = Unix.gettimeofday () -. t0 in
  Obs.Span.set_enabled false;
  Obs.Trace.close ();
  let slowdown = if untraced_s > 0. then traced_s /. untraced_s else nan in
  Format.printf
    "  engine run (6 DCs, 12 slots): untraced %.4f s, traced %.4f s — \
     slowdown %.2fx, %d events@."
    untraced_s traced_s slowdown !trace_events;
  match json with
  | None -> ()
  | Some path -> (
      match open_out path with
      | exception Sys_error msg ->
          Format.eprintf "  cannot write JSON summary: %s@." msg;
          exit 1
      | oc ->
          Printf.fprintf oc
            "{\n\
            \  \"bench\": \"obs_overhead\",\n\
            \  \"disabled_span_ns\": %.4f,\n\
            \  \"enabled_span_ns\": %.1f,\n\
            \  \"minor_words\": %.1f,\n\
            \  \"disabled_calls\": %d,\n\
            \  \"enabled_calls\": %d,\n\
            \  \"untraced_s\": %.6f,\n\
            \  \"traced_s\": %.6f,\n\
            \  \"slowdown\": %.4f,\n\
            \  \"trace_events\": %d\n\
             }\n"
            disabled_ns enabled_ns minor_words disabled_calls enabled_calls
            untraced_s traced_s slowdown !trace_events;
          close_out oc;
          Format.printf "  wrote %s@." path)

(* ------------------------------------------------------------------ *)
(* Tiered admission: the ledger fast tier against the per-epoch LP —
   admission split, per-admission latency, cost gap (see DESIGN.md
   Sec. 4i and EXPERIMENTS.md). *)

let tier_bench ?nodes ?slots ?seed ~json () =
  section "Tiered admission — combinatorial ledger vs per-epoch LP";
  let summary = Sim.Tier_bench.run ?nodes ?slots ?seed () in
  Format.printf "%a" Sim.Tier_bench.pp_summary summary;
  (match Sim.Tier_bench.check summary with
   | Ok () -> Format.printf "  all tier targets met@."
   | Error errs ->
       List.iter
         (fun msg -> Format.eprintf "  BENCH FAILURE: %s@." msg)
         errs;
       exit 1);
  match json with
  | None -> ()
  | Some path -> (
      match open_out path with
      | oc ->
          output_string oc (Sim.Tier_bench.to_json summary);
          close_out oc;
          Format.printf "  wrote %s@." path
      | exception Sys_error msg ->
          Format.eprintf "  cannot write JSON summary: %s@." msg;
          exit 1)

let usage =
  "main.exe [--solver-only] [--scale] [--scale-only] [--tier] [--obs-overhead] \
   [-j N] [--json PATH] [--json-runner PATH] [--json-scale PATH] \
   [--json-tier PATH] [--json-obs PATH] [--scale-sizes LIST] \
   [--scale-budget-ms MS] [--log-level LEVEL]"

(* "6x12,20x48" -> [(6, 12); (20, 48)] *)
let parse_scale_sizes s =
  String.split_on_char ',' s
  |> List.map (fun item ->
         match String.split_on_char 'x' (String.trim item) with
         | [ n; t ] -> (
             match (int_of_string_opt n, int_of_string_opt t) with
             | Some n, Some t when n >= 2 && t >= 2 -> (n, t)
             | _ ->
                 raise
                   (Arg.Bad
                      (Printf.sprintf "bad scale size %S (want NODESxSLOTS)"
                         item)))
         | _ ->
             raise
               (Arg.Bad
                  (Printf.sprintf "bad scale size %S (want NODESxSLOTS)" item)))

let () =
  let json = ref None and solver_only = ref false in
  let json_runner = ref None in
  let jobs = ref None in
  let scale = ref false and scale_only = ref false in
  let obs_overhead = ref false in
  let tier = ref false in
  let json_tier = ref None in
  let tier_nodes = ref None and tier_slots = ref None and tier_seed = ref None in
  let json_obs = ref None in
  let json_scale = ref None in
  let scale_sizes = ref None in
  let scale_budget_ms = ref None in
  let log_level = ref (Some Logs.Warning) in
  let spec =
    [ ("--json",
       Arg.String (fun p -> json := Some p),
       "PATH  write the warm-start benchmark summary as JSON");
      ("--json-runner",
       Arg.String (fun p -> json_runner := Some p),
       "PATH  write the runner scale-out summary as JSON");
      ("--scale",
       Arg.Set scale,
       "  also run the solver scale sweep (cold vs primal-warm vs dual)");
      ("--scale-only",
       Arg.Set scale_only,
       "  run only the solver scale sweep (skip everything else)");
      ("--json-scale",
       Arg.String (fun p -> json_scale := Some p),
       "PATH  write the scale-sweep summary as JSON");
      ("--obs-overhead",
       Arg.Set obs_overhead,
       "  run only the span-instrumentation overhead bench");
      ("--tier",
       Arg.Set tier,
       "  run only the tiered-admission benchmark (ledger vs LP)");
      ("--json-tier",
       Arg.String (fun p -> json_tier := Some p),
       "PATH  write the tiered-admission summary as JSON");
      ("--tier-nodes",
       Arg.Int (fun n -> tier_nodes := Some n),
       "N  datacenters for the tiered-admission benchmark (default 8)");
      ("--tier-slots",
       Arg.Int (fun n -> tier_slots := Some n),
       "N  slots for the tiered-admission benchmark (default 40)");
      ("--tier-seed",
       Arg.Int (fun n -> tier_seed := Some n),
       "N  seed for the tiered-admission benchmark (default 1)");
      ("--json-obs",
       Arg.String (fun p -> json_obs := Some p),
       "PATH  write the span-overhead summary as JSON");
      ("--scale-sizes",
       Arg.String (fun s -> scale_sizes := Some (parse_scale_sizes s)),
       "LIST  comma-separated NODESxSLOTS points (default 6x12,12x24,20x48,\
        32x72,50x104)");
      ("--scale-budget-ms",
       Arg.Float (fun b -> scale_budget_ms := Some b),
       "MS  wall-clock budget per scale point (default 20000)");
      ("-j",
       Arg.Int (fun n -> jobs := Some n),
       "N  worker domains for the experiment sweeps (default: the host's \
        recommended domain count)");
      ("--solver-only",
       Arg.Set solver_only,
       "  run only the solver warm-start benchmark (skip the figures)");
      ("--log-level",
       Arg.String
         (fun s ->
           match Obs.Logging.parse_level s with
           | Ok l -> log_level := l
           | Error msg -> raise (Arg.Bad msg)),
       "LEVEL  log verbosity: quiet, app, error, warning, info or debug") ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  Obs.Logging.setup ~level:!log_level ();
  let domains =
    match !jobs with
    | Some n when n < 1 ->
        prerr_endline "bench: -j must be >= 1";
        exit 2
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  Format.printf "Postcard reproduction bench (see EXPERIMENTS.md)@.";
  if !obs_overhead then begin
    obs_overhead_bench ~json:!json_obs ();
    Format.printf "@.done.@."
  end
  else if !tier then begin
    tier_bench ?nodes:!tier_nodes ?slots:!tier_slots ?seed:!tier_seed
      ~json:!json_tier ();
    Format.printf "@.done.@."
  end
  else if !scale_only then begin
    solver_scale_bench ~sizes:!scale_sizes ~budget_ms:!scale_budget_ms
      ~json:!json_scale;
    Format.printf "@.done.@."
  end
  else begin
    let pool = Exec.Pool.create ~domains () in
    Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) @@ fun () ->
    if not !solver_only then begin
      fig1 ();
      fig3 ();
      let r4 = figure ~pool 4 in
      let r5 = figure ~pool 5 in
      let r6 = figure ~pool 6 in
      let r7 = figure ~pool 7 in
      check_figure_shapes r4 r5 r6 r7;
      ablation_flow_variants ~pool ();
      ablation_greedy_vs_lp ~pool ();
      ablation_deadline_heterogeneity ~pool ();
      ablation_price_of_myopia ();
      extension_percentile_billing ()
    end;
    ignore (solver_warm_bench ~pool ~json:!json);
    if not !solver_only then
      tier_bench ?nodes:!tier_nodes ?slots:!tier_slots ?seed:!tier_seed
        ~json:!json_tier ();
    if !scale then
      solver_scale_bench ~sizes:!scale_sizes ~budget_ms:!scale_budget_ms
        ~json:!json_scale;
    runner_scaleout_bench ~pool ~json:!json_runner;
    obs_noop_bench ();
    if not !solver_only then bechamel_benches ();
    Format.printf "@.done.@."
  end
