(** Sparse LU factorization of a square matrix with partial pivoting,
    in the left-looking (Gilbert-Peierls) style. This is the basis
    factorization engine of the revised simplex method in {!Lp}.

    The factorization computed is [P * B * Q = L * U] where [P] is the row
    permutation chosen by Markowitz-ordered threshold pivoting (among rows
    whose magnitude is within a fixed factor of the column maximum, the one
    with the fewest input-matrix nonzeros — a static fill-in proxy — wins,
    with deterministic tie-breaks), [Q] is a caller supplied (or
    nnz-ascending) column ordering, [L] is unit lower triangular and [U] is
    upper triangular. *)

type t

type error =
  | Singular of int
      (** [Singular k]: no acceptable pivot was found while factorizing the
          [k]-th column of the ordered matrix. *)

val factorize :
  ?col_order:int array -> dim:int -> (int -> (int * float) array) -> (t, error) result
(** [factorize ~dim col] factorizes the [dim] x [dim] matrix whose [j]-th
    column is [col j], given as (row, value) pairs with distinct rows.
    [col_order], when given, is the permutation [Q] (its [k]-th entry is the
    original column eliminated at step [k]); otherwise columns are ordered by
    increasing nonzero count, a cheap fill-reducing heuristic that suits
    near-triangular simplex bases. *)

val factorize_iter :
  ?col_order:int array ->
  dim:int ->
  (int -> (int -> float -> unit) -> unit) ->
  (t, error) result
(** [factorize_iter ~dim iter_col] is {!factorize} with the matrix supplied
    as an iterator: [iter_col j f] must call [f row value] for every nonzero
    of column [j] (distinct rows, any order). This is the allocation-free
    entry point used by the simplex basis factorization: entries stream
    straight into the elimination's scratch vectors with no intermediate
    per-column array. *)

val crash_select :
  dim:int ->
  ncols:int ->
  (int -> (int -> float -> unit) -> unit) ->
  int array * int array
(** [crash_select ~dim ~ncols iter_col] greedily selects a maximal
    independent subset of the [ncols] candidate columns by running the same
    left-looking elimination and skipping (instead of failing on) columns
    with no acceptable pivot. Returns [(accepted, unpivoted)]: the indices
    of accepted candidates in elimination order, and the rows no accepted
    column pivoted — together they describe a nonsingular basis once the
    caller covers each unpivoted row with its slack or artificial column.
    Used to repair a warm-start basis carried between LP solves. *)

val dim : t -> int

val nnz : t -> int
(** Total stored entries of [L] and [U], a measure of fill-in. *)

val input_nnz : t -> int
(** Nonzeros of the matrix that was factorized. *)

val fill_in : t -> int
(** [nnz t - input_nnz t] clamped at zero: entries created by the
    elimination. Every factorization also records its dimension, nnz and
    fill-in in the {!Obs.Metrics} registry (series [lu.*]). *)

val solve : t -> float array -> unit
(** [solve f b] overwrites [b] with the solution [x] of [B x = b]
    (the simplex FTRAN). *)

val solve_transpose : t -> float array -> unit
(** [solve_transpose f c] overwrites [c] with the solution [y] of
    [transpose B y = c] (the simplex BTRAN). *)

val min_abs_diag : t -> float
(** Smallest pivot magnitude; a stability diagnostic. *)
