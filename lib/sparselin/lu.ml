type t = {
  n : int;
  (* L: one column per elimination step; entries are (original_row, value)
     with the unit diagonal implicit. *)
  l_cols : (int * float) array array;
  (* U: one column per elimination step; entries are (pivot_step, value) for
     rows already pivoted, strictly above the diagonal. *)
  u_cols : (int * float) array array;
  u_diag : float array;
  (* pivot_row.(k) = original row chosen as pivot at step k;
     pinv.(r) = step at which original row r was pivoted. *)
  pivot_row : int array;
  pinv : int array;
  (* q.(k) = original column eliminated at step k. *)
  q : int array;
  (* Nonzeros of the input matrix, for fill-in accounting. *)
  input_nnz : int;
}

type error = Singular of int

let dim f = f.n

let nnz f =
  let count cols =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 cols
  in
  count f.l_cols + count f.u_cols + f.n

let input_nnz f = f.input_nnz

let fill_in f = max 0 (nnz f - f.input_nnz)

let min_abs_diag f =
  Array.fold_left (fun acc d -> min acc (abs_float d)) infinity f.u_diag

(* Depth-first search computing the topological order of the rows reachable
   from [start] through already-computed L columns. Rows are pushed onto
   [stack] in reverse topological order. Uses an explicit stack to avoid
   overflowing the OCaml call stack on long elimination chains. *)
let reach ~pinv ~l_cols ~visited ~stack ~top start =
  let dfs_stack = ref [ (start, 0) ] in
  while !dfs_stack <> [] do
    match !dfs_stack with
    | [] -> ()
    | (node, child) :: rest ->
        if child = 0 then visited.(node) <- true;
        let step = pinv.(node) in
        let children = if step >= 0 then l_cols.(step) else [||] in
        if child < Array.length children then begin
          dfs_stack := (node, child + 1) :: rest;
          let next, _ = children.(child) in
          if not visited.(next) then dfs_stack := (next, 0) :: !dfs_stack
        end
        else begin
          dfs_stack := rest;
          stack.(!top) <- node;
          incr top
        end
  done

let default_col_order ~dim iter_col =
  let order = Array.init dim (fun j -> j) in
  let counts = Array.make dim 0 in
  for j = 0 to dim - 1 do
    let c = ref 0 in
    iter_col j (fun _ _ -> incr c);
    counts.(j) <- !c
  done;
  Array.sort
    (fun a b ->
      let c = compare counts.(a) counts.(b) in
      if c <> 0 then c else compare a b)
    order;
  order

(* Shared per-column front end of the elimination: scatter column [j] into
   the dense accumulator [x] while collecting (in [stack], via [reach]) the
   topological order of its fill pattern, then run the sparse triangular
   solve against the L columns computed so far. Returns the pattern size. *)
let eliminate_column ~iter_col ~pinv ~l_cols ~visited ~stack ~x j =
  let top = ref 0 in
  iter_col j (fun r v ->
      if not visited.(r) then reach ~pinv ~l_cols ~visited ~stack ~top r;
      x.(r) <- x.(r) +. v);
  for s = !top - 1 downto 0 do
    let node = stack.(s) in
    let step = pinv.(node) in
    if step >= 0 then begin
      let xj = x.(node) in
      if xj <> 0. then
        Array.iter
          (fun (r, lv) -> x.(r) <- x.(r) -. (lv *. xj))
          l_cols.(step)
    end
  done;
  !top

(* Partial pivoting among not-yet-pivoted rows of the pattern. Returns the
   chosen row, or -1 when no entry exceeds [threshold]. *)
let select_pivot ~pinv ~stack ~x ~top ~threshold =
  let best = ref (-1) and best_abs = ref threshold in
  for s = 0 to top - 1 do
    let r = stack.(s) in
    if pinv.(r) < 0 then begin
      let a = abs_float x.(r) in
      if a > !best_abs then begin
        best_abs := a;
        best := r
      end
    end
  done;
  !best

(* Markowitz-style threshold pivoting: among the not-yet-pivoted rows of
   the pattern whose magnitude is within a factor [rel] of the largest
   (and above [threshold]), prefer the row with the fewest nonzeros in the
   input matrix — the classic fill-in proxy, here with static row counts
   so selection stays O(pattern). Magnitude then row index break ties, so
   the choice is deterministic. Returns -1 when no entry exceeds
   [threshold], exactly like {!select_pivot}. *)
let markowitz_rel = 0.1

let select_pivot_markowitz ~pinv ~stack ~x ~top ~threshold ~row_counts =
  let max_abs = ref 0. in
  for s = 0 to top - 1 do
    let r = stack.(s) in
    if pinv.(r) < 0 then begin
      let a = abs_float x.(r) in
      if a > !max_abs then max_abs := a
    end
  done;
  if !max_abs <= threshold then -1
  else begin
    let accept = max threshold (markowitz_rel *. !max_abs) in
    let best = ref (-1) and best_count = ref max_int and best_abs = ref 0. in
    for s = 0 to top - 1 do
      let r = stack.(s) in
      if pinv.(r) < 0 then begin
        let a = abs_float x.(r) in
        if a >= accept then begin
          let c = row_counts.(r) in
          let better =
            c < !best_count
            || (c = !best_count
                && (a > !best_abs || (a = !best_abs && r < !best)))
          in
          if better then begin
            best := r;
            best_count := c;
            best_abs := a
          end
        end
      end
    done;
    !best
  end

let clear_pattern ~visited ~stack ~x ~top =
  for s = 0 to top - 1 do
    let r = stack.(s) in
    x.(r) <- 0.;
    visited.(r) <- false
  done

(* Per-factorization telemetry: dimension, stored nonzeros and fill-in of
   the factors, plus a running factorization count. Updates are O(1)
   no-ops while the metrics registry is disabled. *)
let m_factorizations = Obs.Metrics.counter "lu.factorizations"
let g_dim = Obs.Metrics.gauge "lu.last_dim"
let g_nnz = Obs.Metrics.gauge "lu.last_nnz"
let g_fill = Obs.Metrics.gauge "lu.last_fill_in"
let h_fill_ratio = Obs.Metrics.histogram "lu.fill_ratio"

let record_factorization f =
  Obs.Metrics.incr m_factorizations;
  if Obs.Metrics.enabled () then begin
    let stored = nnz f in
    Obs.Metrics.set g_dim (float_of_int f.n);
    Obs.Metrics.set g_nnz (float_of_int stored);
    Obs.Metrics.set g_fill (float_of_int (fill_in f));
    if f.input_nnz > 0 then
      Obs.Metrics.observe h_fill_ratio
        (float_of_int stored /. float_of_int f.input_nnz)
  end

let factorize_iter ?col_order ~dim:n iter_col =
  let sp = Obs.Span.begin_ "lu.factorize" in
  let q = match col_order with
    | Some order ->
        if Array.length order <> n then
          invalid_arg "Lu.factorize: col_order length mismatch";
        order
    | None -> default_col_order ~dim:n iter_col
  in
  let l_cols = Array.make n [||] in
  let u_cols = Array.make n [||] in
  let u_diag = Array.make n 0. in
  let pivot_row = Array.make n (-1) in
  let pinv = Array.make n (-1) in
  let x = Array.make n 0. in
  let visited = Array.make n false in
  let stack = Array.make n 0 in
  let exception Singular_at of int in
  (* Static row nonzero counts of the input matrix, the Markowitz fill-in
     proxy used by the pivot selection below. One O(nnz) pass. *)
  let row_counts = Array.make n 0 in
  for j = 0 to n - 1 do
    iter_col j (fun r _ -> row_counts.(r) <- row_counts.(r) + 1)
  done;
  let input_nnz = ref 0 in
  let counted_col j f =
    iter_col j (fun r v ->
        incr input_nnz;
        f r v)
  in
  try
    for k = 0 to n - 1 do
      let top =
        eliminate_column ~iter_col:counted_col ~pinv ~l_cols ~visited ~stack
          ~x q.(k)
      in
      let piv =
        select_pivot_markowitz ~pinv ~stack ~x ~top ~threshold:1e-13
          ~row_counts
      in
      if piv < 0 then raise (Singular_at k);
      let d = x.(piv) in
      (* Gather U (pivoted rows) and L (remaining rows, scaled). *)
      let u_acc = ref [] and l_acc = ref [] in
      for s = 0 to top - 1 do
        let r = stack.(s) in
        let v = x.(r) in
        if v <> 0. then begin
          if pinv.(r) >= 0 then u_acc := (pinv.(r), v) :: !u_acc
          else if r <> piv then l_acc := (r, v /. d) :: !l_acc
        end;
        x.(r) <- 0.;
        visited.(r) <- false
      done;
      u_cols.(k) <- Array.of_list !u_acc;
      l_cols.(k) <- Array.of_list !l_acc;
      u_diag.(k) <- d;
      pivot_row.(k) <- piv;
      pinv.(piv) <- k
    done;
    let f =
      { n; l_cols; u_cols; u_diag; pivot_row; pinv; q;
        input_nnz = !input_nnz }
    in
    record_factorization f;
    Obs.Span.end_ sp;
    Ok f
  with Singular_at k ->
    (* Reset scratch state is unnecessary: arrays are local. *)
    Obs.Span.end_ sp;
    Error (Singular k)

let factorize ?col_order ~dim col =
  factorize_iter ?col_order ~dim (fun j f ->
      Array.iter (fun (r, v) -> f r v) (col j))

(* Rank-revealing greedy pass used to repair a carried simplex basis: run
   the same left-looking elimination over [ncols] candidate columns, but
   instead of failing on a column with no acceptable pivot, skip it. The
   threshold is far above the factorization's own (1e-13): a candidate that
   only barely avoids singularity would produce a terrible starting basis.
   Returns the accepted candidate indices (in elimination order) and the
   rows left unpivoted, which the caller must cover with slack/artificial
   columns. *)
let crash_select ~dim:n ~ncols iter_col =
  let l_cols = Array.make (min n ncols) [||] in
  let pinv = Array.make n (-1) in
  let x = Array.make n 0. in
  let visited = Array.make n false in
  let stack = Array.make n 0 in
  let accepted = ref [] and n_accepted = ref 0 in
  let j = ref 0 in
  while !j < ncols && !n_accepted < n do
    let top = eliminate_column ~iter_col ~pinv ~l_cols ~visited ~stack ~x !j in
    let piv = select_pivot ~pinv ~stack ~x ~top ~threshold:1e-9 in
    if piv < 0 then clear_pattern ~visited ~stack ~x ~top
    else begin
      let d = x.(piv) in
      let l_acc = ref [] in
      for s = 0 to top - 1 do
        let r = stack.(s) in
        let v = x.(r) in
        if v <> 0. && pinv.(r) < 0 && r <> piv then
          l_acc := (r, v /. d) :: !l_acc;
        x.(r) <- 0.;
        visited.(r) <- false
      done;
      l_cols.(!n_accepted) <- Array.of_list !l_acc;
      pinv.(piv) <- !n_accepted;
      accepted := !j :: !accepted;
      incr n_accepted
    end;
    incr j
  done;
  let unpivoted = ref [] in
  for r = n - 1 downto 0 do
    if pinv.(r) < 0 then unpivoted := r :: !unpivoted
  done;
  (Array.of_list (List.rev !accepted), Array.of_list !unpivoted)

(* FTRAN: solve B x = b with P B Q = L U, i.e. x = Q (U \ (L \ P b)).
   [b] is indexed by original rows on entry, by original columns on exit. *)
let solve f b =
  if Array.length b <> f.n then invalid_arg "Lu.solve: size mismatch";
  let n = f.n in
  (* Forward solve L y = P b, working directly in original row space: the
     value at pivot_row.(k) is y_k. *)
  for k = 0 to n - 1 do
    let yk = b.(f.pivot_row.(k)) in
    if yk <> 0. then
      Array.iter (fun (r, lv) -> b.(r) <- b.(r) -. (lv *. yk)) f.l_cols.(k)
  done;
  (* Move into pivot-step space. *)
  let y = Array.make n 0. in
  for k = 0 to n - 1 do
    y.(k) <- b.(f.pivot_row.(k))
  done;
  (* Backward solve U w = y by columns. *)
  for k = n - 1 downto 0 do
    let wk = y.(k) /. f.u_diag.(k) in
    y.(k) <- wk;
    if wk <> 0. then
      Array.iter (fun (i, uv) -> y.(i) <- y.(i) -. (uv *. wk)) f.u_cols.(k)
  done;
  (* Apply column permutation: x.(q.(k)) = w_k. *)
  Array.fill b 0 n 0.;
  for k = 0 to n - 1 do
    b.(f.q.(k)) <- y.(k)
  done

(* BTRAN: solve B^T y = c. With B = P^T L U Q^T this is
   y = P^T (L^T \ (U^T \ Q^T c)). [c] is indexed by original columns on
   entry, by original rows on exit. *)
let solve_transpose f c =
  if Array.length c <> f.n then invalid_arg "Lu.solve_transpose: size mismatch";
  let n = f.n in
  let u = Array.make n 0. in
  for k = 0 to n - 1 do
    u.(k) <- c.(f.q.(k))
  done;
  (* Forward solve U^T v = u: U^T is lower triangular; row k of U^T is
     column k of U. *)
  for k = 0 to n - 1 do
    let acc = ref u.(k) in
    Array.iter (fun (i, uv) -> acc := !acc -. (uv *. u.(i))) f.u_cols.(k);
    u.(k) <- !acc /. f.u_diag.(k)
  done;
  (* Backward solve (P L)^T z = v: row k of (P L)^T is column k of L with
     rows mapped through pinv. *)
  for k = n - 1 downto 0 do
    let acc = ref u.(k) in
    Array.iter
      (fun (r, lv) -> acc := !acc -. (lv *. u.(f.pinv.(r))))
      f.l_cols.(k);
    u.(k) <- !acc
  done;
  (* y = P^T z: y.(pivot_row.(k)) = z_k. *)
  Array.fill c 0 n 0.;
  for k = 0 to n - 1 do
    c.(f.pivot_row.(k)) <- u.(k)
  done
