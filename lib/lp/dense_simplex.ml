(* Compilation scheme: every model variable is rewritten in terms of
   non-negative variables, producing [min c.z, A z (sense) b, z >= 0]:

   - finite lower bound l:        x = l + z
     (a finite upper bound u adds the row  z <= u - l)
   - only finite upper bound u:   x = u - z
   - free:                        x = z+ - z-

   Senses are then normalized with slack/surplus columns, rows are flipped
   to make b >= 0, and a full artificial basis starts phase 1. *)

type var_map =
  | Shifted of int * float  (* z index, offset: x = offset + z *)
  | Negated of int * float  (* z index, offset: x = offset - z *)
  | Split of int * int  (* x = z+ - z- *)

let solve ?(max_iterations = 100_000) model =
  let n = Model.num_vars model in
  let mapping = Array.make n (Shifted (0, 0.)) in
  let n_z = ref 0 in
  let extra_upper_rows = ref [] in
  (* objective constant accumulated from substitutions *)
  let fresh () =
    let z = !n_z in
    incr n_z;
    z
  in
  for v = 0 to n - 1 do
    let var = Model.var_of_index model v in
    let l = Model.lower_bound model var and u = Model.upper_bound model var in
    if l > neg_infinity then begin
      let z = fresh () in
      mapping.(v) <- Shifted (z, l);
      if u < infinity then extra_upper_rows := (z, u -. l) :: !extra_upper_rows
    end
    else if u < infinity then mapping.(v) <- Negated (fresh (), u)
    else begin
      let zp = fresh () in
      let zm = fresh () in
      mapping.(v) <- Split (zp, zm)
    end
  done;
  let n_z = !n_z in
  let flip = match Model.objective_sense model with
    | Model.Minimize -> false
    | Model.Maximize -> true
  in
  (* Cost over z and the constant term. *)
  let cost = Array.make n_z 0. in
  let cost_const = ref 0. in
  for v = 0 to n - 1 do
    let var = Model.var_of_index model v in
    let c0 = Model.obj_coeff model var in
    let c = if flip then -.c0 else c0 in
    if c <> 0. then
      match mapping.(v) with
      | Shifted (z, off) ->
          cost.(z) <- cost.(z) +. c;
          cost_const := !cost_const +. (c *. off)
      | Negated (z, off) ->
          cost.(z) <- cost.(z) -. c;
          cost_const := !cost_const +. (c *. off)
      | Split (zp, zm) ->
          cost.(zp) <- cost.(zp) +. c;
          cost.(zm) <- cost.(zm) -. c
  done;
  (* Rows over z. *)
  let rows = ref [] in
  Model.iter_rows model (fun _ terms sense rhs ->
      let coeffs = Array.make n_z 0. in
      let rhs = ref rhs in
      List.iter
        (fun ((v : Model.var), c) ->
          match mapping.((v :> int)) with
          | Shifted (z, off) ->
              coeffs.(z) <- coeffs.(z) +. c;
              rhs := !rhs -. (c *. off)
          | Negated (z, off) ->
              coeffs.(z) <- coeffs.(z) -. c;
              rhs := !rhs -. (c *. off)
          | Split (zp, zm) ->
              coeffs.(zp) <- coeffs.(zp) +. c;
              coeffs.(zm) <- coeffs.(zm) -. c)
        terms;
      rows := (coeffs, sense, !rhs) :: !rows);
  List.iter
    (fun (z, cap) ->
      let coeffs = Array.make n_z 0. in
      coeffs.(z) <- 1.;
      rows := (coeffs, Model.Le, cap) :: !rows)
    !extra_upper_rows;
  let rows = Array.of_list (List.rev !rows) in
  let m = Array.length rows in
  (* Count slack columns. *)
  let n_slack =
    Array.fold_left
      (fun acc (_, sense, _) ->
        match sense with Model.Le | Model.Ge -> acc + 1 | Model.Eq -> acc)
      0 rows
  in
  let width = n_z + n_slack + m in
  (* Tableau: m rows of [width] coefficients plus rhs column. *)
  let tab = Array.make_matrix m (width + 1) 0. in
  let slack_at = ref n_z in
  for i = 0 to m - 1 do
    let coeffs, sense, rhs = rows.(i) in
    Array.blit coeffs 0 tab.(i) 0 n_z;
    (match sense with
     | Model.Le ->
         tab.(i).(!slack_at) <- 1.;
         incr slack_at
     | Model.Ge ->
         tab.(i).(!slack_at) <- -1.;
         incr slack_at
     | Model.Eq -> ());
    tab.(i).(width) <- rhs;
    if tab.(i).(width) < 0. then
      for j = 0 to width do
        tab.(i).(j) <- -.tab.(i).(j)
      done;
    (* Artificial column. *)
    tab.(i).(n_z + n_slack + i) <- 1.
  done;
  let is_artificial j = j >= n_z + n_slack in
  let basis = Array.init m (fun i -> n_z + n_slack + i) in
  (* Reduced-cost row maintained explicitly; rebuilt at each phase. *)
  let cost_row = Array.make (width + 1) 0. in
  let build_cost_row phase_cost =
    Array.fill cost_row 0 (width + 1) 0.;
    Array.blit phase_cost 0 cost_row 0 (Array.length phase_cost);
    (* Price out the basic columns. *)
    for i = 0 to m - 1 do
      let cb =
        if basis.(i) < Array.length phase_cost then phase_cost.(basis.(i))
        else 0.
      in
      if cb <> 0. then
        for j = 0 to width do
          cost_row.(j) <- cost_row.(j) -. (cb *. tab.(i).(j))
        done
    done
  in
  let pivot ~row ~col =
    let p = tab.(row).(col) in
    for j = 0 to width do
      tab.(row).(j) <- tab.(row).(j) /. p
    done;
    for i = 0 to m - 1 do
      if i <> row && tab.(i).(col) <> 0. then begin
        let f = tab.(i).(col) in
        for j = 0 to width do
          tab.(i).(j) <- tab.(i).(j) -. (f *. tab.(row).(j))
        done
      end
    done;
    if cost_row.(col) <> 0. then begin
      let f = cost_row.(col) in
      for j = 0 to width do
        cost_row.(j) <- cost_row.(j) -. (f *. tab.(row).(j))
      done
    end;
    basis.(row) <- col
  in
  let iterations = ref 0 in
  let exception Unbounded_lp in
  let exception Out_of_iterations in
  (* Bland's rule iteration over allowed columns. *)
  let run allowed =
    let continue = ref true in
    while !continue do
      if !iterations >= max_iterations then raise Out_of_iterations;
      (* Entering: smallest-index column with negative reduced cost. *)
      let enter = ref (-1) in
      (try
         for j = 0 to width - 1 do
           if allowed j && cost_row.(j) < -1e-9 then begin
             enter := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !enter < 0 then continue := false
      else begin
        incr iterations;
        let col = !enter in
        (* Leaving: minimum ratio, ties by smallest basic variable index. *)
        let best = ref (-1) and best_ratio = ref infinity in
        for i = 0 to m - 1 do
          if tab.(i).(col) > 1e-9 then begin
            let r = tab.(i).(width) /. tab.(i).(col) in
            if
              r < !best_ratio -. 1e-12
              || (abs_float (r -. !best_ratio) <= 1e-12
                  && !best >= 0
                  && basis.(i) < basis.(!best))
            then begin
              best := i;
              best_ratio := r
            end
          end
        done;
        if !best < 0 then raise Unbounded_lp;
        pivot ~row:!best ~col
      end
    done
  in
  try
    (* Phase 1: minimize the sum of artificials. The reduced-cost row
       starts as the phase-1 cost with basic (artificial) rows priced
       out. *)
    Array.fill cost_row 0 (width + 1) 0.;
    for j = n_z + n_slack to width - 1 do
      cost_row.(j) <- 1.
    done;
    for i = 0 to m - 1 do
      (* price out the basic artificials *)
      for j = 0 to width do
        cost_row.(j) <- cost_row.(j) -. tab.(i).(j)
      done
    done;
    run (fun _ -> true);
    (* -cost_row.(width) is the phase-1 objective. *)
    if -.cost_row.(width) > 1e-6 then Status.Infeasible
    else begin
      (* Drive basic artificials out of the basis where possible; redundant
         rows keep their artificial pinned at zero and artificial columns are
         excluded from phase 2. *)
      for i = 0 to m - 1 do
        if is_artificial basis.(i) then begin
          let found = ref (-1) in
          (try
             for j = 0 to n_z + n_slack - 1 do
               if abs_float tab.(i).(j) > 1e-9 then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          if !found >= 0 then pivot ~row:i ~col:!found
        end
      done;
      build_cost_row cost;
      run (fun j -> not (is_artificial j));
      (* Primal in z space. *)
      let z = Array.make width 0. in
      for i = 0 to m - 1 do
        z.(basis.(i)) <- tab.(i).(width)
      done;
      let primal = Array.make n 0. in
      for v = 0 to n - 1 do
        primal.(v) <-
          (match mapping.(v) with
           | Shifted (zi, off) -> off +. z.(zi)
           | Negated (zi, off) -> off -. z.(zi)
           | Split (zp, zm) -> z.(zp) -. z.(zm))
      done;
      let obj_z = -.cost_row.(width) +. !cost_const in
      let objective = if flip then -.obj_z else obj_z in
      Status.Optimal
        { Status.objective;
          primal;
          dual = Array.make (Model.num_rows model) 0.;
          reduced_costs = Array.make n 0.;
          iterations = !iterations;
          stats = Status.no_stats;
          basis = None }
    end
  with
  | Unbounded_lp -> Status.Unbounded
  | Out_of_iterations -> Status.Iteration_limit
