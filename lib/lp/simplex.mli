(** Revised simplex method for linear programs with bounded variables,
    with a dual-simplex re-optimization path for warm starts.

    The implementation is a primal, two-phase bounded-variable simplex:

    - the basis inverse is maintained as a sparse {!Sparselin.Lu}
      factorization composed with a file of product-form {!Sparselin.Eta}
      updates, refactorized periodically;
    - phase 1 drives explicit artificial variables (one per row) to zero;
    - pricing is Devex (reference-framework weights), the standard remedy
      for the massive dual degeneracy of network-structured programs;
    - long runs of degenerate pivots first trigger a deterministic tiny
      cost perturbation (restored, and optimality re-verified, before a
      phase concludes), then Bland's rule as the terminal anti-cycling
      guarantee;
    - the ratio test is a two-pass test preferring large pivot elements
      among near-tied ratios, and supports bound flips of the entering
      variable.

    Warm starts additionally carry a dual simplex: when the supplied
    basis installs dual-feasibly (the common case for slot-to-slot
    re-solves, where only RHS/bounds changed), re-optimization runs dual
    pivots — most-infeasible leaving row under dual Devex row weights, a
    bounded-variable two-pass dual ratio test over the pivot row — and
    never touches phase 1 or the repair ladder. Any dual difficulty
    (a dual-infeasible install, persistent dual degeneracy, numerical
    failure) falls back to the primal warm crash, which itself falls
    back to a cold solve.

    This solver is exact up to floating-point tolerances for any LP built
    with {!Model}; the test suite cross-checks it against the independent
    dense implementation in {!Dense_simplex} and against combinatorial
    network-flow algorithms. *)

type params = {
  max_iterations : int;  (** Pivot budget across both phases. *)
  dual_tolerance : float;  (** Reduced-cost optimality tolerance. *)
  feasibility_tolerance : float;  (** Bound/row violation tolerance. *)
  pivot_tolerance : float;  (** Smallest acceptable pivot magnitude. *)
  refactor_frequency : int;  (** Eta updates between refactorizations. *)
  degenerate_switch : int;
      (** Consecutive degenerate pivots before escalating (perturbation,
          then Bland's rule). *)
}

val default_params : params

val solve :
  ?params:params ->
  ?warm_start:Status.Basis.t ->
  ?dual_reopt:bool ->
  Model.t ->
  Status.outcome
(** Solve a model. The returned solution is expressed in the model's own
    variable/row indexing and objective sense, and carries the optimal
    basis ({!Status.solution.basis}).

    [warm_start] starts the solver from a basis captured by an earlier
    solve (of this model or of a structurally similar one, translated onto
    this model's indices). With [dual_reopt] (the default), a basis that
    installs dual-feasibly re-optimizes with the dual simplex — zero
    phase-1 pivots, zero repair rounds, outcome
    {!Status.Dual_reopt} — and otherwise the primal crash path runs: the
    carried basis is repaired before use (dependent columns demoted
    through {!Sparselin.Lu.crash_select}, uncovered rows regain their
    slack/artificial column, out-of-bound basic values parked at the
    violated bound) and the solver falls back to the ordinary cold start
    whenever repair fails or a numerical failure occurs while iterating
    from the warm basis. [~dual_reopt:false] forces the primal path (the
    scale benchmark uses it to separate the two warm curves). Supplying a
    wrong or stale basis is always safe: it can only cost iterations,
    never correctness. *)
