module Basis = struct
  type var_status = Basic | At_lower | At_upper | Free

  type t = {
    cols : var_status array;  (* one per structural variable *)
    rows : var_status array;  (* one per row: the status of its slack *)
  }

  let make ~cols ~rows = { cols = Array.copy cols; rows = Array.copy rows }
  let num_cols b = Array.length b.cols
  let num_rows b = Array.length b.rows
  let col_status b j = b.cols.(j)
  let row_status b i = b.rows.(i)

  let count_basic b =
    let count =
      Array.fold_left
        (fun acc s -> if s = Basic then acc + 1 else acc)
        0
    in
    count b.cols + count b.rows

  let pp ppf b =
    Format.fprintf ppf "basis (%d cols, %d rows, %d basic)" (num_cols b)
      (num_rows b) (count_basic b)
end

type warm_start_outcome =
  | No_warm_start
  | Dual_reopt
  | Warm_accepted of { repair_rounds : int }
  | Warm_fell_back

type stats = {
  phase1_pivots : int;
  phase2_pivots : int;
  dual_pivots : int;
  refactorizations : int;
  eta_peak : int;
  bound_flips : int;
  perturbations : int;
  bland : bool;
  warm_start : warm_start_outcome;
}

let no_stats = {
  phase1_pivots = 0;
  phase2_pivots = 0;
  dual_pivots = 0;
  refactorizations = 0;
  eta_peak = 0;
  bound_flips = 0;
  perturbations = 0;
  bland = false;
  warm_start = No_warm_start;
}

type solution = {
  objective : float;
  primal : float array;
  dual : float array;
  reduced_costs : float array;
  iterations : int;
  stats : stats;
  basis : Basis.t option;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

let is_optimal = function Optimal _ -> true | Infeasible | Unbounded | Iteration_limit -> false

let get_optimal = function
  | Optimal s -> s
  | Infeasible -> failwith "Lp.Status.get_optimal: infeasible"
  | Unbounded -> failwith "Lp.Status.get_optimal: unbounded"
  | Iteration_limit -> failwith "Lp.Status.get_optimal: iteration limit"

let warm_start_outcome_name = function
  | No_warm_start -> "none"
  | Dual_reopt -> "dual_reopt"
  | Warm_accepted _ -> "accepted"
  | Warm_fell_back -> "fell_back"

let pp_warm_start_outcome ppf = function
  | No_warm_start -> Format.pp_print_string ppf "cold"
  | Dual_reopt -> Format.pp_print_string ppf "warm (dual re-opt)"
  | Warm_accepted { repair_rounds = 0 } ->
      Format.pp_print_string ppf "warm (accepted)"
  | Warm_accepted { repair_rounds } ->
      Format.fprintf ppf "warm (repaired, %d rounds)" repair_rounds
  | Warm_fell_back -> Format.pp_print_string ppf "warm rejected (cold fallback)"

let pp_stats ppf s =
  Format.fprintf ppf
    "%d+%d+%dd pivots, %d refactorizations, eta peak %d, %d bound flips, %a"
    s.phase1_pivots s.phase2_pivots s.dual_pivots s.refactorizations s.eta_peak
    s.bound_flips pp_warm_start_outcome s.warm_start;
  if s.perturbations > 0 then
    Format.fprintf ppf ", %d perturbation round(s)" s.perturbations;
  if s.bland then Format.fprintf ppf ", bland"

let pp_outcome ppf = function
  | Optimal s ->
      Format.fprintf ppf "optimal (objective %g, %d iterations)" s.objective
        s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"
