module Basis = struct
  type var_status = Basic | At_lower | At_upper | Free

  type t = {
    cols : var_status array;  (* one per structural variable *)
    rows : var_status array;  (* one per row: the status of its slack *)
  }

  let make ~cols ~rows = { cols = Array.copy cols; rows = Array.copy rows }
  let num_cols b = Array.length b.cols
  let num_rows b = Array.length b.rows
  let col_status b j = b.cols.(j)
  let row_status b i = b.rows.(i)

  let count_basic b =
    let count =
      Array.fold_left
        (fun acc s -> if s = Basic then acc + 1 else acc)
        0
    in
    count b.cols + count b.rows

  let pp ppf b =
    Format.fprintf ppf "basis (%d cols, %d rows, %d basic)" (num_cols b)
      (num_rows b) (count_basic b)
end

type solution = {
  objective : float;
  primal : float array;
  dual : float array;
  reduced_costs : float array;
  iterations : int;
  basis : Basis.t option;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

let is_optimal = function Optimal _ -> true | Infeasible | Unbounded | Iteration_limit -> false

let get_optimal = function
  | Optimal s -> s
  | Infeasible -> failwith "Lp.Status.get_optimal: infeasible"
  | Unbounded -> failwith "Lp.Status.get_optimal: unbounded"
  | Iteration_limit -> failwith "Lp.Status.get_optimal: iteration limit"

let pp_outcome ppf = function
  | Optimal s ->
      Format.fprintf ppf "optimal (objective %g, %d iterations)" s.objective
        s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"
