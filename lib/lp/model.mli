(** Mutable linear-program builder.

    A model is a set of variables with bounds, an objective, and linear
    constraints. Variables default to [0 <= x < infinity]. The builder is
    the single entry point for every formulation in this repository
    (Postcard's time-expanded program, the flow-based baseline, the Sec. VI
    extensions, and the random programs of the property tests). *)

type t

type var = private int
(** Variable handle; also the variable's column index in builder order. *)

type row = private int
(** Constraint handle; also the row index in builder order. *)

type sense = Le | Ge | Eq

type objective_sense = Minimize | Maximize

val create : ?name:string -> objective_sense -> t

val name : t -> string

val objective_sense : t -> objective_sense

val add_var :
  t -> ?name:string -> ?lb:float -> ?ub:float -> ?obj:float -> unit -> var
(** Add a variable. Defaults: [lb = 0.], [ub = infinity], [obj = 0.].
    Use [lb:neg_infinity] for a free variable. Raises [Invalid_argument]
    if [lb > ub] or either bound is NaN. When [name] is omitted no name is
    stored; {!var_name} synthesizes ["x<index>"] on demand (large
    formulations should omit names — an eager name per column is pure
    allocation overhead). *)

val add_vars : t -> int -> ?lb:float -> ?ub:float -> ?obj:float -> unit -> var array
(** [add_vars t k] adds [k] variables sharing the same bounds/objective. *)

val set_obj : t -> var -> float -> unit
(** Overwrite a variable's objective coefficient. *)

val add_obj : t -> var -> float -> unit
(** Accumulate into a variable's objective coefficient. *)

val add_constraint : t -> ?name:string -> (var * float) list -> sense -> float -> row
(** [add_constraint t terms sense rhs] adds [sum terms (sense) rhs].
    Duplicate variables in [terms] are summed. As with {!add_var}, an
    omitted [name] stores nothing and {!row_name} synthesizes
    ["r<index>"]. *)

val num_vars : t -> int
val num_rows : t -> int

val var_of_index : t -> int -> var
(** Recover a handle from a raw column index (bounds-checked). *)

val row_of_index : t -> int -> row
(** Recover a handle from a raw row index (bounds-checked). *)

val var_name : t -> var -> string
val row_name : t -> row -> string
val lower_bound : t -> var -> float
val upper_bound : t -> var -> float
val obj_coeff : t -> var -> float

val row_terms : t -> row -> (var * float) list
val row_sense : t -> row -> sense
val row_rhs : t -> row -> float

val iter_rows : t -> (row -> (var * float) list -> sense -> float -> unit) -> unit

val objective_value : t -> float array -> float
(** [objective_value t x] evaluates the objective at a full assignment
    (indexed by variable). *)

val constraint_violation : t -> float array -> float
(** [constraint_violation t x] is the largest absolute violation of any
    constraint or bound at [x]; [0.] means feasible. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of the whole program (for debugging). *)
