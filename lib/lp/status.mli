(** Solver outcome types shared by the revised simplex and the dense
    oracle. *)

(** An exportable simplex basis: the status of every structural variable
    and of every row's slack at a vertex. Captured from an optimal solve
    and replayed — possibly onto a {e different} model, after translation
    through {!Basis.make} — as the [?warm_start] argument of
    {!Simplex.solve}. The warm-start machinery never trusts a basis: a
    singular, truncated, or simply wrong basis is repaired or discarded,
    so any statuses are safe to supply. *)
module Basis : sig
  type var_status =
    | Basic
    | At_lower  (** Nonbasic at its lower bound. *)
    | At_upper  (** Nonbasic at its upper bound. *)
    | Free  (** Nonbasic free variable (both bounds infinite), at zero. *)

  type t

  val make : cols:var_status array -> rows:var_status array -> t
  (** [make ~cols ~rows] builds a basis for a model with
      [Array.length cols] variables and [Array.length rows] rows; the
      arrays are copied. *)

  val num_cols : t -> int
  val num_rows : t -> int

  val col_status : t -> int -> var_status
  (** Status of the [j]-th structural variable. *)

  val row_status : t -> int -> var_status
  (** Status of the [i]-th row's slack. *)

  val count_basic : t -> int

  val pp : Format.formatter -> t -> unit
end

(** How a carried warm-start basis fared (see {!Simplex.solve}). *)
type warm_start_outcome =
  | No_warm_start  (** No basis was supplied; the solve started cold. *)
  | Dual_reopt
      (** The basis installed dual-feasibly and the solve re-optimized
          with the dual simplex: zero phase-1 pivots, zero repair
          rounds. The default path for slot-to-slot and post-strand
          re-solves, where only RHS/bounds change. *)
  | Warm_accepted of { repair_rounds : int }
      (** The basis was installed by the primal crash after
          [repair_rounds] repair rounds beyond the first install
          (0 = installed as carried, more = repaired). *)
  | Warm_fell_back
      (** The basis could not be installed, or iterating from it hit a
          numerical failure; the reported solve is the cold fallback. *)

(** Per-solve effort record, filled in by the revised simplex. Solvers
    that do not track a statistic report its zero/default ({!no_stats});
    [iterations] in {!solution} always remains the authoritative pivot
    total. *)
type stats = {
  phase1_pivots : int;
  phase2_pivots : int;
  dual_pivots : int;
      (** Dual-simplex re-optimization pivots ([Dual_reopt] solves only;
          disjoint from the primal phase split, and
          [phase1_pivots + phase2_pivots + dual_pivots = iterations]). *)
  refactorizations : int;
      (** Basis refactorizations after the initial one (scheduled or
          forced by an unstable eta update). *)
  eta_peak : int;  (** Longest eta file reached between refactorizations. *)
  bound_flips : int;  (** Ratio-test outcomes that flipped the entering variable. *)
  perturbations : int;
      (** Cost-perturbation rounds triggered by degeneracy, both phases. *)
  bland : bool;  (** Bland's rule (the terminal anti-cycling level) was reached. *)
  warm_start : warm_start_outcome;
}

val no_stats : stats
(** All-zero stats with [No_warm_start]; what solvers without
    instrumentation attach. *)

type solution = {
  objective : float;  (** Objective value in the model's own sense. *)
  primal : float array;  (** One value per model variable. *)
  dual : float array;  (** One value per model row (simplex multipliers). *)
  reduced_costs : float array;  (** One value per model variable. *)
  iterations : int;  (** Total simplex pivots across both phases. *)
  stats : stats;  (** Solve-effort breakdown (see {!stats}). *)
  basis : Basis.t option;
      (** The optimal basis, when the solver maintains one (the revised
          simplex does; the dense oracle and the interior-point method
          return [None]). Feed it back as [?warm_start] to resolve a
          perturbed or structurally similar model. *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

val is_optimal : outcome -> bool

val get_optimal : outcome -> solution
(** Raises [Failure] when the outcome is not [Optimal]; convenience for
    callers whose programs are feasible by construction. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_warm_start_outcome : Format.formatter -> warm_start_outcome -> unit

val warm_start_outcome_name : warm_start_outcome -> string
(** Stable machine-readable name: ["none"], ["dual_reopt"], ["accepted"]
    or ["fell_back"] — the vocabulary used in traces and bench JSON. *)

val pp_stats : Format.formatter -> stats -> unit
