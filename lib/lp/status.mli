(** Solver outcome types shared by the revised simplex and the dense
    oracle. *)

(** An exportable simplex basis: the status of every structural variable
    and of every row's slack at a vertex. Captured from an optimal solve
    and replayed — possibly onto a {e different} model, after translation
    through {!Basis.make} — as the [?warm_start] argument of
    {!Simplex.solve}. The warm-start machinery never trusts a basis: a
    singular, truncated, or simply wrong basis is repaired or discarded,
    so any statuses are safe to supply. *)
module Basis : sig
  type var_status =
    | Basic
    | At_lower  (** Nonbasic at its lower bound. *)
    | At_upper  (** Nonbasic at its upper bound. *)
    | Free  (** Nonbasic free variable (both bounds infinite), at zero. *)

  type t

  val make : cols:var_status array -> rows:var_status array -> t
  (** [make ~cols ~rows] builds a basis for a model with
      [Array.length cols] variables and [Array.length rows] rows; the
      arrays are copied. *)

  val num_cols : t -> int
  val num_rows : t -> int

  val col_status : t -> int -> var_status
  (** Status of the [j]-th structural variable. *)

  val row_status : t -> int -> var_status
  (** Status of the [i]-th row's slack. *)

  val count_basic : t -> int

  val pp : Format.formatter -> t -> unit
end

type solution = {
  objective : float;  (** Objective value in the model's own sense. *)
  primal : float array;  (** One value per model variable. *)
  dual : float array;  (** One value per model row (simplex multipliers). *)
  reduced_costs : float array;  (** One value per model variable. *)
  iterations : int;  (** Total simplex pivots across both phases. *)
  basis : Basis.t option;
      (** The optimal basis, when the solver maintains one (the revised
          simplex does; the dense oracle and the interior-point method
          return [None]). Feed it back as [?warm_start] to resolve a
          perturbed or structurally similar model. *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

val is_optimal : outcome -> bool

val get_optimal : outcome -> solution
(** Raises [Failure] when the outcome is not [Optimal]; convenience for
    callers whose programs are feasible by construction. *)

val pp_outcome : Format.formatter -> outcome -> unit
