let feas_tol = 1e-9

type reduction = {
  objective_offset : float;
  kept_vars : int array;
  kept_rows : int array;
  (* For every original variable: either its fixed value or its index in
     the reduced model. *)
  var_disposition : [ `Fixed of float | `Kept of int ] array;
}

let objective_offset r = r.objective_offset
let kept_vars r = r.kept_vars
let kept_rows r = r.kept_rows

let restore_primal r reduced =
  Array.map
    (function `Fixed v -> v | `Kept idx -> reduced.(idx))
    r.var_disposition

(* Working bounds are mutated by the reduction loop; rows are rebuilt with
   fixed variables substituted away each pass (simple, and the passes are
   few). *)
exception Infeasible_detected

let presolve model =
  let n = Model.num_vars model in
  let lb = Array.init n (fun v -> Model.lower_bound model (Model.var_of_index model v)) in
  let ub = Array.init n (fun v -> Model.upper_bound model (Model.var_of_index model v)) in
  let fixed = Array.make n false in
  let row_dropped = Array.make (Model.num_rows model) false in
  let check_var v =
    if lb.(v) > ub.(v) +. feas_tol then raise Infeasible_detected;
    if not fixed.(v) && ub.(v) -. lb.(v) <= feas_tol && lb.(v) > neg_infinity
    then fixed.(v) <- true
  in
  try
    for v = 0 to n - 1 do
      check_var v
    done;
    let changed = ref true in
    while !changed do
      changed := false;
      Model.iter_rows model (fun r terms sense rhs ->
          let r = (r :> int) in
          if not row_dropped.(r) then begin
            (* Substitute fixed variables. *)
            let live = ref [] and rhs' = ref rhs in
            List.iter
              (fun ((v : Model.var), c) ->
                let v = (v :> int) in
                if fixed.(v) then rhs' := !rhs' -. (c *. lb.(v))
                else live := (v, c) :: !live)
              terms;
            match !live with
            | [] ->
                let ok =
                  match sense with
                  | Model.Le -> 0. <= !rhs' +. feas_tol
                  | Model.Ge -> 0. >= !rhs' -. feas_tol
                  | Model.Eq -> abs_float !rhs' <= feas_tol
                in
                if not ok then raise Infeasible_detected;
                row_dropped.(r) <- true;
                changed := true
            | [ (v, c) ] ->
                (* Singleton row: tighten the variable's bounds. *)
                let bound = !rhs' /. c in
                (match sense with
                 | Model.Eq ->
                     if bound < lb.(v) -. feas_tol || bound > ub.(v) +. feas_tol
                     then raise Infeasible_detected;
                     (* Pin exactly to avoid tolerance drift. *)
                     lb.(v) <- bound;
                     ub.(v) <- bound
                 | Model.Le ->
                     if c > 0. then begin
                       if bound < ub.(v) then ub.(v) <- bound
                     end
                     else if bound > lb.(v) then lb.(v) <- bound
                 | Model.Ge ->
                     if c > 0. then begin
                       if bound > lb.(v) then lb.(v) <- bound
                     end
                     else if bound < ub.(v) then ub.(v) <- bound);
                check_var v;
                row_dropped.(r) <- true;
                changed := true
            | _ :: _ :: _ -> ()
          end)
    done;
    (* Assemble the reduced model. *)
    let var_disposition =
      Array.init n (fun v -> if fixed.(v) then `Fixed lb.(v) else `Kept 0)
    in
    let kept_vars =
      Array.of_list
        (List.filter (fun v -> not fixed.(v)) (List.init n (fun v -> v)))
    in
    Array.iteri (fun idx v -> var_disposition.(v) <- `Kept idx) kept_vars;
    let objective_offset = ref 0. in
    for v = 0 to n - 1 do
      if fixed.(v) then
        objective_offset :=
          !objective_offset
          +. (Model.obj_coeff model (Model.var_of_index model v) *. lb.(v))
    done;
    let reduced = Model.create ~name:(Model.name model ^ "-presolved")
        (Model.objective_sense model)
    in
    let new_vars =
      Array.map
        (fun v ->
          Model.add_var reduced
            ~name:(Model.var_name model (Model.var_of_index model v))
            ~lb:lb.(v) ~ub:ub.(v)
            ~obj:(Model.obj_coeff model (Model.var_of_index model v))
            ())
        kept_vars
    in
    let var_map = Hashtbl.create 64 in
    Array.iteri (fun idx v -> Hashtbl.replace var_map v new_vars.(idx)) kept_vars;
    let kept_rows = ref [] in
    Model.iter_rows model (fun r terms sense rhs ->
        let r = (r :> int) in
        if not row_dropped.(r) then begin
          let rhs' = ref rhs and live = ref [] in
          List.iter
            (fun ((v : Model.var), c) ->
              let v = (v :> int) in
              if fixed.(v) then rhs' := !rhs' -. (c *. lb.(v))
              else live := (Hashtbl.find var_map v, c) :: !live)
            terms;
          ignore
            (Model.add_constraint reduced
               ~name:(Model.row_name model (Model.row_of_index model r))
               !live sense !rhs');
          kept_rows := r :: !kept_rows
        end);
    `Reduced
      ( reduced,
        { objective_offset = !objective_offset;
          kept_vars;
          kept_rows = Array.of_list (List.rev !kept_rows);
          var_disposition } )
  with Infeasible_detected -> `Infeasible

let solve ?params model =
  match presolve model with
  | `Infeasible -> Status.Infeasible
  | `Reduced (reduced, r) -> (
      match Simplex.solve ?params reduced with
      | Status.Optimal s ->
          let primal = restore_primal r s.Status.primal in
          let dual = Array.make (Model.num_rows model) 0. in
          Array.iteri
            (fun idx row -> dual.(row) <- s.Status.dual.(idx))
            r.kept_rows;
          let reduced_costs = Array.make (Model.num_vars model) 0. in
          Array.iteri
            (fun idx v -> reduced_costs.(v) <- s.Status.reduced_costs.(idx))
            r.kept_vars;
          Status.Optimal
            { Status.objective = s.Status.objective +. r.objective_offset;
              primal;
              dual;
              reduced_costs;
              iterations = s.Status.iterations;
              stats = s.Status.stats;
              (* Postsolve re-adds eliminated variables/rows, so the
                 reduced model's basis does not transfer. *)
              basis = None }
      | (Status.Infeasible | Status.Unbounded | Status.Iteration_limit) as o -> o)
