module Csc = Sparselin.Csc
module Lu = Sparselin.Lu
module Eta = Sparselin.Eta

let log_src = Logs.Src.create "lp.simplex" ~doc:"Revised simplex"

module Log = (val Logs.src_log log_src : Logs.LOG)

type params = {
  max_iterations : int;
  dual_tolerance : float;
  feasibility_tolerance : float;
  pivot_tolerance : float;
  refactor_frequency : int;
  degenerate_switch : int;
}

let default_params = {
  max_iterations = 200_000;
  dual_tolerance = 1e-7;
  feasibility_tolerance = 1e-7;
  pivot_tolerance = 1e-8;
  refactor_frequency = 32;
  degenerate_switch = 300;
}

type vstat = Basic | At_lower | At_upper | At_zero_free

type state = {
  p : params;
  sf : Standard_form.t;
  m : int;  (* rows *)
  tot : int;  (* structural + slack columns *)
  nall : int;  (* tot + m artificials *)
  art_sign : float array;
  lb : float array;  (* nall; artificial bounds mutated at phase switch *)
  ub : float array;
  cost : float array;  (* current (possibly perturbed) phase cost *)
  cost_orig : float array;  (* the phase cost without perturbation *)
  devex : float array;  (* reference-framework pricing weights *)
  d : float array;  (* reduced costs, maintained incrementally *)
  status : vstat array;
  basis : int array;  (* m: variable basic at each row position *)
  x : float array;  (* nall *)
  mutable lu : Lu.t;
  (* Eta file in application (oldest-first) order: FTRAN walks it forward,
     BTRAN backward. A growable array keeps the hot loops allocation-free
     (a list would need reversing on every FTRAN). *)
  mutable etas : Eta.t array;
  mutable n_etas : int;
  mutable iterations : int;
  mutable degenerate_run : int;
  mutable perturbed : bool;
  mutable perturb_rounds : int;
  mutable bland : bool;
  (* Solve-effort telemetry (never reset between phases; see
     Status.stats). *)
  mutable phase1_pivots : int;
  mutable dual_pivots : int;
  mutable refactorizations : int;
  mutable eta_peak : int;
  mutable bound_flips : int;
  mutable total_perturbations : int;
  mutable bland_used : bool;
  mutable warm : Status.warm_start_outcome;
  rng : Prelude.Rng.t;
      (* Seeded per solve: randomized entering choices during stalls are
         deterministic across runs. *)
}

(* Column of the working matrix [A | artificials]. *)
let iter_column st j f =
  if j < st.tot then Csc.iter_col st.sf.Standard_form.a j f
  else f (j - st.tot) st.art_sign.(j - st.tot)

(* Dot product of column [j] with a dense vector, avoiding closure
   dispatch on the solver's hottest path. *)
let dot_column st j v =
  if j < st.tot then Csc.dot_col st.sf.Standard_form.a j v
  else st.art_sign.(j - st.tot) *. v.(j - st.tot)

(* Profiling probes on the solver kernels fire per call, so they use the
   raw begin/end pair (one atomic load each when [--spans] is off) rather
   than [Span.with_]'s closure. Nothing in these bodies raises. *)
let ftran st v =
  let sp = Obs.Span.begin_ "lp.ftran" in
  Lu.solve st.lu v;
  for k = 0 to st.n_etas - 1 do
    Eta.apply_ftran (Array.unsafe_get st.etas k) v
  done;
  Obs.Span.end_ sp

let btran st v =
  let sp = Obs.Span.begin_ "lp.btran" in
  for k = st.n_etas - 1 downto 0 do
    Eta.apply_btran (Array.unsafe_get st.etas k) v
  done;
  Lu.solve_transpose st.lu v;
  Obs.Span.end_ sp

let push_eta st e =
  let cap = Array.length st.etas in
  if st.n_etas = cap then begin
    let grown = Array.make (max 16 (2 * cap)) e in
    Array.blit st.etas 0 grown 0 st.n_etas;
    st.etas <- grown
  end;
  st.etas.(st.n_etas) <- e;
  st.n_etas <- st.n_etas + 1;
  if st.n_etas > st.eta_peak then st.eta_peak <- st.n_etas

exception Numerical_failure

let factorize st =
  let sp = Obs.Span.begin_ "lp.refactorize" in
  (* Entries stream straight into the factorization's scratch vectors; no
     per-column intermediate. *)
  match
    Lu.factorize_iter ~dim:st.m (fun k f -> iter_column st st.basis.(k) f)
  with
  | Ok lu ->
      st.lu <- lu;
      st.n_etas <- 0;
      st.refactorizations <- st.refactorizations + 1;
      Obs.Span.end_ sp
  | Error (Lu.Singular _) ->
      Obs.Span.end_ sp;
      raise Numerical_failure

(* Recompute the values of basic variables from the nonbasic assignment:
   x_B = B^-1 (b - A_N x_N). *)
let recompute_basics st =
  let rhs = Array.copy st.sf.Standard_form.b in
  for j = 0 to st.nall - 1 do
    (match st.status.(j) with
     | Basic -> ()
     | At_lower | At_upper | At_zero_free ->
         let xj = st.x.(j) in
         if xj <> 0. then iter_column st j (fun i v -> rhs.(i) <- rhs.(i) -. (v *. xj)))
  done;
  ftran st rhs;
  for i = 0 to st.m - 1 do
    st.x.(st.basis.(i)) <- rhs.(i)
  done

let basic_cost_multipliers st =
  let y = Array.make st.m 0. in
  for i = 0 to st.m - 1 do
    y.(i) <- st.cost.(st.basis.(i))
  done;
  btran st y;
  y

let reduced_cost st y j = st.cost.(j) -. dot_column st j y

(* Rebuild every reduced cost from the multipliers; called at phase starts,
   after cost perturbation/restoration, and periodically to wash out the
   drift of incremental updates. *)
let refresh_reduced_costs st =
  let y = basic_cost_multipliers st in
  for j = 0 to st.nall - 1 do
    st.d.(j) <- (if st.status.(j) = Basic then 0. else reduced_cost st y j)
  done

(* Entering-variable eligibility given its reduced cost. *)
let eligible st j d =
  match st.status.(j) with
  | Basic -> false
  | At_lower -> st.lb.(j) < st.ub.(j) && d < -.st.p.dual_tolerance
  | At_upper -> st.lb.(j) < st.ub.(j) && d > st.p.dual_tolerance
  | At_zero_free -> abs_float d > st.p.dual_tolerance

type pricing_result = Entering of int * float | Optimal_reached

(* Pricing is a scan of the maintained reduced costs: Devex scores
   (reduced-cost squared over reference weight) by default, Bland's rule
   (first eligible index) as the anti-cycling fallback. *)
let price_scan st =
  if st.bland then begin
    let found = ref Optimal_reached in
    (try
       for j = 0 to st.nall - 1 do
         if st.status.(j) <> Basic then begin
           let d = st.d.(j) in
           if eligible st j d then begin
             found := Entering (j, d);
             raise Exit
           end
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    (* During long degenerate runs, randomize among near-best candidates:
       deterministic tie-breaking is what lets stalls persist. *)
    let randomize = st.degenerate_run > st.p.degenerate_switch / 2 in
    let best = ref (-1) and best_score = ref 0. and best_d = ref 0. in
    let seen = ref 0 in
    for j = 0 to st.nall - 1 do
      if st.status.(j) <> Basic then begin
        let d = st.d.(j) in
        if eligible st j d then begin
          let score = d *. d /. st.devex.(j) in
          let take =
            if score > !best_score then true
            else if randomize && score > 0.2 *. !best_score then begin
              (* Reservoir-style: replace with decreasing probability. *)
              incr seen;
              Prelude.Rng.int st.rng (!seen + 2) = 0
            end
            else false
          in
          if take then begin
            best := j;
            best_score := max !best_score score;
            best_d := d
          end
        end
      end
    done;
    if !best < 0 then Optimal_reached else Entering (!best, !best_d)
  end

let price st =
  let sp = Obs.Span.begin_ "lp.pricing" in
  let r = price_scan st in
  Obs.Span.end_ sp;
  r

(* Combined post-pivot update of Devex weights and reduced costs. The
   entering column q pivots at row r with tableau element alpha_r; for
   every nonbasic j, the pivot-row entry beta_j = (B^-T e_r) . A_j drives
   both the reference-weight update and the reduced-cost update
   d_j -= (d_q / alpha_r) beta_j. Runs before the basis arrays change. *)
let pivot_update st ~enter ~r ~alpha_r =
  let gamma_q = st.devex.(enter) in
  let d_q = st.d.(enter) in
  let rho = Array.make st.m 0. in
  rho.(r) <- 1.;
  btran st rho;
  let step = d_q /. alpha_r in
  let ratio2 b = (b /. alpha_r) *. (b /. alpha_r) in
  let too_big = ref false in
  for j = 0 to st.nall - 1 do
    if st.status.(j) <> Basic && j <> enter then begin
      let beta = dot_column st j rho in
      if beta <> 0. then begin
        st.d.(j) <- st.d.(j) -. (step *. beta);
        let candidate = ratio2 beta *. gamma_q in
        if candidate > st.devex.(j) then st.devex.(j) <- candidate;
        if st.devex.(j) > 1e8 then too_big := true
      end
    end
  done;
  (* The leaving variable becomes nonbasic. *)
  let leaving = st.basis.(r) in
  st.d.(leaving) <- -.step;
  st.d.(enter) <- 0.;
  let leaving_weight = max (gamma_q /. (alpha_r *. alpha_r)) 1. in
  st.devex.(leaving) <- leaving_weight;
  if leaving_weight > 1e8 then too_big := true;
  if !too_big then Array.fill st.devex 0 st.nall 1.

(* Deterministic tiny cost perturbation: breaks massive dual degeneracy
   that would otherwise stall the iteration. The true costs are restored
   (and optimality re-verified) before a phase can conclude. *)
let perturb_costs st =
  st.perturbed <- true;
  st.perturb_rounds <- st.perturb_rounds + 1;
  st.total_perturbations <- st.total_perturbations + 1;
  let noise j =
    (* Map the index through a Weyl sequence for a stable pseudo-random
       fraction in (0.5, 1.5); the round number shifts the sequence so each
       escalation explores a different trajectory. *)
    let golden = 0.6180339887498949 in
    let silver = 0.4142135623730951 in
    let f =
      Float.rem
        ((float_of_int (j + 1) *. golden)
         +. (float_of_int st.perturb_rounds *. silver))
        1.
    in
    0.5 +. f
  in
  for j = 0 to st.nall - 1 do
    if st.lb.(j) < st.ub.(j) then begin
      (* Well above the dual tolerance so that the perturbation actually
         changes pricing decisions; scaled down on successive rounds'
         survivors by the noise factor only. *)
      let scale = 1e-5 *. (1. +. abs_float st.cost_orig.(j)) in
      st.cost.(j) <- st.cost_orig.(j) +. (scale *. noise j)
    end
  done;
  refresh_reduced_costs st

let restore_costs st =
  st.perturbed <- false;
  Array.blit st.cost_orig 0 st.cost 0 st.nall;
  refresh_reduced_costs st

type ratio_result =
  | Hit_basic of int * float  (* leaving basis position, step length *)
  | Bound_flip of float
  | Ratio_unbounded

(* Two-pass ratio test. [dir] is +1. when the entering variable increases,
   -1. when it decreases; [alpha] is the FTRAN'd entering column. *)
let ratio_scan st ~alpha ~dir ~enter =
  let feas = st.p.feasibility_tolerance in
  let piv_tol = st.p.pivot_tolerance in
  let t_bound =
    if st.lb.(enter) > neg_infinity && st.ub.(enter) < infinity then
      st.ub.(enter) -. st.lb.(enter)
    else infinity
  in
  (* Exact limit imposed by basic row [i]; infinity when none. *)
  let limit ~slack i =
    let delta = dir *. alpha.(i) in
    let bvar = st.basis.(i) in
    if delta > piv_tol then begin
      let l = st.lb.(bvar) in
      if l > neg_infinity then (st.x.(bvar) -. l +. slack) /. delta
      else infinity
    end
    else if delta < -.piv_tol then begin
      let u = st.ub.(bvar) in
      if u < infinity then (u -. st.x.(bvar) +. slack) /. (-.delta)
      else infinity
    end
    else infinity
  in
  (* Pass 1: relaxed maximum step. *)
  let t_max = ref t_bound in
  for i = 0 to st.m - 1 do
    let l = limit ~slack:feas i in
    if l < !t_max then t_max := l
  done;
  if !t_max = infinity then Ratio_unbounded
  else begin
    (* Pass 2: among rows whose exact limit is within the relaxed step,
       prefer the largest pivot magnitude (numerical stability). In Bland
       mode, prefer the smallest basic variable index among exact minima. *)
    let choice = ref (-1) and choice_limit = ref infinity and choice_abs = ref 0. in
    for i = 0 to st.m - 1 do
      let l = limit ~slack:0. i in
      if l <= !t_max then begin
        let a = abs_float alpha.(i) in
        let better =
          if !choice < 0 then true
          else if st.bland then
            l < !choice_limit -. 1e-12
            || (abs_float (l -. !choice_limit) <= 1e-12
                && st.basis.(i) < st.basis.(!choice))
          else a > !choice_abs
        in
        if better then begin
          choice := i;
          choice_limit := l;
          choice_abs := a
        end
      end
    done;
    if !choice < 0 then
      (* Every row limit exceeded the relaxed bound: the entering variable
         flips to its opposite bound. *)
      if t_bound < infinity then Bound_flip t_bound else Ratio_unbounded
    else begin
      let t = max 0. !choice_limit in
      if t_bound <= t then Bound_flip t_bound else Hit_basic (!choice, t)
    end
  end

let ratio_test st ~alpha ~dir ~enter =
  let sp = Obs.Span.begin_ "lp.ratio_test" in
  let r = ratio_scan st ~alpha ~dir ~enter in
  Obs.Span.end_ sp;
  r

(* Apply a step of length [t] (in the entering direction [dir]); updates
   every basic value and the entering variable's value. *)
let apply_step st ~alpha ~dir ~enter ~t =
  if t <> 0. then begin
    for i = 0 to st.m - 1 do
      let delta = dir *. alpha.(i) in
      if delta <> 0. then begin
        let bvar = st.basis.(i) in
        st.x.(bvar) <- st.x.(bvar) -. (delta *. t)
      end
    done;
    st.x.(enter) <- st.x.(enter) +. (dir *. t)
  end

(* Escalating response to long degenerate (or micro-step) runs: first
   perturb the costs (cheap, almost always enough), finally fall back to
   Bland's rule. Steps below the feasibility tolerance make no meaningful
   progress and count as degenerate. *)
let note_degeneracy st t =
  if t <= st.p.feasibility_tolerance then begin
    st.degenerate_run <- st.degenerate_run + 1;
    if st.degenerate_run > st.p.degenerate_switch then begin
      st.degenerate_run <- 0;
      if st.perturb_rounds < 10 then begin
        Log.debug (fun m ->
            m "stall at iteration %d: perturbing costs (round %d)"
              st.iterations (st.perturb_rounds + 1));
        perturb_costs st;
        (* A fresh reference framework keeps Devex meaningful on the new
           cost vector. *)
        Array.fill st.devex 0 st.nall 1.
      end
      else begin
        Log.debug (fun m ->
            m "stall persists at iteration %d: switching to Bland's rule"
              st.iterations);
        st.bland <- true;
        st.bland_used <- true
      end
    end
  end
  else st.degenerate_run <- 0

type phase_result = Phase_optimal | Phase_unbounded | Phase_iteration_limit

let run_phase st =
  let result = ref Phase_optimal in
  refresh_reduced_costs st;
  (try
     while true do
       if st.iterations >= st.p.max_iterations then begin
         result := Phase_iteration_limit;
         raise Exit
       end;
       if st.iterations mod 5000 = 4999 then
         Log.debug (fun m ->
             let obj = ref 0. in
             for j = 0 to st.nall - 1 do
               obj := !obj +. (st.cost_orig.(j) *. st.x.(j))
             done;
             m "iteration %d: objective %.6f%s%s" st.iterations !obj
               (if st.perturbed then " (perturbed)" else "")
               (if st.bland then " (bland)" else ""));
       match price st with
       | Optimal_reached ->
           if st.perturbed then begin
             (* Optimal for the perturbed costs: restore the real ones and
                keep iterating (few cleanup pivots, if any). *)
             restore_costs st;
             st.degenerate_run <- 0
           end
           else raise Exit
       | Entering (enter, d) ->
           st.iterations <- st.iterations + 1;
           let alpha = Array.make st.m 0. in
           iter_column st enter (fun i v -> alpha.(i) <- alpha.(i) +. v);
           ftran st alpha;
           let dir =
             match st.status.(enter) with
             | At_lower -> 1.
             | At_upper -> -1.
             | At_zero_free -> if d < 0. then 1. else -1.
             | Basic -> assert false
           in
           (match ratio_test st ~alpha ~dir ~enter with
            | Ratio_unbounded ->
                if st.perturbed then begin
                  restore_costs st;
                  st.degenerate_run <- 0
                end
                else begin
                  result := Phase_unbounded;
                  raise Exit
                end
            | Bound_flip t ->
                apply_step st ~alpha ~dir ~enter ~t;
                st.bound_flips <- st.bound_flips + 1;
                (match st.status.(enter) with
                 | At_lower ->
                     st.status.(enter) <- At_upper;
                     st.x.(enter) <- st.ub.(enter)
                 | At_upper ->
                     st.status.(enter) <- At_lower;
                     st.x.(enter) <- st.lb.(enter)
                 | At_zero_free | Basic -> assert false);
                note_degeneracy st t
            | Hit_basic (r, t) ->
                apply_step st ~alpha ~dir ~enter ~t;
                pivot_update st ~enter ~r ~alpha_r:alpha.(r);
                let leaving = st.basis.(r) in
                let delta_r = dir *. alpha.(r) in
                if delta_r > 0. then begin
                  st.status.(leaving) <- At_lower;
                  st.x.(leaving) <- st.lb.(leaving)
                end
                else begin
                  st.status.(leaving) <- At_upper;
                  st.x.(leaving) <- st.ub.(leaving)
                end;
                st.basis.(r) <- enter;
                st.status.(enter) <- Basic;
                (match Eta.make ~pos:r ~alpha with
                 | eta -> push_eta st eta
                 | exception Invalid_argument _ ->
                     (* Pivot too small for a stable eta update: rebuild the
                        factorization from the new basis instead. *)
                     factorize st;
                     recompute_basics st;
                     refresh_reduced_costs st);
                if st.n_etas >= st.p.refactor_frequency then begin
                  factorize st;
                  recompute_basics st;
                  (* Wash out incremental drift in the reduced costs. *)
                  refresh_reduced_costs st
                end;
                note_degeneracy st t)
     done
   with Exit -> ());
  !result

let initialize ?params:(p = default_params) sf =
  let m = sf.Standard_form.n_rows in
  let tot = Standard_form.total_vars sf in
  let nall = tot + m in
  let lb = Array.make nall 0. and ub = Array.make nall 0. in
  Array.blit sf.Standard_form.lb 0 lb 0 tot;
  Array.blit sf.Standard_form.ub 0 ub 0 tot;
  let status = Array.make nall At_lower in
  let x = Array.make nall 0. in
  for j = 0 to tot - 1 do
    if lb.(j) > neg_infinity then begin
      status.(j) <- At_lower;
      x.(j) <- lb.(j)
    end
    else if ub.(j) < infinity then begin
      status.(j) <- At_upper;
      x.(j) <- ub.(j)
    end
    else begin
      status.(j) <- At_zero_free;
      x.(j) <- 0.
    end
  done;
  (* Residuals determine the artificial signs so that artificial values
     start non-negative. *)
  let resid = Array.copy sf.Standard_form.b in
  for j = 0 to tot - 1 do
    let xj = x.(j) in
    if xj <> 0. then
      Csc.iter_col sf.Standard_form.a j (fun i v ->
          resid.(i) <- resid.(i) -. (v *. xj))
  done;
  let art_sign = Array.make m 1. in
  let basis = Array.init m (fun i -> tot + i) in
  for i = 0 to m - 1 do
    if resid.(i) < 0. then art_sign.(i) <- -1.;
    let art = tot + i in
    lb.(art) <- 0.;
    ub.(art) <- infinity;
    status.(art) <- Basic;
    x.(art) <- abs_float resid.(i)
  done;
  (* The initial basis is the artificial diagonal, whose factorization is
     immediate. *)
  let lu0 =
    match Lu.factorize ~dim:m (fun k -> [| (k, art_sign.(k)) |]) with
    | Ok lu -> lu
    | Error (Lu.Singular _) -> assert false
  in
  { p; sf; m; tot; nall; art_sign; lb; ub;
    cost = Array.make nall 0.;
    cost_orig = Array.make nall 0.;
    devex = Array.make nall 1.;
    d = Array.make nall 0.;
    status; basis; x;
    lu = lu0;
    etas = [||];
    n_etas = 0;
    iterations = 0;
    degenerate_run = 0;
    perturbed = false;
    perturb_rounds = 0;
    bland = false;
    phase1_pivots = 0;
    dual_pivots = 0;
    refactorizations = 0;
    eta_peak = 0;
    bound_flips = 0;
    total_perturbations = 0;
    bland_used = false;
    warm = Status.No_warm_start;
    rng = Prelude.Rng.of_int (0x5ca1ab1e + m + tot) }

let phase1_needed st =
  let tol = st.p.feasibility_tolerance in
  let needs = ref false in
  for i = 0 to st.m - 1 do
    if st.x.(st.tot + i) > tol then needs := true
  done;
  !needs

let reset_phase_controls st =
  Array.fill st.devex 0 st.nall 1.;
  st.degenerate_run <- 0;
  st.perturbed <- false;
  st.perturb_rounds <- 0;
  st.bland <- false

let setup_phase1 st =
  Array.fill st.cost 0 st.nall 0.;
  for i = 0 to st.m - 1 do
    st.cost.(st.tot + i) <- 1.
  done;
  Array.blit st.cost 0 st.cost_orig 0 st.nall;
  reset_phase_controls st

let phase1_infeasibility st =
  let acc = ref 0. in
  for i = 0 to st.m - 1 do
    let a = st.tot + i in
    acc := !acc +. (match st.status.(a) with
                    | Basic -> max 0. st.x.(a)
                    | At_lower | At_upper | At_zero_free -> st.x.(a))
  done;
  !acc

let setup_phase2 st =
  Array.fill st.cost 0 st.nall 0.;
  Array.blit st.sf.Standard_form.cost 0 st.cost 0 st.tot;
  Array.blit st.cost 0 st.cost_orig 0 st.nall;
  (* Artificials are frozen at zero from now on. *)
  for i = 0 to st.m - 1 do
    let a = st.tot + i in
    st.lb.(a) <- 0.;
    st.ub.(a) <- 0.;
    if st.status.(a) <> Basic then begin
      st.status.(a) <- At_lower;
      st.x.(a) <- 0.
    end
  done;
  reset_phase_controls st

let solve_stats st =
  { Status.phase1_pivots = st.phase1_pivots;
    phase2_pivots = st.iterations - st.phase1_pivots - st.dual_pivots;
    dual_pivots = st.dual_pivots;
    refactorizations = st.refactorizations;
    eta_peak = st.eta_peak;
    bound_flips = st.bound_flips;
    perturbations = st.total_perturbations;
    bland = st.bland_used;
    warm_start = st.warm }

let export_status st j =
  match st.status.(j) with
  | Basic -> Status.Basis.Basic
  | At_lower -> Status.Basis.At_lower
  | At_upper -> Status.Basis.At_upper
  | At_zero_free -> Status.Basis.Free

let extract_solution st =
  let sf = st.sf in
  let n = sf.Standard_form.n_struct in
  let primal = Array.sub st.x 0 n in
  let y = basic_cost_multipliers st in
  let flip v = if sf.Standard_form.flip_objective then -.v else v in
  let dual = Array.map flip y in
  let reduced = Array.init n (fun j -> flip (reduced_cost st y j)) in
  let obj_sf = ref 0. in
  for j = 0 to st.tot - 1 do
    obj_sf := !obj_sf +. (sf.Standard_form.cost.(j) *. st.x.(j))
  done;
  let basis =
    Status.Basis.make
      ~cols:(Array.init n (fun j -> export_status st j))
      ~rows:(Array.init st.m (fun i -> export_status st (n + i)))
  in
  { Status.objective = Standard_form.model_objective sf !obj_sf;
    primal; dual; reduced_costs = reduced;
    iterations = st.iterations;
    stats = solve_stats st;
    basis = Some basis }

(* ------------------------------------------------------------------ *)
(* Warm start: crash the solver onto a basis carried over from an earlier
   (usually structurally similar) solve.

   The carried basis is never trusted. Installation runs a repair ladder:

   1. dimension mismatch -> reject (caller falls back to the cold start);
   2. the basic-marked columns go through {!Lu.crash_select}, which keeps a
      maximal independent subset and reports the rows it left unpivoted;
      skipped columns are demoted to a bound and every uncovered row gets
      its artificial column back;
   3. artificial basic values driven negative have their sign flipped
      (an artificial column is +-e_i, so the flip negates only its own
      value);
   4. basic structural/slack variables outside their bounds are demoted to
      the violated bound and the crash re-runs without them — each round
      strictly shrinks the candidate set, and a bounded number of rounds
      guards the pathological case;
   5. any Numerical_failure along the way rejects the warm start entirely.

   On success the state is primal feasible except possibly for positive
   artificial values, exactly the invariant the cold start establishes, so
   the ordinary phase-1/phase-2 driver runs unchanged. *)

(* Park nonbasic column [j] consistently with a carried status, preferring
   the carried bound when it exists. *)
let park_nonbasic st j (ws : Status.Basis.var_status) =
  let at_lower () =
    st.status.(j) <- At_lower;
    st.x.(j) <- st.lb.(j)
  and at_upper () =
    st.status.(j) <- At_upper;
    st.x.(j) <- st.ub.(j)
  and free () =
    st.status.(j) <- At_zero_free;
    st.x.(j) <- 0.
  in
  match ws with
  | Status.Basis.At_upper when st.ub.(j) < infinity -> at_upper ()
  | Status.Basis.At_upper | Status.Basis.At_lower | Status.Basis.Basic
  | Status.Basis.Free ->
      if st.lb.(j) > neg_infinity then at_lower ()
      else if st.ub.(j) < infinity then at_upper ()
      else free ()

let max_repair_rounds = 12

(* Returns [Some rounds] (the number of repair rounds beyond the initial
   crash install: 0 = installed as carried) on success, [None] when the
   basis must be rejected. *)
let try_warm_start st (wb : Status.Basis.t) =
  let n = st.sf.Standard_form.n_struct in
  if Status.Basis.num_cols wb <> n || Status.Basis.num_rows wb <> st.m then
    None
  else begin
    let wanted j =
      if j < n then Status.Basis.col_status wb j
      else Status.Basis.row_status wb (j - n)
    in
    (* Park every nonbasic column at its carried bound; collect the
       basic-marked ones as crash candidates. *)
    let candidates = ref [] in
    for j = st.tot - 1 downto 0 do
      match wanted j with
      | Status.Basis.Basic -> candidates := j :: !candidates
      | ws -> park_nonbasic st j ws
    done;
    let cands = ref (Array.of_list !candidates) in
    let installed = ref false and rejected = ref false in
    let rounds = ref 0 in
    while (not !installed) && not !rejected do
      incr rounds;
      if !rounds > max_repair_rounds then rejected := true
      else begin
        (* Artificials restart nonbasic at zero each round; the crash
           re-adds the ones it needs. *)
        for i = 0 to st.m - 1 do
          let a = st.tot + i in
          st.status.(a) <- At_lower;
          st.x.(a) <- 0.
        done;
        let cands_now = !cands in
        let accepted, unpivoted =
          Lu.crash_select ~dim:st.m ~ncols:(Array.length cands_now) (fun k f ->
              iter_column st cands_now.(k) f)
        in
        let kept = Array.make (Array.length cands_now) false in
        Array.iter (fun k -> kept.(k) <- true) accepted;
        Array.iteri
          (fun k j ->
            if not kept.(k) then park_nonbasic st j Status.Basis.At_lower)
          cands_now;
        let pos = ref 0 in
        Array.iter
          (fun k ->
            let j = cands_now.(k) in
            st.basis.(!pos) <- j;
            st.status.(j) <- Basic;
            incr pos)
          accepted;
        Array.iter
          (fun r ->
            let a = st.tot + r in
            st.basis.(!pos) <- a;
            st.status.(a) <- Basic;
            incr pos)
          unpivoted;
        assert (!pos = st.m);
        match factorize st with
        | exception Numerical_failure -> rejected := true
        | () ->
            recompute_basics st;
            (* An artificial column is art_sign * e_r: flipping the sign
               negates only that basic value, turning a negative (infeasible
               below its zero lower bound) artificial into a positive
               phase-1 residual. *)
            let flipped = ref false in
            for i = 0 to st.m - 1 do
              let bv = st.basis.(i) in
              if bv >= st.tot && st.x.(bv) < 0. then begin
                st.art_sign.(bv - st.tot) <- -.st.art_sign.(bv - st.tot);
                flipped := true
              end
            done;
            if !flipped then begin
              match factorize st with
              | exception Numerical_failure -> rejected := true
              | () -> recompute_basics st
            end;
            if not !rejected then begin
              (* Demote basic structural/slack variables parked outside
                 their bounds by the carried point; re-crash without them. *)
              let violators = ref [] in
              let feas = st.p.feasibility_tolerance in
              for i = 0 to st.m - 1 do
                let j = st.basis.(i) in
                if j < st.tot then begin
                  let xj = st.x.(j) in
                  if xj < st.lb.(j) -. feas || xj > st.ub.(j) +. feas then
                    violators := j :: !violators
                end
              done;
              match !violators with
              | [] -> installed := true
              | bad ->
                  List.iter
                    (fun j ->
                      let ws =
                        if st.x.(j) > st.ub.(j) then Status.Basis.At_upper
                        else Status.Basis.At_lower
                      in
                      park_nonbasic st j ws)
                    bad;
                  let keep = Array.make st.tot false in
                  for i = 0 to st.m - 1 do
                    let j = st.basis.(i) in
                    if j < st.tot && st.status.(j) = Basic then
                      keep.(j) <- true
                  done;
                  List.iter (fun j -> keep.(j) <- false) bad;
                  let next = ref [] in
                  for j = st.tot - 1 downto 0 do
                    if keep.(j) then next := j :: !next
                  done;
                  cands := Array.of_list !next
            end
      end
    done;
    if !installed then begin
      Log.debug (fun m ->
          m "warm start installed after %d repair round(s)" (!rounds - 1));
      Some (!rounds - 1)
    end
    else None
  end

(* ------------------------------------------------------------------ *)
(* Dual simplex re-optimization.

   After a slot-to-slot or post-strand re-solve only the RHS and bounds
   of the program change, so the previous optimal basis — translated
   through Basis_map — stays *dual* feasible: its reduced costs still
   have optimal signs, only some basic values drifted outside their
   bounds. The dual simplex restores primal feasibility directly, with
   zero phase-1 pivots and zero repair rounds: each pivot picks the most
   infeasible basic variable to leave (dual Devex row weights) and a
   bounded-variable two-pass ratio test over the pivot row picks the
   entering column that keeps the reduced-cost signs intact.

   The machinery below shares everything with the primal: the LU/eta
   file, [apply_step], the reduced-cost update (the same rank-one
   formula as [pivot_update], against the stored pivot row instead of a
   second BTRAN), and the refactorization schedule. Cost perturbation is
   *not* used — it would destroy the dual feasibility the method lives
   on — so persistent dual degeneracy trips a stall counter and the
   solve falls back to the primal warm path instead. *)

(* Install a carried basis for dual re-optimization: park nonbasics at
   their carried bounds, run a single crash round (no repair ladder —
   out-of-bound *basic* values are the dual's job, not a defect), move
   straight to phase-2 costs, and verify dual feasibility of the
   nonbasic reduced costs, bound-flipping any violator with a finite
   opposite bound. Returns false when the basis must go through the
   primal path instead (dimension mismatch, singular crash, or a dual
   infeasibility that cannot be flipped away). *)
let try_dual_reopt st (wb : Status.Basis.t) =
  let n = st.sf.Standard_form.n_struct in
  if Status.Basis.num_cols wb <> n || Status.Basis.num_rows wb <> st.m then
    false
  else begin
    let wanted j =
      if j < n then Status.Basis.col_status wb j
      else Status.Basis.row_status wb (j - n)
    in
    let candidates = ref [] in
    for j = st.tot - 1 downto 0 do
      match wanted j with
      | Status.Basis.Basic -> candidates := j :: !candidates
      | ws -> park_nonbasic st j ws
    done;
    (* Artificials start nonbasic at zero; the crash re-adds the ones it
       needs to cover rows the carried basis left unpivoted. *)
    for i = 0 to st.m - 1 do
      let a = st.tot + i in
      st.status.(a) <- At_lower;
      st.x.(a) <- 0.
    done;
    let cands = Array.of_list !candidates in
    let accepted, unpivoted =
      Lu.crash_select ~dim:st.m ~ncols:(Array.length cands) (fun k f ->
          iter_column st cands.(k) f)
    in
    let kept = Array.make (Array.length cands) false in
    Array.iter (fun k -> kept.(k) <- true) accepted;
    Array.iteri
      (fun k j -> if not kept.(k) then park_nonbasic st j Status.Basis.At_lower)
      cands;
    let pos = ref 0 in
    Array.iter
      (fun k ->
        let j = cands.(k) in
        st.basis.(!pos) <- j;
        st.status.(j) <- Basic;
        incr pos)
      accepted;
    Array.iter
      (fun r ->
        let a = st.tot + r in
        st.basis.(!pos) <- a;
        st.status.(a) <- Basic;
        incr pos)
      unpivoted;
    assert (!pos = st.m);
    match factorize st with
    | exception Numerical_failure -> false
    | () ->
        (* Straight to phase-2 costs: artificials freeze at [0,0] (a
           basic one left at a nonzero value is just another primal
           infeasibility for the dual to drive out, and a frozen
           nonbasic one can never enter). *)
        setup_phase2 st;
        recompute_basics st;
        refresh_reduced_costs st;
        let dtol = st.p.dual_tolerance in
        let ok = ref true and flipped = ref false in
        for j = 0 to st.nall - 1 do
          if !ok && st.status.(j) <> Basic && st.lb.(j) < st.ub.(j) then
            match st.status.(j) with
            | At_lower ->
                if st.d.(j) < -.dtol then begin
                  if st.ub.(j) < infinity then begin
                    st.status.(j) <- At_upper;
                    st.x.(j) <- st.ub.(j);
                    flipped := true
                  end
                  else ok := false
                end
            | At_upper ->
                if st.d.(j) > dtol then begin
                  if st.lb.(j) > neg_infinity then begin
                    st.status.(j) <- At_lower;
                    st.x.(j) <- st.lb.(j);
                    flipped := true
                  end
                  else ok := false
                end
            | At_zero_free -> if abs_float st.d.(j) > dtol then ok := false
            | Basic -> ()
        done;
        if not !ok then false
        else begin
          if !flipped then recompute_basics st;
          true
        end
  end

type dual_result =
  | Dual_optimal  (** Primal feasibility restored; polish and extract. *)
  | Dual_no_entering
      (** A ratio test found no entering column. The row certifies primal
          infeasibility, but the primal fallback re-derives the verdict
          rather than trusting a crashed basis with it. *)
  | Dual_stalled  (** Persistent dual degeneracy; fall back. *)
  | Dual_iteration_limit

(* The dual iteration over a state prepared by [try_dual_reopt]. Raises
   [Numerical_failure] like the primal loop; the caller falls back. *)
let run_dual st =
  let feas = st.p.feasibility_tolerance in
  let piv_tol = st.p.pivot_tolerance in
  let dtol = st.p.dual_tolerance in
  let dw = Array.make st.m 1. in
  let beta = Array.make st.nall 0. in
  let stall = ref 0 in
  let result = ref Dual_optimal in
  (try
     while true do
       if st.iterations >= st.p.max_iterations then begin
         result := Dual_iteration_limit;
         raise Exit
       end;
       (* Dual Devex pricing: the basic variable with the largest
          weight-scaled bound violation leaves. *)
       let price_sp = Obs.Span.begin_ "lp.pricing" in
       let r = ref (-1) and best_score = ref 0. in
       for i = 0 to st.m - 1 do
         let bv = st.basis.(i) in
         let xv = st.x.(bv) in
         let infeas =
           if xv < st.lb.(bv) -. feas then st.lb.(bv) -. xv
           else if xv > st.ub.(bv) +. feas then xv -. st.ub.(bv)
           else 0.
         in
         if infeas > 0. then begin
           let score = infeas *. infeas /. dw.(i) in
           if score > !best_score then begin
             best_score := score;
             r := i
           end
         end
       done;
       Obs.Span.end_ price_sp;
       if !r < 0 then begin
         result := Dual_optimal;
         raise Exit
       end;
       let r = !r in
       let leaving = st.basis.(r) in
       let above = st.x.(leaving) > st.ub.(leaving) in
       (* Sign convention: with s = +1 when the leaving value sits above
          its upper bound and -1 below its lower one, the signed pivot-row
          entry a_j = s * beta_j admits exactly the columns whose entry
          lets the leaving variable travel back toward its bound without
          breaking any reduced-cost sign. *)
       let s = if above then 1. else -1. in
       (* Pivot row r of the tableau: rho = B^-T e_r, beta_j = rho . A_j —
          the same quantity the primal [pivot_update] computes, kept here
          because both the ratio test and the reduced-cost update need
          it. *)
       let rho = Array.make st.m 0. in
       rho.(r) <- 1.;
       btran st rho;
       (* Pass 1 (Harris-style): relaxed bound on the dual step, letting
          each reduced cost overshoot by the dual tolerance. *)
       let ratio_sp = Obs.Span.begin_ "lp.ratio_test" in
       let theta_max = ref infinity in
       for j = 0 to st.nall - 1 do
         beta.(j) <- 0.;
         if st.status.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
           let b = dot_column st j rho in
           beta.(j) <- b;
           let a = s *. b in
           match st.status.(j) with
           | At_lower ->
               if a > piv_tol then begin
                 let t = (st.d.(j) +. dtol) /. a in
                 if t < !theta_max then theta_max := t
               end
           | At_upper ->
               if a < -.piv_tol then begin
                 let t = (st.d.(j) -. dtol) /. a in
                 if t < !theta_max then theta_max := t
               end
           | At_zero_free ->
               if abs_float a > piv_tol then begin
                 let t = (abs_float st.d.(j) +. dtol) /. abs_float a in
                 if t < !theta_max then theta_max := t
               end
           | Basic -> ()
         end
       done;
       if !theta_max = infinity then begin
         Obs.Span.end_ ratio_sp;
         result := Dual_no_entering;
         raise Exit
       end;
       (* Pass 2: among columns whose exact ratio fits under the relaxed
          step, the largest pivot magnitude wins (numerical stability). *)
       let enter = ref (-1) and enter_abs = ref 0. in
       for j = 0 to st.nall - 1 do
         if st.status.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
           let a = s *. beta.(j) in
           let ratio =
             match st.status.(j) with
             | At_lower ->
                 if a > piv_tol then max 0. (st.d.(j) /. a) else infinity
             | At_upper ->
                 if a < -.piv_tol then max 0. (st.d.(j) /. a) else infinity
             | At_zero_free ->
                 if abs_float a > piv_tol then
                   abs_float st.d.(j) /. abs_float a
                 else infinity
             | Basic -> infinity
           in
           if ratio <= !theta_max then begin
             let aa = abs_float a in
             if aa > !enter_abs then begin
               enter_abs := aa;
               enter := j
             end
           end
         end
       done;
       Obs.Span.end_ ratio_sp;
       if !enter < 0 then begin
         result := Dual_no_entering;
         raise Exit
       end;
       let enter = !enter in
       st.iterations <- st.iterations + 1;
       st.dual_pivots <- st.dual_pivots + 1;
       (* Entering column through the basis inverse: needed for the eta
          update, the primal step and the row-weight update. *)
       let alpha = Array.make st.m 0. in
       iter_column st enter (fun i v -> alpha.(i) <- alpha.(i) +. v);
       ftran st alpha;
       let alpha_r = alpha.(r) in
       if abs_float alpha_r <= piv_tol then raise Numerical_failure;
       (* Reduced costs: the same rank-one update as a primal pivot,
          against the stored pivot row. A tiny dual step is a degenerate
          pivot; without perturbation to lean on, a long run of them
          means giving up (the fallback is the primal warm path). *)
       let step = st.d.(enter) /. alpha_r in
       if abs_float step <= dtol then begin
         incr stall;
         if !stall > st.p.degenerate_switch then begin
           result := Dual_stalled;
           raise Exit
         end
       end
       else stall := 0;
       for j = 0 to st.nall - 1 do
         if st.status.(j) <> Basic && j <> enter then begin
           let b = beta.(j) in
           if b <> 0. then st.d.(j) <- st.d.(j) -. (step *. b)
         end
       done;
       st.d.(leaving) <- -.step;
       st.d.(enter) <- 0.;
       (* Primal step: the leaving variable travels exactly to its
          violated bound; every other basic value follows. *)
       let bound = if above then st.ub.(leaving) else st.lb.(leaving) in
       let t = (st.x.(leaving) -. bound) /. alpha_r in
       apply_step st ~alpha ~dir:1. ~enter ~t;
       st.status.(leaving) <- (if above then At_upper else At_lower);
       st.x.(leaving) <- bound;
       st.basis.(r) <- enter;
       st.status.(enter) <- Basic;
       (* Dual Devex row weights, reference-framework style. *)
       let wr = dw.(r) in
       let too_big = ref false in
       for i = 0 to st.m - 1 do
         if i <> r && alpha.(i) <> 0. then begin
           let q = alpha.(i) /. alpha_r in
           let cand = q *. q *. wr in
           if cand > dw.(i) then dw.(i) <- cand;
           if dw.(i) > 1e8 then too_big := true
         end
       done;
       dw.(r) <- max (wr /. (alpha_r *. alpha_r)) 1.;
       if dw.(r) > 1e8 then too_big := true;
       if !too_big then Array.fill dw 0 st.m 1.;
       (match Eta.make ~pos:r ~alpha with
        | eta -> push_eta st eta
        | exception Invalid_argument _ ->
            factorize st;
            recompute_basics st;
            refresh_reduced_costs st);
       if st.n_etas >= st.p.refactor_frequency then begin
         factorize st;
         recompute_basics st;
         refresh_reduced_costs st
       end
     done
   with Exit -> ());
  !result

(* Dual re-optimization driver over a state [try_dual_reopt] accepted.
   Returns [None] to request the primal fallback. On success the state is
   primal feasible and (within tolerance) dual feasible, so the closing
   primal polish typically prices out immediately — it exists to wash out
   incremental drift and absorb any sub-tolerance residue as ordinary
   phase-2 pivots. *)
let drive_dual st =
  match Obs.Span.with_ "lp.dual" (fun () -> run_dual st) with
  | Dual_no_entering | Dual_stalled | Dual_iteration_limit -> None
  | Dual_optimal -> (
      reset_phase_controls st;
      match Obs.Span.with_ "lp.phase2" (fun () -> run_phase st) with
      | Phase_optimal -> Some (Status.Optimal (extract_solution st))
      | Phase_unbounded -> Some Status.Unbounded
      | Phase_iteration_limit -> Some Status.Iteration_limit)

(* Two-phase driver over an initialized (cold or warm-started) state.
   Raises [Numerical_failure] when the factorization engine gives up. *)
let drive st =
  let phase1_result =
    if phase1_needed st then
      Obs.Span.with_ "lp.phase1" (fun () ->
          setup_phase1 st;
          run_phase st)
    else Phase_optimal
  in
  st.phase1_pivots <- st.iterations;
  Log.debug (fun m -> m "phase 1 done after %d iterations" st.iterations);
  match phase1_result with
  | Phase_iteration_limit -> Status.Iteration_limit
  | Phase_unbounded ->
      (* Phase 1 minimizes a sum of non-negative variables and is
         bounded below by zero; an unbounded ray indicates numerical
         trouble. *)
      Status.Iteration_limit
  | Phase_optimal ->
      if phase1_infeasibility st > 1e-6 then Status.Infeasible
      else begin
        match
          Obs.Span.with_ "lp.phase2" (fun () ->
              setup_phase2 st;
              run_phase st)
        with
        | Phase_optimal -> Status.Optimal (extract_solution st)
        | Phase_unbounded -> Status.Unbounded
        | Phase_iteration_limit -> Status.Iteration_limit
      end

(* ------------------------------------------------------------------ *)
(* Telemetry. Metric updates are O(1) no-ops while the registry is
   disabled; the trace event fires once per solve (never per pivot) and
   only when a sink is installed. *)

let m_solves = Obs.Metrics.counter "simplex.solves"
let m_pivots = Obs.Metrics.counter "simplex.pivots"
let m_refactorizations = Obs.Metrics.counter "simplex.refactorizations"
let m_bound_flips = Obs.Metrics.counter "simplex.bound_flips"
let m_warm_accepted = Obs.Metrics.counter "simplex.warm_accepted"
let m_dual_reopts = Obs.Metrics.counter "simplex.dual_reopts"
let m_dual_pivots = Obs.Metrics.counter "simplex.dual_pivots"
let m_warm_fell_back = Obs.Metrics.counter "simplex.warm_fell_back"
let h_pivots = Obs.Metrics.histogram "simplex.pivots_per_solve"

let outcome_name = function
  | Status.Optimal _ -> "optimal"
  | Status.Infeasible -> "infeasible"
  | Status.Unbounded -> "unbounded"
  | Status.Iteration_limit -> "iteration_limit"

let record_solve ~ms st outcome =
  Obs.Metrics.incr m_solves;
  Obs.Metrics.add m_pivots st.iterations;
  Obs.Metrics.add m_refactorizations st.refactorizations;
  Obs.Metrics.add m_bound_flips st.bound_flips;
  Obs.Metrics.add m_dual_pivots st.dual_pivots;
  (match st.warm with
   | Status.No_warm_start -> ()
   | Status.Dual_reopt -> Obs.Metrics.incr m_dual_reopts
   | Status.Warm_accepted _ -> Obs.Metrics.incr m_warm_accepted
   | Status.Warm_fell_back -> Obs.Metrics.incr m_warm_fell_back);
  Obs.Metrics.observe h_pivots (float_of_int st.iterations);
  if Obs.Trace.enabled () then begin
    let s = solve_stats st in
    Obs.Trace.point "lp.solve"
      [ ("outcome", Obs.Trace.Str (outcome_name outcome));
        ("cols", Obs.Trace.Int st.sf.Standard_form.n_struct);
        ("rows", Obs.Trace.Int st.m);
        ("iterations", Obs.Trace.Int st.iterations);
        ("phase1_pivots", Obs.Trace.Int s.Status.phase1_pivots);
        ("phase2_pivots", Obs.Trace.Int s.Status.phase2_pivots);
        ("dual_pivots", Obs.Trace.Int s.Status.dual_pivots);
        ("refactorizations", Obs.Trace.Int s.Status.refactorizations);
        ("eta_peak", Obs.Trace.Int s.Status.eta_peak);
        ("bound_flips", Obs.Trace.Int s.Status.bound_flips);
        ("perturbations", Obs.Trace.Int s.Status.perturbations);
        ("bland", Obs.Trace.Bool s.Status.bland);
        ("warm", Obs.Trace.Str (Status.warm_start_outcome_name st.warm));
        ("repair_rounds",
         Obs.Trace.Int
           (match st.warm with
            | Status.Warm_accepted { repair_rounds } -> repair_rounds
            | Status.No_warm_start | Status.Dual_reopt
            | Status.Warm_fell_back -> 0));
        ("ms", Obs.Trace.Float ms) ]
  end

let solve ?params ?warm_start ?(dual_reopt = true) model =
  let solve_sp = Obs.Span.begin_ "lp.solve" in
  let t0 = Obs.Trace.now_ms () in
  let sf = Standard_form.of_model model in
  (* Trivial bound inconsistencies mean infeasible, not an exception. *)
  let inconsistent = ref false in
  Array.iteri
    (fun j l -> if l > sf.Standard_form.ub.(j) then inconsistent := true)
    sf.Standard_form.lb;
  if !inconsistent then begin
    Obs.Span.end_ solve_sp;
    Status.Infeasible
  end
  else begin
    (* Every exit path remembers the state it solved with, so the
       per-solve telemetry reflects the run that produced the reported
       outcome (after a warm fallback: the cold rerun, flagged
       [Warm_fell_back]). *)
    let cold ~warm () =
      match initialize ?params sf with
      | exception Numerical_failure -> (Status.Iteration_limit, None)
      | st ->
          st.warm <- warm;
          (match drive st with
           | outcome -> (outcome, Some st)
           | exception Numerical_failure -> (Status.Iteration_limit, Some st))
    in
    (* Any failure along the warm path — a basis that cannot be repaired,
       or a numerical breakdown while iterating from it — falls back to
       the cold start, so supplying a warm basis can never produce a
       worse outcome class than not supplying one. The dual re-opt sits
       one rung above the primal warm crash on the same ladder:
       dual install/iterate failure falls to the primal warm path (a
       fresh state: the dual attempt froze artificial bounds, which
       phase 1 must not inherit), which in turn falls to cold. *)
    let primal_warm wb () =
      match initialize ?params sf with
      | exception Numerical_failure -> (Status.Iteration_limit, None)
      | st -> (
          match try_warm_start st wb with
          | None ->
              Log.debug (fun m ->
                  m "warm basis rejected; falling back to cold start");
              cold ~warm:Status.Warm_fell_back ()
          | Some rounds -> (
              st.warm <- Status.Warm_accepted { repair_rounds = rounds };
              match drive st with
              | outcome -> (outcome, Some st)
              | exception Numerical_failure ->
                  cold ~warm:Status.Warm_fell_back ())
          | exception Numerical_failure ->
              cold ~warm:Status.Warm_fell_back ())
    in
    let outcome, final_st =
      match warm_start with
      | None -> cold ~warm:Status.No_warm_start ()
      | Some wb when not dual_reopt -> primal_warm wb ()
      | Some wb -> (
          match initialize ?params sf with
          | exception Numerical_failure -> (Status.Iteration_limit, None)
          | st -> (
              match try_dual_reopt st wb with
              | false -> primal_warm wb ()
              | true -> (
                  st.warm <- Status.Dual_reopt;
                  match drive_dual st with
                  | Some outcome -> (outcome, Some st)
                  | None ->
                      Log.debug (fun m ->
                          m "dual re-opt gave up; primal warm fallback");
                      primal_warm wb ()
                  | exception Numerical_failure -> primal_warm wb ())
              | exception Numerical_failure -> primal_warm wb ()))
    in
    (match final_st with
     | Some st -> record_solve ~ms:(Obs.Trace.now_ms () -. t0) st outcome
     | None -> ());
    Obs.Span.end_ solve_sp;
    outcome
  end
