module Dense = Sparselin.Dense

let dot a b =
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)

(* Solve A diag(d) A^T dy = rhs by dense Cholesky, with a tiny diagonal
   regularization for rank-deficient A. *)
let normal_solve a d rhs =
  let m = Array.length a in
  let n = if m = 0 then 0 else Array.length a.(0) in
  let s = Dense.make m m in
  for i = 0 to m - 1 do
    for j = i to m - 1 do
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (a.(i).(k) *. d.(k) *. a.(j).(k))
      done;
      s.(i).(j) <- !acc;
      s.(j).(i) <- !acc
    done;
    s.(i).(i) <- s.(i).(i) +. 1e-10
  done;
  Dense.cholesky_solve s rhs

let solve ?(max_iterations = 100) ?(tolerance = 1e-8) model =
  let form = Dense_form.of_model model in
  let a = Dense_form.a form in
  let b = Dense_form.b form in
  let c = Dense_form.c form in
  let m = Array.length b in
  let n = Array.length c in
  if n = 0 then
    (* No variables: the objective is the constant. *)
    Status.Optimal
      { Status.objective = Dense_form.model_objective form 0.;
        primal = Array.make (Model.num_vars model) 0.;
        dual = Array.make (Model.num_rows model) 0.;
        reduced_costs = Array.make (Model.num_vars model) 0.;
        iterations = 0;
        stats = Status.no_stats;
        basis = None }
  else begin
    let at = Dense.transpose a in
    (* Starting point: positive x and s at a data-driven scale. *)
    let scale =
      1. +. max (norm b /. float_of_int (max m 1)) (norm c /. float_of_int n)
    in
    let x = Array.make n scale in
    let s = Array.make n scale in
    let y = Array.make m 0. in
    let result = ref Status.Iteration_limit in
    let iterations = ref 0 in
    (try
       while !iterations < max_iterations do
         incr iterations;
         (* Residuals. *)
         let ax = Dense.matvec a x in
         let r_b = Array.init m (fun i -> ax.(i) -. b.(i)) in
         let aty = Dense.matvec at y in
         let r_c = Array.init n (fun j -> aty.(j) +. s.(j) -. c.(j)) in
         let mu = dot x s /. float_of_int n in
         let rel_b = norm r_b /. (1. +. norm b) in
         let rel_c = norm r_c /. (1. +. norm c) in
         if rel_b < tolerance && rel_c < tolerance && mu < tolerance then begin
           result :=
             Status.Optimal
               { Status.objective = Dense_form.model_objective form (dot c x);
                 primal = Dense_form.restore_primal form x;
                 dual =
                   (let flip v = if Dense_form.flip_objective form then -.v else v in
                    Array.init (Model.num_rows model) (fun i -> flip y.(i)));
                 reduced_costs =
                   (let flip v = if Dense_form.flip_objective form then -.v else v in
                    let z = Array.map flip s in
                    (* Dual slacks of shifted variables approximate the
                       model's reduced costs; exact enough for the
                       cross-check role. *)
                    Array.init (Model.num_vars model) (fun v ->
                        if v < Array.length z then z.(v) else 0.));
                 iterations = !iterations;
                 stats = Status.no_stats;
                 basis = None };
           raise Exit
         end;
         (* Divergence guard. *)
         if Float.is_nan mu || mu > 1e16 then raise Exit;
         let d = Array.init n (fun j -> x.(j) /. s.(j)) in
         (* Newton system for targets (r_b, r_c, XSe -> sigma mu e):
              A dx = -r_b
              A^T dy + ds = -r_c
              S dx + X ds = -XSe + sigma mu e
            Eliminate: ds = -r_c - A^T dy;
              dx = (sigma mu e - XSe - X ds) / S
                 = d .* (A^T dy + r_c) + (sigma mu e - X S e)/S
            A dx = -r_b gives
              A D A^T dy = -r_b - A (d .* r_c + (sigma mu e - XSe)/S). *)
         let solve_direction sigma_mu =
           let t =
             Array.init n (fun j ->
                 (d.(j) *. r_c.(j)) +. ((sigma_mu -. (x.(j) *. s.(j))) /. s.(j)))
           in
           let att = Dense.matvec a t in
           let rhs = Array.init m (fun i -> -.r_b.(i) -. att.(i)) in
           match normal_solve a d rhs with
           | None -> None
           | Some dy ->
               let atdy = Dense.matvec at dy in
               let ds = Array.init n (fun j -> -.r_c.(j) -. atdy.(j)) in
               let dx =
                 Array.init n (fun j ->
                     ((sigma_mu -. (x.(j) *. s.(j))) -. (x.(j) *. ds.(j)))
                     /. s.(j))
               in
               Some (dx, dy, ds)
         in
         let step_bound v dv =
           let alpha = ref 1. in
           for j = 0 to Array.length v - 1 do
             if dv.(j) < 0. then begin
               let limit = -.v.(j) /. dv.(j) in
               if limit < !alpha then alpha := limit
             end
           done;
           !alpha
         in
         (match solve_direction 0. with
          | None -> raise Exit
          | Some (dx_aff, _, ds_aff) ->
              let alpha_p = step_bound x dx_aff in
              let alpha_d = step_bound s ds_aff in
              let mu_aff =
                let acc = ref 0. in
                for j = 0 to n - 1 do
                  acc :=
                    !acc
                    +. ((x.(j) +. (alpha_p *. dx_aff.(j)))
                        *. (s.(j) +. (alpha_d *. ds_aff.(j))))
                done;
                !acc /. float_of_int n
              in
              let sigma =
                let r = mu_aff /. mu in
                r *. r *. r
              in
              (match solve_direction (sigma *. mu) with
               | None -> raise Exit
               | Some (dx, dy, ds) ->
                   let eta = 0.9995 in
                   let alpha_p = min 1. (eta *. step_bound x dx) in
                   let alpha_d = min 1. (eta *. step_bound s ds) in
                   for j = 0 to n - 1 do
                     x.(j) <- x.(j) +. (alpha_p *. dx.(j));
                     s.(j) <- s.(j) +. (alpha_d *. ds.(j))
                   done;
                   for i = 0 to m - 1 do
                     y.(i) <- y.(i) +. (alpha_d *. dy.(i))
                   done))
       done
     with Exit -> ());
    !result
  end
