type var = int
type row = int

type sense = Le | Ge | Eq

type objective_sense = Minimize | Maximize

type row_data = {
  r_name : string;
  r_terms : (var * float) list; (* deduplicated, ascending by variable *)
  r_sense : sense;
  r_rhs : float;
}

type t = {
  m_name : string;
  m_sense : objective_sense;
  mutable vars_name : string array;
  mutable vars_lb : float array;
  mutable vars_ub : float array;
  mutable vars_obj : float array;
  mutable n_vars : int;
  mutable rows : row_data array;
  mutable n_rows : int;
}

let create ?(name = "lp") sense =
  { m_name = name; m_sense = sense;
    vars_name = Array.make 16 "";
    vars_lb = Array.make 16 0.;
    vars_ub = Array.make 16 0.;
    vars_obj = Array.make 16 0.;
    n_vars = 0;
    rows = Array.make 16 { r_name = ""; r_terms = []; r_sense = Eq; r_rhs = 0. };
    n_rows = 0 }

let name t = t.m_name
let objective_sense t = t.m_sense

let grow_vars t =
  let cap = Array.length t.vars_name in
  if t.n_vars = cap then begin
    let cap' = 2 * cap in
    let ext a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 t.n_vars;
      a'
    in
    t.vars_name <- ext t.vars_name "";
    t.vars_lb <- ext t.vars_lb 0.;
    t.vars_ub <- ext t.vars_ub 0.;
    t.vars_obj <- ext t.vars_obj 0.
  end

let add_var t ?name ?(lb = 0.) ?(ub = infinity) ?(obj = 0.) () =
  if Float.is_nan lb || Float.is_nan ub then
    invalid_arg "Model.add_var: NaN bound";
  if lb > ub then invalid_arg "Model.add_var: lb > ub";
  grow_vars t;
  let id = t.n_vars in
  (* Names are lazy: the empty string marks "unset" and [var_name]
     synthesizes ["x<id>"] on demand. At bench scale the eager sprintf per
     variable was pure allocation overhead. *)
  (match name with Some n -> t.vars_name.(id) <- n | None -> ());
  t.vars_lb.(id) <- lb;
  t.vars_ub.(id) <- ub;
  t.vars_obj.(id) <- obj;
  t.n_vars <- id + 1;
  id

let add_vars t k ?lb ?ub ?obj () =
  Array.init k (fun _ -> add_var t ?lb ?ub ?obj ())

let check_var t v =
  if v < 0 || v >= t.n_vars then invalid_arg "Model: unknown variable"

let check_row t r =
  if r < 0 || r >= t.n_rows then invalid_arg "Model: unknown row"

let set_obj t v c =
  check_var t v;
  t.vars_obj.(v) <- c

let add_obj t v c =
  check_var t v;
  t.vars_obj.(v) <- t.vars_obj.(v) +. c

let dedup_terms terms =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) terms in
  let rec merge = function
    | [] -> []
    | [ t ] -> [ t ]
    | (v1, c1) :: (v2, c2) :: rest when v1 = v2 ->
        merge ((v1, c1 +. c2) :: rest)
    | t :: rest -> t :: merge rest
  in
  List.filter (fun (_, c) -> c <> 0.) (merge sorted)

let add_constraint t ?name terms sense rhs =
  List.iter (fun (v, _) -> check_var t v) terms;
  let id = t.n_rows in
  let rname = match name with Some n -> n | None -> "" in
  if t.n_rows = Array.length t.rows then begin
    let rows' =
      Array.make (2 * Array.length t.rows)
        { r_name = ""; r_terms = []; r_sense = Eq; r_rhs = 0. }
    in
    Array.blit t.rows 0 rows' 0 t.n_rows;
    t.rows <- rows'
  end;
  t.rows.(id) <-
    { r_name = rname; r_terms = dedup_terms terms; r_sense = sense; r_rhs = rhs };
  t.n_rows <- id + 1;
  id

let num_vars t = t.n_vars
let num_rows t = t.n_rows

let var_of_index t i =
  check_var t i;
  i

let row_of_index t i =
  check_row t i;
  i

let var_name t v =
  check_var t v;
  let n = t.vars_name.(v) in
  if n = "" then Printf.sprintf "x%d" v else n

let row_name t r =
  check_row t r;
  let n = t.rows.(r).r_name in
  if n = "" then Printf.sprintf "r%d" r else n
let lower_bound t v = check_var t v; t.vars_lb.(v)
let upper_bound t v = check_var t v; t.vars_ub.(v)
let obj_coeff t v = check_var t v; t.vars_obj.(v)

let row_terms t r = check_row t r; t.rows.(r).r_terms
let row_sense t r = check_row t r; t.rows.(r).r_sense
let row_rhs t r = check_row t r; t.rows.(r).r_rhs

let iter_rows t f =
  for r = 0 to t.n_rows - 1 do
    let row = t.rows.(r) in
    f r row.r_terms row.r_sense row.r_rhs
  done

let objective_value t x =
  if Array.length x <> t.n_vars then
    invalid_arg "Model.objective_value: assignment size mismatch";
  let acc = ref 0. in
  for v = 0 to t.n_vars - 1 do
    acc := !acc +. (t.vars_obj.(v) *. x.(v))
  done;
  !acc

let constraint_violation t x =
  if Array.length x <> t.n_vars then
    invalid_arg "Model.constraint_violation: assignment size mismatch";
  let worst = ref 0. in
  for v = 0 to t.n_vars - 1 do
    if x.(v) < t.vars_lb.(v) then worst := max !worst (t.vars_lb.(v) -. x.(v));
    if x.(v) > t.vars_ub.(v) then worst := max !worst (x.(v) -. t.vars_ub.(v))
  done;
  iter_rows t (fun _ terms sense rhs ->
      let lhs = List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0. terms in
      let viol =
        match sense with
        | Le -> lhs -. rhs
        | Ge -> rhs -. lhs
        | Eq -> abs_float (lhs -. rhs)
      in
      if viol > !worst then worst := viol);
  !worst

let pp_sense ppf = function
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Eq -> Format.pp_print_string ppf "="

let pp ppf t =
  let dir = match t.m_sense with Minimize -> "min" | Maximize -> "max" in
  Format.fprintf ppf "@[<v>%s: %s" t.m_name dir;
  for v = 0 to t.n_vars - 1 do
    if t.vars_obj.(v) <> 0. then
      Format.fprintf ppf " %+g %s" t.vars_obj.(v) (var_name t v)
  done;
  Format.fprintf ppf "@,subject to:";
  iter_rows t (fun r terms sense rhs ->
      Format.fprintf ppf "@,  %s:" (row_name t r);
      List.iter
        (fun (v, c) -> Format.fprintf ppf " %+g %s" c (var_name t v))
        terms;
      Format.fprintf ppf " %a %g" pp_sense sense rhs);
  Format.fprintf ppf "@,bounds:";
  for v = 0 to t.n_vars - 1 do
    Format.fprintf ppf "@,  %g <= %s <= %g" t.vars_lb.(v) (var_name t v)
      t.vars_ub.(v)
  done;
  Format.fprintf ppf "@]"
