(** Process-wide metrics registry: named counters, gauges and fixed-bucket
    histograms.

    Instrumentation sites hold a handle obtained once (usually at module
    initialization) and update it on the hot path; every update is O(1),
    allocation-free, and a plain no-op while the registry is disabled
    (the default), so instrumented code costs nothing when nobody is
    looking. Handles are registered by name: asking twice for the same
    name returns the same metric, so independent modules can share a
    series.

    Every operation is domain-safe: counters and gauges are atomic,
    histogram updates take a per-histogram lock (buckets, count and sum
    move together), and registration/reset/dump serialize on the registry,
    so totals recorded from a {!Exec.Pool} worker fleet are exact. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Globally enable or disable every update ({!incr}, {!add}, {!set},
    {!observe}). Disabled is the default. Reading and dumping always
    work. *)

val enabled : unit -> bool

val counter : string -> counter
(** [counter name] registers (or retrieves) the counter [name]. Raises
    [Invalid_argument] if [name] is already registered as another metric
    kind. *)

val gauge : string -> gauge

val histogram : ?buckets:float array -> string -> histogram
(** [histogram name] registers a fixed-bucket histogram. [buckets] are the
    inclusive upper bounds of the finite buckets, in increasing order
    (default a 1-2-5 decade ladder from 1 to 100k); one overflow bucket is
    implicit. On retrieval of an existing histogram [buckets] is
    ignored. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val counter_value : counter -> int
val gauge_value : gauge -> float
(** [nan] until the first {!set}. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) array
(** [(upper_bound, count)] per finite bucket plus a final
    [(infinity, overflow_count)] entry. Counts are per-bucket, not
    cumulative. *)

val histogram_quantile : histogram -> float -> float option
(** [histogram_quantile h q] estimates the [q]-quantile ([q] clamped to
    [0..1]) from the bucket counts, interpolating linearly inside the
    bucket holding the target rank (first bucket's lower edge is 0, as
    every kept series is nonnegative). A rank landing in the overflow
    bucket returns the largest finite bound — the best a bucketed
    histogram can say. [None] while the histogram is empty. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

(** {1 Scrape formatting}

    Structured read-out of the whole registry, for scrape endpoints and
    machine consumers; {!pp_dump} remains the human rendering. *)

type entry =
  | Counter_entry of { name : string; value : int }
  | Gauge_entry of { name : string; value : float option }
      (** [None] until the first {!set}. *)
  | Histogram_entry of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) array;
          (** As {!histogram_buckets}: per-bucket counts, [infinity] bound
              for the overflow bucket. *)
    }

val dump : unit -> entry list
(** Every registered metric with its current value, in registration
    order. Works whether or not the registry is enabled. *)

val dump_json : unit -> Json.t
(** The registry as one JSON array of
    [{"name","kind","value"|...}] objects — what a serving daemon's
    scrape endpoint returns. Histogram overflow bounds render as the
    string ["+inf"]. *)

val dump_prometheus : unit -> string
(** The registry in Prometheus text exposition format (0.0.4): one
    [# TYPE] comment per metric, names sanitized to [[a-zA-Z0-9_:]]
    (dots become underscores), histograms as cumulative [_bucket]
    samples with a closing [le="+Inf"] plus [_sum] and [_count]. Gauges
    that were never set are omitted. What [postcard_client scrape
    --prom] prints. *)

val pp_dump : Format.formatter -> unit -> unit
(** Render the whole registry, one metric per line, in registration
    order; histograms list only their non-empty buckets. *)
