let schema_version = 1

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Floats of float array

type out = {
  write : string -> unit;
  finish : unit -> unit;
}

let sink : out option ref = ref None
let seq = ref 0
let span_counter = ref 0
let origin = ref 0.

let enabled () = match !sink with None -> false | Some _ -> true

(* Wall clock forced monotone: a backward NTP step must never produce a
   negative timestamp or duration, so the origin only ever moves the
   reported time forward. *)
let last = ref 0.

let now_ms () =
  match !sink with
  | None -> 0.
  | Some _ ->
      let t = (Unix.gettimeofday () -. !origin) *. 1000. in
      if t > !last then last := t;
      !last

let reserved = [ "v"; "seq"; "ts"; "ev"; "name"; "span"; "dur_ms" ]

let add_field b (name, value) =
  if List.mem name reserved then
    invalid_arg ("Obs.Trace: reserved field name " ^ name);
  Buffer.add_char b ',';
  Json.escape_to_buffer b name;
  Buffer.add_char b ':';
  match value with
  | Str s -> Json.escape_to_buffer b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Json.number_to_string f)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Floats fs ->
      Buffer.add_char b '[';
      Array.iteri
        (fun i f ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Json.number_to_string f))
        fs;
      Buffer.add_char b ']'

let emit out ~ev ~name ?span ?dur_ms fields =
  incr seq;
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"v\":%d,\"seq\":%d,\"ts\":%.3f,\"ev\":" schema_version
       !seq (now_ms ()));
  Json.escape_to_buffer b ev;
  Buffer.add_string b ",\"name\":";
  Json.escape_to_buffer b name;
  (match span with
   | None -> ()
   | Some id -> Buffer.add_string b (Printf.sprintf ",\"span\":%d" id));
  (match dur_ms with
   | None -> ()
   | Some d ->
       Buffer.add_string b ",\"dur_ms\":";
       Buffer.add_string b (Json.number_to_string d));
  List.iter (add_field b) fields;
  Buffer.add_string b "}\n";
  out.write (Buffer.contents b)

let install out =
  (match !sink with Some old -> old.finish () | None -> ());
  seq := 0;
  span_counter := 0;
  origin := Unix.gettimeofday ();
  last := 0.;
  sink := Some out;
  emit out ~ev:"meta" ~name:"trace"
    [ ("schema", Int schema_version); ("clock", Str "wall-ms") ]

let set_callback f = install { write = f; finish = (fun () -> ()) }

let set_file path =
  match open_out path with
  | oc ->
      install { write = (fun s -> output_string oc s); finish = (fun () -> close_out oc) };
      Ok ()
  | exception Sys_error msg -> Error msg

let close () =
  match !sink with
  | None -> ()
  | Some out ->
      sink := None;
      out.finish ()

let point name fields =
  match !sink with
  | None -> ()
  | Some out -> emit out ~ev:"point" ~name fields

type span = { sid : int; sname : string; t0 : float }

let null_span = { sid = -1; sname = ""; t0 = 0. }

let begin_span name fields =
  match !sink with
  | None -> null_span
  | Some out ->
      incr span_counter;
      let s = { sid = !span_counter; sname = name; t0 = now_ms () } in
      emit out ~ev:"begin" ~name ~span:s.sid fields;
      s

let end_span s fields =
  if s.sid >= 0 then
    match !sink with
    | None -> ()
    | Some out ->
        emit out ~ev:"end" ~name:s.sname ~span:s.sid
          ~dur_ms:(now_ms () -. s.t0) fields
