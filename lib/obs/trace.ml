let schema_version = 3

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Floats of float array

type out = {
  write : string -> unit;
  flush : unit -> unit;
  finish : unit -> unit;
}

(* [mu] guards the sink, the global sequence number, the global span
   counter, the monotone clock watermark and the sticky write error.
   Everything the mutex guards is off the instrumentation fast path when
   tracing is disabled: the one-flag [enabled] test stays a plain load. *)
let mu = Mutex.create ()
let sink : out option ref = ref None
let seq = ref 0
let span_counter = ref 0
let origin = ref 0.

(* First sink failure observed mid-run; later failures do not overwrite
   it (the first one names the cause, e.g. ENOSPC). Guarded by [mu]:
   every sink call happens under the lock. *)
let write_error : string option ref = ref None

let note_error msg = if !write_error = None then write_error := Some msg

let last_error () =
  Mutex.lock mu;
  let e = !write_error in
  Mutex.unlock mu;
  e

let enabled () = match !sink with None -> false | Some _ -> true

(* A lane buffers one domain's events during a parallel section. Lines
   are stored without their [seq] prefix; the flush assigns consecutive
   global sequence numbers under [mu], so a merged trace is
   indistinguishable from a serial one to the strict reader. Lanes have
   their own span counter (ids are only required to pair begin/end within
   the lane), their own open-span stack (parents never cross a lane
   boundary) and their own monotone-clock watermark. *)
type lane = {
  l_dom : int;
  mutable l_lines : string list;  (* reversed suffixes *)
  mutable l_span : int;
  mutable l_last : float;
  mutable l_stack : int list;  (* open span ids, innermost first *)
}

type buffer = lane option

let lane_key : lane option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Open spans of a domain emitting directly (no lane): innermost first.
   [begin_span] pushes, [end_span] pops, and the top at begin time is the
   new span's parent. Per-domain state, so parallel emitters cannot see
   each other's spans as parents. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Wall clock forced monotone: a backward NTP step must never produce a
   negative timestamp or duration, so the watermark only ever moves the
   reported time forward. Each lane clamps independently; the merged
   stream is therefore monotone per lane, not globally — the reader only
   requires sequence numbers to be consecutive. *)
let last = ref 0.

let now_ms () =
  match !sink with
  | None -> 0.
  | Some _ -> (
      let t = (Unix.gettimeofday () -. !origin) *. 1000. in
      match Domain.DLS.get lane_key with
      | Some lane ->
          if t > lane.l_last then lane.l_last <- t;
          lane.l_last
      | None ->
          Mutex.lock mu;
          if t > !last then last := t;
          let v = !last in
          Mutex.unlock mu;
          v)

let reserved =
  [ "v"; "seq"; "dom"; "ts"; "ev"; "name"; "span"; "parent"; "dur_ms" ]

let add_field b (name, value) =
  if List.mem name reserved then
    invalid_arg ("Obs.Trace: reserved field name " ^ name);
  Buffer.add_char b ',';
  Json.escape_to_buffer b name;
  Buffer.add_char b ':';
  match value with
  | Str s -> Json.escape_to_buffer b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Json.number_to_string f)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Floats fs ->
      Buffer.add_char b '[';
      Array.iteri
        (fun i f ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Json.number_to_string f))
        fs;
      Buffer.add_char b ']'

(* Everything after the [seq] value; the writer prepends
   [{"v":V,"seq":N] when the sequence number is known. *)
let build_suffix ~dom ~ts ~ev ~name ?span ?parent ?dur_ms fields =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf ",\"dom\":%d,\"ts\":%.3f,\"ev\":" dom ts);
  Json.escape_to_buffer b ev;
  Buffer.add_string b ",\"name\":";
  Json.escape_to_buffer b name;
  (match span with
   | None -> ()
   | Some id -> Buffer.add_string b (Printf.sprintf ",\"span\":%d" id));
  (match parent with
   | None -> ()
   | Some id -> Buffer.add_string b (Printf.sprintf ",\"parent\":%d" id));
  (match dur_ms with
   | None -> ()
   | Some d ->
       Buffer.add_string b ",\"dur_ms\":";
       Buffer.add_string b (Json.number_to_string d));
  List.iter (add_field b) fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_locked out suffix =
  incr seq;
  out.write (Printf.sprintf "{\"v\":%d,\"seq\":%d%s" schema_version !seq suffix)

let emit ~ev ~name ?span ?parent ?dur_ms fields =
  match !sink with
  | None -> ()
  | Some _ -> (
      let ts = now_ms () in
      let dom = (Domain.self () :> int) in
      let suffix = build_suffix ~dom ~ts ~ev ~name ?span ?parent ?dur_ms fields in
      match Domain.DLS.get lane_key with
      | Some lane -> lane.l_lines <- suffix :: lane.l_lines
      | None ->
          Mutex.lock mu;
          (match !sink with
           | Some out -> write_locked out suffix
           | None -> ());
          Mutex.unlock mu)

let install out =
  Mutex.lock mu;
  (match !sink with Some old -> old.finish () | None -> ());
  seq := 0;
  span_counter := 0;
  origin := Unix.gettimeofday ();
  last := 0.;
  write_error := None;
  sink := Some out;
  Mutex.unlock mu;
  Domain.DLS.get stack_key := [];
  emit ~ev:"meta" ~name:"trace"
    [ ("schema", Int schema_version); ("clock", Str "wall-ms") ]

let set_callback f =
  install { write = f; flush = (fun () -> ()); finish = (fun () -> ()) }

let set_file path =
  match open_out path with
  | oc ->
      (* Sink failures mid-run (ENOSPC, a yanked volume) must not kill
         the traced program — tracing is observability, not the workload
         — but they must not vanish either: the first failure is kept
         for {!last_error} so the exit path can report a truncated
         trace. *)
      let guard what f =
        try f () with
        | Sys_error msg -> note_error (what ^ ": " ^ msg)
        | Unix.Unix_error (e, _, _) ->
            note_error (what ^ ": " ^ Unix.error_message e)
      in
      install
        { write = (fun s -> guard "write" (fun () -> output_string oc s));
          flush =
            (fun () ->
              guard "flush" (fun () ->
                  flush oc;
                  Unix.fsync (Unix.descr_of_out_channel oc)));
          finish = (fun () -> guard "close" (fun () -> close_out oc)) };
      Ok ()
  | exception Sys_error msg -> Error msg

let flush_sync () =
  Mutex.lock mu;
  (match !sink with Some out -> out.flush () | None -> ());
  Mutex.unlock mu

let close () =
  Mutex.lock mu;
  let old = !sink in
  sink := None;
  Mutex.unlock mu;
  match old with None -> () | Some out -> out.finish ()

let point name fields =
  match !sink with
  | None -> ()
  | Some _ -> emit ~ev:"point" ~name fields

type span = { sid : int; sname : string; t0 : float }

let null_span = { sid = -1; sname = ""; t0 = 0. }

(* Remove [sid] from an open-span stack, along with anything opened above
   it that was never closed (an exception can skip inner ends; the outer
   [end_span] then reconciles the stack). Stacks are a handful deep, so
   the [mem] pre-check costs nothing and protects against an [end_span]
   whose begin happened in another context. *)
let pop_span sid stack =
  if List.mem sid stack then
    let rec go = function
      | [] -> []
      | x :: rest -> if x = sid then rest else go rest
    in
    go stack
  else stack

let begin_span name fields =
  match !sink with
  | None -> null_span
  | Some _ ->
      let sid, parent =
        match Domain.DLS.get lane_key with
        | Some lane ->
            lane.l_span <- lane.l_span + 1;
            let parent =
              match lane.l_stack with [] -> None | p :: _ -> Some p
            in
            lane.l_stack <- lane.l_span :: lane.l_stack;
            (lane.l_span, parent)
        | None ->
            let stack = Domain.DLS.get stack_key in
            Mutex.lock mu;
            incr span_counter;
            let v = !span_counter in
            Mutex.unlock mu;
            let parent = match !stack with [] -> None | p :: _ -> Some p in
            stack := v :: !stack;
            (v, parent)
      in
      let s = { sid; sname = name; t0 = now_ms () } in
      emit ~ev:"begin" ~name ~span:s.sid ?parent fields;
      s

let end_span s fields =
  if s.sid >= 0 then begin
    (match Domain.DLS.get lane_key with
     | Some lane -> lane.l_stack <- pop_span s.sid lane.l_stack
     | None ->
         let stack = Domain.DLS.get stack_key in
         stack := pop_span s.sid !stack);
    match !sink with
    | None -> ()
    | Some _ ->
        emit ~ev:"end" ~name:s.sname ~span:s.sid
          ~dur_ms:(now_ms () -. s.t0) fields
  end

let with_buffer f =
  match !sink with
  | None -> (f (), None)
  | Some _ ->
      let lane =
        { l_dom = (Domain.self () :> int);
          l_lines = [];
          l_span = 0;
          l_last = 0.;
          l_stack = [] }
      in
      let saved = Domain.DLS.get lane_key in
      Domain.DLS.set lane_key (Some lane);
      let v =
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set lane_key saved)
          f
      in
      (v, Some lane)

let flush_buffer buffer =
  match buffer with
  | None -> ()
  | Some lane -> (
      let lines = List.rev lane.l_lines in
      lane.l_lines <- [];
      match !sink with
      | None -> ()
      | Some _ ->
          Mutex.lock mu;
          (match !sink with
           | Some out -> List.iter (write_locked out) lines
           | None -> ());
          Mutex.unlock mu)

let buffer_dom = function None -> None | Some lane -> Some lane.l_dom
