let schema_version = 2

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Floats of float array

type out = {
  write : string -> unit;
  finish : unit -> unit;
}

(* [mu] guards the sink, the global sequence number, the global span
   counter and the monotone clock watermark. Everything the mutex guards
   is off the instrumentation fast path when tracing is disabled: the
   one-flag [enabled] test stays a plain load. *)
let mu = Mutex.create ()
let sink : out option ref = ref None
let seq = ref 0
let span_counter = ref 0
let origin = ref 0.

let enabled () = match !sink with None -> false | Some _ -> true

(* A lane buffers one domain's events during a parallel section. Lines
   are stored without their [seq] prefix; the flush assigns consecutive
   global sequence numbers under [mu], so a merged trace is
   indistinguishable from a serial one to the strict reader. Lanes have
   their own span counter (ids are only required to pair begin/end within
   the lane) and their own monotone-clock watermark. *)
type lane = {
  l_dom : int;
  mutable l_lines : string list;  (* reversed suffixes *)
  mutable l_span : int;
  mutable l_last : float;
}

type buffer = lane option

let lane_key : lane option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Wall clock forced monotone: a backward NTP step must never produce a
   negative timestamp or duration, so the watermark only ever moves the
   reported time forward. Each lane clamps independently; the merged
   stream is therefore monotone per lane, not globally — the reader only
   requires sequence numbers to be consecutive. *)
let last = ref 0.

let now_ms () =
  match !sink with
  | None -> 0.
  | Some _ -> (
      let t = (Unix.gettimeofday () -. !origin) *. 1000. in
      match Domain.DLS.get lane_key with
      | Some lane ->
          if t > lane.l_last then lane.l_last <- t;
          lane.l_last
      | None ->
          Mutex.lock mu;
          if t > !last then last := t;
          let v = !last in
          Mutex.unlock mu;
          v)

let reserved = [ "v"; "seq"; "dom"; "ts"; "ev"; "name"; "span"; "dur_ms" ]

let add_field b (name, value) =
  if List.mem name reserved then
    invalid_arg ("Obs.Trace: reserved field name " ^ name);
  Buffer.add_char b ',';
  Json.escape_to_buffer b name;
  Buffer.add_char b ':';
  match value with
  | Str s -> Json.escape_to_buffer b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (Json.number_to_string f)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Floats fs ->
      Buffer.add_char b '[';
      Array.iteri
        (fun i f ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Json.number_to_string f))
        fs;
      Buffer.add_char b ']'

(* Everything after the [seq] value; the writer prepends
   [{"v":V,"seq":N] when the sequence number is known. *)
let build_suffix ~dom ~ts ~ev ~name ?span ?dur_ms fields =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf ",\"dom\":%d,\"ts\":%.3f,\"ev\":" dom ts);
  Json.escape_to_buffer b ev;
  Buffer.add_string b ",\"name\":";
  Json.escape_to_buffer b name;
  (match span with
   | None -> ()
   | Some id -> Buffer.add_string b (Printf.sprintf ",\"span\":%d" id));
  (match dur_ms with
   | None -> ()
   | Some d ->
       Buffer.add_string b ",\"dur_ms\":";
       Buffer.add_string b (Json.number_to_string d));
  List.iter (add_field b) fields;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_locked out suffix =
  incr seq;
  out.write (Printf.sprintf "{\"v\":%d,\"seq\":%d%s" schema_version !seq suffix)

let emit ~ev ~name ?span ?dur_ms fields =
  match !sink with
  | None -> ()
  | Some _ -> (
      let ts = now_ms () in
      let dom = (Domain.self () :> int) in
      let suffix = build_suffix ~dom ~ts ~ev ~name ?span ?dur_ms fields in
      match Domain.DLS.get lane_key with
      | Some lane -> lane.l_lines <- suffix :: lane.l_lines
      | None ->
          Mutex.lock mu;
          (match !sink with
           | Some out -> write_locked out suffix
           | None -> ());
          Mutex.unlock mu)

let install out =
  Mutex.lock mu;
  (match !sink with Some old -> old.finish () | None -> ());
  seq := 0;
  span_counter := 0;
  origin := Unix.gettimeofday ();
  last := 0.;
  sink := Some out;
  Mutex.unlock mu;
  emit ~ev:"meta" ~name:"trace"
    [ ("schema", Int schema_version); ("clock", Str "wall-ms") ]

let set_callback f = install { write = f; finish = (fun () -> ()) }

let set_file path =
  match open_out path with
  | oc ->
      install { write = (fun s -> output_string oc s); finish = (fun () -> close_out oc) };
      Ok ()
  | exception Sys_error msg -> Error msg

let close () =
  Mutex.lock mu;
  let old = !sink in
  sink := None;
  Mutex.unlock mu;
  match old with None -> () | Some out -> out.finish ()

let point name fields =
  match !sink with
  | None -> ()
  | Some _ -> emit ~ev:"point" ~name fields

type span = { sid : int; sname : string; t0 : float }

let null_span = { sid = -1; sname = ""; t0 = 0. }

let begin_span name fields =
  match !sink with
  | None -> null_span
  | Some _ ->
      let sid =
        match Domain.DLS.get lane_key with
        | Some lane ->
            lane.l_span <- lane.l_span + 1;
            lane.l_span
        | None ->
            Mutex.lock mu;
            incr span_counter;
            let v = !span_counter in
            Mutex.unlock mu;
            v
      in
      let s = { sid; sname = name; t0 = now_ms () } in
      emit ~ev:"begin" ~name ~span:s.sid fields;
      s

let end_span s fields =
  if s.sid >= 0 then
    match !sink with
    | None -> ()
    | Some _ ->
        emit ~ev:"end" ~name:s.sname ~span:s.sid
          ~dur_ms:(now_ms () -. s.t0) fields

let with_buffer f =
  match !sink with
  | None -> (f (), None)
  | Some _ ->
      let lane =
        { l_dom = (Domain.self () :> int);
          l_lines = [];
          l_span = 0;
          l_last = 0. }
      in
      let saved = Domain.DLS.get lane_key in
      Domain.DLS.set lane_key (Some lane);
      let v =
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set lane_key saved)
          f
      in
      (v, Some lane)

let flush_buffer buffer =
  match buffer with
  | None -> ()
  | Some lane -> (
      let lines = List.rev lane.l_lines in
      lane.l_lines <- [];
      match !sink with
      | None -> ()
      | Some _ ->
          Mutex.lock mu;
          (match !sink with
           | Some out -> List.iter (write_locked out) lines
           | None -> ());
          Mutex.unlock mu)

let buffer_dom = function None -> None | Some lane -> Some lane.l_dom
