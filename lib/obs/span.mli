(** Hierarchical wall-clock profiling spans.

    A thin, separately-gated probe layer over {!Trace} spans: call sites
    name a phase ([lp.pricing], [sim.admit], ...) and the span records
    land in the normal JSONL trace stream as [begin]/[end] pairs, with
    per-domain parent tracking done by {!Trace} — so profiling spans nest
    correctly inside the engine's own [sim.run]/[sim.slot] spans and are
    read back by the same strict reader. {!Profile} aggregates them;
    [postcard_sim trace-summary --profile] renders the table and
    [--chrome] exports the tree for chrome://tracing / Perfetto.

    The discipline mirrors {!Metrics}: one global enable flag, off by
    default, and a disabled probe is a no-op after a single atomic load —
    it allocates nothing and never touches the trace machinery, so
    fine-grained probes can live on solver hot paths (per-pivot pricing,
    FTRAN) without a measurable cost when profiling is off. The clock is
    {!Trace.now_ms}: wall time forced monotone per emission context,
    shared with every other trace event (see DESIGN.md §4h for the
    choice and measured overhead).

    Spans only reach the output when {e both} this flag and the trace
    sink are on; enabling spans without [--trace] is harmless and
    silent. *)

val set_enabled : bool -> unit
(** Turn the probe layer on or off (off is the default; the [--spans]
    flag of the binaries sets it). *)

val enabled : unit -> bool

val active : unit -> bool
(** [enabled () && Trace.enabled ()] — whether a probe would actually
    emit. Instrumentation building non-trivial payload fields should
    guard on this. *)

type t = Trace.span

val null : t
(** What {!begin_} returns while disabled; ending it is a no-op. *)

val begin_ : string -> t
(** Open a profiling span named after the phase. Disabled: one atomic
    load, returns {!null}, allocates nothing. *)

val begin_fields : string -> (string * Trace.field) list -> t
(** As {!begin_} with payload fields on the [begin] event. The field
    list is built by the caller even when disabled — guard with
    {!active} on hot paths. *)

val end_ : t -> unit
val end_fields : t -> (string * Trace.field) list -> unit
(** Close a span (no-op on {!null}). Not gated on the enable flag: a
    span obtained while enabled still closes if the flag flips
    mid-flight, so begins and ends always balance. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span, closing it on any exit
    (including exceptions). Disabled: calls [f] directly — no span, no
    protection frame. *)
