(* The enable flag is the only state: spans are emitted through
   [Trace.begin_span]/[end_span], so ids, parents and clocks all come
   from the trace layer and profiling spans interleave correctly with
   the engine's own sim.run/sim.slot spans. The disabled path is one
   atomic load and returns the preallocated [Trace.null_span] — no
   allocation, no branch into the trace machinery. *)

let on = Atomic.make false

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Probing is pointless without a sink; [active] is what instrumentation
   should consult before building payload fields. *)
let active () = Atomic.get on && Trace.enabled ()

type t = Trace.span

let null = Trace.null_span

let begin_ name = if Atomic.get on then Trace.begin_span name [] else null

let begin_fields name fields =
  if Atomic.get on then Trace.begin_span name fields else null

let end_ s = Trace.end_span s []

let end_fields s fields = Trace.end_span s fields

let with_ name f =
  if Atomic.get on then begin
    let s = Trace.begin_span name [] in
    Fun.protect ~finally:(fun () -> Trace.end_span s []) f
  end
  else f ()
