(* Span ids are scoped to their emission lane and restart per lane, so
   (dom, span-id) is not globally unique in a merged parallel trace.
   Pairing therefore never looks ids up globally: each [dom] gets a LIFO
   stack of open frames, and an [end] closes the innermost open frame
   with its id. That is sound because lanes flush contiguously (the
   reader guarantees sequence order) and spans nest within their lane,
   so in seq order each domain's begin/end events form a balanced
   bracket sequence. Anything that fails to pair is counted, not
   guessed at — the balance check turns it into a hard failure. *)

type frame = {
  f_sid : int;
  f_name : string;
  f_ts : float;
  f_fields : (string * Json.t) list;
  mutable f_child : float;  (* summed durations of direct children, ms *)
}

(* Walk the event stream in order, calling [complete] for every paired
   span with its frame, duration, exclusive self time, and whether it
   closed at top level (no enclosing frame on its domain). Returns
   (begins, ends, unmatched): unmatched counts end events that found no
   frame, frames skipped over to reach a matching id, and frames still
   open when the stream ends. *)
let walk events ~point ~complete =
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  let begins = ref 0 and ends = ref 0 and unmatched = ref 0 in
  List.iter
    (fun (ev : Trace_reader.event) ->
      match ev.kind with
      | Trace_reader.Meta -> ()
      | Trace_reader.Point -> point ev
      | Trace_reader.Begin ->
          incr begins;
          let sid = Option.get ev.span in
          let st = stack ev.dom in
          st :=
            { f_sid = sid;
              f_name = ev.name;
              f_ts = ev.ts;
              f_fields = ev.fields;
              f_child = 0. }
            :: !st
      | Trace_reader.End -> (
          incr ends;
          let sid = Option.get ev.span in
          let st = stack ev.dom in
          if List.exists (fun f -> f.f_sid = sid) !st then begin
            (* Frames above the match were abandoned (an exception
               skipped their end): drop and count them. *)
            let rec drop = function
              | f :: rest when f.f_sid <> sid ->
                  incr unmatched;
                  drop rest
              | rest -> rest
            in
            match drop !st with
            | [] -> assert false
            | f :: rest ->
                st := rest;
                let dur = Option.value ev.dur_ms ~default:0. in
                let self = Float.max 0. (dur -. f.f_child) in
                (match rest with
                 | parent :: _ -> parent.f_child <- parent.f_child +. dur
                 | [] -> ());
                complete ~dom:ev.dom ~frame:f ~dur ~self
                  ~top:(rest = []) ~end_fields:ev.fields
          end
          else incr unmatched))
    events;
  Hashtbl.iter
    (fun _ st -> unmatched := !unmatched + List.length !st)
    stacks;
  (!begins, !ends, !unmatched)

type row = {
  name : string;
  count : int;
  incl_ms : float;  (* summed durations; nested same-name spans double-count *)
  self_ms : float;
}

type t = {
  rows : row list;
  spans : int;
  begins : int;
  ends : int;
  unmatched : int;
  roots : int;
  root_ms : float;
  self_ms_total : float;
}

let of_events events =
  let agg : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let roots = ref 0 and root_ms = ref 0. and self_total = ref 0. in
  let spans = ref 0 in
  let begins, ends, unmatched =
    walk events
      ~point:(fun _ -> ())
      ~complete:(fun ~dom:_ ~frame ~dur ~self ~top ~end_fields:_ ->
        incr spans;
        let count, incl, slf =
          match Hashtbl.find_opt agg frame.f_name with
          | Some cell -> cell
          | None ->
              let cell = (ref 0, ref 0., ref 0.) in
              Hashtbl.add agg frame.f_name cell;
              cell
        in
        incr count;
        incl := !incl +. dur;
        slf := !slf +. self;
        self_total := !self_total +. self;
        if top then begin
          incr roots;
          root_ms := !root_ms +. dur
        end)
  in
  let rows =
    Hashtbl.fold
      (fun name (count, incl, slf) acc ->
        { name; count = !count; incl_ms = !incl; self_ms = !slf } :: acc)
      agg []
    |> List.sort (fun a b ->
           match compare b.self_ms a.self_ms with
           | 0 -> compare a.name b.name
           | c -> c)
  in
  { rows;
    spans = !spans;
    begins;
    ends;
    unmatched;
    roots = !roots;
    root_ms = !root_ms;
    self_ms_total = !self_total }

(* Exclusive times partition their roots exactly in real arithmetic;
   allow float accumulation noise only. *)
let self_tolerance t = 1e-6 *. Float.max 1. t.root_ms

let balance t =
  if t.spans = 0 then Error "no spans in trace"
  else if t.begins <> t.ends then
    Error
      (Printf.sprintf "unbalanced spans: %d begins, %d ends" t.begins t.ends)
  else if t.unmatched > 0 then
    Error (Printf.sprintf "%d begin/end events failed to pair" t.unmatched)
  else if t.self_ms_total > t.root_ms +. self_tolerance t then
    Error
      (Printf.sprintf
         "exclusive times exceed root spans: self %.6f ms > root %.6f ms"
         t.self_ms_total t.root_ms)
  else Ok ()

let pp ?(top = 20) ppf t =
  let shown =
    if top <= 0 || List.length t.rows <= top then t.rows
    else List.filteri (fun i _ -> i < top) t.rows
  in
  Format.fprintf ppf "@[<v>profile: %d spans over %d names, %d roots (%.3f ms)@,"
    t.spans (List.length t.rows) t.roots t.root_ms;
  Format.fprintf ppf "  %-28s %8s %12s %12s %7s@," "span" "count" "incl ms"
    "self ms" "self%";
  List.iter
    (fun r ->
      let pct =
        if t.root_ms > 0. then 100. *. r.self_ms /. t.root_ms else 0.
      in
      Format.fprintf ppf "  %-28s %8d %12.3f %12.3f %6.1f%%@," r.name r.count
        r.incl_ms r.self_ms pct)
    shown;
  let hidden = List.length t.rows - List.length shown in
  if hidden > 0 then begin
    let rest =
      List.fold_left
        (fun acc r -> acc +. r.self_ms)
        0.
        (List.filteri (fun i _ -> i >= top) t.rows)
    in
    Format.fprintf ppf "  (%d more names, %.3f ms self)@," hidden rest
  end;
  Format.fprintf ppf "  balance: %d begins, %d ends, %d unmatched; self %.3f ms of root %.3f ms@]@."
    t.begins t.ends t.unmatched t.self_ms_total t.root_ms

let to_json ?(top = 0) t =
  let rows =
    if top <= 0 then t.rows else List.filteri (fun i _ -> i < top) t.rows
  in
  Json.Obj
    [ ("spans", Json.Int t.spans);
      ("begins", Json.Int t.begins);
      ("ends", Json.Int t.ends);
      ("unmatched", Json.Int t.unmatched);
      ("roots", Json.Int t.roots);
      ("root_ms", Json.Float t.root_ms);
      ("self_ms", Json.Float t.self_ms_total);
      ("rows",
       Json.List
         (List.map
            (fun r ->
              Json.Obj
                [ ("name", Json.Str r.name);
                  ("count", Json.Int r.count);
                  ("incl_ms", Json.Float r.incl_ms);
                  ("self_ms", Json.Float r.self_ms) ])
            rows)) ]

(* Chrome trace_event JSON: complete ("X") events for spans, instant
   ("i") events for points, [tid] = emitting domain. Timestamps are
   microseconds in that format; ours are ms. Out-of-order X events are
   accepted by the viewers, so one pass over the stream suffices. *)
let chrome events =
  let acc = ref [] in
  let args fields =
    match fields with [] -> [] | kvs -> [ ("args", Json.Obj kvs) ]
  in
  let _ =
    walk events
      ~point:(fun (ev : Trace_reader.event) ->
        acc :=
          Json.Obj
            ([ ("name", Json.Str ev.name);
               ("cat", Json.Str "point");
               ("ph", Json.Str "i");
               ("s", Json.Str "t");
               ("ts", Json.Float (ev.ts *. 1000.));
               ("pid", Json.Int 1);
               ("tid", Json.Int ev.dom) ]
            @ args ev.fields)
          :: !acc)
      ~complete:(fun ~dom ~frame ~dur ~self:_ ~top:_ ~end_fields ->
        acc :=
          Json.Obj
            ([ ("name", Json.Str frame.f_name);
               ("cat", Json.Str "span");
               ("ph", Json.Str "X");
               ("ts", Json.Float (frame.f_ts *. 1000.));
               ("dur", Json.Float (dur *. 1000.));
               ("pid", Json.Int 1);
               ("tid", Json.Int dom) ]
            @ args (frame.f_fields @ end_fields))
          :: !acc)
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !acc));
      ("displayTimeUnit", Json.Str "ms") ]
