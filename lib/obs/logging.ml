(* Reporter callbacks are not reentrant; with worker domains logging
   concurrently (e.g. rejection warnings from a parallel experiment
   sweep), serialize every report on one mutex so lines never interleave
   mid-record. *)
let reporter_mu = Mutex.create ()

let setup ?(level = Some Logs.Warning) () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter_mutex
    ~lock:(fun () -> Mutex.lock reporter_mu)
    ~unlock:(fun () -> Mutex.unlock reporter_mu);
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let parse_level s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "none" | "off" -> Ok None
  | other -> (
      match Logs.level_of_string other with
      | Ok _ as ok -> ok
      | Error (`Msg msg) -> Error msg)

let level_name = function
  | None -> "quiet"
  | Some l -> Logs.level_to_string (Some l)

let init ?level ?(metrics = false) ?(spans = false) ?trace () =
  setup ?level ();
  Metrics.set_enabled metrics;
  Span.set_enabled spans;
  match trace with
  | None -> Ok ()
  | Some file -> (
      match Trace.set_file file with
      | Ok () ->
          (* Close the sink at exit, and if any write failed mid-run say
             so on stderr: a silently truncated trace would only be
             discovered when the strict reader rejects it later. *)
          at_exit (fun () ->
              Trace.close ();
              match Trace.last_error () with
              | None -> ()
              | Some msg ->
                  Printf.eprintf
                    "warning: trace sink %s failed mid-run (%s); the trace is incomplete\n%!"
                    file msg);
          Ok ()
      | Error _ as e -> e)
