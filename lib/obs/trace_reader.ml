type kind = Meta | Point | Begin | End

type event = {
  seq : int;
  dom : int;
  ts : float;
  kind : kind;
  name : string;
  span : int option;
  parent : int option;
  dur_ms : float option;
  fields : (string * Json.t) list;
}

let envelope_keys =
  [ "v"; "seq"; "dom"; "ts"; "ev"; "name"; "span"; "parent"; "dur_ms" ]

let kind_of_string = function
  | "meta" -> Some Meta
  | "point" -> Some Point
  | "begin" -> Some Begin
  | "end" -> Some End
  | _ -> None

let valid_payload_value = function
  | Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _ -> true
  | Json.List xs ->
      List.for_all
        (function Json.Int _ | Json.Float _ -> true | _ -> false)
        xs
  | Json.Obj _ -> false

let of_json json =
  match json with
  | Json.Obj kvs -> (
      let get k = List.assoc_opt k kvs in
      let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
      let require name conv =
        match Option.bind (get name) conv with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing or ill-typed %S" name)
      in
      let* v = require "v" Json.to_int in
      if v <> Trace.schema_version then
        Error (Printf.sprintf "schema version %d (expected %d)" v Trace.schema_version)
      else
        let* seq = require "seq" Json.to_int in
        let* dom = require "dom" Json.to_int in
        let* ts = require "ts" Json.to_float in
        let* ev = require "ev" Json.to_str in
        let* name = require "name" Json.to_str in
        match kind_of_string ev with
        | None -> Error (Printf.sprintf "unknown event kind %S" ev)
        | Some kind ->
            let span = Option.bind (get "span") Json.to_int in
            let parent = Option.bind (get "parent") Json.to_int in
            let dur_ms = Option.bind (get "dur_ms") Json.to_float in
            let* () =
              match kind with
              | Begin | End when span = None ->
                  Error (Printf.sprintf "%s event without span id" ev)
              | End when dur_ms = None -> Error "end event without dur_ms"
              | (Meta | Point) when parent <> None ->
                  Error (Printf.sprintf "%s event with a parent key" ev)
              | Meta | Point | Begin | End -> Ok ()
            in
            let fields =
              List.filter (fun (k, _) -> not (List.mem k envelope_keys)) kvs
            in
            let* () =
              List.fold_left
                (fun acc (k, value) ->
                  match acc with
                  | Error _ -> acc
                  | Ok () ->
                      if valid_payload_value value then Ok ()
                      else Error (Printf.sprintf "field %S has a non-scalar value" k))
                (Ok ()) fields
            in
            Ok { seq; dom; ts; kind; name; span; parent; dur_ms; fields })
  | _ -> Error "event is not a JSON object"

let of_line line =
  match Json.parse line with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok json -> of_json json

let read_channel ic =
  let events = ref [] in
  let line_no = ref 0 in
  let expected_seq = ref 1 in
  let error = ref None in
  (try
     while !error = None do
       let line = input_line ic in
       incr line_no;
       if String.trim line <> "" then begin
         match of_line line with
         | Error msg ->
             error := Some (Printf.sprintf "line %d: %s" !line_no msg)
         | Ok ev ->
             if ev.seq <> !expected_seq then
               error :=
                 Some
                   (Printf.sprintf "line %d: sequence %d (expected %d)"
                      !line_no ev.seq !expected_seq)
             else if !expected_seq = 1 && ev.kind <> Meta then
               error :=
                 Some
                   (Printf.sprintf "line %d: trace must start with a meta event"
                      !line_no)
             else begin
               incr expected_seq;
               events := ev :: !events
             end
       end
     done
   with End_of_file -> ());
  match !error with
  | Some msg -> Error msg
  | None ->
      if !events = [] then Error "empty trace"
      else Ok (List.rev !events)

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let r = read_channel ic in
      close_in ic;
      r

let field ev name = List.assoc_opt name ev.fields
let float_field ev name = Option.bind (field ev name) Json.to_float
let int_field ev name = Option.bind (field ev name) Json.to_int
let str_field ev name = Option.bind (field ev name) Json.to_str
