let on = ref false

let set_enabled b = on := b
let enabled () = !on

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* inclusive upper bounds, increasing *)
  counts : int array;  (* length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type item = C of counter | G of gauge | H of histogram

let registry : (string, item) Hashtbl.t = Hashtbl.create 64

(* Registration order, for stable dumps. *)
let order : string list ref = ref []

let register name item =
  Hashtbl.add registry name item;
  order := name :: !order

let kind_error name = invalid_arg ("Obs.Metrics: " ^ name ^ " already registered as a different kind")

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { c_name = name; c = 0 } in
      register name (C c);
      c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { g_name = name; g = nan } in
      register name (G g);
      g

let default_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4;
     5e4; 1e5 |]

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
      let n = Array.length buckets in
      for i = 1 to n - 1 do
        if buckets.(i) <= buckets.(i - 1) then
          invalid_arg "Obs.Metrics.histogram: buckets must increase"
      done;
      let h =
        { h_name = name;
          bounds = Array.copy buckets;
          counts = Array.make (n + 1) 0;
          h_count = 0;
          h_sum = 0. }
      in
      register name (H h);
      h

let incr c = if !on then c.c <- c.c + 1
let add c n = if !on then c.c <- c.c + n
let set g v = if !on then g.g <- v

let observe h v =
  if !on then begin
    let n = Array.length h.bounds in
    (* Buckets are few and fixed: a linear scan beats binary search at
       these sizes and stays branch-predictable. *)
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do i := !i + 1 done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v
  end

let counter_value c = c.c
let gauge_value g = g.g
let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let histogram_buckets h =
  let n = Array.length h.bounds in
  Array.init (n + 1) (fun i ->
      ((if i < n then h.bounds.(i) else infinity), h.counts.(i)))

let reset () =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> c.c <- 0
      | G g -> g.g <- nan
      | H h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0.)
    registry

let pp_dump ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name ->
      match Hashtbl.find_opt registry name with
      | None -> ()
      | Some (C c) -> Format.fprintf ppf "%-36s %d@," c.c_name c.c
      | Some (G g) ->
          if Float.is_nan g.g then
            Format.fprintf ppf "%-36s (unset)@," g.g_name
          else Format.fprintf ppf "%-36s %g@," g.g_name g.g
      | Some (H h) ->
          Format.fprintf ppf "%-36s count=%d sum=%g" h.h_name h.h_count
            h.h_sum;
          if h.h_count > 0 then begin
            Format.fprintf ppf " [";
            let first = ref true in
            Array.iter
              (fun (ub, n) ->
                if n > 0 then begin
                  if not !first then Format.fprintf ppf " ";
                  first := false;
                  if ub = infinity then Format.fprintf ppf "+inf:%d" n
                  else Format.fprintf ppf "<=%g:%d" ub n
                end)
              (histogram_buckets h);
            Format.fprintf ppf "]"
          end;
          Format.fprintf ppf "@,")
    (List.rev !order);
  Format.fprintf ppf "@]"
