(* Domain-safety: counters and the enable flag are Atomic (one
   fetch-and-add per update, still allocation-free), gauges publish a
   boxed float through an Atomic (a gauge set is rare), and histograms
   take a per-histogram mutex since their buckets/count/sum must move
   together. The registry table itself is guarded by [registry_mu];
   registration normally happens at module-initialization time on the
   main domain, but nothing breaks if a worker domain registers late. *)

let on = Atomic.make false

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  bounds : float array;  (* inclusive upper bounds, increasing *)
  counts : int array;  (* length bounds + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type item = C of counter | G of gauge | H of histogram

let registry_mu = Mutex.create ()
let registry : (string, item) Hashtbl.t = Hashtbl.create 64

(* Registration order, for stable dumps. *)
let order : string list ref = ref []

let kind_error name = invalid_arg ("Obs.Metrics: " ^ name ^ " already registered as a different kind")

(* Find-or-create under the registry lock so two domains racing on the
   same name get the same handle. *)
let find_or_register name ~make ~cast =
  Mutex.lock registry_mu;
  let r =
    match Hashtbl.find_opt registry name with
    | Some item -> (
        match cast item with Some v -> Ok v | None -> Error ())
    | None ->
        let v, item = make () in
        Hashtbl.add registry name item;
        order := name :: !order;
        Ok v
  in
  Mutex.unlock registry_mu;
  match r with Ok v -> v | Error () -> kind_error name

let counter name =
  find_or_register name
    ~make:(fun () ->
      let c = { c_name = name; c = Atomic.make 0 } in
      (c, C c))
    ~cast:(function C c -> Some c | _ -> None)

let gauge name =
  find_or_register name
    ~make:(fun () ->
      let g = { g_name = name; g = Atomic.make nan } in
      (g, G g))
    ~cast:(function G g -> Some g | _ -> None)

let default_buckets =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4;
     5e4; 1e5 |]

let histogram ?(buckets = default_buckets) name =
  let n = Array.length buckets in
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Obs.Metrics.histogram: buckets must increase"
  done;
  find_or_register name
    ~make:(fun () ->
      let h =
        { h_name = name;
          h_mu = Mutex.create ();
          bounds = Array.copy buckets;
          counts = Array.make (n + 1) 0;
          h_count = 0;
          h_sum = 0. }
      in
      (h, H h))
    ~cast:(function H h -> Some h | _ -> None)

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c.c 1)
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c n)
let set g v = if Atomic.get on then Atomic.set g.g v

let observe h v =
  if Atomic.get on then begin
    Mutex.lock h.h_mu;
    let n = Array.length h.bounds in
    (* Buckets are few and fixed: a linear scan beats binary search at
       these sizes and stays branch-predictable. *)
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do i := !i + 1 done;
    h.counts.(!i) <- h.counts.(!i) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    Mutex.unlock h.h_mu
  end

let counter_value c = Atomic.get c.c
let gauge_value g = Atomic.get g.g

let histogram_count h =
  Mutex.lock h.h_mu;
  let v = h.h_count in
  Mutex.unlock h.h_mu;
  v

let histogram_sum h =
  Mutex.lock h.h_mu;
  let v = h.h_sum in
  Mutex.unlock h.h_mu;
  v

let histogram_buckets h =
  let n = Array.length h.bounds in
  Mutex.lock h.h_mu;
  let counts = Array.copy h.counts in
  Mutex.unlock h.h_mu;
  Array.init (n + 1) (fun i ->
      ((if i < n then h.bounds.(i) else infinity), counts.(i)))

(* Prometheus-style quantile estimation from the fixed buckets: find the
   bucket holding the target rank and interpolate linearly inside it.
   The first bucket's lower edge is 0 (observations are nonnegative in
   every series we keep); the overflow bucket has no finite upper edge,
   so a rank landing there degrades to the last finite bound — the
   honest answer a bucketed histogram can give. *)
let histogram_quantile h q =
  let q = Float.min 1. (Float.max 0. q) in
  let buckets = histogram_buckets h in
  Mutex.lock h.h_mu;
  let total = h.h_count in
  Mutex.unlock h.h_mu;
  if total = 0 then None
  else begin
    let rank = q *. float_of_int total in
    let n = Array.length buckets in
    let result = ref None in
    let cum = ref 0 in
    (try
       for i = 0 to n - 1 do
         let ub, count = buckets.(i) in
         let below = !cum in
         cum := !cum + count;
         if float_of_int !cum >= rank && count > 0 then begin
           if ub = infinity then
             (* Overflow: clamp to the largest finite bound. *)
             result :=
               Some (if n >= 2 then fst buckets.(n - 2) else 0.)
           else begin
             let lo = if i = 0 then 0. else fst buckets.(i - 1) in
             let frac = (rank -. float_of_int below) /. float_of_int count in
             result := Some (lo +. ((ub -. lo) *. frac))
           end;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> Atomic.set c.c 0
      | G g -> Atomic.set g.g nan
      | H h ->
          Mutex.lock h.h_mu;
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0.;
          Mutex.unlock h.h_mu)
    registry;
  Mutex.unlock registry_mu

type entry =
  | Counter_entry of { name : string; value : int }
  | Gauge_entry of { name : string; value : float option }
  | Histogram_entry of {
      name : string;
      count : int;
      sum : float;
      buckets : (float * int) array;
    }

let dump () =
  Mutex.lock registry_mu;
  let ordered =
    List.filter_map
      (fun name -> Hashtbl.find_opt registry name)
      (List.rev !order)
  in
  Mutex.unlock registry_mu;
  List.map
    (fun item ->
      match item with
      | C c -> Counter_entry { name = c.c_name; value = counter_value c }
      | G g ->
          let v = gauge_value g in
          Gauge_entry
            { name = g.g_name;
              value = (if Float.is_nan v then None else Some v) }
      | H h ->
          Histogram_entry
            { name = h.h_name;
              count = histogram_count h;
              sum = histogram_sum h;
              buckets = histogram_buckets h })
    ordered

(* Scrape formatting: the whole registry as one JSON document, the shape
   a serving daemon returns from its scrape endpoint. *)
let dump_json () =
  let metric kind name fields =
    Json.Obj (("name", Json.Str name) :: ("kind", Json.Str kind) :: fields)
  in
  Json.List
    (List.map
       (function
         | Counter_entry { name; value } ->
             metric "counter" name [ ("value", Json.Int value) ]
         | Gauge_entry { name; value } ->
             metric "gauge" name
               [ ("value",
                  match value with Some v -> Json.Float v | None -> Json.Null)
               ]
         | Histogram_entry { name; count; sum; buckets } ->
             metric "histogram" name
               [ ("count", Json.Int count);
                 ("sum", Json.Float sum);
                 ("buckets",
                  Json.List
                    (Array.to_list buckets
                    |> List.map (fun (ub, n) ->
                           Json.Obj
                             [ ("le",
                                if ub = infinity then Json.Str "+inf"
                                else Json.Float ub);
                               ("count", Json.Int n) ]))) ])
       (dump ()))

(* Prometheus text exposition (version 0.0.4): what a scrape endpoint
   serves under [Content-Type: text/plain]. Metric names keep only
   [a-zA-Z0-9_:] (dots become underscores); histogram buckets are
   cumulative with a closing [+Inf], per the format. *)
let dump_prometheus () =
  let sanitize name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.17g" v
  in
  let b = Buffer.create 1024 in
  List.iter
    (function
      | Counter_entry { name; value } ->
          let n = sanitize name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n value)
      | Gauge_entry { name; value } -> (
          match value with
          | None -> ()  (* never set: no honest sample to expose *)
          | Some v ->
              let n = sanitize name in
              Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
              Buffer.add_string b (Printf.sprintf "%s %s\n" n (num v)))
      | Histogram_entry { name; count; sum; buckets } ->
          let n = sanitize name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          let cum = ref 0 in
          Array.iter
            (fun (ub, c) ->
              cum := !cum + c;
              let le = if ub = infinity then "+Inf" else num ub in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cum))
            buckets;
          Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (num sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n count))
    (dump ());
  Buffer.contents b

let pp_dump ppf () =
  Mutex.lock registry_mu;
  let ordered =
    List.filter_map
      (fun name -> Hashtbl.find_opt registry name)
      (List.rev !order)
  in
  Mutex.unlock registry_mu;
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun item ->
      match item with
      | C c -> Format.fprintf ppf "%-36s %d@," c.c_name (counter_value c)
      | G g ->
          let v = gauge_value g in
          if Float.is_nan v then
            Format.fprintf ppf "%-36s (unset)@," g.g_name
          else Format.fprintf ppf "%-36s %g@," g.g_name v
      | H h ->
          Format.fprintf ppf "%-36s count=%d sum=%g" h.h_name
            (histogram_count h) (histogram_sum h);
          if histogram_count h > 0 then begin
            Format.fprintf ppf " [";
            let first = ref true in
            Array.iter
              (fun (ub, n) ->
                if n > 0 then begin
                  if not !first then Format.fprintf ppf " ";
                  first := false;
                  if ub = infinity then Format.fprintf ppf "+inf:%d" n
                  else Format.fprintf ppf "<=%g:%d" ub n
                end)
              (histogram_buckets h);
            Format.fprintf ppf "]"
          end;
          Format.fprintf ppf "@,")
    ordered;
  Format.fprintf ppf "@]"
