type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer. *)

let escape_to_buffer b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string f =
  if Float.is_nan f then "null"
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else if Float.is_integer f && abs_float f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (number_to_string f)
  | Str s -> escape_to_buffer b s
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_to_buffer b k;
          Buffer.add_char b ':';
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser: strict recursive descent over the input string. *)

exception Fail of string

type cursor = { s : string; mutable pos : int }

let error cur msg = raise (Fail (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.s in
  while
    cur.pos < n
    && (match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance cur
  done

let expect cur ch =
  match peek cur with
  | Some c when c = ch -> advance cur
  | _ -> error cur (Printf.sprintf "expected '%c'" ch)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.s
    && String.sub cur.s cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur ("invalid literal (expected " ^ word ^ ")")

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
         | None -> error cur "unterminated escape"
         | Some c ->
             advance cur;
             (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if cur.pos + 4 > String.length cur.s then
                    error cur "truncated \\u escape";
                  let hex = String.sub cur.s cur.pos 4 in
                  cur.pos <- cur.pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with Failure _ -> error cur "invalid \\u escape"
                  in
                  (* UTF-8 encode the BMP code point (surrogate pairs are
                     not needed by our own emitter). *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                    Buffer.add_char b
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                  end
              | _ -> error cur "unknown escape");
             loop ())
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.s in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while cur.pos < n && is_num_char cur.s.[cur.pos] do advance cur done;
  let text = String.sub cur.s start (cur.pos - start) in
  let has_frac =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if has_frac then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error cur "invalid number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error cur "invalid number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws cur;
          let key = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          fields := (key, v) :: !fields;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              members ()
          | Some '}' -> advance cur
          | _ -> error cur "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value cur in
          items := v :: !items;
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              elements ()
          | Some ']' -> advance cur
          | _ -> error cur "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> error cur (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let cur = { s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
      else Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
