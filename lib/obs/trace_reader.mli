(** Read a JSONL trace back, validating every line against the event
    schema emitted by {!Trace}.

    Validation is strict: every line must be a JSON object whose [v]
    matches {!Trace.schema_version}, with the required envelope keys of
    its event kind ([seq], [dom], [ts], [name]; [span] on [begin]/[end];
    [dur_ms] on [end]; [parent] allowed on [begin]/[end] only), sequence
    numbers must be consecutive from 1, and payload values must be
    scalars or arrays of numbers. *)

type kind = Meta | Point | Begin | End

type event = {
  seq : int;
  dom : int;  (** Id of the domain that emitted the event. *)
  ts : float;  (** ms since trace start. *)
  kind : kind;
  name : string;
  span : int option;
  parent : int option;
      (** Enclosing span's id, on [begin] events of nested spans. Span
          ids are scoped to their emission lane: resolve parents within
          one [dom]'s events, not across the merged stream. *)
  dur_ms : float option;
  fields : (string * Json.t) list;  (** Payload, envelope keys removed. *)
}

val of_line : string -> (event, string) result
(** Parse and validate a single line (no sequence check at this level). *)

val read_channel : in_channel -> (event list, string) result
(** Read and validate a whole trace; blank lines are ignored, the first
    event must be the [meta] header, and [seq] must count up from 1.
    Errors carry the offending line number. *)

val read_file : string -> (event list, string) result

val field : event -> string -> Json.t option
val float_field : event -> string -> float option
val int_field : event -> string -> int option
val str_field : event -> string -> string option
