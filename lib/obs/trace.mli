(** Structured run traces: schema-versioned JSONL events.

    A trace is a sequence of events, one JSON object per line, written to
    a file or handed to a callback. Three event shapes exist: [point]
    (one-shot measurement), and [begin]/[end] pairs delimiting a {e span}
    (a timed region; the [end] event carries the duration). Every event
    carries the schema version, a sequence number, the id of the domain
    that emitted it ([dom]), a timestamp (ms since the sink was installed,
    from a clock that never goes backwards within its emission context)
    and the caller's typed payload fields.

    {b Span hierarchy.} Each domain (and each {!with_buffer} lane)
    maintains a stack of its open spans: a [begin] emitted while another
    span of the same emission context is open carries that span's id as
    the [parent] envelope key, so consumers can rebuild the nesting tree
    without re-deriving it from timestamps. Parents never cross a domain
    or lane boundary.

    The default sink is a no-op: {!point} and {!begin_span} return
    immediately after one flag test, so instrumentation left in hot code
    costs nothing when tracing is off. Call sites on genuinely hot paths
    should additionally guard payload construction with {!enabled}, since
    building the field list itself allocates.

    {b Domain safety.} Direct emission serializes on an internal mutex,
    so concurrent emitters can never interleave bytes or duplicate
    sequence numbers. For parallel sections that need {e deterministic}
    event order, wrap each unit of work in {!with_buffer}: events emitted
    by the wrapped computation are buffered in a per-domain lane instead
    of going to the sink, and {!flush_buffer} later appends each lane's
    events contiguously, assigning consecutive global sequence numbers at
    that point. Flushing buffers in submission order therefore produces a
    stream that is independent of worker scheduling (timestamps aside) and
    that span-nesting consumers read exactly like a serial trace. Spans
    must begin and end within the same buffering context.

    Reserved top-level keys ([v], [seq], [dom], [ts], [ev], [name],
    [span], [parent], [dur_ms]) may not be used as payload field names. *)

val schema_version : int
(** Current schema version, emitted as [v] on every event. The first
    event of every trace is a [meta] event naming the schema. Version 2
    added the [dom] envelope key; version 3 added the optional [parent]
    key on [begin] events. *)

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Floats of float array  (** Rendered as a JSON array of numbers. *)

val enabled : unit -> bool

val set_callback : (string -> unit) -> unit
(** Route every event line (newline included) to a callback. Resets the
    sequence/span counters and the clock origin, then emits the [meta]
    event. *)

val set_file : string -> (unit, string) result
(** Open [path] for writing and route events to it (buffered; closed and
    flushed by {!close}). The returned error is the {e open} failure;
    write failures after a successful open do not raise into the traced
    program — the first one is kept and exposed by {!last_error}. *)

val last_error : unit -> string option
(** First sink failure (write, flush or close) since the sink was
    installed, if any. A trace whose sink failed mid-run is truncated and
    will not pass the strict reader; exit paths should surface this. *)

val flush_sync : unit -> unit
(** Flush the sink's buffered lines and [fsync] them to stable storage
    (file sinks; a no-op for callback sinks or when tracing is off). Call
    on signal-triggered shutdown paths so the tail of the trace survives
    the process. *)

val close : unit -> unit
(** Flush and detach the current sink, restoring the no-op default.
    Harmless when tracing is already off. Pending {!with_buffer} lanes
    that were never flushed are dropped. *)

val now_ms : unit -> float
(** Milliseconds since the sink was installed (0 when tracing is off);
    the timestamp base of every event. Exposed so instrumentation can
    time sub-steps consistently with the trace clock. The wall clock is
    forced monotone per emission context (a watermark clamps backward
    steps), which is why spans measure durations with it directly. *)

val point : string -> (string * field) list -> unit
(** [point name fields] emits a one-shot event. No-op when disabled.
    Raises [Invalid_argument] on a reserved field name. *)

type span

val null_span : span
(** The span returned while tracing is off; {!end_span} on it is a
    no-op. *)

val begin_span : string -> (string * field) list -> span
(** Open a span: emits the [begin] event (carrying the enclosing open
    span's id as [parent], if any) and pushes the span on the calling
    context's open-span stack. *)

val end_span : span -> (string * field) list -> unit
(** [end_span s fields] emits the closing event with [dur_ms] measured
    since {!begin_span} and pops [s] off the open-span stack — together
    with any inner spans an exception left unclosed, so one protected
    outer [end_span] reconciles the stack. *)

(** {1 Per-domain buffering for parallel sections} *)

type buffer
(** The events captured by one {!with_buffer} call, tagged with the
    emitting domain's id and not yet part of the output stream. *)

val with_buffer : (unit -> 'a) -> 'a * buffer
(** [with_buffer f] runs [f] with the calling domain's trace emission
    redirected into a fresh buffer and returns [f]'s result together with
    the buffer. Nested calls stack (the inner buffer wins for its
    duration). The lane starts with an empty open-span stack, so spans
    opened inside it are parented only to each other. When tracing is
    off, [f] simply runs and the returned buffer is empty. The buffer
    holds no events until flushed and is lost if dropped. *)

val flush_buffer : buffer -> unit
(** Append the buffer's events to the trace, assigning the next
    consecutive sequence numbers; the buffer is emptied (a second flush
    is a no-op). Call this from the coordinating domain, in submission
    order, once the parallel section is done. *)

val buffer_dom : buffer -> int option
(** Id of the domain that filled the buffer ([None] when tracing was off
    at capture time). *)
