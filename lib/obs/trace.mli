(** Structured run traces: schema-versioned JSONL events.

    A trace is a sequence of events, one JSON object per line, written to
    a file or handed to a callback. Three event shapes exist: [point]
    (one-shot measurement), and [begin]/[end] pairs delimiting a {e span}
    (a timed region; the [end] event carries the duration). Every event
    carries the schema version, a sequence number, a timestamp (ms since
    the sink was installed, from a clock that never goes backwards within
    a run) and the caller's typed payload fields.

    The default sink is a no-op: {!point} and {!begin_span} return
    immediately after one flag test, so instrumentation left in hot code
    costs nothing when tracing is off. Call sites on genuinely hot paths
    should additionally guard payload construction with {!enabled}, since
    building the field list itself allocates.

    Reserved top-level keys ([v], [seq], [ts], [ev], [name], [span],
    [dur_ms]) may not be used as payload field names. *)

val schema_version : int
(** Current schema version, emitted as [v] on every event. The first
    event of every trace is a [meta] event naming the schema. *)

type field =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool
  | Floats of float array  (** Rendered as a JSON array of numbers. *)

val enabled : unit -> bool

val set_callback : (string -> unit) -> unit
(** Route every event line (newline included) to a callback. Resets the
    sequence/span counters and the clock origin, then emits the [meta]
    event. *)

val set_file : string -> (unit, string) result
(** Open [path] for writing and route events to it (buffered; closed and
    flushed by {!close}). *)

val close : unit -> unit
(** Flush and detach the current sink, restoring the no-op default.
    Harmless when tracing is already off. *)

val now_ms : unit -> float
(** Milliseconds since the sink was installed (0 when tracing is off);
    the timestamp base of every event. Exposed so instrumentation can
    time sub-steps consistently with the trace clock. *)

val point : string -> (string * field) list -> unit
(** [point name fields] emits a one-shot event. No-op when disabled.
    Raises [Invalid_argument] on a reserved field name. *)

type span

val null_span : span
(** The span returned while tracing is off; {!end_span} on it is a
    no-op. *)

val begin_span : string -> (string * field) list -> span
val end_span : span -> (string * field) list -> unit
(** [end_span s fields] emits the closing event with [dur_ms] measured
    since {!begin_span}. *)
