(** One shared setup path for [Logs] reporting.

    Every executable in the tree (simulator, solver CLI, bench) routes
    its reporter installation through here, so [Logs.Src] messages from
    the libraries reach a terminal-aware reporter regardless of the entry
    point. *)

val setup : ?level:Logs.level option -> unit -> unit
(** Install TTY-aware formatting and the [Logs] format reporter, then set
    the global level ([Some Warning] by default; [None] silences
    everything). Reports are serialized on a mutex so messages from
    worker domains never interleave. Safe to call more than once. *)

val parse_level : string -> (Logs.level option, string) result
(** Parse a verbosity name: [quiet]/[none] for no logging, otherwise any
    of [app], [error], [warning], [info], [debug]. *)

val level_name : Logs.level option -> string

val init :
  ?level:Logs.level option ->
  ?metrics:bool ->
  ?spans:bool ->
  ?trace:string ->
  unit ->
  (unit, string) result
(** One-stop observability setup for an executable: {!setup} the [Logs]
    reporter at [level], enable the {!Metrics} registry when [metrics]
    and the {!Span} probe layer when [spans], and when [trace] is given
    route the {!Trace} sink to that file (closing it [at_exit], and
    warning on stderr if {!Trace.last_error} reports a mid-run sink
    failure — a truncated trace must not fail silently). The returned
    error carries the trace-file {e open} failure. *)
