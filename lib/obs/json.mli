(** Minimal JSON codec for the telemetry layer.

    The repository deliberately carries no third-party JSON dependency;
    this module provides just what the trace sink, the trace reader and
    the bench emitters need: a value type, a compact writer whose float
    rendering round-trips, and a strict recursive-descent parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parse one complete JSON document; trailing garbage is an error.
    Numbers without [.], [e] or [E] that fit an OCaml [int] parse as
    [Int], everything else as [Float]. *)

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the JSON string literal (including quotes) for a raw string;
    shared by the hand-rolled emitters. *)

val number_to_string : float -> string
(** Round-trip float rendering: [nan] becomes [null] (JSON has no NaN),
    integral values print with a trailing [.0]. *)

(** {2 Accessors} — all return [None] on a kind mismatch. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]. *)

val to_float : t -> float option
(** Accepts [Int] and [Float]. *)

val to_int : t -> int option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
