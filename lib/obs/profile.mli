(** Offline span profiling over a validated trace.

    Pairs the [begin]/[end] events of a {!Trace_reader} stream into
    spans, aggregates inclusive and exclusive (self) wall-clock time per
    span name, and exports the span tree as Chrome [trace_event] JSON.

    Span ids restart per emission lane, so pairing is positional, not by
    global id: each domain's events form a balanced bracket sequence in
    sequence order (lanes flush contiguously and spans nest), and an
    [end] closes the innermost open frame of its domain carrying its id.
    Events that fail to pair are counted as [unmatched] and fail
    {!balance} — they are never silently guessed at. *)

type row = {
  name : string;
  count : int;
  incl_ms : float;
      (** Summed span durations. A span nested under a same-named span
          counts its time in both — inclusive time over all names is not
          a partition. *)
  self_ms : float;
      (** Exclusive time: duration minus the summed durations of direct
          children (clamped at 0). Self times over all spans partition
          the root spans. *)
}

type t = {
  rows : row list;  (** Sorted by [self_ms] descending, then name. *)
  spans : int;  (** Paired spans. *)
  begins : int;
  ends : int;
  unmatched : int;
      (** End events with no matching open frame, frames abandoned by an
          exception, and frames still open at end of stream. *)
  roots : int;  (** Spans that closed with no enclosing span. *)
  root_ms : float;  (** Summed durations of root spans. *)
  self_ms_total : float;
}

val of_events : Trace_reader.event list -> t

val balance : t -> (unit, string) result
(** The [--profile] gate: at least one span, begins = ends, nothing
    unmatched, and total exclusive time within float tolerance of the
    root-span total (exclusive times partition roots exactly in real
    arithmetic). *)

val pp : ?top:int -> Format.formatter -> t -> unit
(** Render the self-time table (top [top] names, default 20; [0] for
    all) followed by the balance line. *)

val to_json : ?top:int -> t -> Json.t
(** Machine-readable form of the same report; [top] [0] (the default)
    keeps every row. *)

val chrome : Trace_reader.event list -> Json.t
(** The stream as a Chrome [trace_event] document ([{"traceEvents":
    [...]}]): spans as complete ["X"] events, points as instant ["i"]
    events, [tid] = emitting domain, timestamps/durations in µs.
    Loadable in chrome://tracing and Perfetto. *)
