module Engine = Sim.Engine
module Workload = Sim.Workload
module File = Postcard.File

let src = Logs.Src.create "postcard.serve" ~doc:"Serving session"

module Log = (val Logs.src_log src : Logs.LOG)

type client = int

type effect =
  | Send of client * Protocol.event
  | Broadcast of Protocol.event
  | Disconnect of client
  | End_session

type t = {
  engine : Engine.t;
  workload : Workload.t;
  nodes : int;
  clock : string;
  owners : (File.id, client) Hashtbl.t;
  submitted : (File.id, float) Hashtbl.t;
      (* Wall-clock submit time, for the latency histograms; entries die
         with their file's terminal event. *)
  mutable next_id : File.id;
  mutable clients : client list;
  mutable ended : bool;
  mutable outcome : Engine.outcome option;
}

(* Request latency in wall-clock ms, measured from the [Queued]
   acknowledgement: [serve.queue_ms] to admission, [serve.request_ms] to
   completion. The bucket ladder reaches below a millisecond — under the
   turbo clock a whole slot can execute in microseconds. *)
let latency_buckets =
  [| 0.05; 0.1; 0.2; 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.;
     1000.; 2000.; 5000. |]

let h_queue_ms =
  Obs.Metrics.histogram ~buckets:latency_buckets "serve.queue_ms"

let h_request_ms =
  Obs.Metrics.histogram ~buckets:latency_buckets "serve.request_ms"

let latency_quantiles () =
  let count = Obs.Metrics.histogram_count h_request_ms in
  match
    ( Obs.Metrics.histogram_quantile h_request_ms 0.5,
      Obs.Metrics.histogram_quantile h_request_ms 0.95,
      Obs.Metrics.histogram_quantile h_request_ms 0.99 )
  with
  | Some p50, Some p95, Some p99 when count > 0 ->
      Some (count, p50, p95, p99)
  | _ -> None

let create ~base ~scheduler ~slots ?(faults = Sim.Faults.empty) ~clock () =
  let workload = Workload.pushable () in
  let cfg = Engine.make ~base ~scheduler ~workload ~slots ~faults () in
  let engine = Engine.init cfg in
  { engine;
    workload;
    nodes = Netgraph.Graph.num_nodes base;
    clock;
    owners = Hashtbl.create 64;
    submitted = Hashtbl.create 64;
    next_id = 0;
    clients = [];
    ended = false;
    outcome = None }

let ended t = t.ended
let outcome t = t.outcome
let clients t = t.clients
let capture t = Workload.captured t.workload

let hello t =
  Protocol.Hello
    { version = Protocol.version;
      nodes = t.nodes;
      slots = Engine.horizon t.engine;
      clock = t.clock }

let connect t client =
  if not (List.mem client t.clients) then t.clients <- client :: t.clients;
  [ Send (client, hello t) ]

let disconnect t client =
  t.clients <- List.filter (fun c -> c <> client) t.clients

(* Per-file lifecycle events go to the submitting client; a file whose
   owner is unknown (shouldn't happen — every file enters via Submit)
   degrades to a broadcast rather than vanishing. *)
let to_owner t id ev =
  match Hashtbl.find_opt t.owners id with
  | Some client -> Send (client, ev)
  | None -> Broadcast ev

(* Latency bookkeeping: queue latency when the scheduler admits, request
   latency when the last byte lands; terminal events drop the entry. *)
let observe_latency t h id =
  match Hashtbl.find_opt t.submitted id with
  | None -> ()
  | Some t0 ->
      Obs.Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1000.)

let settle t id = Hashtbl.remove t.submitted id

let complete_latency t id =
  observe_latency t h_request_ms id;
  settle t id

let status_report t =
  let s = Engine.status t.engine in
  Protocol.Status_report
    { slot = s.Engine.next_slot;
      slots = s.Engine.slots_total;
      pending = Workload.pending t.workload;
      in_flight = s.Engine.files_in_flight;
      offered_files = s.Engine.files_offered;
      rejected_files = s.Engine.files_rejected;
      lost_files = s.Engine.files_lost;
      offered_bytes = s.Engine.bytes_offered;
      delivered_bytes = s.Engine.bytes_delivered;
      cost = s.Engine.cost_per_interval }

(* Close the run: whatever is still in flight is guaranteed to complete
   at its finish slot (no more fault reveals can strand it once the
   engine stops stepping), so surface those completions before the
   session-end totals. *)
let finish t =
  t.ended <- true;
  let completions =
    List.map
      (fun (id, fslot) ->
        complete_latency t id;
        to_owner t id (Protocol.Completed { id; slot = fslot }))
      (Engine.in_flight t.engine)
  in
  let o = Engine.drain t.engine in
  t.outcome <- Some o;
  let avg_cost =
    if Array.length o.Engine.cost_series = 0 then 0. else Engine.average_cost o
  in
  Log.info (fun m ->
      m "session end: offered %.1f GB, delivered %.1f GB, lost %.1f GB"
        o.Engine.offered_volume o.Engine.delivered_volume
        o.Engine.lost_volume);
  completions
  @ [ Broadcast
        (Protocol.Session_end
           { slot = Engine.next_slot t.engine;
             offered_bytes = o.Engine.offered_volume;
             delivered_bytes = o.Engine.delivered_volume;
             rejected_bytes = o.Engine.rejected_volume;
             lost_bytes = o.Engine.lost_volume;
             cost = avg_cost });
      End_session ]

let slot_events t (r : Engine.slot_result) =
  let slot = r.Engine.slot in
  List.iter (fun f -> observe_latency t h_queue_ms f.File.id) r.Engine.accepted;
  List.iter (fun f -> settle t f.File.id) r.Engine.rejected;
  List.iter (fun f -> settle t f.File.id) r.Engine.lost;
  List.iter (fun id -> complete_latency t id) r.Engine.completed;
  let per_file mk files =
    List.map (fun f -> to_owner t f.File.id (mk f.File.id slot)) files
  in
  per_file (fun id slot -> Protocol.Stranded { id; slot }) r.Engine.stranded
  @ per_file (fun id slot -> Protocol.Recovered { id; slot }) r.Engine.recovered
  @ per_file (fun id slot -> Protocol.Lost { id; slot }) r.Engine.lost
  @ per_file (fun id slot -> Protocol.Accepted { id; slot }) r.Engine.accepted
  @ per_file (fun id slot -> Protocol.Rejected { id; slot }) r.Engine.rejected
  @ List.map
      (fun id -> to_owner t id (Protocol.Completed { id; slot }))
      r.Engine.completed
  @ [ Broadcast
        (Protocol.Slot
           { slot;
             arrivals =
               List.length r.Engine.accepted + List.length r.Engine.rejected;
             admitted = List.length r.Engine.accepted;
             rejected = List.length r.Engine.rejected;
             cost = r.Engine.cost }) ]

let tick t =
  if t.ended then []
  else begin
    let slot = Engine.next_slot t.engine in
    let arrivals = Workload.arrivals t.workload ~slot in
    let r = Engine.step t.engine ~arrivals in
    let evs = slot_events t r in
    if Engine.finished t.engine then evs @ finish t else evs
  end

let stop t = if t.ended then [] else finish t

let submit t client (s : Protocol.submit) =
  let err msg = [ Send (client, Protocol.Error msg) ] in
  if t.ended || Engine.finished t.engine then err "session finished"
  else if s.Protocol.src < 0 || s.Protocol.src >= t.nodes then
    err (Printf.sprintf "src %d outside [0, %d)" s.Protocol.src t.nodes)
  else if s.Protocol.dst < 0 || s.Protocol.dst >= t.nodes then
    err (Printf.sprintf "dst %d outside [0, %d)" s.Protocol.dst t.nodes)
  else
    match
      File.make ~id:t.next_id ~src:s.Protocol.src ~dst:s.Protocol.dst
        ~size:s.Protocol.size ~deadline:s.Protocol.deadline
        ~release:(Engine.next_slot t.engine)
    with
    | exception Invalid_argument msg -> err msg
    | file ->
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.owners (File.(file.id)) client;
        Hashtbl.replace t.submitted (File.(file.id)) (Unix.gettimeofday ());
        let queued =
          Send
            (client,
             Protocol.Queued
               { id = File.(file.id); slot = File.(file.release) })
        in
        (* Incremental fast path: a scheduler with the admit capability
           decides right now, giving the client its verdict in the same
           round trip instead of at the next tick. Batch-only schedulers
           fall back to queueing for the slot drain. *)
        match Engine.offer t.engine file with
        | None ->
            Workload.push t.workload file;
            [ queued ]
        | Some verdict ->
            Workload.record t.workload file;
            let slot = File.(file.release) in
            let id = File.(file.id) in
            (match verdict with
             | `Admitted ->
                 observe_latency t h_queue_ms id;
                 [ queued; Send (client, Protocol.Accepted { id; slot }) ]
             | `Rejected ->
                 settle t id;
                 [ queued; Send (client, Protocol.Rejected { id; slot }) ])

let on_request t client = function
  | Protocol.Submit s -> submit t client s
  | Protocol.Tick ->
      if t.clock <> "manual" then
        [ Send
            (client, Protocol.Error "tick is only valid under --clock manual")
        ]
      else if t.ended then [ Send (client, Protocol.Error "session finished") ]
      else tick t
  | Protocol.Status -> [ Send (client, status_report t) ]
  | Protocol.Scrape Protocol.Scrape_json ->
      [ Send (client, Protocol.Scrape_report (Obs.Metrics.dump_json ())) ]
  | Protocol.Scrape Protocol.Scrape_prom ->
      [ Send (client, Protocol.Scrape_text (Obs.Metrics.dump_prometheus ())) ]
  | Protocol.Stop -> stop t
  | Protocol.Quit -> [ Send (client, Protocol.Bye); Disconnect client ]

let on_line t client line =
  match Protocol.request_of_line line with
  | Error msg -> [ Send (client, Protocol.Error msg) ]
  | Ok req -> on_request t client req
