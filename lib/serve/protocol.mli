(** Wire protocol of the serving daemon: line-delimited JSON over a
    loopback TCP socket.

    Each line carries exactly one JSON object. Clients send {!request}s
    (discriminated by the ["op"] field); the daemon streams {!event}s
    (discriminated by ["ev"]). Per-request lifecycle events carry the
    server-assigned file [id] returned in the [queued] acknowledgement,
    so one connection can multiplex any number of transfers.

    Decoding is [Result]-based so malformed input from a client turns
    into an [error] event, never an exception. *)

val version : int
(** Protocol version, announced in the [hello] event. *)

type submit = { src : int; dst : int; size : float; deadline : int }
(** A transfer request: [size] GB from datacenter [src] to [dst], to be
    delivered within [deadline] slots of admission. *)

type scrape_format =
  | Scrape_json  (** The default; also chosen by a missing [format]. *)
  | Scrape_prom  (** Prometheus text exposition, as a {!Scrape_text}. *)

type request =
  | Submit of submit  (** Queue a transfer for the next slot. *)
  | Tick  (** Advance one slot now (manual clock only). *)
  | Status  (** Ask for a {!Status_report}. *)
  | Scrape of scrape_format
      (** Ask for the metrics registry: a {!Scrape_report} (JSON) or a
          {!Scrape_text} (Prometheus), per the ["format"] field. *)
  | Stop  (** Finish the session: drain the engine and shut down. *)
  | Quit  (** Close this connection only; the session continues. *)

type event =
  | Hello of { version : int; nodes : int; slots : int; clock : string }
      (** First line on every new connection. *)
  | Queued of { id : int; slot : int }
      (** Submit acknowledged; the file will be offered at [slot]. *)
  | Accepted of { id : int; slot : int }
  | Rejected of { id : int; slot : int }
  | Completed of { id : int; slot : int }
      (** The file's committed plan carried its last byte during [slot]. *)
  | Stranded of { id : int; slot : int }
      (** A fault reveal withdrew the file's plan; [Recovered] or [Lost]
          follows (possibly in the same slot). *)
  | Recovered of { id : int; slot : int }
  | Lost of { id : int; slot : int }
  | Slot of {
      slot : int;
      arrivals : int;
      admitted : int;
      rejected : int;
      cost : float;
    }  (** Broadcast after every executed slot. *)
  | Status_report of {
      slot : int;
      slots : int;
      pending : int;
      in_flight : int;
      offered_files : int;
      rejected_files : int;
      lost_files : int;
      offered_bytes : float;
      delivered_bytes : float;
      cost : float;
    }
  | Scrape_report of Obs.Json.t
      (** The metrics registry, as {!Obs.Metrics.dump_json}. *)
  | Scrape_text of string
      (** The metrics registry as Prometheus text exposition
          ({!Obs.Metrics.dump_prometheus}); multi-line, carried as one
          JSON string field. *)
  | Session_end of {
      slot : int;
      offered_bytes : float;
      delivered_bytes : float;
      rejected_bytes : float;
      lost_bytes : float;
      cost : float;
    }  (** Broadcast when the engine drains; the byte totals satisfy
          [offered = delivered + rejected + lost]. *)
  | Error of string  (** The offending request was ignored. *)
  | Bye  (** Acknowledges [Quit]; the daemon closes the connection. *)

(** {1 JSON} *)

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result
val event_to_json : event -> Obs.Json.t
val event_of_json : Obs.Json.t -> (event, string) result

(** {1 Lines}

    One JSON object per line; the [to_line] functions do {e not} append
    the newline, the [of_line] functions tolerate trailing whitespace. *)

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val event_to_line : event -> string
val event_of_line : string -> (event, string) result
