module Json = Obs.Json

let version = 1

type submit = { src : int; dst : int; size : float; deadline : int }

type scrape_format = Scrape_json | Scrape_prom

type request =
  | Submit of submit
  | Tick
  | Status
  | Scrape of scrape_format
  | Stop
  | Quit

type event =
  | Hello of { version : int; nodes : int; slots : int; clock : string }
  | Queued of { id : int; slot : int }
  | Accepted of { id : int; slot : int }
  | Rejected of { id : int; slot : int }
  | Completed of { id : int; slot : int }
  | Stranded of { id : int; slot : int }
  | Recovered of { id : int; slot : int }
  | Lost of { id : int; slot : int }
  | Slot of {
      slot : int;
      arrivals : int;
      admitted : int;
      rejected : int;
      cost : float;
    }
  | Status_report of {
      slot : int;
      slots : int;
      pending : int;
      in_flight : int;
      offered_files : int;
      rejected_files : int;
      lost_files : int;
      offered_bytes : float;
      delivered_bytes : float;
      cost : float;
    }
  | Scrape_report of Json.t
  | Scrape_text of string
  | Session_end of {
      slot : int;
      offered_bytes : float;
      delivered_bytes : float;
      rejected_bytes : float;
      lost_bytes : float;
      cost : float;
    }
  | Error of string
  | Bye

(* --- encoding --- *)

let request_to_json = function
  | Submit { src; dst; size; deadline } ->
      Json.Obj
        [ ("op", Json.Str "submit");
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("size", Json.Float size);
          ("deadline", Json.Int deadline) ]
  | Tick -> Json.Obj [ ("op", Json.Str "tick") ]
  | Status -> Json.Obj [ ("op", Json.Str "status") ]
  | Scrape Scrape_json -> Json.Obj [ ("op", Json.Str "scrape") ]
  | Scrape Scrape_prom ->
      Json.Obj [ ("op", Json.Str "scrape"); ("format", Json.Str "prom") ]
  | Stop -> Json.Obj [ ("op", Json.Str "stop") ]
  | Quit -> Json.Obj [ ("op", Json.Str "quit") ]

let id_slot ev id slot =
  Json.Obj [ ("ev", Json.Str ev); ("id", Json.Int id); ("slot", Json.Int slot) ]

let event_to_json = function
  | Hello { version; nodes; slots; clock } ->
      Json.Obj
        [ ("ev", Json.Str "hello");
          ("v", Json.Int version);
          ("nodes", Json.Int nodes);
          ("slots", Json.Int slots);
          ("clock", Json.Str clock) ]
  | Queued { id; slot } -> id_slot "queued" id slot
  | Accepted { id; slot } -> id_slot "accepted" id slot
  | Rejected { id; slot } -> id_slot "rejected" id slot
  | Completed { id; slot } -> id_slot "completed" id slot
  | Stranded { id; slot } -> id_slot "stranded" id slot
  | Recovered { id; slot } -> id_slot "recovered" id slot
  | Lost { id; slot } -> id_slot "lost" id slot
  | Slot { slot; arrivals; admitted; rejected; cost } ->
      Json.Obj
        [ ("ev", Json.Str "slot");
          ("slot", Json.Int slot);
          ("arrivals", Json.Int arrivals);
          ("admitted", Json.Int admitted);
          ("rejected", Json.Int rejected);
          ("cost", Json.Float cost) ]
  | Status_report
      { slot;
        slots;
        pending;
        in_flight;
        offered_files;
        rejected_files;
        lost_files;
        offered_bytes;
        delivered_bytes;
        cost } ->
      Json.Obj
        [ ("ev", Json.Str "status");
          ("slot", Json.Int slot);
          ("slots", Json.Int slots);
          ("pending", Json.Int pending);
          ("in_flight", Json.Int in_flight);
          ("offered_files", Json.Int offered_files);
          ("rejected_files", Json.Int rejected_files);
          ("lost_files", Json.Int lost_files);
          ("offered_bytes", Json.Float offered_bytes);
          ("delivered_bytes", Json.Float delivered_bytes);
          ("cost", Json.Float cost) ]
  | Scrape_report metrics ->
      Json.Obj [ ("ev", Json.Str "scrape"); ("metrics", metrics) ]
  | Scrape_text text ->
      (* Prometheus text is multi-line; it rides the line protocol as one
         JSON string field. *)
      Json.Obj [ ("ev", Json.Str "scrape_text"); ("text", Json.Str text) ]
  | Session_end
      { slot; offered_bytes; delivered_bytes; rejected_bytes; lost_bytes; cost }
    ->
      Json.Obj
        [ ("ev", Json.Str "session_end");
          ("slot", Json.Int slot);
          ("offered_bytes", Json.Float offered_bytes);
          ("delivered_bytes", Json.Float delivered_bytes);
          ("rejected_bytes", Json.Float rejected_bytes);
          ("lost_bytes", Json.Float lost_bytes);
          ("cost", Json.Float cost) ]
  | Error msg -> Json.Obj [ ("ev", Json.Str "error"); ("msg", Json.Str msg) ]
  | Bye -> Json.Obj [ ("ev", Json.Str "bye") ]

(* --- decoding --- *)

let int_field j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer field %S" name)

let float_field j name =
  match Option.bind (Json.member name j) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" name)

let str_field j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let ( let* ) = Result.bind

let request_of_json j =
  let* op = str_field j "op" in
  match op with
  | "submit" ->
      let* src = int_field j "src" in
      let* dst = int_field j "dst" in
      let* size = float_field j "size" in
      let* deadline = int_field j "deadline" in
      Ok (Submit { src; dst; size; deadline })
  | "tick" -> Ok Tick
  | "status" -> Ok Status
  | "scrape" -> (
      (* A missing format field means JSON: pre-field clients keep
         working. *)
      match Option.bind (Json.member "format" j) Json.to_str with
      | None | Some "json" -> Ok (Scrape Scrape_json)
      | Some "prom" -> Ok (Scrape Scrape_prom)
      | Some other -> Error (Printf.sprintf "unknown scrape format %S" other))
  | "stop" -> Ok Stop
  | "quit" -> Ok Quit
  | other -> Error (Printf.sprintf "unknown op %S" other)

let event_of_json j =
  let* ev = str_field j "ev" in
  let with_id_slot mk =
    let* id = int_field j "id" in
    let* slot = int_field j "slot" in
    Ok (mk id slot)
  in
  match ev with
  | "hello" ->
      let* version = int_field j "v" in
      let* nodes = int_field j "nodes" in
      let* slots = int_field j "slots" in
      let* clock = str_field j "clock" in
      Ok (Hello { version; nodes; slots; clock })
  | "queued" -> with_id_slot (fun id slot -> Queued { id; slot })
  | "accepted" -> with_id_slot (fun id slot -> Accepted { id; slot })
  | "rejected" -> with_id_slot (fun id slot -> Rejected { id; slot })
  | "completed" -> with_id_slot (fun id slot -> Completed { id; slot })
  | "stranded" -> with_id_slot (fun id slot -> Stranded { id; slot })
  | "recovered" -> with_id_slot (fun id slot -> Recovered { id; slot })
  | "lost" -> with_id_slot (fun id slot -> Lost { id; slot })
  | "slot" ->
      let* slot = int_field j "slot" in
      let* arrivals = int_field j "arrivals" in
      let* admitted = int_field j "admitted" in
      let* rejected = int_field j "rejected" in
      let* cost = float_field j "cost" in
      Ok (Slot { slot; arrivals; admitted; rejected; cost })
  | "status" ->
      let* slot = int_field j "slot" in
      let* slots = int_field j "slots" in
      let* pending = int_field j "pending" in
      let* in_flight = int_field j "in_flight" in
      let* offered_files = int_field j "offered_files" in
      let* rejected_files = int_field j "rejected_files" in
      let* lost_files = int_field j "lost_files" in
      let* offered_bytes = float_field j "offered_bytes" in
      let* delivered_bytes = float_field j "delivered_bytes" in
      let* cost = float_field j "cost" in
      Ok
        (Status_report
           { slot;
             slots;
             pending;
             in_flight;
             offered_files;
             rejected_files;
             lost_files;
             offered_bytes;
             delivered_bytes;
             cost })
  | "scrape" -> (
      match Json.member "metrics" j with
      | Some m -> Ok (Scrape_report m)
      | None -> Error "missing field \"metrics\"")
  | "scrape_text" ->
      let* text = str_field j "text" in
      Ok (Scrape_text text)
  | "session_end" ->
      let* slot = int_field j "slot" in
      let* offered_bytes = float_field j "offered_bytes" in
      let* delivered_bytes = float_field j "delivered_bytes" in
      let* rejected_bytes = float_field j "rejected_bytes" in
      let* lost_bytes = float_field j "lost_bytes" in
      let* cost = float_field j "cost" in
      Ok
        (Session_end
           { slot;
             offered_bytes;
             delivered_bytes;
             rejected_bytes;
             lost_bytes;
             cost })
  | "error" ->
      let* msg = str_field j "msg" in
      Ok (Error msg)
  | "bye" -> Ok Bye
  | other -> Error (Printf.sprintf "unknown event %S" other)

(* --- lines --- *)

let request_to_line r = Json.to_string (request_to_json r)

let event_to_line e = Json.to_string (event_to_json e)

let parse_line of_json line =
  match Json.parse (String.trim line) with
  | Error msg -> Stdlib.Error (Printf.sprintf "bad JSON: %s" msg)
  | Ok j -> of_json j

let request_of_line line = parse_line request_of_json line

let event_of_line line = parse_line event_of_json line
