(** A serving session: one live {!Sim.Engine.t} behind a {!Protocol}
    surface, with no sockets in sight.

    The daemon owns the event loop — accepting connections, reading
    lines, deciding when the slot clock ticks — and calls into the
    session; every call returns a list of {!effect}s (lines to write,
    connections to close) the daemon performs. Keeping the state machine
    transport-free makes the request lifecycle testable without a single
    [Unix] call.

    Submitted files are stamped with the {e next} slot's release (the
    continuous-batching rule: requests accumulate while a slot is open
    and are offered to the scheduler as the next slot's arrival batch),
    with server-assigned ids in submission order. *)

type client = int
(** An opaque connection token chosen by the daemon (e.g. a file
    descriptor number). *)

type effect =
  | Send of client * Protocol.event
  | Broadcast of Protocol.event  (** Send to every connected client. *)
  | Disconnect of client
      (** Close this client's connection (after any preceding [Send]s
          to it). *)
  | End_session
      (** The engine has drained; the daemon should stop its loop. *)

type t

val create :
  base:Netgraph.Graph.t ->
  scheduler:Postcard.Scheduler.t ->
  slots:int ->
  ?faults:Sim.Faults.scenario ->
  clock:string ->
  unit ->
  t
(** Initialize the engine over a pushable workload. [clock] is only
    announced in [hello] and gates the [tick] request ("manual" allows
    it). Raises like {!Sim.Engine.init}. *)

val connect : t -> client -> effect list
(** Register a connection; effects carry the [hello] line. *)

val disconnect : t -> client -> unit
(** Forget a connection that dropped (its in-flight transfers keep
    running; their events degrade to broadcasts). *)

val on_line : t -> client -> string -> effect list
(** Handle one request line from a client. Malformed lines produce an
    [error] event for that client only. *)

val tick : t -> effect list
(** Advance the slot clock: drain pushed files into the next slot's
    arrival batch and {!Sim.Engine.step}. Produces the per-file
    lifecycle events and the slot broadcast; when the configured horizon
    is reached the session finishes (see {!stop}). No-op after the
    session has ended. *)

val stop : t -> effect list
(** Finish the session early: emit [completed] for everything still in
    flight (guaranteed to finish once stepping stops), drain the engine,
    broadcast [session_end] and signal [End_session]. Idempotent. *)

val ended : t -> bool

val outcome : t -> Sim.Engine.outcome option
(** The drained outcome, once {!ended}. *)

val clients : t -> client list

val capture : t -> Postcard.File.t list
(** Every file ever submitted, in submission order — feed to
    {!Sim.Workload.save_script} to make the session replayable. *)

val latency_quantiles : unit -> (int * float * float * float) option
(** [(count, p50, p95, p99)] of the [serve.request_ms] histogram
    (wall-clock ms from [queued] to [completed]), estimated by
    {!Obs.Metrics.histogram_quantile}. [None] while the histogram is
    empty — e.g. when the daemon ran without [--metrics]. *)
