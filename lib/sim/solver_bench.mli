(** Cold-vs-warm simplex benchmark for the online scheduler.

    Replays a Sec. VII-style online run and solves every epoch's
    time-expanded program twice: from scratch, and crashed from the
    previous epoch's optimal basis translated through
    {!Postcard.Basis_map}. The committed plan is always the cold one, so
    both solvers face identical programs; slot 0 has no previous basis and
    is excluded from the totals. *)

type slot_stat = {
  slot : int;
  files : int;  (** Files released this slot. *)
  cols : int;  (** LP columns. *)
  rows : int;  (** LP rows. *)
  cold_iterations : int;  (** Simplex pivots, phases 1+2, cold start. *)
  warm_iterations : int;  (** Same, warm-started. *)
  cold_ms : float;
  warm_ms : float;
  objective_gap : float;  (** |cold - warm| objective (must be ~0). *)
  hit_rate : float;
      (** Fraction of this epoch's columns/rows found in the carried
          basis (0 on slot 0). *)
  cold_stats : Lp.Status.stats;  (** Full solver telemetry, cold start. *)
  warm_stats : Lp.Status.stats;  (** Same, warm-started. *)
}

type summary = {
  nodes : int;
  slots : int;
  seed : int;
  per_slot : slot_stat list;
  cold_iterations : int;  (** Total over slots >= 1. *)
  warm_iterations : int;  (** Total over slots >= 1. *)
  cold_ms : float;
  warm_ms : float;
  max_objective_gap : float;
  warm_accepted : int;
      (** Slots (>= 1) whose warm basis installed with no repair. *)
  warm_repaired : int;  (** Slots that needed one or more repair rounds. *)
  warm_fell_back : int;  (** Slots whose warm start was discarded. *)
}

val run :
  ?nodes:int -> ?slots:int -> ?seed:int -> ?pool:Exec.Pool.t -> unit -> summary
(** Defaults: 6 datacenters (complete topology, capacity 50), 12 slots,
    seed 1 — a workload whose epochs overlap enough for warm starts to
    matter, matching the scaled Sec. VII settings. With a [pool] of size
    >= 2 each slot's cold and warm trials run on separate domains (each
    trial owns its program); slots stay sequential because the carried
    basis chains them. Results are identical for any pool size. *)

val iteration_ratio : summary -> float
(** [cold_iterations / warm_iterations] over the warm-started slots;
    [infinity] when every warm solve took zero pivots. *)

val pp_summary : Format.formatter -> summary -> unit

val to_json : summary -> string
(** The summary as a self-contained JSON document (the repository carries
    no JSON library, so this is a small hand-rolled emitter). *)
