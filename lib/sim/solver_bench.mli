(** Cold-vs-warm simplex benchmark for the online scheduler.

    Replays a Sec. VII-style online run and solves every epoch's
    time-expanded program twice: from scratch, and crashed from the
    previous epoch's optimal basis translated through
    {!Postcard.Basis_map}. The committed plan is always the cold one, so
    both solvers face identical programs; slot 0 has no previous basis and
    is excluded from the totals. *)

type slot_stat = {
  slot : int;
  files : int;  (** Files released this slot. *)
  cols : int;  (** LP columns. *)
  rows : int;  (** LP rows. *)
  cold_iterations : int;  (** Simplex pivots, phases 1+2, cold start. *)
  warm_iterations : int;  (** Same, warm-started. *)
  cold_ms : float;
  warm_ms : float;
  objective_gap : float;  (** |cold - warm| objective (must be ~0). *)
  hit_rate : float;
      (** Fraction of this epoch's columns/rows found in the carried
          basis (0 on slot 0). *)
  cold_stats : Lp.Status.stats;  (** Full solver telemetry, cold start. *)
  warm_stats : Lp.Status.stats;  (** Same, warm-started. *)
}

type summary = {
  nodes : int;
  slots : int;
  seed : int;
  per_slot : slot_stat list;
  cold_iterations : int;  (** Total over slots >= 1. *)
  warm_iterations : int;  (** Total over slots >= 1. *)
  cold_ms : float;
  warm_ms : float;
  max_objective_gap : float;
  warm_accepted : int;
      (** Slots (>= 1) whose warm basis installed with no repair — via the
          dual simplex ({!Lp.Status.Dual_reopt}) or a clean primal crash. *)
  warm_repaired : int;  (** Slots that needed one or more repair rounds. *)
  warm_fell_back : int;  (** Slots whose warm start was discarded. *)
  dual_reopts : int;
      (** The subset of [warm_accepted] that re-optimized with the dual
          simplex (zero phase-1 pivots, zero repair rounds). *)
  dual_pivots : int;  (** Dual pivots over warm solves of slots >= 1. *)
  warm_phase1_pivots : int;
      (** Primal phase-1 pivots over the same warm solves (zero when
          every re-opt took the dual path). *)
}

val reconcile : summary -> (unit, string) result
(** Recompute every outcome tally from the per-slot records and compare
    with the aggregate fields. [bench] fails loudly on [Error], so the
    aggregate counters can never silently disagree with the per-slot
    [warm_start] fields (the defect this check was born from). *)

val run :
  ?nodes:int -> ?slots:int -> ?seed:int -> ?pool:Exec.Pool.t -> unit -> summary
(** Defaults: 6 datacenters (complete topology, capacity 50), 12 slots,
    seed 1 — a workload whose epochs overlap enough for warm starts to
    matter, matching the scaled Sec. VII settings. With a [pool] of size
    >= 2 each slot's cold and warm trials run on separate domains (each
    trial owns its program); slots stay sequential because the carried
    basis chains them. Results are identical for any pool size. *)

val iteration_ratio : summary -> float
(** [cold_iterations / warm_iterations] over the warm-started slots;
    [infinity] when every warm solve took zero pivots. *)

val pp_summary : Format.formatter -> summary -> unit

val to_json : summary -> string
(** The summary as a self-contained JSON document (the repository carries
    no JSON library, so this is a small hand-rolled emitter). *)

(** {2 Scale sweep}

    Per-size cold / primal-warm / dual-reopt curves ([bench --scale],
    written to [BENCH_scale.json]). Each point replays one online run and
    solves every re-opt slot's program three ways, chained on a single
    carried basis: from scratch, through the primal warm crash
    ([~dual_reopt:false]), and through the dual simplex. The committed
    plan is always the cold one, so the three solvers face identical
    program sequences. *)

type scale_point = {
  sp_nodes : int;
  sp_slots : int;  (** Slots requested; fewer may run under the budget. *)
  sp_cols : int;  (** Largest LP of the run. *)
  sp_rows : int;
  sp_reopt_slots : int;  (** Re-opt slots (>= 1) actually timed. *)
  sp_cold_iterations : int;
  sp_primal_iterations : int;
  sp_dual_iterations : int;
  sp_cold_ms : float;
  sp_primal_ms : float;
  sp_dual_ms : float;
  sp_dual_reopts : int;  (** Dual-warm solves that ran the dual path. *)
  sp_dual_phase1_pivots : int;
      (** Phase-1 pivots on dual-warm solves; zero when the dual path
          held everywhere. *)
  sp_cold_failures : int;
      (** Re-opt slots where the cold solve gave up (pivot budget or
          numerical failure) — at the largest sizes the cold simplex can
          exhaust its 200k-pivot budget where the dual re-opt still
          certifies optimality. Recorded explicitly, never folded into
          the gap. *)
  sp_primal_failures : int;  (** Same, primal-warm solve. *)
  sp_dual_failures : int;
      (** Same, dual-warm solve; [bench --scale] fails loudly when any
          point reports a nonzero count. *)
  sp_max_objective_gap : float;
      (** Worst pairwise objective gap across the three solvers, over
          the solves that produced comparable outcomes (both scheduled,
          or both infeasible). A feasibility disagreement forces it to
          [infinity] so it cannot pass unnoticed; solver failures are
          excluded here and counted in the [*_failures] fields. *)
  sp_truncated : bool;
      (** The wall-clock budget cut the run short (recorded, never
          silent). *)
}

type scale_summary = {
  sc_seed : int;
  sc_budget_ms : float;
  sc_points : scale_point list;
}

val default_scale_sizes : (int * int) list
(** [(nodes, slots)] pairs swept by default:
    6x12, 12x24, 20x48, 32x72, 50x104. *)

val scale_sweep :
  ?sizes:(int * int) list ->
  ?seed:int ->
  ?budget_ms:float ->
  unit ->
  scale_summary
(** Run one {!scale_point} per size. [budget_ms] (default 20000) bounds
    each point's wall clock: once exceeded, the run stops at the end of
    the current slot — but never before at least one re-opt slot has been
    timed, so every point contributes a curve sample. *)

val pp_scale : Format.formatter -> scale_summary -> unit

val scale_to_json : scale_summary -> string
