(** Deterministic fault scenarios: link outages, whole-datacenter outages
    and link-capacity degradations over absolute slots.

    A {!scenario} is a graph-independent description parsed from a compact
    spec (see {!parse}); {!compile} resolves it against a concrete base
    graph into a queryable fault state. Faults are {e revealed} at their
    first slot — before that the engine and the schedulers are oblivious,
    which is what makes mid-transfer stranding and re-planning happen: a
    plan committed at slot 2 onto a link that dies at slot 4 loses its
    bookings from slot 4 on, and the affected files are re-offered to the
    scheduler. Once revealed, an event's whole window is visible, so
    re-planning can route around the remainder of the outage. *)

type event =
  | Link_outage of { src : int; dst : int; first : int; last : int }
      (** The directed link [src -> dst] carries nothing during slots
          [first .. last] (inclusive). *)
  | Dc_outage of { dc : int; first : int; last : int }
      (** Every link into or out of [dc] carries nothing during
          [first .. last]. *)
  | Degrade of { src : int; dst : int; first : int; last : int; factor : float }
      (** The link [src -> dst] retains [factor] (in [0, 1]) of its
          capacity during [first .. last]. *)

type scenario = event list

val empty : scenario

val is_empty : scenario -> bool

val parse : string -> (scenario, string) result
(** Parse the compact CLI spec: comma-separated events, each one of
    - [link:SRC-DST\@SLOTS] — link outage,
    - [dc:N\@SLOTS] — datacenter outage,
    - [degrade:SRC-DST\@SLOTS:FACTOR] — capacity degradation,
    where [SLOTS] is a single absolute slot [4] or an inclusive range
    [2..6]. Example: ["link:0-1\@3..5,dc:2\@4,degrade:1-3\@2..6:0.5"].
    Whitespace around events is ignored; the empty string is the empty
    scenario. Errors name the offending event. *)

val to_string : scenario -> string
(** Render a scenario back into the {!parse} syntax (round-trips). *)

val pp_event : Format.formatter -> event -> unit

(** {1 Compiled scenarios} *)

type t
(** A scenario resolved against a base graph: events carry the arc ids
    they silence. *)

val compile : scenario -> base:Netgraph.Graph.t -> (t, string) result
(** Resolve endpoints against [base]. Fails when an event names a
    datacenter outside the node range or a link the graph does not have. *)

val active : t -> bool
(** [false] iff the compiled scenario has no events (the engine uses this
    to keep the fault-free path untouched). *)

val factor : t -> asof:int -> link:int -> slot:int -> float
(** Effective capacity factor of [link] during [slot], considering only
    events already revealed at epoch [asof] (i.e. with [first <= asof]).
    [1.0] when unaffected; [0.0] when dead; the minimum wins when events
    overlap. *)

val down : t -> asof:int -> link:int -> slot:int -> bool
(** [factor t ~asof ~link ~slot = 0.] — the fault view handed to
    schedulers through {!Postcard.Scheduler.context}. *)

val revealed_at : t -> slot:int -> event list
(** Events whose window starts exactly at [slot] — the moment the engine
    learns about them. *)

val cells_revealed_at : t -> slot:int -> (int * int * float) list
(** The [(link, slot', factor)] cells whose effective capacity drops when
    the events revealed at [slot] become visible: every cell covered by a
    newly revealed event, with the {e overall} visible factor at
    [asof = slot]. Cells are deduplicated and sorted by [(link, slot')];
    [slot' >= slot] always holds. The engine strands committed volume on
    exactly these cells. *)

val event_fields : event -> (string * Obs.Trace.field) list
(** Trace payload for a ["fault.reveal"] point: the event's kind,
    endpoints, window and factor. *)
