module Graph = Netgraph.Graph
module Formulate = Postcard.Formulate
module Basis_map = Postcard.Basis_map

type slot_stat = {
  slot : int;
  files : int;
  cols : int;
  rows : int;
  cold_iterations : int;
  warm_iterations : int;
  cold_ms : float;
  warm_ms : float;
  objective_gap : float;
  hit_rate : float;
  cold_stats : Lp.Status.stats;
  warm_stats : Lp.Status.stats;
}

type summary = {
  nodes : int;
  slots : int;
  seed : int;
  per_slot : slot_stat list;
  cold_iterations : int;  (* totals over slots >= 1, where a basis exists *)
  warm_iterations : int;
  cold_ms : float;
  warm_ms : float;
  max_objective_gap : float;
  warm_accepted : int;  (* warm-start outcome tallies over slots >= 1 *)
  warm_repaired : int;
  warm_fell_back : int;
  dual_reopts : int;  (* subset of warm_accepted that ran the dual simplex *)
  dual_pivots : int;  (* dual pivots over warm solves of slots >= 1 *)
  warm_phase1_pivots : int;  (* primal phase-1 pivots, same population *)
}

(* The aggregate tallies and the per-slot warm_start fields are two
   renderings of the same data; classify a slot exactly once so they
   cannot drift apart. *)
let classify (o : Lp.Status.warm_start_outcome) =
  match o with
  | Lp.Status.No_warm_start -> `Cold
  | Lp.Status.Dual_reopt -> `Dual
  | Lp.Status.Warm_accepted { repair_rounds = 0 } -> `Accepted
  | Lp.Status.Warm_accepted _ -> `Repaired
  | Lp.Status.Warm_fell_back -> `Fell_back

(* Recompute every outcome tally from the per-slot records and compare
   with the aggregate fields; [bench] fails loudly on a mismatch, so the
   two views shown to the user always reconcile. *)
let reconcile s =
  let warmed = List.filter (fun st -> st.slot >= 1) s.per_slot in
  let count f = List.length (List.filter f warmed) in
  let accepted =
    count (fun st ->
        match classify st.warm_stats.Lp.Status.warm_start with
        | `Dual | `Accepted -> true
        | `Cold | `Repaired | `Fell_back -> false)
  and repaired =
    count (fun st -> classify st.warm_stats.Lp.Status.warm_start = `Repaired)
  and fell_back =
    count (fun st -> classify st.warm_stats.Lp.Status.warm_start = `Fell_back)
  and dual =
    count (fun st -> classify st.warm_stats.Lp.Status.warm_start = `Dual)
  in
  let checks =
    [ ("warm_accepted", s.warm_accepted, accepted);
      ("warm_repaired", s.warm_repaired, repaired);
      ("warm_fell_back", s.warm_fell_back, fell_back);
      ("dual_reopts", s.dual_reopts, dual);
      ( "outcome total",
        s.warm_accepted + s.warm_repaired + s.warm_fell_back,
        List.length warmed ) ]
  in
  let bad =
    List.filter_map
      (fun (name, agg, per_slot) ->
        if agg = per_slot then None
        else
          Some
            (Printf.sprintf "%s: aggregate %d vs per-slot %d" name agg
               per_slot))
      checks
  in
  match bad with
  | [] -> Ok ()
  | msgs -> Error (String.concat "; " msgs)

let iteration_ratio s =
  if s.warm_iterations = 0 then infinity
  else float_of_int s.cold_iterations /. float_of_int s.warm_iterations

(* One Sec. VII-style online run. Each slot's program is solved twice from
   scratch — once cold, once crashed from the previous slot's basis — and
   the cold plan is the one committed, so both solvers always face the
   identical sequence of programs. With a pool of size >= 2 the two
   trials of a slot run on separate domains (each on its own program
   built from identical inputs, so nothing is shared but the read-only
   ledger); slots stay sequential because the carried basis and the
   committed plan chain them. *)
let run ?(nodes = 6) ?(slots = 12) ?(seed = 1) ?pool () =
  let rng = Prelude.Rng.of_int (seed * 7919) in
  let base =
    Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
      ~capacity:50.
  in
  let spec =
    { (Workload.paper_spec ~nodes ~files_max:4 ~max_deadline:4) with
      Workload.size_min = 5.;
      size_max = 25.;
      deadlines = Workload.Uniform_deadline (2, 4) }
  in
  let workload = Workload.create spec (Prelude.Rng.of_int seed) in
  let ledger = Ledger.create ~base in
  let carried : Basis_map.t option ref = ref None in
  let stats = ref [] in
  for slot = 0 to slots - 1 do
    let files = Workload.arrivals workload ~slot in
    if files <> [] then begin
      let capacity ~link ~layer =
        Ledger.residual ledger ~link ~slot:(slot + layer)
      in
      let make_program () =
        Formulate.create ~base ~charged:(Ledger.charged_all ledger) ~capacity
          ~files ~epoch:slot ()
      in
      let cold_program = make_program () in
      let warm_program = make_program () in
      let model = Formulate.model cold_program in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, 1000. *. (Unix.gettimeofday () -. t0))
      in
      let solve_cold () = timed (fun () -> Formulate.solve_with_info cold_program) in
      let solve_warm () =
        timed (fun () -> Formulate.solve_with_info ?warm_start:!carried warm_program)
      in
      let ((cold, cold_info), cold_ms), ((warm, warm_info), warm_ms) =
        match pool with
        | Some pool when Exec.Pool.size pool > 1 -> (
            match
              Exec.Pool.map pool ~f:(fun _ trial -> trial ())
                [| solve_cold; solve_warm |]
            with
            | [| c; w |] -> (c, w)
            | _ -> assert false)
        | _ ->
            let c = solve_cold () in
            let w = solve_warm () in
            (c, w)
      in
      let objective = function
        | Formulate.Scheduled { objective; _ } -> objective
        | Formulate.Infeasible | Formulate.Solver_failure _ -> nan
      in
      let gap =
        match (cold, warm) with
        | Formulate.Scheduled _, Formulate.Scheduled _ ->
            abs_float (objective cold -. objective warm)
        | Formulate.Infeasible, Formulate.Infeasible -> 0.
        | _ -> nan
      in
      let hit_rate =
        match !carried with
        | None -> 0.
        | Some b -> Basis_map.hit_rate b (Formulate.keymap warm_program)
      in
      stats :=
        { slot;
          files = List.length files;
          cols = Lp.Model.num_vars model;
          rows = Lp.Model.num_rows model;
          cold_iterations = cold_info.Formulate.iterations;
          warm_iterations = warm_info.Formulate.iterations;
          cold_ms;
          warm_ms;
          objective_gap = gap;
          hit_rate;
          cold_stats = cold_info.Formulate.stats;
          warm_stats = warm_info.Formulate.stats }
        :: !stats;
      carried := warm_info.Formulate.basis;
      match cold with
      | Formulate.Scheduled { plan; _ } -> Ledger.commit_plan ledger plan
      | Formulate.Infeasible | Formulate.Solver_failure _ ->
          (* Sized so this cannot happen; skip the slot if it does. *)
          ()
    end
  done;
  let per_slot = List.rev !stats in
  let warmed = List.filter (fun s -> s.slot >= 1) per_slot in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0. warmed in
  { nodes;
    slots;
    seed;
    per_slot;
    cold_iterations =
      List.fold_left (fun acc (s : slot_stat) -> acc + s.cold_iterations) 0
        warmed;
    warm_iterations =
      List.fold_left (fun acc (s : slot_stat) -> acc + s.warm_iterations) 0
        warmed;
    cold_ms = sum (fun s -> s.cold_ms);
    warm_ms = sum (fun s -> s.warm_ms);
    max_objective_gap =
      List.fold_left (fun acc s -> max acc s.objective_gap) 0. per_slot;
    warm_accepted =
      List.length
        (List.filter
           (fun s ->
             match classify s.warm_stats.Lp.Status.warm_start with
             | `Dual | `Accepted -> true
             | `Cold | `Repaired | `Fell_back -> false)
           warmed);
    warm_repaired =
      List.length
        (List.filter
           (fun s -> classify s.warm_stats.Lp.Status.warm_start = `Repaired)
           warmed);
    warm_fell_back =
      List.length
        (List.filter
           (fun s -> classify s.warm_stats.Lp.Status.warm_start = `Fell_back)
           warmed);
    dual_reopts =
      List.length
        (List.filter
           (fun s -> classify s.warm_stats.Lp.Status.warm_start = `Dual)
           warmed);
    dual_pivots =
      List.fold_left
        (fun acc (s : slot_stat) -> acc + s.warm_stats.Lp.Status.dual_pivots)
        0 warmed;
    warm_phase1_pivots =
      List.fold_left
        (fun acc (s : slot_stat) -> acc + s.warm_stats.Lp.Status.phase1_pivots)
        0 warmed }

let pp_summary ppf s =
  Format.fprintf ppf
    "  cold vs warm simplex on a %d-DC, %d-slot online run (seed %d)@."
    s.nodes s.slots s.seed;
  Format.fprintf ppf "  %-5s %6s %6s %6s %11s %11s %9s %9s %8s %6s %10s@."
    "slot" "files" "cols" "rows" "cold iters" "warm iters" "cold ms"
    "warm ms" "hit" "refac" "warm start";
  List.iter
    (fun st ->
      let warm_label =
        match st.warm_stats.Lp.Status.warm_start with
        | Lp.Status.No_warm_start -> "-"
        | Lp.Status.Dual_reopt -> "dual"
        | Lp.Status.Warm_accepted { repair_rounds = 0 } -> "accepted"
        | Lp.Status.Warm_accepted { repair_rounds } ->
            Printf.sprintf "repair:%d" repair_rounds
        | Lp.Status.Warm_fell_back -> "fell back"
      in
      Format.fprintf ppf
        "  %-5d %6d %6d %6d %11d %11d %9.2f %9.2f %7.0f%% %6d %10s@."
        st.slot st.files st.cols st.rows st.cold_iterations
        st.warm_iterations st.cold_ms st.warm_ms (100. *. st.hit_rate)
        st.warm_stats.Lp.Status.refactorizations warm_label)
    s.per_slot;
  Format.fprintf ppf
    "  totals over warm-started slots (>= 1): %d cold vs %d warm pivots \
     (%.2fx), %.1f vs %.1f ms@."
    s.cold_iterations s.warm_iterations (iteration_ratio s) s.cold_ms
    s.warm_ms;
  Format.fprintf ppf
    "  warm-start outcomes: %d accepted clean (%d via dual re-opt), \
     %d repaired, %d fell back@."
    s.warm_accepted s.dual_reopts s.warm_repaired s.warm_fell_back;
  Format.fprintf ppf
    "  re-opt effort: %d dual pivots, %d phase-1 pivots on warm solves@."
    s.dual_pivots s.warm_phase1_pivots;
  Format.fprintf ppf "  largest cold/warm objective gap: %.2e@."
    s.max_objective_gap

(* Hand-rolled JSON (no JSON library in the tree); numbers are printed
   with enough digits to round-trip. *)
let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && abs_float f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_json s =
  let b = Buffer.create 4096 in
  let field ?(last = false) name v =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name v
                           (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "bench" "\"solver_warm_start\"";
  field "nodes" (string_of_int s.nodes);
  field "slots" (string_of_int s.slots);
  field "seed" (string_of_int s.seed);
  Buffer.add_string b "  \"per_slot\": [\n";
  let json_stats (st : Lp.Status.stats) =
    let repair_rounds =
      match st.Lp.Status.warm_start with
      | Lp.Status.Warm_accepted { repair_rounds } -> repair_rounds
      | Lp.Status.No_warm_start | Lp.Status.Dual_reopt
      | Lp.Status.Warm_fell_back -> 0
    in
    Printf.sprintf
      "{\"phase1_pivots\": %d, \"phase2_pivots\": %d, \"dual_pivots\": %d, \
       \"refactorizations\": %d, \"eta_peak\": %d, \"bound_flips\": %d, \
       \"warm_start\": %S, \"repair_rounds\": %d}"
      st.Lp.Status.phase1_pivots st.Lp.Status.phase2_pivots
      st.Lp.Status.dual_pivots st.Lp.Status.refactorizations
      st.Lp.Status.eta_peak st.Lp.Status.bound_flips
      (Lp.Status.warm_start_outcome_name st.Lp.Status.warm_start)
      repair_rounds
  in
  let n = List.length s.per_slot in
  List.iteri
    (fun i st ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"slot\": %d, \"files\": %d, \"cols\": %d, \"rows\": %d, \
            \"cold_iterations\": %d, \"warm_iterations\": %d, \"cold_ms\": \
            %s, \"warm_ms\": %s, \"objective_gap\": %s, \"hit_rate\": %s, \
            \"cold\": %s, \"warm\": %s}%s\n"
           st.slot st.files st.cols st.rows st.cold_iterations
           st.warm_iterations (json_float st.cold_ms) (json_float st.warm_ms)
           (json_float st.objective_gap) (json_float st.hit_rate)
           (json_stats st.cold_stats) (json_stats st.warm_stats)
           (if i = n - 1 then "" else ",")))
    s.per_slot;
  Buffer.add_string b "  ],\n";
  field "cold_iterations" (string_of_int s.cold_iterations);
  field "warm_iterations" (string_of_int s.warm_iterations);
  field "iteration_ratio" (json_float (iteration_ratio s));
  field "cold_ms" (json_float s.cold_ms);
  field "warm_ms" (json_float s.warm_ms);
  field "warm_accepted" (string_of_int s.warm_accepted);
  field "warm_repaired" (string_of_int s.warm_repaired);
  field "warm_fell_back" (string_of_int s.warm_fell_back);
  field "dual_reopts" (string_of_int s.dual_reopts);
  field "dual_pivots" (string_of_int s.dual_pivots);
  field "warm_phase1_pivots" (string_of_int s.warm_phase1_pivots);
  field ~last:true "max_objective_gap" (json_float s.max_objective_gap);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scale sweep: per-size cold / primal-warm / dual-reopt curves, so every
   later perf PR has a curve to move. Each point replays one online run
   and solves every re-opt slot's program three ways — from scratch, warm
   through the primal crash (dual re-opt disabled), and warm through the
   dual simplex — chained on a single carried basis. A wall-clock budget
   per point truncates the biggest instances rather than stalling the
   sweep; truncation is recorded, never silent. *)

type scale_point = {
  sp_nodes : int;
  sp_slots : int;  (* slots requested; fewer may run under the budget *)
  sp_cols : int;  (* largest LP of the run *)
  sp_rows : int;
  sp_reopt_slots : int;  (* slots (>= 1) actually timed three ways *)
  sp_cold_iterations : int;
  sp_primal_iterations : int;
  sp_dual_iterations : int;
  sp_cold_ms : float;
  sp_primal_ms : float;
  sp_dual_ms : float;
  sp_dual_reopts : int;  (* dual-warm solves that ran the dual path *)
  sp_dual_phase1_pivots : int;  (* phase-1 pivots on dual-warm solves *)
  sp_cold_failures : int;  (* re-opt slots where the cold solve failed *)
  sp_primal_failures : int;  (* same, primal-warm solve *)
  sp_dual_failures : int;  (* same, dual-warm solve *)
  sp_max_objective_gap : float;  (* worst pairwise gap, all three solvers *)
  sp_truncated : bool;
}

type scale_summary = {
  sc_seed : int;
  sc_budget_ms : float;
  sc_points : scale_point list;
}

let default_scale_sizes = [ (6, 12); (12, 24); (20, 48); (32, 72); (50, 104) ]

let run_scale_point ~nodes ~slots ~seed ~budget_ms =
  let rng = Prelude.Rng.of_int (seed * 7919) in
  let base =
    Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
      ~capacity:50.
  in
  let spec =
    { (Workload.paper_spec ~nodes ~files_max:4 ~max_deadline:4) with
      Workload.size_min = 5.;
      size_max = 25.;
      deadlines = Workload.Uniform_deadline (2, 4) }
  in
  let workload = Workload.create spec (Prelude.Rng.of_int seed) in
  let ledger = Ledger.create ~base in
  let carried : Basis_map.t option ref = ref None in
  let t_start = Unix.gettimeofday () in
  let cols = ref 0 and rows = ref 0 and reopt_slots = ref 0 in
  let cold_iters = ref 0 and primal_iters = ref 0 and dual_iters = ref 0 in
  let cold_ms = ref 0. and primal_ms = ref 0. and dual_ms = ref 0. in
  let dual_reopts = ref 0 and dual_phase1 = ref 0 in
  let cold_fail = ref 0 and primal_fail = ref 0 and dual_fail = ref 0 in
  let max_gap = ref 0. in
  let truncated = ref false in
  let slot = ref 0 in
  while !slot < slots && not !truncated do
    let elapsed = 1000. *. (Unix.gettimeofday () -. t_start) in
    (* Keep going until at least one re-opt slot has been timed, so every
       point contributes a curve sample even under a tight budget. *)
    if elapsed > budget_ms && !reopt_slots >= 1 then truncated := true
    else begin
      let files = Workload.arrivals workload ~slot:!slot in
      if files <> [] then begin
        let capacity ~link ~layer =
          Ledger.residual ledger ~link ~slot:(!slot + layer)
        in
        let make () =
          Formulate.create ~base ~charged:(Ledger.charged_all ledger)
            ~capacity ~files ~epoch:!slot ()
        in
        let timed f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, 1000. *. (Unix.gettimeofday () -. t0))
        in
        let p_cold = make () in
        let model = Formulate.model p_cold in
        cols := max !cols (Lp.Model.num_vars model);
        rows := max !rows (Lp.Model.num_rows model);
        let (cold, cold_info), c_ms =
          timed (fun () -> Formulate.solve_with_info p_cold)
        in
        let objective = function
          | Formulate.Scheduled { objective; _ } -> objective
          | Formulate.Infeasible | Formulate.Solver_failure _ -> nan
        in
        (match !carried with
         | None ->
             (* No basis yet: nothing to re-optimize; the cold solve
                seeds the chain. *)
             carried := cold_info.Formulate.basis
         | Some _ ->
             let (primal, primal_info), p_ms =
               timed (fun () ->
                   Formulate.solve_with_info ?warm_start:!carried
                     ~dual_reopt:false (make ()))
             in
             let (dual, dual_info), d_ms =
               timed (fun () ->
                   Formulate.solve_with_info ?warm_start:!carried (make ()))
             in
             incr reopt_slots;
             cold_iters := !cold_iters + cold_info.Formulate.iterations;
             primal_iters := !primal_iters + primal_info.Formulate.iterations;
             dual_iters := !dual_iters + dual_info.Formulate.iterations;
             cold_ms := !cold_ms +. c_ms;
             primal_ms := !primal_ms +. p_ms;
             dual_ms := !dual_ms +. d_ms;
             let dstats = dual_info.Formulate.stats in
             (match classify dstats.Lp.Status.warm_start with
              | `Dual -> incr dual_reopts
              | `Cold | `Accepted | `Repaired | `Fell_back -> ());
             dual_phase1 := !dual_phase1 + dstats.Lp.Status.phase1_pivots;
             let failed = function
               | Formulate.Solver_failure _ -> 1
               | Formulate.Scheduled _ | Formulate.Infeasible -> 0
             in
             cold_fail := !cold_fail + failed cold;
             primal_fail := !primal_fail + failed primal;
             dual_fail := !dual_fail + failed dual;
             let oc = objective cold in
             let gap o =
               match (cold, o) with
               | Formulate.Scheduled _, Formulate.Scheduled _ ->
                   abs_float (oc -. objective o)
               | Formulate.Infeasible, Formulate.Infeasible -> 0.
               | Formulate.Solver_failure _, _ | _, Formulate.Solver_failure _
                 ->
                   (* No objective to compare — the failure counters carry
                      the record; don't poison the gap with nan. *)
                   0.
               | Formulate.Scheduled _, Formulate.Infeasible
               | Formulate.Infeasible, Formulate.Scheduled _ ->
                   (* Two solvers disagreeing on feasibility is a
                      correctness bug; make the gap impossible to miss. *)
                   infinity
             in
             max_gap := max !max_gap (max (gap primal) (gap dual));
             (* The dual solve's basis carries the chain; the cold plan
                is the one committed, so all three solvers face the same
                program sequence. *)
             carried := dual_info.Formulate.basis);
        match cold with
        | Formulate.Scheduled { plan; _ } -> Ledger.commit_plan ledger plan
        | Formulate.Infeasible | Formulate.Solver_failure _ -> ()
      end;
      incr slot
    end
  done;
  { sp_nodes = nodes;
    sp_slots = slots;
    sp_cols = !cols;
    sp_rows = !rows;
    sp_reopt_slots = !reopt_slots;
    sp_cold_iterations = !cold_iters;
    sp_primal_iterations = !primal_iters;
    sp_dual_iterations = !dual_iters;
    sp_cold_ms = !cold_ms;
    sp_primal_ms = !primal_ms;
    sp_dual_ms = !dual_ms;
    sp_dual_reopts = !dual_reopts;
    sp_dual_phase1_pivots = !dual_phase1;
    sp_cold_failures = !cold_fail;
    sp_primal_failures = !primal_fail;
    sp_dual_failures = !dual_fail;
    sp_max_objective_gap = !max_gap;
    sp_truncated = !truncated }

let scale_sweep ?(sizes = default_scale_sizes) ?(seed = 1)
    ?(budget_ms = 20_000.) () =
  let points =
    List.map
      (fun (nodes, slots) -> run_scale_point ~nodes ~slots ~seed ~budget_ms)
      sizes
  in
  { sc_seed = seed; sc_budget_ms = budget_ms; sc_points = points }

let pp_scale ppf s =
  Format.fprintf ppf
    "  scale sweep: cold vs primal-warm vs dual-reopt (seed %d, budget %.0f \
     ms/point)@."
    s.sc_seed s.sc_budget_ms;
  Format.fprintf ppf "  %5s %5s %7s %6s %6s %9s %9s %9s %6s %6s %6s %5s@."
    "DCs" "slots" "cols" "rows" "reopts" "cold ms" "prim ms" "dual ms"
    "dualok" "ph1" "fails" "trunc";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "  %5d %5d %7d %6d %6d %9.1f %9.1f %9.1f %6d %6d %6s %5s@." p.sp_nodes
        p.sp_slots p.sp_cols p.sp_rows p.sp_reopt_slots p.sp_cold_ms
        p.sp_primal_ms p.sp_dual_ms p.sp_dual_reopts p.sp_dual_phase1_pivots
        (Printf.sprintf "%d/%d/%d" p.sp_cold_failures p.sp_primal_failures
           p.sp_dual_failures)
        (if p.sp_truncated then "yes" else "no"))
    s.sc_points;
  let worst =
    List.fold_left (fun acc p -> max acc p.sp_max_objective_gap) 0. s.sc_points
  in
  Format.fprintf ppf "  largest objective gap across solvers: %.2e@." worst

let scale_to_json s =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"solver_scale\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" s.sc_seed);
  Buffer.add_string b
    (Printf.sprintf "  \"budget_ms\": %s,\n" (json_float s.sc_budget_ms));
  Buffer.add_string b "  \"points\": [\n";
  let n = List.length s.sc_points in
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"nodes\": %d, \"slots\": %d, \"cols\": %d, \"rows\": %d, \
            \"reopt_slots\": %d, \"cold_iterations\": %d, \
            \"primal_warm_iterations\": %d, \"dual_reopt_iterations\": %d, \
            \"cold_ms\": %s, \"primal_warm_ms\": %s, \"dual_reopt_ms\": %s, \
            \"dual_reopts\": %d, \"dual_phase1_pivots\": %d, \
            \"cold_failures\": %d, \"primal_warm_failures\": %d, \
            \"dual_failures\": %d, \"max_objective_gap\": %s, \
            \"truncated\": %b}%s\n"
           p.sp_nodes p.sp_slots p.sp_cols p.sp_rows p.sp_reopt_slots
           p.sp_cold_iterations p.sp_primal_iterations p.sp_dual_iterations
           (json_float p.sp_cold_ms) (json_float p.sp_primal_ms)
           (json_float p.sp_dual_ms) p.sp_dual_reopts p.sp_dual_phase1_pivots
           p.sp_cold_failures p.sp_primal_failures p.sp_dual_failures
           (json_float p.sp_max_objective_gap) p.sp_truncated
           (if i = n - 1 then "" else ",")))
    s.sc_points;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
