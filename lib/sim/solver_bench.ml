module Graph = Netgraph.Graph
module Formulate = Postcard.Formulate
module Basis_map = Postcard.Basis_map

type slot_stat = {
  slot : int;
  files : int;
  cols : int;
  rows : int;
  cold_iterations : int;
  warm_iterations : int;
  cold_ms : float;
  warm_ms : float;
  objective_gap : float;
  hit_rate : float;
  cold_stats : Lp.Status.stats;
  warm_stats : Lp.Status.stats;
}

type summary = {
  nodes : int;
  slots : int;
  seed : int;
  per_slot : slot_stat list;
  cold_iterations : int;  (* totals over slots >= 1, where a basis exists *)
  warm_iterations : int;
  cold_ms : float;
  warm_ms : float;
  max_objective_gap : float;
  warm_accepted : int;  (* warm-start outcome tallies over slots >= 1 *)
  warm_repaired : int;
  warm_fell_back : int;
}

let iteration_ratio s =
  if s.warm_iterations = 0 then infinity
  else float_of_int s.cold_iterations /. float_of_int s.warm_iterations

(* One Sec. VII-style online run. Each slot's program is solved twice from
   scratch — once cold, once crashed from the previous slot's basis — and
   the cold plan is the one committed, so both solvers always face the
   identical sequence of programs. With a pool of size >= 2 the two
   trials of a slot run on separate domains (each on its own program
   built from identical inputs, so nothing is shared but the read-only
   ledger); slots stay sequential because the carried basis and the
   committed plan chain them. *)
let run ?(nodes = 6) ?(slots = 12) ?(seed = 1) ?pool () =
  let rng = Prelude.Rng.of_int (seed * 7919) in
  let base =
    Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
      ~capacity:50.
  in
  let spec =
    { (Workload.paper_spec ~nodes ~files_max:4 ~max_deadline:4) with
      Workload.size_min = 5.;
      size_max = 25.;
      deadlines = Workload.Uniform_deadline (2, 4) }
  in
  let workload = Workload.create spec (Prelude.Rng.of_int seed) in
  let ledger = Ledger.create ~base in
  let carried : Basis_map.t option ref = ref None in
  let stats = ref [] in
  for slot = 0 to slots - 1 do
    let files = Workload.arrivals workload ~slot in
    if files <> [] then begin
      let capacity ~link ~layer =
        Ledger.residual ledger ~link ~slot:(slot + layer)
      in
      let make_program () =
        Formulate.create ~base ~charged:(Ledger.charged_all ledger) ~capacity
          ~files ~epoch:slot ()
      in
      let cold_program = make_program () in
      let warm_program = make_program () in
      let model = Formulate.model cold_program in
      let timed f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, 1000. *. (Unix.gettimeofday () -. t0))
      in
      let solve_cold () = timed (fun () -> Formulate.solve_with_info cold_program) in
      let solve_warm () =
        timed (fun () -> Formulate.solve_with_info ?warm_start:!carried warm_program)
      in
      let ((cold, cold_info), cold_ms), ((warm, warm_info), warm_ms) =
        match pool with
        | Some pool when Exec.Pool.size pool > 1 -> (
            match
              Exec.Pool.map pool ~f:(fun _ trial -> trial ())
                [| solve_cold; solve_warm |]
            with
            | [| c; w |] -> (c, w)
            | _ -> assert false)
        | _ ->
            let c = solve_cold () in
            let w = solve_warm () in
            (c, w)
      in
      let objective = function
        | Formulate.Scheduled { objective; _ } -> objective
        | Formulate.Infeasible | Formulate.Solver_failure _ -> nan
      in
      let gap =
        match (cold, warm) with
        | Formulate.Scheduled _, Formulate.Scheduled _ ->
            abs_float (objective cold -. objective warm)
        | Formulate.Infeasible, Formulate.Infeasible -> 0.
        | _ -> nan
      in
      let hit_rate =
        match !carried with
        | None -> 0.
        | Some b -> Basis_map.hit_rate b (Formulate.keymap warm_program)
      in
      stats :=
        { slot;
          files = List.length files;
          cols = Lp.Model.num_vars model;
          rows = Lp.Model.num_rows model;
          cold_iterations = cold_info.Formulate.iterations;
          warm_iterations = warm_info.Formulate.iterations;
          cold_ms;
          warm_ms;
          objective_gap = gap;
          hit_rate;
          cold_stats = cold_info.Formulate.stats;
          warm_stats = warm_info.Formulate.stats }
        :: !stats;
      carried := warm_info.Formulate.basis;
      match cold with
      | Formulate.Scheduled { plan; _ } -> Ledger.commit_plan ledger plan
      | Formulate.Infeasible | Formulate.Solver_failure _ ->
          (* Sized so this cannot happen; skip the slot if it does. *)
          ()
    end
  done;
  let per_slot = List.rev !stats in
  let warmed = List.filter (fun s -> s.slot >= 1) per_slot in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0. warmed in
  { nodes;
    slots;
    seed;
    per_slot;
    cold_iterations =
      List.fold_left (fun acc (s : slot_stat) -> acc + s.cold_iterations) 0
        warmed;
    warm_iterations =
      List.fold_left (fun acc (s : slot_stat) -> acc + s.warm_iterations) 0
        warmed;
    cold_ms = sum (fun s -> s.cold_ms);
    warm_ms = sum (fun s -> s.warm_ms);
    max_objective_gap =
      List.fold_left (fun acc s -> max acc s.objective_gap) 0. per_slot;
    warm_accepted =
      List.length
        (List.filter
           (fun s ->
             match s.warm_stats.Lp.Status.warm_start with
             | Lp.Status.Warm_accepted { repair_rounds = 0 } -> true
             | _ -> false)
           warmed);
    warm_repaired =
      List.length
        (List.filter
           (fun s ->
             match s.warm_stats.Lp.Status.warm_start with
             | Lp.Status.Warm_accepted { repair_rounds } -> repair_rounds > 0
             | _ -> false)
           warmed);
    warm_fell_back =
      List.length
        (List.filter
           (fun s -> s.warm_stats.Lp.Status.warm_start = Lp.Status.Warm_fell_back)
           warmed) }

let pp_summary ppf s =
  Format.fprintf ppf
    "  cold vs warm simplex on a %d-DC, %d-slot online run (seed %d)@."
    s.nodes s.slots s.seed;
  Format.fprintf ppf "  %-5s %6s %6s %6s %11s %11s %9s %9s %8s %6s %10s@."
    "slot" "files" "cols" "rows" "cold iters" "warm iters" "cold ms"
    "warm ms" "hit" "refac" "warm start";
  List.iter
    (fun st ->
      let warm_label =
        match st.warm_stats.Lp.Status.warm_start with
        | Lp.Status.No_warm_start -> "-"
        | Lp.Status.Warm_accepted { repair_rounds = 0 } -> "accepted"
        | Lp.Status.Warm_accepted { repair_rounds } ->
            Printf.sprintf "repair:%d" repair_rounds
        | Lp.Status.Warm_fell_back -> "fell back"
      in
      Format.fprintf ppf
        "  %-5d %6d %6d %6d %11d %11d %9.2f %9.2f %7.0f%% %6d %10s@."
        st.slot st.files st.cols st.rows st.cold_iterations
        st.warm_iterations st.cold_ms st.warm_ms (100. *. st.hit_rate)
        st.warm_stats.Lp.Status.refactorizations warm_label)
    s.per_slot;
  Format.fprintf ppf
    "  totals over warm-started slots (>= 1): %d cold vs %d warm pivots \
     (%.2fx), %.1f vs %.1f ms@."
    s.cold_iterations s.warm_iterations (iteration_ratio s) s.cold_ms
    s.warm_ms;
  Format.fprintf ppf
    "  warm-start outcomes: %d accepted clean, %d repaired, %d fell back@."
    s.warm_accepted s.warm_repaired s.warm_fell_back;
  Format.fprintf ppf "  largest cold/warm objective gap: %.2e@."
    s.max_objective_gap

(* Hand-rolled JSON (no JSON library in the tree); numbers are printed
   with enough digits to round-trip. *)
let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && abs_float f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_json s =
  let b = Buffer.create 4096 in
  let field ?(last = false) name v =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name v
                           (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "bench" "\"solver_warm_start\"";
  field "nodes" (string_of_int s.nodes);
  field "slots" (string_of_int s.slots);
  field "seed" (string_of_int s.seed);
  Buffer.add_string b "  \"per_slot\": [\n";
  let json_stats (st : Lp.Status.stats) =
    let repair_rounds =
      match st.Lp.Status.warm_start with
      | Lp.Status.Warm_accepted { repair_rounds } -> repair_rounds
      | Lp.Status.No_warm_start | Lp.Status.Warm_fell_back -> 0
    in
    Printf.sprintf
      "{\"phase1_pivots\": %d, \"phase2_pivots\": %d, \"refactorizations\": \
       %d, \"eta_peak\": %d, \"bound_flips\": %d, \"warm_start\": %S, \
       \"repair_rounds\": %d}"
      st.Lp.Status.phase1_pivots st.Lp.Status.phase2_pivots
      st.Lp.Status.refactorizations st.Lp.Status.eta_peak
      st.Lp.Status.bound_flips
      (Lp.Status.warm_start_outcome_name st.Lp.Status.warm_start)
      repair_rounds
  in
  let n = List.length s.per_slot in
  List.iteri
    (fun i st ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"slot\": %d, \"files\": %d, \"cols\": %d, \"rows\": %d, \
            \"cold_iterations\": %d, \"warm_iterations\": %d, \"cold_ms\": \
            %s, \"warm_ms\": %s, \"objective_gap\": %s, \"hit_rate\": %s, \
            \"cold\": %s, \"warm\": %s}%s\n"
           st.slot st.files st.cols st.rows st.cold_iterations
           st.warm_iterations (json_float st.cold_ms) (json_float st.warm_ms)
           (json_float st.objective_gap) (json_float st.hit_rate)
           (json_stats st.cold_stats) (json_stats st.warm_stats)
           (if i = n - 1 then "" else ",")))
    s.per_slot;
  Buffer.add_string b "  ],\n";
  field "cold_iterations" (string_of_int s.cold_iterations);
  field "warm_iterations" (string_of_int s.warm_iterations);
  field "iteration_ratio" (json_float (iteration_ratio s));
  field "cold_ms" (json_float s.cold_ms);
  field "warm_ms" (json_float s.warm_ms);
  field "warm_accepted" (string_of_int s.warm_accepted);
  field "warm_repaired" (string_of_int s.warm_repaired);
  field "warm_fell_back" (string_of_int s.warm_fell_back);
  field ~last:true "max_objective_gap" (json_float s.max_objective_gap);
  Buffer.add_string b "}\n";
  Buffer.contents b
