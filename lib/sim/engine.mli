(** The time-slotted simulation engine.

    Per slot: reveal any fault events starting now (stranding the
    committed volume they kill, see below), draw the workload's arrivals,
    hand re-offers and arrivals to the scheduler with the current network
    state (charged volumes, fault-capped residual capacities), check the
    returned plan (slot-accurate validation for store-and-forward
    schedulers, capacity-only for fluid ones), book it in the {!Ledger}
    and record the cost point [sum a_ij X_ij(t)].

    {b Fault semantics.} A {!Faults.scenario} event is unknown to the
    engine and the schedulers until its first slot. At that point its
    whole window becomes visible: residual capacities are capped for the
    remainder of the run, and bookings already committed on now-dead (or
    over-cap degraded) cells are withdrawn youngest-admission-first until
    each cell fits its new cap. A file whose plan is withdrawn is
    {e stranded}: bytes that already reached its destination stay
    delivered, the rest is re-offered to the scheduler in the same slot
    (same id, remaining size, original completion deadline). An accepted
    re-offer counts as {e recovered}; a rejected one — or a strand with no
    slots left — counts as {e lost}. Per-file byte accounting therefore
    decomposes exactly: [delivered + lost + rejected = offered]. *)

type config = {
  base : Netgraph.Graph.t;
  scheduler : Postcard.Scheduler.t;
  workload : Workload.t;
  slots : int;
  faults : Faults.scenario;
}

val make :
  base:Netgraph.Graph.t ->
  scheduler:Postcard.Scheduler.t ->
  workload:Workload.t ->
  slots:int ->
  ?faults:Faults.scenario ->
  unit ->
  config
(** Build a run configuration; [faults] defaults to {!Faults.empty}. An
    empty scenario takes the exact fault-free code path, so results are
    bit-identical to a run that never mentions faults. *)

type outcome = {
  cost_series : float array;
      (** Cost per interval after each slot's scheduling decisions, i.e.
          [sum over links of price * X(t)] for [t = 0 .. slots-1]. *)
  final_charged : float array;  (** [X_ij] per link at the end of the run. *)
  total_files : int;  (** Initial offers; re-offers are not counted. *)
  rejected_files : int;
      (** Initial offers the scheduler declined (a declined {e re-offer}
          counts as lost instead, since its original admission already
          flowed). *)
  rejected_ids : Postcard.File.id list;
      (** Ids of the rejected initial offers, in rejection order. *)
  delivered_volume : float;
      (** Bytes the run actually carries to their destinations: accepted
          sizes, minus what stranding takes back, plus accepted
          re-offers. *)
  offered_volume : float;  (** Total size of all initial offers. *)
  rejected_volume : float;  (** Total size of rejected initial offers. *)
  stranded_volume : float;
      (** Bytes withdrawn from admitted plans by fault reveals (before
          any recovery). *)
  recovered_volume : float;
      (** Stranded bytes the scheduler re-planned successfully. *)
  lost_volume : float;
      (** Stranded bytes that could not be re-planned before their
          deadlines. [delivered + lost + rejected = offered] holds up to
          float rounding. *)
  lost_files : int;
  replanned_files : int;  (** Re-offers the scheduler accepted. *)
  link_volumes : float array array;
      (** Per-link, per-slot committed volumes over the whole run
          (including slots past the arrival window where tails of accepted
          transfers still flow). *)
}

exception Invalid_plan of string
(** Raised when a scheduler produces a plan that fails validation — always
    a bug in the scheduler, never expected in a healthy run. *)

val run : config -> outcome
(** Raises [Invalid_argument] when [slots < 1] or the fault scenario does
    not compile against [base] (unknown link or datacenter). *)

val average_cost : outcome -> float
(** Mean of the cost series — the quantity plotted in Figs. 4-7. *)

val evaluate_cost :
  outcome -> scheme:Postcard.Charging.scheme -> base:Netgraph.Graph.t -> float
(** Re-evaluate the run's final bill under an arbitrary percentile scheme
    (e.g. the 95-th): [sum over links of price * percentile(volumes)]. *)

val evaluate_bill :
  outcome ->
  scheme:Postcard.Charging.scheme ->
  cost_of_link:(int -> Postcard.Charging.cost_function) ->
  base:Netgraph.Graph.t ->
  float
(** Like {!evaluate_cost} but with an arbitrary non-decreasing
    piecewise-linear cost function per link (Sec. II-A's general charging
    model), e.g. volume discounts beyond a threshold. *)
