(** The time-slotted simulation engine, step-wise.

    The engine executes one {e slot} at a time: reveal any fault events
    starting now (stranding the committed volume they kill, see below),
    hand re-offers and the slot's arrivals to the scheduler with the
    current network state (charged volumes, fault-capped residual
    capacities), check the returned plan (slot-accurate validation for
    store-and-forward schedulers, capacity-only for fluid ones), book it
    in the {!Ledger} and record the cost point [sum a_ij X_ij(t)].

    Two drivers share this core:
    - {!run} — the batch path: fold {!step} over a {!Workload} for the
      configured number of slots and {!drain} the outcome. This is the
      historical [Engine.run] and produces bit-identical results (outcome,
      trace stream, metrics) to the pre-step-API monolithic loop.
    - {!init}/{!step}/{!drain} — the incremental path: a serving daemon
      advances the slot clock in real time and feeds each {!step} the
      requests that arrived since the previous tick (continuous
      admission). {!slot_result} reports the per-file admission events of
      the slot, and the completion tracker surfaces when an admitted
      file's committed plan finishes flowing.

    {b Fault semantics.} A {!Faults.scenario} event is unknown to the
    engine and the schedulers until its first slot. At that point its
    whole window becomes visible: residual capacities are capped for the
    remainder of the run, and bookings already committed on now-dead (or
    over-cap degraded) cells are withdrawn youngest-admission-first until
    each cell fits its new cap. A file whose plan is withdrawn is
    {e stranded}: bytes that already reached its destination stay
    delivered, the rest is re-offered to the scheduler in the same slot
    (same id, remaining size, original completion deadline). An accepted
    re-offer counts as {e recovered}; a rejected one — or a strand with no
    slots left — counts as {e lost}. Per-file byte accounting therefore
    decomposes exactly: [delivered + lost + rejected = offered]. *)

type config = {
  base : Netgraph.Graph.t;
  scheduler : Postcard.Scheduler.t;
  workload : Workload.t;
  slots : int;
  faults : Faults.scenario;
}

val make :
  base:Netgraph.Graph.t ->
  scheduler:Postcard.Scheduler.t ->
  workload:Workload.t ->
  slots:int ->
  ?faults:Faults.scenario ->
  unit ->
  config
(** Build a run configuration; [faults] defaults to {!Faults.empty}. An
    empty scenario takes the exact fault-free code path, so results are
    bit-identical to a run that never mentions faults. *)

type outcome = {
  cost_series : float array;
      (** Cost per interval after each executed slot's scheduling
          decisions, i.e. [sum over links of price * X(t)]; length is the
          number of slots actually executed ([slots] under {!run}). *)
  final_charged : float array;  (** [X_ij] per link at the end of the run. *)
  total_files : int;  (** Initial offers; re-offers are not counted. *)
  rejected_files : int;
      (** Initial offers the scheduler declined (a declined {e re-offer}
          counts as lost instead, since its original admission already
          flowed). *)
  rejected_ids : Postcard.File.id list;
      (** Ids of the rejected initial offers, in rejection order. *)
  delivered_volume : float;
      (** Bytes the run actually carries to their destinations: accepted
          sizes, minus what stranding takes back, plus accepted
          re-offers. *)
  offered_volume : float;  (** Total size of all initial offers. *)
  rejected_volume : float;  (** Total size of rejected initial offers. *)
  stranded_volume : float;
      (** Bytes withdrawn from admitted plans by fault reveals (before
          any recovery). *)
  recovered_volume : float;
      (** Stranded bytes the scheduler re-planned successfully. *)
  lost_volume : float;
      (** Stranded bytes that could not be re-planned before their
          deadlines. [delivered + lost + rejected = offered] holds up to
          float rounding. *)
  lost_files : int;
  replanned_files : int;  (** Re-offers the scheduler accepted. *)
  sched_ms_total : float;
      (** Total wall-clock spent inside the scheduler — batch [schedule]
          solves plus incremental {!offer} admissions. Divided by the
          offered files this is the per-admission decision latency of the
          cost-vs-latency frontier. *)
  link_volumes : float array array;
      (** Per-link, per-slot committed volumes over the whole run
          (including slots past the arrival window where tails of accepted
          transfers still flow). *)
}

exception Invalid_plan of string
(** Raised when a scheduler produces a plan that fails validation — always
    a bug in the scheduler, never expected in a healthy run. *)

(** {1 The step-wise API} *)

type t
(** A live engine: the slot clock, the ledger, fault state and the
    per-file accounting of a run in progress. Not domain-safe — drive it
    from one domain (the experiment runner gives each cell its own). *)

val init : config -> t
(** Start a run: compile the fault scenario, reset the scheduler, open the
    [sim.run] trace span. Raises [Invalid_argument] when [slots < 1] or
    the fault scenario does not compile against [base] (unknown link or
    datacenter). *)

type slot_result = {
  slot : int;
  accepted : Postcard.File.t list;
      (** Fresh arrivals admitted this slot, in scheduler order. *)
  rejected : Postcard.File.t list;  (** Fresh arrivals declined. *)
  recovered : Postcard.File.t list;
      (** Stranded re-offers the scheduler re-admitted. *)
  lost : Postcard.File.t list;
      (** Re-offers declined or strands past their deadline — their bytes
          are lost. *)
  stranded : Postcard.File.t list;
      (** Files whose committed plan was withdrawn by a fault reveal this
          slot (each then re-appears under [recovered] or [lost], possibly
          in this same result). *)
  completed : Postcard.File.id list;
      (** Admitted files whose committed plan carried its last
          transmission during this slot — the serving layer's
          "transfer done" signal. *)
  cost : float;  (** Cost per interval after this slot. *)
}

val step : t -> arrivals:Postcard.File.t list -> slot_result
(** Execute the next slot with the given fresh arrivals (their [release]
    should equal {!next_slot}). Raises [Invalid_argument] once all
    configured slots have executed or after {!drain};
    {!exception:Invalid_plan} when the scheduler misbehaves. *)

val offer : t -> Postcard.File.t -> [ `Admitted | `Rejected ] option
(** Per-request admission between steps — the serving fast path. When the
    configured scheduler exposes the incremental
    {!Postcard.Scheduler.admit} capability, decide [file] right now
    against the current ledgers: an admitted file's plan is validated and
    committed immediately (it counts as offered/delivered, enters fault
    tracking and the completion tracker, exactly as a batch admission at
    the next {!step} would), a denied file counts as rejected. Returns
    [None] when the scheduler is batch-only — the caller should fall back
    to queueing the file for the next {!step}. The file's [release] must
    be at least {!next_slot} (raises [Invalid_argument] otherwise, and
    after {!drain} or once all slots executed); admission decisions are
    attributed to slot {!next_slot} in traces and metrics. Raises
    {!exception:Invalid_plan} when the scheduler misbehaves. *)

val drain : t -> outcome
(** Close the run: build the {!outcome} from the slots executed so far and
    end the [sim.run] trace span. May be called before all configured
    slots have executed (the serving daemon's early-stop path) — the cost
    series then covers only the executed prefix. Raises
    [Invalid_argument] on a second call. *)

val run : config -> outcome
(** [init], then fold {!step} over [config.workload]'s arrivals for
    [config.slots] slots, then {!drain}. Raises like {!init}. *)

val next_slot : t -> int
(** The slot the next {!step} will execute (0-based); also the release
    slot a serving layer should stamp on newly pushed requests. *)

val horizon : t -> int
(** The configured horizon ([config.slots]). Named to stay clear of the
    ubiquitous [~slots] label under [Sim.Engine.(...)] opens. *)

val finished : t -> bool
(** [next_slot t >= slots t] — no further {!step} is allowed. *)

val in_flight : t -> (Postcard.File.id * int) list
(** Admitted files whose plans are still flowing: [(id, finish_slot)]
    sorted by id, where [finish_slot] is the slot of the file's last
    committed transmission. Once the arrival window is over (or before
    {!drain}), every listed file is guaranteed to complete at its
    [finish_slot] unless a later fault strands it. *)

type status = {
  next_slot : int;
  slots_total : int;
  files_offered : int;
  files_rejected : int;
  files_lost : int;
  files_in_flight : int;
  bytes_offered : float;
  bytes_delivered : float;
  cost_per_interval : float;
}

val status : t -> status
(** A cheap snapshot of the run so far — what a serving daemon reports on
    its status endpoint. *)

(** {1 Outcome evaluation} *)

val average_cost : outcome -> float
(** Mean of the cost series — the quantity plotted in Figs. 4-7. *)

val evaluate_cost :
  outcome -> scheme:Postcard.Charging.scheme -> base:Netgraph.Graph.t -> float
(** Re-evaluate the run's final bill under an arbitrary percentile scheme
    (e.g. the 95-th): [sum over links of price * percentile(volumes)]. *)

val evaluate_bill :
  outcome ->
  scheme:Postcard.Charging.scheme ->
  cost_of_link:(int -> Postcard.Charging.cost_function) ->
  base:Netgraph.Graph.t ->
  float
(** Like {!evaluate_cost} but with an arbitrary non-decreasing
    piecewise-linear cost function per link (Sec. II-A's general charging
    model), e.g. volume discounts beyond a threshold. *)
