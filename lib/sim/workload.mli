(** Workload generators for the simulation engine.

    The paper's evaluation (Sec. VII) draws, at every slot, a uniform
    number of files in [1, 20], each with a uniform size in [10, 100] GB
    and endpoints uniform over the datacenters; deadlines are bounded by
    [max_k T_k] of 3 (urgent) or 8 (delay-tolerant). {!paper_spec} encodes
    that model; {!Diurnal} and {!Hotspot} variants exercise the diurnal
    pattern and skewed traffic the introduction motivates. *)

type deadline_spec =
  | Fixed_deadline of int  (** Every file gets exactly this deadline. *)
  | Uniform_deadline of int * int  (** Uniform in [lo, hi], inclusive. *)

type arrival_pattern =
  | Steady
  | Diurnal of { period : int; trough_scale : float }
      (** File count scaled by a raised cosine with the given period;
          [trough_scale] in [0, 1] is the off-peak fraction of the peak. *)

type endpoint_pattern =
  | Uniform_endpoints
  | Hotspot of { node : int; weight : float }
      (** The hotspot node is chosen as source with probability [weight];
          otherwise uniform. *)

type spec = {
  nodes : int;
  files_min : int;
  files_max : int;  (** Files per slot uniform in [files_min, files_max]. *)
  size_min : float;
  size_max : float;  (** Size uniform in [size_min, size_max) GB. *)
  deadlines : deadline_spec;
  arrivals : arrival_pattern;
  endpoints : endpoint_pattern;
  urgent_size_cap : float option;
      (** When set, a file that draws deadline 1 has its size capped at
          this value (usually the link capacity): a deadline-1 file larger
          than its direct link is unservable under slotted semantics, and
          the paper implicitly assumes every transfer is serviceable. *)
}

val paper_spec : nodes:int -> files_max:int -> max_deadline:int -> spec
(** Sec. VII's workload: 1..[files_max] files per slot, sizes
    [10, 100) GB, deadlines uniform in [1, max_deadline], steady arrivals,
    uniform endpoints. *)

type t

val create : spec -> Prelude.Rng.t -> t
(** The generator owns the RNG and a file-id counter. *)

val scripted : Postcard.File.t list -> t
(** A deterministic workload that releases exactly the given files, each
    at its [release] slot (order within a slot preserved). File ids must
    be distinct — raises [Invalid_argument] on duplicates. Used by tests
    and fault-injection scenarios that need byte-exact arrivals. *)

val arrivals : t -> slot:int -> Postcard.File.t list
(** Files released at [slot]. Deterministic given the creation RNG state
    and the sequence of calls. *)

val generated : t -> int
(** Files generated so far. *)
