(** Workload generators for the simulation engine.

    The paper's evaluation (Sec. VII) draws, at every slot, a uniform
    number of files in [1, 20], each with a uniform size in [10, 100] GB
    and endpoints uniform over the datacenters; deadlines are bounded by
    [max_k T_k] of 3 (urgent) or 8 (delay-tolerant). {!paper_spec} encodes
    that model; {!Diurnal} and {!Hotspot} variants exercise the diurnal
    pattern and skewed traffic the introduction motivates. *)

type deadline_spec =
  | Fixed_deadline of int  (** Every file gets exactly this deadline. *)
  | Uniform_deadline of int * int  (** Uniform in [lo, hi], inclusive. *)

type arrival_pattern =
  | Steady
  | Diurnal of { period : int; trough_scale : float }
      (** File count scaled by a raised cosine with the given period;
          [trough_scale] in [0, 1] is the off-peak fraction of the peak. *)

type endpoint_pattern =
  | Uniform_endpoints
  | Hotspot of { node : int; weight : float }
      (** The hotspot node is chosen as source with probability [weight];
          otherwise uniform. *)

type spec = {
  nodes : int;
  files_min : int;
  files_max : int;  (** Files per slot uniform in [files_min, files_max]. *)
  size_min : float;
  size_max : float;  (** Size uniform in [size_min, size_max) GB. *)
  deadlines : deadline_spec;
  arrivals : arrival_pattern;
  endpoints : endpoint_pattern;
  urgent_size_cap : float option;
      (** When set, a file that draws deadline 1 has its size capped at
          this value (usually the link capacity): a deadline-1 file larger
          than its direct link is unservable under slotted semantics, and
          the paper implicitly assumes every transfer is serviceable. *)
}

val paper_spec : nodes:int -> files_max:int -> max_deadline:int -> spec
(** Sec. VII's workload: 1..[files_max] files per slot, sizes
    [10, 100) GB, deadlines uniform in [1, max_deadline], steady arrivals,
    uniform endpoints. *)

type t

val create : spec -> Prelude.Rng.t -> t
(** The generator owns the RNG and a file-id counter. *)

val scripted : Postcard.File.t list -> t
(** A deterministic workload that releases exactly the given files, each
    at its [release] slot (order within a slot preserved). File ids must
    be distinct — raises [Invalid_argument] on duplicates. Used by tests
    and fault-injection scenarios that need byte-exact arrivals. *)

val pushable : unit -> t
(** A pushable source: files arrive from outside (a serving daemon's
    clients) rather than from a script or an RNG. {!push} queues a file;
    the next {!arrivals} call drains the queue in push order. *)

val push : t -> Postcard.File.t -> unit
(** Queue a file on a {!pushable} workload for the next {!arrivals} drain.
    The file's [release] must be the slot that drain will serve —
    {!arrivals} raises [Invalid_argument] on a mismatch, which catches a
    serving layer stamping stale release slots. Raises [Invalid_argument]
    on non-pushable workloads. *)

val record : t -> Postcard.File.t -> unit
(** Add a file to a {!pushable} workload's {!captured} history {e without}
    queueing it for the next drain — for files already handed to the
    engine out of band via [Engine.offer], so a captured session still
    replays them. Raises [Invalid_argument] on non-pushable workloads. *)

val pending : t -> int
(** Files pushed but not yet drained (0 for non-pushable sources). *)

val captured : t -> Postcard.File.t list
(** Every file this deterministic workload has carried, in order: the
    full script for {!scripted}, everything ever {!push}ed for
    {!pushable} (drained or not). Raises [Invalid_argument] for random
    workloads — capture them by recording {!arrivals}. *)

val arrivals : t -> slot:int -> Postcard.File.t list
(** Files released at [slot]. Deterministic given the creation RNG state
    and the sequence of calls. *)

val generated : t -> int
(** Files generated so far. *)

(** {1 JSON round-trip}

    Deterministic workloads serialize to a single JSON document
    [{"v":1,"files":[...]}], so a captured serve session can be replayed
    byte-exactly through [postcard_sim custom --workload FILE]. *)

val files_to_json : Postcard.File.t list -> Obs.Json.t

val files_of_json : Obs.Json.t -> (Postcard.File.t list, string) result

val to_json : t -> (Obs.Json.t, string) result
(** The {!captured} files of a scripted or pushable workload;
    [Error] for random sources. *)

val of_json : Obs.Json.t -> (t, string) result
(** Rebuild a {!scripted} workload (duplicate ids and malformed files are
    [Error]s, not exceptions). *)

val save_script : string -> Postcard.File.t list -> (unit, string) result
(** Write [files_to_json] to a file (one line + newline). *)

val load_script : string -> (Postcard.File.t list, string) result
(** Parse a {!save_script} file. *)
