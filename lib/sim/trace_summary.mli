(** Offline analyzer for JSONL run traces (the [--trace] output).

    Reconstructs each simulation run recorded in a trace — the
    ["sim.run"]/["sim.slot"] spans with the ["lp.solve"] and
    ["sched.decision"] points nested inside them — and renders an ASCII
    report: the cost-vs-slot series, the per-slot pivot and wall-time
    breakdown, a solver section (phase-1/phase-2/dual pivot split,
    re-optimization outcomes and repair rounds per run), and a
    reconciliation check of the per-slot series against the run's
    recorded final totals. *)

type solve_tally = {
  solves : int;
  pivots : int;  (** All pivots (phases 1+2 and dual) over the slot. *)
  phase1_pivots : int;
  phase2_pivots : int;
  dual_pivots : int;  (** Dual-simplex re-optimization pivots. *)
  refactorizations : int;
  repair_rounds : int;  (** Warm-install repair rounds over the slot. *)
  solve_ms : float;
  warm_cold : int;  (** Solves started without a warm basis. *)
  warm_accepted : int;
      (** Warm basis installed with no repair (dual re-opt or clean
          primal crash). *)
  dual_reopts : int;
      (** The subset of [warm_accepted] re-optimized by the dual
          simplex. *)
  warm_repaired : int;  (** Warm basis installed after repair rounds. *)
  warm_fell_back : int;  (** Warm basis discarded, solved cold. *)
}

type slot_row = {
  slot : int;
  arrivals : int;
  admitted : int;
  rejected : int;
  admitted_bytes : float;
  stored_bytes : float;
  replans : int;  (** Stranded files re-offered this slot (0 pre-fault traces). *)
  stranded_bytes : float;  (** Bytes stranded by reveals this slot. *)
  lost_bytes : float;  (** Bytes lost (deadline or re-offer rejection). *)
  cost : float;  (** Cumulative charged cost after this slot. *)
  cost_delta : float;
  charged : float array;  (** Cumulative per-link charged volume. *)
  charged_delta : float array;  (** Per-link charged-volume increase. *)
  sched_ms : float;
  lp : solve_tally;
}

type run = {
  scheduler : string;
  slots : int;
  rows : slot_row list;  (** In slot order. *)
  final_cost : float option;  (** From the ["sim.run"] end event. *)
  final_charged : float array option;
  total_files : int option;
  rejected_files : int option;
  offered_volume : float option;
  delivered_volume : float option;
  rejected_volume : float option;
  stranded_volume : float option;
  recovered_volume : float option;
  lost_volume : float option;
  lost_files : int option;
  replanned_files : int option;
  fault_reveals : int;  (** ["fault.reveal"] points inside the run. *)
  fault_strands : int;  (** ["fault.strand"] points inside the run. *)
  fault_losses : int;  (** ["fault.lost"] points inside the run. *)
}

val of_events : Obs.Trace_reader.event list -> run list
(** Group a validated event stream into runs. Events outside any
    ["sim.run"] span (e.g. from [postcard_solve]) are ignored. *)

val reconcile : run -> (unit, string) result
(** Check the per-slot series against the run's final totals, with zero
    tolerance: the last slot's cumulative [cost] must equal [final_cost],
    the last slot's [charged] must equal [final_charged] per link, and
    every slot's deltas must equal the difference of the adjacent
    cumulative readings (the engine computes them that way, so the
    recomputation is bit-exact). When the run carries byte totals
    (schema >= the fault-aware engine), additionally checks the byte
    decomposition [offered = delivered + lost + rejected] and the per-slot
    stranded/lost sums against the run totals, at relative tolerance
    [1e-6] (accumulation order differs between engine and analyzer). [Ok]
    when the run carries no final totals. *)

val pp_run : Format.formatter -> run -> unit

val pp : Format.formatter -> run list -> unit

val runs_to_json : run list -> Obs.Json.t
(** [{"runs": [...]}] — every run with its per-slot rows, summed solver
    tally and reconciliation verdict ("ok" or the failure message), for
    scripts that would otherwise scrape the ASCII report. *)

val summarize_file :
  ?json:bool ->
  ?profile:bool ->
  ?chrome:string ->
  ?top:int ->
  string ->
  (unit, string) result
(** Read, validate, analyze and print a trace file; the [trace-summary]
    subcommand of [postcard_sim].

    [json] switches stdout to one machine-readable document
    ({!runs_to_json}, with a ["profile"] member when [profile] is also
    set). [profile] adds the span self-time table ({!Obs.Profile}, top
    [top] rows, default 20) and makes an unbalanced profile an error.
    [chrome] additionally writes the whole event stream as Chrome
    [trace_event] JSON to the given file, re-parsing the document before
    writing it. Reconciliation failures, an unbalanced profile and a
    failed export all land in the [Error] return (the caller exits
    nonzero) after everything printable has been printed. *)
