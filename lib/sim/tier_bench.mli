(** The tiered-admission macro-benchmark behind [bench --tier].

    Three measurements on one randomized setting (complete topology,
    paper-style workload), quantifying the cost-vs-latency frontier of
    the combinatorial fast tier against the per-epoch LP:

    - {b Admission split}: an engine run under ["postcard-tiered"] with a
      counting fallback — how many files the ledger tier admits without
      ever touching the LP, and how many spill to it.
    - {b Per-admission latency}: the same stream of files decided one at
      a time by the ledger's incremental [admit] and by a singleton LP
      solve, wall-clocked over enough repetitions to be stable.
    - {b Cost gap}: the final bill of the tiered run against a pure
      ["postcard"] run over the identical workload.

    {!check} encodes the targets the tier is held to: the fast tier
    decides at least 90% of files without the LP, at least 50x faster
    per admission, within 10% of the pure LP's cost. *)

type summary = {
  tb_nodes : int;
  tb_slots : int;
  tb_seed : int;
  tb_offered : int;  (** Initial offers seen by the tiered engine run. *)
  tb_fast_admits : int;  (** Admitted by the ledger tier alone. *)
  tb_fallback_files : int;  (** Files the fast tier deferred to the LP. *)
  tb_fallback_admits : int;  (** Deferred files the LP then admitted. *)
  tb_rejected : int;  (** Files denied by both tiers. *)
  tb_fast_share : float;  (** [fast_admits / offered]. *)
  tb_fast_us : float;  (** Mean microseconds per ledger admission. *)
  tb_lp_us : float;  (** Mean microseconds per singleton LP admission. *)
  tb_latency_ratio : float;  (** [lp_us / fast_us]. *)
  tb_cost_tiered : float;  (** Final bill of the tiered run. *)
  tb_cost_postcard : float;  (** Final bill of the pure-LP run. *)
  tb_cost_gap : float;  (** [(tiered - postcard) / postcard]. *)
}

val run : ?nodes:int -> ?slots:int -> ?seed:int -> unit -> summary
(** Defaults: 8 datacenters, 40 slots, seed 1. Deterministic for fixed
    parameters up to wall-clock latency fields. *)

val check : summary -> (unit, string list) result
(** The acceptance targets: [fast_share >= 0.9],
    [latency_ratio >= 50] and [cost_gap <= 0.1]; [Error] lists every
    violated target. *)

val pp_summary : Format.formatter -> summary -> unit
val to_json : summary -> string
