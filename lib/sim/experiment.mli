(** Multi-seed experiment runner reproducing the paper's evaluation
    protocol: for each of several independent runs, draw a topology and a
    workload from a seeded RNG and drive {e every} scheduler through the
    identical instance (paired comparison); report mean cost per interval
    and its Student-t 95% confidence interval across runs, as plotted in
    Figs. 4-7.

    The (run, scheduler) grid is embarrassingly parallel and can be
    spread over an {!Exec.Pool}: each cell owns its seeded RNGs and a
    scheduler instantiated from its factory, trace events are buffered
    per cell and merged in cell order, and the reduction replays the
    serial float-operation order — results are bit-identical for any pool
    size. *)

type setting = {
  label : string;
  nodes : int;
  capacity : float;  (** Per-link capacity, GB per interval. *)
  cost_lo : float;
  cost_hi : float;  (** Per-unit link prices uniform in [cost_lo, cost_hi). *)
  files_max : int;  (** Files per slot uniform in [1, files_max]. *)
  size_max : float;
      (** Upper end of the uniform size draw (the paper uses 100 GB);
          lowering it keeps deeply throttled settings serviceable. *)
  max_deadline : int;  (** The setting's [max_k T_k]. *)
  uniform_deadlines : bool;
      (** [true] (default in the paper settings): deadlines uniform in
          [1, max_deadline], with deadline-1 sizes capped at the link
          capacity so every file stays serviceable under slotted semantics
          (the deadline heterogeneity is what lets store-and-forward
          exploit links vacated by urgent traffic — the mechanism behind
          Figs. 6-7). [false]: every file gets exactly [max_deadline]. *)
  slots : int;
  runs : int;
  seed : int;
  faults : Faults.scenario;
      (** Fault events injected into {e every} cell (the paired-comparison
          design extends to faults: all schedulers face the identical
          outage sequence). {!Faults.empty} in all predefined settings. *)
  script : Postcard.File.t list option;
      (** When set, every run replays exactly these files (a
          {!Workload.scripted} source — e.g. a serve session captured with
          [postcard_serve --capture]) instead of drawing from the
          workload RNG. The topology still derives from [(seed, run)], so
          run 0 reproduces the network of a capturing daemon started with
          the same [seed]. [None] in all predefined settings. *)
}

val paper_figure : int -> setting
(** [paper_figure n] for [n] in 4..7: the paper's exact settings — 20
    datacenters, 100 slots, 10 runs, capacity 100 (Figs. 4-5) or 30
    (Figs. 6-7) GB per interval, [max_k T_k] of 3 (Figs. 4, 6) or 8
    (Figs. 5, 7). Raises [Invalid_argument] otherwise. *)

val scaled_figure : int -> setting
(** Same qualitative regime scaled to bench-friendly size: 8 datacenters,
    files per slot in [1, 6], 40 slots, 5 runs, capacities scaled (35 GB
    ample / 10 GB throttled) to preserve the load-to-capacity ratio. *)

val custom_default : setting
(** The neutral baseline behind [postcard_sim custom]: 8 datacenters,
    capacity 35 GB, files per slot in [1, 6], 40 slots, 5 runs, seed 42.
    Refine it with {!with_overrides}. *)

val with_overrides :
  ?label:string ->
  ?nodes:int ->
  ?capacity:float ->
  ?cost_lo:float ->
  ?cost_hi:float ->
  ?files_max:int ->
  ?size_max:float ->
  ?max_deadline:int ->
  ?uniform_deadlines:bool ->
  ?slots:int ->
  ?runs:int ->
  ?seed:int ->
  ?faults:Faults.scenario ->
  ?script:Postcard.File.t list option ->
  setting ->
  setting
(** Functional update from optional values: every argument left [None]
    keeps the base setting's field. This is the single place CLI-style
    "override if given" defaulting lives. *)

type scheduler_summary = {
  scheduler : string;
  mean_cost : float;  (** Mean over runs of the run-average cost/interval. *)
  ci95 : float;  (** Student-t 95% half-width across runs. *)
  run_costs : float array;
  mean_series : float array;  (** Cost series averaged across runs. *)
  rejected : int;  (** Total rejections across runs (expected 0). *)
  delivered_volume : float;  (** Total bytes delivered across runs. *)
  recovered_volume : float;
      (** Bytes stranded by faults and successfully re-planned, summed
          across runs (0 without a fault scenario). *)
  lost_volume : float;
      (** Bytes stranded and not recoverable, summed across runs. *)
  offered_files : int;  (** Total files offered across runs. *)
  mean_decision_ms : float;
      (** Scheduler wall-clock per offered file, averaged across runs —
          the latency axis of the cost-vs-latency frontier. *)
}

type results = {
  setting : setting;
  summaries : scheduler_summary list;
}

type scheduler_factory = unit -> Postcard.Scheduler.t
(** Schedulers enter the runner as factories (see
    {!Postcard.Scheduler.factory}): each (run, scheduler) cell gets a
    fresh instance, which is what makes the parallel sweep safe —
    scheduler values carry mutable cross-epoch state. *)

val cells : setting -> schedulers:scheduler_factory list -> int
(** Number of (run, scheduler) cells the sweep will execute — the natural
    cap for a pool's domain count. *)

val run_setting :
  ?progress:(run:int -> scheduler:string -> unit) ->
  ?pool:Exec.Pool.t ->
  setting ->
  schedulers:scheduler_factory list ->
  results
(** Run the sweep. Without [pool] (or with a pool of size 1) cells run
    serially in run-major order, exactly as the pre-parallel runner did.
    With a larger pool, cells are spread over its domains; summaries are
    bit-identical to the serial ones, and when tracing is enabled each
    cell's events are buffered and flushed in cell order so the JSONL
    stream still reconciles. [progress] is invoked from the domain
    executing the cell — keep it reentrant (the CLI serializes its
    progress printing on a mutex). *)

val find_summary : results -> string -> scheduler_summary option
(** Lookup by scheduler name. *)

val find_summary_exn : results -> string -> scheduler_summary
(** Like {!find_summary} but raises [Invalid_argument] naming the missing
    scheduler and the ones the results actually contain. *)
