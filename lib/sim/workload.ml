type deadline_spec =
  | Fixed_deadline of int
  | Uniform_deadline of int * int

type arrival_pattern =
  | Steady
  | Diurnal of { period : int; trough_scale : float }

type endpoint_pattern =
  | Uniform_endpoints
  | Hotspot of { node : int; weight : float }

type spec = {
  nodes : int;
  files_min : int;
  files_max : int;
  size_min : float;
  size_max : float;
  deadlines : deadline_spec;
  arrivals : arrival_pattern;
  endpoints : endpoint_pattern;
  urgent_size_cap : float option;
}

let paper_spec ~nodes ~files_max ~max_deadline =
  { nodes;
    files_min = 1;
    files_max;
    size_min = 10.;
    size_max = 100.;
    deadlines = Uniform_deadline (1, max_deadline);
    arrivals = Steady;
    endpoints = Uniform_endpoints;
    urgent_size_cap = None }

type pushed = {
  mutable pending : Postcard.File.t list;  (* newest first *)
  mutable history : Postcard.File.t list;  (* newest first *)
}

type source =
  | Random of { spec : spec; rng : Prelude.Rng.t }
  | Scripted of Postcard.File.t list
  | Pushed of pushed

type t = {
  source : source;
  mutable next_id : int;
}

let validate spec =
  if spec.nodes < 2 then invalid_arg "Workload: need at least 2 nodes";
  if spec.files_min < 0 || spec.files_max < spec.files_min then
    invalid_arg "Workload: bad file count range";
  if spec.size_min <= 0. || spec.size_max < spec.size_min then
    invalid_arg "Workload: bad size range";
  (match spec.deadlines with
   | Fixed_deadline d when d < 1 -> invalid_arg "Workload: bad deadline"
   | Uniform_deadline (lo, hi) when lo < 1 || hi < lo ->
       invalid_arg "Workload: bad deadline range"
   | Fixed_deadline _ | Uniform_deadline _ -> ());
  (match spec.endpoints with
   | Hotspot { node; weight } ->
       if node < 0 || node >= spec.nodes then
         invalid_arg "Workload: hotspot outside node range";
       if weight < 0. || weight > 1. then
         invalid_arg "Workload: hotspot weight outside [0, 1]"
   | Uniform_endpoints -> ());
  match spec.arrivals with
  | Diurnal { period; trough_scale } ->
      if period < 2 then invalid_arg "Workload: diurnal period too short";
      if trough_scale < 0. || trough_scale > 1. then
        invalid_arg "Workload: trough scale outside [0, 1]"
  | Steady -> ()

let create spec rng =
  validate spec;
  { source = Random { spec; rng }; next_id = 0 }

let scripted files =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f.Postcard.File.id then
        invalid_arg
          (Printf.sprintf "Workload.scripted: duplicate file id %d"
             f.Postcard.File.id);
      Hashtbl.add seen f.Postcard.File.id ())
    files;
  { source = Scripted files; next_id = 0 }

let pushable () = { source = Pushed { pending = []; history = [] }; next_id = 0 }

let push t file =
  match t.source with
  | Pushed p ->
      p.pending <- file :: p.pending;
      p.history <- file :: p.history;
      t.next_id <- t.next_id + 1
  | Random _ | Scripted _ ->
      invalid_arg "Workload.push: not a pushable workload"

let record t file =
  match t.source with
  | Pushed p ->
      p.history <- file :: p.history;
      t.next_id <- t.next_id + 1
  | Random _ | Scripted _ ->
      invalid_arg "Workload.record: not a pushable workload"

let pending t =
  match t.source with Pushed p -> List.length p.pending | _ -> 0

let captured t =
  match t.source with
  | Pushed p -> List.rev p.history
  | Scripted files -> files
  | Random _ -> invalid_arg "Workload.captured: random workloads are not captured"

let count_at ~spec ~rng ~slot =
  let base = Prelude.Rng.int_incl rng spec.files_min spec.files_max in
  match spec.arrivals with
  | Steady -> base
  | Diurnal { period; trough_scale } ->
      (* Raised cosine: 1.0 at the peak, trough_scale at the trough. *)
      let phase = 2. *. Float.pi *. float_of_int slot /. float_of_int period in
      let scale =
        trough_scale +. ((1. -. trough_scale) *. (0.5 *. (1. +. cos phase)))
      in
      int_of_float (Float.round (scale *. float_of_int base))

let pick_src ~spec ~rng =
  match spec.endpoints with
  | Uniform_endpoints -> Prelude.Rng.int rng spec.nodes
  | Hotspot { node; weight } ->
      if Prelude.Rng.float rng 1. < weight then node
      else Prelude.Rng.int rng spec.nodes

let arrivals t ~slot =
  if slot < 0 then invalid_arg "Workload.arrivals: negative slot";
  match t.source with
  | Scripted files ->
      let due = List.filter (fun f -> f.Postcard.File.release = slot) files in
      t.next_id <- t.next_id + List.length due;
      due
  | Pushed p ->
      let due = List.rev p.pending in
      p.pending <- [];
      List.iter
        (fun f ->
          if f.Postcard.File.release <> slot then
            invalid_arg
              (Printf.sprintf
                 "Workload.arrivals: pushed file %d has release %d, drained \
                  at slot %d"
                 f.Postcard.File.id f.Postcard.File.release slot))
        due;
      due
  | Random { spec; rng } ->
      let n = count_at ~spec ~rng ~slot in
      List.init n (fun _ ->
          let src = pick_src ~spec ~rng in
          let rec pick_dst () =
            let d = Prelude.Rng.int rng spec.nodes in
            if d = src then pick_dst () else d
          in
          let dst = pick_dst () in
          let size = Prelude.Rng.float_range rng spec.size_min spec.size_max in
          let deadline =
            match spec.deadlines with
            | Fixed_deadline d -> d
            | Uniform_deadline (lo, hi) -> Prelude.Rng.int_incl rng lo hi
          in
          let size =
            match spec.urgent_size_cap with
            | Some cap when deadline = 1 -> min size (max spec.size_min cap)
            | Some _ | None -> size
          in
          let id = t.next_id in
          t.next_id <- id + 1;
          Postcard.File.make ~id ~src ~dst ~size ~deadline ~release:slot)

let generated t = t.next_id

(* JSON round-trip for deterministic (scripted or captured) workloads, so
   a serve session can be written out and replayed through the batch
   simulator. Schema: {"v":1,"files":[{file}...]} with every File.t field
   explicit. *)

module Json = Obs.Json

let schema_version = 1

let file_to_json (f : Postcard.File.t) =
  Json.Obj
    [ ("id", Json.Int f.Postcard.File.id);
      ("src", Json.Int f.Postcard.File.src);
      ("dst", Json.Int f.Postcard.File.dst);
      ("size", Json.Float f.Postcard.File.size);
      ("deadline", Json.Int f.Postcard.File.deadline);
      ("release", Json.Int f.Postcard.File.release) ]

let file_of_json j =
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "file: missing or non-integer %S" name)
  in
  let float_field name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "file: missing or non-numeric %S" name)
  in
  let ( let* ) = Result.bind in
  let* id = int_field "id" in
  let* src = int_field "src" in
  let* dst = int_field "dst" in
  let* size = float_field "size" in
  let* deadline = int_field "deadline" in
  let* release = int_field "release" in
  match Postcard.File.make ~id ~src ~dst ~size ~deadline ~release with
  | f -> Ok f
  | exception Invalid_argument msg ->
      Error (Printf.sprintf "file %d: %s" id msg)

let files_to_json files =
  Json.Obj
    [ ("v", Json.Int schema_version);
      ("files", Json.List (List.map file_to_json files)) ]

let files_of_json j =
  match Option.bind (Json.member "v" j) Json.to_int with
  | Some v when v <> schema_version ->
      Error (Printf.sprintf "workload: unsupported schema version %d" v)
  | None -> Error "workload: missing schema version \"v\""
  | Some _ -> (
      match Option.bind (Json.member "files" j) Json.to_list with
      | None -> Error "workload: missing \"files\" array"
      | Some items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | item :: rest -> (
                match file_of_json item with
                | Ok f -> go (f :: acc) rest
                | Error _ as e -> e)
          in
          go [] items)

let to_json t =
  match t.source with
  | Random _ -> Error "workload: random workloads have no JSON form"
  | Scripted _ | Pushed _ -> Ok (files_to_json (captured t))

let of_json j =
  match files_of_json j with
  | Error _ as e -> e
  | Ok files -> (
      match scripted files with
      | w -> Ok w
      | exception Invalid_argument msg -> Error msg)

let save_script path files =
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string (files_to_json files));
        output_char oc '\n')
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let load_script path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Json.parse (String.trim contents) with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> (
          match files_of_json j with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok _ as ok -> ok))
