module Reader = Obs.Trace_reader
module Json = Obs.Json

type solve_tally = {
  solves : int;
  pivots : int;
  phase1_pivots : int;
  phase2_pivots : int;
  dual_pivots : int;
  refactorizations : int;
  repair_rounds : int;
  solve_ms : float;
  warm_cold : int;
  warm_accepted : int;
  dual_reopts : int;
  warm_repaired : int;
  warm_fell_back : int;
}

let empty_tally =
  { solves = 0;
    pivots = 0;
    phase1_pivots = 0;
    phase2_pivots = 0;
    dual_pivots = 0;
    refactorizations = 0;
    repair_rounds = 0;
    solve_ms = 0.;
    warm_cold = 0;
    warm_accepted = 0;
    dual_reopts = 0;
    warm_repaired = 0;
    warm_fell_back = 0 }

let add_tally a b =
  { solves = a.solves + b.solves;
    pivots = a.pivots + b.pivots;
    phase1_pivots = a.phase1_pivots + b.phase1_pivots;
    phase2_pivots = a.phase2_pivots + b.phase2_pivots;
    dual_pivots = a.dual_pivots + b.dual_pivots;
    refactorizations = a.refactorizations + b.refactorizations;
    repair_rounds = a.repair_rounds + b.repair_rounds;
    solve_ms = a.solve_ms +. b.solve_ms;
    warm_cold = a.warm_cold + b.warm_cold;
    warm_accepted = a.warm_accepted + b.warm_accepted;
    dual_reopts = a.dual_reopts + b.dual_reopts;
    warm_repaired = a.warm_repaired + b.warm_repaired;
    warm_fell_back = a.warm_fell_back + b.warm_fell_back }

type slot_row = {
  slot : int;
  arrivals : int;
  admitted : int;
  rejected : int;
  admitted_bytes : float;
  stored_bytes : float;
  replans : int;
  stranded_bytes : float;
  lost_bytes : float;
  cost : float;
  cost_delta : float;
  charged : float array;
  charged_delta : float array;
  sched_ms : float;
  lp : solve_tally;
}

type run = {
  scheduler : string;
  slots : int;
  rows : slot_row list;
  final_cost : float option;
  final_charged : float array option;
  total_files : int option;
  rejected_files : int option;
  offered_volume : float option;
  delivered_volume : float option;
  rejected_volume : float option;
  stranded_volume : float option;
  recovered_volume : float option;
  lost_volume : float option;
  lost_files : int option;
  replanned_files : int option;
  fault_reveals : int;
  fault_strands : int;
  fault_losses : int;
}

let floats_field ev name =
  match Reader.field ev name with
  | None -> None
  | Some j -> (
      match Json.to_list j with
      | None -> None
      | Some items ->
          let arr = Array.make (List.length items) 0. in
          let ok = ref true in
          List.iteri
            (fun i item ->
              match Json.to_float item with
              | Some f -> arr.(i) <- f
              | None -> ok := false)
            items;
          if !ok then Some arr else None)

let int0 ev name = Option.value ~default:0 (Reader.int_field ev name)
let float0 ev name = Option.value ~default:0. (Reader.float_field ev name)

let tally_of_solve ev =
  let warm = Option.value ~default:"" (Reader.str_field ev "warm") in
  let repairs = int0 ev "repair_rounds" in
  { solves = 1;
    pivots = int0 ev "iterations";
    phase1_pivots = int0 ev "phase1_pivots";
    phase2_pivots = int0 ev "phase2_pivots";
    dual_pivots = int0 ev "dual_pivots";
    refactorizations = int0 ev "refactorizations";
    repair_rounds = repairs;
    solve_ms = float0 ev "ms";
    warm_cold = (if warm = "none" || warm = "" then 1 else 0);
    (* "accepted clean": installed with zero repair rounds, whether the
       dual simplex re-optimized or the primal crash landed as carried;
       [dual_reopts] counts the dual subset separately. *)
    warm_accepted =
      (if warm = "dual_reopt" || (warm = "accepted" && repairs = 0) then 1
       else 0);
    dual_reopts = (if warm = "dual_reopt" then 1 else 0);
    warm_repaired = (if warm = "accepted" && repairs > 0 then 1 else 0);
    warm_fell_back = (if warm = "fell_back" then 1 else 0) }

(* The engine emits strictly nested spans from a single thread, so a pair
   of "currently open" cells replaces a full span stack. *)
let of_events events =
  let runs = ref [] in
  let cur_run = ref None in
  let cur_slot = ref None in
  let cur_tally = ref empty_tally in
  let reveals = ref 0 and strands = ref 0 and losses = ref 0 in
  List.iter
    (fun ev ->
      match (ev.Reader.kind, ev.Reader.name) with
      | Reader.Begin, "sim.run" ->
          reveals := 0;
          strands := 0;
          losses := 0;
          cur_run :=
            Some
              ( Option.value ~default:"?" (Reader.str_field ev "scheduler"),
                int0 ev "slots",
                ref [] )
      | Reader.End, "sim.run" -> (
          match !cur_run with
          | None -> ()
          | Some (scheduler, slots, rows) ->
              runs :=
                { scheduler;
                  slots;
                  rows = List.rev !rows;
                  final_cost = Reader.float_field ev "final_cost";
                  final_charged = floats_field ev "final_charged";
                  total_files = Reader.int_field ev "total_files";
                  rejected_files = Reader.int_field ev "rejected_files";
                  offered_volume = Reader.float_field ev "offered_volume";
                  delivered_volume = Reader.float_field ev "delivered_volume";
                  rejected_volume = Reader.float_field ev "rejected_volume";
                  stranded_volume = Reader.float_field ev "stranded_volume";
                  recovered_volume = Reader.float_field ev "recovered_volume";
                  lost_volume = Reader.float_field ev "lost_volume";
                  lost_files = Reader.int_field ev "lost_files";
                  replanned_files = Reader.int_field ev "replanned_files";
                  fault_reveals = !reveals;
                  fault_strands = !strands;
                  fault_losses = !losses }
                :: !runs;
              cur_run := None)
      | Reader.Begin, "sim.slot" ->
          cur_slot := Some (int0 ev "slot");
          cur_tally := empty_tally
      | Reader.End, "sim.slot" -> (
          match (!cur_run, !cur_slot) with
          | Some (_, _, rows), Some slot ->
              rows :=
                { slot;
                  arrivals = int0 ev "arrivals";
                  admitted = int0 ev "admitted";
                  rejected = int0 ev "rejected";
                  admitted_bytes = float0 ev "admitted_bytes";
                  stored_bytes = float0 ev "stored_bytes";
                  replans = int0 ev "replans";
                  stranded_bytes = float0 ev "stranded_bytes";
                  lost_bytes = float0 ev "lost_bytes";
                  cost = float0 ev "cost";
                  cost_delta = float0 ev "cost_delta";
                  charged =
                    Option.value ~default:[||] (floats_field ev "charged");
                  charged_delta =
                    Option.value ~default:[||] (floats_field ev "charged_delta");
                  sched_ms = float0 ev "sched_ms";
                  lp = !cur_tally }
                :: !rows;
              cur_slot := None
          | _ -> cur_slot := None)
      | Reader.Point, "lp.solve" ->
          if !cur_slot <> None then
            cur_tally := add_tally !cur_tally (tally_of_solve ev)
      | Reader.Point, "fault.reveal" -> if !cur_run <> None then incr reveals
      | Reader.Point, "fault.strand" -> if !cur_run <> None then incr strands
      | Reader.Point, "fault.lost" -> if !cur_run <> None then incr losses
      | _ -> ())
    events;
  List.rev !runs

let reconcile run =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_deltas () =
    (* Each slot's deltas must be exactly the difference of the adjacent
       cumulative readings — the same subtraction the engine performed. *)
    let rec go prev_cost prev_charged = function
      | [] -> Ok ()
      | row :: rest ->
          if row.cost_delta <> row.cost -. prev_cost then
            fail "slot %d: cost_delta %.17g <> cost %.17g - previous %.17g"
              row.slot row.cost_delta row.cost prev_cost
          else begin
            let bad = ref None in
            Array.iteri
              (fun l d ->
                let prev =
                  if Array.length prev_charged > l then prev_charged.(l) else 0.
                in
                if !bad = None && d <> row.charged.(l) -. prev then
                  bad := Some l)
              row.charged_delta;
            match !bad with
            | Some l ->
                fail "slot %d: charged_delta on link %d does not telescope"
                  row.slot l
            | None -> go row.cost row.charged rest
          end
    in
    go 0. [||] run.rows
  in
  let check_finals () =
    (* [nth_opt _ (-1)] raises, so a zero-slot run (a serving session shut
       down before any traffic) needs an explicit last-element walk. *)
    let rec last_row = function
      | [] -> None
      | [ row ] -> Some row
      | _ :: rest -> last_row rest
    in
    let last = last_row run.rows in
    match (last, run.final_cost, run.final_charged) with
    | None, _, _ | _, None, None -> Ok ()
    | Some row, fc, fch -> (
        match fc with
        | Some c when c <> row.cost ->
            fail "final cost %.17g does not match last slot's %.17g" c
              row.cost
        | _ -> (
            match fch with
            | Some arr
              when Array.length arr <> Array.length row.charged ->
                fail "final charged has %d links, last slot has %d"
                  (Array.length arr)
                  (Array.length row.charged)
            | Some arr ->
                let bad = ref None in
                Array.iteri
                  (fun l v ->
                    if !bad = None && v <> row.charged.(l) then bad := Some l)
                  arr;
                (match !bad with
                 | Some l ->
                     fail
                       "final charged volume on link %d does not match the \
                        slot series"
                       l
                 | None -> Ok ())
            | None -> Ok ()))
  in
  (* Byte accounting: the engine's per-file decomposition must close
     (delivered + lost + rejected = offered), and the per-slot fault
     series must sum to the run totals. Accumulation order differs
     between the engine's running totals and the analyzer's fold, so this
     check uses a relative tolerance instead of bit equality. *)
  let check_bytes () =
    match (run.offered_volume, run.delivered_volume) with
    | Some offered, Some delivered ->
        let rejected = Option.value ~default:0. run.rejected_volume in
        let lost = Option.value ~default:0. run.lost_volume in
        let stranded = Option.value ~default:0. run.stranded_volume in
        let tol = 1e-6 *. Float.max 1. offered in
        let slot_sum f = List.fold_left (fun acc r -> acc +. f r) 0. run.rows in
        if Float.abs (offered -. (delivered +. lost +. rejected)) > tol then
          fail
            "byte accounting: offered %.17g <> delivered %.17g + lost %.17g \
             + rejected %.17g"
            offered delivered lost rejected
        else if Float.abs (slot_sum (fun r -> r.stranded_bytes) -. stranded)
                > tol
        then
          fail "per-slot stranded bytes do not sum to the run total %.17g"
            stranded
        else if Float.abs (slot_sum (fun r -> r.lost_bytes) -. lost) > tol then
          fail "per-slot lost bytes do not sum to the run total %.17g" lost
        else Ok ()
    | _ -> Ok ()
  in
  match check_deltas () with
  | Error _ as e -> e
  | Ok () -> (
      match check_finals () with
      | Error _ as e -> e
      | Ok () -> check_bytes ())

let run_tally run =
  List.fold_left (fun acc row -> add_tally acc row.lp) empty_tally run.rows

let pp_run ppf run =
  Format.fprintf ppf "@[<v>run: scheduler %s, %d slots@," run.scheduler
    run.slots;
  let max_cost =
    List.fold_left (fun acc r -> max acc r.cost) 0. run.rows
  in
  Format.fprintf ppf
    "  %-5s %6s %6s %4s %11s %10s %8s %7s %7s %6s %9s %9s  %s@," "slot"
    "arriv" "admit" "rej" "cost" "Δcost" "stored" "solves" "pivots" "p1"
    "solve ms" "sched ms" "cost bar";
  List.iter
    (fun r ->
      let bar_len =
        if max_cost <= 0. then 0
        else int_of_float (Float.round (20. *. r.cost /. max_cost))
      in
      Format.fprintf ppf
        "  %-5d %6d %6d %4d %11.3f %10.3f %8.1f %7d %7d %6d %9.2f %9.2f  %s@,"
        r.slot r.arrivals r.admitted r.rejected r.cost r.cost_delta
        r.stored_bytes r.lp.solves r.lp.pivots r.lp.phase1_pivots
        r.lp.solve_ms r.sched_ms
        (String.concat "" (List.init bar_len (fun _ -> "#"))))
    run.rows;
  let t = run_tally run in
  Format.fprintf ppf
    "  totals: %d solves, %d pivots (%d phase 1), %d refactorizations, \
     %.2f ms solving, %.2f ms scheduling@,"
    t.solves t.pivots t.phase1_pivots t.refactorizations t.solve_ms
    (List.fold_left (fun acc r -> acc +. r.sched_ms) 0. run.rows);
  Format.fprintf ppf
    "  solver: %d phase-1 + %d phase-2 + %d dual pivots, %d repair \
     round%s@,"
    t.phase1_pivots t.phase2_pivots t.dual_pivots t.repair_rounds
    (if t.repair_rounds = 1 then "" else "s");
  Format.fprintf ppf
    "  re-opt outcomes: %d cold, %d accepted clean (%d via dual re-opt), \
     %d repaired, %d fell back@,"
    t.warm_cold t.warm_accepted t.dual_reopts t.warm_repaired
    t.warm_fell_back;
  (match (run.total_files, run.rejected_files) with
   | Some total, Some rej ->
       Format.fprintf ppf "  files: %d offered, %d rejected@," total rej
   | _ -> ());
  if run.fault_reveals > 0 || run.fault_strands > 0 || run.fault_losses > 0
  then
    Format.fprintf ppf
      "  faults: %d event%s revealed, %d stranding%s (%d replanned), %d \
       loss%s@,"
      run.fault_reveals
      (if run.fault_reveals = 1 then "" else "s")
      run.fault_strands
      (if run.fault_strands = 1 then "" else "s")
      (Option.value ~default:0 run.replanned_files)
      run.fault_losses
      (if run.fault_losses = 1 then "" else "es");
  (match (run.offered_volume, run.delivered_volume) with
   | Some offered, Some delivered ->
       Format.fprintf ppf
         "  bytes: %.1f offered = %.1f delivered + %.1f rejected + %.1f \
          lost (%.1f stranded, %.1f recovered)@,"
         offered delivered
         (Option.value ~default:0. run.rejected_volume)
         (Option.value ~default:0. run.lost_volume)
         (Option.value ~default:0. run.stranded_volume)
         (Option.value ~default:0. run.recovered_volume)
   | _ -> ());
  (match reconcile run with
   | Ok () ->
       let note =
         match run.final_cost with
         | Some c -> Printf.sprintf " (final cost %g)" c
         | None -> ""
       in
       Format.fprintf ppf
         "  reconciliation: OK — slot series matches final totals exactly%s@,"
         note
   | Error msg -> Format.fprintf ppf "  reconciliation: FAILED — %s@," msg);
  Format.fprintf ppf "@]"

let pp ppf runs =
  match runs with
  | [] -> Format.fprintf ppf "no sim.run spans in this trace@."
  | _ ->
      Format.fprintf ppf "%d run%s traced@." (List.length runs)
        (if List.length runs = 1 then "" else "s");
      List.iter (fun r -> Format.fprintf ppf "%a@." pp_run r) runs

(* --- machine-readable output --- *)

let tally_to_json t =
  Json.Obj
    [ ("solves", Json.Int t.solves);
      ("pivots", Json.Int t.pivots);
      ("phase1_pivots", Json.Int t.phase1_pivots);
      ("phase2_pivots", Json.Int t.phase2_pivots);
      ("dual_pivots", Json.Int t.dual_pivots);
      ("refactorizations", Json.Int t.refactorizations);
      ("repair_rounds", Json.Int t.repair_rounds);
      ("solve_ms", Json.Float t.solve_ms);
      ("warm_cold", Json.Int t.warm_cold);
      ("warm_accepted", Json.Int t.warm_accepted);
      ("dual_reopts", Json.Int t.dual_reopts);
      ("warm_repaired", Json.Int t.warm_repaired);
      ("warm_fell_back", Json.Int t.warm_fell_back) ]

let opt f = function None -> Json.Null | Some v -> f v

let row_to_json r =
  Json.Obj
    [ ("slot", Json.Int r.slot);
      ("arrivals", Json.Int r.arrivals);
      ("admitted", Json.Int r.admitted);
      ("rejected", Json.Int r.rejected);
      ("admitted_bytes", Json.Float r.admitted_bytes);
      ("stored_bytes", Json.Float r.stored_bytes);
      ("replans", Json.Int r.replans);
      ("stranded_bytes", Json.Float r.stranded_bytes);
      ("lost_bytes", Json.Float r.lost_bytes);
      ("cost", Json.Float r.cost);
      ("cost_delta", Json.Float r.cost_delta);
      ("sched_ms", Json.Float r.sched_ms);
      ("lp", tally_to_json r.lp) ]

let run_to_json run =
  let t = run_tally run in
  Json.Obj
    [ ("scheduler", Json.Str run.scheduler);
      ("slots", Json.Int run.slots);
      ("final_cost", opt (fun c -> Json.Float c) run.final_cost);
      ("total_files", opt (fun n -> Json.Int n) run.total_files);
      ("rejected_files", opt (fun n -> Json.Int n) run.rejected_files);
      ("lost_files", opt (fun n -> Json.Int n) run.lost_files);
      ("replanned_files", opt (fun n -> Json.Int n) run.replanned_files);
      ("offered_volume", opt (fun v -> Json.Float v) run.offered_volume);
      ("delivered_volume", opt (fun v -> Json.Float v) run.delivered_volume);
      ("rejected_volume", opt (fun v -> Json.Float v) run.rejected_volume);
      ("stranded_volume", opt (fun v -> Json.Float v) run.stranded_volume);
      ("recovered_volume", opt (fun v -> Json.Float v) run.recovered_volume);
      ("lost_volume", opt (fun v -> Json.Float v) run.lost_volume);
      ("fault_reveals", Json.Int run.fault_reveals);
      ("fault_strands", Json.Int run.fault_strands);
      ("fault_losses", Json.Int run.fault_losses);
      ("sched_ms",
       Json.Float
         (List.fold_left (fun acc r -> acc +. r.sched_ms) 0. run.rows));
      ("totals", tally_to_json t);
      ("reconciliation",
       match reconcile run with
       | Ok () -> Json.Str "ok"
       | Error msg -> Json.Str msg);
      ("rows", Json.List (List.map row_to_json run.rows)) ]

let runs_to_json runs =
  Json.Obj [ ("runs", Json.List (List.map run_to_json runs)) ]

(* --- the trace-summary entry point --- *)

let write_chrome events path =
  let doc = Obs.Profile.chrome events in
  let s = Json.to_string doc in
  (* Self-check before writing: the export must itself be one valid JSON
     document, or chrome://tracing will reject it with no diagnostics. *)
  match Json.parse s with
  | Error msg ->
      Error (Printf.sprintf "chrome export failed its own parse: %s" msg)
  | Ok _ -> (
      match open_out path with
      | exception Sys_error msg -> Error msg
      | oc ->
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              output_string oc s;
              output_char oc '\n');
          Ok ())

let summarize_file ?(json = false) ?(profile = false) ?chrome ?(top = 20) path
    =
  match Reader.read_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok events ->
      let runs = of_events events in
      let prof = if profile then Some (Obs.Profile.of_events events) else None in
      (if json then begin
         let fields = [ ("runs", Json.List (List.map run_to_json runs)) ] in
         let fields =
           match prof with
           | Some p -> fields @ [ ("profile", Obs.Profile.to_json p) ]
           | None -> fields
         in
         print_endline (Json.to_string (Json.Obj fields))
       end
       else begin
         Format.printf "%a" pp runs;
         Option.iter (fun p -> Format.printf "%a" (Obs.Profile.pp ~top) p) prof
       end);
      (* Reconciliation failures are printed per run above; surface them
         in the exit status too, so CI smoke runs actually gate on them. *)
      let failures = ref [] in
      let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
      List.iter
        (fun r ->
          match reconcile r with
          | Ok () -> ()
          | Error msg -> fail "%s: reconciliation failed: %s" r.scheduler msg)
        runs;
      (match prof with
       | Some p -> (
           match Obs.Profile.balance p with
           | Ok () -> ()
           | Error msg -> fail "profile does not balance: %s" msg)
       | None -> ());
      (match chrome with
       | None -> ()
       | Some out -> (
           match write_chrome events out with
           | Ok () -> Format.printf "chrome trace written to %s@." out
           | Error msg -> fail "chrome export to %s failed: %s" out msg));
      match !failures with
      | [] -> Ok ()
      | fs ->
          Error
            (Printf.sprintf "%s: %s" path (String.concat "; " (List.rev fs)))
