let print_summary ppf (results : Experiment.results) =
  let s = results.Experiment.setting in
  Format.fprintf ppf "@[<v>== %s ==@," s.Experiment.label;
  Format.fprintf ppf
    "   %d datacenters, capacity %g GB/interval, files/slot <= %d, deadlines <= %d, %d slots x %d runs@,"
    s.Experiment.nodes s.Experiment.capacity s.Experiment.files_max
    s.Experiment.max_deadline s.Experiment.slots s.Experiment.runs;
  let with_faults = not (Faults.is_empty s.Experiment.faults) in
  if with_faults then
    Format.fprintf ppf "   faults: %s@,"
      (Faults.to_string s.Experiment.faults);
  Format.fprintf ppf "   %-12s %14s %14s %9s" "scheduler" "avg cost/t"
    "95% CI (+/-)" "rejected";
  if with_faults then
    Format.fprintf ppf " %12s %12s %12s" "delivered" "recovered" "lost";
  Format.fprintf ppf "@,";
  List.iter
    (fun (sum : Experiment.scheduler_summary) ->
      Format.fprintf ppf "   %-12s %14.1f %14.1f %9d"
        sum.Experiment.scheduler sum.Experiment.mean_cost sum.Experiment.ci95
        sum.Experiment.rejected;
      if with_faults then
        Format.fprintf ppf " %12.1f %12.1f %12.1f"
          sum.Experiment.delivered_volume sum.Experiment.recovered_volume
          sum.Experiment.lost_volume;
      Format.fprintf ppf "@,")
    results.Experiment.summaries;
  Format.fprintf ppf "@]"

let print_series ?(every = 5) ppf (results : Experiment.results) =
  let summaries = results.Experiment.summaries in
  Format.fprintf ppf "@[<v>   slot";
  List.iter
    (fun (s : Experiment.scheduler_summary) ->
      Format.fprintf ppf " %12s" s.Experiment.scheduler)
    summaries;
  Format.fprintf ppf "@,";
  let slots = results.Experiment.setting.Experiment.slots in
  let t = ref (every - 1) in
  while !t < slots do
    Format.fprintf ppf "   %4d" (!t + 1);
    List.iter
      (fun (s : Experiment.scheduler_summary) ->
        Format.fprintf ppf " %12.1f" s.Experiment.mean_series.(!t))
      summaries;
    Format.fprintf ppf "@,";
    t := !t + every
  done;
  Format.fprintf ppf "@]"

let print_frontier ppf (results : Experiment.results) =
  let summaries = results.Experiment.summaries in
  (* On the frontier iff no other scheduler is at least as good on both
     axes and strictly better on one. Exact ties survive: neither
     dominates the other, so both rows keep their star. *)
  let dominated (s : Experiment.scheduler_summary) =
    List.exists
      (fun (o : Experiment.scheduler_summary) ->
        o != s
        && o.Experiment.mean_cost <= s.Experiment.mean_cost
        && o.Experiment.mean_decision_ms <= s.Experiment.mean_decision_ms
        && (o.Experiment.mean_cost < s.Experiment.mean_cost
           || o.Experiment.mean_decision_ms < s.Experiment.mean_decision_ms))
      summaries
  in
  let by_latency =
    List.sort
      (fun (a : Experiment.scheduler_summary) b ->
        compare a.Experiment.mean_decision_ms b.Experiment.mean_decision_ms)
      summaries
  in
  Format.fprintf ppf
    "@[<v>   cost-vs-latency frontier (fastest first, * = undominated):@,";
  Format.fprintf ppf "   %-16s %12s %14s %9s@," "scheduler" "ms/file"
    "avg cost/t" "rejected";
  List.iter
    (fun (s : Experiment.scheduler_summary) ->
      Format.fprintf ppf "   %-16s %12.3f %14.1f %9d%s@,"
        s.Experiment.scheduler s.Experiment.mean_decision_ms
        s.Experiment.mean_cost s.Experiment.rejected
        (if dominated s then "" else "  *"))
    by_latency;
  Format.fprintf ppf "@]"

let print_utilization ?(top = 5) ppf ~base ~(outcome : Engine.outcome) =
  let module Graph = Netgraph.Graph in
  (* Rank links by total carried volume. *)
  let ranked =
    Graph.fold_arcs base ~init:[] ~f:(fun acc a ->
        let volumes = outcome.Engine.link_volumes.(a.Graph.id) in
        (Array.fold_left ( +. ) 0. volumes, a) :: acc)
    |> List.sort (fun (x, _) (y, _) -> compare y x)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Format.fprintf ppf "@[<v>   busiest links ('.' idle, 1-9 utilization decile, '#' full):@,";
  List.iter
    (fun (_, (a : Graph.arc)) ->
      let volumes = outcome.Engine.link_volumes.(a.Graph.id) in
      let cells =
        String.init (Array.length volumes) (fun t ->
            if a.Graph.capacity = infinity || a.Graph.capacity <= 0. then
              if volumes.(t) > 1e-9 then '+' else '.'
            else begin
              let u = volumes.(t) /. a.Graph.capacity in
              if u <= 1e-9 then '.'
              else if u >= 0.95 then '#'
              else Char.chr (Char.code '0' + max 1 (int_of_float (u *. 10.)))
            end)
      in
      Format.fprintf ppf "   %2d->%-2d (price %4.1f, charged %6.1f) %s@,"
        a.Graph.src a.Graph.dst a.Graph.cost
        outcome.Engine.final_charged.(a.Graph.id)
        cells)
    (take top ranked);
  Format.fprintf ppf "@]"

let print_comparison ppf ~baseline ~contender (results : Experiment.results) =
  match
    ( Experiment.find_summary results baseline,
      Experiment.find_summary results contender )
  with
  | None, _ | _, None ->
      Format.fprintf ppf "   (missing scheduler for comparison)@,"
  | Some b, Some c ->
      let ratio = c.Experiment.mean_cost /. b.Experiment.mean_cost in
      let verdict =
        if ratio < 0.98 then "wins"
        else if ratio > 1.02 then "loses"
        else "ties"
      in
      Format.fprintf ppf "   %s %s against %s: cost ratio %.3f@," contender
        verdict baseline ratio
