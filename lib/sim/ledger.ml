module Graph = Netgraph.Graph

type t = {
  base : Graph.t;
  (* volumes.(link) is a growable slot -> volume array. *)
  mutable volumes : float array array;
  mutable charged : float array;
  mutable max_slot : int;
  mutable voided : float;
}

let create ~base =
  { base;
    volumes = Array.make (Graph.num_arcs base) [||];
    charged = Array.make (Graph.num_arcs base) 0.;
    max_slot = -1;
    voided = 0. }

let base t = t.base

let check_link t link =
  if link < 0 || link >= Graph.num_arcs t.base then
    invalid_arg "Ledger: unknown link"

let occupied t ~link ~slot =
  check_link t link;
  if slot < 0 then invalid_arg "Ledger: negative slot";
  let vols = t.volumes.(link) in
  if slot < Array.length vols then vols.(slot) else 0.

let residual t ~link ~slot =
  let a = Graph.arc t.base link in
  max 0. (a.Graph.capacity -. occupied t ~link ~slot)

let commit t ~link ~slot volume =
  check_link t link;
  if slot < 0 then invalid_arg "Ledger.commit: negative slot";
  if volume < 0. || Float.is_nan volume then
    invalid_arg "Ledger.commit: negative volume";
  if volume > 0. then begin
    let a = Graph.arc t.base link in
    let current = occupied t ~link ~slot in
    if current +. volume > a.Graph.capacity +. 1e-6 then
      failwith
        (Printf.sprintf
           "Ledger.commit: link %d slot %d: %g + %g exceeds capacity %g" link
           slot current volume a.Graph.capacity);
    let vols = t.volumes.(link) in
    let vols =
      if slot < Array.length vols then vols
      else begin
        let vols' = Array.make (max (slot + 1) (2 * Array.length vols)) 0. in
        Array.blit vols 0 vols' 0 (Array.length vols);
        t.volumes.(link) <- vols';
        vols'
      end
    in
    vols.(slot) <- vols.(slot) +. volume;
    if vols.(slot) > t.charged.(link) then t.charged.(link) <- vols.(slot);
    if slot > t.max_slot then t.max_slot <- slot
  end

let commit_plan t plan =
  List.iter
    (fun tx ->
      commit t ~link:tx.Postcard.Plan.link ~slot:tx.Postcard.Plan.slot
        tx.Postcard.Plan.volume)
    plan.Postcard.Plan.transmissions

let void t ~link ~slot volume =
  check_link t link;
  if slot < 0 then invalid_arg "Ledger.void: negative slot";
  if volume < 0. || Float.is_nan volume then
    invalid_arg "Ledger.void: negative volume";
  if volume > 0. then begin
    let vols = t.volumes.(link) in
    if slot >= Array.length vols || vols.(slot) < volume -. 1e-6 then
      failwith
        (Printf.sprintf
           "Ledger.void: link %d slot %d: removing %g exceeds booked %g" link
           slot volume
           (if slot < Array.length vols then vols.(slot) else 0.));
    vols.(slot) <- Float.max 0. (vols.(slot) -. volume);
    t.voided <- t.voided +. volume;
    (* The charge is the peak of what is (still) booked; un-booking a
       future transmission can lower it. *)
    let peak = ref 0. in
    Array.iter (fun v -> if v > !peak then peak := v) vols;
    t.charged.(link) <- !peak
  end

let voided_volume t = t.voided

let charged t ~link =
  check_link t link;
  t.charged.(link)

let charged_all t = Array.copy t.charged

let cost_per_interval t =
  Graph.fold_arcs t.base ~init:0. ~f:(fun acc a ->
      acc +. (a.Graph.cost *. t.charged.(a.Graph.id)))

let volumes_through t ~last_slot =
  if last_slot < 0 then invalid_arg "Ledger.volumes_through: negative slot";
  Array.init
    (Graph.num_arcs t.base)
    (fun link ->
      Array.init (last_slot + 1) (fun slot -> occupied t ~link ~slot))

let max_booked_slot t = t.max_slot
