type setting = {
  label : string;
  nodes : int;
  capacity : float;
  cost_lo : float;
  cost_hi : float;
  files_max : int;
  size_max : float;
  max_deadline : int;
  uniform_deadlines : bool;
  slots : int;
  runs : int;
  seed : int;
  faults : Faults.scenario;
  script : Postcard.File.t list option;
}

let paper_figure n =
  let base =
    { label = "";
      nodes = 20;
      capacity = 100.;
      cost_lo = 1.;
      cost_hi = 10.;
      files_max = 20;
      size_max = 100.;
      max_deadline = 3;
      uniform_deadlines = true;
      slots = 100;
      runs = 10;
      seed = 42;
      faults = Faults.empty;
      script = None }
  in
  match n with
  | 4 -> { base with label = "fig4: c=100 GB, max T=3" }
  | 5 -> { base with label = "fig5: c=100 GB, max T=8"; max_deadline = 8 }
  | 6 -> { base with label = "fig6: c=30 GB, max T=3"; capacity = 30. }
  | 7 ->
      { base with
        label = "fig7: c=30 GB, max T=8";
        capacity = 30.;
        max_deadline = 8 }
  | _ -> invalid_arg "Experiment.paper_figure: figures 4-7 only"

let scaled_figure n =
  (* The qualitative regime is set by the per-file pressure F_k / (T_k c)
     — whether a single transfer saturates its cheapest links — so the
     scaled settings keep the paper's capacities and sizes and shrink only
     the fleet, the arrival rate and the horizon. *)
  let base = paper_figure n in
  { base with
    label = base.label ^ " (scaled)";
    nodes = 8;
    files_max = 6;
    slots = 40;
    runs = 5 }

let custom_default =
  { label = "custom";
    nodes = 8;
    capacity = 35.;
    cost_lo = 1.;
    cost_hi = 10.;
    files_max = 6;
    size_max = 100.;
    max_deadline = 3;
    uniform_deadlines = true;
    slots = 40;
    runs = 5;
    seed = 42;
    faults = Faults.empty;
    script = None }

let with_overrides ?label ?nodes ?capacity ?cost_lo ?cost_hi ?files_max
    ?size_max ?max_deadline ?uniform_deadlines ?slots ?runs ?seed ?faults
    ?script setting =
  let ov cur = function None -> cur | Some v -> v in
  { label = ov setting.label label;
    nodes = ov setting.nodes nodes;
    capacity = ov setting.capacity capacity;
    cost_lo = ov setting.cost_lo cost_lo;
    cost_hi = ov setting.cost_hi cost_hi;
    files_max = ov setting.files_max files_max;
    size_max = ov setting.size_max size_max;
    max_deadline = ov setting.max_deadline max_deadline;
    uniform_deadlines = ov setting.uniform_deadlines uniform_deadlines;
    slots = ov setting.slots slots;
    runs = ov setting.runs runs;
    seed = ov setting.seed seed;
    faults = ov setting.faults faults;
    script = ov setting.script script }

type scheduler_summary = {
  scheduler : string;
  mean_cost : float;
  ci95 : float;
  run_costs : float array;
  mean_series : float array;
  rejected : int;
  delivered_volume : float;
  recovered_volume : float;
  lost_volume : float;
  offered_files : int;
  mean_decision_ms : float;
}

type results = {
  setting : setting;
  summaries : scheduler_summary list;
}

type scheduler_factory = unit -> Postcard.Scheduler.t

let cells setting ~schedulers = setting.runs * List.length schedulers

(* The (run, scheduler) grid is embarrassingly parallel: every cell draws
   its topology and workload from RNGs seeded only by (setting, run), and
   instantiates its own scheduler value from the factory, so no mutable
   state crosses cell boundaries. The topology is re-derived per cell
   (identical within a run by construction — paired comparison) rather
   than shared, to keep cells free of cross-domain aliasing. The reduce
   is a plain ordered fold on the submitting domain, replaying the exact
   float-operation order of the serial runner, which is why a parallel
   sweep is bit-identical to a serial one. *)
let run_setting ?(progress = fun ~run:_ ~scheduler:_ -> ()) ?pool setting
    ~schedulers =
  if setting.runs < 1 then invalid_arg "Experiment.run_setting: runs < 1";
  if schedulers = [] then invalid_arg "Experiment.run_setting: no schedulers";
  let factories = Array.of_list schedulers in
  let n_sched = Array.length factories in
  let names =
    Array.map (fun mk -> Postcard.Scheduler.name (mk ())) factories
  in
  let spec =
    let base_spec =
      { (Workload.paper_spec ~nodes:setting.nodes
           ~files_max:setting.files_max ~max_deadline:setting.max_deadline)
        with
        Workload.size_max = setting.size_max }
    in
    if setting.uniform_deadlines then
      { base_spec with Workload.urgent_size_cap = Some setting.capacity }
    else
      { base_spec with
        Workload.deadlines = Workload.Fixed_deadline setting.max_deadline }
  in
  (* Run-major cell order: cell (run, s) sits at index run * n_sched + s,
     matching the serial runner's loop nest. *)
  let grid =
    Array.init (setting.runs * n_sched) (fun i -> (i / n_sched, i mod n_sched))
  in
  let run_cell (run, s) =
    progress ~run ~scheduler:names.(s);
    (* One topology and one workload stream per run, shared by all
       schedulers (paired comparison): both RNGs are seeded by run only. *)
    let topo_rng = Prelude.Rng.of_int ((setting.seed * 7919) + run) in
    let base =
      Netgraph.Topology.complete ~n:setting.nodes ~rng:topo_rng
        ~cost_lo:setting.cost_lo ~cost_hi:setting.cost_hi
        ~capacity:setting.capacity
    in
    let scheduler = factories.(s) () in
    let workload =
      (* A script replaces the random stream in every run (paired
         comparison degenerates to replaying the same instance); the
         topology still derives from (seed, run) as usual, so run 0
         reproduces the network a capturing serve session used. *)
      match setting.script with
      | Some files -> Workload.scripted files
      | None ->
          Workload.create spec
            (Prelude.Rng.of_int ((setting.seed * 104729) + run))
    in
    let outcome =
      Engine.run
        (Engine.make ~base ~scheduler ~workload ~slots:setting.slots
           ~faults:setting.faults ())
    in
    (Engine.average_cost outcome, outcome)
  in
  let cell_results =
    match pool with
    | Some pool when Exec.Pool.size pool > 1 && Array.length grid > 1 ->
        if Obs.Trace.enabled () then begin
          (* Buffer each cell's trace events in its worker domain and
             merge them in cell order, so the stream is deterministic and
             every run's spans stay contiguous for the analyzer. *)
          let buffered =
            Exec.Pool.map pool
              ~f:(fun _ cell -> Obs.Trace.with_buffer (fun () -> run_cell cell))
              grid
          in
          Array.map
            (fun (r, buf) ->
              Obs.Trace.flush_buffer buf;
              r)
            buffered
        end
        else Exec.Pool.map pool ~f:(fun _ cell -> run_cell cell) grid
    | _ -> Array.map run_cell grid
  in
  let summaries =
    List.init n_sched (fun s ->
        let costs = Array.make setting.runs 0. in
        let series_acc = ref [] in
        let rejected = ref 0 in
        let delivered = ref 0. and recovered = ref 0. and lost = ref 0. in
        let offered = ref 0 and sched_ms = ref 0. in
        for run = 0 to setting.runs - 1 do
          let cost, outcome = cell_results.((run * n_sched) + s) in
          costs.(run) <- cost;
          series_acc := outcome.Engine.cost_series :: !series_acc;
          rejected := !rejected + outcome.Engine.rejected_files;
          delivered := !delivered +. outcome.Engine.delivered_volume;
          recovered := !recovered +. outcome.Engine.recovered_volume;
          lost := !lost +. outcome.Engine.lost_volume;
          offered := !offered + outcome.Engine.total_files;
          sched_ms := !sched_ms +. outcome.Engine.sched_ms_total
        done;
        let mean_cost, ci95 = Prelude.Stats.confidence_95 costs in
        let mean_series =
          Array.init setting.slots (fun t ->
              let acc = ref 0. in
              List.iter (fun s -> acc := !acc +. s.(t)) !series_acc;
              !acc /. float_of_int setting.runs)
        in
        { scheduler = names.(s);
          mean_cost;
          ci95;
          run_costs = costs;
          mean_series;
          rejected = !rejected;
          delivered_volume = !delivered;
          recovered_volume = !recovered;
          lost_volume = !lost;
          offered_files = !offered;
          mean_decision_ms = !sched_ms /. float_of_int (max 1 !offered) })
  in
  { setting; summaries }

let find_summary results name =
  List.find_opt (fun s -> s.scheduler = name) results.summaries

let find_summary_exn results name =
  match find_summary results name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf
           "Experiment.find_summary_exn: no summary for %S (available: %s)"
           name
           (String.concat ", "
              (List.map (fun s -> s.scheduler) results.summaries)))
