module Graph = Netgraph.Graph
module Scheduler = Postcard.Scheduler

let log_src = Logs.Src.create "sim.engine" ~doc:"Simulation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  cost_series : float array;
  final_charged : float array;
  total_files : int;
  rejected_files : int;
  delivered_volume : float;
  link_volumes : float array array;
}

exception Invalid_plan of string

(* Engine-level metric series; O(1) no-ops while the registry is off. *)
let m_runs = Obs.Metrics.counter "sim.runs"
let m_slots = Obs.Metrics.counter "sim.slots"
let m_arrivals = Obs.Metrics.counter "sim.arrivals"
let m_rejected = Obs.Metrics.counter "sim.rejected"
let h_slot_ms = Obs.Metrics.histogram "sim.slot_ms"

let run ~base ~scheduler ~workload ~slots =
  if slots < 1 then invalid_arg "Engine.run: need at least one slot";
  (* Scheduler values may be reused across runs (Experiment does); drop
     any cross-epoch state such as a carried warm-start basis. *)
  scheduler.Scheduler.reset ();
  let tracing = Obs.Trace.enabled () in
  let run_span =
    if tracing then
      Obs.Trace.begin_span "sim.run"
        [ ("scheduler", Obs.Trace.Str scheduler.Scheduler.name);
          ("slots", Obs.Trace.Int slots) ]
    else Obs.Trace.null_span
  in
  Obs.Metrics.incr m_runs;
  let ledger = Ledger.create ~base in
  let cost_series = Array.make slots 0. in
  let total_files = ref 0 and rejected_files = ref 0 in
  let delivered_volume = ref 0. in
  (* Bytes parked on storage per slot, accumulated from the holdovers of
     every committed plan (a holdover booked now may cover a later slot). *)
  let stored_by_slot = Hashtbl.create 16 in
  for slot = 0 to slots - 1 do
    let slot_span =
      if tracing then
        Obs.Trace.begin_span "sim.slot" [ ("slot", Obs.Trace.Int slot) ]
      else Obs.Trace.null_span
    in
    let cost_before = if tracing then Ledger.cost_per_interval ledger else 0. in
    let charged_before = if tracing then Ledger.charged_all ledger else [||] in
    let files = Workload.arrivals workload ~slot in
    total_files := !total_files + List.length files;
    let ctx =
      { Scheduler.base;
        epoch = slot;
        period = slots;
        charged = Ledger.charged_all ledger;
        residual = (fun ~link ~slot -> Ledger.residual ledger ~link ~slot);
        occupied = (fun ~link ~slot -> Ledger.occupied ledger ~link ~slot) }
    in
    let t0 = Obs.Trace.now_ms () in
    let { Scheduler.plan; accepted; rejected } =
      scheduler.Scheduler.schedule ctx files
    in
    let sched_ms = Obs.Trace.now_ms () -. t0 in
    rejected_files := !rejected_files + List.length rejected;
    if rejected <> [] then
      Log.info (fun m ->
          m "slot %d: %s rejected %d of %d files" slot
            scheduler.Scheduler.name (List.length rejected) (List.length files));
    let capacity ~link ~slot = Ledger.residual ledger ~link ~slot in
    let check =
      if scheduler.Scheduler.fluid then
        Postcard.Plan.validate_capacity ~base ~capacity plan
      else Postcard.Plan.validate ~base ~files:accepted ~capacity plan
    in
    (match check with
     | Ok () -> ()
     | Error msg ->
         raise
           (Invalid_plan
              (Printf.sprintf "slot %d, scheduler %s: %s" slot
                 scheduler.Scheduler.name msg)));
    Ledger.commit_plan ledger plan;
    List.iter (fun f -> delivered_volume := !delivered_volume +. f.Postcard.File.size) accepted;
    cost_series.(slot) <- Ledger.cost_per_interval ledger;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_slots;
      Obs.Metrics.add m_arrivals (List.length files);
      Obs.Metrics.add m_rejected (List.length rejected);
      Obs.Metrics.observe h_slot_ms sched_ms
    end;
    if tracing then begin
      List.iter
        (fun h ->
          let cur =
            Option.value ~default:0.
              (Hashtbl.find_opt stored_by_slot h.Postcard.Plan.h_slot)
          in
          Hashtbl.replace stored_by_slot h.Postcard.Plan.h_slot
            (cur +. h.Postcard.Plan.h_volume))
        plan.Postcard.Plan.holdovers;
      let charged_after = Ledger.charged_all ledger in
      let charged_delta =
        Array.init (Array.length charged_after) (fun l ->
            charged_after.(l) -. charged_before.(l))
      in
      let admitted_bytes =
        List.fold_left (fun acc f -> acc +. f.Postcard.File.size) 0. accepted
      in
      let stored_bytes =
        Option.value ~default:0. (Hashtbl.find_opt stored_by_slot slot)
      in
      Obs.Trace.end_span slot_span
        [ ("arrivals", Obs.Trace.Int (List.length files));
          ("admitted", Obs.Trace.Int (List.length accepted));
          ("rejected", Obs.Trace.Int (List.length rejected));
          ("admitted_bytes", Obs.Trace.Float admitted_bytes);
          ("stored_bytes", Obs.Trace.Float stored_bytes);
          ("cost", Obs.Trace.Float cost_series.(slot));
          ("cost_delta", Obs.Trace.Float (cost_series.(slot) -. cost_before));
          ("charged", Obs.Trace.Floats charged_after);
          ("charged_delta", Obs.Trace.Floats charged_delta);
          ("sched_ms", Obs.Trace.Float sched_ms) ]
    end
  done;
  let last_slot = max (slots - 1) (Ledger.max_booked_slot ledger) in
  let outcome =
    { cost_series;
      final_charged = Ledger.charged_all ledger;
      total_files = !total_files;
      rejected_files = !rejected_files;
      delivered_volume = !delivered_volume;
      link_volumes = Ledger.volumes_through ledger ~last_slot }
  in
  if tracing then
    Obs.Trace.end_span run_span
      [ ("total_files", Obs.Trace.Int outcome.total_files);
        ("rejected_files", Obs.Trace.Int outcome.rejected_files);
        ("delivered_volume", Obs.Trace.Float outcome.delivered_volume);
        ("final_cost", Obs.Trace.Float cost_series.(slots - 1));
        ("final_charged", Obs.Trace.Floats outcome.final_charged) ];
  outcome

let average_cost outcome = Prelude.Stats.mean outcome.cost_series

let evaluate_cost outcome ~scheme ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. (a.Graph.cost *. charged));
  !acc

let evaluate_bill outcome ~scheme ~cost_of_link ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. Postcard.Charging.cost (cost_of_link a.Graph.id) charged);
  !acc
