module Graph = Netgraph.Graph
module Scheduler = Postcard.Scheduler
module File = Postcard.File

let log_src = Logs.Src.create "sim.engine" ~doc:"Simulation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let eps = 1e-9

type config = {
  base : Graph.t;
  scheduler : Scheduler.t;
  workload : Workload.t;
  slots : int;
  faults : Faults.scenario;
}

let make ~base ~scheduler ~workload ~slots ?(faults = Faults.empty) () =
  { base; scheduler; workload; slots; faults }

type outcome = {
  cost_series : float array;
  final_charged : float array;
  total_files : int;
  rejected_files : int;
  rejected_ids : File.id list;
  delivered_volume : float;
  offered_volume : float;
  rejected_volume : float;
  stranded_volume : float;
  recovered_volume : float;
  lost_volume : float;
  lost_files : int;
  replanned_files : int;
  link_volumes : float array array;
}

exception Invalid_plan of string

(* Engine-level metric series; O(1) no-ops while the registry is off. *)
let m_runs = Obs.Metrics.counter "sim.runs"
let m_slots = Obs.Metrics.counter "sim.slots"
let m_arrivals = Obs.Metrics.counter "sim.arrivals"
let m_rejected = Obs.Metrics.counter "sim.rejected"
let m_replans = Obs.Metrics.counter "sched.replan"
let m_stranded = Obs.Metrics.counter "fault.stranded_files"
let m_lost = Obs.Metrics.counter "fault.lost_files"
let h_slot_ms = Obs.Metrics.histogram "sim.slot_ms"

(* One admission of a file: the file as offered (a re-offer carries the
   remaining size and shortened deadline) plus the transmissions its plan
   booked. Tracked only under an active fault scenario, newest first, so
   stranding can void the remaining plan and evict youngest-first. *)
type flight = {
  ffile : File.t;
  ftxs : (int * int * float) list;  (* (link, slot, volume) *)
}

let run cfg =
  let { base; scheduler; workload; slots; faults } = cfg in
  if slots < 1 then invalid_arg "Engine.run: need at least one slot";
  let fstate =
    match Faults.compile faults ~base with
    | Ok t -> t
    | Error msg -> invalid_arg (Printf.sprintf "Engine.run: %s" msg)
  in
  let faulty = Faults.active fstate in
  (* Scheduler values may be reused across runs (Experiment does); drop
     any cross-epoch state such as a carried warm-start basis. *)
  scheduler.Scheduler.reset ();
  let tracing = Obs.Trace.enabled () in
  let run_span =
    if tracing then
      Obs.Trace.begin_span "sim.run"
        [ ("scheduler", Obs.Trace.Str scheduler.Scheduler.name);
          ("slots", Obs.Trace.Int slots);
          ("faults", Obs.Trace.Str (Faults.to_string faults)) ]
    else Obs.Trace.null_span
  in
  Obs.Metrics.incr m_runs;
  let ledger = Ledger.create ~base in
  let cost_series = Array.make slots 0. in
  let total_files = ref 0 and rejected_files = ref 0 in
  let rejected_ids = ref [] in
  let delivered_volume = ref 0. and offered_volume = ref 0. in
  let rejected_volume = ref 0. in
  let stranded_volume = ref 0. and recovered_volume = ref 0. in
  let lost_volume = ref 0. in
  let lost_files = ref 0 and replanned_files = ref 0 in
  (* In-flight admissions, newest first; only maintained when faulty. *)
  let flights = ref [] in
  (* Bytes parked on storage per slot, accumulated from the holdovers of
     every committed plan (a holdover booked now may cover a later slot). *)
  let stored_by_slot = Hashtbl.create 16 in
  for slot = 0 to slots - 1 do
    let slot_span =
      if tracing then
        Obs.Trace.begin_span "sim.slot" [ ("slot", Obs.Trace.Int slot) ]
      else Obs.Trace.null_span
    in
    let cost_before = if tracing then Ledger.cost_per_interval ledger else 0. in
    let charged_before = if tracing then Ledger.charged_all ledger else [||] in
    (* --- Fault reveal: strand committed volume on newly dead cells. --- *)
    let reoffers = ref [] in
    let slot_stranded = ref 0. and slot_lost = ref 0. in
    if faulty then begin
      List.iter
        (fun ev ->
          Log.info (fun m ->
              m "slot %d: fault revealed: %a" slot Faults.pp_event ev);
          if tracing then
            Obs.Trace.point "fault.reveal"
              (("slot", Obs.Trace.Int slot) :: Faults.event_fields ev))
        (Faults.revealed_at fstate ~slot);
      let strand fl =
        flights := List.filter (fun x -> x != fl) !flights;
        let voided = ref 0. in
        List.iter
          (fun (l, s, v) ->
            if s >= slot && v > 0. then begin
              Ledger.void ledger ~link:l ~slot:s v;
              voided := !voided +. v
            end)
          fl.ftxs;
        (* Bytes that already reached the destination stay delivered; bytes
           in flight (at the source or parked at an intermediate hop) are
           retransmitted from the source. *)
        let delivered_past =
          List.fold_left
            (fun acc (l, s, v) ->
              if s >= slot then acc
              else
                let a = Graph.arc base l in
                if a.Graph.dst = fl.ffile.File.dst then acc +. v
                else if a.Graph.src = fl.ffile.File.dst then acc -. v
                else acc)
            0. fl.ftxs
        in
        let remaining =
          Float.max 0.
            (fl.ffile.File.size -. Float.max 0. delivered_past)
        in
        if remaining > eps then begin
          delivered_volume := !delivered_volume -. remaining;
          stranded_volume := !stranded_volume +. remaining;
          slot_stranded := !slot_stranded +. remaining;
          Obs.Metrics.incr m_stranded;
          if tracing then
            Obs.Trace.point "fault.strand"
              [ ("slot", Obs.Trace.Int slot);
                ("file", Obs.Trace.Int fl.ffile.File.id);
                ("stranded_bytes", Obs.Trace.Float remaining);
                ("voided_bytes", Obs.Trace.Float !voided) ];
          let deadline_left =
            fl.ffile.File.release + fl.ffile.File.deadline - slot
          in
          if deadline_left >= 1 then
            reoffers :=
              File.make ~id:fl.ffile.File.id ~src:fl.ffile.File.src
                ~dst:fl.ffile.File.dst ~size:remaining ~deadline:deadline_left
                ~release:slot
              :: !reoffers
          else begin
            (* Defensive: committed transmissions always lie inside the
               file's window, so a stranded file retains at least the
               current slot. *)
            lost_volume := !lost_volume +. remaining;
            slot_lost := !slot_lost +. remaining;
            incr lost_files;
            Obs.Metrics.incr m_lost;
            if tracing then
              Obs.Trace.point "fault.lost"
                [ ("slot", Obs.Trace.Int slot);
                  ("file", Obs.Trace.Int fl.ffile.File.id);
                  ("lost_bytes", Obs.Trace.Float remaining);
                  ("reason", Obs.Trace.Str "deadline") ]
          end
        end
      in
      List.iter
        (fun (link, s, f) ->
          let cap = (Graph.arc base link).Graph.capacity *. f in
          let overfull () =
            Ledger.occupied ledger ~link ~slot:s > cap +. eps
          in
          let victim () =
            List.find_opt
              (fun fl ->
                List.exists (fun (l, s', v) -> l = link && s' = s && v > eps)
                  fl.ftxs)
              !flights
          in
          let continue_ = ref (overfull ()) in
          while !continue_ do
            match victim () with
            | Some fl ->
                strand fl;
                continue_ := overfull ()
            | None ->
                Log.warn (fun m ->
                    m
                      "slot %d: link %d slot %d: %g booked above the fault \
                       cap %g is not attributable to any flight"
                      slot link s
                      (Ledger.occupied ledger ~link ~slot:s)
                      cap);
                continue_ := false
          done)
        (Faults.cells_revealed_at fstate ~slot)
    end;
    let reoffers = List.rev !reoffers in
    let replan_count = List.length reoffers in
    if replan_count > 0 then Obs.Metrics.add m_replans replan_count;
    let arrivals = Workload.arrivals workload ~slot in
    total_files := !total_files + List.length arrivals;
    List.iter
      (fun f -> offered_volume := !offered_volume +. f.File.size)
      arrivals;
    let files = reoffers @ arrivals in
    let is_replan =
      if replan_count = 0 then fun _ -> false
      else begin
        let ids = Hashtbl.create replan_count in
        List.iter (fun f -> Hashtbl.replace ids f.File.id ()) reoffers;
        fun (f : File.t) -> Hashtbl.mem ids f.File.id
      end
    in
    let eff_residual =
      if not faulty then fun ~link ~slot ->
        Ledger.residual ledger ~link ~slot
      else fun ~link ~slot:s ->
        let f = Faults.factor fstate ~asof:slot ~link ~slot:s in
        if f >= 1. then Ledger.residual ledger ~link ~slot:s
        else
          Float.max 0.
            (((Graph.arc base link).Graph.capacity *. f)
            -. Ledger.occupied ledger ~link ~slot:s)
    in
    let down =
      if not faulty then fun ~link:_ ~slot:_ -> false
      else fun ~link ~slot:s -> Faults.down fstate ~asof:slot ~link ~slot:s
    in
    let ctx =
      { Scheduler.base;
        epoch = slot;
        period = slots;
        charged = Ledger.charged_all ledger;
        residual = eff_residual;
        occupied = (fun ~link ~slot -> Ledger.occupied ledger ~link ~slot);
        down }
    in
    let t0 = Obs.Trace.now_ms () in
    let { Scheduler.plan; accepted; rejected } =
      scheduler.Scheduler.schedule ctx files
    in
    let sched_ms = Obs.Trace.now_ms () -. t0 in
    if rejected <> [] then
      Log.info (fun m ->
          m "slot %d: %s rejected %d of %d files" slot
            scheduler.Scheduler.name (List.length rejected) (List.length files));
    let check =
      if scheduler.Scheduler.fluid then
        Postcard.Plan.validate_capacity ~base ~capacity:eff_residual plan
      else Postcard.Plan.validate ~base ~files:accepted ~capacity:eff_residual plan
    in
    (match check with
     | Ok () -> ()
     | Error msg ->
         raise
           (Invalid_plan
              (Printf.sprintf "slot %d, scheduler %s: %s" slot
                 scheduler.Scheduler.name msg)));
    Ledger.commit_plan ledger plan;
    (* Admission accounting: an accepted re-offer is recovered volume; a
       rejected re-offer is lost (its original admission was already
       charged and partially flowed), while a rejected fresh arrival is an
       ordinary rejection. *)
    List.iter
      (fun (f : File.t) ->
        delivered_volume := !delivered_volume +. f.File.size;
        if is_replan f then begin
          recovered_volume := !recovered_volume +. f.File.size;
          incr replanned_files
        end)
      accepted;
    List.iter
      (fun (f : File.t) ->
        if is_replan f then begin
          lost_volume := !lost_volume +. f.File.size;
          slot_lost := !slot_lost +. f.File.size;
          incr lost_files;
          Obs.Metrics.incr m_lost;
          if tracing then
            Obs.Trace.point "fault.lost"
              [ ("slot", Obs.Trace.Int slot);
                ("file", Obs.Trace.Int f.File.id);
                ("lost_bytes", Obs.Trace.Float f.File.size);
                ("reason", Obs.Trace.Str "rejected") ]
        end
        else begin
          incr rejected_files;
          rejected_ids := f.File.id :: !rejected_ids;
          rejected_volume := !rejected_volume +. f.File.size
        end)
      rejected;
    if faulty && accepted <> [] then begin
      let by_file = Hashtbl.create 16 in
      List.iter
        (fun tx ->
          Hashtbl.add by_file tx.Postcard.Plan.file
            (tx.Postcard.Plan.link, tx.Postcard.Plan.slot,
             tx.Postcard.Plan.volume))
        plan.Postcard.Plan.transmissions;
      List.iter
        (fun (f : File.t) ->
          flights :=
            { ffile = f; ftxs = Hashtbl.find_all by_file f.File.id }
            :: !flights)
        accepted
    end;
    cost_series.(slot) <- Ledger.cost_per_interval ledger;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_slots;
      Obs.Metrics.add m_arrivals (List.length arrivals);
      Obs.Metrics.add m_rejected
        (List.length (List.filter (fun f -> not (is_replan f)) rejected));
      Obs.Metrics.observe h_slot_ms sched_ms
    end;
    if tracing then begin
      List.iter
        (fun h ->
          let cur =
            Option.value ~default:0.
              (Hashtbl.find_opt stored_by_slot h.Postcard.Plan.h_slot)
          in
          Hashtbl.replace stored_by_slot h.Postcard.Plan.h_slot
            (cur +. h.Postcard.Plan.h_volume))
        plan.Postcard.Plan.holdovers;
      let charged_after = Ledger.charged_all ledger in
      let charged_delta =
        Array.init (Array.length charged_after) (fun l ->
            charged_after.(l) -. charged_before.(l))
      in
      let admitted_bytes =
        List.fold_left (fun acc f -> acc +. f.File.size) 0. accepted
      in
      let stored_bytes =
        Option.value ~default:0. (Hashtbl.find_opt stored_by_slot slot)
      in
      Obs.Trace.end_span slot_span
        [ ("arrivals", Obs.Trace.Int (List.length arrivals));
          ("admitted", Obs.Trace.Int (List.length accepted));
          ("rejected", Obs.Trace.Int (List.length rejected));
          ("admitted_bytes", Obs.Trace.Float admitted_bytes);
          ("stored_bytes", Obs.Trace.Float stored_bytes);
          ("replans", Obs.Trace.Int replan_count);
          ("stranded_bytes", Obs.Trace.Float !slot_stranded);
          ("lost_bytes", Obs.Trace.Float !slot_lost);
          ("cost", Obs.Trace.Float cost_series.(slot));
          ("cost_delta", Obs.Trace.Float (cost_series.(slot) -. cost_before));
          ("charged", Obs.Trace.Floats charged_after);
          ("charged_delta", Obs.Trace.Floats charged_delta);
          ("sched_ms", Obs.Trace.Float sched_ms) ]
    end
  done;
  let last_slot = max (slots - 1) (Ledger.max_booked_slot ledger) in
  let outcome =
    { cost_series;
      final_charged = Ledger.charged_all ledger;
      total_files = !total_files;
      rejected_files = !rejected_files;
      rejected_ids = List.rev !rejected_ids;
      delivered_volume = !delivered_volume;
      offered_volume = !offered_volume;
      rejected_volume = !rejected_volume;
      stranded_volume = !stranded_volume;
      recovered_volume = !recovered_volume;
      lost_volume = !lost_volume;
      lost_files = !lost_files;
      replanned_files = !replanned_files;
      link_volumes = Ledger.volumes_through ledger ~last_slot }
  in
  if tracing then
    Obs.Trace.end_span run_span
      [ ("total_files", Obs.Trace.Int outcome.total_files);
        ("rejected_files", Obs.Trace.Int outcome.rejected_files);
        ("delivered_volume", Obs.Trace.Float outcome.delivered_volume);
        ("offered_volume", Obs.Trace.Float outcome.offered_volume);
        ("rejected_volume", Obs.Trace.Float outcome.rejected_volume);
        ("stranded_volume", Obs.Trace.Float outcome.stranded_volume);
        ("recovered_volume", Obs.Trace.Float outcome.recovered_volume);
        ("lost_volume", Obs.Trace.Float outcome.lost_volume);
        ("lost_files", Obs.Trace.Int outcome.lost_files);
        ("replanned_files", Obs.Trace.Int outcome.replanned_files);
        ("final_cost", Obs.Trace.Float cost_series.(slots - 1));
        ("final_charged", Obs.Trace.Floats outcome.final_charged) ];
  outcome

let average_cost outcome = Prelude.Stats.mean outcome.cost_series

let evaluate_cost outcome ~scheme ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. (a.Graph.cost *. charged));
  !acc

let evaluate_bill outcome ~scheme ~cost_of_link ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. Postcard.Charging.cost (cost_of_link a.Graph.id) charged);
  !acc
