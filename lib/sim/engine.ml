module Graph = Netgraph.Graph
module Scheduler = Postcard.Scheduler

let log_src = Logs.Src.create "sim.engine" ~doc:"Simulation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type outcome = {
  cost_series : float array;
  final_charged : float array;
  total_files : int;
  rejected_files : int;
  delivered_volume : float;
  link_volumes : float array array;
}

exception Invalid_plan of string

let run ~base ~scheduler ~workload ~slots =
  if slots < 1 then invalid_arg "Engine.run: need at least one slot";
  (* Scheduler values may be reused across runs (Experiment does); drop
     any cross-epoch state such as a carried warm-start basis. *)
  scheduler.Scheduler.reset ();
  let ledger = Ledger.create ~base in
  let cost_series = Array.make slots 0. in
  let total_files = ref 0 and rejected_files = ref 0 in
  let delivered_volume = ref 0. in
  for slot = 0 to slots - 1 do
    let files = Workload.arrivals workload ~slot in
    total_files := !total_files + List.length files;
    let ctx =
      { Scheduler.base;
        epoch = slot;
        period = slots;
        charged = Ledger.charged_all ledger;
        residual = (fun ~link ~slot -> Ledger.residual ledger ~link ~slot);
        occupied = (fun ~link ~slot -> Ledger.occupied ledger ~link ~slot) }
    in
    let { Scheduler.plan; accepted; rejected } =
      scheduler.Scheduler.schedule ctx files
    in
    rejected_files := !rejected_files + List.length rejected;
    if rejected <> [] then
      Log.info (fun m ->
          m "slot %d: %s rejected %d of %d files" slot
            scheduler.Scheduler.name (List.length rejected) (List.length files));
    let capacity ~link ~slot = Ledger.residual ledger ~link ~slot in
    let check =
      if scheduler.Scheduler.fluid then
        Postcard.Plan.validate_capacity ~base ~capacity plan
      else Postcard.Plan.validate ~base ~files:accepted ~capacity plan
    in
    (match check with
     | Ok () -> ()
     | Error msg ->
         raise
           (Invalid_plan
              (Printf.sprintf "slot %d, scheduler %s: %s" slot
                 scheduler.Scheduler.name msg)));
    Ledger.commit_plan ledger plan;
    List.iter (fun f -> delivered_volume := !delivered_volume +. f.Postcard.File.size) accepted;
    cost_series.(slot) <- Ledger.cost_per_interval ledger
  done;
  let last_slot = max (slots - 1) (Ledger.max_booked_slot ledger) in
  { cost_series;
    final_charged = Ledger.charged_all ledger;
    total_files = !total_files;
    rejected_files = !rejected_files;
    delivered_volume = !delivered_volume;
    link_volumes = Ledger.volumes_through ledger ~last_slot }

let average_cost outcome = Prelude.Stats.mean outcome.cost_series

let evaluate_cost outcome ~scheme ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. (a.Graph.cost *. charged));
  !acc

let evaluate_bill outcome ~scheme ~cost_of_link ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. Postcard.Charging.cost (cost_of_link a.Graph.id) charged);
  !acc
