module Graph = Netgraph.Graph
module Scheduler = Postcard.Scheduler
module Linkview = Postcard.Linkview
module File = Postcard.File

let log_src = Logs.Src.create "sim.engine" ~doc:"Simulation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let eps = 1e-9

type config = {
  base : Graph.t;
  scheduler : Scheduler.t;
  workload : Workload.t;
  slots : int;
  faults : Faults.scenario;
}

let make ~base ~scheduler ~workload ~slots ?(faults = Faults.empty) () =
  { base; scheduler; workload; slots; faults }

type outcome = {
  cost_series : float array;
  final_charged : float array;
  total_files : int;
  rejected_files : int;
  rejected_ids : File.id list;
  delivered_volume : float;
  offered_volume : float;
  rejected_volume : float;
  stranded_volume : float;
  recovered_volume : float;
  lost_volume : float;
  lost_files : int;
  replanned_files : int;
  sched_ms_total : float;
  link_volumes : float array array;
}

type slot_result = {
  slot : int;
  accepted : File.t list;
  rejected : File.t list;
  recovered : File.t list;
  lost : File.t list;
  stranded : File.t list;
  completed : File.id list;
  cost : float;
}

type status = {
  next_slot : int;
  slots_total : int;
  files_offered : int;
  files_rejected : int;
  files_lost : int;
  files_in_flight : int;
  bytes_offered : float;
  bytes_delivered : float;
  cost_per_interval : float;
}

exception Invalid_plan of string

(* Engine-level metric series; O(1) no-ops while the registry is off. *)
let m_runs = Obs.Metrics.counter "sim.runs"
let m_slots = Obs.Metrics.counter "sim.slots"
let m_arrivals = Obs.Metrics.counter "sim.arrivals"
let m_rejected = Obs.Metrics.counter "sim.rejected"
let m_replans = Obs.Metrics.counter "sched.replan"
let m_stranded = Obs.Metrics.counter "fault.stranded_files"
let m_lost = Obs.Metrics.counter "fault.lost_files"
let h_slot_ms = Obs.Metrics.histogram "sim.slot_ms"

(* One admission of a file: the file as offered (a re-offer carries the
   remaining size and shortened deadline) plus the transmissions its plan
   booked. Tracked only under an active fault scenario, newest first, so
   stranding can void the remaining plan and evict youngest-first. *)
type flight = {
  ffile : File.t;
  ftxs : (int * int * float) list;  (* (link, slot, volume) *)
}

(* Incremental engine state. [run] folds [step] over the workload and is
   bit-identical (outcome, traces, metrics) to the historical monolithic
   loop; a serving daemon instead feeds [step] arrivals as they are pushed
   by clients, one call per slot of the wall-clock. *)
type t = {
  cfg : config;
  fstate : Faults.t;
  faulty : bool;
  tracing : bool;
  run_span : Obs.Trace.span;
  ledger : Ledger.t;
  cost_series : float array;
  mutable next : int;  (* next slot to execute *)
  mutable drained : bool;
  mutable total_files : int;
  mutable rejected_files : int;
  mutable rejected_ids : File.id list;  (* newest first *)
  mutable delivered_volume : float;
  mutable offered_volume : float;
  mutable rejected_volume : float;
  mutable stranded_volume : float;
  mutable recovered_volume : float;
  mutable lost_volume : float;
  mutable lost_files : int;
  mutable replanned_files : int;
  (* In-flight admissions, newest first; only maintained when faulty. *)
  mutable flights : flight list;
  (* Cost and charged volumes as of the end of the last executed slot —
     the baseline for the next slot span's deltas. Offers commit volume
     between steps; reading the ledger at step start would attribute that
     volume to no slot and break the trace's telescoping sums. Maintained
     only while tracing. *)
  mutable last_cost : float;
  mutable last_charged : float array;
  (* Files admitted via [offer] since the last step, folded into the next
     slot span's admission counters. *)
  mutable pend_arrivals : int;
  mutable pend_admitted : int;
  mutable pend_rejected : int;
  mutable pend_admitted_bytes : float;
  (* Wall-clock spent inside the scheduler (batch solves and incremental
     admissions), for the cost-vs-latency frontier. *)
  mutable sched_ms_total : float;
  (* Bytes parked on storage per slot, accumulated from the holdovers of
     every committed plan (a holdover booked now may cover a later slot). *)
  stored_by_slot : (int, float) Hashtbl.t;
  (* Completion tracking for the serving path: last booked transmission
     slot per admitted file (removed on stranding and on completion), plus
     a slot-keyed index of candidates. Entries in [due_by_slot] may be
     stale after a strand; [finish_by_id] is authoritative. *)
  finish_by_id : (File.id, int) Hashtbl.t;
  due_by_slot : (int, File.id list) Hashtbl.t;
}

let init cfg =
  let { base; scheduler; workload = _; slots; faults } = cfg in
  if slots < 1 then invalid_arg "Engine.init: need at least one slot";
  let fstate =
    match Faults.compile faults ~base with
    | Ok t -> t
    | Error msg -> invalid_arg (Printf.sprintf "Engine.init: %s" msg)
  in
  let faulty = Faults.active fstate in
  (* Scheduler values may be reused across runs (Experiment does); drop
     any cross-epoch state such as a carried warm-start basis. *)
  Scheduler.reset scheduler;
  let tracing = Obs.Trace.enabled () in
  let run_span =
    if tracing then
      Obs.Trace.begin_span "sim.run"
        [ ("scheduler", Obs.Trace.Str (Scheduler.name scheduler));
          ("slots", Obs.Trace.Int slots);
          ("faults", Obs.Trace.Str (Faults.to_string faults)) ]
    else Obs.Trace.null_span
  in
  Obs.Metrics.incr m_runs;
  { cfg;
    fstate;
    faulty;
    tracing;
    run_span;
    ledger = Ledger.create ~base;
    cost_series = Array.make slots 0.;
    next = 0;
    drained = false;
    total_files = 0;
    rejected_files = 0;
    rejected_ids = [];
    delivered_volume = 0.;
    offered_volume = 0.;
    rejected_volume = 0.;
    stranded_volume = 0.;
    recovered_volume = 0.;
    lost_volume = 0.;
    lost_files = 0;
    replanned_files = 0;
    flights = [];
    last_cost = 0.;
    last_charged = Array.make (Graph.num_arcs base) 0.;
    pend_arrivals = 0;
    pend_admitted = 0;
    pend_rejected = 0;
    pend_admitted_bytes = 0.;
    sched_ms_total = 0.;
    stored_by_slot = Hashtbl.create 16;
    finish_by_id = Hashtbl.create 64;
    due_by_slot = Hashtbl.create 16 }

let next_slot t = t.next

let horizon t = t.cfg.slots

let finished t = t.next >= t.cfg.slots

(* Record the completion slot of a freshly admitted file: the last slot of
   its committed transmissions (files always carry volume, so an accepted
   file has at least one transmission; an empty plan completes in place). *)
let track_completion t ~slot ~(plan : Postcard.Plan.t) accepted =
  if accepted <> [] then begin
    let finish = Hashtbl.create 16 in
    List.iter
      (fun tx ->
        let cur =
          Option.value ~default:min_int
            (Hashtbl.find_opt finish tx.Postcard.Plan.file)
        in
        if tx.Postcard.Plan.slot > cur then
          Hashtbl.replace finish tx.Postcard.Plan.file tx.Postcard.Plan.slot)
      plan.Postcard.Plan.transmissions;
    List.iter
      (fun (f : File.t) ->
        let fs =
          match Hashtbl.find_opt finish f.File.id with
          | Some s -> s
          | None -> slot
        in
        Hashtbl.replace t.finish_by_id f.File.id fs;
        let cur =
          Option.value ~default:[] (Hashtbl.find_opt t.due_by_slot fs)
        in
        Hashtbl.replace t.due_by_slot fs (f.File.id :: cur))
      accepted
  end

(* Network state as the scheduler sees it at [slot]: ledger residuals with
   fault caps applied (as known at [slot]), behind one {!Linkview}. Also
   returns the raw residual function for plan validation. *)
let context_at t ~slot =
  let base = t.cfg.base in
  let ledger = t.ledger in
  let eff_residual =
    if not t.faulty then fun ~link ~slot -> Ledger.residual ledger ~link ~slot
    else fun ~link ~slot:s ->
      let f = Faults.factor t.fstate ~asof:slot ~link ~slot:s in
      if f >= 1. then Ledger.residual ledger ~link ~slot:s
      else
        Float.max 0.
          (((Graph.arc base link).Graph.capacity *. f)
          -. Ledger.occupied ledger ~link ~slot:s)
  in
  let down =
    if not t.faulty then fun ~link:_ ~slot:_ -> false
    else fun ~link ~slot:s -> Faults.down t.fstate ~asof:slot ~link ~slot:s
  in
  let links =
    Linkview.make ~residual:eff_residual
      ~occupied:(fun ~link ~slot -> Ledger.occupied ledger ~link ~slot)
      ~down
  in
  ( { Scheduler.base;
      epoch = slot;
      period = t.cfg.slots;
      charged = Ledger.charged_all ledger;
      links },
    eff_residual )

let step t ~arrivals =
  if t.drained then invalid_arg "Engine.step: engine already drained";
  if t.next >= t.cfg.slots then
    invalid_arg "Engine.step: all slots already executed";
  let { base; scheduler; workload = _; slots = _; faults = _ } = t.cfg in
  let fstate = t.fstate and faulty = t.faulty and tracing = t.tracing in
  let ledger = t.ledger in
  let slot = t.next in
  let slot_span =
    if tracing then
      Obs.Trace.begin_span "sim.slot" [ ("slot", Obs.Trace.Int slot) ]
    else Obs.Trace.null_span
  in
  (* --- Fault reveal: strand committed volume on newly dead cells. --- *)
  let reoffers = ref [] in
  let slot_stranded = ref 0. and slot_lost = ref 0. in
  let stranded_now = ref [] and lost_now = ref [] in
  if faulty then begin
    let strand_sp = Obs.Span.begin_ "sim.strand" in
    List.iter
      (fun ev ->
        Log.info (fun m ->
            m "slot %d: fault revealed: %a" slot Faults.pp_event ev);
        if tracing then
          Obs.Trace.point "fault.reveal"
            (("slot", Obs.Trace.Int slot) :: Faults.event_fields ev))
      (Faults.revealed_at fstate ~slot);
    let strand fl =
      t.flights <- List.filter (fun x -> x != fl) t.flights;
      let voided = ref 0. in
      List.iter
        (fun (l, s, v) ->
          if s >= slot && v > 0. then begin
            Ledger.void ledger ~link:l ~slot:s v;
            voided := !voided +. v
          end)
        fl.ftxs;
      (* Bytes that already reached the destination stay delivered; bytes
         in flight (at the source or parked at an intermediate hop) are
         retransmitted from the source. *)
      let delivered_past =
        List.fold_left
          (fun acc (l, s, v) ->
            if s >= slot then acc
            else
              let a = Graph.arc base l in
              if a.Graph.dst = fl.ffile.File.dst then acc +. v
              else if a.Graph.src = fl.ffile.File.dst then acc -. v
              else acc)
          0. fl.ftxs
      in
      let remaining =
        Float.max 0. (fl.ffile.File.size -. Float.max 0. delivered_past)
      in
      if remaining > eps then begin
        t.delivered_volume <- t.delivered_volume -. remaining;
        t.stranded_volume <- t.stranded_volume +. remaining;
        slot_stranded := !slot_stranded +. remaining;
        stranded_now := fl.ffile :: !stranded_now;
        Hashtbl.remove t.finish_by_id fl.ffile.File.id;
        Obs.Metrics.incr m_stranded;
        if tracing then
          Obs.Trace.point "fault.strand"
            [ ("slot", Obs.Trace.Int slot);
              ("file", Obs.Trace.Int fl.ffile.File.id);
              ("stranded_bytes", Obs.Trace.Float remaining);
              ("voided_bytes", Obs.Trace.Float !voided) ];
        let deadline_left =
          fl.ffile.File.release + fl.ffile.File.deadline - slot
        in
        if deadline_left >= 1 then
          reoffers :=
            File.make ~id:fl.ffile.File.id ~src:fl.ffile.File.src
              ~dst:fl.ffile.File.dst ~size:remaining ~deadline:deadline_left
              ~release:slot
            :: !reoffers
        else begin
          (* Defensive: committed transmissions always lie inside the
             file's window, so a stranded file retains at least the
             current slot. *)
          t.lost_volume <- t.lost_volume +. remaining;
          slot_lost := !slot_lost +. remaining;
          t.lost_files <- t.lost_files + 1;
          lost_now := fl.ffile :: !lost_now;
          Obs.Metrics.incr m_lost;
          if tracing then
            Obs.Trace.point "fault.lost"
              [ ("slot", Obs.Trace.Int slot);
                ("file", Obs.Trace.Int fl.ffile.File.id);
                ("lost_bytes", Obs.Trace.Float remaining);
                ("reason", Obs.Trace.Str "deadline") ]
        end
      end
    in
    List.iter
      (fun (link, s, f) ->
        let cap = (Graph.arc base link).Graph.capacity *. f in
        let overfull () = Ledger.occupied ledger ~link ~slot:s > cap +. eps in
        let victim () =
          List.find_opt
            (fun fl ->
              List.exists
                (fun (l, s', v) -> l = link && s' = s && v > eps)
                fl.ftxs)
            t.flights
        in
        let continue_ = ref (overfull ()) in
        while !continue_ do
          match victim () with
          | Some fl ->
              strand fl;
              continue_ := overfull ()
          | None ->
              Log.warn (fun m ->
                  m
                    "slot %d: link %d slot %d: %g booked above the fault \
                     cap %g is not attributable to any flight"
                    slot link s
                    (Ledger.occupied ledger ~link ~slot:s)
                    cap);
              continue_ := false
        done)
      (Faults.cells_revealed_at fstate ~slot);
    Obs.Span.end_ strand_sp
  end;
  let reoffers = List.rev !reoffers in
  let replan_count = List.length reoffers in
  if replan_count > 0 then Obs.Metrics.add m_replans replan_count;
  t.total_files <- t.total_files + List.length arrivals;
  List.iter
    (fun (f : File.t) -> t.offered_volume <- t.offered_volume +. f.File.size)
    arrivals;
  let files = reoffers @ arrivals in
  let is_replan =
    if replan_count = 0 then fun _ -> false
    else begin
      let ids = Hashtbl.create replan_count in
      List.iter (fun (f : File.t) -> Hashtbl.replace ids f.File.id ()) reoffers;
      fun (f : File.t) -> Hashtbl.mem ids f.File.id
    end
  in
  let ctx, eff_residual = context_at t ~slot in
  (* Wall clock, not [Obs.Trace.now_ms]: the trace clock reads 0 with no
     sink installed, and [sched_ms_total] must feed the cost-vs-latency
     frontier in untraced runs too. *)
  let t0 = Unix.gettimeofday () in
  let { Scheduler.plan; accepted; rejected } =
    Scheduler.schedule scheduler ctx files
  in
  let sched_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  t.sched_ms_total <- t.sched_ms_total +. sched_ms;
  if rejected <> [] then
    Log.info (fun m ->
        m "slot %d: %s rejected %d of %d files" slot
          (Scheduler.name scheduler) (List.length rejected)
          (List.length files));
  let commit_sp = Obs.Span.begin_ "sim.commit" in
  let check =
    if Scheduler.fluid scheduler then
      Postcard.Plan.validate_capacity ~base ~capacity:eff_residual plan
    else Postcard.Plan.validate ~base ~files:accepted ~capacity:eff_residual plan
  in
  (match check with
   | Ok () -> ()
   | Error msg ->
       raise
         (Invalid_plan
            (Printf.sprintf "slot %d, scheduler %s: %s" slot
               (Scheduler.name scheduler) msg)));
  Ledger.commit_plan ledger plan;
  Obs.Span.end_ commit_sp;
  (* Admission accounting: an accepted re-offer is recovered volume; a
     rejected re-offer is lost (its original admission was already
     charged and partially flowed), while a rejected fresh arrival is an
     ordinary rejection. *)
  let admit_sp = Obs.Span.begin_ "sim.admit" in
  let fresh_accepted = ref [] and recovered_now = ref [] in
  List.iter
    (fun (f : File.t) ->
      t.delivered_volume <- t.delivered_volume +. f.File.size;
      if is_replan f then begin
        t.recovered_volume <- t.recovered_volume +. f.File.size;
        t.replanned_files <- t.replanned_files + 1;
        recovered_now := f :: !recovered_now
      end
      else fresh_accepted := f :: !fresh_accepted)
    accepted;
  let fresh_rejected = ref [] in
  List.iter
    (fun (f : File.t) ->
      if is_replan f then begin
        t.lost_volume <- t.lost_volume +. f.File.size;
        slot_lost := !slot_lost +. f.File.size;
        t.lost_files <- t.lost_files + 1;
        lost_now := f :: !lost_now;
        Obs.Metrics.incr m_lost;
        if tracing then
          Obs.Trace.point "fault.lost"
            [ ("slot", Obs.Trace.Int slot);
              ("file", Obs.Trace.Int f.File.id);
              ("lost_bytes", Obs.Trace.Float f.File.size);
              ("reason", Obs.Trace.Str "rejected") ]
      end
      else begin
        t.rejected_files <- t.rejected_files + 1;
        t.rejected_ids <- f.File.id :: t.rejected_ids;
        t.rejected_volume <- t.rejected_volume +. f.File.size;
        fresh_rejected := f :: !fresh_rejected
      end)
    rejected;
  if faulty && accepted <> [] then begin
    let by_file = Hashtbl.create 16 in
    List.iter
      (fun tx ->
        Hashtbl.add by_file tx.Postcard.Plan.file
          (tx.Postcard.Plan.link, tx.Postcard.Plan.slot, tx.Postcard.Plan.volume))
      plan.Postcard.Plan.transmissions;
    List.iter
      (fun (f : File.t) ->
        t.flights <-
          { ffile = f; ftxs = Hashtbl.find_all by_file f.File.id } :: t.flights)
      accepted
  end;
  Obs.Span.end_ admit_sp;
  Obs.Span.with_ "sim.complete" (fun () ->
      track_completion t ~slot ~plan accepted);
  t.cost_series.(slot) <- Ledger.cost_per_interval ledger;
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_slots;
    Obs.Metrics.add m_arrivals (List.length arrivals);
    Obs.Metrics.add m_rejected
      (List.length (List.filter (fun f -> not (is_replan f)) rejected));
    Obs.Metrics.observe h_slot_ms sched_ms
  end;
  if tracing then begin
    List.iter
      (fun h ->
        let cur =
          Option.value ~default:0.
            (Hashtbl.find_opt t.stored_by_slot h.Postcard.Plan.h_slot)
        in
        Hashtbl.replace t.stored_by_slot h.Postcard.Plan.h_slot
          (cur +. h.Postcard.Plan.h_volume))
      plan.Postcard.Plan.holdovers;
    let charged_after = Ledger.charged_all ledger in
    let charged_delta =
      Array.init (Array.length charged_after) (fun l ->
          charged_after.(l) -. t.last_charged.(l))
    in
    let admitted_bytes =
      List.fold_left (fun acc (f : File.t) -> acc +. f.File.size) 0. accepted
    in
    let stored_bytes =
      Option.value ~default:0. (Hashtbl.find_opt t.stored_by_slot slot)
    in
    Obs.Trace.end_span slot_span
      [ ("arrivals", Obs.Trace.Int (List.length arrivals + t.pend_arrivals));
        ("admitted", Obs.Trace.Int (List.length accepted + t.pend_admitted));
        ("rejected", Obs.Trace.Int (List.length rejected + t.pend_rejected));
        ("admitted_bytes",
         Obs.Trace.Float (admitted_bytes +. t.pend_admitted_bytes));
        ("stored_bytes", Obs.Trace.Float stored_bytes);
        ("replans", Obs.Trace.Int replan_count);
        ("stranded_bytes", Obs.Trace.Float !slot_stranded);
        ("lost_bytes", Obs.Trace.Float !slot_lost);
        ("cost", Obs.Trace.Float t.cost_series.(slot));
        ("cost_delta", Obs.Trace.Float (t.cost_series.(slot) -. t.last_cost));
        ("charged", Obs.Trace.Floats charged_after);
        ("charged_delta", Obs.Trace.Floats charged_delta);
        ("sched_ms", Obs.Trace.Float sched_ms) ];
    t.last_cost <- t.cost_series.(slot);
    t.last_charged <- charged_after
  end;
  t.pend_arrivals <- 0;
  t.pend_admitted <- 0;
  t.pend_rejected <- 0;
  t.pend_admitted_bytes <- 0.;
  (* Completions: admitted files whose committed plan carried its last
     transmission during this slot. [due_by_slot] may hold ids stranded
     since admission (or re-planned to finish elsewhere); the authoritative
     [finish_by_id] filter drops them. *)
  let completed =
    match Hashtbl.find_opt t.due_by_slot slot with
    | None -> []
    | Some ids ->
        Hashtbl.remove t.due_by_slot slot;
        List.rev
          (List.filter
             (fun id ->
               match Hashtbl.find_opt t.finish_by_id id with
               | Some s when s = slot ->
                   Hashtbl.remove t.finish_by_id id;
                   true
               | _ -> false)
             ids)
  in
  t.next <- slot + 1;
  { slot;
    accepted = List.rev !fresh_accepted;
    rejected = List.rev !fresh_rejected;
    recovered = List.rev !recovered_now;
    lost = List.rev !lost_now;
    stranded = List.rev !stranded_now;
    completed;
    cost = t.cost_series.(slot) }

(* Per-request admission between steps: the serving fast path. *)
let offer t (file : File.t) =
  if t.drained then invalid_arg "Engine.offer: engine already drained";
  if t.next >= t.cfg.slots then
    invalid_arg "Engine.offer: all slots already executed";
  if file.File.release < t.next then
    invalid_arg "Engine.offer: file released in the past";
  match Scheduler.admit t.cfg.scheduler with
  | None -> None
  | Some admit ->
      let slot = t.next in
      let scheduler = t.cfg.scheduler in
      let ctx, eff_residual = context_at t ~slot in
      let t0 = Unix.gettimeofday () in
      let decision = admit ctx file in
      let admit_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      t.sched_ms_total <- t.sched_ms_total +. admit_ms;
      t.total_files <- t.total_files + 1;
      t.offered_volume <- t.offered_volume +. file.File.size;
      t.pend_arrivals <- t.pend_arrivals + 1;
      Obs.Metrics.incr m_arrivals;
      let admitted =
        match decision with
        | Scheduler.Denied ->
            t.rejected_files <- t.rejected_files + 1;
            t.rejected_ids <- file.File.id :: t.rejected_ids;
            t.rejected_volume <- t.rejected_volume +. file.File.size;
            t.pend_rejected <- t.pend_rejected + 1;
            Obs.Metrics.incr m_rejected;
            false
        | Scheduler.Admitted plan ->
            let check =
              if Scheduler.fluid scheduler then
                Postcard.Plan.validate_capacity ~base:t.cfg.base
                  ~capacity:eff_residual plan
              else
                Postcard.Plan.validate ~base:t.cfg.base ~files:[ file ]
                  ~capacity:eff_residual plan
            in
            (match check with
             | Ok () -> ()
             | Error msg ->
                 raise
                   (Invalid_plan
                      (Printf.sprintf "slot %d, scheduler %s (offer): %s" slot
                         (Scheduler.name scheduler) msg)));
            Ledger.commit_plan t.ledger plan;
            t.delivered_volume <- t.delivered_volume +. file.File.size;
            t.pend_admitted <- t.pend_admitted + 1;
            t.pend_admitted_bytes <- t.pend_admitted_bytes +. file.File.size;
            if t.faulty then begin
              let ftxs =
                List.map
                  (fun tx ->
                    ( tx.Postcard.Plan.link,
                      tx.Postcard.Plan.slot,
                      tx.Postcard.Plan.volume ))
                  plan.Postcard.Plan.transmissions
              in
              t.flights <- { ffile = file; ftxs } :: t.flights
            end;
            track_completion t ~slot ~plan [ file ];
            true
      in
      if t.tracing then
        Obs.Trace.point "sim.offer"
          [ ("slot", Obs.Trace.Int slot);
            ("file", Obs.Trace.Int file.File.id);
            ("scheduler", Obs.Trace.Str (Scheduler.name scheduler));
            ("admitted", Obs.Trace.Int (if admitted then 1 else 0));
            ("bytes", Obs.Trace.Float file.File.size);
            ("admit_ms", Obs.Trace.Float admit_ms) ];
      Some (if admitted then `Admitted else `Rejected)

let in_flight t =
  let all =
    Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.finish_by_id []
  in
  List.sort compare all

let status t =
  { next_slot = t.next;
    slots_total = t.cfg.slots;
    files_offered = t.total_files;
    files_rejected = t.rejected_files;
    files_lost = t.lost_files;
    files_in_flight = Hashtbl.length t.finish_by_id;
    bytes_offered = t.offered_volume;
    bytes_delivered = t.delivered_volume;
    cost_per_interval = Ledger.cost_per_interval t.ledger }

let drain t =
  if t.drained then invalid_arg "Engine.drain: engine already drained";
  t.drained <- true;
  let executed = t.next in
  let cost_series =
    if executed = Array.length t.cost_series then t.cost_series
    else Array.sub t.cost_series 0 executed
  in
  (* Clamp to slot 0 so draining before any step (a serving session shut
     down with no traffic) still yields a well-formed, all-zero series. *)
  let last_slot = max 0 (max (executed - 1) (Ledger.max_booked_slot t.ledger)) in
  let outcome =
    { cost_series;
      final_charged = Ledger.charged_all t.ledger;
      total_files = t.total_files;
      rejected_files = t.rejected_files;
      rejected_ids = List.rev t.rejected_ids;
      delivered_volume = t.delivered_volume;
      offered_volume = t.offered_volume;
      rejected_volume = t.rejected_volume;
      stranded_volume = t.stranded_volume;
      recovered_volume = t.recovered_volume;
      lost_volume = t.lost_volume;
      lost_files = t.lost_files;
      replanned_files = t.replanned_files;
      sched_ms_total = t.sched_ms_total;
      link_volumes = Ledger.volumes_through t.ledger ~last_slot }
  in
  if t.tracing then
    Obs.Trace.end_span t.run_span
      (List.concat
         [ [ ("total_files", Obs.Trace.Int outcome.total_files);
             ("rejected_files", Obs.Trace.Int outcome.rejected_files);
             ("delivered_volume", Obs.Trace.Float outcome.delivered_volume);
             ("offered_volume", Obs.Trace.Float outcome.offered_volume);
             ("rejected_volume", Obs.Trace.Float outcome.rejected_volume);
             ("stranded_volume", Obs.Trace.Float outcome.stranded_volume);
             ("recovered_volume", Obs.Trace.Float outcome.recovered_volume);
             ("lost_volume", Obs.Trace.Float outcome.lost_volume);
             ("lost_files", Obs.Trace.Int outcome.lost_files);
             ("replanned_files", Obs.Trace.Int outcome.replanned_files) ];
           (if executed > 0 then
              [ ("final_cost", Obs.Trace.Float cost_series.(executed - 1)) ]
            else []);
           [ ("final_charged", Obs.Trace.Floats outcome.final_charged) ] ]);
  outcome

let run cfg =
  let t = init cfg in
  for slot = 0 to cfg.slots - 1 do
    ignore (step t ~arrivals:(Workload.arrivals cfg.workload ~slot))
  done;
  drain t

let average_cost (outcome : outcome) = Prelude.Stats.mean outcome.cost_series

let evaluate_cost outcome ~scheme ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. (a.Graph.cost *. charged));
  !acc

let evaluate_bill outcome ~scheme ~cost_of_link ~base =
  let acc = ref 0. in
  Graph.iter_arcs base (fun a ->
      let volumes = outcome.link_volumes.(a.Graph.id) in
      let charged = Postcard.Charging.charged_volume scheme volumes in
      acc := !acc +. Postcard.Charging.cost (cost_of_link a.Graph.id) charged);
  !acc
