(** Plain-text rendering of experiment results, in the shape of the
    paper's figures: one row per scheduler with mean cost per interval and
    its 95% confidence interval, plus optional time series. *)

val print_summary : Format.formatter -> Experiment.results -> unit
(** When the setting carries a fault scenario, the header names it and the
    table grows delivered/recovered/lost volume columns; fault-free output
    is unchanged. *)

val print_series :
  ?every:int -> Format.formatter -> Experiment.results -> unit
(** Cost-per-interval series averaged over runs, sampled every [every]
    slots (default 5), one column per scheduler. *)

val print_frontier : Format.formatter -> Experiment.results -> unit
(** Cost-vs-latency frontier across the setting's schedulers: one row per
    scheduler sorted by mean per-file decision latency, with mean cost
    per interval and total rejections; rows no other scheduler weakly
    dominates on (latency, cost) are starred. The view that justifies the
    tiered admission design: the ledger sits at the fast end, the LP at
    the cheap end, and [postcard-tiered] should be starred near both. *)

val print_comparison :
  Format.formatter ->
  baseline:string ->
  contender:string ->
  Experiment.results ->
  unit
(** One-line verdict: contender-vs-baseline cost ratio for the setting. *)

val print_utilization :
  ?top:int ->
  Format.formatter ->
  base:Netgraph.Graph.t ->
  outcome:Engine.outcome ->
  unit
(** ASCII utilization timelines of the [top] (default 5) busiest links:
    one row per link, one character per slot — '.' idle, '1'-'9' the
    utilization decile, '#' saturated — plus the link's final charged
    volume. Makes the "paid once, free later" dynamics visible. *)
