module Graph = Netgraph.Graph
module File = Postcard.File
module Scheduler = Postcard.Scheduler

type summary = {
  tb_nodes : int;
  tb_slots : int;
  tb_seed : int;
  tb_offered : int;
  tb_fast_admits : int;
  tb_fallback_files : int;
  tb_fallback_admits : int;
  tb_rejected : int;
  tb_fast_share : float;
  tb_fast_us : float;
  tb_lp_us : float;
  tb_latency_ratio : float;
  tb_cost_tiered : float;
  tb_cost_postcard : float;
  tb_cost_gap : float;
}

let topology ~nodes ~seed =
  let rng = Prelude.Rng.of_int (seed * 7919) in
  Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
    ~capacity:35.

let spec ~nodes =
  { (Workload.paper_spec ~nodes ~files_max:3 ~max_deadline:4) with
    Workload.size_min = 5.;
    size_max = 25.;
    deadlines = Workload.Uniform_deadline (2, 4) }

let workload ~nodes ~seed = Workload.create (spec ~nodes) (Prelude.Rng.of_int seed)

let final_cost (outcome : Engine.outcome) =
  let n = Array.length outcome.Engine.cost_series in
  if n = 0 then 0. else outcome.Engine.cost_series.(n - 1)

(* Wall-clock one decision function over the file stream, [reps] passes,
   after one warm-up pass. *)
let mean_us ~reps files decide =
  List.iter decide files;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    List.iter decide files
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  elapsed /. float_of_int (reps * List.length files) *. 1e6

let run ?(nodes = 8) ?(slots = 40) ?(seed = 1) () =
  let base = topology ~nodes ~seed in
  (* Pure LP run: the cost reference. *)
  let pure =
    Engine.run
      (Engine.make ~base
         ~scheduler:(Postcard.Postcard_scheduler.make ())
         ~workload:(workload ~nodes ~seed) ~slots ())
  in
  (* Tiered run over the identical workload, with the fallback wrapped to
     count exactly which files ever reach the LP. *)
  let fallback_files = ref 0 and fallback_admits = ref 0 in
  let lp = Postcard.Postcard_scheduler.make () in
  let counting_lp =
    Scheduler.create ~name:"postcard" ~fluid:false
      ~reset:(fun () -> Scheduler.reset lp)
      (fun ctx files ->
        fallback_files := !fallback_files + List.length files;
        let o = Scheduler.schedule lp ctx files in
        fallback_admits := !fallback_admits + List.length o.Scheduler.accepted;
        o)
  in
  let tiered =
    Scheduler.tiered ~name:"postcard-tiered"
      ~fast:(Postcard.Ledger_scheduler.make ())
      ~fallback:counting_lp ()
  in
  let outcome =
    Engine.run
      (Engine.make ~base ~scheduler:tiered ~workload:(workload ~nodes ~seed)
         ~slots ())
  in
  let offered = outcome.Engine.total_files in
  let admitted = offered - outcome.Engine.rejected_files in
  let fast_admits = admitted - !fallback_admits in
  (* Per-admission latency over the same stream of files, one at a time
     against a pristine view — the serving daemon's unit of work. *)
  let stream =
    let w = workload ~nodes ~seed in
    List.concat (List.init slots (fun slot -> Workload.arrivals w ~slot))
  in
  let ctx () =
    { Scheduler.base;
      epoch = 0;
      period = slots;
      charged = Array.make (Graph.num_arcs base) 0.;
      links = Postcard.Linkview.of_capacity ~base }
  in
  let fast_us =
    let ledger = Postcard.Ledger_scheduler.make () in
    let admit = Option.get (Scheduler.admit ledger) in
    let c = ctx () in
    mean_us ~reps:50 stream (fun f -> ignore (admit c f))
  in
  let lp_us =
    let solver = Postcard.Postcard_scheduler.make () in
    let c = ctx () in
    mean_us ~reps:1 stream (fun f ->
        Scheduler.reset solver;
        ignore (Scheduler.schedule solver c [ f ]))
  in
  let cost_tiered = final_cost outcome in
  let cost_postcard = final_cost pure in
  { tb_nodes = nodes;
    tb_slots = slots;
    tb_seed = seed;
    tb_offered = offered;
    tb_fast_admits = fast_admits;
    tb_fallback_files = !fallback_files;
    tb_fallback_admits = !fallback_admits;
    tb_rejected = outcome.Engine.rejected_files;
    tb_fast_share =
      (if offered = 0 then 0. else float_of_int fast_admits /. float_of_int offered);
    tb_fast_us = fast_us;
    tb_lp_us = lp_us;
    tb_latency_ratio = (if fast_us > 0. then lp_us /. fast_us else infinity);
    tb_cost_tiered = cost_tiered;
    tb_cost_postcard = cost_postcard;
    tb_cost_gap =
      (if cost_postcard > 0. then (cost_tiered -. cost_postcard) /. cost_postcard
       else 0.) }

let check s =
  let errs = ref [] in
  if s.tb_fast_share < 0.9 then
    errs :=
      Printf.sprintf "fast tier decided only %.1f%% of files (target >= 90%%)"
        (100. *. s.tb_fast_share)
      :: !errs;
  if s.tb_latency_ratio < 50. then
    errs :=
      Printf.sprintf "fast tier only %.1fx faster per admission (target >= 50x)"
        s.tb_latency_ratio
      :: !errs;
  if s.tb_cost_gap > 0.1 then
    errs :=
      Printf.sprintf "tiered cost %.1f%% above pure postcard (target <= 10%%)"
        (100. *. s.tb_cost_gap)
      :: !errs;
  if !errs = [] then Ok () else Error (List.rev !errs)

let pp_summary ppf s =
  Format.fprintf ppf
    "  %d datacenters, %d slots, seed %d: %d files offered@." s.tb_nodes
    s.tb_slots s.tb_seed s.tb_offered;
  Format.fprintf ppf
    "  admission split: %d fast (%.1f%%), %d to the LP (%d admitted), %d \
     rejected@."
    s.tb_fast_admits
    (100. *. s.tb_fast_share)
    s.tb_fallback_files s.tb_fallback_admits s.tb_rejected;
  Format.fprintf ppf
    "  per-admission latency: ledger %.1f us, LP %.0f us — %.0fx@."
    s.tb_fast_us s.tb_lp_us s.tb_latency_ratio;
  Format.fprintf ppf
    "  final bill: tiered %.1f vs pure postcard %.1f — gap %+.1f%%@."
    s.tb_cost_tiered s.tb_cost_postcard
    (100. *. s.tb_cost_gap)

let to_json s =
  Printf.sprintf
    "{\n\
    \  \"bench\": \"tier\",\n\
    \  \"nodes\": %d,\n\
    \  \"slots\": %d,\n\
    \  \"seed\": %d,\n\
    \  \"offered\": %d,\n\
    \  \"fast_admits\": %d,\n\
    \  \"fallback_files\": %d,\n\
    \  \"fallback_admits\": %d,\n\
    \  \"rejected\": %d,\n\
    \  \"fast_share\": %.4f,\n\
    \  \"fast_us\": %.3f,\n\
    \  \"lp_us\": %.3f,\n\
    \  \"latency_ratio\": %.2f,\n\
    \  \"cost_tiered\": %.4f,\n\
    \  \"cost_postcard\": %.4f,\n\
    \  \"cost_gap\": %.4f\n\
     }\n"
    s.tb_nodes s.tb_slots s.tb_seed s.tb_offered s.tb_fast_admits
    s.tb_fallback_files s.tb_fallback_admits s.tb_rejected s.tb_fast_share
    s.tb_fast_us s.tb_lp_us s.tb_latency_ratio s.tb_cost_tiered
    s.tb_cost_postcard s.tb_cost_gap
