(** Per-link traffic ledger: committed volumes per slot, residual
    capacities, and the running charged volume [X_ij].

    Committed volumes include future slots — once a plan is accepted its
    transmissions are booked, so the charge (which, under the 100-th
    percentile scheme, is the running peak of per-slot volumes) reflects
    everything scheduled so far, exactly as [X_ij(t)] in the paper's
    objective. *)

type t

val create : base:Netgraph.Graph.t -> t

val base : t -> Netgraph.Graph.t

val commit : t -> link:int -> slot:int -> float -> unit
(** Book additional volume. Raises [Invalid_argument] on a negative volume
    or unknown link, and [Failure] when the booking would exceed the link
    capacity beyond tolerance (schedulers must respect residuals). *)

val commit_plan : t -> Postcard.Plan.t -> unit

val void : t -> link:int -> slot:int -> float -> unit
(** Remove previously committed volume (fault stranding: a booking on a
    now-dead or degraded (link, slot) cell is withdrawn before it flows).
    The link's charged peak is recomputed — un-booking a future
    transmission that drove the peak lowers the charge, since volume that
    never flowed is never billed. Raises [Invalid_argument] on a negative
    volume/slot or unknown link, and [Failure] when removing more than is
    booked (beyond tolerance). *)

val voided_volume : t -> float
(** Cumulative volume withdrawn through {!void} — the ledger-level
    stranding total, which the engine reconciles against its per-file
    accounting. *)

val occupied : t -> link:int -> slot:int -> float

val residual : t -> link:int -> slot:int -> float
(** Link capacity minus {!occupied}; never negative. *)

val charged : t -> link:int -> float
(** Running charged volume of the link: the peak committed per-slot volume
    so far (including booked future slots). *)

val charged_all : t -> float array

val cost_per_interval : t -> float
(** [sum over links of price * charged] — the instantaneous cost rate of
    the 100-th percentile scheme. *)

val volumes_through : t -> last_slot:int -> float array array
(** [volumes_through t ~last_slot] materializes the per-link volume series
    for slots [0 .. last_slot] (for end-of-run percentile evaluation):
    result.(link).(slot). *)

val max_booked_slot : t -> int
(** Largest slot with any booking; [-1] when empty. *)
