module Graph = Netgraph.Graph

type event =
  | Link_outage of { src : int; dst : int; first : int; last : int }
  | Dc_outage of { dc : int; first : int; last : int }
  | Degrade of { src : int; dst : int; first : int; last : int; factor : float }

type scenario = event list

let empty = []

let is_empty s = s = []

(* ------------------------------------------------------------------ *)
(* Parsing: comma-separated events, "kind:args" each. *)

let parse_nat what s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Ok n
  | Some n -> Error (Printf.sprintf "%s: %d is negative" what n)
  | None -> Error (Printf.sprintf "%s: %S is not an integer" what s)

(* "3..5" or "4" -> (first, last), inclusive. *)
let parse_slots s =
  let split =
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.' ->
        Some (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
    | Some _ -> None (* a single dot is malformed *)
    | None -> None
  in
  match split with
  | Some (a, b) -> (
      match (parse_nat "slot" a, parse_nat "slot" b) with
      | Ok first, Ok last ->
          if last < first then
            Error (Printf.sprintf "slot range %d..%d is reversed" first last)
          else Ok (first, last)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | None ->
      if String.contains s '.' then
        Error (Printf.sprintf "bad slot range %S (use A..B or a single slot)" s)
      else
        Result.map (fun n -> (n, n)) (parse_nat "slot" s)

(* "0-1" -> (src, dst). *)
let parse_endpoints s =
  match String.index_opt s '-' with
  | None -> Error (Printf.sprintf "bad link %S (use SRC-DST)" s)
  | Some i -> (
      let a = String.sub s 0 i
      and b = String.sub s (i + 1) (String.length s - i - 1) in
      match (parse_nat "datacenter" a, parse_nat "datacenter" b) with
      | Ok src, Ok dst ->
          if src = dst then
            Error (Printf.sprintf "link %d-%d is a self-loop" src dst)
          else Ok (src, dst)
      | (Error _ as e), _ | _, (Error _ as e) -> e)

let parse_factor s =
  match float_of_string_opt (String.trim s) with
  | Some f when f >= 0. && f <= 1. && not (Float.is_nan f) -> Ok f
  | Some f -> Error (Printf.sprintf "factor %g is outside [0, 1]" f)
  | None -> Error (Printf.sprintf "factor %S is not a number" s)

let parse_event s =
  let fail msg = Error (Printf.sprintf "event %S: %s" s msg) in
  match String.split_on_char ':' (String.trim s) with
  | [ "link"; rest ] -> (
      match String.index_opt rest '@' with
      | None -> fail "missing @SLOTS"
      | Some i -> (
          let eps = String.sub rest 0 i
          and slots = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (parse_endpoints eps, parse_slots slots) with
          | Ok (src, dst), Ok (first, last) ->
              Ok (Link_outage { src; dst; first; last })
          | Error e, _ | _, Error e -> fail e))
  | [ "dc"; rest ] -> (
      match String.index_opt rest '@' with
      | None -> fail "missing @SLOTS"
      | Some i -> (
          let dc = String.sub rest 0 i
          and slots = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (parse_nat "datacenter" dc, parse_slots slots) with
          | Ok dc, Ok (first, last) -> Ok (Dc_outage { dc; first; last })
          | Error e, _ | _, Error e -> fail e))
  | [ "degrade"; middle; factor ] -> (
      match String.index_opt middle '@' with
      | None -> fail "missing @SLOTS"
      | Some i -> (
          let eps = String.sub middle 0 i
          and slots = String.sub middle (i + 1) (String.length middle - i - 1) in
          match (parse_endpoints eps, parse_slots slots, parse_factor factor)
          with
          | Ok (src, dst), Ok (first, last), Ok factor ->
              Ok (Degrade { src; dst; first; last; factor })
          | Error e, _, _ | _, Error e, _ | _, _, Error e -> fail e))
  | [ "degrade"; _ ] -> fail "degrade needs a trailing :FACTOR"
  | kind :: _ -> fail (Printf.sprintf "unknown event kind %S" kind)
  | [] -> fail "empty event"

let parse s =
  let chunks =
    List.filter
      (fun c -> String.trim c <> "")
      (String.split_on_char ',' s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | c :: rest -> (
        match parse_event c with
        | Ok ev -> go (ev :: acc) rest
        | Error _ as e -> e)
  in
  go [] chunks

let slots_to_string first last =
  if first = last then string_of_int first
  else Printf.sprintf "%d..%d" first last

let event_to_string = function
  | Link_outage { src; dst; first; last } ->
      Printf.sprintf "link:%d-%d@%s" src dst (slots_to_string first last)
  | Dc_outage { dc; first; last } ->
      Printf.sprintf "dc:%d@%s" dc (slots_to_string first last)
  | Degrade { src; dst; first; last; factor } ->
      Printf.sprintf "degrade:%d-%d@%s:%g" src dst (slots_to_string first last)
        factor

let to_string scenario = String.concat "," (List.map event_to_string scenario)

let pp_event ppf ev = Format.pp_print_string ppf (event_to_string ev)

(* ------------------------------------------------------------------ *)
(* Compilation against a base graph. *)

type cevent = {
  ev : event;
  links : int list;  (** Arc ids the event silences or degrades. *)
  first : int;
  last : int;
  cfactor : float;
}

type t = { events : cevent array }

let window = function
  | Link_outage { first; last; _ }
  | Dc_outage { first; last; _ }
  | Degrade { first; last; _ } -> (first, last)

let compile scenario ~base =
  let n = Graph.num_nodes base in
  let resolve_link src dst =
    if src >= n || dst >= n then
      Error
        (Printf.sprintf "datacenter %d is outside the %d-node base graph"
           (max src dst) n)
    else
      match Graph.find_arc base ~src ~dst with
      | Some link -> Ok [ link ]
      | None -> Error (Printf.sprintf "no link %d-%d in the base graph" src dst)
  in
  let resolve ev =
    let links =
      match ev with
      | Link_outage { src; dst; _ } -> resolve_link src dst
      | Degrade { src; dst; _ } -> resolve_link src dst
      | Dc_outage { dc; _ } ->
          if dc >= n then
            Error
              (Printf.sprintf "datacenter %d is outside the %d-node base graph"
                 dc n)
          else
            Ok
              (Graph.fold_arcs base ~init:[] ~f:(fun acc a ->
                   if a.Graph.src = dc || a.Graph.dst = dc then
                     a.Graph.id :: acc
                   else acc))
    in
    let cfactor = match ev with Degrade { factor; _ } -> factor | _ -> 0. in
    Result.map
      (fun links ->
        let first, last = window ev in
        { ev; links; first; last; cfactor })
      links
  in
  let rec go acc = function
    | [] -> Ok { events = Array.of_list (List.rev acc) }
    | ev :: rest -> (
        match resolve ev with
        | Ok ce -> go (ce :: acc) rest
        | Error msg ->
            Error
              (Printf.sprintf "fault scenario: %s: %s" (event_to_string ev) msg))
  in
  go [] scenario

let active t = Array.length t.events > 0

let factor t ~asof ~link ~slot =
  let f = ref 1. in
  Array.iter
    (fun ce ->
      if
        ce.first <= asof && ce.first <= slot && slot <= ce.last
        && List.mem link ce.links
      then f := Float.min !f ce.cfactor)
    t.events;
  !f

let down t ~asof ~link ~slot = factor t ~asof ~link ~slot = 0.

let revealed_at t ~slot =
  Array.fold_left
    (fun acc ce -> if ce.first = slot then ce.ev :: acc else acc)
    [] t.events
  |> List.rev

let cells_revealed_at t ~slot =
  let cells = Hashtbl.create 16 in
  Array.iter
    (fun ce ->
      if ce.first = slot then
        List.iter
          (fun link ->
            for s = ce.first to ce.last do
              Hashtbl.replace cells (link, s) ()
            done)
          ce.links)
    t.events;
  Hashtbl.fold (fun (link, s) () acc -> (link, s) :: acc) cells []
  |> List.sort compare
  |> List.map (fun (link, s) -> (link, s, factor t ~asof:slot ~link ~slot:s))

let event_fields ev =
  let open Obs.Trace in
  let kind, link_or_dc, factor =
    match ev with
    | Link_outage { src; dst; _ } ->
        ("link", Printf.sprintf "%d-%d" src dst, 0.)
    | Dc_outage { dc; _ } -> ("dc", string_of_int dc, 0.)
    | Degrade { src; dst; factor; _ } ->
        ("degrade", Printf.sprintf "%d-%d" src dst, factor)
  in
  let first, last = window ev in
  [ ("kind", Str kind);
    ("where", Str link_or_dc);
    ("first", Int first);
    ("last", Int last);
    ("factor", Float factor) ]
