(** The audited capacity interface every scheduler reads the network
    through.

    A value of type {!t} answers, for any (link, absolute slot) cell of
    the time-expanded network, how much capacity is left ({!residual}),
    how much is already committed ({!occupied}) and whether the cell is
    known-dead ({!down}). The simulation engine builds one view per epoch
    over its {!Sim.Ledger} (with fault caps applied); offline callers
    build one over a plain capacity function. Replacing the three
    positional closures the scheduler context used to carry, the view is
    the single shared read path of the batch schedulers, the combinatorial
    admission ledgers and the engine's validators.

    {b Overlays.} An {!overlay} is a mutable delta of {e pending}
    bookings stacked on a base view: {!booked} volume is subtracted from
    [residual] and added to [occupied] without touching the underlying
    ledger. A batch scheduler (or the {!Scheduler.tiered} combinator)
    books each accepted file's plan into the overlay so the next file in
    the same batch sees the updated capacities; the engine then commits
    the combined plan to its real ledger once, which is what keeps the
    fast tier's ledgers incrementally consistent across commits, strands
    and re-offers — the base view always reads through to the engine's
    post-void, post-commit truth, and the overlay only ever holds the
    current batch. *)

type t

val make :
  residual:(link:int -> slot:int -> float) ->
  occupied:(link:int -> slot:int -> float) ->
  down:(link:int -> slot:int -> bool) ->
  t

val of_capacity : base:Netgraph.Graph.t -> t
(** A pristine view of [base]: every link offers its full capacity in
    every slot, nothing is occupied, nothing is down. For offline solves
    and tests. *)

val residual : t -> link:int -> slot:int -> float
(** Capacity of [link] still available during absolute [slot], after
    earlier commitments (and, in engine-built views, fault caps). *)

val occupied : t -> link:int -> slot:int -> float
(** Volume already committed on [link] during absolute [slot]. *)

val down : t -> link:int -> slot:int -> bool
(** [true] when [link] is known (as of the view's epoch) to be dead
    during absolute [slot]. [residual] already reflects fault caps — a
    dead cell has residual 0 — so strategies work unmodified; [down]
    additionally distinguishes "saturated" from "failed". *)

(** {1 Overlays} *)

type overlay

val overlay : t -> overlay
(** A fresh overlay with no pending bookings, stacked on [t]. *)

val view : overlay -> t
(** The derived view: [residual] minus pending bookings, [occupied] plus
    pending bookings; [down] passes through. Reads the overlay live —
    later {!book} calls are visible through a previously obtained view. *)

val book : overlay -> link:int -> slot:int -> float -> unit
(** Add pending volume to a cell. Raises [Invalid_argument] on negative
    volume. *)

val book_plan : overlay -> Plan.t -> unit
(** {!book} every transmission of a plan. *)

val booked : overlay -> link:int -> slot:int -> float
(** Pending volume on a cell. *)

val booked_total : overlay -> float
(** Sum of all pending bookings (0 for a fresh overlay). *)

val clear : overlay -> unit
(** Drop every pending booking. *)
