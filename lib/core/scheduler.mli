(** Capability-style interface implemented by every routing/scheduling
    strategy.

    At each slot the simulation engine hands the scheduler the files just
    released, together with the network state: the charged volume
    [X_ij(t-1)] per link and a {!Linkview.t} giving the residual capacity
    of every link for every future slot (accounting for transfers
    committed at earlier epochs, with fault caps applied). The scheduler
    returns a {!Plan} for the files it accepts; files it cannot serve
    within their deadlines are rejected (the paper assumes this never
    happens at its operating points; the simulator tracks it for
    robustness).

    Every scheduler supports batch {!schedule}. A scheduler may
    additionally expose the incremental {!admit} capability — decide one
    file, right now, without an LP — which is what the serving daemon
    calls per request and what the {!tiered} combinator builds on. The
    contract linking the two: on a singleton batch, [admit] and
    [schedule] must agree (checked by {!register} with a probe
    instance). *)

type context = {
  base : Netgraph.Graph.t;
  epoch : int;  (** Current slot [t]. *)
  period : int;
      (** Total slots in the charging period ([I] in the paper); lets
          percentile-aware strategies budget their free burst slots. *)
  charged : float array;  (** [X_ij(t-1)] per base arc. *)
  links : Linkview.t;
      (** Residual/occupied/down per (link, absolute slot) — the one
          audited read path for network capacity (see {!Linkview}). *)
}

type outcome = {
  plan : Plan.t;
  accepted : File.t list;
  rejected : File.t list;
}

type decision =
  | Admitted of Plan.t
      (** The plan for this one file; the caller commits it (the engine
          books it into its ledger) before the next admission that
          should see it. *)
  | Denied

type t
(** A scheduler instance. Construct with {!create} or {!stateless};
    interrogate with the accessors below. The representation is
    deliberately abstract: the capability set can grow without breaking
    out-of-tree strategies. *)

val create :
  name:string ->
  fluid:bool ->
  ?admit:(context -> File.t -> decision) ->
  ?reset:(unit -> unit) ->
  (context -> File.t list -> outcome) ->
  t
(** [create ~name ~fluid schedule] builds a scheduler from its mandatory
    batch capability. [fluid] marks plans that follow the fluid flow
    model (capacity-only validation) rather than slot-accurate
    store-and-forward. [admit], when given, is the incremental fast path;
    it must agree with [schedule] on singleton batches. [reset] (default
    no-op) clears cross-epoch state (e.g. a carried simplex basis) — the
    engine calls it once at the start of every run. *)

val stateless :
  name:string -> fluid:bool -> (context -> File.t list -> outcome) -> t
(** Thin constructor for a scheduler with no cross-epoch state and no
    incremental capability: [create] with a no-op [reset] and no
    [admit]. *)

val name : t -> string
val fluid : t -> bool

val schedule : t -> context -> File.t list -> outcome
(** The mandatory batch capability. *)

val admit : t -> (context -> File.t -> decision) option
(** The optional incremental capability; [None] for batch-only
    strategies. *)

val reset : t -> unit
(** Clear any cross-epoch state, so a scheduler value can be reused
    across independent simulations. *)

val tiered :
  ?name:string -> ?high_value:(File.t -> bool) -> fast:t -> fallback:t ->
  unit -> t
(** [tiered ~fast ~fallback ()] is the two-tier combinator: each offered
    file first goes to [fast]'s incremental {!admit}; files [fast]
    denies — plus any satisfying [high_value] (default: none) — are
    batched to [fallback]'s {!schedule}. Within one batch the fast tier's
    bookings are stacked on a {!Linkview.overlay}, so the fallback LP
    prices the capacity the fast tier already claimed. The combined
    scheduler exposes {!admit} itself (fast first, then a singleton
    fallback batch), so a serving daemon gets per-request decisions end
    to end. [name] defaults to ["fast+fallback"]; [reset] resets both tiers;
    [fluid] is the OR of the tiers' flags (a fluid tier degrades
    validation for the combined plan). Raises [Invalid_argument] when
    [fast] lacks the {!admit} capability.

    With tracing on, every non-empty batch emits a ["tier.decision"]
    point (fast/fallback admission split); the [tier.fast_admits],
    [tier.fallback_files] and [tier.fallback_admits] metrics accumulate
    the same split. *)

(** {1 Registry}

    Every strategy registers a {e factory}, not a value: [make] returns a
    fresh scheduler on every call, so callers that run many simulations
    concurrently (the domain-parallel experiment runner) can give each
    cell its own instance — scheduler values carry mutable cross-epoch
    state (e.g. a warm-start basis) and must never be shared between
    domains. The built-ins (postcard, flow-based and its two ablation
    variants, direct, greedy-snf, burst-95, ledger, postcard-tiered)
    self-register when the library is linked. *)

val register :
  name:string -> ?aliases:string list -> ?doc:string -> (unit -> t) -> unit
(** [register ~name factory] adds a strategy under [name] (plus optional
    lookup [aliases], e.g. "flow" for "flow-based", and a one-line [doc]
    shown by [--list-schedulers]). The factory is probed once: it must
    construct without raising, and if the instance exposes {!admit}, the
    admit and schedule capabilities must agree on a singleton probe batch
    (same admission verdict, same plan). Raises [Invalid_argument] when
    any of the names is already taken, when the factory raises at
    construction, or when the probe disagrees. *)

val registered : unit -> string list
(** Canonical (alias-free) names of every registered strategy, sorted. *)

type info = {
  info_name : string;  (** Canonical name. *)
  aliases : string list;
  doc : string option;
}

val infos : unit -> info list
(** Every registered strategy with its aliases and doc line, sorted by
    canonical name. *)

val pp_registry : Format.formatter -> unit -> unit
(** Human-readable listing of {!infos} — one strategy per line with its
    aliases and doc; what both binaries print for [--list-schedulers]. *)

val factory : string -> (unit -> t) option
(** Look up a factory by canonical name or alias. *)

val make : string -> t option
(** [make name] instantiates a {e fresh} scheduler, or [None] for an
    unknown name. *)

val make_exn : string -> t
(** Like {!make} but raises [Invalid_argument] naming the unknown
    scheduler and listing the available ones. *)

val make_all : unit -> (t list, string list) result
(** One fresh instance of every registered strategy, in {!registered}
    order — or, when any factory raises at instantiation time (a factory
    can pass its registration probe and still fail later, e.g. one that
    is stateful), [Error] with one ["name: exception"] line per broken
    factory. A factory failure is a registry inconsistency:
    [--list-schedulers] exits non-zero on it. *)

val observe : t -> t
(** Wrap a scheduler so every [schedule] call feeds the {!Obs} layer: it
    bumps the [sched.*] metrics (decisions, files offered/accepted/rejected,
    decision wall time) and, when a trace sink is installed, emits one
    ["sched.decision"] point per epoch carrying the scheduler name, epoch,
    admission counts, the rejected file ids and the decision wall time.
    The {!admit} and [reset] capabilities pass through unchanged. Adds no
    overhead beyond one flag check per call while both the metrics
    registry and tracing are off. *)

val capacity_at_epoch : context -> link:int -> layer:int -> float
(** Residual capacity in relative-layer terms:
    [Linkview.residual links ~link ~slot:(epoch + layer)]. *)

val admit_greedy :
  files:File.t list ->
  try_solve:(File.t list -> 'a option) ->
  ('a * File.t list * File.t list) option
(** Admission-control helper: attempt [try_solve] on the full file list;
    while it returns [None], drop the file with the highest desired rate
    (the hardest to place) and retry. Returns
    [(solution, accepted, rejected)], or [None] when even the empty list
    fails (which indicates a solver problem, since an empty instance is
    trivially feasible). *)
