(** Common interface implemented by every routing/scheduling strategy.

    At each slot the simulation engine hands the scheduler the files just
    released, together with the network state: the charged volume
    [X_ij(t-1)] per link and the residual capacity of every link for every
    future slot (accounting for transfers committed at earlier epochs).
    The scheduler returns a {!Plan} for the files it accepts; files it
    cannot serve within their deadlines are rejected (the paper assumes
    this never happens at its operating points; the simulator tracks it for
    robustness). *)

type context = {
  base : Netgraph.Graph.t;
  epoch : int;  (** Current slot [t]. *)
  period : int;
      (** Total slots in the charging period ([I] in the paper); lets
          percentile-aware strategies budget their free burst slots. *)
  charged : float array;  (** [X_ij(t-1)] per base arc. *)
  residual : link:int -> slot:int -> float;
      (** Residual capacity of [link] during absolute [slot], i.e. the link
          capacity minus volumes committed by previous epochs. *)
  occupied : link:int -> slot:int -> float;
      (** Volume already committed on [link] during absolute [slot] by
          previous epochs. *)
  down : link:int -> slot:int -> bool;
      (** Fault view: [true] when [link] is known (as of this epoch) to be
          dead during absolute [slot]. [residual] already reflects fault
          capacity caps — a dead (link, slot) has residual 0 — so
          strategies work unmodified; [down] additionally lets
          percentile-aware strategies distinguish "saturated" from
          "failed" (e.g. to avoid spending burst slots on a dying link).
          Always [false] in fault-free runs. *)
}

type outcome = {
  plan : Plan.t;
  accepted : File.t list;
  rejected : File.t list;
}

type t = {
  name : string;
  fluid : bool;
      (** [true] when plans follow the fluid flow model (capacity-only
          validation); [false] for slot-accurate store-and-forward plans. *)
  schedule : context -> File.t list -> outcome;
  reset : unit -> unit;
      (** Clear any cross-epoch state (e.g. a carried simplex basis). The
          engine calls this once at the start of every run, so a scheduler
          value can be reused across independent simulations. *)
}

val stateless :
  name:string -> fluid:bool -> (context -> File.t list -> outcome) -> t
(** Build a scheduler with no cross-epoch state ([reset] is a no-op). *)

(** {1 Registry}

    Every strategy registers a {e factory}, not a value: [make] returns a
    fresh scheduler on every call, so callers that run many simulations
    concurrently (the domain-parallel experiment runner) can give each
    cell its own instance — scheduler values carry mutable cross-epoch
    state (e.g. a warm-start basis) and must never be shared between
    domains. The built-ins (postcard, flow-based and its two ablation
    variants, direct, greedy-snf, burst-95) self-register when the
    library is linked. *)

val register :
  name:string -> ?aliases:string list -> ?doc:string -> (unit -> t) -> unit
(** [register ~name factory] adds a strategy under [name] (plus optional
    lookup [aliases], e.g. "flow" for "flow-based", and a one-line [doc]
    shown by [--list-schedulers]). Raises [Invalid_argument] when any of
    the names is already taken. *)

val registered : unit -> string list
(** Canonical (alias-free) names of every registered strategy, sorted. *)

type info = {
  info_name : string;  (** Canonical name. *)
  aliases : string list;
  doc : string option;
}

val infos : unit -> info list
(** Every registered strategy with its aliases and doc line, sorted by
    canonical name. *)

val pp_registry : Format.formatter -> unit -> unit
(** Human-readable listing of {!infos} — one strategy per line with its
    aliases and doc; what both binaries print for [--list-schedulers]. *)

val factory : string -> (unit -> t) option
(** Look up a factory by canonical name or alias. *)

val make : string -> t option
(** [make name] instantiates a {e fresh} scheduler, or [None] for an
    unknown name. *)

val make_exn : string -> t
(** Like {!make} but raises [Invalid_argument] naming the unknown
    scheduler and listing the available ones. *)

val make_all : unit -> t list
(** One fresh instance of every registered strategy, in {!registered}
    order. *)

val observe : t -> t
(** Wrap a scheduler so every [schedule] call feeds the {!Obs} layer: it
    bumps the [sched.*] metrics (decisions, files offered/accepted/rejected,
    decision wall time) and, when a trace sink is installed, emits one
    ["sched.decision"] point per epoch carrying the scheduler name, epoch,
    admission counts, the rejected file ids and the decision wall time.
    Adds no overhead beyond one flag check per call while both the metrics
    registry and tracing are off. *)

val capacity_at_epoch : context -> link:int -> layer:int -> float
(** Residual capacity in relative-layer terms:
    [residual ~link ~slot:(epoch + layer)]. *)

val admit_greedy :
  files:File.t list ->
  try_solve:(File.t list -> 'a option) ->
  ('a * File.t list * File.t list) option
(** Admission-control helper: attempt [try_solve] on the full file list;
    while it returns [None], drop the file with the highest desired rate
    (the hardest to place) and retry. Returns
    [(solution, accepted, rejected)], or [None] when even the empty list
    fails (which indicates a solver problem, since an empty instance is
    trivially feasible). *)
