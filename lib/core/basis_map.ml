module Status = Lp.Status

type col_key =
  | Flow_tx of { file : int; link : int; slot : int }
  | Flow_store of { file : int; node : int; slot : int }
  | Charge of { link : int }
  | Supply of { file : int }
  | Anon_col of int

type row_key =
  | Conservation of { file : int; node : int; slot : int }
  | Capacity of { link : int; slot : int }
  | Charge_dom of { link : int; slot : int }
  | Anon_row of int

type keymap = {
  cols : col_key array;
  rows : row_key array;
}

module Registry = struct
  type t = {
    mutable cols : (int * col_key) list;
    mutable rows : (int * row_key) list;
  }

  let create () = { cols = []; rows = [] }

  let set_col t (v : Lp.Model.var) k = t.cols <- ((v :> int), k) :: t.cols
  let set_row t (r : Lp.Model.row) k = t.rows <- ((r :> int), k) :: t.rows

  let keymap t ~model =
    let cols = Array.init (Lp.Model.num_vars model) (fun j -> Anon_col j) in
    let rows = Array.init (Lp.Model.num_rows model) (fun i -> Anon_row i) in
    List.iter (fun (j, k) -> cols.(j) <- k) t.cols;
    List.iter (fun (i, k) -> rows.(i) <- k) t.rows;
    ({ cols; rows } : keymap)
end

type t = {
  col_status : (col_key, Status.Basis.var_status) Hashtbl.t;
  row_status : (row_key, Status.Basis.var_status) Hashtbl.t;
}

let capture keymap (basis : Status.Basis.t) =
  if
    Status.Basis.num_cols basis <> Array.length keymap.cols
    || Status.Basis.num_rows basis <> Array.length keymap.rows
  then invalid_arg "Basis_map.capture: keymap/basis size mismatch";
  let col_status = Hashtbl.create (Array.length keymap.cols) in
  Array.iteri
    (fun j k -> Hashtbl.replace col_status k (Status.Basis.col_status basis j))
    keymap.cols;
  let row_status = Hashtbl.create (Array.length keymap.rows) in
  Array.iteri
    (fun i k -> Hashtbl.replace row_status k (Status.Basis.row_status basis i))
    keymap.rows;
  { col_status; row_status }

(* Defaults for keys the snapshot has never seen. A brand-new column starts
   nonbasic at its bound (the cold-start choice); a brand-new row starts
   with its slack basic, i.e. the row inactive — for the capacity and
   dominance rows of fresh files that is almost always the optimal status,
   and for the equality rows the warm-start repair in the solver demotes
   the fixed slack and re-covers the row with an artificial, which is
   exactly the cold treatment of that row. *)
let apply t keymap =
  let cols =
    Array.map
      (fun k ->
        match Hashtbl.find_opt t.col_status k with
        | Some s -> s
        | None -> Status.Basis.At_lower)
      keymap.cols
  in
  let rows =
    Array.map
      (fun k ->
        match Hashtbl.find_opt t.row_status k with
        | Some s -> s
        | None -> Status.Basis.Basic)
      keymap.rows
  in
  Status.Basis.make ~cols ~rows

let hit_rate t keymap =
  let hits = ref 0 in
  Array.iter
    (fun k -> if Hashtbl.mem t.col_status k then incr hits)
    keymap.cols;
  Array.iter
    (fun k -> if Hashtbl.mem t.row_status k then incr hits)
    keymap.rows;
  let total = Array.length keymap.cols + Array.length keymap.rows in
  if total = 0 then 1. else float_of_int !hits /. float_of_int total
