module Graph = Netgraph.Graph
module Model = Lp.Model

type result = {
  plan : Plan.t;
  objective : float;
  charged : float array;
}

let solve ?params ~base ~files ?(tie_break = 1e-4) () =
  if files = [] then
    Ok
      { plan = Plan.empty;
        objective = 0.;
        charged = Array.make (Graph.num_arcs base) 0. }
  else begin
    match List.find_opt (fun f -> not (Texp_lp.deliverable ~base f)) files with
    | Some f ->
        Error
          (Printf.sprintf
             "Offline.solve: file %d cannot reach its destination within \
              its deadline"
             f.File.id)
    | None ->
    let epoch =
      List.fold_left (fun acc f -> min acc f.File.release) max_int files
    in
    let capacity ~link ~layer =
      ignore layer;
      (Graph.arc base link).Graph.capacity
    in
    let model = Model.create ~name:"postcard-offline" Model.Minimize in
    let program =
      Texp_lp.build ~model ~base ~capacity ~files ~epoch
        ~flow_obj:(fun ~cost -> tie_break *. cost)
        ~supply:`Full
    in
    let x_vars =
      Texp_lp.add_charge_coupling ~model program
        ~charged:(Array.make (Graph.num_arcs base) 0.)
        ~x_obj:(fun ~cost -> cost)
    in
    match Lp.Simplex.solve ?params model with
    | Lp.Status.Optimal s ->
        let primal = s.Lp.Status.primal in
        let plan = Texp_lp.extract_plan program ~primal in
        let charged =
          Array.map (fun (v : Model.var) -> primal.((v :> int))) x_vars
        in
        let objective = ref 0. in
        Graph.iter_arcs base (fun a ->
            objective := !objective +. (a.Graph.cost *. charged.(a.Graph.id)));
        Ok { plan; objective = !objective; charged }
    | Lp.Status.Infeasible ->
        Error "Offline.solve: some file cannot meet its deadline"
    | Lp.Status.Unbounded -> Error "Offline.solve: unbounded"
    | Lp.Status.Iteration_limit -> Error "Offline.solve: iteration limit"
  end

let price_of_myopia ~base ~online_cost ~offline =
  ignore base;
  if offline.objective <= 0. then 1. else online_cost /. offline.objective
