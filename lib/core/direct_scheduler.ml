module Graph = Netgraph.Graph

let eps = 1e-9

let make () =
  let schedule (ctx : Scheduler.context) files =
    (* Capacity already claimed by files accepted earlier in this batch. *)
    let batch_used : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let used ~link ~slot =
      try Hashtbl.find batch_used (link, slot) with Not_found -> 0.
    in
    let available ~link ~slot =
      Linkview.residual ctx.Scheduler.links ~link ~slot -. used ~link ~slot
    in
    let accepted = ref [] and rejected = ref [] and txs = ref [] in
    List.iter
      (fun f ->
        match
          Graph.find_arc ctx.Scheduler.base ~src:f.File.src ~dst:f.File.dst
        with
        | None -> rejected := f :: !rejected
        | Some link ->
            (* Even spread at the desired rate; pack any shortfall into the
               earliest later slots with spare capacity. *)
            let window = f.File.deadline in
            let per_slot = File.rate f in
            let planned = Array.make window 0. in
            let remaining = ref f.File.size in
            for i = 0 to window - 1 do
              let slot = f.File.release + i in
              let v = min (min per_slot !remaining) (available ~link ~slot) in
              let v = max v 0. in
              planned.(i) <- v;
              remaining := !remaining -. v
            done;
            (* Second pass for the remainder caused by contended slots. *)
            for i = 0 to window - 1 do
              if !remaining > eps then begin
                let slot = f.File.release + i in
                let spare = available ~link ~slot -. planned.(i) in
                if spare > eps then begin
                  let v = min spare !remaining in
                  planned.(i) <- planned.(i) +. v;
                  remaining := !remaining -. v
                end
              end
            done;
            if !remaining > 1e-6 then rejected := f :: !rejected
            else begin
              accepted := f :: !accepted;
              Array.iteri
                (fun i v ->
                  if v > eps then begin
                    let slot = f.File.release + i in
                    Hashtbl.replace batch_used (link, slot)
                      (used ~link ~slot +. v);
                    txs :=
                      { Plan.file = f.File.id; link; slot; volume = v } :: !txs
                  end)
                planned
            end)
      files;
    { Scheduler.plan = { Plan.transmissions = !txs; holdovers = [] };
      accepted = List.rev !accepted;
      rejected = List.rev !rejected }
  in
  Scheduler.observe (Scheduler.stateless ~name:"direct" ~fluid:false schedule)

let () =
  Scheduler.register ~name:"direct"
    ~doc:
      "Naive baseline: each file moves only on its direct link, spread \
       evenly at the desired rate."
    (fun () -> make ())
