module Graph = Netgraph.Graph

type t = {
  residual : link:int -> slot:int -> float;
  occupied : link:int -> slot:int -> float;
  down : link:int -> slot:int -> bool;
}

let make ~residual ~occupied ~down = { residual; occupied; down }

let of_capacity ~base =
  { residual = (fun ~link ~slot:_ -> (Graph.arc base link).Graph.capacity);
    occupied = (fun ~link:_ ~slot:_ -> 0.);
    down = (fun ~link:_ ~slot:_ -> false) }

let residual t ~link ~slot = t.residual ~link ~slot
let occupied t ~link ~slot = t.occupied ~link ~slot
let down t ~link ~slot = t.down ~link ~slot

type overlay = {
  base_view : t;
  pending : (int * int, float) Hashtbl.t;  (* (link, slot) -> volume *)
}

let booked o ~link ~slot =
  Option.value ~default:0. (Hashtbl.find_opt o.pending (link, slot))

let overlay base_view = { base_view; pending = Hashtbl.create 64 }

let view o =
  { residual =
      (fun ~link ~slot ->
        o.base_view.residual ~link ~slot -. booked o ~link ~slot);
    occupied =
      (fun ~link ~slot ->
        o.base_view.occupied ~link ~slot +. booked o ~link ~slot);
    down = o.base_view.down }

let book o ~link ~slot volume =
  if volume < 0. then invalid_arg "Linkview.book: negative volume";
  if volume > 0. then
    Hashtbl.replace o.pending (link, slot) (booked o ~link ~slot +. volume)

let book_plan o (plan : Plan.t) =
  List.iter
    (fun tx ->
      book o ~link:tx.Plan.link ~slot:tx.Plan.slot tx.Plan.volume)
    plan.Plan.transmissions

let booked_total o = Hashtbl.fold (fun _ v acc -> acc +. v) o.pending 0.

let clear o = Hashtbl.reset o.pending
