(** The Postcard online scheduler: at each epoch, solve the time-expanded
    program of {!Formulate} for the newly released files and commit the
    optimal store-and-forward plan.

    When the instance is infeasible (deadlines cannot be met under the
    residual capacities), files are dropped highest-rate-first until the
    rest fits; dropped files are reported as rejected. *)

val make :
  ?params:Lp.Simplex.params ->
  ?tie_break:float ->
  ?warm_start:bool ->
  unit ->
  Scheduler.t
(** [warm_start] (default [true]) carries each epoch's optimal simplex
    basis — re-keyed by the stable structural keys of {!Basis_map} — into
    the next epoch's solve, which typically cuts the pivot count by a
    large factor on sliding-horizon workloads. Pass [false] to force every
    solve cold (useful for benchmarking and debugging). Either way every
    epoch's plan is optimal for that epoch's program, with identical LP
    objective; but Postcard programs are massively degenerate, so warm and
    cold solves may pick different cost-equal vertices, and committing a
    different optimal plan can nudge later epochs' programs — simulated
    cost trajectories therefore agree per epoch in optimality, not
    bit-for-bit across a run. *)
