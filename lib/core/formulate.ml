module Graph = Netgraph.Graph
module Model = Lp.Model

type t = {
  base : Graph.t;
  model : Model.t;
  program : Texp_lp.t;
  x_vars : Model.var array;
}

let create ~base ~charged ~capacity ~files ~epoch ?(tie_break = 1e-4) () =
  if Array.length charged <> Graph.num_arcs base then
    invalid_arg "Formulate.create: charged size mismatch";
  Obs.Span.with_ "core.formulate" (fun () ->
      let model = Model.create ~name:"postcard" Model.Minimize in
      let program =
        Texp_lp.build ~model ~base ~capacity ~files ~epoch
          ~flow_obj:(fun ~cost -> tie_break *. cost)
          ~supply:`Full
      in
      let x_vars =
        Texp_lp.add_charge_coupling ~model program ~charged
          ~x_obj:(fun ~cost -> cost)
      in
      { base; model; program; x_vars })

let model t = t.model

let horizon t = Texp_lp.horizon t.program

type result =
  | Scheduled of {
      plan : Plan.t;
      objective : float;
      charged : float array;
    }
  | Infeasible
  | Solver_failure of string

type solve_info = {
  iterations : int;
  stats : Lp.Status.stats;
  basis : Basis_map.t option;
}

let keymap t = Texp_lp.keymap t.program ~model:t.model

let solve_with_info ?params ?warm_start ?dual_reopt t =
  let warm_start =
    match warm_start with
    | None -> None
    | Some carried -> Some (Basis_map.apply carried (keymap t))
  in
  let no_info = { iterations = 0; stats = Lp.Status.no_stats; basis = None } in
  match
    Obs.Span.with_ "core.solve" (fun () ->
        Lp.Simplex.solve ?params ?warm_start ?dual_reopt t.model)
  with
  | Lp.Status.Infeasible -> (Infeasible, no_info)
  | Lp.Status.Unbounded ->
      (Solver_failure "unbounded Postcard program", no_info)
  | Lp.Status.Iteration_limit ->
      (Solver_failure "iteration limit reached", no_info)
  | Lp.Status.Optimal s ->
      Obs.Span.with_ "core.extract" (fun () ->
          let primal = s.Lp.Status.primal in
          let plan = Texp_lp.extract_plan t.program ~primal in
          let charged =
            Array.map (fun (v : Model.var) -> primal.((v :> int))) t.x_vars
          in
          (* Report the pure paper objective (without the tie-break term). *)
          let objective = ref 0. in
          Graph.iter_arcs t.base (fun a ->
              objective := !objective +. (a.Graph.cost *. charged.(a.Graph.id)));
          let basis =
            match s.Lp.Status.basis with
            | None -> None
            | Some b -> Some (Basis_map.capture (keymap t) b)
          in
          (Scheduled { plan; objective = !objective; charged },
           { iterations = s.Lp.Status.iterations;
             stats = s.Lp.Status.stats;
             basis }))

let solve ?params t = fst (solve_with_info ?params t)
