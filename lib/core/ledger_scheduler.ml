module Graph = Netgraph.Graph
module Paths = Netgraph.Paths

let eps = 1e-9
let tol = 1e-6

(* A filled candidate path: per hop, the volumes placed in each slot of
   that hop's window. *)
type fill = {
  f_arcs : int array;  (* arc ids, src-to-dst order *)
  f_windows : (int * int) array;  (* inclusive absolute-slot windows *)
  f_x : float array array;  (* per hop, volume per window offset *)
}

(* Candidate paths for [file], each a non-empty arc-id list: the
   cost-shortest path, the direct arc, the cheapest path under {e
   marginal} prices (each arc's price scaled by the fraction of the file
   that could not ride free under its already-charged peak — the hub
   consolidation the LP finds by reusing paid-for links), and the
   shortest detour avoiding each primary arc in turn (cheapest first) —
   deduplicated, at most [max_paths]. *)
let candidate_paths ~base ~links ~charged ~max_paths ~start (file : File.t) =
  let src = file.File.src and dst = file.File.dst in
  let add acc p = if p = [] || List.mem p acc then acc else p :: acc in
  let path_cost p =
    List.fold_left (fun c a -> c +. (Graph.arc base a).Graph.cost) 0. p
  in
  let primary =
    let tree = Paths.dijkstra base ~src in
    Paths.path_to tree base ~dst
  in
  let acc = match primary with Some p -> add [] p | None -> [] in
  let acc =
    match Graph.find_arc base ~src ~dst with
    | Some a -> add acc [ a ]
    | None -> acc
  in
  let acc =
    let last = File.last_slot file in
    let tree =
      Paths.dijkstra_weighted base ~src
        ~weight:(fun a ->
          let link = a.Graph.id in
          let free = ref 0. in
          for slot = start to last do
            let occ = Linkview.occupied links ~link ~slot in
            let resid = Linkview.residual links ~link ~slot in
            free :=
              !free +. Float.min resid (Float.max 0. (charged.(link) -. occ))
          done;
          (* The floor keeps fully-free arcs from growing paths without
             bound; the true ranking is [paid_increment] anyway. *)
          let paid_frac =
            Float.max 0.02 ((file.File.size -. !free) /. file.File.size)
          in
          a.Graph.cost *. paid_frac)
        ()
    in
    match Paths.path_to tree base ~dst with Some p -> add acc p | None -> acc
  in
  let acc =
    match primary with
    | Some (_ :: _ as arcs) ->
        let detours =
          List.filter_map
            (fun skip ->
              let tree =
                Paths.dijkstra_filtered base ~src ~usable:(fun a ->
                    a.Graph.id <> skip)
              in
              Paths.path_to tree base ~dst)
            arcs
        in
        let detours =
          List.sort
            (fun a b -> Float.compare (path_cost a) (path_cost b))
            detours
        in
        List.fold_left add acc detours
    | _ -> acc
  in
  List.filteri (fun i _ -> i < max_paths) (List.rev acc)

(* Fill one path as late as possible. [start] is the first usable slot
   (max of release and the current epoch). Hops are processed last-first:
   hop [i]'s placements induce, for hop [i - 1], the minimum cumulative
   volume that must have crossed by the end of each slot (store-and-forward
   conservation: volume sent on hop [i] during slot [s] must sit at the
   hop's tail by slot [s], i.e. have crossed hop [i - 1] by slot [s - 1]).

   Each hop's placement is ONE descending pass from scratch against a
   per-slot cap profile: the pass enforces the suffix constraints (volume
   sent during slots >= s must not exceed what the downstream hop has not
   yet required by slot s - 1) slot by slot, and a single pass with x = 0
   at every slot it has yet to visit can never retroactively break the
   constraint at a slot it visits later. Stacking a second pass on top of
   a first CAN: a top-up adding volume late violates the suffix bound at
   an early slot the first pass already filled, so a pass that falls
   short resets the hop and re-sweeps rather than topping up.

   When [prefer_free] the cap profile is a water level: the smallest
   usage ceiling — never below the already-charged peak, so volume that
   can ride free still does — that fits the whole file in the window.
   Peak-billed paid volume is thereby spread flat instead of burst into
   the last slot, while free volume still packs as late as possible
   (inside the level, later slots fill first). If the suffix constraints
   push volume out from under the level, the hop falls back to a pure
   ALAP pass against the raw residual, so admissibility never shrinks. *)
let fill_path ~links ~(charged : float array) ~start ~(file : File.t) ~arcs
    ~prefer_free =
  let h = Array.length arcs in
  let last = File.last_slot file in
  if h = 0 || start + h - 1 > last then None
  else begin
    let size = file.File.size in
    let windows =
      Array.init h (fun i -> (start + i, last - (h - 1 - i)))
    in
    let xs =
      Array.init h (fun i ->
          let b, e = windows.(i) in
          Array.make (e - b + 1) 0.)
    in
    (* For the hop currently being filled, [req s] is the cumulative
       volume its downstream hop sends during slots <= s + 1 — the
       minimum this hop must itself have sent by the end of slot [s]. *)
    let req = ref (fun _s -> 0.) in
    let ok = ref true in
    for i = h - 1 downto 0 do
      if !ok then begin
        let b, e = windows.(i) in
        let w = e - b + 1 in
        let x = xs.(i) in
        let link = arcs.(i) in
        let occ =
          Array.init w (fun idx -> Linkview.occupied links ~link ~slot:(b + idx))
        in
        let resid =
          Array.init w (fun idx -> Linkview.residual links ~link ~slot:(b + idx))
        in
        let need = !req in
        let total = ref 0. in
        (* One descending pass from scratch against [cap_of]. *)
        let sweep cap_of =
          Array.fill x 0 w 0.;
          total := 0.;
          let placed_after = ref 0. in
          for idx = w - 1 downto 0 do
            let s = b + idx in
            (* Suffix cap: everything sent during slots >= s is volume not
               yet required downstream by the end of slot s - 1. *)
            let cap_suffix = size -. need (s - 1) -. !placed_after in
            let want = size -. !total in
            let add =
              Float.max 0. (Float.min (cap_of idx) (Float.min cap_suffix want))
            in
            x.(idx) <- add;
            total := !total +. add;
            placed_after := !placed_after +. add
          done
        in
        if prefer_free then begin
          let lo = ref charged.(link) and hi = ref charged.(link) in
          for idx = 0 to w - 1 do
            hi := Float.max !hi (occ.(idx) +. resid.(idx))
          done;
          let fits l =
            let acc = ref 0. in
            for idx = 0 to w - 1 do
              acc :=
                !acc +. Float.max 0. (Float.min resid.(idx) (l -. occ.(idx)))
            done;
            !acc +. tol >= size
          in
          if fits !lo then hi := !lo
          else
            for _ = 1 to 50 do
              let mid = 0.5 *. (!lo +. !hi) in
              if fits mid then hi := mid else lo := mid
            done;
          let level = !hi +. tol in
          sweep (fun idx -> Float.min resid.(idx) (level -. occ.(idx)))
        end;
        if size -. !total > tol then sweep (fun idx -> resid.(idx));
        if size -. !total > tol then ok := false
        else begin
          let cum = Array.make (w + 1) 0. in
          for j = 0 to w - 1 do
            cum.(j + 1) <- cum.(j) +. x.(j)
          done;
          let cum_at s =
            if s < b then 0. else if s >= e then cum.(w) else cum.(s - b + 1)
          in
          req := fun s -> cum_at (s + 1)
        end
      end
    done;
    if !ok then Some { f_arcs = arcs; f_windows = windows; f_x = xs }
    else None
  end

(* Price-weighted increase of the links' projected charged peaks — the
   combinatorial stand-in for the LP's percentile objective, used to rank
   feasible candidate paths. *)
let paid_increment ~links ~(charged : float array) ~base fill =
  let total = ref 0. in
  Array.iteri
    (fun i link ->
      let b, e = fill.f_windows.(i) in
      let x = fill.f_x.(i) in
      let price = (Graph.arc base link).Graph.cost in
      let cur = ref charged.(link) in
      let next = ref charged.(link) in
      for idx = 0 to e - b do
        let occ = Linkview.occupied links ~link ~slot:(b + idx) in
        if occ > !cur then cur := occ;
        if occ +. x.(idx) > !next then next := occ +. x.(idx)
      done;
      if !next > !cur then total := !total +. (price *. (!next -. !cur)))
    fill.f_arcs;
  !total

let plan_of_fill ~(file : File.t) fill =
  let txs = ref [] in
  for i = Array.length fill.f_arcs - 1 downto 0 do
    let b, _ = fill.f_windows.(i) in
    Array.iteri
      (fun idx v ->
        if v > eps then
          txs :=
            { Plan.file = file.File.id;
              link = fill.f_arcs.(i);
              slot = b + idx;
              volume = v }
            :: !txs)
      fill.f_x.(i)
  done;
  { Plan.transmissions = !txs; holdovers = [] }

(* Best single-path fill of [file] against [links]: the free-first pass
   over every candidate path keeps the cheapest fill by projected peak
   increment; free-first downstream fills can tighten upstream
   requirements on multi-hop paths, so pure ALAP is the feasibility
   oracle, retried before denying. *)
let place_once ~max_paths ~base ~links ~charged ~epoch (file : File.t) =
  let start = max file.File.release epoch in
  let paths = candidate_paths ~base ~links ~charged ~max_paths ~start file in
  let try_fill ~prefer_free arcs =
    fill_path ~links ~charged ~start ~file ~arcs:(Array.of_list arcs)
      ~prefer_free
  in
  let best =
    List.fold_left
      (fun best arcs ->
        match try_fill ~prefer_free:true arcs with
        | None -> best
        | Some fl -> (
            let c = paid_increment ~links ~charged ~base fl in
            match best with
            | Some (bc, _) when bc <= c -> best
            | _ -> Some (c, fl)))
      None paths
  in
  match best with
  | Some _ -> best
  | None ->
      List.fold_left
        (fun best arcs ->
          match best with
          | Some _ -> best
          | None -> (
              match try_fill ~prefer_free:false arcs with
              | None -> None
              | Some fl ->
                  Some (paid_increment ~links ~charged ~base fl, fl)))
        None paths

(* Place a file, splitting it into [chunks] equal parts routed
   independently: each chunk takes the currently cheapest candidate path
   over an overlay of its predecessors' bookings, so when one path's
   projected peak rises past an alternative's the remainder switches
   paths — the combinatorial stand-in for the LP's fractional multi-path
   splits. Greedy chunking can strand a tail the whole-file fill would
   fit, so a failed chunk falls back to the single-shot placement. *)
let place ?(chunks = 5) ~max_paths (ctx : Scheduler.context) (file : File.t) =
  let base = ctx.Scheduler.base in
  let charged = ctx.Scheduler.charged in
  let epoch = ctx.Scheduler.epoch in
  let single () =
    Option.map
      (fun (_, fl) -> plan_of_fill ~file fl)
      (place_once ~max_paths ~base ~links:ctx.Scheduler.links ~charged ~epoch
         file)
  in
  if chunks <= 1 then single ()
  else begin
    let o = Linkview.overlay ctx.Scheduler.links in
    let links = Linkview.view o in
    let part = file.File.size /. float_of_int chunks in
    let rec go i acc =
      if i = chunks then Some acc
      else begin
        (* The last chunk absorbs the division's rounding error. *)
        let size =
          if i = chunks - 1 then
            file.File.size -. (part *. float_of_int (chunks - 1))
          else part
        in
        let piece =
          File.make ~id:file.File.id ~src:file.File.src ~dst:file.File.dst
            ~size ~deadline:file.File.deadline ~release:file.File.release
        in
        match place_once ~max_paths ~base ~links ~charged ~epoch piece with
        | None -> None
        | Some (_, fl) ->
            let p = plan_of_fill ~file:piece fl in
            Linkview.book_plan o p;
            go (i + 1) (Plan.concat acc p)
      end
    in
    match go 0 Plan.empty with Some plan -> Some plan | None -> single ()
  end

let make ?(max_paths = 4) () =
  let admit ctx file =
    match place ~max_paths ctx file with
    | Some plan -> Scheduler.Admitted plan
    | None -> Scheduler.Denied
  in
  let schedule (ctx : Scheduler.context) files =
    match files with
    | [] -> { Scheduler.plan = Plan.empty; accepted = []; rejected = [] }
    | _ ->
        let o = Linkview.overlay ctx.Scheduler.links in
        let ctx' = { ctx with Scheduler.links = Linkview.view o } in
        let accepted = ref [] in
        let rejected = ref [] in
        let plan = ref Plan.empty in
        List.iter
          (fun f ->
            match place ~max_paths ctx' f with
            | Some p ->
                Linkview.book_plan o p;
                plan := Plan.concat !plan p;
                accepted := f :: !accepted
            | None -> rejected := f :: !rejected)
          files;
        { Scheduler.plan = !plan;
          accepted = List.rev !accepted;
          rejected = List.rev !rejected }
  in
  Scheduler.create ~name:"ledger" ~fluid:false ~admit schedule

let () =
  Scheduler.register ~name:"ledger" ~aliases:[ "alap" ]
    ~doc:"combinatorial ALAP admission over residual ledgers (no LP)"
    (fun () -> Scheduler.observe (make ()));
  Scheduler.register ~name:"postcard-tiered" ~aliases:[ "tiered" ]
    ~doc:"ledger fast tier with the postcard LP as fallback (serve default)"
    (fun () ->
      Scheduler.observe
        (Scheduler.tiered ~name:"postcard-tiered" ~fast:(make ())
           ~fallback:(Postcard_scheduler.make ()) ()))
