let log_src = Logs.Src.create "postcard.scheduler" ~doc:"Postcard scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

let make ?params ?(tie_break = 1e-7) ?(warm_start = true) () =
  (* The previous epoch's optimal basis, re-keyed by stable structural
     keys. Consecutive epochs share most of their columns and rows (the
     horizon slides by one slot), so crashing the simplex from this basis
     typically saves the bulk of the pivots. Correctness never depends on
     it: the solver repairs or discards anything stale. *)
  let carried : Basis_map.t option ref = ref None in
  let schedule (ctx : Scheduler.context) files =
    (* A file whose destination is out of hop range has no time-expanded
       subgraph at all: formulating it would silently satisfy it with
       zero volume. Reject it up front. *)
    let files, unroutable =
      List.partition
        (Texp_lp.deliverable ~base:ctx.Scheduler.base)
        files
    in
    if files = [] then
      { Scheduler.plan = Plan.empty; accepted = []; rejected = unroutable }
    else begin
      let capacity ~link ~layer = Scheduler.capacity_at_epoch ctx ~link ~layer in
      let try_solve subset =
        if subset = [] then
          Some
            ( Formulate.Scheduled
                { plan = Plan.empty;
                  objective = 0.;
                  charged = Array.copy ctx.Scheduler.charged },
              None )
        else begin
          let formulation =
            Formulate.create ~base:ctx.Scheduler.base
              ~charged:ctx.Scheduler.charged ~capacity ~files:subset
              ~epoch:ctx.Scheduler.epoch ~tie_break ()
          in
          let warm = if warm_start then !carried else None in
          match Formulate.solve_with_info ?params ?warm_start:warm formulation with
          | Formulate.Scheduled _ as s, info ->
              Some (s, info.Formulate.basis)
          | Formulate.Infeasible, _ -> None
          | Formulate.Solver_failure msg, _ ->
              Log.warn (fun m ->
                  m "epoch %d: solver failure (%s); treating as infeasible"
                    ctx.Scheduler.epoch msg);
              None
        end
      in
      match Scheduler.admit_greedy ~files ~try_solve with
      | Some ((Formulate.Scheduled { plan; _ }, basis), accepted, rejected) ->
          (* Carry only the accepted solve's basis forward; when nothing
             was solved (all files dropped) the previous one stays. *)
          (match basis with Some _ -> carried := basis | None -> ());
          { Scheduler.plan; accepted; rejected = rejected @ unroutable }
      | Some (((Formulate.Infeasible | Formulate.Solver_failure _), _), _, _) ->
          assert false
      | None ->
          (* Even the empty instance failed; nothing we can do. *)
          { Scheduler.plan = Plan.empty; accepted = [];
            rejected = files @ unroutable }
    end
  in
  Scheduler.observe
    (Scheduler.create ~name:"postcard" ~fluid:false
       ~reset:(fun () -> carried := None)
       schedule)

let () =
  Scheduler.register ~name:"postcard"
    ~doc:
      "The paper's online algorithm: per-epoch LP over the time-expanded \
       store-and-forward graph, warm-started from the previous basis."
    (fun () -> make ())
