module Graph = Netgraph.Graph
module Model = Lp.Model

type instance = {
  base : Graph.t;
  cap : float array;
  occ_peak : float array;
  charged : float array;
}

let instance_of_context (ctx : Scheduler.context) ~horizon =
  let m = Graph.num_arcs ctx.Scheduler.base in
  let cap = Array.make m infinity and occ_peak = Array.make m 0. in
  let links = ctx.Scheduler.links in
  for l = 0 to m - 1 do
    for layer = 0 to horizon - 1 do
      let slot = ctx.Scheduler.epoch + layer in
      cap.(l) <- min cap.(l) (Linkview.residual links ~link:l ~slot);
      occ_peak.(l) <- max occ_peak.(l) (Linkview.occupied links ~link:l ~slot)
    done
  done;
  { base = ctx.Scheduler.base;
    cap;
    occ_peak;
    charged = Array.copy ctx.Scheduler.charged }

type flows = {
  lambda : float;
  rates : float array array;
  estimated_cost : float;
}

let tie_break = 1e-4

(* Flow variables exist only on links with usable capacity: creating the
   zero-capacity rest would hand the simplex a swamp of degenerate
   columns (the early-epoch "free subgraph" is typically tiny). Variables
   are [vars.(k).(l) : Model.var option]. *)
let make_flow_vars model ~nfiles ~num_links ~usable ~obj_of =
  Array.init nfiles (fun k ->
      Array.init num_links (fun l ->
          if usable l then
            Some
              (Model.add_var model
                 ~name:(Printf.sprintf "f_%d_%d" k l)
                 ~obj:(obj_of l) ())
          else None))

(* Per-commodity conservation rows over the static graph. [supply k] gives
   the source injection for commodity [k] (a list of terms to add to the
   source/destination rows, or a constant). *)
let add_conservation model inst ~files ~vars ~supply_term ~supply_rhs =
  let n = Graph.num_nodes inst.base in
  List.iteri
    (fun k f ->
      for node = 0 to n - 1 do
        let terms = ref [] in
        let add sign id =
          match vars.(k).(id) with
          | Some v -> terms := (v, sign) :: !terms
          | None -> ()
        in
        List.iter (add 1.) (Graph.out_arcs inst.base node);
        List.iter (add (-1.)) (Graph.in_arcs inst.base node);
        let extra, rhs =
          if node = f.File.src then (supply_term k ~sign:(-1.), supply_rhs k ~sign:1.)
          else if node = f.File.dst then (supply_term k ~sign:1., supply_rhs k ~sign:(-1.))
          else ([], 0.)
        in
        let all_terms = extra @ !terms in
        if all_terms <> [] || rhs <> 0. then
          ignore
            (Model.add_constraint model
               ~name:(Printf.sprintf "cons_f%d_n%d" f.File.id node)
               all_terms Model.Eq rhs)
      done)
    files

(* Aggregate capacity rows over the usable links only. *)
let add_capacity_rows model ~num_links ~usable ~vars ~bound =
  for l = 0 to num_links - 1 do
    if usable l then begin
      let terms =
        Array.to_list vars
        |> List.filter_map (fun per_link ->
               Option.map (fun v -> (v, 1.)) per_link.(l))
      in
      if terms <> [] then
        ignore
          (Model.add_constraint model
             ~name:(Printf.sprintf "cap_%d" l)
             terms Model.Le (bound l))
    end
  done

(* Can every commodity reach its destination inside the subgraph of links
   satisfying [usable]? BFS per commodity; the LP is skipped when the
   answer is no (for stage 1 that pins lambda to 0). *)
let all_connected inst ~files ~usable =
  let n = Graph.num_nodes inst.base in
  List.for_all
    (fun f ->
      let visited = Array.make n false in
      let queue = Queue.create () in
      visited.(f.File.src) <- true;
      Queue.push f.File.src queue;
      let found = ref false in
      while not (Queue.is_empty queue || !found) do
        let u = Queue.pop queue in
        List.iter
          (fun id ->
            let a = Graph.arc inst.base id in
            if usable id && not visited.(a.Graph.dst) then begin
              visited.(a.Graph.dst) <- true;
              if a.Graph.dst = f.File.dst then found := true;
              Queue.push a.Graph.dst queue
            end)
          (Graph.out_arcs inst.base u)
      done;
      !found)
    files

let estimated_cost inst totals =
  let acc = ref 0. in
  Graph.iter_arcs inst.base (fun a ->
      let l = a.Graph.id in
      let volume = max inst.charged.(l) (inst.occ_peak.(l) +. totals.(l)) in
      acc := !acc +. (a.Graph.cost *. volume));
  !acc

let totals_of_rates inst rates =
  let m = Graph.num_arcs inst.base in
  let totals = Array.make m 0. in
  Array.iter
    (fun per_link ->
      Array.iteri (fun l r -> totals.(l) <- totals.(l) +. r) per_link)
    rates;
  ignore inst;
  totals

let eps_rate = 1e-9

(* Extract rates.(k).(l) from a solution given the variable layout. *)
let extract_rates primal ~files ~vars =
  List.mapi
    (fun k _ ->
      Array.map
        (function
          | Some (v : Model.var) ->
              let x = primal.((v :> int)) in
              if x > eps_rate then x else 0.
          | None -> 0.)
        vars.(k))
    files
  |> Array.of_list

let zero_rates inst ~files =
  Array.of_list
    (List.map (fun _ -> Array.make (Graph.num_arcs inst.base) 0.) files)

(* Free headroom below the already-charged volume. *)
let free_headroom inst l =
  min inst.cap.(l) (max 0. (inst.charged.(l) -. inst.occ_peak.(l)))

let solve_stage1 ?params inst ~files =
  let m = Graph.num_arcs inst.base in
  let nfiles = List.length files in
  let usable l = free_headroom inst l > eps_rate in
  (* Short-circuit: with any commodity cut off from free capacity, the
     maximum concurrent fraction is zero and there is nothing to route
     (this is the common case early in a charging period, and the LP it
     avoids is pathologically degenerate). *)
  if not (all_connected inst ~files ~usable) then
    Some (0., zero_rates inst ~files)
  else begin
    let model = Model.create ~name:"flow-stage1" Model.Maximize in
    let lambda = Model.add_var model ~name:"lambda" ~lb:0. ~ub:1. ~obj:1. () in
    let vars =
      make_flow_vars model ~nfiles ~num_links:m ~usable ~obj_of:(fun _ -> 0.)
    in
    let rates = List.map File.rate files in
    let rate k = List.nth rates k in
    add_conservation model inst ~files ~vars
      ~supply_term:(fun k ~sign -> [ (lambda, sign *. rate k) ])
      ~supply_rhs:(fun _ ~sign:_ -> 0.);
    add_capacity_rows model ~num_links:m ~usable ~vars
      ~bound:(free_headroom inst);
    match Lp.Simplex.solve ?params model with
    | Lp.Status.Optimal s ->
        let lambda_star = min 1. (max 0. s.Lp.Status.primal.((lambda :> int))) in
        if lambda_star < eps_rate then Some (0., zero_rates inst ~files)
        else begin
          (* Polish: among maximum-concurrent routings, pick the cheapest
             and least-travelled one. *)
          let model2 = Model.create ~name:"flow-stage1-polish" Model.Minimize in
          let vars2 =
            make_flow_vars model2 ~nfiles ~num_links:m ~usable
              ~obj_of:(fun l -> (Graph.arc inst.base l).Graph.cost *. tie_break)
          in
          add_conservation model2 inst ~files ~vars:vars2
            ~supply_term:(fun _ ~sign:_ -> [])
            ~supply_rhs:(fun k ~sign -> sign *. lambda_star *. rate k);
          add_capacity_rows model2 ~num_links:m ~usable ~vars:vars2
            ~bound:(free_headroom inst);
          match Lp.Simplex.solve ?params model2 with
          | Lp.Status.Optimal s2 ->
              Some
                (lambda_star, extract_rates s2.Lp.Status.primal ~files ~vars:vars2)
          | Lp.Status.Infeasible | Lp.Status.Unbounded
          | Lp.Status.Iteration_limit ->
              (* Fall back to the unpolished stage-1 flows. *)
              Some (lambda_star, extract_rates s.Lp.Status.primal ~files ~vars)
        end
    | Lp.Status.Infeasible | Lp.Status.Unbounded | Lp.Status.Iteration_limit ->
        None
  end

(* Stage 2 in two flavours.

   [`Literal] is the paper's wording: a plain minimum-cost multicommodity
   flow for the residual demand — each unit of flow on a link costs the
   link price, regardless of charge headroom left over by stage 1.

   [`Excess] is the natural strengthening: only volume pushing a link's
   total above the already-charged level costs anything, so stage 2 keeps
   free-riding whatever headroom stage 1 left unused. *)
let solve_stage2 ?params inst ~files ~lambda ~stage1_rates ~mode =
  let m = Graph.num_arcs inst.base in
  let nfiles = List.length files in
  let stage1_totals = totals_of_rates inst stage1_rates in
  let residual_cap l = inst.cap.(l) -. stage1_totals.(l) in
  let usable l = residual_cap l > eps_rate in
  if not (all_connected inst ~files ~usable) then None
  else begin
    let model = Model.create ~name:"flow-stage2" Model.Minimize in
    let flow_cost cost =
      match mode with
      | `Literal -> cost
      | `Excess -> cost *. tie_break
    in
    let vars =
      make_flow_vars model ~nfiles ~num_links:m ~usable
        ~obj_of:(fun l -> flow_cost (Graph.arc inst.base l).Graph.cost)
    in
    let rates = List.map File.rate files in
    let rate k = List.nth rates k in
    add_conservation model inst ~files ~vars
      ~supply_term:(fun _ ~sign:_ -> [])
      ~supply_rhs:(fun k ~sign -> sign *. (1. -. lambda) *. rate k);
    (match mode with
     | `Literal -> ()
     | `Excess ->
         for l = 0 to m - 1 do
           if usable l then begin
             (* Charged excess: e_l >= occ + stage1 + stage2 - charged. *)
             let a = Graph.arc inst.base l in
             let excess =
               Model.add_var model ~name:(Printf.sprintf "e_%d" l)
                 ~obj:a.Graph.cost ()
             in
             let terms =
               Array.to_list vars
               |> List.filter_map (fun per_link ->
                      Option.map (fun v -> (v, 1.)) per_link.(l))
             in
             ignore
               (Model.add_constraint model ~name:(Printf.sprintf "exc_%d" l)
                  ((excess, -1.) :: terms)
                  Model.Le
                  (inst.charged.(l) -. inst.occ_peak.(l) -. stage1_totals.(l)))
           end
         done);
    add_capacity_rows model ~num_links:m
      ~usable:(fun l -> usable l && inst.cap.(l) < infinity)
      ~vars ~bound:residual_cap;
    match Lp.Simplex.solve ?params model with
    | Lp.Status.Optimal s -> Some (extract_rates s.Lp.Status.primal ~files ~vars)
    | Lp.Status.Infeasible | Lp.Status.Unbounded | Lp.Status.Iteration_limit ->
        None
  end

let combine_rates a b =
  Array.mapi (fun k row -> Array.mapi (fun l r -> r +. b.(k).(l)) row) a

let solve_two_stage_mode ?params inst ~files ~mode =
  if files = [] then
    Some
      { lambda = 1.;
        rates = [||];
        estimated_cost = estimated_cost inst (totals_of_rates inst [||]) }
  else
    match solve_stage1 ?params inst ~files with
    | None -> None
    | Some (lambda, stage1_rates) -> (
        match solve_stage2 ?params inst ~files ~lambda ~stage1_rates ~mode with
        | None -> None
        | Some stage2_rates ->
            let rates = combine_rates stage1_rates stage2_rates in
            let totals = totals_of_rates inst rates in
            Some { lambda; rates; estimated_cost = estimated_cost inst totals })

let solve_two_stage ?params inst ~files =
  solve_two_stage_mode ?params inst ~files ~mode:`Literal

let solve_two_stage_excess ?params inst ~files =
  solve_two_stage_mode ?params inst ~files ~mode:`Excess

let solve_joint ?params inst ~files =
  let m = Graph.num_arcs inst.base in
  let nfiles = List.length files in
  if nfiles = 0 then
    Some
      { lambda = 1.;
        rates = [||];
        estimated_cost = estimated_cost inst (Array.make m 0.) }
  else begin
    let usable l = inst.cap.(l) > eps_rate in
    if not (all_connected inst ~files ~usable) then None
    else begin
      let model = Model.create ~name:"flow-joint" Model.Minimize in
      let vars =
        make_flow_vars model ~nfiles ~num_links:m ~usable
          ~obj_of:(fun l -> (Graph.arc inst.base l).Graph.cost *. tie_break)
      in
      let rates = List.map File.rate files in
      let rate k = List.nth rates k in
      add_conservation model inst ~files ~vars
        ~supply_term:(fun _ ~sign:_ -> [])
        ~supply_rhs:(fun k ~sign -> sign *. rate k);
      for l = 0 to m - 1 do
        if usable l then begin
          let a = Graph.arc inst.base l in
          let excess =
            Model.add_var model ~name:(Printf.sprintf "e_%d" l)
              ~obj:a.Graph.cost ()
          in
          let terms =
            Array.to_list vars
            |> List.filter_map (fun per_link ->
                   Option.map (fun v -> (v, 1.)) per_link.(l))
          in
          ignore
            (Model.add_constraint model ~name:(Printf.sprintf "exc_%d" l)
               ((excess, -1.) :: terms)
               Model.Le
               (inst.charged.(l) -. inst.occ_peak.(l)))
        end
      done;
      add_capacity_rows model ~num_links:m
        ~usable:(fun l -> usable l && inst.cap.(l) < infinity)
        ~vars
        ~bound:(fun l -> inst.cap.(l));
      match Lp.Simplex.solve ?params model with
      | Lp.Status.Optimal s ->
          let rates = extract_rates s.Lp.Status.primal ~files ~vars in
          let totals = totals_of_rates inst rates in
          Some
            { lambda = 1.; rates; estimated_cost = estimated_cost inst totals }
      | Lp.Status.Infeasible | Lp.Status.Unbounded | Lp.Status.Iteration_limit
        ->
          None
    end
  end

let plan_of_flows ~files ~epoch flows =
  let txs = ref [] in
  List.iteri
    (fun k f ->
      if k < Array.length flows.rates then
        Array.iteri
          (fun l r ->
            if r > eps_rate then
              for i = 0 to f.File.deadline - 1 do
                txs :=
                  { Plan.file = f.File.id; link = l; slot = epoch + i; volume = r }
                  :: !txs
              done)
          flows.rates.(k))
    files;
  { Plan.transmissions = !txs; holdovers = [] }

let make ?params ?(variant = `Two_stage) () =
  let solve =
    match variant with
    | `Two_stage -> solve_two_stage ?params
    | `Two_stage_excess -> solve_two_stage_excess ?params
    | `Joint -> solve_joint ?params
  in
  let name =
    match variant with
    | `Two_stage -> "flow-based"
    | `Two_stage_excess -> "flow-excess"
    | `Joint -> "flow-joint"
  in
  let schedule (ctx : Scheduler.context) files =
    if files = [] then
      { Scheduler.plan = Plan.empty; accepted = []; rejected = [] }
    else begin
      let horizon =
        List.fold_left (fun acc f -> max acc f.File.deadline) 1 files
      in
      let inst = instance_of_context ctx ~horizon in
      let try_solve subset =
        match solve inst ~files:subset with
        | Some flows -> Some flows
        | None -> None
      in
      match Scheduler.admit_greedy ~files ~try_solve with
      | Some (flows, accepted, rejected) ->
          { Scheduler.plan =
              plan_of_flows ~files:accepted ~epoch:ctx.Scheduler.epoch flows;
            accepted;
            rejected }
      | None ->
          { Scheduler.plan = Plan.empty; accepted = []; rejected = files }
    end
  in
  Scheduler.observe (Scheduler.stateless ~name ~fluid:true schedule)

let () =
  Scheduler.register ~name:"flow-based" ~aliases:[ "flow" ]
    ~doc:
      "The paper's Sec. II-B fluid baseline: per-epoch two-stage LP \
       (min-rate then min-cost) over the static graph."
    (fun () -> make ());
  Scheduler.register ~name:"flow-excess"
    ~doc:
      "flow-based ablation: stage two minimizes only the charge excess \
       over the running peak."
    (fun () -> make ~variant:`Two_stage_excess ());
  Scheduler.register ~name:"flow-joint"
    ~doc:
      "flow-based ablation: a single joint LP instead of the paper's \
       two-stage decomposition."
    (fun () -> make ~variant:`Joint ())
