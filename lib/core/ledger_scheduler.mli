(** Combinatorial admission tier: per-link residual-capacity ledgers with
    as-late-as-possible placement under deadline guarantees.

    Where {!Postcard_scheduler} solves a time-expanded LP per epoch, this
    tier admits and routes each file in [O(paths × slots)] with no LP, in
    the style of DCRoute: pick a handful of candidate paths, and on each
    path fill the file's per-hop windows {e backwards} — as late as the
    deadline allows — against the residual-capacity ledgers the
    {!Linkview} exposes. Placing late keeps the near-term slots free for
    files that have not arrived yet, which is what makes the greedy
    admission safe; placing within per-hop windows
    [[release + i, release + T - 1 - (h - 1 - i)]] with the suffix-sum
    requirement [cum_i(s) >= cum_{i+1}(s+1)] guarantees slot-accurate
    store-and-forward conservation, so an admitted file is deliverable by
    its deadline under the booked ledgers by construction.

    Four refinements over plain ALAP:

    - {b Water-filled paid volume, free volume first.} Volume above the
      charged waterline is billed by the link's peak slot usage, so each
      hop is filled in one backwards pass under the smallest usage
      ceiling — never below the already-charged peak, so volume that can
      ride free still does, as late as possible — that fits the file in
      its window. Paid spillover is thereby spread flat instead of burst
      into the last slot. Each hop's final placement always comes from a
      single from-scratch pass (stacked top-up passes can retroactively
      break the suffix caps at slots an earlier pass already filled);
      when the suffix caps push volume out from under the level the hop
      re-sweeps against the raw residual, and when no candidate path
      fits levelled the scheduler retries every path with the
      cost-oblivious pure-ALAP fill before denying.
    - {b Peak-increment routing.} Among feasible candidate paths the
      scheduler picks the one whose fill raises the links' projected
      charged peaks the least (price-weighted) — the combinatorial
      analogue of the LP's percentile objective. One candidate is the
      cheapest path under {e marginal} prices (each arc's price scaled by
      the fraction of the file that could not ride free under its
      already-charged peak), which finds the hub consolidation the LP
      gets from reusing paid-for links.
    - {b Chunked multi-path splitting.} Each file is split into a few
      equal chunks routed independently over an overlay of their
      predecessors' bookings, so when one path's projected peak rises
      past an alternative's the remainder switches paths — the
      combinatorial stand-in for the LP's fractional splits. A chunk that
      fails falls back to whole-file single-path placement, so
      admissibility never shrinks.

    Ledgers stay incrementally consistent across commits, strands and
    re-offers for free: the scheduler is stateless and reads capacity
    only through [ctx.links], which the engine rebuilds each epoch from
    its post-commit, post-void ledger; within a batch, accepted plans are
    stacked on a {!Linkview.overlay}.

    Registers itself as ["ledger"] (alias ["alap"]) and — composed with
    the LP via {!Scheduler.tiered} — as ["postcard-tiered"] (alias
    ["tiered"]), the serving daemon's default. *)

val make : ?max_paths:int -> unit -> Scheduler.t
(** Fresh instance (unobserved). [max_paths] (default 4) caps the
    candidate paths tried per chunk: the cost-shortest path, the direct
    arc, the cheapest path under marginal (charged-discounted) prices,
    and the shortest detours avoiding each primary arc in turn. The
    returned scheduler exposes both the batch [schedule] and the
    incremental [admit] capability. *)
