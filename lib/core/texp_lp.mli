(** Shared machinery for linear programs on time-expanded graphs.

    {!Formulate} (the Postcard program), {!Bulk} (problem (11)) and
    {!Budget} (the budget-constrained variant) all need the same skeleton:
    per-file fraction variables [M^k_ijn] on the file's reachable
    time-expanded subgraph, per-file flow conservation, aggregate capacity
    rows, optional charged-volume coupling, and plan extraction. This
    module provides that skeleton; each formulation adds its own objective
    and extra rows. *)

type t

val deliverable : base:Netgraph.Graph.t -> File.t -> bool
(** Can the file reach its destination at all — is [dst] within
    [deadline] hops of [src]? A file failing this has {e no} usable
    time-expanded subgraph: [build] under [supply `Full] would give it no
    variables and no conservation rows, silently treating "cannot route"
    as "trivially satisfied". Callers posing full-supply programs must
    reject such files up front instead of formulating them. *)

val build :
  model:Lp.Model.t ->
  base:Netgraph.Graph.t ->
  capacity:(link:int -> layer:int -> float) ->
  files:File.t list ->
  epoch:int ->
  flow_obj:(cost:float -> float) ->
  supply:[ `Full | `Elastic of Lp.Model.var array ] ->
  t
(** Create the flow variables, conservation rows and capacity rows inside
    [model].

    - Variables are pruned by per-file reachability: a fraction of file [k]
      can only traverse [i^n -> j^(n+1)] when [i] is reachable from [s_k]
      within [n] hops and [d_k] is reachable from [j] within the remaining
      layers.
    - [flow_obj ~cost] gives the objective coefficient of a transmission
      variable on a link with per-unit price [cost] (storage variables cost
      nothing); use it for tie-breaking or volume rewards.
    - [supply `Full] injects exactly [F_k] at the source (Postcard);
      [supply (`Elastic v)] couples the injected amount to the variable
      [v.(k)] (bulk/budget maximization), which the caller creates with
      bounds [[0, F_k]].

    Files may be released at or after [epoch]: each file's variables live
    in its own window of layers [[release - epoch, release - epoch + T_k]],
    which is what lets {!Offline} pose the clairvoyant whole-period program
    on the same skeleton the online scheduler uses per epoch. Raises
    [Invalid_argument] on inconsistent inputs. *)

val texp : t -> Timexp.Time_expanded.t

val horizon : t -> int

val add_charge_coupling :
  model:Lp.Model.t ->
  t ->
  charged:float array ->
  x_obj:(cost:float -> float) ->
  Lp.Model.var array
(** Create one charged-volume variable per base link, lower-bounded by the
    already-charged volume, with objective coefficient [x_obj ~cost], and
    add the dominance rows [sum_k M^k_ijn <= X_ij] for every layer. Returns
    the X variables indexed by base arc id. *)

val keymap : t -> model:Lp.Model.t -> Basis_map.keymap
(** Structural keys of every column and row of [model] (variables and rows
    created by this skeleton get {!Basis_map} flow/conservation/capacity
    keys, including the charge columns and dominance rows of
    {!add_charge_coupling}; anything the caller added on top is keyed
    anonymously). Use with {!Basis_map.capture}/{!Basis_map.apply} to carry
    a simplex basis from one epoch's LP to the next. *)

val extract_plan : t -> primal:float array -> Plan.t
(** Read the optimal fractions back into a slot-accurate plan (absolute
    slots). *)

val extract_supplies :
  t -> primal:float array -> Lp.Model.var array -> float array
(** Values of elastic supply variables. *)
