module Graph = Netgraph.Graph
module Texp = Timexp.Time_expanded
module Model = Lp.Model

type t = {
  base : Graph.t;
  files : File.t array;
  epoch : int;
  horizon : int;
  texp : Texp.t;
  (* m_vars.(fi): expanded arc id -> variable, for arcs usable by file fi. *)
  m_vars : (int, Model.var) Hashtbl.t array;
  (* Stable structural keys of every column/row this formulation created,
     for translating simplex bases across epochs. *)
  registry : Basis_map.Registry.t;
}

let texp t = t.texp
let horizon t = t.horizon

(* Hop distances from [src] used to prune variables the file can never
   use. *)
let hop_distances g ~src =
  let n = Graph.num_nodes g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun id ->
        let a = Graph.arc g id in
        if dist.(a.Graph.dst) = max_int then begin
          dist.(a.Graph.dst) <- dist.(u) + 1;
          Queue.push a.Graph.dst queue
        end)
      (Graph.out_arcs g u)
  done;
  dist

let deliverable ~base f =
  let dist = hop_distances base ~src:f.File.src in
  dist.(f.File.dst) <= f.File.deadline

let build ~model ~base ~capacity ~files ~epoch ~flow_obj ~supply =
  List.iter
    (fun f ->
      if f.File.release < epoch then
        invalid_arg "Texp_lp.build: file released before epoch";
      if f.File.src >= Graph.num_nodes base || f.File.dst >= Graph.num_nodes base
      then invalid_arg "Texp_lp.build: file endpoint outside graph")
    files;
  (match supply with
   | `Full -> ()
   | `Elastic v ->
       if Array.length v <> List.length files then
         invalid_arg "Texp_lp.build: elastic supply size mismatch");
  let files = Array.of_list files in
  (* Each file's transmission window in epoch-relative layers. *)
  let window_lo f = f.File.release - epoch in
  let window_hi f = window_lo f + f.File.deadline in
  let horizon =
    Array.fold_left (fun acc f -> max acc (window_hi f)) 1 files
  in
  let texp = Texp.build ~base ~horizon ~capacity in
  let n_base = Graph.num_nodes base in
  let from_src = Array.map (fun f -> hop_distances base ~src:f.File.src) files in
  let rev = Graph.reverse base in
  let to_dst = Array.map (fun f -> hop_distances rev ~src:f.File.dst) files in
  let node_usable fi node layer =
    let f = files.(fi) in
    let lo = window_lo f and hi = window_hi f in
    layer >= lo && layer <= hi
    && from_src.(fi).(node) <= layer - lo
    && to_dst.(fi).(node) <= hi - layer
  in
  let m_vars = Array.map (fun _ -> Hashtbl.create 256) files in
  let registry = Basis_map.Registry.create () in
  Array.iteri
    (fun fi f ->
      let lo = window_lo f and hi = window_hi f in
      Texp.iter_arcs texp (fun a kind ->
          let layer, obj =
            match kind with
            | Texp.Transmission { layer; _ } -> (layer, flow_obj ~cost:a.Graph.cost)
            | Texp.Storage { layer; _ } -> (layer, 0.)
          in
          (* Arcs with no usable capacity would only add degenerate
             zero-forced columns. *)
          if layer >= lo && layer < hi && a.Graph.capacity > 1e-9 then begin
            let src_node, src_layer = Texp.node_of texp a.Graph.src in
            let dst_node, dst_layer = Texp.node_of texp a.Graph.dst in
            if node_usable fi src_node src_layer
               && node_usable fi dst_node dst_layer
            then begin
              let v = Model.add_var model ~lb:0. ~ub:f.File.size ~obj () in
              Basis_map.Registry.set_col registry v
                (match kind with
                 | Texp.Transmission { link; layer } ->
                     Basis_map.Flow_tx
                       { file = f.File.id; link; slot = epoch + layer }
                 | Texp.Storage { node; layer } ->
                     Basis_map.Flow_store
                       { file = f.File.id; node; slot = epoch + layer });
              Hashtbl.replace m_vars.(fi) a.Graph.id v
            end
          end))
    files;
  (* Per-file conservation at every usable node copy. With elastic supply,
     the injected amount is the supply variable rather than F_k. *)
  Array.iteri
    (fun fi f ->
      let lo = window_lo f and hi = window_hi f in
      for layer = lo to hi do
        for node = 0 to n_base - 1 do
          if node_usable fi node layer then begin
            let expanded = Texp.node_at texp ~node ~layer in
            let terms = ref [] in
            if layer < hi then
              List.iter
                (fun id ->
                  match Hashtbl.find_opt m_vars.(fi) id with
                  | Some v -> terms := (v, 1.) :: !terms
                  | None -> ())
                (Graph.out_arcs (Texp.graph texp) expanded);
            if layer > lo then
              List.iter
                (fun id ->
                  match Hashtbl.find_opt m_vars.(fi) id with
                  | Some v -> terms := (v, -1.) :: !terms
                  | None -> ())
                (Graph.in_arcs (Texp.graph texp) expanded);
            let is_source = node = f.File.src && layer = lo in
            let is_sink = node = f.File.dst && layer = hi in
            let terms, rhs =
              match supply with
              | `Full ->
                  ( !terms,
                    if is_source then f.File.size
                    else if is_sink then -.f.File.size
                    else 0. )
              | `Elastic v ->
                  let extra =
                    if is_source then [ (v.(fi), -1.) ]
                    else if is_sink then [ (v.(fi), 1.) ]
                    else []
                  in
                  (extra @ !terms, 0.)
            in
            if terms <> [] || rhs <> 0. then begin
              let row = Model.add_constraint model terms Model.Eq rhs in
              Basis_map.Registry.set_row registry row
                (Basis_map.Conservation
                   { file = f.File.id; node; slot = epoch + layer })
            end
          end
        done
      done)
    files;
  (* Aggregate capacity rows per (link, layer) carrying variables. *)
  for layer = 0 to horizon - 1 do
    Graph.iter_arcs base (fun a ->
        let expanded_id = Texp.transmission_arc texp ~link:a.Graph.id ~layer in
        let terms = ref [] in
        Array.iter
          (fun tbl ->
            match Hashtbl.find_opt tbl expanded_id with
            | Some v -> terms := (v, 1.) :: !terms
            | None -> ())
          m_vars;
        if !terms <> [] then begin
          let cap = capacity ~link:a.Graph.id ~layer in
          if cap < infinity then begin
            let row = Model.add_constraint model !terms Model.Le cap in
            Basis_map.Registry.set_row registry row
              (Basis_map.Capacity { link = a.Graph.id; slot = epoch + layer })
          end
        end)
  done;
  (match supply with
   | `Full -> ()
   | `Elastic v ->
       Array.iteri
         (fun fi sv ->
           Basis_map.Registry.set_col registry sv
             (Basis_map.Supply { file = files.(fi).File.id }))
         v);
  { base; files; epoch; horizon; texp; m_vars; registry }

let add_charge_coupling ~model t ~charged ~x_obj =
  if Array.length charged <> Graph.num_arcs t.base then
    invalid_arg "Texp_lp.add_charge_coupling: charged size mismatch";
  let x_vars =
    Array.init (Graph.num_arcs t.base) (fun l ->
        let a = Graph.arc t.base l in
        let v =
          Model.add_var model ~lb:charged.(l)
            ~obj:(x_obj ~cost:a.Graph.cost)
            ()
        in
        Basis_map.Registry.set_col t.registry v (Basis_map.Charge { link = l });
        v)
  in
  for layer = 0 to t.horizon - 1 do
    Graph.iter_arcs t.base (fun a ->
        let expanded_id = Texp.transmission_arc t.texp ~link:a.Graph.id ~layer in
        let terms = ref [] in
        Array.iter
          (fun tbl ->
            match Hashtbl.find_opt tbl expanded_id with
            | Some v -> terms := (v, 1.) :: !terms
            | None -> ())
          t.m_vars;
        if !terms <> [] then begin
          let row =
            Model.add_constraint model
              ((x_vars.(a.Graph.id), -1.) :: !terms)
              Model.Le 0.
          in
          Basis_map.Registry.set_row t.registry row
            (Basis_map.Charge_dom
               { link = a.Graph.id; slot = t.epoch + layer })
        end)
  done;
  x_vars

let eps_volume = 1e-7

let extract_plan t ~primal =
  let transmissions = ref [] and holdovers = ref [] in
  Array.iteri
    (fun fi f ->
      Hashtbl.iter
        (fun arc_id (v : Model.var) ->
          let value = primal.((v :> int)) in
          if value > eps_volume then
            match Texp.kind t.texp arc_id with
            | Texp.Transmission { link; layer } ->
                transmissions :=
                  { Plan.file = f.File.id;
                    link;
                    slot = t.epoch + layer;
                    volume = value }
                  :: !transmissions
            | Texp.Storage { node; layer } ->
                holdovers :=
                  { Plan.h_file = f.File.id;
                    h_node = node;
                    h_slot = t.epoch + layer;
                    h_volume = value }
                  :: !holdovers)
        t.m_vars.(fi))
    t.files;
  { Plan.transmissions = !transmissions; holdovers = !holdovers }

let keymap t ~model = Basis_map.Registry.keymap t.registry ~model

let extract_supplies t ~primal vars =
  ignore t;
  Array.map (fun (v : Model.var) -> primal.((v :> int))) vars
