type id = int

type t = {
  id : id;
  src : int;
  dst : int;
  size : float;
  deadline : int;
  release : int;
}

let make ~id ~src ~dst ~size ~deadline ~release =
  if size <= 0. || Float.is_nan size || size = infinity then
    invalid_arg "File.make: size must be positive and finite";
  if deadline <= 0 then invalid_arg "File.make: deadline must be positive";
  if release < 0 then invalid_arg "File.make: negative release";
  if src = dst then invalid_arg "File.make: src = dst";
  if src < 0 || dst < 0 then invalid_arg "File.make: negative endpoint";
  { id; src; dst; size; deadline; release }

let rate f = f.size /. float_of_int f.deadline

let last_slot f = f.release + f.deadline - 1

let completion_deadline f = f.release + f.deadline

let pp ppf f =
  Format.fprintf ppf "file %d: %d -> %d, %.1f GB, deadline %d, release %d"
    f.id f.src f.dst f.size f.deadline f.release
