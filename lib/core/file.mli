(** Inter-datacenter transfer requests.

    A {e file} (Sec. III of the paper) is any block of data crossing
    datacenter boundaries — a backup, a batch of MapReduce intermediate
    results, a customer-data migration — described by the four-tuple
    [(s_k, d_k, F_k, T_k)] plus its release slot. *)

type id = int
(** File identifier — unique within a simulation run's {e initial} offers;
    a re-offered (re-planned) file keeps the id of the original. *)

type t = private {
  id : id;  (** Unique within a simulation run. *)
  src : int;  (** Source datacenter [s_k]. *)
  dst : int;  (** Destination datacenter [d_k]. *)
  size : float;  (** [F_k], volume in GB. *)
  deadline : int;  (** [T_k], maximum tolerable transfer time in intervals. *)
  release : int;  (** Slot at which the file becomes available. *)
}

val make :
  id:int -> src:int -> dst:int -> size:float -> deadline:int -> release:int -> t
(** Raises [Invalid_argument] on a non-positive size or deadline, a
    negative release slot, or [src = dst]. *)

val rate : t -> float
(** Desired transmission rate of the flow-based model (Sec. II-B):
    [size / deadline], in volume per interval. *)

val last_slot : t -> int
(** Last slot during which the file may occupy links:
    [release + deadline - 1]. *)

val completion_deadline : t -> int
(** First slot by whose beginning the file must have fully arrived:
    [release + deadline]. *)

val pp : Format.formatter -> t -> unit
