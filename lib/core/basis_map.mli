(** Translation of simplex bases between successive epochs' LPs.

    The online scheduler solves one time-expanded LP per slot, and
    consecutive slots share almost all of their structure: the same base
    links, the same [X_ij] columns, shifted copies of the same
    storage/transmission arcs. Warm-starting the simplex from the previous
    slot's optimal basis is only possible if columns and rows can be
    matched across the two models — their raw indices are useless, since
    files arrive and depart and the horizon slides.

    This module gives every column and row a {e stable structural key}
    expressed in quantities that survive re-formulation: file id, base
    link id, base node id, and {e absolute} slot number. A {!t} is a basis
    snapshot indexed by such keys; {!capture} takes one from a solved
    model, {!apply} projects it onto the next epoch's model. Keys present
    in both models carry their status over; keys only in the new model get
    cold-start defaults; keys only in the snapshot are dropped. The result
    is fed to {!Lp.Simplex.solve}'s [?warm_start], whose repair ladder
    absorbs whatever imperfections the translation leaves. *)

type col_key =
  | Flow_tx of { file : int; link : int; slot : int }
      (** Transmission fraction [M^k_ijn]: file [k] on base link [ij]
          during absolute slot [n]. *)
  | Flow_store of { file : int; node : int; slot : int }
      (** Storage fraction: file [k] held at [node] across [slot]. *)
  | Charge of { link : int }  (** Charged volume [X_ij]. *)
  | Supply of { file : int }  (** Elastic supply variable (bulk/budget). *)
  | Anon_col of int  (** Fallback: keyed by raw index only. *)

type row_key =
  | Conservation of { file : int; node : int; slot : int }
  | Capacity of { link : int; slot : int }
  | Charge_dom of { link : int; slot : int }
      (** Dominance row [sum_k M^k_ijn <= X_ij]. *)
  | Anon_row of int

type keymap = {
  cols : col_key array;  (** Key of every model column, by index. *)
  rows : row_key array;  (** Key of every model row, by index. *)
}

(** Accumulates (index, key) registrations while a formulation is built;
    {!Texp_lp} fills one as it creates variables and rows. *)
module Registry : sig
  type t

  val create : unit -> t
  val set_col : t -> Lp.Model.var -> col_key -> unit
  val set_row : t -> Lp.Model.row -> row_key -> unit

  val keymap : t -> model:Lp.Model.t -> keymap
  (** Freeze the registrations into a keymap covering every column and row
      of [model]; unregistered indices get [Anon_col]/[Anon_row] keys. *)
end

type t
(** A portable basis snapshot: structural key -> simplex status. *)

val capture : keymap -> Lp.Status.Basis.t -> t
(** [capture keymap basis] re-keys an optimal basis by structural keys.
    Raises [Invalid_argument] when the keymap and basis disagree on the
    model's shape. *)

val apply : t -> keymap -> Lp.Status.Basis.t
(** [apply t keymap] projects the snapshot onto a (possibly different)
    model described by [keymap]. Never fails: unseen keys get cold-start
    defaults (columns nonbasic at lower bound, rows with slack basic). *)

val hit_rate : t -> keymap -> float
(** Fraction of [keymap]'s columns and rows found in the snapshot — a
    diagnostic for how much structure two epochs share. *)
