(** The Postcard optimization program (problem (6) of the paper) built on a
    time-expanded graph.

    Given the files released at the current epoch, the charged volume
    [X_ij(t-1)] accumulated so far on every link, and the residual link
    capacities over the lookahead horizon, this module builds the exactly
    linearized program

    {v
    min  sum_ij a_ij X_ij
    s.t. per-file flow conservation on the time-expanded subgraph
         (layers 0 .. T_k, storage arcs included)            -- (8), (10)
         sum_k M^k_ijn <= c_ijn                               -- (7)
         sum_k M^k_ijn <= X_ij    for every layer n           -- X = max
         X_ij >= X_ij(t-1)
         M >= 0                                               -- (9)
    v}

    and recovers a slot-accurate {!Plan} from the optimal basis. Variables
    are pruned by per-file reachability (a fraction of file [k] can only
    traverse arc [i^n -> j^(n+1)] if [i] is reachable from [s_k] within [n]
    hops and [d_k] is reachable from [j] within the remaining layers). *)

type t

type result =
  | Scheduled of {
      plan : Plan.t;
      objective : float;  (** [sum a_ij X_ij] at the optimum. *)
      charged : float array;  (** Optimal [X_ij(t)] per base link. *)
    }
  | Infeasible
      (** The files cannot all meet their deadlines under the residual
          capacities. *)
  | Solver_failure of string

val create :
  base:Netgraph.Graph.t ->
  charged:float array ->
  capacity:(link:int -> layer:int -> float) ->
  files:File.t list ->
  epoch:int ->
  ?tie_break:float ->
  unit ->
  t
(** Build the program. All [files] must be released at [epoch]; [charged]
    has one entry per base arc. [tie_break] (default [1e-4]) adds
    [tie_break * a_ij] to the objective per unit actually transmitted, so
    that among cost-equal optima the plan moving the least data is
    preferred; pass [0.] for the pure paper objective. Raises
    [Invalid_argument] on inconsistent inputs. *)

val model : t -> Lp.Model.t
(** The underlying LP (for inspection and tests). *)

val horizon : t -> int

val solve : ?params:Lp.Simplex.params -> t -> result

val keymap : t -> Basis_map.keymap
(** Structural keys of the program's columns and rows (see
    {!Texp_lp.keymap}); useful with {!Basis_map.hit_rate} to measure how
    much structure two epochs share. *)

type solve_info = {
  iterations : int;  (** Simplex pivots spent ([0] unless [Scheduled]). *)
  stats : Lp.Status.stats;
      (** Full solver statistics of the underlying simplex run (phase
          split, refactorizations, warm-start outcome, ...);
          {!Lp.Status.no_stats} unless [Scheduled]. *)
  basis : Basis_map.t option;
      (** The optimal basis re-keyed by stable structural keys, ready to
          warm-start the next epoch's program. *)
}

val solve_with_info :
  ?params:Lp.Simplex.params ->
  ?warm_start:Basis_map.t ->
  ?dual_reopt:bool ->
  t ->
  result * solve_info
(** Like {!solve}, additionally accepting the previous epoch's captured
    basis ([warm_start] is translated onto this program's columns and rows
    before the solve) and returning solver diagnostics plus this solve's
    own captured basis. When the translated basis installs dual-feasibly
    — the common case when only arrivals/faults changed the RHS — the
    solve re-optimizes with the dual simplex ({!Lp.Status.Dual_reopt}:
    zero phase-1 pivots, zero repair rounds); [~dual_reopt:false] forces
    the primal warm path (see {!Lp.Simplex.solve}). [solve] is
    [fun t -> fst (solve_with_info t)]. *)
