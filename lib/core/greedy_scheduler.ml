module Graph = Netgraph.Graph
module Mcf = Netgraph.Mincostflow

let eps = 1e-9

(* What counts as free capacity on a (link, slot):

   [Peak] is the 100-th percentile view used throughout the paper: volume
   below the link's charged peak is free.

   [Percentile] knows the billing discards the top (100 - q)% of per-slot
   volumes: a slot already among a link's discarded top slots can grow for
   free, and other slots are free up to the percentile charge. This is the
   burst-slot exploit that the paper's 100-th percentile analysis cannot
   express. *)
type mode =
  | Peak
  | Percentile of Charging.scheme

(* Mutable view of the epoch as files are placed one by one:
   planned.(link).(layer) accumulates this batch's volume on top of the
   ledger's committed occupancy; full.(link).(slot) tracks the whole
   charging period for percentile accounting. *)
type batch_state = {
  base : Graph.t;
  epoch : int;
  horizon : int;
  mode : mode;
  occupied : float array array;  (* link x layer, from previous epochs *)
  residual : float array array;  (* link x layer, before this batch *)
  planned : float array array;  (* link x layer, this batch *)
  charged : float array;  (* per link, original X_ij(t-1) *)
  full : float array array;  (* link x absolute slot, whole period *)
}

let batch_state (ctx : Scheduler.context) ~horizon ~mode =
  let m = Graph.num_arcs ctx.Scheduler.base in
  let links = ctx.Scheduler.links in
  let table f =
    Array.init m (fun link ->
        Array.init horizon (fun layer ->
            f ~link ~slot:(ctx.Scheduler.epoch + layer)))
  in
  let period = max ctx.Scheduler.period (ctx.Scheduler.epoch + horizon) in
  let full =
    match mode with
    | Peak -> [||]
    | Percentile _ ->
        Array.init m (fun link ->
            Array.init period (fun slot -> Linkview.occupied links ~link ~slot))
  in
  { base = ctx.Scheduler.base;
    epoch = ctx.Scheduler.epoch;
    horizon;
    mode;
    occupied = table (Linkview.occupied links);
    residual = table (Linkview.residual links);
    planned = Array.make_matrix m horizon 0.;
    charged = Array.copy ctx.Scheduler.charged;
    full }

(* Effective charge of a link given this batch's plan so far: the original
   charge, or the new peak if the batch already pushed past it. *)
let effective_charge st link =
  let peak = ref st.charged.(link) in
  for layer = 0 to st.horizon - 1 do
    let total = st.occupied.(link).(layer) +. st.planned.(link).(layer) in
    if total > !peak then peak := total
  done;
  !peak

(* Capacity usable at zero marginal charge on (link, layer), out of
   [available]. *)
let free_capacity st link layer ~available =
  match st.mode with
  | Peak ->
      let total_now = st.occupied.(link).(layer) +. st.planned.(link).(layer) in
      let free = max 0. (effective_charge st link -. total_now) in
      min free available
  | Percentile scheme ->
      let charge_q = Charging.charged_volume scheme st.full.(link) in
      let v = st.full.(link).(st.epoch + layer) in
      if v > charge_q +. eps then
        (* Already a discarded burst slot: growing it is free. *)
        available
      else min available (max 0. (charge_q -. v))

let record_flow st link layer volume =
  st.planned.(link).(layer) <- st.planned.(link).(layer) +. volume;
  match st.mode with
  | Peak -> ()
  | Percentile _ ->
      let slot = st.epoch + layer in
      st.full.(link).(slot) <- st.full.(link).(slot) +. volume

(* Build the file's routing network: time-expanded nodes, storage arcs,
   and per transmission slot a free copy (cost 0) and a paid copy (link
   price, remaining residual). Returns the graph plus a map from its arc
   ids to (link, layer). *)
let build_network st file =
  let deadline = file.File.deadline in
  let n = Graph.num_nodes st.base in
  let g = Graph.create ~n:(n * (deadline + 1)) in
  let node ~node:v ~layer = (layer * n) + v in
  let registry = Hashtbl.create 256 in
  for layer = 0 to deadline - 1 do
    (* Storage arcs. *)
    for v = 0 to n - 1 do
      ignore
        (Graph.add_arc g ~src:(node ~node:v ~layer)
           ~dst:(node ~node:v ~layer:(layer + 1))
           ~capacity:infinity ~cost:0. ())
    done;
    Graph.iter_arcs st.base (fun a ->
        let link = a.Graph.id in
        let available =
          st.residual.(link).(layer) -. st.planned.(link).(layer)
        in
        if available > eps then begin
          let free = free_capacity st link layer ~available in
          let paid = available -. free in
          let src = node ~node:a.Graph.src ~layer in
          let dst = node ~node:a.Graph.dst ~layer:(layer + 1) in
          if free > eps then begin
            let id = Graph.add_arc g ~src ~dst ~capacity:free ~cost:0. () in
            Hashtbl.replace registry id (link, layer)
          end;
          if paid > eps then begin
            let id =
              Graph.add_arc g ~src ~dst ~capacity:paid ~cost:a.Graph.cost ()
            in
            Hashtbl.replace registry id (link, layer)
          end
        end)
  done;
  (g, registry, node)

(* Route one file; returns its transmissions or None when it does not
   fit. *)
let route_file st file =
  let g, registry, node = build_network st file in
  let src = node ~node:file.File.src ~layer:0 in
  let dst = node ~node:file.File.dst ~layer:file.File.deadline in
  match Mcf.min_cost_flow g ~src ~dst ~amount:file.File.size with
  | None -> None
  | Some result ->
      (* Merge the free/paid copies of the same (link, slot) and record
         the flow in the batch state. *)
      let merged = Hashtbl.create 16 in
      Array.iteri
        (fun arc_id flow ->
          if flow > eps then
            match Hashtbl.find_opt registry arc_id with
            | Some key ->
                let cur = try Hashtbl.find merged key with Not_found -> 0. in
                Hashtbl.replace merged key (cur +. flow)
            | None -> () (* storage arc *))
        result.Mcf.flow;
      Some
        (Hashtbl.fold
           (fun (link, layer) volume acc ->
             record_flow st link layer volume;
             { Plan.file = file.File.id;
               link;
               slot = st.epoch + layer;
               volume }
             :: acc)
           merged [])

let make_with_mode ~name ~mode () =
  let schedule (ctx : Scheduler.context) files =
    if files = [] then
      { Scheduler.plan = Plan.empty; accepted = []; rejected = [] }
    else begin
      let horizon =
        List.fold_left (fun acc f -> max acc f.File.deadline) 1 files
      in
      let st = batch_state ctx ~horizon ~mode in
      let ordered =
        List.sort (fun a b -> compare (File.rate b) (File.rate a)) files
      in
      let accepted = ref [] and rejected = ref [] and txs = ref [] in
      List.iter
        (fun f ->
          match route_file st f with
          | Some file_txs ->
              accepted := f :: !accepted;
              txs := file_txs @ !txs
          | None -> rejected := f :: !rejected)
        ordered;
      { Scheduler.plan = { Plan.transmissions = !txs; holdovers = [] };
        accepted = List.rev !accepted;
        rejected = List.rev !rejected }
    end
  in
  Scheduler.observe (Scheduler.stateless ~name ~fluid:false schedule)

let make () = make_with_mode ~name:"greedy-snf" ~mode:Peak ()

let make_percentile ?(percentile = 95.) () =
  make_with_mode
    ~name:(Printf.sprintf "burst-%g" percentile)
    ~mode:(Percentile (Charging.scheme percentile))
    ()

let () =
  Scheduler.register ~name:"greedy-snf" ~aliases:[ "greedy" ]
    ~doc:
      "Combinatorial store-and-forward: one min-cost flow per file over \
       the time-expanded residual network, charged-peak volume free."
    (fun () -> make ());
  Scheduler.register ~name:"burst-95" ~aliases:[ "burst" ]
    ~doc:
      "greedy-snf variant aware of 95th-percentile billing: overflow is \
       packed into each link's free burst slots."
    (fun () -> make_percentile ())
