type context = {
  base : Netgraph.Graph.t;
  epoch : int;
  period : int;
  charged : float array;
  residual : link:int -> slot:int -> float;
  occupied : link:int -> slot:int -> float;
  down : link:int -> slot:int -> bool;
}

type outcome = {
  plan : Plan.t;
  accepted : File.t list;
  rejected : File.t list;
}

type t = {
  name : string;
  fluid : bool;
  schedule : context -> File.t list -> outcome;
  reset : unit -> unit;
}

let stateless ~name ~fluid schedule = { name; fluid; schedule; reset = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Registry: name -> factory. Strategies self-register at module
   initialization (the library is linked with -linkall so every built-in
   is present in every executable); schedulers are handed out as fresh
   values, never shared ones, which is what lets a parallel runner give
   each (run, scheduler) cell its own instance without cross-domain
   aliasing of scheduler state. *)

let registry_mu = Mutex.create ()

type info = {
  info_name : string;
  aliases : string list;
  doc : string option;
}

(* alias (or canonical name) -> canonical name * factory *)
let registry : (string, string * (unit -> t)) Hashtbl.t = Hashtbl.create 16
let infos_acc : info list ref = ref []

let register ~name ?(aliases = []) ?doc factory =
  Mutex.lock registry_mu;
  let clash =
    List.find_opt (Hashtbl.mem registry) (name :: aliases)
  in
  (match clash with
   | Some n ->
       Mutex.unlock registry_mu;
       invalid_arg ("Postcard.Scheduler.register: " ^ n ^ " already registered")
   | None ->
       List.iter (fun n -> Hashtbl.add registry n (name, factory)) (name :: aliases);
       infos_acc := { info_name = name; aliases; doc } :: !infos_acc;
       Mutex.unlock registry_mu)

let infos () =
  Mutex.lock registry_mu;
  let infos = !infos_acc in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> String.compare a.info_name b.info_name) infos

let registered () = List.map (fun i -> i.info_name) (infos ())

let pp_registry ppf () =
  List.iter
    (fun { info_name; aliases; doc } ->
      let aliases =
        match aliases with
        | [] -> ""
        | l -> Printf.sprintf " (aliases: %s)" (String.concat ", " l)
      in
      Format.fprintf ppf "%-12s%s@\n" info_name aliases;
      match doc with
      | Some d -> Format.fprintf ppf "    %s@\n" d
      | None -> ())
    (infos ())

let factory name =
  Mutex.lock registry_mu;
  let f = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mu;
  Option.map snd f

let make name = Option.map (fun f -> f ()) (factory name)

let make_exn name =
  match make name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Postcard.Scheduler.make_exn: unknown scheduler %S (available: %s)"
           name
           (String.concat ", " (registered ())))

let make_all () = List.filter_map make (registered ())

let m_decisions = Obs.Metrics.counter "sched.decisions"
let m_offered = Obs.Metrics.counter "sched.files_offered"
let m_accepted = Obs.Metrics.counter "sched.files_accepted"
let m_rejected = Obs.Metrics.counter "sched.files_rejected"
let h_sched_ms = Obs.Metrics.histogram "sched.decision_ms"

let observe t =
  let schedule ctx files =
    let t0 = Obs.Trace.now_ms () in
    let outcome =
      Obs.Span.with_ "sched.schedule" (fun () -> t.schedule ctx files)
    in
    let ms = Obs.Trace.now_ms () -. t0 in
    let n_offered = List.length files in
    let n_accepted = List.length outcome.accepted in
    let n_rejected = List.length outcome.rejected in
    Obs.Metrics.incr m_decisions;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.add m_offered n_offered;
      Obs.Metrics.add m_accepted n_accepted;
      Obs.Metrics.add m_rejected n_rejected;
      Obs.Metrics.observe h_sched_ms ms
    end;
    if Obs.Trace.enabled () then begin
      let rejected_ids =
        String.concat ","
          (List.map (fun f -> string_of_int f.File.id) outcome.rejected)
      in
      Obs.Trace.point "sched.decision"
        [ ("scheduler", Obs.Trace.Str t.name);
          ("epoch", Obs.Trace.Int ctx.epoch);
          ("offered", Obs.Trace.Int n_offered);
          ("accepted", Obs.Trace.Int n_accepted);
          ("rejected", Obs.Trace.Int n_rejected);
          ("rejected_ids", Obs.Trace.Str rejected_ids);
          ("ms", Obs.Trace.Float ms) ]
    end;
    outcome
  in
  { t with schedule }

let capacity_at_epoch ctx ~link ~layer =
  ctx.residual ~link ~slot:(ctx.epoch + layer)

let admit_greedy ~files ~try_solve =
  let rec attempt accepted rejected =
    match try_solve accepted with
    | Some solution -> Some (solution, accepted, rejected)
    | None -> (
        match accepted with
        | [] -> None
        | _ ->
            (* Drop the file with the highest desired rate: it stresses
               capacity the most. *)
            let hardest =
              List.fold_left
                (fun best f ->
                  match best with
                  | None -> Some f
                  | Some b -> if File.rate f > File.rate b then Some f else best)
                None accepted
            in
            let hardest = Option.get hardest in
            let remaining =
              List.filter (fun f -> f.File.id <> hardest.File.id) accepted
            in
            attempt remaining (hardest :: rejected))
  in
  attempt files []
