module Graph = Netgraph.Graph

type context = {
  base : Graph.t;
  epoch : int;
  period : int;
  charged : float array;
  links : Linkview.t;
}

type outcome = {
  plan : Plan.t;
  accepted : File.t list;
  rejected : File.t list;
}

type decision = Admitted of Plan.t | Denied

type t = {
  name : string;
  fluid : bool;
  schedule : context -> File.t list -> outcome;
  admit : (context -> File.t -> decision) option;
  reset : unit -> unit;
}

let create ~name ~fluid ?admit ?(reset = fun () -> ()) schedule =
  { name; fluid; schedule; admit; reset }

let stateless ~name ~fluid schedule =
  { name; fluid; schedule; admit = None; reset = (fun () -> ()) }

let name t = t.name
let fluid t = t.fluid
let schedule t = t.schedule
let admit t = t.admit
let reset t = t.reset ()

(* ------------------------------------------------------------------ *)
(* The tiered combinator: incremental fast tier in front of a batch
   fallback, sharing one overlay so the fallback prices capacity the
   fast tier already claimed within the batch. *)

let m_fast_admits = Obs.Metrics.counter "tier.fast_admits"
let m_fallback_files = Obs.Metrics.counter "tier.fallback_files"
let m_fallback_admits = Obs.Metrics.counter "tier.fallback_admits"

let tiered ?name ?(high_value = fun _ -> false) ~fast ~fallback () =
  let fast_admit =
    match fast.admit with
    | Some a -> a
    | None ->
        invalid_arg
          (Printf.sprintf
             "Postcard.Scheduler.tiered: fast tier %S has no admit capability"
             fast.name)
  in
  let name =
    match name with Some n -> n | None -> fast.name ^ "+" ^ fallback.name
  in
  let tally ~epoch ~offered ~fast_n ~fallback_n ~fallback_admitted =
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.add m_fast_admits fast_n;
      Obs.Metrics.add m_fallback_files fallback_n;
      Obs.Metrics.add m_fallback_admits fallback_admitted
    end;
    if Obs.Trace.enabled () then
      Obs.Trace.point "tier.decision"
        [ ("scheduler", Obs.Trace.Str name);
          ("epoch", Obs.Trace.Int epoch);
          ("offered", Obs.Trace.Int offered);
          ("fast", Obs.Trace.Int fast_n);
          ("fallback", Obs.Trace.Int fallback_n);
          ("fallback_admitted", Obs.Trace.Int fallback_admitted) ]
  in
  let schedule ctx files =
    if files = [] then { plan = Plan.empty; accepted = []; rejected = [] }
    else begin
      let o = Linkview.overlay ctx.links in
      let ctx' = { ctx with links = Linkview.view o } in
      let fast_accepted = ref [] and fast_plan = ref Plan.empty in
      let deferred = ref [] in
      List.iter
        (fun f ->
          if high_value f then deferred := f :: !deferred
          else
            match fast_admit ctx' f with
            | Admitted plan ->
                Linkview.book_plan o plan;
                fast_accepted := f :: !fast_accepted;
                fast_plan := Plan.concat !fast_plan plan
            | Denied -> deferred := f :: !deferred)
        files;
      let deferred = List.rev !deferred in
      let fb =
        if deferred = [] then
          { plan = Plan.empty; accepted = []; rejected = [] }
        else fallback.schedule ctx' deferred
      in
      tally ~epoch:ctx.epoch ~offered:(List.length files)
        ~fast_n:(List.length !fast_accepted)
        ~fallback_n:(List.length deferred)
        ~fallback_admitted:(List.length fb.accepted);
      { plan = Plan.concat !fast_plan fb.plan;
        accepted = List.rev !fast_accepted @ fb.accepted;
        rejected = fb.rejected }
    end
  in
  let fallback_singleton ctx f =
    let fb = fallback.schedule ctx [ f ] in
    match fb.accepted with
    | [ g ] when g.File.id = f.File.id -> Admitted fb.plan
    | _ -> Denied
  in
  let admit ctx f =
    if high_value f then begin
      let d = fallback_singleton ctx f in
      tally ~epoch:ctx.epoch ~offered:1 ~fast_n:0 ~fallback_n:1
        ~fallback_admitted:(match d with Admitted _ -> 1 | Denied -> 0);
      d
    end
    else
      match fast_admit ctx f with
      | Admitted _ as d ->
          tally ~epoch:ctx.epoch ~offered:1 ~fast_n:1 ~fallback_n:0
            ~fallback_admitted:0;
          d
      | Denied ->
          let d = fallback_singleton ctx f in
          tally ~epoch:ctx.epoch ~offered:1 ~fast_n:0 ~fallback_n:1
            ~fallback_admitted:(match d with Admitted _ -> 1 | Denied -> 0);
          d
  in
  { name;
    fluid = fast.fluid || fallback.fluid;
    schedule;
    admit = Some admit;
    reset =
      (fun () ->
        fast.reset ();
        fallback.reset ()) }

(* ------------------------------------------------------------------ *)
(* Registry: name -> factory. Strategies self-register at module
   initialization (the library is linked with -linkall so every built-in
   is present in every executable); schedulers are handed out as fresh
   values, never shared ones, which is what lets a parallel runner give
   each (run, scheduler) cell its own instance without cross-domain
   aliasing of scheduler state. *)

let registry_mu = Mutex.create ()

type info = {
  info_name : string;
  aliases : string list;
  doc : string option;
}

(* alias (or canonical name) -> canonical name * factory *)
let registry : (string, string * (unit -> t)) Hashtbl.t = Hashtbl.create 16
let infos_acc : info list ref = ref []

(* Do [admit] and [schedule] tell the same story about one file? Same
   verdict, and on admission the same transmissions (volumes compared up
   to float noise). *)
let plans_agree p q =
  let key tx = (tx.Plan.file, tx.Plan.link, tx.Plan.slot) in
  let sorted (p : Plan.t) =
    List.sort (fun a b -> compare (key a) (key b)) p.Plan.transmissions
  in
  let rec eq a b =
    match (a, b) with
    | [], [] -> true
    | x :: xs, y :: ys ->
        key x = key y
        && Float.abs (x.Plan.volume -. y.Plan.volume) <= 1e-9
        && eq xs ys
    | _ -> false
  in
  eq (sorted p) (sorted q)

(* One tiny instance — two datacenters, one ample link, one small file —
   on which a factory's admit and schedule capabilities must agree. *)
let probe ~name factory =
  let s =
    try factory ()
    with e ->
      invalid_arg
        (Printf.sprintf
           "Postcard.Scheduler.register: %s: factory raised at \
            construction: %s"
           name (Printexc.to_string e))
  in
  match s.admit with
  | None -> ()
  | Some admit ->
      let base = Graph.create ~n:2 in
      ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:8. ~cost:1. ());
      let ctx =
        { base;
          epoch = 0;
          period = 4;
          charged = [| 0. |];
          links = Linkview.of_capacity ~base }
      in
      let file =
        File.make ~id:0 ~src:0 ~dst:1 ~size:2. ~deadline:2 ~release:0
      in
      let d = admit ctx file in
      let o = s.schedule ctx [ file ] in
      let consistent =
        match d with
        | Admitted p -> (
            match o.accepted with
            | [ f ] when f.File.id = file.File.id -> plans_agree p o.plan
            | _ -> false)
        | Denied -> o.accepted = []
      in
      if not consistent then
        invalid_arg
          (Printf.sprintf
             "Postcard.Scheduler.register: %s: admit and schedule disagree \
              on a singleton batch"
             name)

let register ~name ?(aliases = []) ?doc factory =
  (* Probe outside the lock: a factory is free to consult the registry. *)
  probe ~name factory;
  Mutex.lock registry_mu;
  let clash =
    List.find_opt (Hashtbl.mem registry) (name :: aliases)
  in
  (match clash with
   | Some n ->
       Mutex.unlock registry_mu;
       invalid_arg ("Postcard.Scheduler.register: " ^ n ^ " already registered")
   | None ->
       List.iter (fun n -> Hashtbl.add registry n (name, factory)) (name :: aliases);
       infos_acc := { info_name = name; aliases; doc } :: !infos_acc;
       Mutex.unlock registry_mu)

let infos () =
  Mutex.lock registry_mu;
  let infos = !infos_acc in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> String.compare a.info_name b.info_name) infos

let registered () = List.map (fun i -> i.info_name) (infos ())

let pp_registry ppf () =
  List.iter
    (fun { info_name; aliases; doc } ->
      let aliases =
        match aliases with
        | [] -> ""
        | l -> Printf.sprintf " (aliases: %s)" (String.concat ", " l)
      in
      Format.fprintf ppf "%-16s%s@\n" info_name aliases;
      match doc with
      | Some d -> Format.fprintf ppf "    %s@\n" d
      | None -> ())
    (infos ())

let factory name =
  Mutex.lock registry_mu;
  let f = Hashtbl.find_opt registry name in
  Mutex.unlock registry_mu;
  Option.map snd f

let make name = Option.map (fun f -> f ()) (factory name)

let make_exn name =
  match make name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Postcard.Scheduler.make_exn: unknown scheduler %S (available: %s)"
           name
           (String.concat ", " (registered ())))

let make_all () =
  let ok = ref [] and errs = ref [] in
  List.iter
    (fun name ->
      match make name with
      | Some s -> ok := s :: !ok
      | None ->
          (* Registered names always resolve; a miss is a registry bug. *)
          errs := (name ^ ": registered name no longer resolves") :: !errs
      | exception e ->
          errs := (name ^ ": " ^ Printexc.to_string e) :: !errs)
    (registered ());
  if !errs = [] then Ok (List.rev !ok) else Error (List.rev !errs)

let m_decisions = Obs.Metrics.counter "sched.decisions"
let m_offered = Obs.Metrics.counter "sched.files_offered"
let m_accepted = Obs.Metrics.counter "sched.files_accepted"
let m_rejected = Obs.Metrics.counter "sched.files_rejected"
let h_sched_ms = Obs.Metrics.histogram "sched.decision_ms"

let observe t =
  let schedule ctx files =
    let t0 = Obs.Trace.now_ms () in
    let outcome =
      Obs.Span.with_ "sched.schedule" (fun () -> t.schedule ctx files)
    in
    let ms = Obs.Trace.now_ms () -. t0 in
    let n_offered = List.length files in
    let n_accepted = List.length outcome.accepted in
    let n_rejected = List.length outcome.rejected in
    Obs.Metrics.incr m_decisions;
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.add m_offered n_offered;
      Obs.Metrics.add m_accepted n_accepted;
      Obs.Metrics.add m_rejected n_rejected;
      Obs.Metrics.observe h_sched_ms ms
    end;
    if Obs.Trace.enabled () then begin
      let rejected_ids =
        String.concat ","
          (List.map (fun f -> string_of_int f.File.id) outcome.rejected)
      in
      Obs.Trace.point "sched.decision"
        [ ("scheduler", Obs.Trace.Str t.name);
          ("epoch", Obs.Trace.Int ctx.epoch);
          ("offered", Obs.Trace.Int n_offered);
          ("accepted", Obs.Trace.Int n_accepted);
          ("rejected", Obs.Trace.Int n_rejected);
          ("rejected_ids", Obs.Trace.Str rejected_ids);
          ("ms", Obs.Trace.Float ms) ]
    end;
    outcome
  in
  { t with schedule }

let capacity_at_epoch ctx ~link ~layer =
  Linkview.residual ctx.links ~link ~slot:(ctx.epoch + layer)

let admit_greedy ~files ~try_solve =
  let rec attempt accepted rejected =
    match try_solve accepted with
    | Some solution -> Some (solution, accepted, rejected)
    | None -> (
        match accepted with
        | [] -> None
        | _ ->
            (* Drop the file with the highest desired rate: it stresses
               capacity the most. *)
            let hardest =
              List.fold_left
                (fun best f ->
                  match best with
                  | None -> Some f
                  | Some b -> if File.rate f > File.rate b then Some f else best)
                None accepted
            in
            let hardest = Option.get hardest in
            let remaining =
              List.filter (fun f -> f.File.id <> hardest.File.id) accepted
            in
            attempt remaining (hardest :: rejected))
  in
  attempt files []
