type context = {
  base : Netgraph.Graph.t;
  epoch : int;
  period : int;
  charged : float array;
  residual : link:int -> slot:int -> float;
  occupied : link:int -> slot:int -> float;
}

type outcome = {
  plan : Plan.t;
  accepted : File.t list;
  rejected : File.t list;
}

type t = {
  name : string;
  fluid : bool;
  schedule : context -> File.t list -> outcome;
  reset : unit -> unit;
}

let stateless ~name ~fluid schedule = { name; fluid; schedule; reset = (fun () -> ()) }

let capacity_at_epoch ctx ~link ~layer =
  ctx.residual ~link ~slot:(ctx.epoch + layer)

let admit_greedy ~files ~try_solve =
  let rec attempt accepted rejected =
    match try_solve accepted with
    | Some solution -> Some (solution, accepted, rejected)
    | None -> (
        match accepted with
        | [] -> None
        | _ ->
            (* Drop the file with the highest desired rate: it stresses
               capacity the most. *)
            let hardest =
              List.fold_left
                (fun best f ->
                  match best with
                  | None -> Some f
                  | Some b -> if File.rate f > File.rate b then Some f else best)
                None accepted
            in
            let hardest = Option.get hardest in
            let remaining =
              List.filter (fun f -> f.File.id <> hardest.File.id) accepted
            in
            attempt remaining (hardest :: rejected))
  in
  attempt files []
