(** Shortest-path algorithms over {!Graph} arc costs. *)

type tree = {
  dist : float array;  (** [infinity] for unreachable nodes. *)
  pred_arc : int array;  (** Arc id entering each node on the shortest path tree; [-1] at the source and unreachable nodes. *)
}

val dijkstra : Graph.t -> src:int -> tree
(** Single-source shortest paths; requires non-negative arc costs (raises
    [Invalid_argument] otherwise). *)

val dijkstra_filtered : Graph.t -> src:int -> usable:(Graph.arc -> bool) -> tree
(** Dijkstra restricted to arcs satisfying [usable] (e.g. arcs with
    residual capacity). *)

val dijkstra_weighted :
  Graph.t ->
  src:int ->
  ?usable:(Graph.arc -> bool) ->
  weight:(Graph.arc -> float) ->
  unit ->
  tree
(** Dijkstra under a caller-supplied non-negative arc weight (raises
    [Invalid_argument] on a negative one) — e.g. marginal prices that
    discount links whose peak is already paid for. [usable] defaults to
    accepting every arc. *)

val bellman_ford : Graph.t -> src:int -> tree option
(** Handles negative costs; [None] when a negative cycle is reachable from
    [src]. *)

val path_to : tree -> Graph.t -> dst:int -> int list option
(** Arc ids of the shortest path from the source to [dst], in order;
    [None] when unreachable. *)

val path_cost : Graph.t -> int list -> float
(** Total cost of a list of arc ids. *)
