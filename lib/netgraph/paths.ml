type tree = {
  dist : float array;
  pred_arc : int array;
}

let dijkstra_weighted g ~src ?(usable = fun _ -> true) ~weight () =
  let n = Graph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Paths.dijkstra: src out of range";
  let dist = Array.make n infinity in
  let pred_arc = Array.make n (-1) in
  let heap = Prelude.Heap.create () in
  dist.(src) <- 0.;
  Prelude.Heap.push heap 0. src;
  let continue = ref true in
  while !continue do
    match Prelude.Heap.pop_min heap with
    | None -> continue := false
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun id ->
              let a = Graph.arc g id in
              if usable a then begin
                let w = weight a in
                if w < 0. then invalid_arg "Paths.dijkstra: negative arc cost";
                let nd = d +. w in
                if nd < dist.(a.Graph.dst) -. 1e-15 then begin
                  dist.(a.Graph.dst) <- nd;
                  pred_arc.(a.Graph.dst) <- id;
                  Prelude.Heap.push heap nd a.Graph.dst
                end
              end)
            (Graph.out_arcs g u)
  done;
  { dist; pred_arc }

let dijkstra_filtered g ~src ~usable =
  dijkstra_weighted g ~src ~usable ~weight:(fun a -> a.Graph.cost) ()

let dijkstra g ~src = dijkstra_filtered g ~src ~usable:(fun _ -> true)

let bellman_ford g ~src =
  let n = Graph.num_nodes g in
  if src < 0 || src >= n then invalid_arg "Paths.bellman_ford: src out of range";
  let dist = Array.make n infinity in
  let pred_arc = Array.make n (-1) in
  dist.(src) <- 0.;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    Graph.iter_arcs g (fun a ->
        if dist.(a.Graph.src) < infinity then begin
          let nd = dist.(a.Graph.src) +. a.Graph.cost in
          if nd < dist.(a.Graph.dst) -. 1e-12 then begin
            dist.(a.Graph.dst) <- nd;
            pred_arc.(a.Graph.dst) <- a.Graph.id;
            changed := true
          end
        end)
  done;
  if !changed then None (* an n-th relaxation round still improved: cycle *)
  else Some { dist; pred_arc }

let path_to tree g ~dst =
  if dst < 0 || dst >= Array.length tree.dist then
    invalid_arg "Paths.path_to: dst out of range";
  if tree.dist.(dst) = infinity then None
  else begin
    let rec walk node acc =
      let id = tree.pred_arc.(node) in
      if id < 0 then acc
      else begin
        let a = Graph.arc g id in
        walk a.Graph.src (id :: acc)
      end
    in
    Some (walk dst [])
  end

let path_cost g ids =
  List.fold_left (fun acc id -> acc +. (Graph.arc g id).Graph.cost) 0. ids
