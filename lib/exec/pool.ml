(* A classic mutex/condition work pool over stdlib Domains. Two levels of
   synchronization: the pool's own queue (long-lived, workers park on it
   between batches) and a per-batch record tracking the shared item
   cursor, the completion count and the first error by index. The
   submitting domain is itself a worker for the duration of a batch, so
   [create ~domains:1] never spawns anything and [map] degenerates to a
   plain serial loop. *)

type state = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
}

type t = {
  size : int;
  st : state;
  workers : unit Domain.t array;
  mutable alive : bool;
}

let rec worker_loop st =
  Mutex.lock st.mutex;
  let next =
    let rec await () =
      if st.stop then None
      else
        match Queue.take_opt st.queue with
        | Some job -> Some job
        | None ->
            Condition.wait st.nonempty st.mutex;
            await ()
    in
    await ()
  in
  Mutex.unlock st.mutex;
  match next with
  | None -> ()
  | Some job ->
      (* Jobs are wrapped by [map] and cannot raise. *)
      job ();
      worker_loop st

let create ?domains () =
  let requested =
    match domains with
    | Some d -> max 1 d
    | None -> Domain.recommended_domain_count ()
  in
  let st =
    { mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stop = false }
  in
  { size = requested;
    st;
    workers = Array.init (requested - 1) (fun _ -> Domain.spawn (fun () -> worker_loop st));
    alive = true }

let size t = t.size

(* Per-batch bookkeeping, all under one mutex: [next] is the shared item
   cursor, [remaining] counts items not yet finished, [err] keeps the
   failure with the smallest item index so the surfaced exception does not
   depend on which domain lost the race. *)
type batch = {
  bm : Mutex.t;
  all_done : Condition.t;
  mutable next : int;
  mutable remaining : int;
  mutable err : (int * exn * Printexc.raw_backtrace) option;
}

let map t ~f items =
  if not t.alive then invalid_arg "Exec.Pool.map: pool is shut down";
  let n = Array.length items in
  if n = 0 then [||]
  else if t.size = 1 || n = 1 then Array.mapi f items
  else begin
    let results = Array.make n None in
    let batch =
      { bm = Mutex.create ();
        all_done = Condition.create ();
        next = 0;
        remaining = n;
        err = None }
    in
    let take () =
      Mutex.lock batch.bm;
      let i = batch.next in
      if i < n then batch.next <- i + 1;
      Mutex.unlock batch.bm;
      if i < n then Some i else None
    in
    let run_one i =
      (match f i items.(i) with
       | r -> results.(i) <- Some r
       | exception e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock batch.bm;
           (match batch.err with
            | Some (j, _, _) when j <= i -> ()
            | _ -> batch.err <- Some (i, e, bt));
           Mutex.unlock batch.bm);
      Mutex.lock batch.bm;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.all_done;
      Mutex.unlock batch.bm
    in
    let rec drain () =
      match take () with
      | Some i ->
          run_one i;
          drain ()
      | None -> ()
    in
    (* Park one helper per spare worker, then join the batch ourselves. *)
    let helpers = min (t.size - 1) n in
    Mutex.lock t.st.mutex;
    for _ = 1 to helpers do
      Queue.add drain t.st.queue
    done;
    Condition.broadcast t.st.nonempty;
    Mutex.unlock t.st.mutex;
    drain ();
    Mutex.lock batch.bm;
    while batch.remaining > 0 do
      Condition.wait batch.all_done batch.bm
    done;
    Mutex.unlock batch.bm;
    match batch.err with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map Option.get results
  end

let map_reduce t ~f ~init ~reduce items =
  Array.fold_left reduce init (map t ~f items)

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.st.mutex;
    t.st.stop <- true;
    Condition.broadcast t.st.nonempty;
    Mutex.unlock t.st.mutex;
    Array.iter Domain.join t.workers
  end
