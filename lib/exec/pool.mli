(** Fixed-size domain pool for embarrassingly parallel work.

    A pool owns [domains - 1] worker domains (the submitting domain is the
    remaining worker: it executes queued items itself while it waits, so a
    pool of size [n] really computes with [n] domains and a pool of size 1
    degenerates to a plain in-caller loop with no domain spawned at all).
    Work is submitted as an indexed batch; results always come back in
    submission order, whatever order items actually finish in, which is
    what keeps parallel reductions deterministic.

    Exceptions raised by a work item are caught on the worker, and the one
    with the {e smallest item index} is re-raised (with its backtrace) on
    the submitting domain once the batch has drained — a failing item
    never deadlocks the caller, and the choice of which failure surfaces
    does not depend on scheduling.

    Pools are small and cheap but not free (each worker is an OS thread);
    create one per phase, reuse it across batches, and {!shutdown} it when
    done. [map] may only be called from one domain at a time (the driver
    pattern); work items must not themselves call into the same pool. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] total workers
    (default {!Domain.recommended_domain_count}, i.e. the hardware).
    [domains] is clamped to at least 1. *)

val size : t -> int
(** Total parallelism of the pool, counting the submitting domain. *)

val map : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array
(** [map pool ~f items] computes [f i items.(i)] for every [i], spreading
    items over the pool's domains, and returns the results indexed exactly
    like the input. Re-raises the smallest-index exception, if any. *)

val map_reduce :
  t -> f:(int -> 'a -> 'b) -> init:'c -> reduce:('c -> 'b -> 'c) -> 'a array -> 'c
(** [map_reduce pool ~f ~init ~reduce items] folds the mapped results in
    submission order: [reduce (... (reduce init r0) ...) r_last]. The
    reduction itself runs on the submitting domain, so [reduce] needs no
    synchronization and the result is deterministic even when [reduce] is
    not commutative. *)

val shutdown : t -> unit
(** Stop and join every worker. Idempotent. Calling {!map} afterwards
    raises [Invalid_argument]. *)
