#!/usr/bin/env bash
# Tier-1 profile smoke: run a traced simulation with span recording on
# (--spans), then drive the profiling pipeline end to end — the span
# profile must balance (begins = ends, nothing unmatched, exclusive time
# summing to the root spans; trace-summary --profile exits nonzero
# otherwise), the Chrome trace_event export must be one valid JSON
# document, and the --json report must carry the profile section.
set -euo pipefail

sim=$1
dir=$(mktemp -d)
cleanup() { rm -rf "$dir"; }
trap cleanup EXIT

"$sim" custom --nodes 6 --slots 8 --runs 1 --schedulers postcard --spans \
  --trace "$dir/profile.jsonl" >/dev/null

# --profile gates on balance; --chrome self-checks by re-parsing the
# document before writing it. Either failure exits nonzero here.
"$sim" trace-summary "$dir/profile.jsonl" --profile \
  --chrome "$dir/chrome.json" >"$dir/profile.out"

# The instrumented stack must actually show up: solver phases, the LU
# factorization and the engine's per-slot spans.
for name in lp.pricing lp.ratio_test lu.factorize sched.schedule sim.commit; do
  if ! grep -q "$name" "$dir/profile.out"; then
    echo "profile smoke: span $name missing from the profile" >&2
    cat "$dir/profile.out" >&2
    exit 1
  fi
done
grep -q 'balance: ' "$dir/profile.out"

# The Chrome export: structurally a trace_event document, and valid JSON
# (re-validated with an independent parser when one is on the PATH; the
# exporter already refuses to write a document its own parser rejects).
grep -q '"traceEvents":' "$dir/chrome.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$dir/chrome.json"
fi

# The machine-readable report carries the same profile.
"$sim" trace-summary "$dir/profile.jsonl" --profile --json >"$dir/profile.json"
grep -q '"profile":' "$dir/profile.json"
grep -q '"unmatched":0' "$dir/profile.json"

echo "profile smoke: OK"
