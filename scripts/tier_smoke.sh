#!/usr/bin/env bash
# Tier-1 tiered-admission smoke. Two legs:
#
# 1. A traced postcard-tiered simulation with a mid-run link outage: the
#    fast tier's ledger bookings, the outage's stranded bytes and the
#    engine's re-offers must still produce a strictly-validating trace
#    whose byte accounting reconciles exactly (offered = delivered +
#    lost + rejected).
# 2. The serving daemon booted WITHOUT --scheduler: the tiered scheduler
#    is the serve default, so the smoke drives whatever the daemon picks
#    on its own and demands the same clean shutdown, byte reconciliation
#    and trace validation as the explicit serve smoke — plus evidence in
#    the trace that postcard-tiered really was the scheduler in charge.
set -euo pipefail

sim=$1 serve=$2 client=$3
dir=$(mktemp -d)
daemon_pid=
cleanup() {
  if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi
  rm -rf "$dir"
}
trap cleanup EXIT

# --- Leg 1: traced tiered run through a mid-run outage. ---
"$sim" figure --scaled 6 --nodes 6 --slots 8 --runs 1 \
  --schedulers postcard-tiered --faults link:0-1@4 \
  --trace "$dir/tier.jsonl" >"$dir/tier.out"
"$sim" trace-summary "$dir/tier.jsonl" --json >"$dir/tier_summary.json"
if ! grep -q '"reconciliation":"ok"' "$dir/tier_summary.json"; then
  echo "tier smoke: tiered outage run does not reconcile" >&2
  cat "$dir/tier_summary.json" >&2
  exit 1
fi
if ! grep -q 'postcard-tiered' "$dir/tier.jsonl"; then
  echo "tier smoke: trace never names the tiered scheduler" >&2
  exit 1
fi

# --- Leg 2: serve smoke on the daemon's default scheduler. ---
await_port() {
  local out=$1 pid=$2 port=
  for _ in $(seq 1 200); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$out")
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "tier smoke: daemon died before announcing a port" >&2
      return 1
    fi
    sleep 0.05
  done
  echo "tier smoke: daemon never announced a port" >&2
  return 1
}

"$serve" --clock turbo --nodes 6 --capacity 35 --seed 0 --slots 64 \
  --port 0 --trace "$dir/serve.jsonl" >"$dir/serve.out" 2>"$dir/serve.err" &
daemon_pid=$!

if ! port=$(await_port "$dir/serve.out" "$daemon_pid"); then
  cat "$dir/serve.out" "$dir/serve.err" >&2
  exit 1
fi

"$client" smoke --port "$port" -n 60 --batch 6 --seed 7

if ! wait "$daemon_pid"; then
  echo "tier smoke: daemon exited non-zero" >&2
  cat "$dir/serve.out" "$dir/serve.err" >&2
  exit 1
fi
daemon_pid=

if ! grep -q '^session: offered ' "$dir/serve.out"; then
  echo "tier smoke: daemon printed no shutdown summary" >&2
  cat "$dir/serve.out" >&2
  exit 1
fi
"$sim" trace-summary "$dir/serve.jsonl" >/dev/null
if ! grep -q 'postcard-tiered' "$dir/serve.jsonl"; then
  echo "tier smoke: serve default is not the tiered scheduler" >&2
  exit 1
fi
echo "tier smoke: OK"
