#!/usr/bin/env bash
# Tier-1 serve smoke: boot the serving daemon on an accelerated (turbo)
# clock, drive it with the smoke client over loopback (120 requests in
# batches of 12), and check the clean shutdown end to end — the client's
# byte reconciliation (offered = delivered + lost + rejected), the
# daemon's JSONL trace via trace-summary, the request-latency quantile
# report, and that the captured workload replays through the batch
# pipeline. A second, manual-clock daemon exercises the Prometheus
# scrape and the SIGTERM shutdown path (trace flushed and fsynced).
set -euo pipefail

serve=$1 client=$2 sim=$3
dir=$(mktemp -d)
daemon_pid=
cleanup() {
  if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi
  rm -rf "$dir"
}
trap cleanup EXIT

# Wait for "listening on 127.0.0.1:PORT" in $1 while pid $2 stays alive;
# prints the port.
await_port() {
  local out=$1 pid=$2 port=
  for _ in $(seq 1 200); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$out")
    if [ -n "$port" ]; then echo "$port"; return 0; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "serve smoke: daemon died before announcing a port" >&2
      return 1
    fi
    sleep 0.05
  done
  echo "serve smoke: daemon never announced a port" >&2
  return 1
}

"$serve" --clock turbo --scheduler direct --nodes 6 --capacity 35 --seed 0 \
  --slots 64 --port 0 --capture "$dir/capture.json" --metrics --spans \
  --trace "$dir/serve.jsonl" >"$dir/serve.out" 2>"$dir/serve.err" &
daemon_pid=$!

if ! port=$(await_port "$dir/serve.out" "$daemon_pid"); then
  cat "$dir/serve.out" "$dir/serve.err" >&2
  exit 1
fi

"$client" smoke --port "$port" -n 120 --batch 12 --seed 42

if ! wait "$daemon_pid"; then
  echo "serve smoke: daemon exited non-zero" >&2
  cat "$dir/serve.out" "$dir/serve.err" >&2
  exit 1
fi
daemon_pid=

# With --metrics on, the shutdown summary reports queued->completed
# latency quantiles from the serve.request_ms histogram.
if ! grep -q 'request latency: p50 .* p95 .* p99 ' "$dir/serve.out"; then
  echo "serve smoke: no request-latency quantile line" >&2
  cat "$dir/serve.out" >&2
  exit 1
fi

"$sim" trace-summary "$dir/serve.jsonl"
"$sim" custom --workload "$dir/capture.json" --nodes 6 --capacity 35 \
  --seed 0 --slots 64 --schedulers direct >/dev/null

# --- Prometheus scrape + SIGTERM shutdown, on a manual clock (the slot
# clock must not run between the scrape and the signal). ---
"$serve" --clock manual --scheduler direct --nodes 6 --capacity 35 --seed 0 \
  --slots 64 --port 0 --metrics --spans --trace "$dir/serve2.jsonl" \
  >"$dir/serve2.out" 2>"$dir/serve2.err" &
daemon_pid=$!

if ! port=$(await_port "$dir/serve2.out" "$daemon_pid"); then
  cat "$dir/serve2.out" "$dir/serve2.err" >&2
  exit 1
fi

"$client" scrape --port "$port" --prom >"$dir/scrape.prom"
# Prometheus text exposition: TYPE lines, the serve latency histogram
# with its +Inf bucket, and a sample on every non-comment line.
grep -q '^# TYPE serve_request_ms histogram$' "$dir/scrape.prom"
grep -q '^serve_request_ms_bucket{le="+Inf"} ' "$dir/scrape.prom"
if grep -v '^#' "$dir/scrape.prom" | grep -qv '^[a-zA-Z_:][a-zA-Z0-9_:]*\({[^}]*}\)\? [0-9.e+-]*$'; then
  echo "serve smoke: malformed Prometheus exposition line" >&2
  cat "$dir/scrape.prom" >&2
  exit 1
fi

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
  echo "serve smoke: daemon exited non-zero after SIGTERM" >&2
  cat "$dir/serve2.out" "$dir/serve2.err" >&2
  exit 1
fi
daemon_pid=

# The signal path flushed and fsynced the trace: it must still pass the
# strict reader (zero runs is fine — no slot ever ticked).
"$sim" trace-summary "$dir/serve2.jsonl" >/dev/null
echo "serve smoke: OK"
