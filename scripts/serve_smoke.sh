#!/usr/bin/env bash
# Tier-1 serve smoke: boot the serving daemon on an accelerated (turbo)
# clock, drive it with the smoke client over loopback (120 requests in
# batches of 12), and check the clean shutdown end to end — the client's
# byte reconciliation (offered = delivered + lost + rejected), the
# daemon's JSONL trace via trace-summary, and that the captured workload
# replays through the batch pipeline.
set -euo pipefail

serve=$1 client=$2 sim=$3
dir=$(mktemp -d)
daemon_pid=
cleanup() {
  if [ -n "$daemon_pid" ]; then kill "$daemon_pid" 2>/dev/null || true; fi
  rm -rf "$dir"
}
trap cleanup EXIT

"$serve" --clock turbo --scheduler direct --nodes 6 --capacity 35 --seed 0 \
  --slots 64 --port 0 --capture "$dir/capture.json" \
  --trace "$dir/serve.jsonl" >"$dir/serve.out" 2>"$dir/serve.err" &
daemon_pid=$!

# The daemon picks an ephemeral port and announces it on stdout.
port=
for _ in $(seq 1 200); do
  port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$dir/serve.out")
  if [ -n "$port" ]; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "serve smoke: daemon died before announcing a port" >&2
    cat "$dir/serve.out" "$dir/serve.err" >&2
    exit 1
  fi
  sleep 0.05
done
if [ -z "$port" ]; then
  echo "serve smoke: daemon never announced a port" >&2
  cat "$dir/serve.out" "$dir/serve.err" >&2
  exit 1
fi

"$client" smoke --port "$port" -n 120 --batch 12 --seed 42

if ! wait "$daemon_pid"; then
  echo "serve smoke: daemon exited non-zero" >&2
  cat "$dir/serve.out" "$dir/serve.err" >&2
  exit 1
fi
daemon_pid=

"$sim" trace-summary "$dir/serve.jsonl"
"$sim" custom --workload "$dir/capture.json" --nodes 6 --capacity 35 \
  --seed 0 --slots 64 --schedulers direct >/dev/null
echo "serve smoke: OK"
