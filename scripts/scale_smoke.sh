#!/usr/bin/env bash
# Tier-1 scale smoke: run the solver scale sweep at one bounded point
# (12 DCs x 24 slots under a wall-clock budget) and check the dual
# re-optimization path end to end — the bench itself fails loudly when
# the aggregate counters do not reconcile with the per-slot records or
# when no slot re-optimized via the dual simplex; the smoke additionally
# checks the emitted JSON and cross-checks a traced simulation run
# through trace-summary (strict validation + per-slot reconciliation),
# demanding that the trace, too, records dual re-opts.
set -euo pipefail

bench=$1 sim=$2
dir=$(mktemp -d)
cleanup() { rm -rf "$dir"; }
trap cleanup EXIT

"$bench" --scale-only --scale-sizes 12x24 --scale-budget-ms 10000 \
  --json-scale "$dir/scale.json" >"$dir/scale.out"

dual_reopts=$(sed -n 's/.*"dual_reopts": \([0-9][0-9]*\).*/\1/p' "$dir/scale.json")
if [ -z "$dual_reopts" ] || [ "$dual_reopts" -eq 0 ]; then
  echo "scale smoke: BENCH_scale point reports no dual re-opts" >&2
  cat "$dir/scale.out" >&2
  exit 1
fi
if ! grep -q '"dual_phase1_pivots": 0,' "$dir/scale.json"; then
  echo "scale smoke: dual-warm solves spent phase-1 pivots" >&2
  cat "$dir/scale.json" >&2
  exit 1
fi
if ! grep -q '"max_objective_gap": 0' "$dir/scale.json"; then
  echo "scale smoke: solvers disagree on the objective" >&2
  cat "$dir/scale.json" >&2
  exit 1
fi
if ! grep -q '"dual_failures": 0,' "$dir/scale.json"; then
  echo "scale smoke: a dual re-opt solve failed at smoke scale" >&2
  cat "$dir/scale.json" >&2
  exit 1
fi

# The same dual counters must surface through the trace pipeline: a
# traced online run, strictly validated and reconciled by trace-summary,
# has to report dual re-opts in its machine-readable report (the run's
# "totals" tally precedes the per-slot rows, so the first occurrence is
# the aggregate).
"$sim" --figure 6 --nodes 8 --slots 10 --runs 1 --schedulers postcard \
  --trace "$dir/scale_smoke.jsonl" >/dev/null
"$sim" trace-summary "$dir/scale_smoke.jsonl" --json >"$dir/summary.json"
if ! grep -q '"reconciliation":"ok"' "$dir/summary.json"; then
  echo "scale smoke: trace-summary --json reports a reconciliation failure" >&2
  cat "$dir/summary.json" >&2
  exit 1
fi
traced_dual=$(grep -o '"dual_reopts":[0-9]*' "$dir/summary.json" \
  | head -1 | cut -d: -f2)
if [ -z "$traced_dual" ] || [ "$traced_dual" -eq 0 ]; then
  echo "scale smoke: trace-summary reports no dual re-opts" >&2
  cat "$dir/summary.json" >&2
  exit 1
fi
echo "scale smoke: OK (${dual_reopts} dual re-opts in the sweep, ${traced_dual} in the traced run)"
