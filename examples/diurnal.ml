(* Diurnal workload, full simulation: the introduction's motivation made
   concrete. Traffic follows a day/night cycle, and the same two-day run is
   played in the paper's two regimes:

   - ample link capacity, where the fluid flow-based model wins (store-and-
     forward causes bursty relay traffic that a percentile charge punishes,
     Sec. VII / Figs. 4-5);
   - throttled link capacity, where Postcard wins by time-shifting
     delay-tolerant traffic into capacity already paid for (Figs. 6-7).

   Final bills are also evaluated under a 95-th percentile scheme.

   Run with: dune exec examples/diurnal.exe *)

module Charging = Postcard.Charging

let spec ~nodes =
  { (Sim.Workload.paper_spec ~nodes ~files_max:3 ~max_deadline:6) with
    Sim.Workload.size_min = 5.;
    size_max = 25.;
    deadlines = Sim.Workload.Uniform_deadline (2, 6);
    arrivals = Sim.Workload.Diurnal { period = 24; trough_scale = 0.2 } }

let run_regime ~label ~capacity =
  let nodes = 5 and slots = 48 in
  let topo_rng = Prelude.Rng.of_int 99 in
  let base =
    Netgraph.Topology.complete ~n:nodes ~rng:topo_rng ~cost_lo:1. ~cost_hi:10.
      ~capacity
  in
  Format.printf "@.%s (capacity %g GB/interval)@." label capacity;
  Format.printf "%-12s %16s %16s %10s@." "scheduler" "cost/t (100th)"
    "bill (95th)" "rejected";
  let show_timeline = ref None in
  List.iter
    (fun scheduler ->
      let workload = Sim.Workload.create (spec ~nodes) (Prelude.Rng.of_int 123) in
      let outcome =
        Sim.Engine.(run (make ~base ~scheduler ~workload ~slots ()))
      in
      let avg = Sim.Engine.average_cost outcome in
      let p95 =
        Sim.Engine.evaluate_cost outcome ~scheme:(Charging.scheme 95.) ~base
      in
      Format.printf "%-12s %16.1f %16.1f %10d@."
        (Postcard.Scheduler.name scheduler) avg p95
        outcome.Sim.Engine.rejected_files;
      if (Postcard.Scheduler.name scheduler) = "postcard" then
        show_timeline := Some outcome)
    [ Postcard.Postcard_scheduler.make ();
      Postcard.Flow_baseline.make ();
      Postcard.Direct_scheduler.make () ];
  match !show_timeline with
  | Some outcome ->
      Format.printf "%t@." (fun ppf ->
          Sim.Report.print_utilization ~top:3 ppf ~base ~outcome)
  | None -> ()

let () =
  print_endline "Diurnal workload: two simulated days on 5 datacenters";
  print_endline "-------------------------------------------------------";
  run_regime ~label:"Ample capacity" ~capacity:30.;
  run_regime ~label:"Throttled capacity" ~capacity:9.;
  print_newline ();
  print_endline
    "With ample capacity the fluid flow model's smooth rates beat Postcard's";
  print_endline
    "burstier store-and-forward relays. Once capacity is throttled, cheap";
  print_endline
    "links saturate and Postcard's time-shifting onto already-paid capacity";
  print_endline "wins - the paper's headline result (Sec. VII)."
