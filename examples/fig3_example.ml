(* The worked example of Sec. V (Fig. 3): four datacenters, two files, and
   all three strategies compared — direct send (52), the flow-based model
   (50) and Postcard with store-and-forward (32.67).

   Run with: dune exec examples/fig3_example.exe *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Formulate = Postcard.Formulate
module Flow = Postcard.Flow_baseline
module Scheduler = Postcard.Scheduler

(* Nodes: 0 = D1, 1 = D2, 2 = D3, 3 = D4; prices reconstructed from the
   numbers quoted in the paper's text (see DESIGN.md Sec. 6). *)
let costs =
  [| [| 0.; 1.; 5.; 6. |];
     [| 1.; 0.; 4.; 11. |];
     [| 5.; 4.; 0.; 6. |];
     [| 6.; 11.; 6.; 0. |] |]

let files () =
  [ File.make ~id:1 ~src:1 ~dst:3 ~size:8. ~deadline:4 ~release:0;
    File.make ~id:2 ~src:0 ~dst:3 ~size:10. ~deadline:2 ~release:0 ]

let pp_plan base plan =
  let txs =
    List.sort
      (fun a b -> compare (a.Plan.slot, a.Plan.link) (b.Plan.slot, b.Plan.link))
      plan.Plan.transmissions
  in
  List.iter
    (fun tx ->
      let a = Graph.arc base tx.Plan.link in
      Format.printf "    t=%d: file %d sends %5.2f over D%d -> D%d@." tx.Plan.slot
        tx.Plan.file tx.Plan.volume (a.Graph.src + 1) (a.Graph.dst + 1))
    txs;
  List.iter
    (fun h ->
      Format.printf "    t=%d: file %d holds %5.2f at D%d@." h.Plan.h_slot
        h.Plan.h_file h.Plan.h_volume (h.Plan.h_node + 1))
    (List.sort (fun a b -> compare a.Plan.h_slot b.Plan.h_slot) plan.Plan.holdovers)

let () =
  let base = Netgraph.Topology.of_cost_matrix ~capacity:5. costs in
  let m = Graph.num_arcs base in
  print_endline "Sec. V worked example (Fig. 3): 4 datacenters, capacity 5";
  print_endline "  File 1: D2 -> D4, size 8, deadline 4 intervals";
  print_endline "  File 2: D1 -> D4, size 10, deadline 2 intervals";
  print_newline ();

  (* 1. Direct send. *)
  let direct = Postcard.Direct_scheduler.make () in
  let ctx =
    { Scheduler.base;
      epoch = 0;
      period = 100;
      charged = Array.make m 0.;
      links =
        Postcard.Linkview.make
          ~residual:(fun ~link:_ ~slot:_ -> 5.)
          ~occupied:(fun ~link:_ ~slot:_ -> 0.)
          ~down:(fun ~link:_ ~slot:_ -> false) }
  in
  let { Scheduler.plan = direct_plan; _ } =
    Scheduler.schedule direct ctx (files ())
  in
  let direct_cost =
    Graph.fold_arcs base ~init:0. ~f:(fun acc a ->
        let peak = ref 0. in
        for slot = 0 to 3 do
          peak := max !peak (Plan.volume_on direct_plan ~link:a.Graph.id ~slot)
        done;
        acc +. (a.Graph.cost *. !peak))
  in
  Format.printf "Direct send (no routing/scheduling): cost %.2f per interval@."
    direct_cost;

  (* 2. The flow-based model of Sec. II-B. *)
  let inst =
    { Flow.base;
      cap = Array.make m 5.;
      occ_peak = Array.make m 0.;
      charged = Array.make m 0. }
  in
  (match Flow.solve_two_stage inst ~files:(files ()) with
   | None -> prerr_endline "flow model infeasible?"
   | Some flows ->
       Format.printf "Flow-based model:                    cost %.2f per interval@."
         flows.Flow.estimated_cost);

  (* 3. Postcard. *)
  let formulation =
    Formulate.create ~base ~charged:(Array.make m 0.)
      ~capacity:(fun ~link:_ ~layer:_ -> 5.)
      ~files:(files ()) ~epoch:0 ()
  in
  match Formulate.solve formulation with
  | Formulate.Infeasible -> prerr_endline "postcard infeasible?"
  | Formulate.Solver_failure msg -> prerr_endline msg
  | Formulate.Scheduled { plan; objective; _ } ->
      Format.printf "Postcard (store-and-forward):        cost %.2f per interval@.@."
        objective;
      Format.printf "Postcard's optimal schedule (t = time interval):@.";
      pp_plan base plan;
      print_newline ();
      print_endline
        "File 2 saturates the cheap D1->D4 link during the first two intervals;";
      print_endline
        "file 1 trickles over D2->D1, is stored at D1, and then free-rides the";
      print_endline "already-paid D1->D4 link - the essence of store-and-forward."
