(* Command-line driver for the Postcard evaluation: reproduce any of the
   paper's figure settings (4-7), at paper scale or bench scale, or run a
   fully custom setting, with any subset of the implemented schedulers. *)

let make_scheduler = function
  | "postcard" -> Ok (Postcard.Postcard_scheduler.make ())
  | "flow" | "flow-based" -> Ok (Postcard.Flow_baseline.make ())
  | "flow-excess" ->
      Ok (Postcard.Flow_baseline.make ~variant:`Two_stage_excess ())
  | "flow-joint" ->
      Ok (Postcard.Flow_baseline.make ~variant:`Joint ())
  | "direct" -> Ok (Postcard.Direct_scheduler.make ())
  | "greedy" | "greedy-snf" -> Ok (Postcard.Greedy_scheduler.make ())
  | "burst" | "burst-95" -> Ok (Postcard.Greedy_scheduler.make_percentile ())
  | other -> Error (Printf.sprintf "unknown scheduler %S" other)

let run figure scale nodes capacity files_max max_deadline slots runs seed
    size_max fixed_deadlines schedulers series verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning);
  let base_setting =
    match (figure, scale) with
    | Some n, `Paper -> Sim.Experiment.paper_figure n
    | Some n, `Scaled -> Sim.Experiment.scaled_figure n
    | None, _ ->
        { Sim.Experiment.label = "custom";
          nodes = 8;
          capacity = 35.;
          cost_lo = 1.;
          cost_hi = 10.;
          files_max = 6;
          size_max = 100.;
          max_deadline = 3;
          uniform_deadlines = true;
          slots = 40;
          runs = 5;
          seed = 42 }
  in
  let setting =
    { base_setting with
      Sim.Experiment.nodes = Option.value nodes ~default:base_setting.Sim.Experiment.nodes;
      capacity = Option.value capacity ~default:base_setting.Sim.Experiment.capacity;
      files_max = Option.value files_max ~default:base_setting.Sim.Experiment.files_max;
      max_deadline =
        Option.value max_deadline ~default:base_setting.Sim.Experiment.max_deadline;
      slots = Option.value slots ~default:base_setting.Sim.Experiment.slots;
      runs = Option.value runs ~default:base_setting.Sim.Experiment.runs;
      seed = Option.value seed ~default:base_setting.Sim.Experiment.seed;
      size_max =
        Option.value size_max ~default:base_setting.Sim.Experiment.size_max;
      uniform_deadlines = not fixed_deadlines }
  in
  let scheduler_names = String.split_on_char ',' schedulers in
  let rec build = function
    | [] -> Ok []
    | name :: rest -> (
        match make_scheduler (String.trim name) with
        | Error _ as e -> e
        | Ok s -> (
            match build rest with
            | Error _ as e -> e
            | Ok tail -> Ok (s :: tail)))
  in
  match build scheduler_names with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok schedulers ->
      let progress ~run ~scheduler =
        if verbose then
          Format.eprintf "run %d/%d: %s...@." (run + 1)
            setting.Sim.Experiment.runs scheduler
      in
      let results = Sim.Experiment.run_setting ~progress setting ~schedulers in
      Format.printf "%a@." Sim.Report.print_summary results;
      if List.length schedulers >= 2 then begin
        match schedulers with
        | first :: second :: _ ->
            Format.printf "%t@." (fun ppf ->
                Sim.Report.print_comparison ppf
                  ~baseline:second.Postcard.Scheduler.name
                  ~contender:first.Postcard.Scheduler.name results)
        | _ -> ()
      end;
      if series then Format.printf "%a@." (Sim.Report.print_series ?every:None) results

open Cmdliner

let figure =
  Arg.(value & opt (some int) None & info [ "figure"; "f" ] ~docv:"N"
         ~doc:"Reproduce the paper's figure N (4-7).")

let scale =
  Arg.(value & opt (enum [ ("paper", `Paper); ("scaled", `Scaled) ]) `Scaled
       & info [ "scale" ] ~docv:"SCALE"
           ~doc:"With --figure: 'paper' for the paper's exact 20-DC setting, \
                 'scaled' (default) for the bench-friendly 8-DC setting.")

let nodes = Arg.(value & opt (some int) None & info [ "nodes" ] ~docv:"N" ~doc:"Number of datacenters.")
let capacity = Arg.(value & opt (some float) None & info [ "capacity" ] ~docv:"GB" ~doc:"Per-link capacity (GB per interval).")
let files_max = Arg.(value & opt (some int) None & info [ "max-files" ] ~docv:"K" ~doc:"Files per slot uniform in [1, K].")
let max_deadline = Arg.(value & opt (some int) None & info [ "max-deadline" ] ~docv:"T" ~doc:"Deadline bound max_k T_k.")
let slots = Arg.(value & opt (some int) None & info [ "slots" ] ~docv:"S" ~doc:"Number of time slots.")
let runs = Arg.(value & opt (some int) None & info [ "runs" ] ~docv:"R" ~doc:"Independent runs (seeds).")
let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Base RNG seed.")

let size_max =
  Arg.(value & opt (some float) None & info [ "size-max" ] ~docv:"GB"
         ~doc:"Upper end of the uniform file-size draw (default 100).")

let fixed_deadlines =
  Arg.(value & flag & info [ "fixed-deadlines" ]
         ~doc:"Give every file exactly the deadline bound T instead of the \
               default uniform draw in [1, T].")

let schedulers =
  Arg.(value & opt string "postcard,flow" & info [ "schedulers" ] ~docv:"LIST"
         ~doc:"Comma-separated schedulers: postcard, flow, flow-excess, \
               flow-joint, direct, greedy.")

let series = Arg.(value & flag & info [ "series" ] ~doc:"Also print the cost-per-interval time series.")
let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Progress and scheduler logs.")

let cmd =
  let doc = "reproduce the Postcard evaluation (ICDCS 2012, Figs. 4-7)" in
  Cmd.v
    (Cmd.info "postcard_sim" ~doc)
    Term.(const run $ figure $ scale $ nodes $ capacity $ files_max
          $ max_deadline $ slots $ runs $ seed $ size_max $ fixed_deadlines
          $ schedulers $ series $ verbose)

let () = exit (Cmd.eval cmd)
