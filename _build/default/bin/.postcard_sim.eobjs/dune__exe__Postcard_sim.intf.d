bin/postcard_sim.mli:
