bin/postcard_solve.mli:
