bin/postcard_solve.ml: Arg Array Cmd Cmdliner Format List Lp Netgraph Option Postcard Term
