bin/postcard_sim.ml: Arg Cmd Cmdliner Fmt_tty Format List Logs Logs_fmt Option Postcard Printf Sim String Term
