(* Behavioural tests of the Postcard formulation beyond the golden
   examples: free-riding, deadline pressure, infeasibility detection,
   capacity sharing, and randomized validity properties. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Formulate = Postcard.Formulate

let solve_get ~base ~charged ~capacity ~files =
  let f = Formulate.create ~base ~charged ~capacity ~files ~epoch:0 () in
  Formulate.solve f

type scheduled = {
  plan : Plan.t;
  objective : float;
  charged : float array;
}

let expect_scheduled = function
  | Formulate.Scheduled { plan; objective; charged } ->
      { plan; objective; charged }
  | Formulate.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Formulate.Solver_failure msg -> Alcotest.fail msg

let two_node () =
  let g = Graph.create ~n:2 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:3. () in
  (g, a)

let test_single_link_spread () =
  (* One file, one link: the optimum spreads the file evenly to minimize
     the peak, X = size / deadline. *)
  let g, a = two_node () in
  let f = File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0 in
  let r =
    expect_scheduled
      (solve_get ~base:g ~charged:[| 0. |]
         ~capacity:(fun ~link:_ ~layer:_ -> 10.)
         ~files:[ f ])
  in
  Alcotest.(check (float 1e-4)) "X = rate" 3. r.charged.(a);
  Alcotest.(check (float 1e-4)) "objective" 9. r.objective

let test_free_riding_under_charge () =
  (* The link is already charged at 5: shipping up to 5 per slot is free,
     so the whole file rides for nothing and X stays at 5. *)
  let g, a = two_node () in
  let f = File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0 in
  let r =
    expect_scheduled
      (solve_get ~base:g ~charged:[| 5. |]
         ~capacity:(fun ~link:_ ~layer:_ -> 10.)
         ~files:[ f ])
  in
  Alcotest.(check (float 1e-4)) "X unchanged" 5. r.charged.(a);
  Alcotest.(check (float 1e-4)) "objective = old charge" 15. r.objective

let test_tight_deadline_forces_peak () =
  let g, a = two_node () in
  let f = File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:1 ~release:0 in
  let r =
    expect_scheduled
      (solve_get ~base:g ~charged:[| 0. |]
         ~capacity:(fun ~link:_ ~layer:_ -> 10.)
         ~files:[ f ])
  in
  Alcotest.(check (float 1e-4)) "X = full size" 9. r.charged.(a)

let test_infeasible_capacity () =
  let g, _ = two_node () in
  let f = File.make ~id:0 ~src:0 ~dst:1 ~size:25. ~deadline:2 ~release:0 in
  match
    solve_get ~base:g ~charged:[| 0. |]
      ~capacity:(fun ~link:_ ~layer:_ -> 10.)
      ~files:[ f ]
  with
  | Formulate.Infeasible -> ()
  | Formulate.Scheduled _ -> Alcotest.fail "25 GB cannot fit in 2 x 10"
  | Formulate.Solver_failure msg -> Alcotest.fail msg

let test_per_layer_capacity_respected () =
  (* Capacity 10 at layer 0 but only 2 at layer 1: a 12-unit file with
     deadline 2 must send 10 then 2. *)
  let g, a = two_node () in
  let f = File.make ~id:0 ~src:0 ~dst:1 ~size:12. ~deadline:2 ~release:0 in
  let capacity ~link:_ ~layer = if layer = 0 then 10. else 2. in
  let r =
    expect_scheduled (solve_get ~base:g ~charged:[| 0. |] ~capacity ~files:[ f ])
  in
  Alcotest.(check (float 1e-4)) "X = 10" 10. r.charged.(a);
  let vol0 = Plan.volume_on r.plan ~link:a ~slot:0 in
  let vol1 = Plan.volume_on r.plan ~link:a ~slot:1 in
  Alcotest.(check (float 1e-4)) "slot 0" 10. vol0;
  Alcotest.(check (float 1e-4)) "slot 1" 2. vol1

let test_two_files_share_capacity () =
  let g, a = two_node () in
  let f1 = File.make ~id:0 ~src:0 ~dst:1 ~size:10. ~deadline:2 ~release:0 in
  let f2 = File.make ~id:1 ~src:0 ~dst:1 ~size:10. ~deadline:2 ~release:0 in
  let r =
    expect_scheduled
      (solve_get ~base:g ~charged:[| 0. |]
         ~capacity:(fun ~link:_ ~layer:_ -> 10.)
         ~files:[ f1; f2 ])
  in
  (* 20 units over 2 slots on a 10-capacity link: X = 10, saturated. *)
  Alcotest.(check (float 1e-4)) "X" 10. r.charged.(a);
  match
    Plan.validate ~base:g ~files:[ f1; f2 ]
      ~capacity:(fun ~link:_ ~slot:_ -> 10.)
      r.plan
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_charged_lower_bound_kept () =
  (* X never decreases even when the link is unused. *)
  let g = Graph.create ~n:3 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. () in
  let a12 = Graph.add_arc g ~src:1 ~dst:2 ~capacity:10. ~cost:1. () in
  let f = File.make ~id:0 ~src:0 ~dst:1 ~size:1. ~deadline:1 ~release:0 in
  let r =
    expect_scheduled
      (solve_get ~base:g ~charged:[| 0.5; 7. |]
         ~capacity:(fun ~link:_ ~layer:_ -> 10.)
         ~files:[ f ])
  in
  Alcotest.(check (float 1e-4)) "used link X" 1. r.charged.(a01);
  Alcotest.(check (float 1e-4)) "idle link X keeps charge" 7.
    r.charged.(a12)

let test_storage_exploits_cheap_path () =
  (* A cheap two-hop path with a capacity bottleneck at the first hop in
     early slots only: storage lets the whole file take the cheap path. *)
  let g = Graph.create ~n:3 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. () in
  let a12 = Graph.add_arc g ~src:1 ~dst:2 ~capacity:10. ~cost:1. () in
  let a02 = Graph.add_arc g ~src:0 ~dst:2 ~capacity:10. ~cost:100. () in
  ignore a02;
  let f = File.make ~id:0 ~src:0 ~dst:2 ~size:8. ~deadline:4 ~release:0 in
  let r =
    expect_scheduled
      (solve_get ~base:g ~charged:[| 0.; 0.; 0. |]
         ~capacity:(fun ~link:_ ~layer:_ -> 10.)
         ~files:[ f ])
  in
  (* Optimal: trickle 8/3 per slot on each cheap link, pipelined; the
     expensive link stays unused. *)
  Alcotest.(check (float 1e-3)) "objective" (16. /. 3.) r.objective;
  Alcotest.(check (float 1e-3)) "hop 1 peak" (8. /. 3.) r.charged.(a01);
  Alcotest.(check (float 1e-3)) "hop 2 peak" (8. /. 3.) r.charged.(a12)

(* Randomized: every optimal plan validates, and the objective never
   beats the trivial lower bound sum_l a_l * charged_l. *)
let test_random_plans_validate () =
  let rng = Prelude.Rng.of_int 2718 in
  for trial = 1 to 25 do
    (* Capacity 100 with sizes <= 40 keeps every instance feasible even
       when several deadline-1 files share a source. *)
    let n = 3 + Prelude.Rng.int rng 3 in
    let base =
      Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:100.
    in
    let m = Graph.num_arcs base in
    let charged =
      Array.init m (fun _ ->
          if Prelude.Rng.bool rng then Prelude.Rng.float rng 10. else 0.)
    in
    let nfiles = 1 + Prelude.Rng.int rng 4 in
    let files =
      List.init nfiles (fun id ->
          let src = Prelude.Rng.int rng n in
          let rec dst () =
            let d = Prelude.Rng.int rng n in
            if d = src then dst () else d
          in
          File.make ~id ~src ~dst:(dst ())
            ~size:(Prelude.Rng.float_range rng 5. 40.)
            ~deadline:(Prelude.Rng.int_incl rng 1 5)
            ~release:0)
    in
    let capacity ~link:_ ~layer:_ = 100. in
    match solve_get ~base ~charged ~capacity ~files with
    | Formulate.Infeasible -> Alcotest.failf "trial %d: unexpectedly infeasible" trial
    | Formulate.Solver_failure msg -> Alcotest.failf "trial %d: %s" trial msg
    | Formulate.Scheduled { plan; objective; charged = x } ->
        (match
           Plan.validate ~base ~files
             ~capacity:(fun ~link:_ ~slot:_ -> 100.)
             plan
         with
         | Ok () -> ()
         | Error msg -> Alcotest.failf "trial %d: invalid plan: %s" trial msg);
        (* Lower bound: the pre-existing charge must be paid regardless. *)
        let floor_cost =
          Graph.fold_arcs base ~init:0. ~f:(fun acc a ->
              acc +. (a.Graph.cost *. charged.(a.Graph.id)))
        in
        if objective < floor_cost -. 1e-6 then
          Alcotest.failf "trial %d: objective below charge floor" trial;
        Array.iteri
          (fun l xv ->
            if xv < charged.(l) -. 1e-6 then
              Alcotest.failf "trial %d: X decreased on link %d" trial l)
          x
  done

let suite =
  [ Alcotest.test_case "single link spread" `Quick test_single_link_spread;
    Alcotest.test_case "free riding under charge" `Quick test_free_riding_under_charge;
    Alcotest.test_case "tight deadline forces peak" `Quick test_tight_deadline_forces_peak;
    Alcotest.test_case "infeasible capacity" `Quick test_infeasible_capacity;
    Alcotest.test_case "per-layer capacity" `Quick test_per_layer_capacity_respected;
    Alcotest.test_case "two files share capacity" `Quick test_two_files_share_capacity;
    Alcotest.test_case "charged lower bound kept" `Quick test_charged_lower_bound_kept;
    Alcotest.test_case "storage exploits cheap path" `Quick test_storage_exploits_cheap_path;
    Alcotest.test_case "random plans validate x25" `Quick test_random_plans_validate ]
