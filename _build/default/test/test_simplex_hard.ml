(* Adversarial inputs for the revised simplex: exponential-path cubes,
   highly degenerate polytopes, redundant rows, and scale extremes. *)

module Model = Lp.Model
module Status = Lp.Status

let get_opt = function
  | Status.Optimal s -> s
  | other -> Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

(* Klee-Minty cube of dimension n:
   max sum 2^(n-j) x_j  s.t.  2 sum_{i<j} 2^(j-i) x_i + x_j <= 5^j.
   Optimal value 5^n at x = (0, ..., 0, 5^n). Dantzig's rule visits 2^n
   vertices; a competent pricing rule must stay far below that. *)
let klee_minty n =
  let m = Model.create Model.Maximize in
  let vars =
    Array.init n (fun j ->
        Model.add_var m ~name:(Printf.sprintf "x%d" j)
          ~obj:(Float.pow 2. (float_of_int (n - 1 - j)))
          ())
  in
  for j = 0 to n - 1 do
    let terms = ref [ (vars.(j), 1.) ] in
    for i = 0 to j - 1 do
      terms := (vars.(i), 2. *. Float.pow 2. (float_of_int (j - i))) :: !terms
    done;
    ignore
      (Model.add_constraint m !terms Model.Le (Float.pow 5. (float_of_int (j + 1))))
  done;
  m

let test_klee_minty () =
  List.iter
    (fun n ->
      let s = get_opt (Lp.Simplex.solve (klee_minty n)) in
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "optimal value at n=%d" n)
        (Float.pow 5. (float_of_int n))
        s.Status.objective;
      (* Far below the 2^n pivots Dantzig would need. *)
      Alcotest.(check bool)
        (Printf.sprintf "pivot count reasonable at n=%d (%d)" n
           s.Status.iterations)
        true
        (s.Status.iterations < 50 * n))
    [ 4; 8; 12 ]

let test_highly_redundant_rows () =
  (* The same constraint repeated many times: every copy is degenerate at
     the optimum. *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:1. () in
  for _ = 1 to 40 do
    ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 10.)
  done;
  let s = get_opt (Lp.Simplex.solve m) in
  Alcotest.(check (float 1e-6)) "objective" 10. s.Status.objective

let test_assignment_degeneracy () =
  (* Assignment polytopes are classic degenerate LPs. 6x6 with a known
     optimal diagonal. *)
  let n = 6 in
  let rng = Prelude.Rng.of_int 12 in
  let cost = Array.init n (fun _ -> Array.init n (fun _ -> 1. +. Prelude.Rng.float rng 9.)) in
  for i = 0 to n - 1 do
    cost.(i).(i) <- 0.5 (* make the diagonal clearly optimal *)
  done;
  let m = Model.create Model.Minimize in
  let x =
    Array.init n (fun i ->
        Array.init n (fun j -> Model.add_var m ~obj:cost.(i).(j) ~ub:1. ()))
  in
  for i = 0 to n - 1 do
    ignore
      (Model.add_constraint m (List.init n (fun j -> (x.(i).(j), 1.))) Model.Eq 1.);
    ignore
      (Model.add_constraint m (List.init n (fun j -> (x.(j).(i), 1.))) Model.Eq 1.)
  done;
  let s = get_opt (Lp.Simplex.solve m) in
  Alcotest.(check (float 1e-5)) "diagonal assignment" (0.5 *. float_of_int n)
    s.Status.objective

let test_scale_extremes () =
  (* Mixed coefficient magnitudes. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1e4 () in
  let y = Model.add_var m ~obj:1e-3 () in
  ignore (Model.add_constraint m [ (x, 1e3); (y, 1e-2) ] Model.Ge 10.);
  let s = get_opt (Lp.Simplex.solve m) in
  (* Cheapest satisfaction: use y: y = 1000 at cost 1. x would cost 100. *)
  Alcotest.(check (float 1e-4)) "objective" 1. s.Status.objective

let test_long_chain () =
  (* A chain x1 >= x2 >= ... >= xn with xn >= 1, min x1: forces a long
     sequential pivot structure. *)
  let n = 60 in
  let m = Model.create Model.Minimize in
  let vars = Array.init n (fun i -> Model.add_var m ~obj:(if i = 0 then 1. else 0.) ()) in
  for i = 0 to n - 2 do
    ignore (Model.add_constraint m [ (vars.(i), 1.); (vars.(i + 1), -1.) ] Model.Ge 0.)
  done;
  ignore (Model.add_constraint m [ (vars.(n - 1), 1.) ] Model.Ge 1.);
  let s = get_opt (Lp.Simplex.solve m) in
  Alcotest.(check (float 1e-6)) "objective" 1. s.Status.objective

let test_dense_random_medium () =
  (* A denser random program than the oracle suite uses, to exercise the
     refactorization path with non-trivial fill. *)
  let rng = Prelude.Rng.of_int 321 in
  let n = 40 and rows = 30 in
  let m = Model.create Model.Minimize in
  let point = Array.init n (fun _ -> Prelude.Rng.float rng 3.) in
  let vars =
    Array.init n (fun _ -> Model.add_var m ~obj:(Prelude.Rng.float_range rng 0.1 5.) ~ub:10. ())
  in
  for _ = 1 to rows do
    let lhs = ref 0. and terms = ref [] in
    Array.iteri
      (fun i v ->
        let c = Prelude.Rng.float_range rng (-2.) 2. in
        lhs := !lhs +. (c *. point.(i));
        terms := (v, c) :: !terms)
      vars;
    ignore (Model.add_constraint m !terms Model.Ge (!lhs -. Prelude.Rng.float rng 1.))
  done;
  let s = get_opt (Lp.Simplex.solve m) in
  Alcotest.(check (float 1e-5)) "feasible optimum" 0.
    (Model.constraint_violation m s.Status.primal)

let suite =
  [ Alcotest.test_case "klee-minty cubes" `Quick test_klee_minty;
    Alcotest.test_case "redundant rows" `Quick test_highly_redundant_rows;
    Alcotest.test_case "assignment degeneracy" `Quick test_assignment_degeneracy;
    Alcotest.test_case "scale extremes" `Quick test_scale_extremes;
    Alcotest.test_case "long chain" `Quick test_long_chain;
    Alcotest.test_case "dense random medium" `Quick test_dense_random_medium ]
