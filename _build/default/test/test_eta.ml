module Eta = Sparselin.Eta
module Dense = Sparselin.Dense

(* Dense reference: the eta matrix E is the identity with column [pos]
   replaced by [alpha]. apply_ftran must compute E^-1 x and apply_btran
   must compute E^-T y. *)
let dense_eta n ~pos ~alpha =
  let e = Dense.identity n in
  for i = 0 to n - 1 do
    e.(i).(pos) <- alpha.(i)
  done;
  e

let test_ftran_matches_dense () =
  let rng = Prelude.Rng.of_int 31 in
  for _ = 1 to 50 do
    let n = 2 + Prelude.Rng.int rng 8 in
    let pos = Prelude.Rng.int rng n in
    let alpha =
      Array.init n (fun _ ->
          if Prelude.Rng.bool rng then 0. else Prelude.Rng.float_range rng (-3.) 3.)
    in
    alpha.(pos) <- (1. +. Prelude.Rng.float rng 3.) *. (if Prelude.Rng.bool rng then 1. else -1.);
    let x = Array.init n (fun _ -> Prelude.Rng.float_range rng (-5.) 5.) in
    let e = dense_eta n ~pos ~alpha in
    let eta = Eta.make ~pos ~alpha in
    (* Check E * (E^-1 x) = x. *)
    let x' = Array.copy x in
    Eta.apply_ftran eta x';
    let back = Dense.matvec e x' in
    Array.iteri
      (fun i v -> Alcotest.(check (float 1e-9)) "E (E^-1 x) = x" x.(i) v)
      back
  done

let test_btran_matches_dense () =
  let rng = Prelude.Rng.of_int 37 in
  for _ = 1 to 50 do
    let n = 2 + Prelude.Rng.int rng 8 in
    let pos = Prelude.Rng.int rng n in
    let alpha =
      Array.init n (fun _ ->
          if Prelude.Rng.bool rng then 0. else Prelude.Rng.float_range rng (-3.) 3.)
    in
    alpha.(pos) <- 2.5;
    let y = Array.init n (fun _ -> Prelude.Rng.float_range rng (-5.) 5.) in
    let e = dense_eta n ~pos ~alpha in
    let eta = Eta.make ~pos ~alpha in
    let y' = Array.copy y in
    Eta.apply_btran eta y';
    let back = Dense.matvec (Dense.transpose e) y' in
    Array.iteri
      (fun i v -> Alcotest.(check (float 1e-9)) "E^T (E^-T y) = y" y.(i) v)
      back
  done

let test_small_pivot_rejected () =
  Alcotest.check_raises "tiny diagonal"
    (Invalid_argument "Eta.make: pivot element too small") (fun () ->
      ignore (Eta.make ~pos:0 ~alpha:[| 1e-13; 1. |]))

let test_accessors () =
  let eta = Eta.make ~pos:1 ~alpha:[| 0.5; 2.; 0. |] in
  Alcotest.(check int) "pos" 1 (Eta.pos eta);
  Alcotest.(check (float 0.)) "diag" 2. (Eta.diag eta);
  Alcotest.(check int) "nnz counts off-diagonal plus diag" 2 (Eta.nnz eta)

let suite =
  [ Alcotest.test_case "ftran matches dense" `Quick test_ftran_matches_dense;
    Alcotest.test_case "btran matches dense" `Quick test_btran_matches_dense;
    Alcotest.test_case "small pivot rejected" `Quick test_small_pivot_rejected;
    Alcotest.test_case "accessors" `Quick test_accessors ]
