test/test_extensions.ml: Alcotest Array Netgraph Postcard
