test/test_file_charging.ml: Alcotest Array Postcard Result
