test/test_timexp.ml: Alcotest Netgraph Timexp
