test/test_rng.ml: Alcotest Array Prelude Printf
