test/test_flows.ml: Alcotest Array List Lp Netgraph Prelude Printf
