test/test_presolve.ml: Alcotest Array List Lp Prelude
