test/test_plan.ml: Alcotest Netgraph Postcard Result
