test/test_paper_examples.ml: Alcotest Array List Netgraph Option Postcard
