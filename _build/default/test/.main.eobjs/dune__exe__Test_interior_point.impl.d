test/test_interior_point.ml: Alcotest Array Lp Prelude
