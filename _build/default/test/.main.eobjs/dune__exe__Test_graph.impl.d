test/test_graph.ml: Alcotest Netgraph Prelude
