test/test_formulate.ml: Alcotest Array List Netgraph Postcard Prelude
