test/test_percentile_scheduler.ml: Alcotest Array List Netgraph Postcard Prelude Printf Sim
