test/test_simplex.ml: Alcotest Array List Lp
