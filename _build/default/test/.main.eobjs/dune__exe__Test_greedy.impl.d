test/test_greedy.ml: Alcotest Array List Netgraph Postcard Prelude Printf
