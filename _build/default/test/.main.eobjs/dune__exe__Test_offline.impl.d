test/test_offline.ml: Alcotest Array Hashtbl List Netgraph Postcard Prelude Printf Sim
