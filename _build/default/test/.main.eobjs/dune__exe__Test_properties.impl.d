test/test_properties.ml: Array List Lp Netgraph Postcard Prelude QCheck2 QCheck_alcotest Sim Timexp
