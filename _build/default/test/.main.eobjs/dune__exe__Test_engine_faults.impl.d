test/test_engine_faults.ml: Alcotest Array Netgraph Postcard Prelude Sim
