test/test_mps.ml: Alcotest Array List Lp Prelude Printf
