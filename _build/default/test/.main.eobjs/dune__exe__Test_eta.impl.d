test/test_eta.ml: Alcotest Array Prelude Sparselin
