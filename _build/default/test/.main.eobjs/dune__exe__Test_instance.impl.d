test/test_instance.ml: Alcotest Array List Netgraph Option Postcard String
