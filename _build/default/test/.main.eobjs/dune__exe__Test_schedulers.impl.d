test/test_schedulers.ml: Alcotest Array List Netgraph Postcard Printf
