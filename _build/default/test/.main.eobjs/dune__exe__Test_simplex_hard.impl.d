test/test_simplex_hard.ml: Alcotest Array Float List Lp Prelude Printf
