test/test_model.ml: Alcotest Array List Lp
