test/test_stats.ml: Alcotest Prelude
