test/test_lu.ml: Alcotest Array Prelude Printf Sparselin
