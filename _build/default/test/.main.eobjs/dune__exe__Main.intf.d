test/main.mli:
