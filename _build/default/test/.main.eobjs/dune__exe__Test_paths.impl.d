test/test_paths.ml: Alcotest Array Netgraph Prelude
