test/test_report.ml: Alcotest Buffer Format Netgraph Postcard Prelude Sim String
