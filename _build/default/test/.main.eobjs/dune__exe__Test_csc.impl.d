test/test_csc.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Sparselin
