test/test_dense.ml: Alcotest Array Prelude Sparselin
