test/test_oracle.ml: Alcotest Array List Lp Prelude
