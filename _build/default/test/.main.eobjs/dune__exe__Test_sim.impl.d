test/test_sim.ml: Alcotest Array List Netgraph Postcard Prelude Printf Sim
