module Model = Lp.Model
module Status = Lp.Status
module Mps = Lp.Mps

let sample_model () =
  let m = Model.create ~name:"sample" Model.Minimize in
  let x = Model.add_var m ~name:"x" ~obj:2. () in
  let y = Model.add_var m ~name:"y" ~obj:3. ~lb:1. ~ub:6. () in
  let z = Model.add_var m ~name:"z" ~lb:neg_infinity ~obj:(-1.) () in
  ignore (Model.add_constraint m ~name:"c1" [ (x, 1.); (y, 1.) ] Model.Ge 4.);
  ignore (Model.add_constraint m ~name:"c2" [ (x, 2.); (z, 1.) ] Model.Le 9.);
  ignore (Model.add_constraint m ~name:"c3" [ (y, 1.); (z, -1.) ] Model.Eq 2.);
  m

let parse_ok text =
  match Mps.read text with
  | Ok m -> m
  | Error msg -> Alcotest.fail msg

let test_roundtrip_structure () =
  let m = sample_model () in
  let m' = parse_ok (Mps.write m) in
  Alcotest.(check int) "vars" (Model.num_vars m) (Model.num_vars m');
  Alcotest.(check int) "rows" (Model.num_rows m) (Model.num_rows m');
  for v = 0 to Model.num_vars m - 1 do
    let a = Model.var_of_index m v and b = Model.var_of_index m' v in
    Alcotest.(check string) "name" (Model.var_name m a) (Model.var_name m' b);
    Alcotest.(check bool) "lb" true
      (Model.lower_bound m a = Model.lower_bound m' b);
    Alcotest.(check bool) "ub" true
      (Model.upper_bound m a = Model.upper_bound m' b)
  done

let test_roundtrip_solution () =
  let m = sample_model () in
  let m' = parse_ok (Mps.write m) in
  match (Lp.Simplex.solve m, Lp.Simplex.solve m') with
  | Status.Optimal a, Status.Optimal b ->
      Alcotest.(check (float 1e-6)) "objective preserved" a.Status.objective
        b.Status.objective
  | a, b ->
      Alcotest.failf "outcomes differ: %a vs %a" Status.pp_outcome a
        Status.pp_outcome b

let test_maximize_flip () =
  (* A maximization model writes as negated minimization; solving the
     written file gives the negated optimum at the same point. *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~name:"x" ~obj:3. ~ub:4. () in
  ignore (Model.add_constraint m ~name:"r" [ (x, 1.) ] Model.Le 10.);
  let m' = parse_ok (Mps.write m) in
  match (Lp.Simplex.solve m, Lp.Simplex.solve m') with
  | Status.Optimal a, Status.Optimal b ->
      Alcotest.(check (float 1e-6)) "negated objective" (-.a.Status.objective)
        b.Status.objective;
      Alcotest.(check (float 1e-6)) "same point" a.Status.primal.(0)
        b.Status.primal.(0)
  | _, _ -> Alcotest.fail "expected optimal"

let test_parse_handwritten () =
  let text =
    {|* a comment
NAME tiny
ROWS
 N cost
 L cap
 G demand
COLUMNS
    a cost 1.5 cap 1.0
    a demand 1.0
    b cost 2.0
    b cap 1.0 demand 1.0
RHS
    RHS cap 10.0 demand 3.0
BOUNDS
 UP BND a 8.0
ENDATA
|}
  in
  let m = parse_ok text in
  Alcotest.(check int) "vars" 2 (Model.num_vars m);
  Alcotest.(check int) "rows" 2 (Model.num_rows m);
  match Lp.Simplex.solve m with
  | Status.Optimal s ->
      (* min 1.5a + 2b, a + b >= 3, a + b <= 10, a <= 8: a = 3. *)
      Alcotest.(check (float 1e-6)) "objective" 4.5 s.Status.objective
  | other -> Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

let test_errors () =
  let expect name text =
    match Mps.read text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected error" name
  in
  expect "no objective" "ROWS\n L r\nENDATA\n";
  expect "ranges" "ROWS\n N obj\nRANGES\nENDATA\n";
  expect "duplicate row" "ROWS\n N obj\n L r\n L r\n";
  expect "bad coefficient" "ROWS\n N obj\n L r\nCOLUMNS\n    x r oops\n";
  expect "unknown rhs row" "ROWS\n N obj\nRHS\n    RHS nope 3\n";
  expect "integer bounds" "ROWS\n N obj\nBOUNDS\n BV BND x\n"

let test_fixed_and_free_bounds () =
  let text =
    {|NAME b
ROWS
 N obj
 E r
COLUMNS
    x obj 1.0 r 1.0
    y obj 1.0 r 1.0
RHS
    RHS r 5.0
BOUNDS
 FX BND x 2.0
 FR BND y
ENDATA
|}
  in
  let m = parse_ok text in
  let x = Model.var_of_index m 0 and y = Model.var_of_index m 1 in
  Alcotest.(check (float 0.)) "x fixed lb" 2. (Model.lower_bound m x);
  Alcotest.(check (float 0.)) "x fixed ub" 2. (Model.upper_bound m x);
  Alcotest.(check bool) "y free below" true
    (Model.lower_bound m y = neg_infinity);
  match Lp.Simplex.solve m with
  | Status.Optimal s ->
      Alcotest.(check (float 1e-6)) "y = 3" 3. s.Status.primal.(1)
  | other -> Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

let test_random_roundtrip () =
  let rng = Prelude.Rng.of_int 8080 in
  for trial = 1 to 50 do
    let m = Model.create Model.Minimize in
    let n = 1 + Prelude.Rng.int rng 6 in
    let vars =
      Array.init n (fun i ->
          Model.add_var m
            ~name:(Printf.sprintf "v%d" i)
            ~obj:(Prelude.Rng.float_range rng (-4.) 4.)
            ~lb:(if Prelude.Rng.bool rng then 0. else -2.)
            ~ub:(Prelude.Rng.float_range rng 3. 9.)
            ())
    in
    for r = 0 to Prelude.Rng.int rng 5 do
      let terms =
        Array.to_list vars
        |> List.filter_map (fun v ->
               if Prelude.Rng.bool rng then
                 Some (v, Prelude.Rng.float_range rng (-3.) 3.)
               else None)
      in
      if terms <> [] then
        ignore
          (Model.add_constraint m
             ~name:(Printf.sprintf "r%d" r)
             terms
             (match Prelude.Rng.int rng 3 with
              | 0 -> Model.Le
              | 1 -> Model.Ge
              | _ -> Model.Eq)
             (Prelude.Rng.float_range rng (-5.) 5.))
    done;
    let m' = parse_ok (Mps.write m) in
    match (Lp.Simplex.solve m, Lp.Simplex.solve m') with
    | Status.Optimal a, Status.Optimal b ->
        if abs_float (a.Status.objective -. b.Status.objective) > 1e-6 then
          Alcotest.failf "trial %d: %.9g vs %.9g" trial a.Status.objective
            b.Status.objective
    | Status.Infeasible, Status.Infeasible -> ()
    | Status.Unbounded, Status.Unbounded -> ()
    | a, b ->
        Alcotest.failf "trial %d: %a vs %a" trial Status.pp_outcome a
          Status.pp_outcome b
  done

let suite =
  [ Alcotest.test_case "roundtrip structure" `Quick test_roundtrip_structure;
    Alcotest.test_case "roundtrip solution" `Quick test_roundtrip_solution;
    Alcotest.test_case "maximize flip" `Quick test_maximize_flip;
    Alcotest.test_case "parse handwritten" `Quick test_parse_handwritten;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "fixed and free bounds" `Quick test_fixed_and_free_bounds;
    Alcotest.test_case "random roundtrip x50" `Quick test_random_roundtrip ]
