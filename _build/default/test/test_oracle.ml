(* Cross-validation of the revised simplex against the independent dense
   tableau implementation, on both hand-written and random programs. *)

module Model = Lp.Model
module Status = Lp.Status

let both_solve m = (Lp.Simplex.solve m, Lp.Dense_simplex.solve m)

let check_agree name m =
  match both_solve m with
  | Status.Optimal a, Status.Optimal b ->
      Alcotest.(check (float 1e-5)) (name ^ ": objectives agree")
        a.Status.objective b.Status.objective;
      Alcotest.(check (float 1e-5)) (name ^ ": revised primal feasible") 0.
        (Model.constraint_violation m a.Status.primal);
      Alcotest.(check (float 1e-5)) (name ^ ": oracle primal feasible") 0.
        (Model.constraint_violation m b.Status.primal)
  | Status.Infeasible, Status.Infeasible -> ()
  | Status.Unbounded, Status.Unbounded -> ()
  | a, b ->
      Alcotest.failf "%s: outcomes disagree (revised %a, oracle %a)" name
        Status.pp_outcome a Status.pp_outcome b

let test_oracle_textbook () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3. () in
  let y = Model.add_var m ~obj:5. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (y, 2.) ] Model.Le 12.);
  ignore (Model.add_constraint m [ (x, 3.); (y, 2.) ] Model.Le 18.);
  (match Lp.Dense_simplex.solve m with
   | Status.Optimal s ->
       Alcotest.(check (float 1e-6)) "oracle objective" 36. s.Status.objective
   | other -> Alcotest.failf "oracle failed: %a" Status.pp_outcome other);
  check_agree "textbook" m

let test_oracle_bounds () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:(-2.) ~ub:3. ~obj:1. () in
  let y = Model.add_var m ~lb:neg_infinity ~ub:4. ~obj:(-1.) () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 0.);
  check_agree "bounds" m

let test_oracle_infeasible () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~ub:1. ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 2.);
  check_agree "infeasible" m

(* Random LP generator: moderate sizes, mixed senses, mixed bound types. *)
let random_model rng =
  let n = 1 + Prelude.Rng.int rng 6 in
  let rows = 1 + Prelude.Rng.int rng 6 in
  let m = Model.create
      (if Prelude.Rng.bool rng then Model.Minimize else Model.Maximize)
  in
  let vars =
    Array.init n (fun _ ->
        let obj = Prelude.Rng.float_range rng (-5.) 5. in
        match Prelude.Rng.int rng 4 with
        | 0 -> Model.add_var m ~obj ()
        | 1 -> Model.add_var m ~obj ~ub:(Prelude.Rng.float_range rng 0.5 10.) ()
        | 2 ->
            Model.add_var m ~obj ~lb:(Prelude.Rng.float_range rng (-5.) 0.)
              ~ub:(Prelude.Rng.float_range rng 0.5 10.) ()
        | _ ->
            (* Free variables make unboundedness common; keep them bounded
               often enough to exercise optimal paths too. *)
            Model.add_var m ~obj ~lb:neg_infinity ())
  in
  for _ = 1 to rows do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Prelude.Rng.int rng 3 = 0 then None
             else Some (v, Prelude.Rng.float_range rng (-4.) 4.))
    in
    if terms <> [] then begin
      let sense =
        match Prelude.Rng.int rng 3 with
        | 0 -> Model.Le
        | 1 -> Model.Ge
        | _ -> Model.Eq
      in
      ignore
        (Model.add_constraint m terms sense (Prelude.Rng.float_range rng (-8.) 8.))
    end
  done;
  m

let test_random_agreement () =
  let rng = Prelude.Rng.of_int 777 in
  for trial = 1 to 300 do
    let m = random_model rng in
    (match both_solve m with
     | Status.Optimal a, Status.Optimal b ->
         if abs_float (a.Status.objective -. b.Status.objective) > 1e-4 then
           Alcotest.failf "trial %d: objective mismatch %.9g vs %.9g" trial
             a.Status.objective b.Status.objective;
         let viol = Model.constraint_violation m a.Status.primal in
         if viol > 1e-5 then
           Alcotest.failf "trial %d: revised solution infeasible (%g)" trial viol
     | Status.Infeasible, Status.Infeasible -> ()
     | Status.Unbounded, Status.Unbounded -> ()
     | Status.Iteration_limit, _ | _, Status.Iteration_limit ->
         Alcotest.failf "trial %d: iteration limit on a tiny LP" trial
     | a, b ->
         Alcotest.failf "trial %d: outcomes disagree (revised %a, oracle %a)"
           trial Status.pp_outcome a Status.pp_outcome b)
  done

(* Dual feasibility / complementary slackness of the revised simplex,
   checked directly against the model (the oracle does not report duals). *)
let check_kkt m (s : Status.solution) =
  let tol = 1e-5 in
  let minimize = Model.objective_sense m = Model.Minimize in
  let sign v = if minimize then v else -.v in
  (* Reduced costs at bounds. *)
  Array.iteri
    (fun j d ->
      let v = Model.var_of_index m j in
      let x = s.Status.primal.(j) in
      let lb = Model.lower_bound m v and ub = Model.upper_bound m v in
      let d = sign d in
      if x > lb +. 1e-6 && x < ub -. 1e-6 && abs_float d > tol then
        Alcotest.failf "interior variable %d has nonzero reduced cost %g" j d;
      if abs_float (x -. lb) <= 1e-6 && ub > lb +. 1e-6 && d < -.tol then
        Alcotest.failf "variable %d at lower bound has reduced cost %g" j d;
      if abs_float (x -. ub) <= 1e-6 && ub > lb +. 1e-6 && d > tol then
        Alcotest.failf "variable %d at upper bound has reduced cost %g" j d)
    s.Status.reduced_costs;
  (* Row dual signs and complementary slackness. *)
  Model.iter_rows m (fun r terms sense rhs ->
      let y = sign s.Status.dual.((r :> int)) in
      let lhs =
        List.fold_left
          (fun acc ((v : Model.var), c) -> acc +. (c *. s.Status.primal.((v :> int))))
          0. terms
      in
      match sense with
      | Model.Le ->
          if y > tol then Alcotest.failf "Le row %d has positive dual %g" (r :> int) y;
          if abs_float y > tol && rhs -. lhs > 1e-5 then
            Alcotest.failf "slack Le row %d has nonzero dual" (r :> int)
      | Model.Ge ->
          if y < -.tol then Alcotest.failf "Ge row %d has negative dual %g" (r :> int) y;
          if abs_float y > tol && lhs -. rhs > 1e-5 then
            Alcotest.failf "slack Ge row %d has nonzero dual" (r :> int)
      | Model.Eq -> ())

let test_random_kkt () =
  let rng = Prelude.Rng.of_int 31337 in
  let checked = ref 0 in
  for _ = 1 to 200 do
    let m = random_model rng in
    match Lp.Simplex.solve m with
    | Status.Optimal s ->
        incr checked;
        check_kkt m s
    | Status.Infeasible | Status.Unbounded | Status.Iteration_limit -> ()
  done;
  Alcotest.(check bool) "exercised enough optimal instances" true (!checked > 30)

let suite =
  [ Alcotest.test_case "oracle textbook" `Quick test_oracle_textbook;
    Alcotest.test_case "oracle bounds" `Quick test_oracle_bounds;
    Alcotest.test_case "oracle infeasible" `Quick test_oracle_infeasible;
    Alcotest.test_case "random agreement x300" `Quick test_random_agreement;
    Alcotest.test_case "random KKT x200" `Quick test_random_kkt ]
