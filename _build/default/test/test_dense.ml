module Dense = Sparselin.Dense

let farr = Alcotest.(array (float 1e-9))

let test_matmul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Dense.matmul a b in
  Alcotest.check farr "row 0" [| 19.; 22. |] c.(0);
  Alcotest.check farr "row 1" [| 43.; 50. |] c.(1)

let test_transpose () =
  let a = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Dense.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Dense.dims t);
  Alcotest.check farr "col" [| 2.; 5. |] t.(1)

let test_lu_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  match Dense.lu_solve a [| 5.; 10. |] with
  | None -> Alcotest.fail "unexpected singular"
  | Some x -> Alcotest.check farr "solution" [| 1.; 3. |] x

let test_lu_singular () =
  let a = [| [| 1.; 1. |]; [| 2.; 2. |] |] in
  Alcotest.(check bool) "singular" true (Dense.lu_solve a [| 1.; 2. |] = None)

let test_lu_solve_many () =
  let a = [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  let rhs = [| [| 2.; 4. |]; [| 8.; 12. |] |] in
  match Dense.lu_solve_many a rhs with
  | None -> Alcotest.fail "unexpected singular"
  | Some sol ->
      Alcotest.check farr "col solutions row 0" [| 1.; 2. |] sol.(0);
      Alcotest.check farr "col solutions row 1" [| 2.; 3. |] sol.(1)

let test_cholesky () =
  let a = [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  match Dense.cholesky a with
  | None -> Alcotest.fail "expected SPD"
  | Some l ->
      let llt = Dense.matmul l (Dense.transpose l) in
      Alcotest.(check (float 1e-9)) "reconstruction" 0. (Dense.max_abs_diff a llt)

let test_cholesky_not_spd () =
  let a = [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.(check bool) "not SPD" true (Dense.cholesky a = None)

let test_cholesky_solve () =
  let a = [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  match Dense.cholesky_solve a [| 10.; 8. |] with
  | None -> Alcotest.fail "expected SPD"
  | Some x ->
      let ax = Dense.matvec a x in
      Alcotest.check farr "A x = b" [| 10.; 8. |] ax

let test_solve_random () =
  let rng = Prelude.Rng.of_int 99 in
  for _ = 1 to 20 do
    let n = 1 + Prelude.Rng.int rng 10 in
    let a =
      Array.init n (fun i ->
          Array.init n (fun j ->
              (if i = j then 5. else 0.) +. Prelude.Rng.float_range rng (-1.) 1.))
    in
    let b = Array.init n (fun _ -> Prelude.Rng.float_range rng (-5.) 5.) in
    match Dense.lu_solve a b with
    | None -> Alcotest.fail "diagonally dominant must be nonsingular"
    | Some x ->
        let ax = Dense.matvec a x in
        Array.iteri
          (fun i v -> Alcotest.(check (float 1e-8)) "residual" b.(i) v)
          ax
  done

let suite =
  [ Alcotest.test_case "matmul" `Quick test_matmul;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "lu solve" `Quick test_lu_solve;
    Alcotest.test_case "lu singular" `Quick test_lu_singular;
    Alcotest.test_case "lu solve many" `Quick test_lu_solve_many;
    Alcotest.test_case "cholesky" `Quick test_cholesky;
    Alcotest.test_case "cholesky not spd" `Quick test_cholesky_not_spd;
    Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
    Alcotest.test_case "random solves" `Quick test_solve_random ]
