module Graph = Netgraph.Graph
module Texp = Timexp.Time_expanded

let base_triangle () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:5. ~cost:1. ());
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:5. ~cost:2. ());
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~capacity:5. ~cost:4. ());
  g

let constant_capacity c ~link:_ ~layer:_ = c

let test_counts () =
  let base = base_triangle () in
  let t = Texp.build ~base ~horizon:4 ~capacity:(constant_capacity 5.) in
  let g = Texp.graph t in
  (* 5 layers of 3 nodes; per layer: 3 transmission + 3 storage arcs. *)
  Alcotest.(check int) "nodes" 15 (Graph.num_nodes g);
  Alcotest.(check int) "arcs" 24 (Graph.num_arcs g);
  Alcotest.(check int) "layers" 5 (Texp.num_layers t);
  Alcotest.(check int) "horizon" 4 (Texp.horizon t)

let test_structure () =
  let base = base_triangle () in
  let t = Texp.build ~base ~horizon:3 ~capacity:(constant_capacity 7.) in
  (* Every transmission arc connects consecutive layers with the base
     endpoints and carries the base cost and the layer capacity. *)
  Texp.iter_arcs t (fun a kind ->
      let src_node, src_layer = Texp.node_of t a.Graph.src in
      let dst_node, dst_layer = Texp.node_of t a.Graph.dst in
      Alcotest.(check int) "consecutive layers" (src_layer + 1) dst_layer;
      match kind with
      | Texp.Transmission { link; layer } ->
          let b = Graph.arc base link in
          Alcotest.(check int) "src" b.Graph.src src_node;
          Alcotest.(check int) "dst" b.Graph.dst dst_node;
          Alcotest.(check int) "layer" src_layer layer;
          Alcotest.(check (float 0.)) "cost copied" b.Graph.cost a.Graph.cost;
          Alcotest.(check (float 0.)) "capacity from callback" 7. a.Graph.capacity
      | Texp.Storage { node; layer } ->
          Alcotest.(check int) "same node" node src_node;
          Alcotest.(check int) "same node dst" node dst_node;
          Alcotest.(check int) "layer" src_layer layer;
          Alcotest.(check (float 0.)) "zero cost" 0. a.Graph.cost;
          Alcotest.(check bool) "infinite capacity" true
            (a.Graph.capacity = infinity))

let test_layer_capacities () =
  let base = base_triangle () in
  let capacity ~link ~layer = float_of_int ((10 * layer) + link) in
  let t = Texp.build ~base ~horizon:3 ~capacity in
  for layer = 0 to 2 do
    for link = 0 to 2 do
      let id = Texp.transmission_arc t ~link ~layer in
      let a = Graph.arc (Texp.graph t) id in
      Alcotest.(check (float 0.)) "per-layer capacity"
        (float_of_int ((10 * layer) + link))
        a.Graph.capacity
    done
  done

let test_node_roundtrip () =
  let base = base_triangle () in
  let t = Texp.build ~base ~horizon:2 ~capacity:(constant_capacity 1.) in
  for node = 0 to 2 do
    for layer = 0 to 2 do
      let id = Texp.node_at t ~node ~layer in
      Alcotest.(check (pair int int)) "roundtrip" (node, layer) (Texp.node_of t id)
    done
  done

let test_storage_lookup () =
  let base = base_triangle () in
  let t = Texp.build ~base ~horizon:2 ~capacity:(constant_capacity 1.) in
  let id = Texp.storage_arc t ~node:1 ~layer:0 in
  match Texp.kind t id with
  | Texp.Storage { node; layer } ->
      Alcotest.(check int) "node" 1 node;
      Alcotest.(check int) "layer" 0 layer
  | Texp.Transmission _ -> Alcotest.fail "expected storage arc"

let test_bad_inputs () =
  let base = base_triangle () in
  Alcotest.check_raises "horizon" (Invalid_argument "Time_expanded.build: horizon < 1")
    (fun () -> ignore (Texp.build ~base ~horizon:0 ~capacity:(constant_capacity 1.)));
  let t = Texp.build ~base ~horizon:2 ~capacity:(constant_capacity 1.) in
  Alcotest.check_raises "bad layer"
    (Invalid_argument "Time_expanded.node_at: bad layer") (fun () ->
      ignore (Texp.node_at t ~node:0 ~layer:3))

let suite =
  [ Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "layer capacities" `Quick test_layer_capacities;
    Alcotest.test_case "node roundtrip" `Quick test_node_roundtrip;
    Alcotest.test_case "storage lookup" `Quick test_storage_lookup;
    Alcotest.test_case "bad inputs" `Quick test_bad_inputs ]
