(* The interior-point solver must agree with the simplex on feasible,
   bounded programs — the same cross-check role fmincon played for the
   paper's authors. *)

module Model = Lp.Model
module Status = Lp.Status

let get_opt name = function
  | Status.Optimal s -> s
  | other -> Alcotest.failf "%s: expected optimal, got %a" name Status.pp_outcome other

let test_textbook () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3. () in
  let y = Model.add_var m ~obj:5. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (y, 2.) ] Model.Le 12.);
  ignore (Model.add_constraint m [ (x, 3.); (y, 2.) ] Model.Le 18.);
  let s = get_opt "ipm" (Lp.Interior_point.solve m) in
  Alcotest.(check (float 1e-5)) "objective" 36. s.Status.objective;
  Alcotest.(check (float 1e-4)) "x" 2. s.Status.primal.(0);
  Alcotest.(check (float 1e-4)) "y" 6. s.Status.primal.(1)

let test_equality_and_bounds () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:(-1.) ~ub:4. ~obj:2. () in
  let y = Model.add_var m ~obj:3. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 3.);
  let simplex = get_opt "simplex" (Lp.Simplex.solve m) in
  let ipm = get_opt "ipm" (Lp.Interior_point.solve m) in
  Alcotest.(check (float 1e-5)) "objectives agree" simplex.Status.objective
    ipm.Status.objective

let test_degenerate () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (y, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 2.);
  let s = get_opt "ipm" (Lp.Interior_point.solve m) in
  Alcotest.(check (float 1e-5)) "objective" 2. s.Status.objective

let test_duals_match () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3. () in
  let y = Model.add_var m ~obj:5. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (y, 2.) ] Model.Le 12.);
  ignore (Model.add_constraint m [ (x, 3.); (y, 2.) ] Model.Le 18.);
  let s = get_opt "ipm" (Lp.Interior_point.solve m) in
  Alcotest.(check (float 1e-4)) "dual 2" 1.5 s.Status.dual.(1);
  Alcotest.(check (float 1e-4)) "dual 3" 1. s.Status.dual.(2)

let feasible_random rng =
  (* Feasible and bounded by construction: box variables, rows stated
     around a known interior point. *)
  let n = 1 + Prelude.Rng.int rng 5 in
  let m = Model.create
      (if Prelude.Rng.bool rng then Model.Minimize else Model.Maximize)
  in
  let point = Array.init n (fun _ -> Prelude.Rng.float_range rng 0.5 3.) in
  let vars =
    Array.init n (fun _ ->
        Model.add_var m
          ~obj:(Prelude.Rng.float_range rng (-4.) 4.)
          ~lb:0. ~ub:5. ())
  in
  for _ = 1 to 1 + Prelude.Rng.int rng 4 do
    let terms = ref [] and lhs = ref 0. in
    Array.iteri
      (fun i v ->
        if Prelude.Rng.int rng 2 = 0 then begin
          let coeff = Prelude.Rng.float_range rng (-3.) 3. in
          terms := (v, coeff) :: !terms;
          lhs := !lhs +. (coeff *. point.(i))
        end)
      vars;
    if !terms <> [] then begin
      (* Slack keeps the interior point strictly feasible. *)
      let slack = Prelude.Rng.float_range rng 0.5 2. in
      if Prelude.Rng.bool rng then
        ignore (Model.add_constraint m !terms Model.Le (!lhs +. slack))
      else ignore (Model.add_constraint m !terms Model.Ge (!lhs -. slack))
    end
  done;
  m

let test_random_agreement () =
  let rng = Prelude.Rng.of_int 90210 in
  let compared = ref 0 in
  for trial = 1 to 100 do
    let m = feasible_random rng in
    match (Lp.Simplex.solve m, Lp.Interior_point.solve m) with
    | Status.Optimal a, Status.Optimal b ->
        incr compared;
        if
          abs_float (a.Status.objective -. b.Status.objective)
          > 1e-4 *. (1. +. abs_float a.Status.objective)
        then
          Alcotest.failf "trial %d: simplex %.9g vs ipm %.9g" trial
            a.Status.objective b.Status.objective
    | Status.Optimal _, other ->
        Alcotest.failf "trial %d: ipm failed on a feasible bounded LP (%a)"
          trial Status.pp_outcome other
    | _, _ -> () (* simplex says infeasible/unbounded: not IPM's scope *)
  done;
  Alcotest.(check bool) "compared enough" true (!compared > 80)

let suite =
  [ Alcotest.test_case "textbook" `Quick test_textbook;
    Alcotest.test_case "equality and bounds" `Quick test_equality_and_bounds;
    Alcotest.test_case "degenerate" `Quick test_degenerate;
    Alcotest.test_case "duals match" `Quick test_duals_match;
    Alcotest.test_case "random agreement x100" `Quick test_random_agreement ]
