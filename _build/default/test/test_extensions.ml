(* Sec. VI extensions: bulk background-transfer maximization (problem 11)
   and budget-constrained admission. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Bulk = Postcard.Bulk
module Budget = Postcard.Budget

let line_graph ?(capacity = 10.) ?(cost = 2.) () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity ~cost ());
  g

let cap c ~link:_ ~layer:_ = c
let occ c ~link:_ ~layer:_ = c

let file ?(id = 0) ?(size = 10.) ?(deadline = 2) () =
  File.make ~id ~src:0 ~dst:1 ~size ~deadline ~release:0

let get = function
  | Ok r -> r
  | Error msg -> Alcotest.fail msg

let test_bulk_paid_only_uses_headroom () =
  (* Charged 6, nothing committed: 2 slots x 6 of free capacity carry at
     most 12 of the 20-unit backlog. *)
  let base = line_graph () in
  let r =
    get
      (Bulk.solve ~base ~charged:[| 6. |] ~capacity:(cap 10.) ~occupied:(occ 0.)
         ~files:[ file ~size:20. ~deadline:2 () ]
         ~epoch:0 ~paid_only:true ())
  in
  Alcotest.(check (float 1e-4)) "delivered" 12. r.Bulk.total_delivered

let test_bulk_paid_only_zero_headroom () =
  let base = line_graph () in
  let r =
    get
      (Bulk.solve ~base ~charged:[| 0. |] ~capacity:(cap 10.) ~occupied:(occ 0.)
         ~files:[ file () ]
         ~epoch:0 ~paid_only:true ())
  in
  Alcotest.(check (float 1e-4)) "nothing moves for free" 0. r.Bulk.total_delivered

let test_bulk_full_capacity () =
  let base = line_graph () in
  let r =
    get
      (Bulk.solve ~base ~charged:[| 0. |] ~capacity:(cap 10.) ~occupied:(occ 0.)
         ~files:[ file ~size:30. ~deadline:2 () ]
         ~epoch:0 ~paid_only:false ())
  in
  Alcotest.(check (float 1e-4)) "capacity-bound" 20. r.Bulk.total_delivered

let test_bulk_occupancy_shrinks_headroom () =
  (* Charged 6 but 4 already committed per slot: only 2 free per slot. *)
  let base = line_graph () in
  let r =
    get
      (Bulk.solve ~base ~charged:[| 6. |] ~capacity:(cap 6.) ~occupied:(occ 4.)
         ~files:[ file ~size:20. ~deadline:2 () ]
         ~epoch:0 ~paid_only:true ())
  in
  Alcotest.(check (float 1e-4)) "headroom only" 4. r.Bulk.total_delivered

let test_bulk_multiple_files_share () =
  let base = line_graph () in
  let files = [ file ~id:0 ~size:8. (); file ~id:1 ~size:8. () ] in
  let r =
    get
      (Bulk.solve ~base ~charged:[| 5. |] ~capacity:(cap 10.) ~occupied:(occ 0.)
         ~files ~epoch:0 ~paid_only:true ())
  in
  (* 2 slots x 5 headroom = 10 total across both files. *)
  Alcotest.(check (float 1e-4)) "total" 10. r.Bulk.total_delivered;
  Alcotest.(check int) "per-file breakdown" 2 (Array.length r.Bulk.delivered);
  Alcotest.(check (float 1e-4)) "sums match" r.Bulk.total_delivered
    (r.Bulk.delivered.(0) +. r.Bulk.delivered.(1))

let test_bulk_storage_multihop () =
  (* Free headroom exists only on a relayed path with disjoint windows:
     storage at the relay is required to use it. *)
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. ());
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:10. ~cost:1. ());
  let charged = [| 5.; 5. |] in
  (* Hop 0 -> 1 free at layers 0..1; hop 1 -> 2 free only at layer 2. *)
  let occupied ~link ~layer =
    if link = 1 && layer < 2 then 5. else 0.
  in
  let files = [ File.make ~id:0 ~src:0 ~dst:2 ~size:9. ~deadline:3 ~release:0 ] in
  let r =
    get
      (Bulk.solve ~base:g ~charged ~capacity:(cap 10.) ~occupied ~files
         ~epoch:0 ~paid_only:true ())
  in
  (* Hop 1->2 has a single free slot of 5: that caps delivery. *)
  Alcotest.(check (float 1e-4)) "bottleneck respected" 5. r.Bulk.total_delivered;
  Alcotest.(check bool) "storage used" true (r.Bulk.plan.Plan.holdovers <> [])

let test_budget_unlimited () =
  let base = line_graph ~cost:2. () in
  let r =
    get
      (Budget.solve ~base ~charged:[| 0. |] ~capacity:(cap 10.)
         ~files:[ file ~size:10. ~deadline:2 () ]
         ~epoch:0 ~budget:1000. ())
  in
  Alcotest.(check (float 1e-4)) "all delivered" 10. r.Budget.total_delivered;
  (* Even spread: X = 5, cost 10. *)
  Alcotest.(check (float 1e-4)) "cost" 10. r.Budget.cost

let test_budget_binding () =
  (* Budget 6 with price 2 allows X <= 3: over 2 slots at most 6 deliverable. *)
  let base = line_graph ~cost:2. () in
  let r =
    get
      (Budget.solve ~base ~charged:[| 0. |] ~capacity:(cap 10.)
         ~files:[ file ~size:10. ~deadline:2 () ]
         ~epoch:0 ~budget:6. ())
  in
  Alcotest.(check (float 1e-4)) "volume capped by budget" 6.
    r.Budget.total_delivered;
  Alcotest.(check bool) "budget respected" true (r.Budget.cost <= 6. +. 1e-6)

let test_budget_zero () =
  let base = line_graph ~cost:2. () in
  let r =
    get
      (Budget.solve ~base ~charged:[| 0. |] ~capacity:(cap 10.)
         ~files:[ file () ]
         ~epoch:0 ~budget:0. ())
  in
  Alcotest.(check (float 1e-4)) "nothing moves" 0. r.Budget.total_delivered

let test_budget_below_committed () =
  (* Already charged 4 at price 2 = cost 8 > budget 5: infeasible. *)
  let base = line_graph ~cost:2. () in
  match
    Budget.solve ~base ~charged:[| 4. |] ~capacity:(cap 10.)
      ~files:[ file () ]
      ~epoch:0 ~budget:5. ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "budget below committed cost must fail"

let test_budget_free_riding_first () =
  (* Charged 5 (cost 10): with budget exactly 10, only free capacity can
     be used; 2 slots x 5 headroom still moves the whole 10-unit file. *)
  let base = line_graph ~cost:2. () in
  let r =
    get
      (Budget.solve ~base ~charged:[| 5. |] ~capacity:(cap 10.)
         ~files:[ file ~size:10. ~deadline:2 () ]
         ~epoch:0 ~budget:10. ())
  in
  Alcotest.(check (float 1e-4)) "full delivery for free" 10.
    r.Budget.total_delivered;
  Alcotest.(check (float 1e-4)) "cost pinned at floor" 10. r.Budget.cost

let test_budget_plan_validates () =
  let base = line_graph ~cost:2. () in
  let files = [ file ~size:10. ~deadline:2 () ] in
  let r =
    get
      (Budget.solve ~base ~charged:[| 0. |] ~capacity:(cap 10.) ~files ~epoch:0
         ~budget:6. ())
  in
  (* Budget plans deliver partial volumes, so only capacity validation
     applies. *)
  match
    Plan.validate_capacity ~base
      ~capacity:(fun ~link:_ ~slot:_ -> 10.)
      r.Budget.plan
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [ Alcotest.test_case "bulk paid-only headroom" `Quick test_bulk_paid_only_uses_headroom;
    Alcotest.test_case "bulk zero headroom" `Quick test_bulk_paid_only_zero_headroom;
    Alcotest.test_case "bulk full capacity" `Quick test_bulk_full_capacity;
    Alcotest.test_case "bulk occupancy shrinks headroom" `Quick test_bulk_occupancy_shrinks_headroom;
    Alcotest.test_case "bulk multiple files" `Quick test_bulk_multiple_files_share;
    Alcotest.test_case "bulk storage multihop" `Quick test_bulk_storage_multihop;
    Alcotest.test_case "budget unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "budget binding" `Quick test_budget_binding;
    Alcotest.test_case "budget zero" `Quick test_budget_zero;
    Alcotest.test_case "budget below committed" `Quick test_budget_below_committed;
    Alcotest.test_case "budget free riding" `Quick test_budget_free_riding_first;
    Alcotest.test_case "budget plan validates" `Quick test_budget_plan_validates ]
