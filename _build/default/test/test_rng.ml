let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Prelude.Rng.of_int 42 and b = Prelude.Rng.of_int 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true
      (Prelude.Rng.next_int64 a = Prelude.Rng.next_int64 b)
  done

let test_different_seeds () =
  let a = Prelude.Rng.of_int 1 and b = Prelude.Rng.of_int 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prelude.Rng.next_int64 a = Prelude.Rng.next_int64 b then incr same
  done;
  check_int "streams differ" 0 !same

let test_int_range () =
  let rng = Prelude.Rng.of_int 7 in
  for _ = 1 to 1000 do
    let v = Prelude.Rng.int rng 10 in
    check_bool "in range" true (v >= 0 && v < 10)
  done

let test_int_incl_covers () =
  let rng = Prelude.Rng.of_int 9 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prelude.Rng.int_incl rng 0 4) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_float_range () =
  let rng = Prelude.Rng.of_int 11 in
  for _ = 1 to 1000 do
    let v = Prelude.Rng.float_range rng 1. 10. in
    check_bool "in [1,10)" true (v >= 1. && v < 10.)
  done

let test_float_mean () =
  let rng = Prelude.Rng.of_int 13 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prelude.Rng.float rng 1.
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_copy_independent () =
  let a = Prelude.Rng.of_int 5 in
  ignore (Prelude.Rng.next_int64 a);
  let b = Prelude.Rng.copy a in
  let va = Prelude.Rng.next_int64 a and vb = Prelude.Rng.next_int64 b in
  check_bool "copy continues identically" true (va = vb)

let test_split_differs () =
  let a = Prelude.Rng.of_int 5 in
  let b = Prelude.Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prelude.Rng.next_int64 a = Prelude.Rng.next_int64 b then incr same
  done;
  check_int "split stream differs" 0 !same

let test_shuffle_permutation () =
  let rng = Prelude.Rng.of_int 3 in
  let a = Array.init 50 (fun i -> i) in
  Prelude.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_bounds_errors () =
  let rng = Prelude.Rng.of_int 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prelude.Rng.int rng 0));
  Alcotest.check_raises "int_incl reversed" (Invalid_argument "Rng.int_incl: hi < lo")
    (fun () -> ignore (Prelude.Rng.int_incl rng 3 2));
  Alcotest.check_raises "choose empty" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Prelude.Rng.choose rng [||]))

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds" `Quick test_different_seeds;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int_incl covers" `Quick test_int_incl_covers;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "split differs" `Quick test_split_differs;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "bounds errors" `Quick test_bounds_errors ]
