module Model = Lp.Model
module Status = Lp.Status

let solve = Lp.Simplex.solve

let get_opt outcome =
  match outcome with
  | Status.Optimal s -> s
  | other ->
      Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

let check_obj name expected outcome =
  let s = get_opt outcome in
  Alcotest.(check (float 1e-6)) name expected s.Status.objective

(* Classic textbook LP: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18. *)
let test_textbook_max () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3. () in
  let y = Model.add_var m ~obj:5. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (y, 2.) ] Model.Le 12.);
  ignore (Model.add_constraint m [ (x, 3.); (y, 2.) ] Model.Le 18.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "objective" 36. s.Status.objective;
  Alcotest.(check (float 1e-6)) "x" 2. s.Status.primal.(0);
  Alcotest.(check (float 1e-6)) "y" 6. s.Status.primal.(1)

let test_min_with_ge () =
  (* min 2x + 3y s.t. x + y >= 4, x + 2y >= 6: optimum at (2, 2) -> 10. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:2. () in
  let y = Model.add_var m ~obj:3. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 4.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 2.) ] Model.Ge 6.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "objective" 10. s.Status.objective;
  Alcotest.(check (float 1e-6)) "x" 2. s.Status.primal.(0);
  Alcotest.(check (float 1e-6)) "y" 2. s.Status.primal.(1)

let test_equality () =
  (* min x + y s.t. x + y = 5, x - y = 1 -> unique point (3, 2). *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 5.);
  ignore (Model.add_constraint m [ (x, 1.); (y, -1.) ] Model.Eq 1.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "x" 3. s.Status.primal.(0);
  Alcotest.(check (float 1e-6)) "y" 2. s.Status.primal.(1)

let test_infeasible () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 5.);
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 3.);
  Alcotest.(check bool) "infeasible" true (solve m = Status.Infeasible)

let test_infeasible_bounds () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:0. ~ub:1. () in
  let y = Model.add_var m ~lb:0. ~ub:1. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 3.);
  Alcotest.(check bool) "infeasible" true (solve m = Status.Infeasible)

let test_unbounded () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:0. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, -1.) ] Model.Le 1.);
  Alcotest.(check bool) "unbounded" true (solve m = Status.Unbounded)

let test_unbounded_free_var () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:neg_infinity ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 10.);
  Alcotest.(check bool) "unbounded below" true (solve m = Status.Unbounded)

let test_free_variable () =
  (* min |shape|: free variable pinned by equalities. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:neg_infinity ~obj:1. () in
  let y = Model.add_var m ~obj:2. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 2.);
  ignore (Model.add_constraint m [ (y, 1.) ] Model.Le 5.);
  (* x = 2 - y; objective x + 2y = 2 + y minimized at y = 0 -> 2. *)
  check_obj "objective" 2. (solve m)

let test_negative_lower_bound () =
  (* min x subject to x >= -3. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:(-3.) ~ub:7. ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 100.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "at lower bound" (-3.) s.Status.primal.(0)

let test_upper_bounds_respected () =
  (* max x + y with x <= 2, y <= 3 as bounds (not rows). *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~ub:2. ~obj:1. () in
  let y = Model.add_var m ~ub:3. ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 100.);
  check_obj "objective" 5. (solve m)

let test_bound_flip_path () =
  (* Optimum requires a nonbasic variable to flip from lower to upper
     bound: max x + y, x + y <= 10, 0 <= x <= 4, 0 <= y <= 4. *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~ub:4. ~obj:1. () in
  let y = Model.add_var m ~ub:4. ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 10.);
  check_obj "objective" 8. (solve m)

let test_fixed_variable () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:2. ~ub:2. ~obj:5. () in
  let y = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 6.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "fixed" 2. s.Status.primal.(0);
  Alcotest.(check (float 1e-6)) "objective" 14. s.Status.objective

let test_degenerate () =
  (* A highly degenerate LP (many constraints active at the optimum). *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (y, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 2.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 2.) ] Model.Le 3.);
  ignore (Model.add_constraint m [ (x, 2.); (y, 1.) ] Model.Le 3.);
  check_obj "objective" 2. (solve m)

let test_no_constraints () =
  let m = Model.create Model.Minimize in
  let _x = Model.add_var m ~lb:1. ~ub:3. ~obj:2. () in
  check_obj "bounds only" 2. (solve m)

let test_zero_objective () =
  (* Any feasible point is optimal; checks phase 1 alone. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m () in
  let y = Model.add_var m () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 4.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "feasible sum" 4.
    (s.Status.primal.(0) +. s.Status.primal.(1));
  Alcotest.(check (float 1e-6)) "objective" 0. s.Status.objective

let test_duals_textbook () =
  (* For max 3x + 5y above, the optimal duals are (0, 3/2, 1). *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3. () in
  let y = Model.add_var m ~obj:5. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (y, 2.) ] Model.Le 12.);
  ignore (Model.add_constraint m [ (x, 3.); (y, 2.) ] Model.Le 18.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "dual 1" 0. s.Status.dual.(0);
  Alcotest.(check (float 1e-6)) "dual 2" 1.5 s.Status.dual.(1);
  Alcotest.(check (float 1e-6)) "dual 3" 1. s.Status.dual.(2);
  (* Strong duality for this all-Le maximization: b'y = objective. *)
  let by = (4. *. 0.) +. (12. *. 1.5) +. (18. *. 1.) in
  Alcotest.(check (float 1e-6)) "strong duality" s.Status.objective by

let test_primal_feasibility_reported () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:2. () in
  let z = Model.add_var m ~obj:(-1.) ~ub:4. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.); (z, 1.) ] Model.Ge 3.);
  ignore (Model.add_constraint m [ (x, 2.); (y, -1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (y, 1.); (z, 2.) ] Model.Eq 6.);
  let s = get_opt (solve m) in
  Alcotest.(check (float 1e-6)) "feasible" 0.
    (Model.constraint_violation m s.Status.primal)

(* Transportation problem with known optimum: 2 supplies, 3 demands. *)
let test_transportation () =
  let supply = [| 20.; 30. |] and demand = [| 10.; 25.; 15. |] in
  let cost = [| [| 2.; 3.; 1. |]; [| 5.; 4.; 8. |] |] in
  let m = Model.create Model.Minimize in
  let x = Array.init 2 (fun i ->
      Array.init 3 (fun j -> Model.add_var m ~obj:cost.(i).(j) ()))
  in
  for i = 0 to 1 do
    ignore
      (Model.add_constraint m
         (List.init 3 (fun j -> (x.(i).(j), 1.)))
         Model.Le supply.(i))
  done;
  for j = 0 to 2 do
    ignore
      (Model.add_constraint m
         (List.init 2 (fun i -> (x.(i).(j), 1.)))
         Model.Eq demand.(j))
  done;
  (* Optimal: ship d3 (15) and part of d1/d2 from s1 (cheap), rest from s2.
     s1: d1=5? Let's verify: s1 capacity 20; costs favour s1 everywhere.
     Send d3=15 (cost 1) and d1=5? d1 from s1 costs 2 vs 5 from s2; d2 from
     s1 costs 3 vs 4. Use s1 for d3 (15) then 5 left: best marginal saving
     is d1 (3/unit) -> d1 = 5 from s1, d1 = 5 from s2, d2 = 25 from s2.
     Cost = 15*1 + 5*2 + 5*5 + 25*4 = 150. *)
  check_obj "objective" 150. (solve m)

let suite =
  [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
    Alcotest.test_case "min with ge" `Quick test_min_with_ge;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "infeasible bounds" `Quick test_infeasible_bounds;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "unbounded free var" `Quick test_unbounded_free_var;
    Alcotest.test_case "free variable" `Quick test_free_variable;
    Alcotest.test_case "negative lower bound" `Quick test_negative_lower_bound;
    Alcotest.test_case "upper bounds respected" `Quick test_upper_bounds_respected;
    Alcotest.test_case "bound flip path" `Quick test_bound_flip_path;
    Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
    Alcotest.test_case "degenerate" `Quick test_degenerate;
    Alcotest.test_case "no constraints" `Quick test_no_constraints;
    Alcotest.test_case "zero objective" `Quick test_zero_objective;
    Alcotest.test_case "duals textbook" `Quick test_duals_textbook;
    Alcotest.test_case "primal feasibility" `Quick test_primal_feasibility_reported;
    Alcotest.test_case "transportation" `Quick test_transportation ]
