module Graph = Netgraph.Graph
module Instance = Postcard.Instance
module File = Postcard.File

let sample = {|
# Fig. 3 style instance
nodes 4
link 0 3 6.0 5.0
link 1 0 1.0 5.0
link 1 2 4.0 5.0
link 2 3 6.0 5.0

file 1 1 3 8.0 4
file 2 0 3 10.0 2
charged 0 3 2.5
|}

let parse_ok text =
  match Instance.parse text with
  | Ok t -> t
  | Error msg -> Alcotest.fail msg

let test_parse_sample () =
  let t = parse_ok sample in
  Alcotest.(check int) "nodes" 4 (Graph.num_nodes t.Instance.base);
  Alcotest.(check int) "links" 4 (Graph.num_arcs t.Instance.base);
  Alcotest.(check int) "files" 2 (List.length t.Instance.files);
  let f1 = List.hd t.Instance.files in
  Alcotest.(check int) "file src" 1 f1.File.src;
  Alcotest.(check (float 0.)) "file size" 8. f1.File.size;
  let link = Option.get (Graph.find_arc t.Instance.base ~src:0 ~dst:3) in
  Alcotest.(check (float 0.)) "charged" 2.5 t.Instance.charged.(link);
  let a = Graph.arc t.Instance.base link in
  Alcotest.(check (float 0.)) "cost" 6. a.Graph.cost;
  Alcotest.(check (float 0.)) "capacity" 5. a.Graph.capacity

let test_roundtrip () =
  let t = parse_ok sample in
  let t' = parse_ok (Instance.to_string t) in
  Alcotest.(check int) "links preserved" (Graph.num_arcs t.Instance.base)
    (Graph.num_arcs t'.Instance.base);
  Alcotest.(check int) "files preserved" (List.length t.Instance.files)
    (List.length t'.Instance.files);
  Alcotest.(check (array (float 1e-12))) "charges preserved"
    t.Instance.charged t'.Instance.charged

let expect_error name text =
  match Instance.parse text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected a parse error" name

let test_errors () =
  expect_error "missing nodes" "link 0 1 1 1\n";
  expect_error "duplicate nodes" "nodes 2\nnodes 3\n";
  expect_error "bad arity" "nodes 2\nlink 0 1 1\n";
  expect_error "self loop" "nodes 2\nlink 0 0 1 1\n";
  expect_error "endpoint range" "nodes 2\nfile 0 0 5 1 1\n";
  expect_error "unknown directive" "nodes 2\nfrobnicate 1\n";
  expect_error "charged missing link" "nodes 2\ncharged 0 1 3\n";
  expect_error "zero size" "nodes 2\nlink 0 1 1 1\nfile 0 0 1 0 1\n"

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_error_line_number () =
  match Instance.parse "nodes 2\nlink 0 1 1 1\nbogus\n" with
  | Error msg ->
      Alcotest.(check bool) "mentions line 3" true
        (contains_substring msg "line 3")
  | Ok _ -> Alcotest.fail "expected error"

let test_comments_and_blanks () =
  let t = parse_ok "\n# hello\nnodes 2\n\nlink 0 1 2.5 10\n# done\n" in
  Alcotest.(check int) "one link" 1 (Graph.num_arcs t.Instance.base)

let test_solvable () =
  (* The parsed Fig. 3 fragment is directly solvable. *)
  let t = parse_ok sample in
  let ctx_capacity ~link ~layer =
    ignore layer;
    (Graph.arc t.Instance.base link).Graph.capacity
  in
  let f =
    Postcard.Formulate.create ~base:t.Instance.base ~charged:t.Instance.charged
      ~capacity:ctx_capacity ~files:t.Instance.files ~epoch:0 ()
  in
  match Postcard.Formulate.solve f with
  | Postcard.Formulate.Scheduled { objective; _ } ->
      Alcotest.(check bool) "positive objective" true (objective > 0.)
  | Postcard.Formulate.Infeasible -> Alcotest.fail "infeasible"
  | Postcard.Formulate.Solver_failure msg -> Alcotest.fail msg

let suite =
  [ Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "error line number" `Quick test_error_line_number;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
    Alcotest.test_case "solvable" `Quick test_solvable ]
