(* Max-flow and min-cost-flow tests, including the LP cross-checks that
   tie the combinatorial algorithms to the simplex solver. *)

module Graph = Netgraph.Graph
module Maxflow = Netgraph.Maxflow
module Mcf = Netgraph.Mincostflow
module Model = Lp.Model

let classic () =
  (* CLRS-style network with max flow 23 from 0 to 5. *)
  let g = Graph.create ~n:6 in
  let add s d c = ignore (Graph.add_arc g ~src:s ~dst:d ~capacity:c ()) in
  add 0 1 16.;
  add 0 2 13.;
  add 1 3 12.;
  add 2 1 4.;
  add 2 4 14.;
  add 3 2 9.;
  add 3 5 20.;
  add 4 3 7.;
  add 4 5 4.;
  g

let test_maxflow_classic () =
  let g = classic () in
  let r = Maxflow.max_flow g ~src:0 ~dst:5 in
  Alcotest.(check (float 1e-9)) "value" 23. r.Maxflow.value

let test_maxflow_disconnected () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:4. ());
  let r = Maxflow.max_flow g ~src:0 ~dst:2 in
  Alcotest.(check (float 0.)) "zero" 0. r.Maxflow.value

let test_maxflow_conservation () =
  let g = classic () in
  let r = Maxflow.max_flow g ~src:0 ~dst:5 in
  (* Per-node conservation of the returned flow. *)
  for v = 1 to 4 do
    let inflow =
      List.fold_left (fun acc id -> acc +. r.Maxflow.flow.(id)) 0. (Graph.in_arcs g v)
    in
    let outflow =
      List.fold_left (fun acc id -> acc +. r.Maxflow.flow.(id)) 0. (Graph.out_arcs g v)
    in
    Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" v) inflow outflow
  done;
  Graph.iter_arcs g (fun a ->
      Alcotest.(check bool) "within capacity" true
        (r.Maxflow.flow.(a.Graph.id) <= a.Graph.capacity +. 1e-9))

let test_min_cut_matches () =
  let g = classic () in
  let r, side = Maxflow.min_cut g ~src:0 ~dst:5 in
  Alcotest.(check bool) "src in cut" true side.(0);
  Alcotest.(check bool) "dst not in cut" false side.(5);
  (* Cut capacity equals the flow value. *)
  let cut =
    Graph.fold_arcs g ~init:0. ~f:(fun acc a ->
        if side.(a.Graph.src) && not side.(a.Graph.dst) then
          acc +. a.Graph.capacity
        else acc)
  in
  Alcotest.(check (float 1e-9)) "max-flow = min-cut" r.Maxflow.value cut

let test_mcf_simple () =
  (* Two paths: cheap with capacity 2, expensive with capacity 10. *)
  let g = Graph.create ~n:4 in
  let _cheap1 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:2. ~cost:1. () in
  let _cheap2 = Graph.add_arc g ~src:1 ~dst:3 ~capacity:2. ~cost:1. () in
  let _exp1 = Graph.add_arc g ~src:0 ~dst:2 ~capacity:10. ~cost:5. () in
  let _exp2 = Graph.add_arc g ~src:2 ~dst:3 ~capacity:10. ~cost:5. () in
  match Mcf.min_cost_flow g ~src:0 ~dst:3 ~amount:5. with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      (* 2 units at cost 2 each, 3 units at cost 10 each. *)
      Alcotest.(check (float 1e-9)) "cost" 34. r.Mcf.cost

let test_mcf_infeasible () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1. ~cost:1. ());
  Alcotest.(check bool) "too much" true
    (Mcf.min_cost_flow g ~src:0 ~dst:1 ~amount:2. = None)

let test_mcf_zero_amount () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1. ~cost:1. ());
  match Mcf.min_cost_flow g ~src:0 ~dst:1 ~amount:0. with
  | None -> Alcotest.fail "zero is feasible"
  | Some r -> Alcotest.(check (float 0.)) "no cost" 0. r.Mcf.cost

(* LP formulation of the same min-cost flow problem. *)
let mcf_by_lp g ~src ~dst ~amount =
  let model = Model.create Model.Minimize in
  let vars =
    Array.init (Graph.num_arcs g) (fun id ->
        let a = Graph.arc g id in
        Model.add_var model ~ub:a.Graph.capacity ~obj:a.Graph.cost ())
  in
  for v = 0 to Graph.num_nodes g - 1 do
    let terms =
      List.map (fun id -> (vars.(id), 1.)) (Graph.out_arcs g v)
      @ List.map (fun id -> (vars.(id), -1.)) (Graph.in_arcs g v)
    in
    let rhs = if v = src then amount else if v = dst then -.amount else 0. in
    if terms <> [] || rhs <> 0. then
      ignore (Model.add_constraint model terms Model.Eq rhs)
  done;
  match Lp.Simplex.solve model with
  | Lp.Status.Optimal s -> Some s.Lp.Status.objective
  | Lp.Status.Infeasible -> None
  | Lp.Status.Unbounded | Lp.Status.Iteration_limit ->
      Alcotest.fail "unexpected LP outcome"

let test_mcf_matches_lp_random () =
  let rng = Prelude.Rng.of_int 4242 in
  for trial = 1 to 40 do
    let n = 4 + Prelude.Rng.int rng 6 in
    let g = Graph.create ~n in
    for _ = 1 to n * 3 do
      let s = Prelude.Rng.int rng n and d = Prelude.Rng.int rng n in
      if s <> d then
        ignore
          (Graph.add_arc g ~src:s ~dst:d
             ~capacity:(1. +. Prelude.Rng.float rng 9.)
             ~cost:(Prelude.Rng.float rng 10.)
             ())
    done;
    let amount = Prelude.Rng.float rng 8. in
    let combinatorial = Mcf.min_cost_flow g ~src:0 ~dst:(n - 1) ~amount in
    let lp = mcf_by_lp g ~src:0 ~dst:(n - 1) ~amount in
    match (combinatorial, lp) with
    | None, None -> ()
    | Some r, Some obj ->
        if abs_float (r.Mcf.cost -. obj) > 1e-5 *. (1. +. abs_float obj) then
          Alcotest.failf "trial %d: SSP %.9g vs LP %.9g" trial r.Mcf.cost obj
    | Some _, None -> Alcotest.failf "trial %d: SSP feasible but LP not" trial
    | None, Some _ -> Alcotest.failf "trial %d: LP feasible but SSP not" trial
  done

let test_min_cost_max_flow () =
  let g = classic () in
  let r = Mcf.min_cost_max_flow g ~src:0 ~dst:5 in
  Alcotest.(check (float 1e-9)) "ships max flow" 23. r.Mcf.value

let suite =
  [ Alcotest.test_case "maxflow classic" `Quick test_maxflow_classic;
    Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
    Alcotest.test_case "maxflow conservation" `Quick test_maxflow_conservation;
    Alcotest.test_case "min cut matches" `Quick test_min_cut_matches;
    Alcotest.test_case "mcf simple" `Quick test_mcf_simple;
    Alcotest.test_case "mcf infeasible" `Quick test_mcf_infeasible;
    Alcotest.test_case "mcf zero amount" `Quick test_mcf_zero_amount;
    Alcotest.test_case "mcf matches LP x40" `Quick test_mcf_matches_lp_random;
    Alcotest.test_case "min cost max flow" `Quick test_min_cost_max_flow ]
