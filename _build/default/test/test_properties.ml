(* Cross-cutting property tests (qcheck, registered through
   QCheck_alcotest): invariants that should hold for *every* input, not
   just hand-picked cases. *)

module Gen = QCheck2.Gen

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Heap: pop order is sorted. --- *)
let prop_heap_sorted =
  QCheck2.Test.make ~name:"heap pops keys in ascending order" ~count:200
    Gen.(list_size (int_range 0 60) (float_range (-100.) 100.))
    (fun keys ->
      let h = Prelude.Heap.create () in
      List.iteri (fun i k -> Prelude.Heap.push h k i) keys;
      let rec drain last =
        match Prelude.Heap.pop_min h with
        | None -> true
        | Some (k, _) -> k >= last && drain k
      in
      drain neg_infinity)

(* --- Charging: the charged volume is monotone in the percentile. --- *)
let prop_charge_monotone_in_percentile =
  QCheck2.Test.make ~name:"charged volume monotone in percentile" ~count:200
    Gen.(
      let* volumes = array_size (int_range 1 50) (float_range 0. 100.) in
      let* q1 = float_range 1. 100. in
      let* q2 = float_range 1. 100. in
      return (volumes, min q1 q2, max q1 q2))
    (fun (volumes, q_lo, q_hi) ->
      Postcard.Charging.charged_volume (Postcard.Charging.scheme q_lo) volumes
      <= Postcard.Charging.charged_volume (Postcard.Charging.scheme q_hi)
           volumes
         +. 1e-12)

(* --- Charging: piecewise cost functions are non-decreasing. --- *)
let prop_piecewise_monotone =
  QCheck2.Test.make ~name:"piecewise cost non-decreasing" ~count:200
    Gen.(
      let* segments =
        list_size (int_range 1 5)
          (pair (float_range 0.1 10.) (float_range 0. 5.))
      in
      let* x1 = float_range 0. 50. in
      let* x2 = float_range 0. 50. in
      return (segments, min x1 x2, max x1 x2))
    (fun (segments, x_lo, x_hi) ->
      let f = Postcard.Charging.Piecewise segments in
      Postcard.Charging.cost f x_lo <= Postcard.Charging.cost f x_hi +. 1e-9)

(* --- Stats: the 100th percentile is the maximum; mean within range. --- *)
let prop_percentile_100_is_max =
  QCheck2.Test.make ~name:"100th percentile = max" ~count:200
    Gen.(array_size (int_range 1 60) (float_range (-50.) 50.))
    (fun a ->
      let maximum = Array.fold_left max neg_infinity a in
      Prelude.Stats.percentile a 100. = maximum)

let prop_mean_within_bounds =
  QCheck2.Test.make ~name:"mean within [min, max]" ~count:200
    Gen.(array_size (int_range 1 60) (float_range (-50.) 50.))
    (fun a ->
      let lo = Array.fold_left min infinity a in
      let hi = Array.fold_left max neg_infinity a in
      let m = Prelude.Stats.mean a in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* --- Simplex: the reported optimum beats any feasible point we can
   construct. LPs are built *around* a known feasible point, so feasibility
   is guaranteed. --- *)
let lp_around_point =
  Gen.(
    let* n = int_range 1 5 in
    let* point = array_size (return n) (float_range 0. 4.) in
    let* objs = array_size (return n) (float_range (-5.) 5.) in
    let* rows =
      list_size (int_range 1 5)
        (pair
           (array_size (return n) (float_range (-3.) 3.))
           (float_range 0.1 2.))
    in
    return (point, objs, rows))

let prop_simplex_beats_feasible_point =
  QCheck2.Test.make ~name:"simplex optimum <= known feasible point" ~count:150
    lp_around_point
    (fun (point, objs, rows) ->
      let n = Array.length point in
      let m = Lp.Model.create Lp.Model.Minimize in
      let vars =
        Array.init n (fun i -> Lp.Model.add_var m ~obj:objs.(i) ~ub:10. ())
      in
      List.iter
        (fun (coeffs, slack) ->
          let lhs = ref 0. in
          let terms = ref [] in
          Array.iteri
            (fun i c ->
              lhs := !lhs +. (c *. point.(i));
              terms := (vars.(i), c) :: !terms)
            coeffs;
          (* The known point satisfies the row with strict slack. *)
          ignore (Lp.Model.add_constraint m !terms Lp.Model.Le (!lhs +. slack)))
        rows;
      match Lp.Simplex.solve m with
      | Lp.Status.Optimal s ->
          let point_cost = ref 0. in
          Array.iteri (fun i x -> point_cost := !point_cost +. (objs.(i) *. x)) point;
          s.Lp.Status.objective <= !point_cost +. 1e-6
      | Lp.Status.Unbounded -> true (* even better than any point *)
      | Lp.Status.Infeasible | Lp.Status.Iteration_limit -> false)

(* --- Time expansion: arc and node counts follow the formulas. --- *)
let prop_texp_counts =
  QCheck2.Test.make ~name:"time-expanded counts" ~count:100
    Gen.(
      let* n = int_range 2 8 in
      let* horizon = int_range 1 6 in
      let* seed = int_range 0 10_000 in
      return (n, horizon, seed))
    (fun (n, horizon, seed) ->
      let rng = Prelude.Rng.of_int seed in
      let base =
        Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10.
          ~capacity:5.
      in
      let t =
        Timexp.Time_expanded.build ~base ~horizon
          ~capacity:(fun ~link:_ ~layer:_ -> 5.)
      in
      let g = Timexp.Time_expanded.graph t in
      Netgraph.Graph.num_nodes g = n * (horizon + 1)
      && Netgraph.Graph.num_arcs g
         = horizon * (Netgraph.Graph.num_arcs base + n))

(* --- Postcard on a single link: the optimal charge is exactly
   max(charged, total/deadline) when capacity allows an even spread. --- *)
let prop_single_link_charge =
  QCheck2.Test.make ~name:"single-link optimum = max(old charge, rate)"
    ~count:100
    Gen.(
      let* size = float_range 1. 50. in
      let* deadline = int_range 1 6 in
      let* old_charge = float_range 0. 30. in
      return (size, deadline, old_charge))
    (fun (size, deadline, old_charge) ->
      let base = Netgraph.Graph.create ~n:2 in
      ignore (Netgraph.Graph.add_arc base ~src:0 ~dst:1 ~capacity:1000. ~cost:2. ());
      let file =
        Postcard.File.make ~id:0 ~src:0 ~dst:1 ~size ~deadline ~release:0
      in
      let program =
        Postcard.Formulate.create ~base ~charged:[| old_charge |]
          ~capacity:(fun ~link:_ ~layer:_ -> 1000.)
          ~files:[ file ] ~epoch:0 ()
      in
      match Postcard.Formulate.solve program with
      | Postcard.Formulate.Scheduled { charged; _ } ->
          let expected = max old_charge (size /. float_of_int deadline) in
          abs_float (charged.(0) -. expected) < 1e-4
      | Postcard.Formulate.Infeasible
      | Postcard.Formulate.Solver_failure _ ->
          false)

(* --- Workload generator: sizes/deadlines/endpoints always in spec. --- *)
let prop_workload_in_spec =
  QCheck2.Test.make ~name:"workload respects its spec" ~count:100
    Gen.(
      let* nodes = int_range 2 12 in
      let* files_max = int_range 1 10 in
      let* max_deadline = int_range 1 8 in
      let* seed = int_range 0 100_000 in
      return (nodes, files_max, max_deadline, seed))
    (fun (nodes, files_max, max_deadline, seed) ->
      let spec = Sim.Workload.paper_spec ~nodes ~files_max ~max_deadline in
      let w = Sim.Workload.create spec (Prelude.Rng.of_int seed) in
      let ok = ref true in
      for slot = 0 to 9 do
        List.iter
          (fun f ->
            if
              f.Postcard.File.size < 10.
              || f.Postcard.File.size >= 100.
              || f.Postcard.File.deadline < 1
              || f.Postcard.File.deadline > max_deadline
              || f.Postcard.File.src = f.Postcard.File.dst
              || f.Postcard.File.release <> slot
            then ok := false)
          (Sim.Workload.arrivals w ~slot)
      done;
      !ok)

let suite =
  [ to_alcotest prop_heap_sorted;
    to_alcotest prop_charge_monotone_in_percentile;
    to_alcotest prop_piecewise_monotone;
    to_alcotest prop_percentile_100_is_max;
    to_alcotest prop_mean_within_bounds;
    to_alcotest prop_simplex_beats_feasible_point;
    to_alcotest prop_texp_counts;
    to_alcotest prop_single_link_charge;
    to_alcotest prop_workload_in_spec ]
