module Lu = Sparselin.Lu
module Csc = Sparselin.Csc
module Dense = Sparselin.Dense

let cols_of_dense d =
  let n = Array.length d in
  fun j ->
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if d.(i).(j) <> 0. then acc := (i, d.(i).(j)) :: !acc
    done;
    Array.of_list !acc

let check_solve d b =
  let n = Array.length d in
  match Lu.factorize ~dim:n (cols_of_dense d) with
  | Error (Lu.Singular _) -> Alcotest.fail "unexpected singular"
  | Ok f ->
      let x = Array.copy b in
      Lu.solve f x;
      (* Verify A x = b. *)
      let ax = Dense.matvec d x in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-8)) (Printf.sprintf "Ax=b row %d" i) b.(i) v)
        ax;
      let y = Array.copy b in
      Lu.solve_transpose f y;
      let aty = Dense.matvec (Dense.transpose d) y in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-8)) (Printf.sprintf "A'y=c row %d" i) b.(i) v)
        aty

let test_identity () = check_solve (Dense.identity 4) [| 1.; 2.; 3.; 4. |]

let test_permutation () =
  (* A permutation matrix needs pivoting bookkeeping but no arithmetic. *)
  let d = [| [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |]; [| 1.; 0.; 0. |] |] in
  check_solve d [| 3.; 1.; 2. |]

let test_dense_3x3 () =
  let d = [| [| 2.; 1.; 1. |]; [| 4.; -6.; 0. |]; [| -2.; 7.; 2. |] |] in
  check_solve d [| 5.; -2.; 9. |]

let test_requires_pivoting () =
  (* Zero in the leading position forces a row exchange. *)
  let d = [| [| 0.; 2. |]; [| 1.; 1. |] |] in
  check_solve d [| 2.; 3. |]

let test_singular_detected () =
  let d = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  match Lu.factorize ~dim:2 (cols_of_dense d) with
  | Error (Lu.Singular _) -> ()
  | Ok _ -> Alcotest.fail "expected Singular"

let test_zero_column_singular () =
  let d = [| [| 1.; 0. |]; [| 0.; 0. |] |] in
  match Lu.factorize ~dim:2 (cols_of_dense d) with
  | Error (Lu.Singular _) -> ()
  | Ok _ -> Alcotest.fail "expected Singular"

let test_near_triangular_sparse () =
  (* Typical simplex basis shape: identity plus a few off-diagonal spikes. *)
  let n = 50 in
  let d = Dense.identity n in
  d.(10).(3) <- 0.5;
  d.(20).(3) <- -1.5;
  d.(3).(20) <- 2.0;
  d.(45).(44) <- 1.0;
  d.(44).(45) <- -0.25;
  let b = Array.init n (fun i -> float_of_int (i mod 7) -. 3.) in
  check_solve d b

let test_min_abs_diag () =
  let d = [| [| 4.; 0. |]; [| 0.; 0.5 |] |] in
  match Lu.factorize ~dim:2 (cols_of_dense d) with
  | Error _ -> Alcotest.fail "unexpected singular"
  | Ok f -> Alcotest.(check (float 1e-12)) "min diag" 0.5 (Lu.min_abs_diag f)

let random_nonsingular rng n =
  (* Random sparse matrix with a dominant diagonal: always nonsingular. *)
  let d = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    d.(i).(i) <- Prelude.Rng.float_range rng 1. 5.
                 *. (if Prelude.Rng.bool rng then 1. else -1.)
  done;
  let extras = n * 2 in
  for _ = 1 to extras do
    let i = Prelude.Rng.int rng n and j = Prelude.Rng.int rng n in
    if i <> j then d.(i).(j) <- Prelude.Rng.float_range rng (-0.9) 0.9
  done;
  d

let test_random_sparse_solves () =
  let rng = Prelude.Rng.of_int 2024 in
  for trial = 1 to 25 do
    let n = 5 + Prelude.Rng.int rng 40 in
    let d = random_nonsingular rng n in
    let b = Array.init n (fun _ -> Prelude.Rng.float_range rng (-10.) 10.) in
    (match Lu.factorize ~dim:n (cols_of_dense d) with
     | Error (Lu.Singular _) ->
         Alcotest.fail (Printf.sprintf "trial %d: unexpected singular" trial)
     | Ok f ->
         let x = Array.copy b in
         Lu.solve f x;
         let ax = Dense.matvec d x in
         Array.iteri
           (fun i v ->
             if abs_float (v -. b.(i)) > 1e-7 then
               Alcotest.fail
                 (Printf.sprintf "trial %d row %d: residual %g" trial i
                    (abs_float (v -. b.(i)))))
           ax;
         let y = Array.init n (fun _ -> Prelude.Rng.float_range rng (-1.) 1.) in
         let c = Array.copy y in
         Lu.solve_transpose f c;
         let atc = Dense.matvec (Dense.transpose d) c in
         Array.iteri
           (fun i v ->
             if abs_float (v -. y.(i)) > 1e-7 then
               Alcotest.fail
                 (Printf.sprintf "trial %d (transpose) row %d: residual %g"
                    trial i (abs_float (v -. y.(i)))))
           atc)
  done

let test_explicit_col_order () =
  let d = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  match Lu.factorize ~col_order:[| 1; 0 |] ~dim:2 (cols_of_dense d) with
  | Error _ -> Alcotest.fail "unexpected singular"
  | Ok f ->
      let x = [| 4.; 7. |] in
      Lu.solve f x;
      let ax = Dense.matvec d x in
      Alcotest.(check (float 1e-10)) "row 0" 4. ax.(0);
      Alcotest.(check (float 1e-10)) "row 1" 7. ax.(1)

let suite =
  [ Alcotest.test_case "identity" `Quick test_identity;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "dense 3x3" `Quick test_dense_3x3;
    Alcotest.test_case "requires pivoting" `Quick test_requires_pivoting;
    Alcotest.test_case "singular detected" `Quick test_singular_detected;
    Alcotest.test_case "zero column singular" `Quick test_zero_column_singular;
    Alcotest.test_case "near-triangular sparse" `Quick test_near_triangular_sparse;
    Alcotest.test_case "min abs diag" `Quick test_min_abs_diag;
    Alcotest.test_case "random sparse solves" `Quick test_random_sparse_solves;
    Alcotest.test_case "explicit column order" `Quick test_explicit_col_order ]
