module File = Postcard.File
module Charging = Postcard.Charging

let test_file_make () =
  let f = File.make ~id:3 ~src:0 ~dst:2 ~size:60. ~deadline:4 ~release:10 in
  Alcotest.(check (float 0.)) "rate" 15. (File.rate f);
  Alcotest.(check int) "last slot" 13 (File.last_slot f);
  Alcotest.(check int) "completion" 14 (File.completion_deadline f)

let test_file_invalid () =
  let attempt name f = Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  attempt "zero size" (fun () ->
      File.make ~id:0 ~src:0 ~dst:1 ~size:0. ~deadline:1 ~release:0);
  attempt "zero deadline" (fun () ->
      File.make ~id:0 ~src:0 ~dst:1 ~size:1. ~deadline:0 ~release:0);
  attempt "same endpoints" (fun () ->
      File.make ~id:0 ~src:1 ~dst:1 ~size:1. ~deadline:1 ~release:0);
  attempt "negative release" (fun () ->
      File.make ~id:0 ~src:0 ~dst:1 ~size:1. ~deadline:1 ~release:(-1))

let test_scheme_bounds () =
  Alcotest.(check bool) "valid" true
    (match Charging.scheme 95. with _ -> true);
  let invalid q =
    match Charging.scheme q with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero" true (invalid 0.);
  Alcotest.(check bool) "above 100" true (invalid 100.5)

let test_charged_volume_100 () =
  let v = [| 3.; 9.; 1.; 7. |] in
  Alcotest.(check (float 0.)) "max" 9.
    (Charging.charged_volume Charging.max_percentile v)

let test_charged_volume_95 () =
  (* 100 samples: the 95th percentile picks the 95th sorted value. *)
  let v = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.)) "95th" 95.
    (Charging.charged_volume (Charging.scheme 95.) v)

let test_charged_volume_prefix () =
  let v = [| 5.; 2.; 9.; 1. |] in
  let s = Charging.max_percentile in
  Alcotest.(check (float 0.)) "prefix 0" 0. (Charging.charged_volume_prefix s v 0);
  Alcotest.(check (float 0.)) "prefix 2" 5. (Charging.charged_volume_prefix s v 2);
  Alcotest.(check (float 0.)) "prefix 3" 9. (Charging.charged_volume_prefix s v 3);
  Alcotest.(check (float 0.)) "prefix beyond" 9.
    (Charging.charged_volume_prefix s v 10)

let test_linear_cost () =
  Alcotest.(check (float 0.)) "linear" 35. (Charging.cost (Charging.Linear 7.) 5.)

let test_piecewise_cost () =
  (* 2 units at slope 1, then 3 units at slope 2, then slope 0.5 forever:
     c(7) = 2 + 6 + 1 = 9. *)
  let f = Charging.Piecewise [ (2., 1.); (3., 2.); (0., 0.5) ] in
  Alcotest.(check (float 1e-12)) "within first" 1.5 (Charging.cost f 1.5);
  Alcotest.(check (float 1e-12)) "within second" 4. (Charging.cost f 3.);
  Alcotest.(check (float 1e-12)) "beyond" 9. (Charging.cost f 7.)

let test_piecewise_invalid () =
  Alcotest.(check bool) "negative slope" true
    (Charging.validate_cost_function (Charging.Piecewise [ (1., -1.) ])
     = Error "Piecewise: negative slope");
  Alcotest.(check bool) "empty" true
    (Charging.validate_cost_function (Charging.Piecewise []) |> Result.is_error)

let test_cost_negative_volume () =
  Alcotest.check_raises "negative volume"
    (Invalid_argument "Charging.cost: negative volume") (fun () ->
      ignore (Charging.cost (Charging.Linear 1.) (-1.)))

let suite =
  [ Alcotest.test_case "file make" `Quick test_file_make;
    Alcotest.test_case "file invalid" `Quick test_file_invalid;
    Alcotest.test_case "scheme bounds" `Quick test_scheme_bounds;
    Alcotest.test_case "charged volume 100th" `Quick test_charged_volume_100;
    Alcotest.test_case "charged volume 95th" `Quick test_charged_volume_95;
    Alcotest.test_case "charged volume prefix" `Quick test_charged_volume_prefix;
    Alcotest.test_case "linear cost" `Quick test_linear_cost;
    Alcotest.test_case "piecewise cost" `Quick test_piecewise_cost;
    Alcotest.test_case "piecewise invalid" `Quick test_piecewise_invalid;
    Alcotest.test_case "cost negative volume" `Quick test_cost_negative_volume ]
