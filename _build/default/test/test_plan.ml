module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan

(* Line graph 0 -> 1 -> 2 plus a direct 0 -> 2. *)
let base () =
  let g = Graph.create ~n:3 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. () in
  let a12 = Graph.add_arc g ~src:1 ~dst:2 ~capacity:10. ~cost:1. () in
  let a02 = Graph.add_arc g ~src:0 ~dst:2 ~capacity:10. ~cost:5. () in
  (g, a01, a12, a02)

let cap10 ~link:_ ~slot:_ = 10.

let file ?(size = 4.) ?(deadline = 3) () =
  File.make ~id:0 ~src:0 ~dst:2 ~size ~deadline ~release:0

let tx file link slot volume = { Plan.file; link; slot; volume }

let test_valid_relay () =
  let g, a01, a12, _ = base () in
  let f = file () in
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 4.; tx 0 a12 1 4. ]; holdovers = [] }
  in
  match Plan.validate ~base:g ~files:[ f ] ~capacity:cap10 plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_valid_split_paths () =
  let g, a01, a12, a02 = base () in
  let f = file () in
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 2.; tx 0 a12 1 2.; tx 0 a02 0 2. ];
      holdovers = [] }
  in
  match Plan.validate ~base:g ~files:[ f ] ~capacity:cap10 plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_premature_forward_rejected () =
  let g, a01, a12, _ = base () in
  let f = file () in
  (* Forwarding in the same slot the data leaves the source: invalid in the
     store-and-forward model. *)
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 4.; tx 0 a12 0 4. ]; holdovers = [] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Plan.validate ~base:g ~files:[ f ] ~capacity:cap10 plan))

let test_underdelivery_rejected () =
  let g, a01, a12, _ = base () in
  let f = file () in
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 3.; tx 0 a12 1 3. ]; holdovers = [] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Plan.validate ~base:g ~files:[ f ] ~capacity:cap10 plan))

let test_deadline_violation_rejected () =
  let g, a01, a12, _ = base () in
  let f = file ~deadline:2 () in
  (* Second hop lands at slot 2, outside the window [0, 1]. *)
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 4.; tx 0 a12 2 4. ]; holdovers = [] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Plan.validate ~base:g ~files:[ f ] ~capacity:cap10 plan))

let test_capacity_violation_rejected () =
  let g, _, _, a02 = base () in
  let f = file ~size:12. ~deadline:1 () in
  let plan = { Plan.transmissions = [ tx 0 a02 0 12. ]; holdovers = [] } in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Plan.validate ~base:g ~files:[ f ] ~capacity:cap10 plan))

let test_capacity_aggregates_across_files () =
  let g, _, _, a02 = base () in
  let f1 = File.make ~id:0 ~src:0 ~dst:2 ~size:6. ~deadline:1 ~release:0 in
  let f2 = File.make ~id:1 ~src:0 ~dst:2 ~size:6. ~deadline:1 ~release:0 in
  (* Each fits alone; together they exceed capacity 10. *)
  let plan =
    { Plan.transmissions = [ tx 0 a02 0 6.; tx 1 a02 0 6. ]; holdovers = [] }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error
       (Plan.validate ~base:g ~files:[ f1; f2 ] ~capacity:cap10 plan))

let test_unknown_file_rejected () =
  let g, a01, _, _ = base () in
  let plan = { Plan.transmissions = [ tx 9 a01 0 1. ]; holdovers = [] } in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Plan.validate ~base:g ~files:[ file () ] ~capacity:cap10 plan))

let test_capacity_only_accepts_fluid () =
  let g, a01, a12, _ = base () in
  (* Same-slot relay: invalid as store-and-forward, fine as fluid. *)
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 4.; tx 0 a12 0 4. ]; holdovers = [] }
  in
  match Plan.validate_capacity ~base:g ~capacity:cap10 plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_volume_helpers () =
  let g, a01, a12, _ = base () in
  ignore g;
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 4.; tx 0 a01 0 2.; tx 0 a12 1 6. ];
      holdovers = [] }
  in
  Alcotest.(check (float 0.)) "volume_on sums" 6.
    (Plan.volume_on plan ~link:a01 ~slot:0);
  Alcotest.(check (float 0.)) "total" 12. (Plan.total_transmitted plan);
  Alcotest.(check (option (pair int int))) "slot range" (Some (0, 1))
    (Plan.slot_range plan)

let test_delivered_volume () =
  let g, a01, a12, _ = base () in
  let f = file () in
  let plan =
    { Plan.transmissions = [ tx 0 a01 0 4.; tx 0 a12 1 4. ]; holdovers = [] }
  in
  Alcotest.(check (float 0.)) "delivered" 4.
    (Plan.delivered_volume plan ~base:g ~file:f)

let test_empty_plan_valid () =
  let g, _, _, _ = base () in
  match Plan.validate ~base:g ~files:[] ~capacity:cap10 Plan.empty with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [ Alcotest.test_case "valid relay" `Quick test_valid_relay;
    Alcotest.test_case "valid split paths" `Quick test_valid_split_paths;
    Alcotest.test_case "premature forward rejected" `Quick test_premature_forward_rejected;
    Alcotest.test_case "underdelivery rejected" `Quick test_underdelivery_rejected;
    Alcotest.test_case "deadline violation rejected" `Quick test_deadline_violation_rejected;
    Alcotest.test_case "capacity violation rejected" `Quick test_capacity_violation_rejected;
    Alcotest.test_case "capacity aggregates files" `Quick test_capacity_aggregates_across_files;
    Alcotest.test_case "unknown file rejected" `Quick test_unknown_file_rejected;
    Alcotest.test_case "capacity-only accepts fluid" `Quick test_capacity_only_accepts_fluid;
    Alcotest.test_case "volume helpers" `Quick test_volume_helpers;
    Alcotest.test_case "delivered volume" `Quick test_delivered_volume;
    Alcotest.test_case "empty plan valid" `Quick test_empty_plan_valid ]
