let feq = Alcotest.(check (float 1e-9))

let test_mean () = feq "mean" 2.5 (Prelude.Stats.mean [| 1.; 2.; 3.; 4. |])

let test_variance () =
  feq "variance" (14. /. 3.) (Prelude.Stats.variance [| 1.; 2.; 3.; 6. |]);
  feq "single sample" 0. (Prelude.Stats.variance [| 5. |])

let test_stddev () = feq "stddev" 2. (Prelude.Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] *. sqrt (7. /. 8.))

let test_confidence_95 () =
  (* 10 samples, as in the paper's 10 simulation runs. *)
  let samples = [| 10.; 12.; 9.; 11.; 10.; 13.; 8.; 12.; 11.; 10. |] in
  let mean, half = Prelude.Stats.confidence_95 samples in
  feq "mean" 10.6 mean;
  (* t(9, 0.975) = 2.262; se = stddev/sqrt(10). *)
  let se = Prelude.Stats.std_error samples in
  feq "halfwidth" (2.262 *. se) half

let test_confidence_single () =
  let mean, half = Prelude.Stats.confidence_95 [| 42. |] in
  feq "mean" 42. mean;
  feq "halfwidth" 0. half

let test_t_table () =
  feq "dof 1" 12.706 (Prelude.Stats.t_critical_95 1);
  feq "dof 9" 2.262 (Prelude.Stats.t_critical_95 9);
  feq "dof 30" 2.042 (Prelude.Stats.t_critical_95 30);
  feq "dof large" 1.960 (Prelude.Stats.t_critical_95 10_000)

let test_percentile_rank () =
  (* The paper's example: 95th percentile of a year of 5-minute samples
     selects the 99864-th sorted interval (1-based). *)
  let n = 365 * 24 * 60 / 5 in
  Alcotest.(check int) "paper example" (99864 - 1) (Prelude.Stats.percentile_rank n 95.);
  Alcotest.(check int) "100th is max" (n - 1) (Prelude.Stats.percentile_rank n 100.);
  Alcotest.(check int) "tiny q clamps to 0" 0 (Prelude.Stats.percentile_rank 10 0.)

let test_percentile_values () =
  let a = [| 5.; 1.; 4.; 2.; 3. |] in
  feq "100th = max" 5. (Prelude.Stats.percentile a 100.);
  feq "20th = min" 1. (Prelude.Stats.percentile a 20.);
  feq "60th" 3. (Prelude.Stats.percentile a 60.)

let test_running_max () =
  Alcotest.(check (array (float 0.))) "running max"
    [| 1.; 3.; 3.; 7.; 7. |]
    (Prelude.Stats.fold_running_max [| 1.; 3.; 2.; 7.; 0. |])

let test_empty_errors () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Prelude.Stats.mean [||]));
  Alcotest.check_raises "percentile" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Prelude.Stats.percentile [||] 50.))

let suite =
  [ Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "confidence 95" `Quick test_confidence_95;
    Alcotest.test_case "confidence single" `Quick test_confidence_single;
    Alcotest.test_case "t table" `Quick test_t_table;
    Alcotest.test_case "percentile rank" `Quick test_percentile_rank;
    Alcotest.test_case "percentile values" `Quick test_percentile_values;
    Alcotest.test_case "running max" `Quick test_running_max;
    Alcotest.test_case "empty errors" `Quick test_empty_errors ]
