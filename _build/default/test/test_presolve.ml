module Model = Lp.Model
module Status = Lp.Status
module Presolve = Lp.Presolve

let get_opt = function
  | Status.Optimal s -> s
  | other -> Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

let test_fixed_variable_substituted () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:2. ~ub:2. ~obj:5. () in
  let y = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 6.);
  (match Presolve.presolve m with
   | `Infeasible -> Alcotest.fail "feasible"
   | `Reduced (reduced, r) ->
       Alcotest.(check int) "one variable left" 1 (Model.num_vars reduced);
       Alcotest.(check (float 1e-9)) "objective offset" 10.
         (Presolve.objective_offset r));
  let s = get_opt (Presolve.solve m) in
  Alcotest.(check (float 1e-6)) "objective" 14. s.Status.objective;
  Alcotest.(check (float 1e-6)) "x restored" 2. s.Status.primal.(0);
  Alcotest.(check (float 1e-6)) "y solved" 4. s.Status.primal.(1)

let test_singleton_le_tightens () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 2.) ] Model.Le 10.);
  (match Presolve.presolve m with
   | `Infeasible -> Alcotest.fail "feasible"
   | `Reduced (reduced, _) ->
       Alcotest.(check int) "row absorbed into bound" 0 (Model.num_rows reduced);
       let v = Model.var_of_index reduced 0 in
       Alcotest.(check (float 1e-9)) "ub tightened" 5. (Model.upper_bound reduced v));
  let s = get_opt (Presolve.solve m) in
  Alcotest.(check (float 1e-6)) "objective" 5. s.Status.objective

let test_singleton_eq_fixes_and_cascades () =
  (* x = 3 via a singleton equality; then x + y = 5 becomes a singleton
     for y, fixing y = 2; the whole program dissolves. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1. () in
  let y = Model.add_var m ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Eq 3.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 5.);
  (match Presolve.presolve m with
   | `Infeasible -> Alcotest.fail "feasible"
   | `Reduced (reduced, _) ->
       Alcotest.(check int) "all vars fixed" 0 (Model.num_vars reduced);
       Alcotest.(check int) "all rows gone" 0 (Model.num_rows reduced));
  let s = get_opt (Presolve.solve m) in
  Alcotest.(check (float 1e-6)) "objective" 5. s.Status.objective;
  Alcotest.(check (float 1e-6)) "x" 3. s.Status.primal.(0);
  Alcotest.(check (float 1e-6)) "y" 2. s.Status.primal.(1)

let test_infeasible_bounds () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~ub:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 2.);
  Alcotest.(check bool) "infeasible via singleton" true
    (Presolve.presolve m = `Infeasible)

let test_infeasible_empty_row () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:1. ~ub:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Eq 2.);
  Alcotest.(check bool) "contradictory after substitution" true
    (Presolve.presolve m = `Infeasible)

let test_redundant_empty_row_dropped () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:1. ~ub:1. ~obj:1. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 5.);
  match Presolve.presolve m with
  | `Infeasible -> Alcotest.fail "feasible"
  | `Reduced (reduced, _) ->
      Alcotest.(check int) "nothing left" 0 (Model.num_rows reduced)

let random_model rng =
  let n = 1 + Prelude.Rng.int rng 5 in
  let rows = 1 + Prelude.Rng.int rng 5 in
  let m = Model.create
      (if Prelude.Rng.bool rng then Model.Minimize else Model.Maximize)
  in
  let vars =
    Array.init n (fun _ ->
        let obj = Prelude.Rng.float_range rng (-3.) 3. in
        match Prelude.Rng.int rng 3 with
        | 0 -> Model.add_var m ~obj ()
        | 1 ->
            let b = Prelude.Rng.float rng 4. in
            Model.add_var m ~obj ~lb:b ~ub:b ()
        | _ -> Model.add_var m ~obj ~ub:(Prelude.Rng.float_range rng 1. 8.) ())
  in
  for _ = 1 to rows do
    let terms =
      Array.to_list vars
      |> List.filter_map (fun v ->
             if Prelude.Rng.int rng 2 = 0 then None
             else Some (v, Prelude.Rng.float_range rng (-3.) 3.))
    in
    if terms <> [] then begin
      let sense =
        match Prelude.Rng.int rng 3 with
        | 0 -> Model.Le
        | 1 -> Model.Ge
        | _ -> Model.Eq
      in
      ignore (Model.add_constraint m terms sense (Prelude.Rng.float_range rng (-6.) 6.))
    end
  done;
  m

(* The presolved solve must agree with the direct solve on every random
   program (outcome class and objective). *)
let test_random_agreement () =
  let rng = Prelude.Rng.of_int 555 in
  for trial = 1 to 200 do
    let m = random_model rng in
    match (Lp.Simplex.solve m, Presolve.solve m) with
    | Status.Optimal a, Status.Optimal b ->
        if abs_float (a.Status.objective -. b.Status.objective) > 1e-5 then
          Alcotest.failf "trial %d: %.9g vs %.9g" trial a.Status.objective
            b.Status.objective;
        let viol = Model.constraint_violation m b.Status.primal in
        if viol > 1e-6 then
          Alcotest.failf "trial %d: restored primal infeasible (%g)" trial viol
    | Status.Infeasible, Status.Infeasible -> ()
    | Status.Unbounded, Status.Unbounded -> ()
    | a, b ->
        Alcotest.failf "trial %d: direct %a vs presolved %a" trial
          Status.pp_outcome a Status.pp_outcome b
  done

let suite =
  [ Alcotest.test_case "fixed variable" `Quick test_fixed_variable_substituted;
    Alcotest.test_case "singleton le" `Quick test_singleton_le_tightens;
    Alcotest.test_case "singleton eq cascade" `Quick test_singleton_eq_fixes_and_cascades;
    Alcotest.test_case "infeasible bounds" `Quick test_infeasible_bounds;
    Alcotest.test_case "infeasible empty row" `Quick test_infeasible_empty_row;
    Alcotest.test_case "redundant row dropped" `Quick test_redundant_empty_row_dropped;
    Alcotest.test_case "random agreement x200" `Quick test_random_agreement ]
