module Graph = Netgraph.Graph

let test_build () =
  let g = Graph.create ~n:3 in
  let a = Graph.add_arc g ~src:0 ~dst:1 ~capacity:5. ~cost:2. () in
  let b = Graph.add_arc g ~src:1 ~dst:2 () in
  Alcotest.(check int) "nodes" 3 (Graph.num_nodes g);
  Alcotest.(check int) "arcs" 2 (Graph.num_arcs g);
  let arc = Graph.arc g a in
  Alcotest.(check int) "src" 0 arc.Graph.src;
  Alcotest.(check int) "dst" 1 arc.Graph.dst;
  Alcotest.(check (float 0.)) "capacity" 5. arc.Graph.capacity;
  Alcotest.(check (float 0.)) "cost" 2. arc.Graph.cost;
  let arc2 = Graph.arc g b in
  Alcotest.(check bool) "default capacity" true (arc2.Graph.capacity = infinity);
  Alcotest.(check (float 0.)) "default cost" 0. arc2.Graph.cost

let test_adjacency () =
  let g = Graph.create ~n:4 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 () in
  let a02 = Graph.add_arc g ~src:0 ~dst:2 () in
  let a31 = Graph.add_arc g ~src:3 ~dst:1 () in
  Alcotest.(check (list int)) "out 0" [ a01; a02 ] (Graph.out_arcs g 0);
  Alcotest.(check (list int)) "in 1" [ a01; a31 ] (Graph.in_arcs g 1);
  Alcotest.(check (list int)) "out 2 empty" [] (Graph.out_arcs g 2)

let test_find_arc () =
  let g = Graph.create ~n:3 in
  let a = Graph.add_arc g ~src:0 ~dst:2 () in
  Alcotest.(check (option int)) "found" (Some a) (Graph.find_arc g ~src:0 ~dst:2);
  Alcotest.(check (option int)) "absent" None (Graph.find_arc g ~src:2 ~dst:0)

let test_add_node () =
  let g = Graph.create ~n:1 in
  let v = Graph.add_node g in
  Alcotest.(check int) "new index" 1 v;
  ignore (Graph.add_arc g ~src:0 ~dst:1 ());
  Alcotest.(check int) "usable" 1 (Graph.num_arcs g)

let test_invalid () =
  let g = Graph.create ~n:2 in
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.add_arc: self-loop")
    (fun () -> ignore (Graph.add_arc g ~src:0 ~dst:0 ()));
  Alcotest.check_raises "bad dst" (Invalid_argument "Graph.add_arc: dst out of range")
    (fun () -> ignore (Graph.add_arc g ~src:0 ~dst:5 ()));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Graph.add_arc: negative capacity") (fun () ->
      ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:(-1.) ()))

let test_reverse () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:3. ~cost:7. ());
  let r = Graph.reverse g in
  let a = Graph.arc r 0 in
  Alcotest.(check int) "src flipped" 1 a.Graph.src;
  Alcotest.(check int) "dst flipped" 0 a.Graph.dst;
  Alcotest.(check (float 0.)) "cost kept" 7. a.Graph.cost

let test_map_capacities () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:3. ());
  let g' = Graph.map_capacities g (fun a -> a.Graph.capacity *. 2.) in
  Alcotest.(check (float 0.)) "doubled" 6. (Graph.arc g' 0).Graph.capacity

let test_topology_complete () =
  let rng = Prelude.Rng.of_int 5 in
  let g = Netgraph.Topology.complete ~n:6 ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:30. in
  Alcotest.(check int) "arc count" 30 (Graph.num_arcs g);
  Graph.iter_arcs g (fun a ->
      Alcotest.(check bool) "cost in range" true
        (a.Graph.cost >= 1. && a.Graph.cost < 10.);
      Alcotest.(check (float 0.)) "capacity" 30. a.Graph.capacity)

let test_topology_symmetric () =
  let rng = Prelude.Rng.of_int 5 in
  let g =
    Netgraph.Topology.complete_symmetric ~n:5 ~rng ~cost_lo:1. ~cost_hi:10.
      ~capacity:1.
  in
  Graph.iter_arcs g (fun a ->
      match Graph.find_arc g ~src:a.Graph.dst ~dst:a.Graph.src with
      | None -> Alcotest.fail "missing reverse arc"
      | Some id ->
          Alcotest.(check (float 0.)) "symmetric cost" a.Graph.cost
            (Graph.arc g id).Graph.cost)

let test_topology_ring_star () =
  let ring = Netgraph.Topology.ring ~n:5 ~cost:2. ~capacity:1. in
  Alcotest.(check int) "ring arcs" 10 (Graph.num_arcs ring);
  let star = Netgraph.Topology.star ~n:5 ~hub:0 ~cost:1. ~capacity:1. in
  Alcotest.(check int) "star arcs" 8 (Graph.num_arcs star)

let test_of_cost_matrix () =
  let g =
    Netgraph.Topology.of_cost_matrix ~capacity:5.
      [| [| 0.; 1.; infinity |]; [| 2.; 0.; 3. |]; [| infinity; 4.; 0. |] |]
  in
  Alcotest.(check int) "arcs" 4 (Graph.num_arcs g);
  match Graph.find_arc g ~src:1 ~dst:2 with
  | None -> Alcotest.fail "missing arc"
  | Some id -> Alcotest.(check (float 0.)) "cost" 3. (Graph.arc g id).Graph.cost

let suite =
  [ Alcotest.test_case "build" `Quick test_build;
    Alcotest.test_case "adjacency" `Quick test_adjacency;
    Alcotest.test_case "find arc" `Quick test_find_arc;
    Alcotest.test_case "add node" `Quick test_add_node;
    Alcotest.test_case "invalid" `Quick test_invalid;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "map capacities" `Quick test_map_capacities;
    Alcotest.test_case "topology complete" `Quick test_topology_complete;
    Alcotest.test_case "topology symmetric" `Quick test_topology_symmetric;
    Alcotest.test_case "topology ring/star" `Quick test_topology_ring_star;
    Alcotest.test_case "of cost matrix" `Quick test_of_cost_matrix ]
