module Csc = Sparselin.Csc

let feq = Alcotest.(check (float 1e-12))

let sample () =
  (* [ 1 0 2 ]
     [ 0 3 0 ]
     [ 4 0 5 ] *)
  let b = Csc.builder ~nrows:3 ~ncols:3 in
  Csc.add b ~row:0 ~col:0 1.;
  Csc.add b ~row:2 ~col:0 4.;
  Csc.add b ~row:1 ~col:1 3.;
  Csc.add b ~row:0 ~col:2 2.;
  Csc.add b ~row:2 ~col:2 5.;
  Csc.finalize b

let test_dims () =
  let m = sample () in
  Alcotest.(check int) "nrows" 3 (Csc.nrows m);
  Alcotest.(check int) "ncols" 3 (Csc.ncols m);
  Alcotest.(check int) "nnz" 5 (Csc.nnz m)

let test_get () =
  let m = sample () in
  feq "(0,0)" 1. (Csc.get m 0 0);
  feq "(2,0)" 4. (Csc.get m 2 0);
  feq "(1,1)" 3. (Csc.get m 1 1);
  feq "(0,2)" 2. (Csc.get m 0 2);
  feq "(2,2)" 5. (Csc.get m 2 2);
  feq "(1,0) zero" 0. (Csc.get m 1 0);
  feq "(0,1) zero" 0. (Csc.get m 0 1)

let test_duplicates_summed () =
  let b = Csc.builder ~nrows:2 ~ncols:2 in
  Csc.add b ~row:0 ~col:0 1.;
  Csc.add b ~row:0 ~col:0 2.;
  Csc.add b ~row:1 ~col:1 5.;
  Csc.add b ~row:1 ~col:1 (-5.);
  let m = Csc.finalize b in
  feq "summed" 3. (Csc.get m 0 0);
  Alcotest.(check int) "cancelled entry dropped" 1 (Csc.nnz m)

let test_column_sorted () =
  let b = Csc.builder ~nrows:4 ~ncols:1 in
  Csc.add b ~row:3 ~col:0 3.;
  Csc.add b ~row:1 ~col:0 1.;
  Csc.add b ~row:2 ~col:0 2.;
  let m = Csc.finalize b in
  let col = Csc.column m 0 in
  Alcotest.(check (list (pair int (float 0.)))) "sorted rows"
    [ (1, 1.); (2, 2.); (3, 3.) ]
    (Array.to_list col)

let test_matvec () =
  let m = sample () in
  Alcotest.(check (array (float 1e-12))) "A x"
    [| 1. +. 6.; 6.; 4. +. 15. |]
    (Csc.matvec m [| 1.; 2.; 3. |])

let test_matvec_t () =
  let m = sample () in
  Alcotest.(check (array (float 1e-12))) "A^T y"
    [| 1. +. 12.; 6.; 2. +. 15. |]
    (Csc.matvec_t m [| 1.; 2.; 3. |])

let test_dense_roundtrip () =
  let m = sample () in
  let d = Csc.to_dense m in
  let m' = Csc.of_dense d in
  Alcotest.(check int) "same nnz" (Csc.nnz m) (Csc.nnz m');
  for i = 0 to 2 do
    for j = 0 to 2 do
      feq (Printf.sprintf "(%d,%d)" i j) (Csc.get m i j) (Csc.get m' i j)
    done
  done

let test_select_columns () =
  let m = sample () in
  let s = Csc.select_columns m [| 2; 0 |] in
  feq "col0 from col2" 2. (Csc.get s 0 0);
  feq "col1 from col0" 1. (Csc.get s 0 1);
  feq "col0 row2" 5. (Csc.get s 2 0)

let test_empty () =
  let b = Csc.builder ~nrows:0 ~ncols:0 in
  let m = Csc.finalize b in
  Alcotest.(check int) "empty nnz" 0 (Csc.nnz m)

let test_out_of_range () =
  let b = Csc.builder ~nrows:2 ~ncols:2 in
  Alcotest.check_raises "bad row" (Invalid_argument "Csc.add: row out of range")
    (fun () -> Csc.add b ~row:2 ~col:0 1.);
  Alcotest.check_raises "bad col" (Invalid_argument "Csc.add: col out of range")
    (fun () -> Csc.add b ~row:0 ~col:(-1) 1.)

let prop_matvec_matches_dense =
  QCheck2.Test.make ~name:"csc matvec matches dense reference" ~count:100
    QCheck2.Gen.(
      let* nrows = int_range 1 8 in
      let* ncols = int_range 1 8 in
      let* entries =
        list_size (int_range 0 30)
          (triple (int_range 0 (nrows - 1)) (int_range 0 (ncols - 1))
             (float_range (-10.) 10.))
      in
      let* x = array_size (return ncols) (float_range (-5.) 5.) in
      return (nrows, ncols, entries, x))
    (fun (nrows, ncols, entries, x) ->
      let b = Csc.builder ~nrows ~ncols in
      List.iter (fun (r, c, v) -> Csc.add b ~row:r ~col:c v) entries;
      let m = Csc.finalize b in
      let d = Csc.to_dense m in
      let expected =
        Array.init nrows (fun i ->
            let acc = ref 0. in
            for j = 0 to ncols - 1 do
              acc := !acc +. (d.(i).(j) *. x.(j))
            done;
            !acc)
      in
      let got = Csc.matvec m x in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) expected got)

let suite =
  [ Alcotest.test_case "dims" `Quick test_dims;
    Alcotest.test_case "get" `Quick test_get;
    Alcotest.test_case "duplicates summed" `Quick test_duplicates_summed;
    Alcotest.test_case "column sorted" `Quick test_column_sorted;
    Alcotest.test_case "matvec" `Quick test_matvec;
    Alcotest.test_case "matvec transpose" `Quick test_matvec_t;
    Alcotest.test_case "dense roundtrip" `Quick test_dense_roundtrip;
    Alcotest.test_case "select columns" `Quick test_select_columns;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    QCheck_alcotest.to_alcotest prop_matvec_matches_dense ]
