module Graph = Netgraph.Graph
module Paths = Netgraph.Paths

let diamond () =
  (* 0 -> 1 -> 3 (cost 1 + 1), 0 -> 2 -> 3 (cost 2 + 3), 0 -> 3 (cost 5). *)
  let g = Graph.create ~n:4 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 ~cost:1. () in
  let a13 = Graph.add_arc g ~src:1 ~dst:3 ~cost:1. () in
  let _a02 = Graph.add_arc g ~src:0 ~dst:2 ~cost:2. () in
  let _a23 = Graph.add_arc g ~src:2 ~dst:3 ~cost:3. () in
  let _a03 = Graph.add_arc g ~src:0 ~dst:3 ~cost:5. () in
  (g, a01, a13)

let test_dijkstra () =
  let g, a01, a13 = diamond () in
  let tree = Paths.dijkstra g ~src:0 in
  Alcotest.(check (float 1e-12)) "dist 3" 2. tree.Paths.dist.(3);
  Alcotest.(check (float 1e-12)) "dist 2" 2. tree.Paths.dist.(2);
  Alcotest.(check (option (list int))) "path" (Some [ a01; a13 ])
    (Paths.path_to tree g ~dst:3)

let test_dijkstra_unreachable () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cost:1. ());
  let tree = Paths.dijkstra g ~src:0 in
  Alcotest.(check bool) "unreachable" true (tree.Paths.dist.(2) = infinity);
  Alcotest.(check (option (list int))) "no path" None (Paths.path_to tree g ~dst:2)

let test_dijkstra_filtered () =
  let g, _, _ = diamond () in
  (* Exclude the cheap middle arc: the best route becomes 0 -> 3 at 5
     (0->2->3 also costs 5; Dijkstra may return either; check distance). *)
  let tree =
    Paths.dijkstra_filtered g ~src:0 ~usable:(fun a -> a.Graph.cost <> 1.)
  in
  Alcotest.(check (float 1e-12)) "dist without cheap arcs" 5. tree.Paths.dist.(3)

let test_dijkstra_negative_rejected () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cost:(-1.) ());
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Paths.dijkstra: negative arc cost") (fun () ->
      ignore (Paths.dijkstra g ~src:0))

let test_bellman_ford_negative_costs () =
  let g = Graph.create ~n:4 in
  let a01 = Graph.add_arc g ~src:0 ~dst:1 ~cost:4. () in
  let a12 = Graph.add_arc g ~src:1 ~dst:2 ~cost:(-2.) () in
  let _a02 = Graph.add_arc g ~src:0 ~dst:2 ~cost:3. () in
  let a23 = Graph.add_arc g ~src:2 ~dst:3 ~cost:1. () in
  match Paths.bellman_ford g ~src:0 with
  | None -> Alcotest.fail "no negative cycle here"
  | Some tree ->
      Alcotest.(check (float 1e-12)) "dist 2" 2. tree.Paths.dist.(2);
      Alcotest.(check (option (list int))) "path through negative arc"
        (Some [ a01; a12; a23 ])
        (Paths.path_to tree g ~dst:3)

let test_bellman_ford_negative_cycle () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~cost:1. ());
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~cost:(-3.) ());
  ignore (Graph.add_arc g ~src:2 ~dst:1 ~cost:1. ());
  Alcotest.(check bool) "cycle detected" true (Paths.bellman_ford g ~src:0 = None)

let test_agreement_with_dijkstra () =
  let rng = Prelude.Rng.of_int 11 in
  for _ = 1 to 20 do
    let n = 4 + Prelude.Rng.int rng 8 in
    let g = Graph.create ~n in
    for _ = 1 to n * 3 do
      let s = Prelude.Rng.int rng n and d = Prelude.Rng.int rng n in
      if s <> d then
        ignore (Graph.add_arc g ~src:s ~dst:d ~cost:(Prelude.Rng.float rng 10.) ())
    done;
    let t1 = Paths.dijkstra g ~src:0 in
    match Paths.bellman_ford g ~src:0 with
    | None -> Alcotest.fail "no negative costs, no cycle possible"
    | Some t2 ->
        for v = 0 to n - 1 do
          let d1 = t1.Paths.dist.(v) and d2 = t2.Paths.dist.(v) in
          if d1 = infinity || d2 = infinity then
            Alcotest.(check bool) "both unreachable" true (d1 = d2)
          else Alcotest.(check (float 1e-9)) "distances agree" d1 d2
        done
  done

let test_path_cost () =
  let g, a01, a13 = diamond () in
  Alcotest.(check (float 1e-12)) "cost" 2. (Paths.path_cost g [ a01; a13 ])

let suite =
  [ Alcotest.test_case "dijkstra" `Quick test_dijkstra;
    Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
    Alcotest.test_case "dijkstra filtered" `Quick test_dijkstra_filtered;
    Alcotest.test_case "dijkstra rejects negative" `Quick test_dijkstra_negative_rejected;
    Alcotest.test_case "bellman-ford negative costs" `Quick test_bellman_ford_negative_costs;
    Alcotest.test_case "bellman-ford negative cycle" `Quick test_bellman_ford_negative_cycle;
    Alcotest.test_case "dijkstra/bellman-ford agree" `Quick test_agreement_with_dijkstra;
    Alcotest.test_case "path cost" `Quick test_path_cost ]
