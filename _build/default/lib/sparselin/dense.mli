(** Small dense linear algebra: used by the dense tableau simplex, the
    interior-point cross-check and the test suites. Matrices are row-major
    [float array array]. *)

type mat = float array array

val make : int -> int -> mat
val identity : int -> mat
val copy : mat -> mat
val dims : mat -> int * int

val matmul : mat -> mat -> mat
val matvec : mat -> float array -> float array
val transpose : mat -> mat

val lu_solve : mat -> float array -> float array option
(** [lu_solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting; [None] when [a] is numerically singular. [a] and [b] are not
    modified. *)

val lu_solve_many : mat -> mat -> mat option
(** Solve with multiple right-hand sides given as columns of the second
    argument. *)

val cholesky : mat -> mat option
(** [cholesky a] returns the lower-triangular [l] with [l l^T = a] for a
    symmetric positive-definite [a]; [None] if a non-positive pivot is
    met. *)

val cholesky_solve : mat -> float array -> float array option
(** Solve a symmetric positive-definite system via {!cholesky}. *)

val max_abs_diff : mat -> mat -> float
