(** Sparse LU factorization of a square matrix with partial pivoting,
    in the left-looking (Gilbert-Peierls) style. This is the basis
    factorization engine of the revised simplex method in {!Lp}.

    The factorization computed is [P * B * Q = L * U] where [P] is the row
    permutation chosen by threshold-free partial pivoting, [Q] is a caller
    supplied (or nnz-ascending) column ordering, [L] is unit lower triangular
    and [U] is upper triangular. *)

type t

type error =
  | Singular of int
      (** [Singular k]: no acceptable pivot was found while factorizing the
          [k]-th column of the ordered matrix. *)

val factorize :
  ?col_order:int array -> dim:int -> (int -> (int * float) array) -> (t, error) result
(** [factorize ~dim col] factorizes the [dim] x [dim] matrix whose [j]-th
    column is [col j], given as (row, value) pairs with distinct rows.
    [col_order], when given, is the permutation [Q] (its [k]-th entry is the
    original column eliminated at step [k]); otherwise columns are ordered by
    increasing nonzero count, a cheap fill-reducing heuristic that suits
    near-triangular simplex bases. *)

val dim : t -> int

val nnz : t -> int
(** Total stored entries of [L] and [U], a measure of fill-in. *)

val solve : t -> float array -> unit
(** [solve f b] overwrites [b] with the solution [x] of [B x = b]
    (the simplex FTRAN). *)

val solve_transpose : t -> float array -> unit
(** [solve_transpose f c] overwrites [c] with the solution [y] of
    [transpose B y = c] (the simplex BTRAN). *)

val min_abs_diag : t -> float
(** Smallest pivot magnitude; a stability diagnostic. *)
