lib/sparselin/lu.ml: Array
