lib/sparselin/eta.ml: Array
