lib/sparselin/csc.ml: Array Format
