lib/sparselin/dense.mli:
