lib/sparselin/dense.ml: Array
