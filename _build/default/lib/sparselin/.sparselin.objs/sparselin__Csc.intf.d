lib/sparselin/csc.mli: Format
