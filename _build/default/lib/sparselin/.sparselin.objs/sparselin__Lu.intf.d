lib/sparselin/lu.mli:
