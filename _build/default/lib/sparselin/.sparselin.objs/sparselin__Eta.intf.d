lib/sparselin/eta.mli:
