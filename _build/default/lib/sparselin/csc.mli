(** Immutable sparse matrices in compressed sparse column form, plus a
    mutable triplet builder. Row/column indices are 0-based. *)

type t

type builder

val builder : nrows:int -> ncols:int -> builder
(** Fresh empty builder for an [nrows] x [ncols] matrix. *)

val add : builder -> row:int -> col:int -> float -> unit
(** Accumulate a coefficient; duplicate [(row, col)] entries are summed at
    [finalize] time. Raises [Invalid_argument] on out-of-range indices. *)

val finalize : builder -> t
(** Build the CSC matrix. Entries that sum to exactly [0.] are dropped.
    Within each column, rows are sorted ascending. The builder remains
    usable. *)

val nrows : t -> int
val ncols : t -> int
val nnz : t -> int

val column : t -> int -> (int * float) array
(** [column m j] materializes column [j] as (row, value) pairs sorted by
    row. Allocates; prefer [iter_col] in hot paths. *)

val iter_col : t -> int -> (int -> float -> unit) -> unit
(** [iter_col m j f] applies [f row value] to each structural nonzero of
    column [j], in ascending row order. *)

val fold_col : t -> int -> init:'a -> f:('a -> int -> float -> 'a) -> 'a

val dot_col : t -> int -> float array -> float
(** [dot_col m j v] is the dot product of column [j] with the dense vector
    [v] — a tight loop without closure dispatch, for solver hot paths. *)

val scatter_col : t -> int -> float array -> unit
(** [scatter_col m j v] adds column [j] into the dense vector [v]. *)

val col_nnz : t -> int -> int

val get : t -> int -> int -> float
(** [get m i j] is the [(i, j)] coefficient ([0.] when structurally zero).
    Logarithmic in the column size. *)

val matvec : t -> float array -> float array
(** [matvec m x] is the dense product [m * x]. *)

val matvec_t : t -> float array -> float array
(** [matvec_t m y] is the dense product [transpose m * y]. *)

val to_dense : t -> float array array
(** Row-major dense copy; intended for tests and small matrices. *)

val of_dense : float array array -> t

val select_columns : t -> int array -> t
(** [select_columns m cols] is the matrix whose [k]-th column is column
    [cols.(k)] of [m]. *)

val pp : Format.formatter -> t -> unit
