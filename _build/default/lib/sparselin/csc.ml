type t = {
  nrows : int;
  ncols : int;
  colptr : int array; (* length ncols + 1 *)
  rowind : int array; (* length nnz, sorted within each column *)
  values : float array; (* length nnz *)
}

type builder = {
  b_nrows : int;
  b_ncols : int;
  mutable rows : int array;
  mutable cols : int array;
  mutable vals : float array;
  mutable len : int;
}

let builder ~nrows ~ncols =
  if nrows < 0 || ncols < 0 then invalid_arg "Csc.builder: negative dimension";
  { b_nrows = nrows; b_ncols = ncols;
    rows = Array.make 16 0; cols = Array.make 16 0; vals = Array.make 16 0.;
    len = 0 }

let grow b =
  let cap = Array.length b.rows in
  let cap' = (2 * cap) + 1 in
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 b.len;
    a'
  in
  b.rows <- extend b.rows 0;
  b.cols <- extend b.cols 0;
  b.vals <- extend b.vals 0.

let add b ~row ~col v =
  if row < 0 || row >= b.b_nrows then invalid_arg "Csc.add: row out of range";
  if col < 0 || col >= b.b_ncols then invalid_arg "Csc.add: col out of range";
  if b.len = Array.length b.rows then grow b;
  b.rows.(b.len) <- row;
  b.cols.(b.len) <- col;
  b.vals.(b.len) <- v;
  b.len <- b.len + 1

let finalize b =
  let nrows = b.b_nrows and ncols = b.b_ncols in
  (* Counting sort by column, then sort each column's rows and merge
     duplicates. *)
  let counts = Array.make (ncols + 1) 0 in
  for k = 0 to b.len - 1 do
    counts.(b.cols.(k) + 1) <- counts.(b.cols.(k) + 1) + 1
  done;
  for j = 1 to ncols do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let pos = Array.copy counts in
  let rowind = Array.make b.len 0 and values = Array.make b.len 0. in
  for k = 0 to b.len - 1 do
    let j = b.cols.(k) in
    rowind.(pos.(j)) <- b.rows.(k);
    values.(pos.(j)) <- b.vals.(k);
    pos.(j) <- pos.(j) + 1
  done;
  (* Sort and deduplicate each column in place, writing compacted output. *)
  let out_rows = Array.make b.len 0 and out_vals = Array.make b.len 0. in
  let colptr = Array.make (ncols + 1) 0 in
  let out = ref 0 in
  for j = 0 to ncols - 1 do
    colptr.(j) <- !out;
    let lo = counts.(j) and hi = counts.(j + 1) in
    let width = hi - lo in
    if width > 0 then begin
      let idx = Array.init width (fun k -> lo + k) in
      Array.sort (fun a b -> compare rowind.(a) rowind.(b)) idx;
      let k = ref 0 in
      while !k < width do
        let row = rowind.(idx.(!k)) in
        let acc = ref 0. in
        while !k < width && rowind.(idx.(!k)) = row do
          acc := !acc +. values.(idx.(!k));
          incr k
        done;
        if !acc <> 0. then begin
          out_rows.(!out) <- row;
          out_vals.(!out) <- !acc;
          incr out
        end
      done
    end
  done;
  colptr.(ncols) <- !out;
  { nrows; ncols;
    colptr;
    rowind = Array.sub out_rows 0 !out;
    values = Array.sub out_vals 0 !out }

let nrows m = m.nrows
let ncols m = m.ncols
let nnz m = m.colptr.(m.ncols)

let col_nnz m j = m.colptr.(j + 1) - m.colptr.(j)

let iter_col m j f =
  if j < 0 || j >= m.ncols then invalid_arg "Csc.iter_col: col out of range";
  for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
    f m.rowind.(k) m.values.(k)
  done

let fold_col m j ~init ~f =
  if j < 0 || j >= m.ncols then invalid_arg "Csc.fold_col: col out of range";
  let acc = ref init in
  for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
    acc := f !acc m.rowind.(k) m.values.(k)
  done;
  !acc

let dot_col m j v =
  let acc = ref 0. in
  for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
    acc := !acc +. (m.values.(k) *. Array.unsafe_get v m.rowind.(k))
  done;
  !acc

let scatter_col m j v =
  for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
    let r = m.rowind.(k) in
    Array.unsafe_set v r (Array.unsafe_get v r +. m.values.(k))
  done

let column m j =
  if j < 0 || j >= m.ncols then invalid_arg "Csc.column: col out of range";
  Array.init (col_nnz m j) (fun k ->
      let p = m.colptr.(j) + k in
      (m.rowind.(p), m.values.(p)))

let get m i j =
  if i < 0 || i >= m.nrows then invalid_arg "Csc.get: row out of range";
  if j < 0 || j >= m.ncols then invalid_arg "Csc.get: col out of range";
  let lo = ref m.colptr.(j) and hi = ref (m.colptr.(j + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = m.rowind.(mid) in
    if r = i then begin
      found := m.values.(mid);
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let matvec m x =
  if Array.length x <> m.ncols then invalid_arg "Csc.matvec: size mismatch";
  let y = Array.make m.nrows 0. in
  for j = 0 to m.ncols - 1 do
    let xj = x.(j) in
    if xj <> 0. then
      for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
        y.(m.rowind.(k)) <- y.(m.rowind.(k)) +. (m.values.(k) *. xj)
      done
  done;
  y

let matvec_t m y =
  if Array.length y <> m.nrows then invalid_arg "Csc.matvec_t: size mismatch";
  let x = Array.make m.ncols 0. in
  for j = 0 to m.ncols - 1 do
    let acc = ref 0. in
    for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
      acc := !acc +. (m.values.(k) *. y.(m.rowind.(k)))
    done;
    x.(j) <- !acc
  done;
  x

let to_dense m =
  let d = Array.make_matrix m.nrows m.ncols 0. in
  for j = 0 to m.ncols - 1 do
    for k = m.colptr.(j) to m.colptr.(j + 1) - 1 do
      d.(m.rowind.(k)).(j) <- m.values.(k)
    done
  done;
  d

let of_dense d =
  let nrows = Array.length d in
  let ncols = if nrows = 0 then 0 else Array.length d.(0) in
  let b = builder ~nrows ~ncols in
  for i = 0 to nrows - 1 do
    if Array.length d.(i) <> ncols then
      invalid_arg "Csc.of_dense: ragged matrix";
    for j = 0 to ncols - 1 do
      if d.(i).(j) <> 0. then add b ~row:i ~col:j d.(i).(j)
    done
  done;
  finalize b

let select_columns m cols =
  let b = builder ~nrows:m.nrows ~ncols:(Array.length cols) in
  Array.iteri
    (fun k j -> iter_col m j (fun row v -> add b ~row ~col:k v))
    cols;
  finalize b

let pp ppf m =
  Format.fprintf ppf "@[<v>%dx%d, %d nnz" m.nrows m.ncols (nnz m);
  for j = 0 to m.ncols - 1 do
    iter_col m j (fun i v -> Format.fprintf ppf "@,(%d,%d) = %g" i j v)
  done;
  Format.fprintf ppf "@]"
