(** Product-form-of-the-inverse updates for the revised simplex basis.

    After a pivot that replaces basis position [pos] with a column whose
    FTRAN image is [alpha], the new basis satisfies [B' = B * E] where [E]
    is the identity with column [pos] replaced by [alpha]. A file of such
    eta matrices composes with an {!Lu} factorization to represent the
    current basis inverse between refactorizations. *)

type t
(** One eta matrix. *)

val make : pos:int -> alpha:float array -> t
(** [make ~pos ~alpha] captures the nonzeros of [alpha] (the FTRAN'd
    entering column). Raises [Invalid_argument] if the diagonal element
    [alpha.(pos)] is too close to zero to pivot on. *)

val pos : t -> int

val diag : t -> float

val apply_ftran : t -> float array -> unit
(** [apply_ftran e x] overwrites [x] with [E^-1 x]. *)

val apply_btran : t -> float array -> unit
(** [apply_btran e y] overwrites [y] with [E^-T y]. *)

val nnz : t -> int
