type t = {
  pos : int;
  diag : float;
  (* Off-diagonal nonzeros of the eta column, stored as parallel arrays to
     avoid boxing: these are built once per simplex pivot from a dense
     FTRAN result and traversed on every subsequent solve. *)
  off_idx : int array;
  off_val : float array;
}

let make ~pos ~alpha =
  let d = alpha.(pos) in
  if abs_float d < 1e-11 then
    invalid_arg "Eta.make: pivot element too small";
  let n = Array.length alpha in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if i <> pos && alpha.(i) <> 0. then incr count
  done;
  let off_idx = Array.make !count 0 in
  let off_val = Array.make !count 0. in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if i <> pos && alpha.(i) <> 0. then begin
      off_idx.(!k) <- i;
      off_val.(!k) <- alpha.(i);
      incr k
    end
  done;
  { pos; diag = d; off_idx; off_val }

let pos e = e.pos
let diag e = e.diag
let nnz e = Array.length e.off_idx + 1

(* E^-1 x: x'_pos = x_pos / d, then x'_i = x_i - off_i * x'_pos. *)
let apply_ftran e x =
  let xp = x.(e.pos) /. e.diag in
  x.(e.pos) <- xp;
  if xp <> 0. then
    for k = 0 to Array.length e.off_idx - 1 do
      let i = Array.unsafe_get e.off_idx k in
      Array.unsafe_set x i
        (Array.unsafe_get x i -. (Array.unsafe_get e.off_val k *. xp))
    done

(* E^-T y: y'_pos = (y_pos - sum_i off_i * y_i) / d, others unchanged. *)
let apply_btran e y =
  let acc = ref y.(e.pos) in
  for k = 0 to Array.length e.off_idx - 1 do
    acc :=
      !acc
      -. (Array.unsafe_get e.off_val k
          *. Array.unsafe_get y (Array.unsafe_get e.off_idx k))
  done;
  y.(e.pos) <- !acc /. e.diag
