type mat = float array array

let make m n = Array.make_matrix m n 0.

let identity n =
  let a = make n n in
  for i = 0 to n - 1 do
    a.(i).(i) <- 1.
  done;
  a

let copy a = Array.map Array.copy a

let dims a =
  let m = Array.length a in
  (m, if m = 0 then 0 else Array.length a.(0))

let matmul a b =
  let m, k = dims a and k', n = dims b in
  if k <> k' then invalid_arg "Dense.matmul: dimension mismatch";
  let c = make m n in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = a.(i).(p) in
      if aip <> 0. then
        for j = 0 to n - 1 do
          c.(i).(j) <- c.(i).(j) +. (aip *. b.(p).(j))
        done
    done
  done;
  c

let matvec a x =
  let m, n = dims a in
  if Array.length x <> n then invalid_arg "Dense.matvec: dimension mismatch";
  Array.init m (fun i ->
      let acc = ref 0. in
      for j = 0 to n - 1 do
        acc := !acc +. (a.(i).(j) *. x.(j))
      done;
      !acc)

let transpose a =
  let m, n = dims a in
  let t = make n m in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      t.(j).(i) <- a.(i).(j)
    done
  done;
  t

(* In-place LU with partial pivoting on a working copy; returns the
   permutation or None if singular. *)
let lu_decompose work =
  let n = Array.length work in
  let perm = Array.init n (fun i -> i) in
  let ok = ref true in
  (try
     for k = 0 to n - 1 do
       let best = ref k and best_abs = ref (abs_float work.(k).(k)) in
       for i = k + 1 to n - 1 do
         let a = abs_float work.(i).(k) in
         if a > !best_abs then begin
           best := i;
           best_abs := a
         end
       done;
       if !best_abs < 1e-12 then begin
         ok := false;
         raise Exit
       end;
       if !best <> k then begin
         let tmp = work.(k) in
         work.(k) <- work.(!best);
         work.(!best) <- tmp;
         let tp = perm.(k) in
         perm.(k) <- perm.(!best);
         perm.(!best) <- tp
       end;
       for i = k + 1 to n - 1 do
         let factor = work.(i).(k) /. work.(k).(k) in
         work.(i).(k) <- factor;
         if factor <> 0. then
           for j = k + 1 to n - 1 do
             work.(i).(j) <- work.(i).(j) -. (factor *. work.(k).(j))
           done
       done
     done
   with Exit -> ());
  if !ok then Some perm else None

let lu_apply work perm b =
  let n = Array.length work in
  let x = Array.init n (fun i -> b.(perm.(i))) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (work.(i).(j) *. x.(j))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (work.(i).(j) *. x.(j))
    done;
    x.(i) <- x.(i) /. work.(i).(i)
  done;
  x

let lu_solve a b =
  let m, n = dims a in
  if m <> n || Array.length b <> n then
    invalid_arg "Dense.lu_solve: dimension mismatch";
  let work = copy a in
  match lu_decompose work with
  | None -> None
  | Some perm -> Some (lu_apply work perm b)

let lu_solve_many a rhs =
  let m, n = dims a in
  let rm, rn = dims rhs in
  if m <> n || rm <> n then invalid_arg "Dense.lu_solve_many: dimension mismatch";
  let work = copy a in
  match lu_decompose work with
  | None -> None
  | Some perm ->
      let sol = make n rn in
      for j = 0 to rn - 1 do
        let b = Array.init n (fun i -> rhs.(i).(j)) in
        let x = lu_apply work perm b in
        for i = 0 to n - 1 do
          sol.(i).(j) <- x.(i)
        done
      done;
      Some sol

let cholesky a =
  let m, n = dims a in
  if m <> n then invalid_arg "Dense.cholesky: not square";
  let l = make n n in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to i do
         let acc = ref a.(i).(j) in
         for k = 0 to j - 1 do
           acc := !acc -. (l.(i).(k) *. l.(j).(k))
         done;
         if i = j then begin
           if !acc <= 1e-14 then begin
             ok := false;
             raise Exit
           end;
           l.(i).(i) <- sqrt !acc
         end
         else l.(i).(j) <- !acc /. l.(j).(j)
       done
     done
   with Exit -> ());
  if !ok then Some l else None

let cholesky_solve a b =
  match cholesky a with
  | None -> None
  | Some l ->
      let n = Array.length b in
      let y = Array.make n 0. in
      for i = 0 to n - 1 do
        let acc = ref b.(i) in
        for k = 0 to i - 1 do
          acc := !acc -. (l.(i).(k) *. y.(k))
        done;
        y.(i) <- !acc /. l.(i).(i)
      done;
      let x = Array.make n 0. in
      for i = n - 1 downto 0 do
        let acc = ref y.(i) in
        for k = i + 1 to n - 1 do
          acc := !acc -. (l.(k).(i) *. x.(k))
        done;
        x.(i) <- !acc /. l.(i).(i)
      done;
      Some x

let max_abs_diff a b =
  let m, n = dims a and m', n' = dims b in
  if m <> m' || n <> n' then invalid_arg "Dense.max_abs_diff: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      acc := max !acc (abs_float (a.(i).(j) -. b.(i).(j)))
    done
  done;
  !acc
