(* SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny generator with
   excellent statistical quality for simulation purposes, trivially seedable
   and splittable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy rng = { state = rng.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix rng.state

let split rng =
  let seed = next_int64 rng in
  (* Remix so that the child stream does not overlap a future parent output. *)
  create (mix (Int64.logxor seed 0xD1B54A32D192ED03L))

let bits30 rng = Int64.to_int (Int64.shift_right_logical (next_int64 rng) 34)

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits30 rng land (bound - 1)
  else begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let r = bits30 rng in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end

let int_incl rng lo hi =
  if hi < lo then invalid_arg "Rng.int_incl: hi < lo";
  lo + int rng (hi - lo + 1)

let float rng bound =
  let bits53 = Int64.to_int (Int64.shift_right_logical (next_int64 rng) 11) in
  float_of_int bits53 /. 9007199254740992.0 *. bound

let float_range rng lo hi =
  if hi < lo then invalid_arg "Rng.float_range: hi < lo";
  lo +. float rng (hi -. lo)

let bool rng = Int64.logand (next_int64 rng) 1L = 1L

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose rng a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int rng (Array.length a))
