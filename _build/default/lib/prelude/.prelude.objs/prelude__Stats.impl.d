lib/prelude/stats.ml: Array
