lib/prelude/heap.mli:
