lib/prelude/stats.mli:
