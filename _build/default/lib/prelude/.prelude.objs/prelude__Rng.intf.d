lib/prelude/rng.mli:
