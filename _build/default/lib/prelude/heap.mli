(** Mutable binary min-heap keyed by floats, used by Dijkstra-style
    algorithms. Stale entries are tolerated: decrease-key is implemented by
    reinsertion, and consumers skip entries whose key is out of date. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key. *)

val clear : 'a t -> unit
