(** Deterministic pseudo-random number generation.

    A small, fast, seedable generator (SplitMix64) used everywhere in the
    repository so that workloads, property tests and benchmarks are exactly
    reproducible from an integer seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy rng] is an independent generator that will produce the same future
    stream as [rng] produces from this point. *)

val split : t -> t
(** [split rng] advances [rng] and returns a new generator whose stream is
    statistically independent from the remainder of [rng]'s stream. Used to
    give each simulation run its own substream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int rng bound] is uniform over [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl rng lo hi] is uniform over [lo, hi] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float rng bound] is uniform over [0, bound). *)

val float_range : t -> float -> float -> float
(** [float_range rng lo hi] is uniform over [lo, hi). Raises
    [Invalid_argument] if [hi < lo]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
