let sum a = Array.fold_left ( +. ) 0. a

let mean a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.mean: empty array";
  sum a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    !acc /. float_of_int (n - 1)
  end

let stddev a = sqrt (variance a)

let std_error a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.std_error: empty array";
  stddev a /. sqrt (float_of_int n)

(* Two-sided 95% critical values (0.975 quantile) of Student's t. *)
let t_table =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_critical_95 dof =
  if dof < 1 then invalid_arg "Stats.t_critical_95: dof < 1";
  if dof <= Array.length t_table then t_table.(dof - 1)
  else if dof <= 40 then 2.021
  else if dof <= 60 then 2.000
  else if dof <= 120 then 1.980
  else 1.960

let confidence_95 a =
  let n = Array.length a in
  let m = mean a in
  if n < 2 then (m, 0.)
  else (m, t_critical_95 (n - 1) *. std_error a)

let percentile_rank n q =
  if n <= 0 then invalid_arg "Stats.percentile_rank: n <= 0";
  let idx = int_of_float (ceil (q /. 100. *. float_of_int n)) - 1 in
  max 0 (min (n - 1) idx)

let percentile a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  sorted.(percentile_rank n q)

let fold_running_max a =
  let n = Array.length a in
  let b = Array.make n 0. in
  let acc = ref neg_infinity in
  for i = 0 to n - 1 do
    if a.(i) > !acc then acc := a.(i);
    b.(i) <- !acc
  done;
  b
