(** Descriptive statistics used by the simulator, the experiment runner and
    the percentile-based charging schemes. *)

val sum : float array -> float

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (denominator [n - 1]); [0.] when fewer than two
    samples. *)

val stddev : float array -> float

val std_error : float array -> float
(** Standard error of the mean: [stddev a /. sqrt n]. *)

val t_critical_95 : int -> float
(** [t_critical_95 dof] is the two-sided 95% critical value of Student's t
    distribution with [dof] degrees of freedom (the 0.975 quantile). Exact
    table values for small [dof], asymptotic value beyond the table. Raises
    [Invalid_argument] if [dof < 1]. *)

val confidence_95 : float array -> float * float
(** [confidence_95 samples] is [(mean, halfwidth)] of the Student-t 95%
    confidence interval for the mean. Halfwidth is [0.] for a single
    sample. *)

val percentile_rank : int -> float -> int
(** [percentile_rank n q] is the 0-based index of the q-th percentile under
    the charging-scheme convention of the paper (Sec. II-A): samples sorted
    ascending, index [ceil (q/100 * n) - 1], clamped to [0, n-1]. With
    [q = 100.] this selects the maximum. *)

val percentile : float array -> float -> float
(** [percentile samples q] sorts a copy of [samples] ascending and returns the
    value at [percentile_rank]. Raises [Invalid_argument] on an empty
    array. *)

val fold_running_max : float array -> float array
(** [fold_running_max a] returns [b] with [b.(i) = max a.(0..i)]. *)
