type var_map =
  | Shifted of int * float  (* x = offset + z *)
  | Negated of int * float  (* x = offset - z *)
  | Split of int * int  (* x = z+ - z- *)

type t = {
  a : Sparselin.Dense.mat;
  b : float array;
  c : float array;
  n_original_rows : int;
  flip_objective : bool;
  cost_constant : float;
  mapping : var_map array;
}

let of_model model =
  let n = Model.num_vars model in
  let mapping = Array.make n (Shifted (0, 0.)) in
  let n_z = ref 0 in
  let upper_rows = ref [] in
  let fresh () =
    let z = !n_z in
    incr n_z;
    z
  in
  for v = 0 to n - 1 do
    let var = Model.var_of_index model v in
    let l = Model.lower_bound model var and u = Model.upper_bound model var in
    if l > neg_infinity then begin
      let z = fresh () in
      mapping.(v) <- Shifted (z, l);
      if u < infinity then upper_rows := (z, u -. l) :: !upper_rows
    end
    else if u < infinity then mapping.(v) <- Negated (fresh (), u)
    else begin
      let zp = fresh () in
      let zm = fresh () in
      mapping.(v) <- Split (zp, zm)
    end
  done;
  let upper_rows = List.rev !upper_rows in
  let flip = Model.objective_sense model = Model.Maximize in
  let n_rows = Model.num_rows model in
  let n_upper = List.length upper_rows in
  (* Slack layout: one per model row with sense Le/Ge, one per upper-bound
     row. Count them first. *)
  let n_slack = ref n_upper in
  Model.iter_rows model (fun _ _ sense _ ->
      match sense with
      | Model.Le | Model.Ge -> incr n_slack
      | Model.Eq -> ());
  let width = !n_z + !n_slack in
  let m = n_rows + n_upper in
  let a = Sparselin.Dense.make m width in
  let b = Array.make m 0. in
  let c = Array.make width 0. in
  let cost_constant = ref 0. in
  for v = 0 to n - 1 do
    let var = Model.var_of_index model v in
    let c0 = Model.obj_coeff model var in
    let coeff = if flip then -.c0 else c0 in
    if coeff <> 0. then
      match mapping.(v) with
      | Shifted (z, off) ->
          c.(z) <- c.(z) +. coeff;
          cost_constant := !cost_constant +. (coeff *. off)
      | Negated (z, off) ->
          c.(z) <- c.(z) -. coeff;
          cost_constant := !cost_constant +. (coeff *. off)
      | Split (zp, zm) ->
          c.(zp) <- c.(zp) +. coeff;
          c.(zm) <- c.(zm) -. coeff
  done;
  let slack_at = ref !n_z in
  Model.iter_rows model (fun r terms sense rhs ->
      let r = (r :> int) in
      let rhs = ref rhs in
      List.iter
        (fun ((v : Model.var), coeff) ->
          match mapping.((v :> int)) with
          | Shifted (z, off) ->
              a.(r).(z) <- a.(r).(z) +. coeff;
              rhs := !rhs -. (coeff *. off)
          | Negated (z, off) ->
              a.(r).(z) <- a.(r).(z) -. coeff;
              rhs := !rhs -. (coeff *. off)
          | Split (zp, zm) ->
              a.(r).(zp) <- a.(r).(zp) +. coeff;
              a.(r).(zm) <- a.(r).(zm) -. coeff)
        terms;
      b.(r) <- !rhs;
      match sense with
      | Model.Le ->
          a.(r).(!slack_at) <- 1.;
          incr slack_at
      | Model.Ge ->
          a.(r).(!slack_at) <- -1.;
          incr slack_at
      | Model.Eq -> ());
  List.iteri
    (fun i (z, cap) ->
      let row = n_rows + i in
      a.(row).(z) <- 1.;
      a.(row).(!slack_at) <- 1.;
      incr slack_at;
      b.(row) <- cap)
    upper_rows;
  { a; b; c;
    n_original_rows = n_rows;
    flip_objective = flip;
    cost_constant = !cost_constant;
    mapping }

let a t = t.a
let b t = t.b
let c t = t.c
let n_original_rows t = t.n_original_rows
let flip_objective t = t.flip_objective

let restore_primal t z =
  Array.map
    (function
      | Shifted (zi, off) -> off +. z.(zi)
      | Negated (zi, off) -> off -. z.(zi)
      | Split (zp, zm) -> z.(zp) -. z.(zm))
    t.mapping

let model_objective t v =
  let with_const = v +. t.cost_constant in
  if t.flip_objective then -.with_const else with_const
