(** Light LP presolve: removes what is trivially decided before the
    simplex runs.

    Reductions applied to a fixpoint:
    - infeasible bound pairs ([lb > ub]) terminate immediately;
    - fixed variables ([lb = ub]) are substituted into rows and the
      objective;
    - empty rows are checked for consistency and dropped;
    - singleton rows ([a x <= b] etc.) are converted into bounds on their
      variable (equality singletons fix the variable, which can cascade).

    The reduced program preserves the optimal value up to the accumulated
    objective constant, and the reduction remembers enough to reconstruct a
    full primal assignment. Row duals of dropped rows are reported as zero
    (dropped rows are either redundant or absorbed into bounds). *)

type reduction

val presolve : Model.t -> [ `Reduced of Model.t * reduction | `Infeasible ]

val objective_offset : reduction -> float
(** Objective contribution of substituted variables: add it to the reduced
    model's optimum to recover the original optimum. *)

val kept_vars : reduction -> int array
(** Original indices of the reduced model's variables, in order. *)

val kept_rows : reduction -> int array

val restore_primal : reduction -> float array -> float array
(** Lift a reduced primal assignment back to the original variables. *)

val solve : ?params:Simplex.params -> Model.t -> Status.outcome
(** [presolve] then {!Simplex.solve}, with the solution mapped back to the
    original model's indexing and objective. *)
