type t = {
  a : Sparselin.Csc.t;
  b : float array;
  cost : float array;
  lb : float array;
  ub : float array;
  n_struct : int;
  n_rows : int;
  flip_objective : bool;
}

let of_model model =
  let n = Model.num_vars model and m = Model.num_rows model in
  let total = n + m in
  let flip = match Model.objective_sense model with
    | Model.Minimize -> false
    | Model.Maximize -> true
  in
  let cost = Array.make total 0. in
  let lb = Array.make total 0. and ub = Array.make total 0. in
  for v = 0 to n - 1 do
    let var = Model.var_of_index model v in
    let c = Model.obj_coeff model var in
    cost.(v) <- (if flip then -.c else c);
    lb.(v) <- Model.lower_bound model var;
    ub.(v) <- Model.upper_bound model var
  done;
  let b = Array.make m 0. in
  let builder = Sparselin.Csc.builder ~nrows:m ~ncols:total in
  Model.iter_rows model (fun r terms sense rhs ->
      let r = (r :> int) in
      List.iter
        (fun ((v : Model.var), c) ->
          Sparselin.Csc.add builder ~row:r ~col:(v :> int) c)
        terms;
      b.(r) <- rhs;
      let slack = n + r in
      Sparselin.Csc.add builder ~row:r ~col:slack 1.;
      match sense with
      | Model.Le ->
          lb.(slack) <- 0.;
          ub.(slack) <- infinity
      | Model.Ge ->
          lb.(slack) <- neg_infinity;
          ub.(slack) <- 0.
      | Model.Eq ->
          lb.(slack) <- 0.;
          ub.(slack) <- 0.);
  { a = Sparselin.Csc.finalize builder;
    b; cost; lb; ub;
    n_struct = n;
    n_rows = m;
    flip_objective = flip }

let total_vars t = t.n_struct + t.n_rows

let model_objective t v = if t.flip_objective then -.v else v
