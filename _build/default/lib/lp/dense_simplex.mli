(** Dense two-phase tableau simplex with Bland's rule.

    A deliberately independent implementation used as a correctness oracle
    for {!Simplex} in the property-test suite: it shares no code with the
    revised solver (no sparse matrices, no basis factorization, no bounded
    variables — general bounds are compiled away into shifts, splits and
    explicit rows). It is exponential-pivot-safe (Bland) but slow; use it
    only on small programs.

    The returned solution carries the primal assignment and objective in
    model terms. Dual values and reduced costs are reported as zero arrays:
    duality properties are tested against {!Simplex} directly. *)

val solve : ?max_iterations:int -> Model.t -> Status.outcome
