(** A primal-dual interior-point method (Mehrotra predictor-corrector)
    for small dense linear programs.

    The paper solved the Postcard program with MATLAB's [fmincon], an
    interior-point solver; this module provides the same algorithmic family
    as an independent cross-check of the revised simplex. It compiles the
    model to dense equality form ({!Dense_form}) and iterates on the
    perturbed KKT system, solving the normal equations [A D A^T dy = r]
    with a dense Cholesky factorization.

    Scope: feasible, bounded programs of modest size (the normal equations
    are dense). Infeasible or unbounded inputs are reported as
    [Iteration_limit] after failing to converge — use {!Simplex} when
    status classification matters. Reported duals cover the model's own
    rows; reduced costs are the final dual slacks. *)

val solve :
  ?max_iterations:int -> ?tolerance:float -> Model.t -> Status.outcome
(** Defaults: [max_iterations = 100], [tolerance = 1e-8] on the relative
    primal/dual residuals and the duality measure. *)
