type solution = {
  objective : float;
  primal : float array;
  dual : float array;
  reduced_costs : float array;
  iterations : int;
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

let is_optimal = function Optimal _ -> true | Infeasible | Unbounded | Iteration_limit -> false

let get_optimal = function
  | Optimal s -> s
  | Infeasible -> failwith "Lp.Status.get_optimal: infeasible"
  | Unbounded -> failwith "Lp.Status.get_optimal: unbounded"
  | Iteration_limit -> failwith "Lp.Status.get_optimal: iteration limit"

let pp_outcome ppf = function
  | Optimal s ->
      Format.fprintf ppf "optimal (objective %g, %d iterations)" s.objective
        s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"
