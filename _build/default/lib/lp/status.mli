(** Solver outcome types shared by the revised simplex and the dense
    oracle. *)

type solution = {
  objective : float;  (** Objective value in the model's own sense. *)
  primal : float array;  (** One value per model variable. *)
  dual : float array;  (** One value per model row (simplex multipliers). *)
  reduced_costs : float array;  (** One value per model variable. *)
  iterations : int;  (** Total simplex pivots across both phases. *)
}

type outcome =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

val is_optimal : outcome -> bool

val get_optimal : outcome -> solution
(** Raises [Failure] when the outcome is not [Optimal]; convenience for
    callers whose programs are feasible by construction. *)

val pp_outcome : Format.formatter -> outcome -> unit
