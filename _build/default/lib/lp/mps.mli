(** MPS (free-format) reading and writing for {!Model}.

    The venerable interchange format lets programs built here be checked
    against external solvers, and external instances be solved with this
    repository's simplex. Supported sections: [NAME], [ROWS] (N/L/G/E —
    exactly one objective row), [COLUMNS], [RHS], [BOUNDS]
    (UP/LO/FX/FR/MI/PL). [RANGES] and integrality markers are not
    supported and are reported as errors.

    Writing always produces [OBJSENSE]-free minimization-form MPS: a
    maximization model is written with negated objective coefficients and a
    comment noting the flip, so external solvers agree on the optimal
    point; {!read} of a written file recovers an equivalent minimization
    model. *)

val write : Model.t -> string

val to_file : Model.t -> string -> (unit, string) result

val read : string -> (Model.t, string) result
(** Parse from text; the error carries a line number. *)

val of_file : string -> (Model.t, string) result
