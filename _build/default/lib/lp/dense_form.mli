(** Compilation of a {!Model} into dense equality standard form

    {v min c.z   s.t.   A z = b,   z >= 0 v}

    used by the interior-point solver: general bounds become shifts,
    negations or splits plus explicit slack columns; every inequality row
    gains a slack/surplus column. Dense representation — small programs
    only. *)

type t

val of_model : Model.t -> t

val a : t -> Sparselin.Dense.mat
(** The m x n constraint matrix (row-major). Do not mutate. *)

val b : t -> float array

val c : t -> float array

val n_original_rows : t -> int
(** The first [n_original_rows] rows correspond 1:1 to model rows (the
    rest encode upper bounds). *)

val restore_primal : t -> float array -> float array
(** Map a standard-form solution [z] back to model variables. *)

val model_objective : t -> float -> float
(** Map a standard-form objective value back to the model's sense,
    including the substitution constant. *)

val flip_objective : t -> bool
