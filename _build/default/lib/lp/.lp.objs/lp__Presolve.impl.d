lib/lp/presolve.ml: Array Hashtbl List Model Simplex Status
