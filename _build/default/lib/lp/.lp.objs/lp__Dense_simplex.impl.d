lib/lp/dense_simplex.ml: Array List Model Status
