lib/lp/interior_point.mli: Model Status
