lib/lp/mps.mli: Model
