lib/lp/simplex.ml: Array Float List Logs Prelude Sparselin Standard_form Status
