lib/lp/interior_point.ml: Array Dense_form Float Model Sparselin Status
