lib/lp/dense_form.ml: Array List Model Sparselin
