lib/lp/standard_form.mli: Model Sparselin
