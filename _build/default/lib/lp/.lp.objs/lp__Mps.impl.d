lib/lp/mps.ml: Array Buffer Hashtbl In_channel List Model Option Out_channel Printf String
