lib/lp/standard_form.ml: Array List Model Sparselin
