lib/lp/presolve.mli: Model Simplex Status
