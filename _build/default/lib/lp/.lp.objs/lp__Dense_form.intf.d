lib/lp/dense_form.mli: Model Sparselin
