(** Conversion of a {!Model} into the computational standard form used by
    the revised simplex:

    {v min c.x   s.t.   A x = b,   lb <= x <= ub v}

    Columns [0 .. n_struct-1] are the model's variables in order; column
    [n_struct + i] is the logical (slack) variable of row [i], with bounds
    encoding the row sense: [0, +inf) for [<=], (-inf, 0] for [>=] and
    [0, 0] for [=]. Maximization is converted to minimization by negating
    the cost vector ([flip_objective] records this). *)

type t = {
  a : Sparselin.Csc.t;  (** m x (n_struct + m). *)
  b : float array;
  cost : float array;
  lb : float array;
  ub : float array;
  n_struct : int;
  n_rows : int;
  flip_objective : bool;
}

val of_model : Model.t -> t

val total_vars : t -> int
(** [n_struct + n_rows]. *)

val model_objective : t -> float -> float
(** Convert a standard-form objective value back to the model's sense. *)
