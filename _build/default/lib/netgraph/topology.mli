(** Inter-datacenter overlay topology generators.

    The paper's evaluation (Sec. VII) uses a complete directed graph over 20
    datacenters with per-unit costs uniform in [1, 10] and a common link
    capacity; {!complete} reproduces that construction from a seeded RNG.
    Additional shapes support the examples and extension experiments. *)

val complete :
  n:int -> rng:Prelude.Rng.t -> cost_lo:float -> cost_hi:float -> capacity:float -> Graph.t
(** Complete directed graph: an arc in both directions between every pair,
    each with an independent uniform cost in [cost_lo, cost_hi) and the
    given capacity. *)

val complete_symmetric :
  n:int -> rng:Prelude.Rng.t -> cost_lo:float -> cost_hi:float -> capacity:float -> Graph.t
(** Like {!complete} but the two directions of a pair share one sampled
    cost. *)

val ring : n:int -> cost:float -> capacity:float -> Graph.t
(** Bidirectional ring (arcs both ways between consecutive nodes). *)

val star : n:int -> hub:int -> cost:float -> capacity:float -> Graph.t
(** Bidirectional star centred at [hub]. *)

val of_cost_matrix : ?capacity:float -> float array array -> Graph.t
(** Graph from an explicit cost matrix: entry [(i, j)] with a positive,
    finite value becomes an arc [i -> j] with that per-unit cost. Diagonal
    entries are ignored. *)
