lib/netgraph/mincostflow.ml: Array Float Graph Maxflow Prelude
