lib/netgraph/maxflow.ml: Array Graph List Queue
