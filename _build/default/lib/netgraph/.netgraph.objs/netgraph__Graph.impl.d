lib/netgraph/graph.ml: Array Float Format List
