lib/netgraph/paths.mli: Graph
