lib/netgraph/maxflow.mli: Graph
