lib/netgraph/paths.ml: Array Graph List Prelude
