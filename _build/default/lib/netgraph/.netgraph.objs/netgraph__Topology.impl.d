lib/netgraph/topology.ml: Array Graph Prelude
