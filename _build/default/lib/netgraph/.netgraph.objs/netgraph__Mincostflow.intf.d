lib/netgraph/mincostflow.mli: Graph
