lib/netgraph/topology.mli: Graph Prelude
