(** Maximum flow by Dinic's algorithm (BFS level graph + blocking flows).

    Capacities are floats and may be infinite; an augmenting path made
    entirely of infinite-capacity arcs yields an infinite flow value. *)

type result = {
  value : float;  (** Total flow shipped from source to sink. *)
  flow : float array;  (** Flow on each arc, indexed by arc id. *)
}

val max_flow : Graph.t -> src:int -> dst:int -> result

val min_cut : Graph.t -> src:int -> dst:int -> result * bool array
(** Max flow plus the source side of a minimum cut (reachability in the
    final residual network). *)
