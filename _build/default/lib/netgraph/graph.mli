(** Directed graphs with float capacities and per-unit costs on arcs.

    Nodes are dense integers [0 .. num_nodes - 1]; arcs carry an id in
    insertion order. Parallel arcs are allowed. This is the shared
    representation for the inter-datacenter overlay ({!Topology}), the
    combinatorial flow algorithms ({!Maxflow}, {!Mincostflow}) and the
    time-expanded construction in the [timexp] library. *)

type t

type arc = {
  id : int;
  src : int;
  dst : int;
  capacity : float;
  cost : float;  (** Cost per unit of traffic. *)
}

val create : n:int -> t
(** Graph with [n] nodes and no arcs. *)

val add_node : t -> int
(** Append a node, returning its index. *)

val add_arc : t -> src:int -> dst:int -> ?capacity:float -> ?cost:float -> unit -> int
(** Add an arc and return its id. Defaults: infinite capacity, zero cost.
    Raises [Invalid_argument] on out-of-range endpoints, negative capacity
    or a self-loop. *)

val num_nodes : t -> int
val num_arcs : t -> int

val arc : t -> int -> arc

val out_arcs : t -> int -> int list
(** Ids of arcs leaving a node, in insertion order. *)

val in_arcs : t -> int -> int list

val find_arc : t -> src:int -> dst:int -> int option
(** First arc from [src] to [dst], if any. *)

val iter_arcs : t -> (arc -> unit) -> unit
val fold_arcs : t -> init:'a -> f:('a -> arc -> 'a) -> 'a

val map_capacities : t -> (arc -> float) -> t
(** Functional update of every arc capacity. *)

val reverse : t -> t
(** Same nodes, every arc reversed (ids preserved). *)

val pp : Format.formatter -> t -> unit
