type result = {
  value : float;
  flow : float array;
}

(* Residual network as flat arrays: edge 2k is the forward copy of arc k,
   edge 2k+1 its reverse. *)
type residual = {
  to_ : int array;
  cap : float array;
  (* Out-edges of each node. *)
  adj : int array array;
}

let residual_of_graph g =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let to_ = Array.make (2 * m) 0 in
  let cap = Array.make (2 * m) 0. in
  let deg = Array.make n 0 in
  Graph.iter_arcs g (fun a ->
      to_.(2 * a.Graph.id) <- a.Graph.dst;
      cap.(2 * a.Graph.id) <- a.Graph.capacity;
      to_.((2 * a.Graph.id) + 1) <- a.Graph.src;
      cap.((2 * a.Graph.id) + 1) <- 0.;
      deg.(a.Graph.src) <- deg.(a.Graph.src) + 1;
      deg.(a.Graph.dst) <- deg.(a.Graph.dst) + 1);
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Graph.iter_arcs g (fun a ->
      adj.(a.Graph.src).(fill.(a.Graph.src)) <- 2 * a.Graph.id;
      fill.(a.Graph.src) <- fill.(a.Graph.src) + 1;
      adj.(a.Graph.dst).(fill.(a.Graph.dst)) <- (2 * a.Graph.id) + 1;
      fill.(a.Graph.dst) <- fill.(a.Graph.dst) + 1);
  { to_; cap; adj }

let eps = 1e-9

(* BFS levels in the residual network; [-1] for unreachable. *)
let levels r ~n ~src =
  let level = Array.make n (-1) in
  let queue = Queue.create () in
  level.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun e ->
        let v = r.to_.(e) in
        if r.cap.(e) > eps && level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.push v queue
        end)
      r.adj.(u)
  done;
  level

let max_flow g ~src ~dst =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Maxflow.max_flow: endpoint out of range";
  if src = dst then invalid_arg "Maxflow.max_flow: src = dst";
  let r = residual_of_graph g in
  let total = ref 0. in
  let continue = ref true in
  while !continue do
    let level = levels r ~n ~src in
    if level.(dst) < 0 then continue := false
    else begin
      let iter = Array.make n 0 in
      (* DFS blocking flow with an explicit bound on pushed amount. *)
      let rec dfs u pushed =
        if u = dst then pushed
        else begin
          let sent = ref 0. in
          while !sent = 0. && iter.(u) < Array.length r.adj.(u) do
            let e = r.adj.(u).(iter.(u)) in
            let v = r.to_.(e) in
            if r.cap.(e) > eps && level.(v) = level.(u) + 1 then begin
              let amount = dfs v (min pushed r.cap.(e)) in
              if amount > 0. then begin
                r.cap.(e) <- r.cap.(e) -. amount;
                r.cap.(e lxor 1) <- r.cap.(e lxor 1) +. amount;
                sent := amount
              end
              else iter.(u) <- iter.(u) + 1
            end
            else iter.(u) <- iter.(u) + 1
          done;
          !sent
        end
      in
      let rec pump () =
        let amount = dfs src infinity in
        if amount > 0. then begin
          total := !total +. amount;
          if amount < infinity then pump ()
          (* An infinite augmenting path saturates nothing; stop. *)
        end
      in
      pump ();
      if !total = infinity then continue := false
    end
  done;
  let flow =
    Array.init m (fun k ->
        (* Flow on arc k is what accumulated on its reverse edge. *)
        r.cap.((2 * k) + 1))
  in
  { value = !total; flow }

let min_cut g ~src ~dst =
  let res = max_flow g ~src ~dst in
  (* Rebuild the final residual from the flow to compute reachability. *)
  let n = Graph.num_nodes g in
  let reachable = Array.make n false in
  let queue = Queue.create () in
  reachable.(src) <- true;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun id ->
        let a = Graph.arc g id in
        if a.Graph.capacity -. res.flow.(id) > eps && not reachable.(a.Graph.dst)
        then begin
          reachable.(a.Graph.dst) <- true;
          Queue.push a.Graph.dst queue
        end)
      (Graph.out_arcs g u);
    List.iter
      (fun id ->
        let a = Graph.arc g id in
        if res.flow.(id) > eps && not reachable.(a.Graph.src) then begin
          reachable.(a.Graph.src) <- true;
          Queue.push a.Graph.src queue
        end)
      (Graph.in_arcs g u)
  done;
  (res, reachable)
