(** Minimum-cost flow by successive shortest augmenting paths with node
    potentials (Dijkstra on reduced costs).

    This combinatorial solver serves two purposes: it is a building block
    of the flow-based baseline, and it cross-checks the LP solver — on a
    single-commodity instance the LP optimum must equal the SSP optimum. *)

type result = {
  flow : float array;  (** Flow per arc id. *)
  cost : float;  (** Total cost [sum over arcs of flow * cost]. *)
  value : float;  (** Amount shipped from source to sink. *)
}

val min_cost_flow :
  Graph.t -> src:int -> dst:int -> amount:float -> result option
(** Ship exactly [amount] units at minimum cost; [None] when the network
    cannot carry that amount. Requires non-negative arc costs (raises
    [Invalid_argument] otherwise) and a finite [amount]. *)

val min_cost_max_flow : Graph.t -> src:int -> dst:int -> result
(** Ship the maximum possible amount (computed with {!Maxflow}) at minimum
    cost. The maximum must be finite. *)
