let complete ~n ~rng ~cost_lo ~cost_hi ~capacity =
  let g = Graph.create ~n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let cost = Prelude.Rng.float_range rng cost_lo cost_hi in
        ignore (Graph.add_arc g ~src:i ~dst:j ~capacity ~cost ())
      end
    done
  done;
  g

let complete_symmetric ~n ~rng ~cost_lo ~cost_hi ~capacity =
  let g = Graph.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let cost = Prelude.Rng.float_range rng cost_lo cost_hi in
      ignore (Graph.add_arc g ~src:i ~dst:j ~capacity ~cost ());
      ignore (Graph.add_arc g ~src:j ~dst:i ~capacity ~cost ())
    done
  done;
  g

let ring ~n ~cost ~capacity =
  if n < 2 then invalid_arg "Topology.ring: need at least 2 nodes";
  let g = Graph.create ~n in
  for i = 0 to n - 1 do
    let j = (i + 1) mod n in
    ignore (Graph.add_arc g ~src:i ~dst:j ~capacity ~cost ());
    ignore (Graph.add_arc g ~src:j ~dst:i ~capacity ~cost ())
  done;
  g

let star ~n ~hub ~cost ~capacity =
  if hub < 0 || hub >= n then invalid_arg "Topology.star: hub out of range";
  let g = Graph.create ~n in
  for i = 0 to n - 1 do
    if i <> hub then begin
      ignore (Graph.add_arc g ~src:hub ~dst:i ~capacity ~cost ());
      ignore (Graph.add_arc g ~src:i ~dst:hub ~capacity ~cost ())
    end
  done;
  g

let of_cost_matrix ?(capacity = infinity) costs =
  let n = Array.length costs in
  let g = Graph.create ~n in
  for i = 0 to n - 1 do
    if Array.length costs.(i) <> n then
      invalid_arg "Topology.of_cost_matrix: ragged matrix";
    for j = 0 to n - 1 do
      let c = costs.(i).(j) in
      if i <> j && c > 0. && c < infinity then
        ignore (Graph.add_arc g ~src:i ~dst:j ~capacity ~cost:c ())
    done
  done;
  g
