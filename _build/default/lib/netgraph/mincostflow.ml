type result = {
  flow : float array;
  cost : float;
  value : float;
}

let eps = 1e-9

(* Residual edges: 2k forward (cost c), 2k+1 backward (cost -c). *)
type residual = {
  to_ : int array;
  cap : float array;
  cost : float array;
  adj : int array array;
}

let residual_of_graph g =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  let to_ = Array.make (2 * m) 0 in
  let cap = Array.make (2 * m) 0. in
  let cost = Array.make (2 * m) 0. in
  let deg = Array.make n 0 in
  Graph.iter_arcs g (fun a ->
      if a.Graph.cost < 0. then
        invalid_arg "Mincostflow: negative arc cost";
      let f = 2 * a.Graph.id in
      to_.(f) <- a.Graph.dst;
      cap.(f) <- a.Graph.capacity;
      cost.(f) <- a.Graph.cost;
      to_.(f + 1) <- a.Graph.src;
      cap.(f + 1) <- 0.;
      cost.(f + 1) <- -.a.Graph.cost;
      deg.(a.Graph.src) <- deg.(a.Graph.src) + 1;
      deg.(a.Graph.dst) <- deg.(a.Graph.dst) + 1);
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Graph.iter_arcs g (fun a ->
      adj.(a.Graph.src).(fill.(a.Graph.src)) <- 2 * a.Graph.id;
      fill.(a.Graph.src) <- fill.(a.Graph.src) + 1;
      adj.(a.Graph.dst).(fill.(a.Graph.dst)) <- (2 * a.Graph.id) + 1;
      fill.(a.Graph.dst) <- fill.(a.Graph.dst) + 1);
  { to_; cap; cost; adj }

(* Dijkstra on reduced costs cost(e) + pi(u) - pi(v) (non-negative by the
   potential invariant). Returns distances and the incoming residual edge
   per node. *)
let shortest r ~n ~src ~pi =
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let heap = Prelude.Heap.create () in
  dist.(src) <- 0.;
  Prelude.Heap.push heap 0. src;
  let continue = ref true in
  while !continue do
    match Prelude.Heap.pop_min heap with
    | None -> continue := false
    | Some (d, u) ->
        if d <= dist.(u) +. eps then
          Array.iter
            (fun e ->
              if r.cap.(e) > eps then begin
                let v = r.to_.(e) in
                let rc = r.cost.(e) +. pi.(u) -. pi.(v) in
                let rc = max rc 0. (* clamp tiny negatives from roundoff *) in
                let nd = d +. rc in
                if nd < dist.(v) -. 1e-12 then begin
                  dist.(v) <- nd;
                  pred.(v) <- e;
                  Prelude.Heap.push heap nd v
                end
              end)
            r.adj.(u)
  done;
  (dist, pred)

let min_cost_flow g ~src ~dst ~amount =
  let n = Graph.num_nodes g and m = Graph.num_arcs g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Mincostflow: endpoint out of range";
  if src = dst then invalid_arg "Mincostflow: src = dst";
  if Float.is_nan amount || amount = infinity || amount < 0. then
    invalid_arg "Mincostflow: amount must be finite and non-negative";
  let r = residual_of_graph g in
  let pi = Array.make n 0. in
  let remaining = ref amount in
  let feasible = ref true in
  while !remaining > eps && !feasible do
    let dist, pred = shortest r ~n ~src ~pi in
    if dist.(dst) = infinity then feasible := false
    else begin
      (* Bottleneck along the path. *)
      let rec bottleneck v acc =
        if v = src then acc
        else begin
          let e = pred.(v) in
          bottleneck r.to_.(e lxor 1) (min acc r.cap.(e))
        end
      in
      let push = min !remaining (bottleneck dst infinity) in
      let rec apply v =
        if v <> src then begin
          let e = pred.(v) in
          r.cap.(e) <- r.cap.(e) -. push;
          r.cap.(e lxor 1) <- r.cap.(e lxor 1) +. push;
          apply r.to_.(e lxor 1)
        end
      in
      apply dst;
      remaining := !remaining -. push;
      (* Update potentials with the new distances (reached nodes only). *)
      for v = 0 to n - 1 do
        if dist.(v) < infinity then pi.(v) <- pi.(v) +. dist.(v)
      done
    end
  done;
  if not !feasible then None
  else begin
    let flow = Array.init m (fun k -> r.cap.((2 * k) + 1)) in
    let cost =
      Graph.fold_arcs g ~init:0. ~f:(fun acc a ->
          acc +. (flow.(a.Graph.id) *. a.Graph.cost))
    in
    Some { flow; cost; value = amount }
  end

let min_cost_max_flow g ~src ~dst =
  let mf = Maxflow.max_flow g ~src ~dst in
  if mf.Maxflow.value = infinity then
    invalid_arg "Mincostflow.min_cost_max_flow: infinite maximum flow";
  match min_cost_flow g ~src ~dst ~amount:mf.Maxflow.value with
  | Some r -> r
  | None -> assert false (* the amount is feasible by construction *)
