type arc = {
  id : int;
  src : int;
  dst : int;
  capacity : float;
  cost : float;
}

type t = {
  mutable n : int;
  mutable arcs : arc array;
  mutable n_arcs : int;
  (* Adjacency lists in reverse insertion order; exposed reversed. *)
  mutable out_adj : int list array;
  mutable in_adj : int list array;
}

let create ~n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { n;
    arcs = [||];
    n_arcs = 0;
    out_adj = Array.make (max n 1) [];
    in_adj = Array.make (max n 1) [] }

let num_nodes g = g.n
let num_arcs g = g.n_arcs

let add_node g =
  let id = g.n in
  if id >= Array.length g.out_adj then begin
    let cap' = 2 * Array.length g.out_adj in
    let grow a =
      let a' = Array.make cap' [] in
      Array.blit a 0 a' 0 g.n;
      a'
    in
    g.out_adj <- grow g.out_adj;
    g.in_adj <- grow g.in_adj
  end;
  g.out_adj.(id) <- [];
  g.in_adj.(id) <- [];
  g.n <- id + 1;
  id

let add_arc g ~src ~dst ?(capacity = infinity) ?(cost = 0.) () =
  if src < 0 || src >= g.n then invalid_arg "Graph.add_arc: src out of range";
  if dst < 0 || dst >= g.n then invalid_arg "Graph.add_arc: dst out of range";
  if src = dst then invalid_arg "Graph.add_arc: self-loop";
  if capacity < 0. || Float.is_nan capacity then
    invalid_arg "Graph.add_arc: negative capacity";
  let id = g.n_arcs in
  if id = Array.length g.arcs then begin
    let cap' = max 16 (2 * Array.length g.arcs) in
    let arcs' = Array.make cap' { id = 0; src = 0; dst = 1; capacity = 0.; cost = 0. } in
    Array.blit g.arcs 0 arcs' 0 g.n_arcs;
    g.arcs <- arcs'
  end;
  g.arcs.(id) <- { id; src; dst; capacity; cost };
  g.n_arcs <- id + 1;
  g.out_adj.(src) <- id :: g.out_adj.(src);
  g.in_adj.(dst) <- id :: g.in_adj.(dst);
  id

let arc g id =
  if id < 0 || id >= g.n_arcs then invalid_arg "Graph.arc: id out of range";
  g.arcs.(id)

let out_arcs g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.out_arcs: node out of range";
  List.rev g.out_adj.(v)

let in_arcs g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.in_arcs: node out of range";
  List.rev g.in_adj.(v)

let find_arc g ~src ~dst =
  if src < 0 || src >= g.n then invalid_arg "Graph.find_arc: src out of range";
  let rec search = function
    | [] -> None
    | id :: rest -> if g.arcs.(id).dst = dst then Some id else search rest
  in
  (* Reverse order does not matter for existence, but return the first
     inserted for determinism. *)
  search (List.rev g.out_adj.(src))

let iter_arcs g f =
  for id = 0 to g.n_arcs - 1 do
    f g.arcs.(id)
  done

let fold_arcs g ~init ~f =
  let acc = ref init in
  iter_arcs g (fun a -> acc := f !acc a);
  !acc

let map_capacities g f =
  let g' = create ~n:g.n in
  iter_arcs g (fun a ->
      ignore
        (add_arc g' ~src:a.src ~dst:a.dst ~capacity:(f a) ~cost:a.cost ()));
  g'

let reverse g =
  let g' = create ~n:g.n in
  iter_arcs g (fun a ->
      ignore
        (add_arc g' ~src:a.dst ~dst:a.src ~capacity:a.capacity ~cost:a.cost ()));
  g'

let pp ppf g =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d arcs" g.n g.n_arcs;
  iter_arcs g (fun a ->
      Format.fprintf ppf "@,%d -> %d (capacity %g, cost %g)" a.src a.dst
        a.capacity a.cost);
  Format.fprintf ppf "@]"
