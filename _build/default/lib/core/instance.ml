module Graph = Netgraph.Graph

type t = {
  base : Graph.t;
  files : File.t list;
  charged : float array;
}

type parse_state = {
  mutable graph : Graph.t option;
  mutable files_rev : File.t list;
  (* Charged entries keyed by (src, dst), resolved to arc ids at the end. *)
  mutable charged_rev : (int * int * float) list;
}

let parse_line state lineno line =
  let fail fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt in
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Ok ()
  | keyword :: _ when String.length keyword > 0 && keyword.[0] = '#' -> Ok ()
  | [ "nodes"; n ] -> (
      match (state.graph, int_of_string_opt n) with
      | Some _, _ -> fail "duplicate nodes line"
      | None, Some n when n >= 1 ->
          state.graph <- Some (Graph.create ~n);
          Ok ()
      | None, (Some _ | None) -> fail "nodes needs a positive integer")
  | [ "link"; src; dst; cost; capacity ] -> (
      match state.graph with
      | None -> fail "link before nodes"
      | Some g -> (
          match
            ( int_of_string_opt src,
              int_of_string_opt dst,
              float_of_string_opt cost,
              float_of_string_opt capacity )
          with
          | Some src, Some dst, Some cost, Some capacity -> (
              match Graph.add_arc g ~src ~dst ~capacity ~cost () with
              | _ -> Ok ()
              | exception Invalid_argument msg -> fail "%s" msg)
          | _, _, _, _ -> fail "link needs: src dst price capacity"))
  | [ "file"; id; src; dst; size; deadline ] -> (
      match state.graph with
      | None -> fail "file before nodes"
      | Some g -> (
          match
            ( int_of_string_opt id,
              int_of_string_opt src,
              int_of_string_opt dst,
              float_of_string_opt size,
              int_of_string_opt deadline )
          with
          | Some id, Some src, Some dst, Some size, Some deadline -> (
              if src >= Graph.num_nodes g || dst >= Graph.num_nodes g then
                fail "file endpoint outside graph"
              else
                match
                  File.make ~id ~src ~dst ~size ~deadline ~release:0
                with
                | f ->
                    state.files_rev <- f :: state.files_rev;
                    Ok ()
                | exception Invalid_argument msg -> fail "%s" msg)
          | _, _, _, _, _ -> fail "file needs: id src dst size deadline"))
  | [ "charged"; src; dst; volume ] -> (
      match
        (int_of_string_opt src, int_of_string_opt dst, float_of_string_opt volume)
      with
      | Some src, Some dst, Some volume when volume >= 0. ->
          state.charged_rev <- (src, dst, volume) :: state.charged_rev;
          Ok ()
      | _, _, _ -> fail "charged needs: src dst volume")
  | keyword :: _ -> fail "unknown directive %S" keyword

let parse text =
  let state = { graph = None; files_rev = []; charged_rev = [] } in
  let lines = String.split_on_char '\n' text in
  let rec walk lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        match parse_line state lineno (String.trim line) with
        | Ok () -> walk (lineno + 1) rest
        | Error _ as e -> e)
  in
  match walk 1 lines with
  | Error msg -> Error msg
  | Ok () -> (
      match state.graph with
      | None -> Error "missing nodes line"
      | Some base ->
          let charged = Array.make (Graph.num_arcs base) 0. in
          let rec resolve = function
            | [] -> Ok ()
            | (src, dst, volume) :: rest -> (
                match Graph.find_arc base ~src ~dst with
                | Some id ->
                    charged.(id) <- volume;
                    resolve rest
                | None ->
                    Error
                      (Printf.sprintf "charged on missing link %d -> %d" src dst))
          in
          (match resolve state.charged_rev with
           | Error msg -> Error msg
           | Ok () ->
               Ok { base; files = List.rev state.files_rev; charged }))

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.num_nodes t.base));
  Graph.iter_arcs t.base (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "link %d %d %g %g\n" a.Graph.src a.Graph.dst
           a.Graph.cost a.Graph.capacity));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "file %d %d %d %g %d\n" f.File.id f.File.src f.File.dst
           f.File.size f.File.deadline))
    t.files;
  Graph.iter_arcs t.base (fun a ->
      if t.charged.(a.Graph.id) > 0. then
        Buffer.add_string buf
          (Printf.sprintf "charged %d %d %g\n" a.Graph.src a.Graph.dst
             t.charged.(a.Graph.id)));
  Buffer.contents buf
