(** A small text format for standalone Postcard instances, used by the
    [postcard_solve] command-line tool and handy for experiments:

    {v
    # comments and blank lines are ignored
    nodes 4
    link 0 3 6.0 5.0        # src dst price capacity
    link 1 0 1.0 5.0
    file 1 1 3 8.0 4        # id src dst size deadline
    charged 0 3 2.5         # optional: already-charged volume on a link
    v}

    Nodes are 0-based. Every [link]/[file]/[charged] line must appear after
    the [nodes] line. Files are released at epoch 0. *)

type t = {
  base : Netgraph.Graph.t;
  files : File.t list;
  charged : float array;  (** Indexed by arc id. *)
}

val parse : string -> (t, string) result
(** Parse from the full text contents. The error message carries the
    offending line number. *)

val of_file : string -> (t, string) result
(** Read and parse a file from disk. *)

val to_string : t -> string
(** Render back to the text format (stable round-trip modulo comments). *)
