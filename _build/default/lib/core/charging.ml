type scheme = { percentile : float }

let max_percentile = { percentile = 100. }

let scheme q =
  if q <= 0. || q > 100. || Float.is_nan q then
    invalid_arg "Charging.scheme: percentile must be in (0, 100]";
  { percentile = q }

let charged_volume s volumes =
  if Array.length volumes = 0 then 0.
  else Prelude.Stats.percentile volumes s.percentile

let charged_volume_prefix s volumes k =
  if k <= 0 then 0.
  else begin
    let k = min k (Array.length volumes) in
    charged_volume s (Array.sub volumes 0 k)
  end

type cost_function =
  | Linear of float
  | Piecewise of (float * float) list

let validate_cost_function = function
  | Linear a ->
      if a < 0. || Float.is_nan a then Error "Linear: negative price" else Ok ()
  | Piecewise [] -> Error "Piecewise: empty segment list"
  | Piecewise segments ->
      let rec check = function
        | [] -> Ok ()
        | (width, slope) :: rest ->
            if width <= 0. && rest <> [] then
              Error "Piecewise: non-positive segment width"
            else if slope < 0. then Error "Piecewise: negative slope"
            else check rest
      in
      check segments

let cost f x =
  if x < 0. || Float.is_nan x then invalid_arg "Charging.cost: negative volume";
  (match validate_cost_function f with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Charging.cost: " ^ msg));
  match f with
  | Linear a -> a *. x
  | Piecewise segments ->
      let rec eval x acc = function
        | [] -> acc
        | [ (_, slope) ] ->
            (* The final slope extends to infinity. *)
            acc +. (slope *. x)
        | (width, slope) :: rest ->
            if x <= width then acc +. (slope *. x)
            else eval (x -. width) (acc +. (slope *. width)) rest
      in
      eval x 0. segments
