let log_src = Logs.Src.create "postcard.scheduler" ~doc:"Postcard scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

let make ?params ?(tie_break = 1e-7) () =
  let schedule (ctx : Scheduler.context) files =
    if files = [] then
      { Scheduler.plan = Plan.empty; accepted = []; rejected = [] }
    else begin
      let capacity ~link ~layer = Scheduler.capacity_at_epoch ctx ~link ~layer in
      let try_solve subset =
        if subset = [] then
          Some
            (Formulate.Scheduled
               { plan = Plan.empty;
                 objective = 0.;
                 charged = Array.copy ctx.Scheduler.charged })
        else begin
          let formulation =
            Formulate.create ~base:ctx.Scheduler.base
              ~charged:ctx.Scheduler.charged ~capacity ~files:subset
              ~epoch:ctx.Scheduler.epoch ~tie_break ()
          in
          match Formulate.solve ?params formulation with
          | Formulate.Scheduled _ as s -> Some s
          | Formulate.Infeasible -> None
          | Formulate.Solver_failure msg ->
              Log.warn (fun m ->
                  m "epoch %d: solver failure (%s); treating as infeasible"
                    ctx.Scheduler.epoch msg);
              None
        end
      in
      match Scheduler.admit_greedy ~files ~try_solve with
      | Some (Formulate.Scheduled { plan; _ }, accepted, rejected) ->
          { Scheduler.plan; accepted; rejected }
      | Some ((Formulate.Infeasible | Formulate.Solver_failure _), _, _) ->
          assert false
      | None ->
          (* Even the empty instance failed; nothing we can do. *)
          { Scheduler.plan = Plan.empty; accepted = []; rejected = files }
    end
  in
  { Scheduler.name = "postcard"; fluid = false; schedule }
