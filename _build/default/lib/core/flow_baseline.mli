(** The flow-based baseline of Sec. II-B: no storage at intermediate
    datacenters — each file [k] becomes a static commodity flowing at its
    desired rate [r_k = F_k / T_k] for its whole tolerance window, possibly
    split over multiple multi-hop paths.

    The paper decouples the cost minimization into two sub-problems solved
    in sequence:

    + a {e maximum concurrent flow} program pushing the largest common
      fraction [lambda] of every demand through link volume that is
      {e already paid for} (headroom below [X_ij(t-1)] left by committed
      transfers), followed by a cost-weighted polish that picks the
      cheapest routing among maximum ones;
    + a {e minimum-cost multicommodity flow} program routing the remaining
      [(1 - lambda) r_k] on the capacities left by stage 1, paying the
      link price per unit of flow ([solve_two_stage], the paper's literal
      decomposition).

    Two strengthened variants serve as ablations:
    [solve_two_stage_excess] charges stage 2 only for volume exceeding the
    already-paid level (so leftover headroom keeps riding free), and
    [solve_joint] is the exact single-LP optimum of the flow model. Neither
    decomposition can beat [solve_joint].

    Both solvers work on a static {!instance} summarizing the network over
    the batch horizon (worst-case residuals, peak occupancies), which is
    how the flow model abstracts time away. *)

type instance = {
  base : Netgraph.Graph.t;
  cap : float array;
      (** Usable per-slot capacity per link: the minimum residual over the
          batch horizon. *)
  occ_peak : float array;
      (** Peak committed volume per link over the horizon. *)
  charged : float array;  (** [X_ij(t-1)]. *)
}

val instance_of_context : Scheduler.context -> horizon:int -> instance

type flows = {
  lambda : float;  (** Fraction of every demand served for free (stage 1). *)
  rates : float array array;  (** [rates.(k).(l)]: rate of file [k] on link [l]. *)
  estimated_cost : float;
      (** [sum a_ij max(charged, occ_peak + total rate)] — the static
          model's estimate of the resulting cost per interval. *)
}

val solve_two_stage :
  ?params:Lp.Simplex.params -> instance -> files:File.t list -> flows option
(** The paper's literal decomposition. [None] when the residual network
    cannot carry every demand. *)

val solve_two_stage_excess :
  ?params:Lp.Simplex.params -> instance -> files:File.t list -> flows option
(** Two-stage with excess-over-charge costing in stage 2 (ablation). *)

val solve_joint :
  ?params:Lp.Simplex.params -> instance -> files:File.t list -> flows option
(** Single-LP exact flow-based optimum (ablation). *)

val plan_of_flows : files:File.t list -> epoch:int -> flows -> Plan.t
(** Expand rates into per-slot transmissions over each file's window
    (fluid semantics: multi-hop rates occupy all their links during the
    same slots). *)

val make :
  ?params:Lp.Simplex.params ->
  ?variant:[ `Two_stage | `Two_stage_excess | `Joint ] ->
  unit ->
  Scheduler.t
(** Scheduler wrapper with highest-rate-first admission control; default
    variant [`Two_stage] (the paper's). Scheduler names: "flow-based",
    "flow-excess", "flow-joint". *)
