(** The no-strategy baseline of Fig. 1(a): each file is shipped on the
    direct link from its source to its destination, spread evenly over its
    tolerance window at the desired rate [F_k / T_k] (accelerating within
    the window when earlier slots lack residual capacity). A file is
    rejected when the direct link cannot carry it within the deadline, or
    when no direct link exists. *)

val make : unit -> Scheduler.t
