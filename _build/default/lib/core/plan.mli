(** Transfer plans: the output of every scheduler.

    A plan states, per file, how much volume moves over which physical link
    during which absolute slot, plus (informationally) how much is held in
    storage at which datacenter. Plans from store-and-forward schedulers
    satisfy slot-accurate conservation: data sent over a link during slot
    [n] is available at the head datacenter from slot [n + 1]. Plans from
    the fluid flow-based baseline only promise capacity feasibility (the
    paper's Sec. II-B model ignores pipelining delay); see {!validate} and
    {!validate_capacity}. *)

type transmission = {
  file : int;  (** File id. *)
  link : int;  (** Base-graph arc id. *)
  slot : int;  (** Absolute slot during which the volume moves. *)
  volume : float;
}

type holdover = {
  h_file : int;
  h_node : int;
  h_slot : int;  (** Stored at [h_node] from [h_slot] to [h_slot + 1]. *)
  h_volume : float;
}

type t = {
  transmissions : transmission list;
  holdovers : holdover list;
}

val empty : t

val concat : t -> t -> t

val volume_on : t -> link:int -> slot:int -> float
(** Aggregate planned volume of all files on a link during a slot. *)

val total_transmitted : t -> float
(** Sum of all transmission volumes (counts every hop). *)

val delivered_volume : t -> base:Netgraph.Graph.t -> file:File.t -> float
(** Net volume this plan delivers into the file's destination. *)

val slot_range : t -> (int * int) option
(** Smallest and largest slot mentioned; [None] for an empty plan. *)

val validate :
  base:Netgraph.Graph.t ->
  files:File.t list ->
  capacity:(link:int -> slot:int -> float) ->
  t ->
  (unit, string) result
(** Full store-and-forward validation:
    - every transmission has positive volume, a valid link, and lies inside
      its file's window [[release, release + deadline - 1]];
    - slot-accurate per-file conservation: a datacenter never sends more of
      a file than it holds, and each file's full size sits at its
      destination by the completion deadline;
    - aggregate link volumes respect the per-slot capacities. *)

val validate_capacity :
  base:Netgraph.Graph.t ->
  capacity:(link:int -> slot:int -> float) ->
  t ->
  (unit, string) result
(** Capacity-only validation (for fluid baseline plans). *)

val pp : Format.formatter -> t -> unit
