module Graph = Netgraph.Graph
module Model = Lp.Model

type result = {
  plan : Plan.t;
  delivered : float array;
  total_delivered : float;
  cost : float;
  charged : float array;
}

let solve ?params ~base ~charged ~capacity ~files ~epoch ~budget () =
  if Array.length charged <> Graph.num_arcs base then
    Error "Budget.solve: charged size mismatch"
  else if budget < 0. || Float.is_nan budget then
    Error "Budget.solve: negative budget"
  else begin
    let model = Model.create ~name:"budget" Model.Maximize in
    let supplies =
      Array.of_list
        (List.map
           (fun f ->
             Model.add_var model
               ~name:(Printf.sprintf "v_%d" f.File.id)
               ~lb:0. ~ub:f.File.size ~obj:1. ())
           files)
    in
    let program =
      Texp_lp.build ~model ~base ~capacity ~files ~epoch
        ~flow_obj:(fun ~cost -> -1e-4 *. cost)
        ~supply:(`Elastic supplies)
    in
    (* The X variables get a tiny negative reward so that, among schedules
       delivering the maximum volume, the solver reports the cheapest one
       (and X is pinned to the actual peak usage rather than floating up to
       the budget). *)
    let x_vars =
      Texp_lp.add_charge_coupling ~model program ~charged
        ~x_obj:(fun ~cost -> -1e-4 *. cost)
    in
    let budget_terms =
      Graph.fold_arcs base ~init:[] ~f:(fun acc a ->
          (x_vars.(a.Graph.id), a.Graph.cost) :: acc)
    in
    ignore (Model.add_constraint model ~name:"budget" budget_terms Model.Le budget);
    match Lp.Simplex.solve ?params model with
    | Lp.Status.Optimal s ->
        let primal = s.Lp.Status.primal in
        let plan = Texp_lp.extract_plan program ~primal in
        let delivered = Texp_lp.extract_supplies program ~primal supplies in
        let charged' =
          Array.map (fun (v : Model.var) -> primal.((v :> int))) x_vars
        in
        let cost = ref 0. in
        Graph.iter_arcs base (fun a ->
            cost := !cost +. (a.Graph.cost *. charged'.(a.Graph.id)));
        Ok
          { plan;
            delivered;
            total_delivered = Array.fold_left ( +. ) 0. delivered;
            cost = !cost;
            charged = charged' }
    | Lp.Status.Infeasible ->
        Error "Budget.solve: budget below the cost of committed traffic"
    | Lp.Status.Unbounded -> Error "Budget.solve: unbounded"
    | Lp.Status.Iteration_limit -> Error "Budget.solve: iteration limit"
  end
