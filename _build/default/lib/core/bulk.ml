module Model = Lp.Model

type result = {
  plan : Plan.t;
  delivered : float array;
  total_delivered : float;
}

let solve ?params ~base ~charged ~capacity ~occupied ~files ~epoch ~paid_only
    () =
  if Array.length charged <> Netgraph.Graph.num_arcs base then
    Error "Bulk.solve: charged size mismatch"
  else begin
    let usable ~link ~layer =
      let residual = capacity ~link ~layer in
      if paid_only then
        (* Only the headroom below the charged volume is free. *)
        min residual (max 0. (charged.(link) -. occupied ~link ~layer))
      else residual
    in
    let model = Model.create ~name:"bulk" Model.Maximize in
    let supplies =
      Array.of_list
        (List.map
           (fun f ->
             Model.add_var model
               ~name:(Printf.sprintf "v_%d" f.File.id)
               ~lb:0. ~ub:f.File.size ~obj:1. ())
           files)
    in
    let program =
      Texp_lp.build ~model ~base ~capacity:usable ~files ~epoch
        ~flow_obj:(fun ~cost -> -1e-4 *. cost)
        ~supply:(`Elastic supplies)
    in
    match Lp.Simplex.solve ?params model with
    | Lp.Status.Optimal s ->
        let primal = s.Lp.Status.primal in
        let plan = Texp_lp.extract_plan program ~primal in
        let delivered = Texp_lp.extract_supplies program ~primal supplies in
        Ok
          { plan;
            delivered;
            total_delivered = Array.fold_left ( +. ) 0. delivered }
    | Lp.Status.Infeasible ->
        (* Zero supply is always feasible; infeasibility is numerical. *)
        Error "Bulk.solve: unexpectedly infeasible"
    | Lp.Status.Unbounded -> Error "Bulk.solve: unbounded"
    | Lp.Status.Iteration_limit -> Error "Bulk.solve: iteration limit"
  end
