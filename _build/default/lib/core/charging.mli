(** Percentile-based charging schemes and cost functions (Sec. II-A).

    An ISP records the traffic volume of every 5-minute interval; at the
    end of the charging period the q-th percentile of the sorted volumes is
    the charging volume [x], and the bill is [c x] for a non-decreasing,
    piecewise-linear cost function [c]. The paper's analysis and the
    Postcard formulation use [q = 100] (the peak) with a linear [c];
    the simulator can additionally {e evaluate} any schedule under other
    percentiles and cost shapes. *)

type scheme = { percentile : float }
(** [percentile] in (0, 100]. *)

val max_percentile : scheme
(** The 100-th percentile scheme used throughout the paper's analysis. *)

val scheme : float -> scheme
(** Raises [Invalid_argument] outside (0, 100]. *)

val charged_volume : scheme -> float array -> float
(** [charged_volume s volumes] applies the paper's convention: sort the
    per-interval volumes ascending and pick the q-th percentile entry
    (the maximum for [q = 100]). Returns [0.] for an empty history. *)

val charged_volume_prefix : scheme -> float array -> int -> float
(** [charged_volume_prefix s volumes k] is the charge considering only the
    first [k] intervals — the charge as it stands mid-period. *)

type cost_function =
  | Linear of float  (** [Linear a]: cost [a * x]. *)
  | Piecewise of (float * float) list
      (** [Piecewise segments]: each [(width, slope)] segment extends the
          function by [width] units of volume at the given [slope]; the
          final slope extends to infinity. Slopes must be non-negative
          (non-decreasing cost). *)

val cost : cost_function -> float -> float
(** Evaluate the cost of a charged volume. Raises [Invalid_argument] on a
    negative volume or an invalid piecewise description. *)

val validate_cost_function : cost_function -> (unit, string) result
