module Graph = Netgraph.Graph

type transmission = {
  file : int;
  link : int;
  slot : int;
  volume : float;
}

type holdover = {
  h_file : int;
  h_node : int;
  h_slot : int;
  h_volume : float;
}

type t = {
  transmissions : transmission list;
  holdovers : holdover list;
}

let empty = { transmissions = []; holdovers = [] }

let concat a b =
  { transmissions = a.transmissions @ b.transmissions;
    holdovers = a.holdovers @ b.holdovers }

let volume_on t ~link ~slot =
  List.fold_left
    (fun acc tx ->
      if tx.link = link && tx.slot = slot then acc +. tx.volume else acc)
    0. t.transmissions

let total_transmitted t =
  List.fold_left (fun acc tx -> acc +. tx.volume) 0. t.transmissions

let delivered_volume t ~base ~file =
  List.fold_left
    (fun acc tx ->
      if tx.file = file.File.id then begin
        let a = Graph.arc base tx.link in
        if a.Graph.dst = file.File.dst then acc +. tx.volume
        else if a.Graph.src = file.File.dst then acc -. tx.volume
        else acc
      end
      else acc)
    0. t.transmissions

let slot_range t =
  let slots =
    List.map (fun tx -> tx.slot) t.transmissions
    @ List.map (fun h -> h.h_slot) t.holdovers
  in
  match slots with
  | [] -> None
  | s :: rest ->
      Some (List.fold_left (fun (lo, hi) x -> (min lo x, max hi x)) (s, s) rest)

let eps = 1e-6

let validate_capacity ~base ~capacity t =
  (* Aggregate per (link, slot) and compare with capacity. *)
  let table = Hashtbl.create 64 in
  let bad = ref None in
  List.iter
    (fun tx ->
      if !bad = None then begin
        if tx.link < 0 || tx.link >= Graph.num_arcs base then
          bad := Some (Printf.sprintf "transmission on unknown link %d" tx.link)
        else if tx.volume < -.eps then
          bad := Some (Printf.sprintf "negative volume %g on link %d" tx.volume tx.link)
        else begin
          let key = (tx.link, tx.slot) in
          let cur = try Hashtbl.find table key with Not_found -> 0. in
          Hashtbl.replace table key (cur +. tx.volume)
        end
      end)
    t.transmissions;
  (match !bad with
   | Some _ -> ()
   | None ->
       Hashtbl.iter
         (fun (link, slot) vol ->
           if !bad = None then begin
             let cap = capacity ~link ~slot in
             if vol > cap +. eps then
               bad :=
                 Some
                   (Printf.sprintf
                      "link %d slot %d: volume %g exceeds capacity %g" link
                      slot vol cap)
           end)
         table);
  match !bad with None -> Ok () | Some msg -> Error msg

let validate ~base ~files ~capacity t =
  match validate_capacity ~base ~capacity t with
  | Error _ as e -> e
  | Ok () ->
      let by_file = Hashtbl.create 16 in
      List.iter (fun f -> Hashtbl.replace by_file f.File.id f) files;
      let bad = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
      (* Group transmissions by file. *)
      let txs = Hashtbl.create 16 in
      List.iter
        (fun tx ->
          match Hashtbl.find_opt by_file tx.file with
          | None -> fail "transmission for unknown file %d" tx.file
          | Some f ->
              if tx.slot < f.File.release || tx.slot > File.last_slot f then
                fail "file %d: transmission at slot %d outside window [%d, %d]"
                  f.File.id tx.slot f.File.release (File.last_slot f)
              else begin
                let cur = try Hashtbl.find txs tx.file with Not_found -> [] in
                Hashtbl.replace txs tx.file (tx :: cur)
              end)
        t.transmissions;
      if !bad <> None then Error (Option.get !bad)
      else begin
        (* Per-file slot-accurate conservation: track the amount of the file
           present at each datacenter at the start of each slot. *)
        let n = Graph.num_nodes base in
        Hashtbl.iter
          (fun _ f ->
            if !bad = None then begin
              let held = Array.make n 0. in
              held.(f.File.src) <- f.File.size;
              let entries =
                try Hashtbl.find txs f.File.id with Not_found -> []
              in
              for slot = f.File.release to File.last_slot f do
                if !bad = None then begin
                  let this_slot =
                    List.filter (fun tx -> tx.slot = slot) entries
                  in
                  (* Outgoing volume must be covered by current holdings. *)
                  let outgoing = Array.make n 0. in
                  List.iter
                    (fun tx ->
                      let a = Graph.arc base tx.link in
                      outgoing.(a.Graph.src) <- outgoing.(a.Graph.src) +. tx.volume)
                    this_slot;
                  for node = 0 to n - 1 do
                    if outgoing.(node) > held.(node) +. eps then
                      fail
                        "file %d: node %d sends %g at slot %d but holds only %g"
                        f.File.id node outgoing.(node) slot held.(node)
                  done;
                  (* Apply movements: volume leaves now, arrives for the
                     next slot. *)
                  List.iter
                    (fun tx ->
                      let a = Graph.arc base tx.link in
                      held.(a.Graph.src) <- held.(a.Graph.src) -. tx.volume;
                      held.(a.Graph.dst) <- held.(a.Graph.dst) +. tx.volume)
                    this_slot
                end
              done;
              if !bad = None then begin
                if abs_float (held.(f.File.dst) -. f.File.size) > 1e-4 then
                  fail "file %d: only %g of %g delivered by deadline" f.File.id
                    held.(f.File.dst) f.File.size
              end
            end)
          by_file;
        match !bad with None -> Ok () | Some msg -> Error msg
      end

let pp ppf t =
  Format.fprintf ppf "@[<v>plan: %d transmissions, %d holdovers"
    (List.length t.transmissions)
    (List.length t.holdovers);
  List.iter
    (fun tx ->
      Format.fprintf ppf "@,file %d: %g on link %d at slot %d" tx.file
        tx.volume tx.link tx.slot)
    t.transmissions;
  List.iter
    (fun h ->
      Format.fprintf ppf "@,file %d: hold %g at node %d during slot %d"
        h.h_file h.h_volume h.h_node h.h_slot)
    t.holdovers;
  Format.fprintf ppf "@]"
