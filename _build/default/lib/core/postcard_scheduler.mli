(** The Postcard online scheduler: at each epoch, solve the time-expanded
    program of {!Formulate} for the newly released files and commit the
    optimal store-and-forward plan.

    When the instance is infeasible (deadlines cannot be met under the
    residual capacities), files are dropped highest-rate-first until the
    rest fits; dropped files are reported as rejected. *)

val make :
  ?params:Lp.Simplex.params -> ?tie_break:float -> unit -> Scheduler.t
