(** The clairvoyant (offline) benchmark: one program over the whole
    charging period with every arrival known in advance.

    Postcard is an {e online} policy — each epoch optimizes only the files
    just released, taking earlier commitments as given (Sec. III motivates
    this with the unpredictability of inter-datacenter traffic). The
    offline program drops that restriction: all files, with their true
    release slots, are scheduled jointly on one time-expanded graph
    spanning the whole period. Its optimum lower-bounds every online
    schedule's cost, so the gap to the online Postcard run measures the
    {e price of myopia} — how much the online assumption itself costs,
    independent of the store-and-forward machinery. *)

type result = {
  plan : Plan.t;
  objective : float;  (** [sum a_ij X_ij] at the clairvoyant optimum. *)
  charged : float array;
}

val solve :
  ?params:Lp.Simplex.params ->
  base:Netgraph.Graph.t ->
  files:File.t list ->
  ?tie_break:float ->
  unit ->
  (result, string) Result.t
(** [solve ~base ~files ()] schedules every file jointly, link capacities
    taken from the base graph (constant per slot). Files carry their own
    release slots; the horizon is the latest completion deadline. [Error]
    on infeasibility or solver failure. *)

val price_of_myopia :
  base:Netgraph.Graph.t ->
  online_cost:float ->
  offline:result ->
  float
(** [online_cost /. offline.objective]: 1.0 means the online policy lost
    nothing to clairvoyance. *)
