lib/core/direct_scheduler.mli: Scheduler
