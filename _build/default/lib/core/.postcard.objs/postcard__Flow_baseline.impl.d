lib/core/flow_baseline.ml: Array File List Lp Netgraph Option Plan Printf Queue Scheduler
