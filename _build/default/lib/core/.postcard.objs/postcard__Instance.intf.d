lib/core/instance.mli: File Netgraph
