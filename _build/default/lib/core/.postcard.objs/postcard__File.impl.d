lib/core/file.ml: Float Format
