lib/core/flow_baseline.mli: File Lp Netgraph Plan Scheduler
