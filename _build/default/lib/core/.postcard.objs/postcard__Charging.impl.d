lib/core/charging.ml: Array Float Prelude
