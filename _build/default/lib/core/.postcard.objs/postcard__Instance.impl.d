lib/core/instance.ml: Array Buffer File In_channel List Netgraph Printf String
