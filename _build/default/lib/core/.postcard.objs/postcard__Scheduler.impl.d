lib/core/scheduler.ml: File List Netgraph Option Plan
