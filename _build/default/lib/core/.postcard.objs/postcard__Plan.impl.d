lib/core/plan.ml: Array File Format Hashtbl List Netgraph Option Printf
