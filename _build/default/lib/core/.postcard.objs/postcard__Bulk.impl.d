lib/core/bulk.ml: Array File List Lp Netgraph Plan Printf Texp_lp
