lib/core/offline.ml: Array File List Lp Netgraph Plan Texp_lp
