lib/core/postcard_scheduler.mli: Lp Scheduler
