lib/core/budget.mli: File Lp Netgraph Plan Result
