lib/core/postcard_scheduler.ml: Array Formulate Logs Plan Scheduler
