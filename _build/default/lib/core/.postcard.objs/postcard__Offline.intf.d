lib/core/offline.mli: File Lp Netgraph Plan Result
