lib/core/file.mli: Format
