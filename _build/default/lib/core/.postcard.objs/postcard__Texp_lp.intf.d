lib/core/texp_lp.mli: File Lp Netgraph Plan Timexp
