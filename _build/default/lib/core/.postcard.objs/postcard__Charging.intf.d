lib/core/charging.mli:
