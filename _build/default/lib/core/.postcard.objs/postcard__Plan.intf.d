lib/core/plan.mli: File Format Netgraph
