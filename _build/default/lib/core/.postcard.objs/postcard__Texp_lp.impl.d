lib/core/texp_lp.ml: Array File Hashtbl List Lp Netgraph Plan Printf Queue Timexp
