lib/core/budget.ml: Array File Float List Lp Netgraph Plan Printf Texp_lp
