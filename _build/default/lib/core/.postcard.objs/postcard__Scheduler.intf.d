lib/core/scheduler.mli: File Netgraph Plan
