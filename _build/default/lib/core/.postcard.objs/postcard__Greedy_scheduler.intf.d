lib/core/greedy_scheduler.mli: Scheduler
