lib/core/formulate.mli: File Lp Netgraph Plan
