lib/core/formulate.ml: Array Lp Netgraph Plan Texp_lp
