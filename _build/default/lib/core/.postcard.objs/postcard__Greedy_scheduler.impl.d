lib/core/greedy_scheduler.ml: Array Charging File Hashtbl List Netgraph Plan Printf Scheduler
