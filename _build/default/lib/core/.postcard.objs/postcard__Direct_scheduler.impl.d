lib/core/direct_scheduler.ml: Array File Hashtbl List Netgraph Plan Scheduler
