lib/core/bulk.mli: File Lp Netgraph Plan Result
