(** Bulk "background traffic" maximization — problem (11) of Sec. VI, the
    NetStitcher-style scenario generalized to multiple files.

    Given candidate bulk files (backups, data migration) and the network
    state, maximize the total volume delivered within each file's deadline,
    using only capacity that is free of charge: the residual link capacity
    capped, when [paid_only] is set, by the headroom below the
    already-charged volume [X_ij(t-1)] (traffic below the charge is free
    under a percentile scheme).

    Note on fidelity: the paper's literal objective (11) sums [M^k_ijn]
    over {e all} arcs, which counts a fraction once per hop travelled and
    per slot stored. We maximize the {e delivered} volume (the elastic
    supply actually reaching each destination), which is the quantity the
    text describes ("as many bulk files as possible"); DESIGN.md records
    the substitution. *)

type result = {
  plan : Plan.t;
  delivered : float array;  (** Volume delivered per file, in input order. *)
  total_delivered : float;
}

val solve :
  ?params:Lp.Simplex.params ->
  base:Netgraph.Graph.t ->
  charged:float array ->
  capacity:(link:int -> layer:int -> float) ->
  occupied:(link:int -> layer:int -> float) ->
  files:File.t list ->
  epoch:int ->
  paid_only:bool ->
  unit ->
  (result, string) Result.t
