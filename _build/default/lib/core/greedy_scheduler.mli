(** A fast combinatorial store-and-forward scheduler.

    Where {!Postcard_scheduler} solves the joint LP over all files of an
    epoch, this scheduler routes the files one at a time (highest desired
    rate first), each by a single {e minimum-cost flow} on the
    time-expanded graph in which every transmission arc is split into

    - a {e free} copy — capacity equal to the headroom below the link's
      charged volume, cost zero (traffic below the charge is free under a
      percentile scheme), and
    - a {e paid} copy — the remaining residual capacity at the link's
      per-unit price.

    After each file is placed, the charge levels are updated so later files
    see the headroom the earlier ones created. Per file the routing is
    optimal for the decoupled cost model in which each (link, slot) pair
    charges its own free/paid split (it does not credit, within a single
    flow computation, that paying on one slot raises the whole link's
    charge and frees its other slots); across files it is greedy. Its cost
    therefore upper-bounds the Postcard LP's objective, while running
    orders of magnitude faster with no LP machinery — the practical
    deployment story the paper's formulation lacks.

    The bench's scheduler ablation measures its optimality gap against the
    exact LP. *)

val make : unit -> Scheduler.t
(** Scheduler named "greedy-snf" producing slot-accurate plans. *)

val make_percentile : ?percentile:float -> unit -> Scheduler.t
(** A percentile-aware variant (default 95-th): under a q-th percentile
    scheme the billing discards each link's top (100 - q)% of per-slot
    volumes, so a slot already in the discarded set may burst at full
    residual capacity for free, and other slots are free up to the
    percentile charge rather than the peak. The scheduler routes with that
    cost surface and concentrates unavoidable overflows into few burst
    slots per link — an optimization outside the paper's 100-th percentile
    model (named "burst-q"). Evaluate its runs with
    {!Sim.Engine.evaluate_cost} under the same scheme. *)
