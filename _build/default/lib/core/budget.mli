(** Budget-constrained transfer maximization (second extension of Sec. VI).

    During peak hours a provider may have more transfer requests than its
    traffic budget supports. Maximize the total volume delivered within
    deadlines subject to the charged cost staying within budget:

    {v
    max  sum_k v_k
    s.t. time-expanded flow feasibility for each file (supply v_k <= F_k)
         sum_ij a_ij X_ij <= B
         X_ij >= X_ij(t-1),  X_ij >= sum_k M^k_ijn  for every layer
    v}

    (We keep the per-interval normalization of cost, consistent with the
    rest of the repository; multiply budget by the number of remaining
    intervals to use the paper's total-cost convention.) *)

type result = {
  plan : Plan.t;
  delivered : float array;  (** Volume delivered per file, in input order. *)
  total_delivered : float;
  cost : float;  (** [sum a_ij X_ij] of the chosen schedule. *)
  charged : float array;  (** Resulting [X_ij(t)]. *)
}

val solve :
  ?params:Lp.Simplex.params ->
  base:Netgraph.Graph.t ->
  charged:float array ->
  capacity:(link:int -> layer:int -> float) ->
  files:File.t list ->
  epoch:int ->
  budget:float ->
  unit ->
  (result, string) Result.t
(** [Error] when the budget is below the cost of the already-charged
    volumes (the committed baseline makes the program infeasible) or on a
    solver failure. *)
