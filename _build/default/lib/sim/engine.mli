(** The time-slotted simulation engine.

    Per slot: draw the workload's arrivals, hand them to the scheduler with
    the current network state (charged volumes, residual capacities), check
    the returned plan (slot-accurate validation for store-and-forward
    schedulers, capacity-only for fluid ones), book it in the {!Ledger}
    and record the cost point [sum a_ij X_ij(t)]. *)

type outcome = {
  cost_series : float array;
      (** Cost per interval after each slot's scheduling decisions, i.e.
          [sum over links of price * X(t)] for [t = 0 .. slots-1]. *)
  final_charged : float array;  (** [X_ij] per link at the end of the run. *)
  total_files : int;
  rejected_files : int;
  delivered_volume : float;  (** Total size of accepted files. *)
  link_volumes : float array array;
      (** Per-link, per-slot committed volumes over the whole run
          (including slots past the arrival window where tails of accepted
          transfers still flow). *)
}

exception Invalid_plan of string
(** Raised when a scheduler produces a plan that fails validation — always
    a bug in the scheduler, never expected in a healthy run. *)

val run :
  base:Netgraph.Graph.t ->
  scheduler:Postcard.Scheduler.t ->
  workload:Workload.t ->
  slots:int ->
  outcome

val average_cost : outcome -> float
(** Mean of the cost series — the quantity plotted in Figs. 4-7. *)

val evaluate_cost :
  outcome -> scheme:Postcard.Charging.scheme -> base:Netgraph.Graph.t -> float
(** Re-evaluate the run's final bill under an arbitrary percentile scheme
    (e.g. the 95-th): [sum over links of price * percentile(volumes)]. *)

val evaluate_bill :
  outcome ->
  scheme:Postcard.Charging.scheme ->
  cost_of_link:(int -> Postcard.Charging.cost_function) ->
  base:Netgraph.Graph.t ->
  float
(** Like {!evaluate_cost} but with an arbitrary non-decreasing
    piecewise-linear cost function per link (Sec. II-A's general charging
    model), e.g. volume discounts beyond a threshold. *)
