lib/sim/report.mli: Engine Experiment Format Netgraph
