lib/sim/report.ml: Array Char Engine Experiment Format List Netgraph String
