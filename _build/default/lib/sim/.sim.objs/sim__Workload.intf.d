lib/sim/workload.mli: Postcard Prelude
