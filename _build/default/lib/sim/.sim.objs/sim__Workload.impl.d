lib/sim/workload.ml: Float List Postcard Prelude
