lib/sim/experiment.ml: Array Engine List Netgraph Postcard Prelude Workload
