lib/sim/engine.mli: Netgraph Postcard Workload
