lib/sim/engine.ml: Array Ledger List Logs Netgraph Postcard Prelude Printf Workload
