lib/sim/ledger.ml: Array Float List Netgraph Postcard Printf
