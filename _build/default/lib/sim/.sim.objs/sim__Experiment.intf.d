lib/sim/experiment.mli: Postcard
