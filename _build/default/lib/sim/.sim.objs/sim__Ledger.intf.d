lib/sim/ledger.mli: Netgraph Postcard
