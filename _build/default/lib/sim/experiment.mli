(** Multi-seed experiment runner reproducing the paper's evaluation
    protocol: for each of several independent runs, draw a topology and a
    workload from a seeded RNG and drive {e every} scheduler through the
    identical instance (paired comparison); report mean cost per interval
    and its Student-t 95% confidence interval across runs, as plotted in
    Figs. 4-7. *)

type setting = {
  label : string;
  nodes : int;
  capacity : float;  (** Per-link capacity, GB per interval. *)
  cost_lo : float;
  cost_hi : float;  (** Per-unit link prices uniform in [cost_lo, cost_hi). *)
  files_max : int;  (** Files per slot uniform in [1, files_max]. *)
  size_max : float;
      (** Upper end of the uniform size draw (the paper uses 100 GB);
          lowering it keeps deeply throttled settings serviceable. *)
  max_deadline : int;  (** The setting's [max_k T_k]. *)
  uniform_deadlines : bool;
      (** [true] (default in the paper settings): deadlines uniform in
          [1, max_deadline], with deadline-1 sizes capped at the link
          capacity so every file stays serviceable under slotted semantics
          (the deadline heterogeneity is what lets store-and-forward
          exploit links vacated by urgent traffic — the mechanism behind
          Figs. 6-7). [false]: every file gets exactly [max_deadline]. *)
  slots : int;
  runs : int;
  seed : int;
}

val paper_figure : int -> setting
(** [paper_figure n] for [n] in 4..7: the paper's exact settings — 20
    datacenters, 100 slots, 10 runs, capacity 100 (Figs. 4-5) or 30
    (Figs. 6-7) GB per interval, [max_k T_k] of 3 (Figs. 4, 6) or 8
    (Figs. 5, 7). Raises [Invalid_argument] otherwise. *)

val scaled_figure : int -> setting
(** Same qualitative regime scaled to bench-friendly size: 8 datacenters,
    files per slot in [1, 6], 40 slots, 5 runs, capacities scaled (35 GB
    ample / 10 GB throttled) to preserve the load-to-capacity ratio. *)

type scheduler_summary = {
  scheduler : string;
  mean_cost : float;  (** Mean over runs of the run-average cost/interval. *)
  ci95 : float;  (** Student-t 95% half-width across runs. *)
  run_costs : float array;
  mean_series : float array;  (** Cost series averaged across runs. *)
  rejected : int;  (** Total rejections across runs (expected 0). *)
}

type results = {
  setting : setting;
  summaries : scheduler_summary list;
}

val run_setting :
  ?progress:(run:int -> scheduler:string -> unit) ->
  setting ->
  schedulers:Postcard.Scheduler.t list ->
  results

val find_summary : results -> string -> scheduler_summary
(** Lookup by scheduler name; raises [Not_found]. *)
