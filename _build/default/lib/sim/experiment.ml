type setting = {
  label : string;
  nodes : int;
  capacity : float;
  cost_lo : float;
  cost_hi : float;
  files_max : int;
  size_max : float;
  max_deadline : int;
  uniform_deadlines : bool;
  slots : int;
  runs : int;
  seed : int;
}

let paper_figure n =
  let base =
    { label = "";
      nodes = 20;
      capacity = 100.;
      cost_lo = 1.;
      cost_hi = 10.;
      files_max = 20;
      size_max = 100.;
      max_deadline = 3;
      uniform_deadlines = true;
      slots = 100;
      runs = 10;
      seed = 42 }
  in
  match n with
  | 4 -> { base with label = "fig4: c=100 GB, max T=3" }
  | 5 -> { base with label = "fig5: c=100 GB, max T=8"; max_deadline = 8 }
  | 6 -> { base with label = "fig6: c=30 GB, max T=3"; capacity = 30. }
  | 7 ->
      { base with
        label = "fig7: c=30 GB, max T=8";
        capacity = 30.;
        max_deadline = 8 }
  | _ -> invalid_arg "Experiment.paper_figure: figures 4-7 only"

let scaled_figure n =
  (* The qualitative regime is set by the per-file pressure F_k / (T_k c)
     — whether a single transfer saturates its cheapest links — so the
     scaled settings keep the paper's capacities and sizes and shrink only
     the fleet, the arrival rate and the horizon. *)
  let base = paper_figure n in
  { base with
    label = base.label ^ " (scaled)";
    nodes = 8;
    files_max = 6;
    slots = 40;
    runs = 5 }

type scheduler_summary = {
  scheduler : string;
  mean_cost : float;
  ci95 : float;
  run_costs : float array;
  mean_series : float array;
  rejected : int;
}

type results = {
  setting : setting;
  summaries : scheduler_summary list;
}

let run_setting ?(progress = fun ~run:_ ~scheduler:_ -> ()) setting ~schedulers =
  if setting.runs < 1 then invalid_arg "Experiment.run_setting: runs < 1";
  let per_scheduler =
    List.map (fun s -> (s, Array.make setting.runs 0., ref [], ref 0)) schedulers
  in
  for run = 0 to setting.runs - 1 do
    (* One topology and one workload stream per run, shared by all
       schedulers (paired comparison). *)
    let topo_rng = Prelude.Rng.of_int ((setting.seed * 7919) + run) in
    let base =
      Netgraph.Topology.complete ~n:setting.nodes ~rng:topo_rng
        ~cost_lo:setting.cost_lo ~cost_hi:setting.cost_hi
        ~capacity:setting.capacity
    in
    let spec =
      let base_spec =
        { (Workload.paper_spec ~nodes:setting.nodes
             ~files_max:setting.files_max ~max_deadline:setting.max_deadline)
          with
          Workload.size_max = setting.size_max }
      in
      if setting.uniform_deadlines then
        { base_spec with Workload.urgent_size_cap = Some setting.capacity }
      else
        { base_spec with
          Workload.deadlines = Workload.Fixed_deadline setting.max_deadline }
    in
    List.iter
      (fun (scheduler, costs, series_acc, rejected) ->
        progress ~run ~scheduler:scheduler.Postcard.Scheduler.name;
        let workload =
          Workload.create spec
            (Prelude.Rng.of_int ((setting.seed * 104729) + run))
        in
        let outcome =
          Engine.run ~base ~scheduler ~workload ~slots:setting.slots
        in
        costs.(run) <- Engine.average_cost outcome;
        series_acc := outcome.Engine.cost_series :: !series_acc;
        rejected := !rejected + outcome.Engine.rejected_files)
      per_scheduler
  done;
  let summaries =
    List.map
      (fun (scheduler, costs, series_acc, rejected) ->
        let mean_cost, ci95 = Prelude.Stats.confidence_95 costs in
        let mean_series =
          Array.init setting.slots (fun t ->
              let acc = ref 0. in
              List.iter (fun s -> acc := !acc +. s.(t)) !series_acc;
              !acc /. float_of_int setting.runs)
        in
        { scheduler = scheduler.Postcard.Scheduler.name;
          mean_cost;
          ci95;
          run_costs = costs;
          mean_series;
          rejected = !rejected })
      per_scheduler
  in
  { setting; summaries }

let find_summary results name =
  List.find (fun s -> s.scheduler = name) results.summaries
