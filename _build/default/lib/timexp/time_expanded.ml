module Graph = Netgraph.Graph

type arc_kind =
  | Transmission of { link : int; layer : int }
  | Storage of { node : int; layer : int }

type t = {
  base : Graph.t;
  horizon : int;
  graph : Graph.t;
  kinds : arc_kind array;
  (* transmission.(layer).(link) and storage.(layer).(node): expanded ids *)
  transmission : int array array;
  storage : int array array;
}

let build ~base ~horizon ~capacity =
  if horizon < 1 then invalid_arg "Time_expanded.build: horizon < 1";
  let n = Graph.num_nodes base and m = Graph.num_arcs base in
  let g = Graph.create ~n:(n * (horizon + 1)) in
  let node_at ~node ~layer = (layer * n) + node in
  let kinds = Array.make (horizon * (m + n)) (Storage { node = 0; layer = 0 }) in
  let transmission = Array.make_matrix horizon m 0 in
  let storage = Array.make_matrix horizon n 0 in
  for layer = 0 to horizon - 1 do
    Graph.iter_arcs base (fun a ->
        let cap = capacity ~link:a.Graph.id ~layer in
        let id =
          Graph.add_arc g
            ~src:(node_at ~node:a.Graph.src ~layer)
            ~dst:(node_at ~node:a.Graph.dst ~layer:(layer + 1))
            ~capacity:cap ~cost:a.Graph.cost ()
        in
        kinds.(id) <- Transmission { link = a.Graph.id; layer };
        transmission.(layer).(a.Graph.id) <- id);
    for node = 0 to n - 1 do
      let id =
        Graph.add_arc g
          ~src:(node_at ~node ~layer)
          ~dst:(node_at ~node ~layer:(layer + 1))
          ~capacity:infinity ~cost:0. ()
      in
      kinds.(id) <- Storage { node; layer };
      storage.(layer).(node) <- id
    done
  done;
  { base; horizon; graph = g; kinds; transmission; storage }

let graph t = t.graph
let base t = t.base
let horizon t = t.horizon
let num_layers t = t.horizon + 1

let node_at t ~node ~layer =
  let n = Graph.num_nodes t.base in
  if node < 0 || node >= n then invalid_arg "Time_expanded.node_at: bad node";
  if layer < 0 || layer > t.horizon then
    invalid_arg "Time_expanded.node_at: bad layer";
  (layer * n) + node

let node_of t id =
  let n = Graph.num_nodes t.base in
  if id < 0 || id >= Graph.num_nodes t.graph then
    invalid_arg "Time_expanded.node_of: bad node id";
  (id mod n, id / n)

let kind t id =
  if id < 0 || id >= Array.length t.kinds then
    invalid_arg "Time_expanded.kind: bad arc id";
  t.kinds.(id)

let transmission_arc t ~link ~layer =
  if layer < 0 || layer >= t.horizon then
    invalid_arg "Time_expanded.transmission_arc: bad layer";
  if link < 0 || link >= Graph.num_arcs t.base then
    invalid_arg "Time_expanded.transmission_arc: bad link";
  t.transmission.(layer).(link)

let storage_arc t ~node ~layer =
  if layer < 0 || layer >= t.horizon then
    invalid_arg "Time_expanded.storage_arc: bad layer";
  if node < 0 || node >= Graph.num_nodes t.base then
    invalid_arg "Time_expanded.storage_arc: bad node";
  t.storage.(layer).(node)

let iter_arcs t f = Graph.iter_arcs t.graph (fun a -> f a t.kinds.(a.Graph.id))
