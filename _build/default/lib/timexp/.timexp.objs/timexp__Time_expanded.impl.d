lib/timexp/time_expanded.ml: Array Netgraph
