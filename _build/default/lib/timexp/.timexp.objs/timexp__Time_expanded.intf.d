lib/timexp/time_expanded.mli: Netgraph
