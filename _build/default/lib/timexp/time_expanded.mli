(** Time-expanded graphs (Ford-Fulkerson's gadget as used by Postcard,
    Sec. V of the paper).

    Given a base inter-datacenter graph [G = (V, E)] and a horizon of [T]
    time intervals, the expansion [G(t)] contains one virtual copy of every
    datacenter per {e layer} [0 .. T] (layer [n] models the beginning of
    interval [t + n]), plus:

    - a {e transmission arc} [i^n -> j^(n+1)] for every base arc
      [(i, j)] and every [n < T], carrying the base cost and the residual
      capacity of link [(i, j)] during interval [t + n];
    - a {e storage arc} [i^n -> i^(n+1)] for every datacenter and every
      [n < T], with infinite capacity and zero cost — holding data at a
      datacenter for one interval.

    Layers are {e relative} to the construction epoch: callers translate
    absolute slot indices before building. *)

type t

type arc_kind =
  | Transmission of { link : int; layer : int }
      (** Copy of base arc [link] spanning layers [layer -> layer + 1]. *)
  | Storage of { node : int; layer : int }
      (** Holdover at base node [node] from [layer] to [layer + 1]. *)

val build :
  base:Netgraph.Graph.t ->
  horizon:int ->
  capacity:(link:int -> layer:int -> float) ->
  t
(** [build ~base ~horizon ~capacity] expands [base] over [horizon]
    intervals. [capacity ~link ~layer] gives the residual capacity of base
    arc [link] during relative interval [layer] (per-interval volume, i.e.
    already multiplied by the interval length). Raises [Invalid_argument]
    if [horizon < 1]. *)

val graph : t -> Netgraph.Graph.t
(** The expanded graph. Do not mutate. *)

val base : t -> Netgraph.Graph.t
val horizon : t -> int

val num_layers : t -> int
(** [horizon + 1] node layers. *)

val node_at : t -> node:int -> layer:int -> int
(** Expanded id of the copy of [node] at [layer]. *)

val node_of : t -> int -> int * int
(** Inverse of {!node_at}: [(base node, layer)]. *)

val kind : t -> int -> arc_kind
(** Classify an expanded arc id. *)

val transmission_arc : t -> link:int -> layer:int -> int
(** Expanded arc id of base arc [link] at [layer]. *)

val storage_arc : t -> node:int -> layer:int -> int

val iter_arcs : t -> (Netgraph.Graph.arc -> arc_kind -> unit) -> unit
