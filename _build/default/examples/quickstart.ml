(* Quickstart: the motivating example of the paper's Fig. 1.

   Datacenter D2 must send a 6 MB file to D3 within 15 minutes (three
   5-minute intervals). Sending it directly costs 20 per interval under a
   100-th percentile charging scheme; routing it through D1 with
   store-and-forward scheduling brings the cost down to 12.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Formulate = Postcard.Formulate

let () =
  (* Nodes: 0 = D1, 1 = D2, 2 = D3. Prices per MB as in Fig. 1. *)
  let base = Graph.create ~n:3 in
  let direct = Graph.add_arc base ~src:1 ~dst:2 ~capacity:1000. ~cost:10. () in
  let to_relay = Graph.add_arc base ~src:1 ~dst:0 ~capacity:1000. ~cost:1. () in
  let from_relay = Graph.add_arc base ~src:0 ~dst:2 ~capacity:1000. ~cost:3. () in
  let file = File.make ~id:0 ~src:1 ~dst:2 ~size:6. ~deadline:3 ~release:0 in

  print_endline "Postcard quickstart: the Fig. 1 motivating example";
  print_endline "---------------------------------------------------";
  Format.printf "Network: D2->D3 price 10, D2->D1 price 1, D1->D3 price 3@.";
  Format.printf "Request: %a@.@." File.pp file;

  (* The no-strategy cost: ship at the desired rate on the direct link. *)
  let direct_peak = File.rate file in
  Format.printf "Direct send: peak %.1f MB/interval on the price-10 link -> cost %.0f per interval@."
    direct_peak (10. *. direct_peak);

  (* The Postcard optimum. *)
  let formulation =
    Formulate.create ~base
      ~charged:(Array.make (Graph.num_arcs base) 0.)
      ~capacity:(fun ~link:_ ~layer:_ -> 1000.)
      ~files:[ file ] ~epoch:0 ()
  in
  match Formulate.solve formulation with
  | Formulate.Infeasible -> prerr_endline "unexpected: infeasible"
  | Formulate.Solver_failure msg -> prerr_endline ("solver failure: " ^ msg)
  | Formulate.Scheduled { plan; objective; charged } ->
      Format.printf "Postcard:    optimal cost %.0f per interval@.@." objective;
      Format.printf "Charged volumes: direct %.1f, D2->D1 %.1f, D1->D3 %.1f@.@."
        charged.(direct) charged.(to_relay) charged.(from_relay);
      Format.printf "Optimal schedule:@.";
      List.iter
        (fun tx ->
          let a = Graph.arc base tx.Plan.link in
          Format.printf "  interval %d: send %.2f MB over D%d -> D%d@."
            (tx.Plan.slot + 1) tx.Plan.volume (a.Graph.src + 1) (a.Graph.dst + 1))
        (List.sort
           (fun a b -> compare (a.Plan.slot, a.Plan.link) (b.Plan.slot, b.Plan.link))
           plan.Plan.transmissions);
      List.iter
        (fun h ->
          Format.printf "  interval %d: hold %.2f MB at D%d@." (h.Plan.h_slot + 1)
            h.Plan.h_volume (h.Plan.h_node + 1))
        plan.Plan.holdovers;
      Format.printf "@.The relay path plus scheduling cuts the bill from 20 to %.0f per interval.@."
        objective
