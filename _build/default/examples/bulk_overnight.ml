(* Overnight bulk transfers on already-paid capacity — the NetStitcher-style
   scenario of Sec. VI, problem (11), generalized to multiple files.

   A provider's links were charged for their daytime peaks. Overnight, the
   links are nearly idle, so the headroom below the charged volume is free
   under a percentile scheme. How much backup traffic can ride for free?

   Run with: dune exec examples/bulk_overnight.exe *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Bulk = Postcard.Bulk

let () =
  let rng = Prelude.Rng.of_int 2026 in
  (* Five datacenters; every link was charged for a daytime peak between 20
     and 60 GB per interval. *)
  let n = 5 in
  let base =
    Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:80.
  in
  let m = Graph.num_arcs base in
  let charged = Array.init m (fun _ -> Prelude.Rng.float_range rng 20. 60.) in
  (* Overnight residual occupancy: a trickle of interactive traffic. *)
  let occupied ~link ~layer =
    ignore layer;
    charged.(link) *. 0.1
  in
  let capacity ~link:_ ~layer:_ = 80. in
  (* Backlog: one backup from every datacenter to its off-site pair. *)
  let files =
    List.init n (fun i ->
        File.make ~id:i ~src:i ~dst:((i + 2) mod n)
          ~size:(Prelude.Rng.float_range rng 100. 250.)
          ~deadline:6 ~release:0)
  in
  let backlog = List.fold_left (fun acc f -> acc +. f.File.size) 0. files in

  print_endline "Overnight bulk transfer on paid capacity (Sec. VI, problem 11)";
  print_endline "----------------------------------------------------------------";
  Format.printf "5 datacenters, 6 overnight intervals, backlog %.0f GB@.@." backlog;

  match
    Bulk.solve ~base ~charged ~capacity ~occupied ~files ~epoch:0
      ~paid_only:true ()
  with
  | Error msg -> prerr_endline msg
  | Ok free_ride ->
      Format.printf "Free of charge (paid headroom only): %.0f GB delivered (%.0f%% of backlog)@."
        free_ride.Bulk.total_delivered
        (100. *. free_ride.Bulk.total_delivered /. backlog);
      List.iteri
        (fun i f ->
          Format.printf "  backup %d (D%d -> D%d, %.0f GB): %.0f GB for free@."
            f.File.id f.File.src f.File.dst f.File.size
            free_ride.Bulk.delivered.(i))
        files;
      let stored =
        List.fold_left
          (fun acc h -> acc +. h.Plan.h_volume)
          0. free_ride.Bulk.plan.Plan.holdovers
      in
      Format.printf "  (volume-intervals spent in storage at relays: %.0f)@.@." stored;
      (* For contrast: what if we may also use uncharged capacity? *)
      match
        Bulk.solve ~base ~charged ~capacity ~occupied ~files ~epoch:0
          ~paid_only:false ()
      with
      | Error msg -> prerr_endline msg
      | Ok unrestricted ->
          Format.printf
            "Using all residual capacity instead: %.0f GB deliverable (but the excess raises the bill).@."
            unrestricted.Bulk.total_delivered
