(* Budget-constrained admission during peak hours (second extension of
   Sec. VI): given a hard budget on traffic cost, how much of the demand
   can be served, and how does served volume grow with budget?

   Run with: dune exec examples/budget_planning.exe *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Budget = Postcard.Budget

let () =
  let rng = Prelude.Rng.of_int 7 in
  let n = 5 in
  let base =
    Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:40.
  in
  let m = Graph.num_arcs base in
  let charged = Array.make m 0. in
  let capacity ~link:_ ~layer:_ = 40. in
  let files =
    List.init 8 (fun i ->
        let src = Prelude.Rng.int rng n in
        let rec dst () =
          let d = Prelude.Rng.int rng n in
          if d = src then dst () else d
        in
        File.make ~id:i ~src ~dst:(dst ())
          ~size:(Prelude.Rng.float_range rng 20. 80.)
          ~deadline:(Prelude.Rng.int_incl rng 2 4)
          ~release:0)
  in
  let demand = List.fold_left (fun acc f -> acc +. f.File.size) 0. files in

  print_endline "Budget-constrained peak-hour admission (Sec. VI)";
  print_endline "--------------------------------------------------";
  Format.printf "5 datacenters, 8 requests, total demand %.0f GB@.@." demand;
  Format.printf "%10s %14s %12s %10s@." "budget" "delivered (GB)" "of demand"
    "cost used";
  List.iter
    (fun budget ->
      match
        Budget.solve ~base ~charged ~capacity ~files ~epoch:0 ~budget ()
      with
      | Error msg -> Format.printf "%10.0f   error: %s@." budget msg
      | Ok r ->
          Format.printf "%10.0f %14.0f %11.0f%% %10.0f@." budget
            r.Budget.total_delivered
            (100. *. r.Budget.total_delivered /. demand)
            r.Budget.cost)
    [ 0.; 50.; 100.; 200.; 400.; 800.; 1600. ];
  print_newline ();
  print_endline
    "The served volume saturates once the budget covers the unconstrained";
  print_endline "optimum - additional budget buys nothing."
