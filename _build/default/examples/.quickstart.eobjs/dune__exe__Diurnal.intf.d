examples/diurnal.mli:
