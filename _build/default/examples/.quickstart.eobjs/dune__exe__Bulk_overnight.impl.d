examples/bulk_overnight.ml: Array Format List Netgraph Postcard Prelude
