examples/budget_planning.ml: Array Format List Netgraph Postcard Prelude
