examples/diurnal.ml: Format List Netgraph Postcard Prelude Sim
