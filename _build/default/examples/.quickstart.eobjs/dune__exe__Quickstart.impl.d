examples/quickstart.ml: Array Format List Netgraph Postcard
