examples/fig3_example.ml: Array Format List Netgraph Postcard
