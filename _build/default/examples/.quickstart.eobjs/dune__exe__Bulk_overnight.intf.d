examples/bulk_overnight.mli:
