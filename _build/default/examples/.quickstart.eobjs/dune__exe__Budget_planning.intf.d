examples/budget_planning.mli:
