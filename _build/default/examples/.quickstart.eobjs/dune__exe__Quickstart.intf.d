examples/quickstart.mli:
