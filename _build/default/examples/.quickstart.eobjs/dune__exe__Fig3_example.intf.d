examples/fig3_example.mli:
