(* Warm-started simplex: a carried basis may only save pivots, never
   change the answer. The unit tests drive the repair ladder through its
   branches (garbage bases, wrong shapes, singular crashes, deleted
   columns); the property test replays randomized multi-slot online
   instances and demands bit-level agreement of the outcome class and
   1e-6 agreement of the objective. *)

module Model = Lp.Model
module Status = Lp.Status
module Basis = Lp.Status.Basis
module Graph = Netgraph.Graph
module File = Postcard.File
module Formulate = Postcard.Formulate
module Basis_map = Postcard.Basis_map
module Gen = QCheck2.Gen

let to_alcotest = QCheck_alcotest.to_alcotest

let get_opt = function
  | Status.Optimal s -> s
  | other ->
      Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

(* A small non-trivial LP with equalities, ranged rows and bounds. *)
let sample_model () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:2. ~ub:6. () in
  let y = Model.add_var m ~obj:3. () in
  let z = Model.add_var m ~obj:1. ~ub:4. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.); (z, 1.) ] Model.Ge 5.);
  ignore (Model.add_constraint m [ (x, 1.); (y, -1.) ] Model.Eq 1.);
  ignore (Model.add_constraint m [ (y, 2.); (z, 1.) ] Model.Le 8.);
  m

let test_warm_restart_same_model () =
  let m = sample_model () in
  let cold = get_opt (Lp.Simplex.solve m) in
  let basis =
    match cold.Status.basis with
    | Some b -> b
    | None -> Alcotest.fail "revised simplex returned no basis"
  in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:basis m) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective;
  (* Restarting from the optimal basis must not pivot at all: phase 1 is
     skipped and phase 2 starts optimal. *)
  Alcotest.(check bool)
    (Printf.sprintf "no pivots from the optimal basis (%d)"
       warm.Status.iterations)
    true
    (warm.Status.iterations = 0)

let test_garbage_all_basic () =
  (* Every column and every slack marked basic: far too many basics, and
     x/y columns are dependent with the Eq row's fixed slack. The repair
     ladder must prune to a nonsingular basis and still reach the cold
     optimum. *)
  let m = sample_model () in
  let cold = get_opt (Lp.Simplex.solve m) in
  let garbage =
    Basis.make
      ~cols:(Array.make (Model.num_vars m) Basis.Basic)
      ~rows:(Array.make (Model.num_rows m) Basis.Basic)
  in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:garbage m) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective

let test_wrong_shape_falls_back () =
  (* A basis for a completely different model: dimensions disagree, so
     the solver must silently fall back to the cold start. *)
  let m = sample_model () in
  let cold = get_opt (Lp.Simplex.solve m) in
  let alien = Basis.make ~cols:[| Basis.Basic |] ~rows:[| Basis.At_lower |] in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:alien m) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective;
  Alcotest.(check int) "identical pivot count (cold path taken)"
    cold.Status.iterations warm.Status.iterations

let test_zero_column_basic () =
  (* A variable appearing in no row marked Basic: its column is zero, so
     the crash must reject it and cover the rows otherwise. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1. () in
  let lonely = Model.add_var m ~obj:1. ~ub:3. () in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 2.);
  ignore lonely;
  let cold = get_opt (Lp.Simplex.solve m) in
  let bad =
    Basis.make
      ~cols:[| Basis.At_lower; Basis.Basic |]
      ~rows:[| Basis.At_lower |]
  in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:bad m) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective

let test_all_nonbasic () =
  (* No basics at all: the crash installs one artificial/slack per row
     (exactly the cold basis, possibly at other bounds). *)
  let m = sample_model () in
  let cold = get_opt (Lp.Simplex.solve m) in
  let empty =
    Basis.make
      ~cols:(Array.make (Model.num_vars m) Basis.At_upper)
      ~rows:(Array.make (Model.num_rows m) Basis.At_lower)
  in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:empty m) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective

let test_outcome_class_preserved () =
  (* Warm starts must not change infeasible/unbounded verdicts either. *)
  let inf = Model.create Model.Minimize in
  let x = Model.add_var inf ~obj:1. () in
  ignore (Model.add_constraint inf [ (x, 1.) ] Model.Ge 5.);
  ignore (Model.add_constraint inf [ (x, 1.) ] Model.Le 3.);
  let b1 = Basis.make ~cols:[| Basis.Basic |] ~rows:(Array.make 2 Basis.Basic) in
  Alcotest.(check bool) "still infeasible" true
    (Lp.Simplex.solve ~warm_start:b1 inf = Status.Infeasible);
  let unb = Model.create Model.Maximize in
  let u = Model.add_var unb ~obj:1. () in
  let v = Model.add_var unb ~obj:0. () in
  ignore (Model.add_constraint unb [ (u, 1.); (v, -1.) ] Model.Le 1.);
  let b2 =
    Basis.make ~cols:[| Basis.Basic; Basis.Basic |] ~rows:[| Basis.Basic |]
  in
  Alcotest.(check bool) "still unbounded" true
    (Lp.Simplex.solve ~warm_start:b2 unb = Status.Unbounded)

(* ------------------------------------------------------------------ *)
(* Basis translation across epochs (Formulate + Basis_map). *)

let two_epoch_instance () =
  let base = Graph.create ~n:3 in
  ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:10. ~cost:2. ());
  ignore (Graph.add_arc base ~src:1 ~dst:2 ~capacity:10. ~cost:3. ());
  ignore (Graph.add_arc base ~src:0 ~dst:2 ~capacity:10. ~cost:7. ());
  base

let solve_epoch ?warm_start ~base ~charged ~files ~epoch () =
  let program =
    Formulate.create ~base ~charged
      ~capacity:(fun ~link:_ ~layer:_ -> 10.)
      ~files ~epoch ()
  in
  match Formulate.solve_with_info ?warm_start program with
  | Formulate.Scheduled { objective; charged; _ }, info ->
      (objective, charged, info)
  | (Formulate.Infeasible | Formulate.Solver_failure _), _ ->
      Alcotest.fail "epoch unexpectedly unsolvable"

let test_stale_basis_across_epochs () =
  (* Epoch 0's basis mentions file 0's columns (deleted at epoch 1) and
     misses file 1's (created at epoch 1): translation must survive both
     directions and leave the objective untouched. *)
  let base = two_epoch_instance () in
  let m = Graph.num_arcs base in
  let f0 = File.make ~id:0 ~src:0 ~dst:2 ~size:8. ~deadline:3 ~release:0 in
  let f1 = File.make ~id:1 ~src:0 ~dst:2 ~size:6. ~deadline:2 ~release:1 in
  let _, charged0, info0 =
    solve_epoch ~base ~charged:(Array.make m 0.) ~files:[ f0 ] ~epoch:0 ()
  in
  let carried =
    match info0.Formulate.basis with
    | Some b -> b
    | None -> Alcotest.fail "no basis captured at epoch 0"
  in
  let cold_obj, _, cold_info =
    solve_epoch ~base ~charged:charged0 ~files:[ f1 ] ~epoch:1 ()
  in
  let warm_obj, _, warm_info =
    solve_epoch ~warm_start:carried ~base ~charged:charged0 ~files:[ f1 ]
      ~epoch:1 ()
  in
  Alcotest.(check (float 1e-6)) "same objective" cold_obj warm_obj;
  Alcotest.(check bool)
    (Printf.sprintf "warm start no slower (%d cold vs %d warm)"
       cold_info.Formulate.iterations warm_info.Formulate.iterations)
    true
    (warm_info.Formulate.iterations <= cold_info.Formulate.iterations)

let test_hit_rate_bounds () =
  let base = two_epoch_instance () in
  let m = Graph.num_arcs base in
  let f0 = File.make ~id:0 ~src:0 ~dst:2 ~size:8. ~deadline:3 ~release:0 in
  let program =
    Formulate.create ~base ~charged:(Array.make m 0.)
      ~capacity:(fun ~link:_ ~layer:_ -> 10.)
      ~files:[ f0 ] ~epoch:0 ()
  in
  let _, info = Formulate.solve_with_info program in
  match info.Formulate.basis with
  | None -> Alcotest.fail "no basis captured"
  | Some b ->
      let rate = Basis_map.hit_rate b (Formulate.keymap program) in
      Alcotest.(check (float 1e-9)) "same epoch hits fully" 1. rate

(* ------------------------------------------------------------------ *)
(* Property: on randomized multi-slot instances the warm pipeline agrees
   with the cold one everywhere. *)

let gen_instance =
  Gen.(
    let* seed = int_range 0 9999 in
    let* nodes = int_range 3 5 in
    let* slots = int_range 2 4 in
    let* files_max = int_range 1 3 in
    return (seed, nodes, slots, files_max))

let prop_warm_equals_cold =
  QCheck2.Test.make ~name:"warm objective = cold objective per epoch"
    ~count:40 gen_instance (fun (seed, nodes, slots, files_max) ->
      let rng = Prelude.Rng.of_int (seed + 1) in
      let base =
        Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
          ~capacity:30.
      in
      let spec =
        { (Sim.Workload.paper_spec ~nodes ~files_max ~max_deadline:3) with
          Sim.Workload.size_min = 2.;
          size_max = 15.;
          deadlines = Sim.Workload.Uniform_deadline (2, 3) }
      in
      let workload = Sim.Workload.create spec (Prelude.Rng.of_int seed) in
      let ledger = Sim.Ledger.create ~base in
      let carried = ref None in
      let ok = ref true in
      for slot = 0 to slots - 1 do
        let files = Sim.Workload.arrivals workload ~slot in
        if files <> [] then begin
          let capacity ~link ~layer =
            Sim.Ledger.residual ledger ~link ~slot:(slot + layer)
          in
          let program =
            Formulate.create ~base
              ~charged:(Sim.Ledger.charged_all ledger)
              ~capacity ~files ~epoch:slot ()
          in
          let cold, _ = Formulate.solve_with_info program in
          let warm, warm_info =
            Formulate.solve_with_info ?warm_start:!carried program
          in
          (match (cold, warm) with
           | ( Formulate.Scheduled { objective = co; plan; _ },
               Formulate.Scheduled { objective = wo; _ } ) ->
               if abs_float (co -. wo) > 1e-6 then ok := false;
               Sim.Ledger.commit_plan ledger plan
           | Formulate.Infeasible, Formulate.Infeasible -> ()
           | _ -> ok := false);
          carried := warm_info.Formulate.basis
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* The JSON emitter of the benchmark must produce valid JSON. A minimal
   recursive-descent parser (the tree carries no JSON library). *)

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else fail () in
  let parse_string () =
    expect '"';
    let rec go () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          pos := !pos + 2;
          go ()
      | _ ->
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
          | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail ();
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let rec members () =
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail ()
          in
          members ()
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let rec elements () =
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail ()
          in
          elements ()
        end
    | Some 't' -> String.iter expect "true"
    | Some 'f' -> String.iter expect "false"
    | Some 'n' -> String.iter expect "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail ()
  in
  try
    parse_value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_bench_json_valid () =
  let summary = Sim.Solver_bench.run ~nodes:4 ~slots:3 ~seed:7 () in
  let json = Sim.Solver_bench.to_json summary in
  Alcotest.(check bool) "emitter output parses as JSON" true (json_valid json);
  (* Sanity-check the parser itself rejects garbage. *)
  Alcotest.(check bool) "parser rejects garbage" false
    (json_valid "{\"a\": [1, }");
  Alcotest.(check (float 1e-9)) "cold and warm agree in the bench" 0.
    summary.Sim.Solver_bench.max_objective_gap

let suite =
  [ Alcotest.test_case "warm restart of the same model" `Quick
      test_warm_restart_same_model;
    Alcotest.test_case "garbage all-basic basis is repaired" `Quick
      test_garbage_all_basic;
    Alcotest.test_case "wrong-shape basis falls back to cold" `Quick
      test_wrong_shape_falls_back;
    Alcotest.test_case "zero column marked basic is rejected" `Quick
      test_zero_column_basic;
    Alcotest.test_case "all-nonbasic basis" `Quick test_all_nonbasic;
    Alcotest.test_case "outcome class preserved" `Quick
      test_outcome_class_preserved;
    Alcotest.test_case "stale basis across epochs" `Quick
      test_stale_basis_across_epochs;
    Alcotest.test_case "same-epoch hit rate is 1" `Quick test_hit_rate_bounds;
    Alcotest.test_case "bench JSON emitter is valid" `Quick
      test_bench_json_valid;
    to_alcotest prop_warm_equals_cold ]
