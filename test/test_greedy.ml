(* The combinatorial greedy store-and-forward scheduler: plan validity,
   free-riding behaviour, and its optimality gap against the exact LP. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Scheduler = Postcard.Scheduler

let ctx ?(charged_value = 0.) base capacity =
  { Scheduler.base;
    epoch = 0;
    period = 100;
    charged = Array.make (Graph.num_arcs base) charged_value;
    links =
      Postcard.Linkview.make
        ~residual:(fun ~link:_ ~slot:_ -> capacity)
        ~occupied:(fun ~link:_ ~slot:_ -> 0.)
        ~down:(fun ~link:_ ~slot:_ -> false) }

let plan_cost base charged plan =
  let horizon =
    match Plan.slot_range plan with Some (_, hi) -> hi + 1 | None -> 1
  in
  Graph.fold_arcs base ~init:0. ~f:(fun acc a ->
      let peak = ref charged.(a.Graph.id) in
      for slot = 0 to horizon - 1 do
        peak := max !peak (Plan.volume_on plan ~link:a.Graph.id ~slot)
      done;
      acc +. (a.Graph.cost *. !peak))

let test_single_file_spreads () =
  let base = Graph.create ~n:2 in
  ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:10. ~cost:2. ());
  let scheduler = Postcard.Greedy_scheduler.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0 ] in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (ctx base 10.) files
  in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  (match Plan.validate ~base ~files ~capacity:(fun ~link:_ ~slot:_ -> 10.) plan with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (* The min-cost flow packs into free+cheapest arcs; all 9 units move. *)
  Alcotest.(check (float 1e-6)) "all moved" 9. (Plan.total_transmitted plan)

let test_free_riding () =
  (* Already-charged direct link: the file should ride completely free. *)
  let base = Graph.create ~n:2 in
  ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:10. ~cost:5. ());
  let scheduler = Postcard.Greedy_scheduler.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0 ] in
  let { Scheduler.plan; _ } =
    Scheduler.schedule scheduler (ctx ~charged_value:4. base 10.) files
  in
  let cost = plan_cost base [| 4. |] plan in
  Alcotest.(check (float 1e-6)) "no new charge" 20. cost

let test_relay_when_cheaper () =
  (* Expensive direct link vs a cheap (and long-deadline) relay path. *)
  let base = Graph.create ~n:3 in
  let _direct = Graph.add_arc base ~src:0 ~dst:2 ~capacity:100. ~cost:50. () in
  ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:100. ~cost:1. ());
  ignore (Graph.add_arc base ~src:1 ~dst:2 ~capacity:100. ~cost:1. ());
  let scheduler = Postcard.Greedy_scheduler.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:2 ~size:8. ~deadline:4 ~release:0 ] in
  let { Scheduler.plan; _ } = Scheduler.schedule scheduler (ctx base 100.) files in
  Alcotest.(check (float 1e-6)) "direct unused" 0.
    (Plan.volume_on plan ~link:0 ~slot:0
     +. Plan.volume_on plan ~link:0 ~slot:1
     +. Plan.volume_on plan ~link:0 ~slot:2
     +. Plan.volume_on plan ~link:0 ~slot:3)

let test_rejects_infeasible () =
  let base = Graph.create ~n:2 in
  ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:5. ~cost:1. ());
  let scheduler = Postcard.Greedy_scheduler.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:20. ~deadline:2 ~release:0 ] in
  let { Scheduler.rejected; _ } = Scheduler.schedule scheduler (ctx base 5.) files in
  Alcotest.(check int) "rejected" 1 (List.length rejected)

let test_batch_respects_capacity () =
  let base = Graph.create ~n:2 in
  ignore (Graph.add_arc base ~src:0 ~dst:1 ~capacity:10. ~cost:1. ());
  let scheduler = Postcard.Greedy_scheduler.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:12. ~deadline:2 ~release:0;
      File.make ~id:1 ~src:0 ~dst:1 ~size:8. ~deadline:2 ~release:0 ]
  in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (ctx base 10.) files
  in
  Alcotest.(check int) "both fit (20 <= 2x10)" 2 (List.length accepted);
  match
    Plan.validate ~base ~files ~capacity:(fun ~link:_ ~slot:_ -> 10.) plan
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* The greedy heuristic can never beat the exact LP, and must stay
   reasonably close on random instances. *)
let test_gap_against_lp () =
  let rng = Prelude.Rng.of_int 606 in
  let total_lp = ref 0. and total_greedy = ref 0. in
  for trial = 1 to 15 do
    let n = 4 + Prelude.Rng.int rng 3 in
    let base =
      Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:60.
    in
    let m = Graph.num_arcs base in
    let charged =
      Array.init m (fun _ ->
          if Prelude.Rng.bool rng then Prelude.Rng.float rng 8. else 0.)
    in
    let files =
      List.init (1 + Prelude.Rng.int rng 4) (fun id ->
          let src = Prelude.Rng.int rng n in
          let rec dst () =
            let d = Prelude.Rng.int rng n in
            if d = src then dst () else d
          in
          File.make ~id ~src ~dst:(dst ())
            ~size:(Prelude.Rng.float_range rng 5. 30.)
            ~deadline:(Prelude.Rng.int_incl rng 2 4)
            ~release:0)
    in
    let context =
      { Scheduler.base;
        epoch = 0;
        period = 100;
        charged;
        links =
          Postcard.Linkview.make
            ~residual:(fun ~link:_ ~slot:_ -> 60.)
            ~occupied:(fun ~link:_ ~slot:_ -> 0.)
            ~down:(fun ~link:_ ~slot:_ -> false) }
    in
    let run scheduler =
      let { Scheduler.plan; rejected; _ } =
        Scheduler.schedule scheduler context files
      in
      if rejected <> [] then
        Alcotest.failf "trial %d: %s rejected files at ample capacity" trial
          (Scheduler.name scheduler);
      (match
         Plan.validate ~base ~files ~capacity:(fun ~link:_ ~slot:_ -> 60.) plan
       with
       | Ok () -> ()
       | Error msg ->
           Alcotest.failf "trial %d (%s): %s" trial (Scheduler.name scheduler) msg);
      plan_cost base charged plan
    in
    let lp_cost = run (Postcard.Postcard_scheduler.make ()) in
    let greedy_cost = run (Postcard.Greedy_scheduler.make ()) in
    if greedy_cost < lp_cost -. 1e-4 then
      Alcotest.failf "trial %d: greedy %.4f beat the exact LP %.4f" trial
        greedy_cost lp_cost;
    total_lp := !total_lp +. lp_cost;
    total_greedy := !total_greedy +. greedy_cost
  done;
  (* Sanity on the aggregate gap: greedy should be within 2x overall. *)
  Alcotest.(check bool)
    (Printf.sprintf "aggregate gap reasonable (lp %.0f, greedy %.0f)" !total_lp
       !total_greedy)
    true
    (!total_greedy <= 2. *. !total_lp +. 1e-6)

let suite =
  [ Alcotest.test_case "single file spreads" `Quick test_single_file_spreads;
    Alcotest.test_case "free riding" `Quick test_free_riding;
    Alcotest.test_case "relay when cheaper" `Quick test_relay_when_cheaper;
    Alcotest.test_case "rejects infeasible" `Quick test_rejects_infeasible;
    Alcotest.test_case "batch respects capacity" `Quick test_batch_respects_capacity;
    Alcotest.test_case "gap against LP x15" `Quick test_gap_against_lp ]
