module Model = Lp.Model

let test_defaults () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m () in
  Alcotest.(check (float 0.)) "lb" 0. (Model.lower_bound m x);
  Alcotest.(check bool) "ub" true (Model.upper_bound m x = infinity);
  Alcotest.(check (float 0.)) "obj" 0. (Model.obj_coeff m x)

let test_names () =
  let m = Model.create ~name:"test" Model.Maximize in
  let x = Model.add_var m ~name:"flow" () in
  let r = Model.add_constraint m ~name:"cap" [ (x, 1.) ] Model.Le 5. in
  Alcotest.(check string) "model name" "test" (Model.name m);
  Alcotest.(check string) "var name" "flow" (Model.var_name m x);
  Alcotest.(check string) "row name" "cap" (Model.row_name m r)

let test_synthesized_names () =
  (* Names are lazy: omitting [name] stores nothing and the accessors
     synthesize positional names on demand. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m () in
  let y = Model.add_var m ~name:"real" () in
  let z = Model.add_var m () in
  let r0 = Model.add_constraint m [ (x, 1.) ] Model.Le 1. in
  let r1 = Model.add_constraint m ~name:"cap" [ (y, 1.) ] Model.Le 1. in
  Alcotest.(check string) "x0" "x0" (Model.var_name m x);
  Alcotest.(check string) "named kept" "real" (Model.var_name m y);
  Alcotest.(check string) "x2" "x2" (Model.var_name m z);
  Alcotest.(check string) "r0" "r0" (Model.row_name m r0);
  Alcotest.(check string) "named row kept" "cap" (Model.row_name m r1)

let test_bad_bounds () =
  let m = Model.create Model.Minimize in
  Alcotest.check_raises "lb > ub" (Invalid_argument "Model.add_var: lb > ub")
    (fun () -> ignore (Model.add_var m ~lb:2. ~ub:1. ()))

let test_dedup_terms () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m () in
  let y = Model.add_var m () in
  let r = Model.add_constraint m [ (x, 1.); (y, 2.); (x, 3.) ] Model.Eq 5. in
  Alcotest.(check int) "merged terms" 2 (List.length (Model.row_terms m r));
  let cx = List.assoc x (Model.row_terms m r) in
  Alcotest.(check (float 0.)) "summed coefficient" 4. cx

let test_cancelling_terms_dropped () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m () in
  let y = Model.add_var m () in
  let r = Model.add_constraint m [ (x, 1.); (x, -1.); (y, 1.) ] Model.Le 1. in
  Alcotest.(check int) "zero coefficient dropped" 1
    (List.length (Model.row_terms m r))

let test_objective_value () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:2. () in
  let _y = Model.add_var m ~obj:(-1.) () in
  Model.add_obj m x 0.5;
  Alcotest.(check (float 1e-12)) "objective" (2.5 *. 3. -. 4.)
    (Model.objective_value m [| 3.; 4. |])

let test_constraint_violation () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:0. ~ub:10. () in
  let y = Model.add_var m () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 5.);
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 1.);
  Alcotest.(check (float 1e-12)) "feasible" 0.
    (Model.constraint_violation m [| 2.; 3. |]);
  Alcotest.(check (float 1e-12)) "Le violated by 1" 1.
    (Model.constraint_violation m [| 3.; 3. |]);
  Alcotest.(check (float 1e-12)) "Ge violated" 1.
    (Model.constraint_violation m [| 0.; 0. |]);
  Alcotest.(check (float 1e-12)) "bound violated" 7.
    (Model.constraint_violation m [| 12.; -7. |])

let test_add_vars_bulk () =
  let m = Model.create Model.Minimize in
  let xs = Model.add_vars m 5 ~lb:1. ~ub:2. () in
  Alcotest.(check int) "count" 5 (Model.num_vars m);
  Array.iter
    (fun x -> Alcotest.(check (float 0.)) "bulk lb" 1. (Model.lower_bound m x))
    xs

let test_standard_form () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3. () in
  let y = Model.add_var m ~obj:5. ~lb:1. ~ub:6. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 2.) ] Model.Le 10.);
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 2.);
  ignore (Model.add_constraint m [ (y, 1.) ] Model.Eq 3.);
  let sf = Lp.Standard_form.of_model m in
  Alcotest.(check int) "struct vars" 2 sf.Lp.Standard_form.n_struct;
  Alcotest.(check int) "rows" 3 sf.Lp.Standard_form.n_rows;
  Alcotest.(check int) "total" 5 (Lp.Standard_form.total_vars sf);
  (* Maximize flips costs. *)
  Alcotest.(check (float 0.)) "flipped cost" (-3.) sf.Lp.Standard_form.cost.(0);
  (* Slack bounds encode senses. *)
  Alcotest.(check (float 0.)) "Le slack lb" 0. sf.Lp.Standard_form.lb.(2);
  Alcotest.(check bool) "Le slack ub" true (sf.Lp.Standard_form.ub.(2) = infinity);
  Alcotest.(check bool) "Ge slack lb" true
    (sf.Lp.Standard_form.lb.(3) = neg_infinity);
  Alcotest.(check (float 0.)) "Ge slack ub" 0. sf.Lp.Standard_form.ub.(3);
  Alcotest.(check (float 0.)) "Eq slack fixed lb" 0. sf.Lp.Standard_form.lb.(4);
  Alcotest.(check (float 0.)) "Eq slack fixed ub" 0. sf.Lp.Standard_form.ub.(4)

let suite =
  [ Alcotest.test_case "defaults" `Quick test_defaults;
    Alcotest.test_case "names" `Quick test_names;
    Alcotest.test_case "synthesized lazy names" `Quick test_synthesized_names;
    Alcotest.test_case "bad bounds" `Quick test_bad_bounds;
    Alcotest.test_case "dedup terms" `Quick test_dedup_terms;
    Alcotest.test_case "cancelling terms dropped" `Quick test_cancelling_terms_dropped;
    Alcotest.test_case "objective value" `Quick test_objective_value;
    Alcotest.test_case "constraint violation" `Quick test_constraint_violation;
    Alcotest.test_case "add_vars bulk" `Quick test_add_vars_bulk;
    Alcotest.test_case "standard form" `Quick test_standard_form ]
