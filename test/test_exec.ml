(* The domain pool and the contracts the parallel experiment runner
   builds on it: submission-order results, exception propagation without
   deadlock, bit-identical serial/parallel sweeps, and domain-safe
   telemetry (metric totals and a reconciling merged trace) under
   -j 4. *)

module Pool = Exec.Pool
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Reader = Obs.Trace_reader

let with_pool ~domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Pool semantics. *)

let test_map_preserves_order () =
  with_pool ~domains:4 @@ fun pool ->
  let items = Array.init 100 (fun i -> 10 * i) in
  let out =
    Pool.map pool
      ~f:(fun idx x ->
        Alcotest.(check int) "f sees the item's index" x (10 * idx);
        x + 1)
      items
  in
  Alcotest.(check (array int)) "results in submission order"
    (Array.map (fun x -> x + 1) items)
    out

exception Boom of int

let test_exception_propagates_no_deadlock () =
  with_pool ~domains:4 @@ fun pool ->
  (match
     Pool.map pool
       ~f:(fun i () -> if i mod 3 = 1 then raise (Boom i) else i)
       (Array.make 50 ())
   with
   | _ -> Alcotest.fail "expected the item exception to re-raise"
   | exception Boom i ->
       Alcotest.(check int) "smallest failing index wins" 1 i);
  (* A failed batch must not wedge the workers. *)
  let out = Pool.map pool ~f:(fun i x -> i + x) (Array.init 10 (fun i -> i)) in
  Alcotest.(check (array int)) "pool usable after a failure"
    (Array.init 10 (fun i -> 2 * i))
    out

let test_map_reduce_ordered () =
  with_pool ~domains:4 @@ fun pool ->
  (* String concatenation is non-commutative, so any out-of-order or
     racy reduce scrambles the result. *)
  let s =
    Pool.map_reduce pool
      ~f:(fun i () -> string_of_int i ^ ".")
      ~init:"" ~reduce:( ^ ) (Array.make 12 ())
  in
  Alcotest.(check string) "ordered non-commutative reduce"
    "0.1.2.3.4.5.6.7.8.9.10.11." s

(* ------------------------------------------------------------------ *)
(* The scheduler registry (what lets each cell build its own value). *)

let factory name =
  match Postcard.Scheduler.factory name with
  | Some f -> f
  | None -> Alcotest.failf "scheduler %s not registered" name

let test_registry () =
  let names = Postcard.Scheduler.registered () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "postcard"; "flow-based"; "flow-excess"; "flow-joint"; "direct";
      "greedy-snf"; "burst-95"; "ledger"; "postcard-tiered" ];
  (* Aliases resolve to the canonical strategy... *)
  (match Postcard.Scheduler.make "flow" with
   | Some s ->
       Alcotest.(check string) "alias resolves" "flow-based"
         (Postcard.Scheduler.name s)
   | None -> Alcotest.fail "alias flow not resolved");
  (* ...and every make call returns a distinct value. *)
  let a = Postcard.Scheduler.make_exn "postcard" in
  let b = Postcard.Scheduler.make_exn "postcard" in
  Alcotest.(check bool) "fresh instance per make" false (a == b);
  Alcotest.(check bool) "unknown name" true
    (Postcard.Scheduler.make "nope" = None);
  Alcotest.(check bool) "make_exn names the unknown scheduler" true
    (match Postcard.Scheduler.make_exn "nope" with
     | exception Invalid_argument msg ->
         let has sub =
           let rec go i =
             i + String.length sub <= String.length msg
             && (String.sub msg i (String.length sub) = sub || go (i + 1))
           in
           go 0
         in
         has "nope" && has "postcard"
     | _ -> false);
  match Postcard.Scheduler.make_all () with
  | Error errs ->
      Alcotest.failf "make_all reported broken factories: %s"
        (String.concat "; " errs)
  | Ok instances ->
      Alcotest.(check int) "make_all covers the registry"
        (List.length names) (List.length instances)

(* ------------------------------------------------------------------ *)
(* The parallel sweep: bit-identical results and domain-safe telemetry. *)

let setting =
  Sim.Experiment.with_overrides ~label:"exec-test" ~nodes:5 ~capacity:20.
    ~files_max:2 ~slots:6 ~runs:3 ~seed:7
    Sim.Experiment.custom_default

let schedulers = [ factory "postcard"; factory "direct" ]

let test_parallel_bit_identical () =
  let serial = Sim.Experiment.run_setting setting ~schedulers in
  let par =
    with_pool ~domains:4 @@ fun pool ->
    Sim.Experiment.run_setting ~pool setting ~schedulers
  in
  (* Structural equality covers every float bit in costs, CIs and the
     averaged series; only the wall-clock decision latency is exempt. *)
  let strip (s : Sim.Experiment.scheduler_summary) =
    { s with Sim.Experiment.mean_decision_ms = 0. }
  in
  Alcotest.(check bool) "-j 1 and -j 4 summaries bit-identical" true
    (List.map strip serial.Sim.Experiment.summaries
    = List.map strip par.Sim.Experiment.summaries)

let test_metrics_totals_parallel () =
  let counters () =
    ( Metrics.counter_value (Metrics.counter "sim.runs"),
      Metrics.counter_value (Metrics.counter "sim.slots"),
      Metrics.counter_value (Metrics.counter "sched.decisions"),
      Metrics.counter_value (Metrics.counter "sched.files_offered") )
  in
  let measure run =
    Metrics.reset ();
    Metrics.set_enabled true;
    Fun.protect ~finally:(fun () ->
        Metrics.set_enabled false;
        Metrics.reset ())
      (fun () ->
        ignore (run ());
        counters ())
  in
  let serial =
    measure (fun () -> Sim.Experiment.run_setting setting ~schedulers)
  in
  let par =
    measure (fun () ->
        with_pool ~domains:4 @@ fun pool ->
        Sim.Experiment.run_setting ~pool setting ~schedulers)
  in
  let runs, slots, decisions, _ = serial in
  Alcotest.(check int) "sim.runs counts every cell"
    (Sim.Experiment.cells setting ~schedulers)
    runs;
  Alcotest.(check int) "sim.slots counts every slot"
    (runs * setting.Sim.Experiment.slots)
    slots;
  Alcotest.(check bool) "decisions recorded" true (decisions > 0);
  Alcotest.(check bool) "parallel totals match serial" true (serial = par)

let collect_lines f =
  let lines = ref [] in
  Trace.set_callback (fun line -> lines := line :: !lines);
  Fun.protect ~finally:Trace.close f;
  List.rev !lines

let test_trace_reconciles_parallel () =
  let lines =
    collect_lines (fun () ->
        with_pool ~domains:4 @@ fun pool ->
        ignore (Sim.Experiment.run_setting ~pool setting ~schedulers))
  in
  let events =
    List.map
      (fun line ->
        match Reader.of_line line with
        | Ok ev -> ev
        | Error msg -> Alcotest.failf "invalid merged line (%s): %s" msg line)
      lines
  in
  (* The merged stream must satisfy everything the strict reader checks:
     consecutive seq from 1. Timestamps are only monotone within an
     emission context (a [dom] lane) — cells run concurrently, so merged
     wall-clock stamps legitimately interleave across lanes. *)
  List.iteri
    (fun i ev -> Alcotest.(check int) "consecutive seq" (i + 1) ev.Reader.seq)
    events;
  let lane_last = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let prev =
        Option.value ~default:0. (Hashtbl.find_opt lane_last ev.Reader.dom)
      in
      Alcotest.(check bool) "monotone ts within a lane" true
        (ev.Reader.ts >= prev);
      Hashtbl.replace lane_last ev.Reader.dom ev.Reader.ts)
    events;
  let runs = Sim.Trace_summary.of_events events in
  Alcotest.(check int) "one traced run per cell"
    (Sim.Experiment.cells setting ~schedulers)
    (List.length runs);
  List.iter
    (fun run ->
      match Sim.Trace_summary.reconcile run with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "run %s failed reconciliation: %s"
            run.Sim.Trace_summary.scheduler msg)
    runs

let suite =
  [ Alcotest.test_case "pool: map preserves submission order" `Quick
      test_map_preserves_order;
    Alcotest.test_case "pool: item exception re-raises, no deadlock" `Quick
      test_exception_propagates_no_deadlock;
    Alcotest.test_case "pool: map_reduce folds in order" `Quick
      test_map_reduce_ordered;
    Alcotest.test_case "registry: built-ins, aliases, fresh instances" `Quick
      test_registry;
    Alcotest.test_case "runner: -j 1 and -j 4 bit-identical" `Quick
      test_parallel_bit_identical;
    Alcotest.test_case "runner: metric totals survive -j 4" `Quick
      test_metrics_totals_parallel;
    Alcotest.test_case "runner: merged -j 4 trace reconciles" `Quick
      test_trace_reconciles_parallel ]
