(* Failure injection: the engine must catch schedulers that lie. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Scheduler = Postcard.Scheduler

let base () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. ());
  g

let workload () =
  Sim.Workload.create
    { (Sim.Workload.paper_spec ~nodes:2 ~files_max:1 ~max_deadline:2) with
      Sim.Workload.size_min = 4.;
      size_max = 8. }
    (Prelude.Rng.of_int 1)

(* A scheduler that accepts files but returns a plan violating [mangle]. *)
let lying_scheduler ~fluid mangle =
  Scheduler.stateless ~name:"liar" ~fluid (fun ctx files ->
      ignore ctx;
      { Scheduler.plan = mangle files; accepted = files; rejected = [] })

let expect_invalid name scheduler =
  match
    Sim.Engine.run ~base:(base ()) ~scheduler ~workload:(workload ()) ~slots:2
  with
  | exception Sim.Engine.Invalid_plan _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_plan" name

let test_overbooked_plan_caught () =
  expect_invalid "overbooked"
    (lying_scheduler ~fluid:true (fun files ->
         match files with
         | f :: _ ->
             (* 3x the link capacity in one slot. *)
             { Plan.transmissions =
                 [ { Plan.file = f.File.id; link = 0; slot = f.File.release;
                     volume = 30. } ];
               holdovers = [] }
         | [] -> Plan.empty))

let test_underdelivery_caught () =
  expect_invalid "underdelivery"
    (lying_scheduler ~fluid:false (fun files ->
         match files with
         | f :: _ ->
             { Plan.transmissions =
                 [ { Plan.file = f.File.id; link = 0; slot = f.File.release;
                     volume = f.File.size /. 2. } ];
               holdovers = [] }
         | [] -> Plan.empty))

let test_deadline_violation_caught () =
  expect_invalid "deadline violation"
    (lying_scheduler ~fluid:false (fun files ->
         match files with
         | f :: _ ->
             { Plan.transmissions =
                 [ { Plan.file = f.File.id; link = 0;
                     slot = File.last_slot f + 3; volume = f.File.size } ];
               holdovers = [] }
         | [] -> Plan.empty))

let test_fluid_skips_conservation () =
  (* A fluid scheduler's plan is only capacity-checked: the same
     underdelivering plan passes when flagged fluid. *)
  let scheduler =
    lying_scheduler ~fluid:true (fun files ->
        match files with
        | f :: _ ->
            { Plan.transmissions =
                [ { Plan.file = f.File.id; link = 0; slot = f.File.release;
                    volume = min 10. (f.File.size /. 2.) } ];
              holdovers = [] }
        | [] -> Plan.empty)
  in
  let outcome =
    Sim.Engine.run ~base:(base ()) ~scheduler ~workload:(workload ()) ~slots:2
  in
  Alcotest.(check bool) "ran to completion" true
    (Array.length outcome.Sim.Engine.cost_series = 2)

let test_engine_rejects_zero_slots () =
  Alcotest.(check bool) "slots >= 1" true
    (match
       Sim.Engine.run ~base:(base ())
         ~scheduler:(Postcard.Direct_scheduler.make ())
         ~workload:(workload ()) ~slots:0
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_tail_slots_accounted () =
  (* A file accepted near the end books slots past the arrival window; the
     link_volumes matrix must cover them. *)
  let g = base () in
  let scheduler = Postcard.Direct_scheduler.make () in
  let spec =
    { (Sim.Workload.paper_spec ~nodes:2 ~files_max:1 ~max_deadline:4) with
      Sim.Workload.size_min = 8.;
      size_max = 9.;
      deadlines = Sim.Workload.Fixed_deadline 4 }
  in
  let workload = Sim.Workload.create spec (Prelude.Rng.of_int 3) in
  let outcome = Sim.Engine.run ~base:g ~scheduler ~workload ~slots:2 in
  (* The slot-1 file of deadline 4 books up to slot 4. *)
  Alcotest.(check bool) "tail recorded" true
    (Array.length outcome.Sim.Engine.link_volumes.(0) >= 4)

let suite =
  [ Alcotest.test_case "overbooked caught" `Quick test_overbooked_plan_caught;
    Alcotest.test_case "underdelivery caught" `Quick test_underdelivery_caught;
    Alcotest.test_case "deadline violation caught" `Quick test_deadline_violation_caught;
    Alcotest.test_case "fluid skips conservation" `Quick test_fluid_skips_conservation;
    Alcotest.test_case "zero slots rejected" `Quick test_engine_rejects_zero_slots;
    Alcotest.test_case "tail slots accounted" `Quick test_tail_slots_accounted ]
