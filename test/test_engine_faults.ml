(* Failure injection: the engine must catch schedulers that lie. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Scheduler = Postcard.Scheduler

let base () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. ());
  g

let workload () =
  Sim.Workload.create
    { (Sim.Workload.paper_spec ~nodes:2 ~files_max:1 ~max_deadline:2) with
      Sim.Workload.size_min = 4.;
      size_max = 8. }
    (Prelude.Rng.of_int 1)

(* A scheduler that accepts files but returns a plan violating [mangle]. *)
let lying_scheduler ~fluid mangle =
  Scheduler.stateless ~name:"liar" ~fluid (fun ctx files ->
      ignore ctx;
      { Scheduler.plan = mangle files; accepted = files; rejected = [] })

let expect_invalid name scheduler =
  match
    Sim.Engine.(
      run (make ~base:(base ()) ~scheduler ~workload:(workload ()) ~slots:2 ()))
  with
  | exception Sim.Engine.Invalid_plan _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_plan" name

let test_overbooked_plan_caught () =
  expect_invalid "overbooked"
    (lying_scheduler ~fluid:true (fun files ->
         match files with
         | f :: _ ->
             (* 3x the link capacity in one slot. *)
             { Plan.transmissions =
                 [ { Plan.file = f.File.id; link = 0; slot = f.File.release;
                     volume = 30. } ];
               holdovers = [] }
         | [] -> Plan.empty))

let test_underdelivery_caught () =
  expect_invalid "underdelivery"
    (lying_scheduler ~fluid:false (fun files ->
         match files with
         | f :: _ ->
             { Plan.transmissions =
                 [ { Plan.file = f.File.id; link = 0; slot = f.File.release;
                     volume = f.File.size /. 2. } ];
               holdovers = [] }
         | [] -> Plan.empty))

let test_deadline_violation_caught () =
  expect_invalid "deadline violation"
    (lying_scheduler ~fluid:false (fun files ->
         match files with
         | f :: _ ->
             { Plan.transmissions =
                 [ { Plan.file = f.File.id; link = 0;
                     slot = File.last_slot f + 3; volume = f.File.size } ];
               holdovers = [] }
         | [] -> Plan.empty))

let test_fluid_skips_conservation () =
  (* A fluid scheduler's plan is only capacity-checked: the same
     underdelivering plan passes when flagged fluid. *)
  let scheduler =
    lying_scheduler ~fluid:true (fun files ->
        match files with
        | f :: _ ->
            { Plan.transmissions =
                [ { Plan.file = f.File.id; link = 0; slot = f.File.release;
                    volume = min 10. (f.File.size /. 2.) } ];
              holdovers = [] }
        | [] -> Plan.empty)
  in
  let outcome =
    Sim.Engine.(
      run (make ~base:(base ()) ~scheduler ~workload:(workload ()) ~slots:2 ()))
  in
  Alcotest.(check bool) "ran to completion" true
    (Array.length outcome.Sim.Engine.cost_series = 2)

let test_engine_rejects_zero_slots () =
  Alcotest.(check bool) "slots >= 1" true
    (match
       Sim.Engine.(
         run
           (make ~base:(base ())
              ~scheduler:(Postcard.Direct_scheduler.make ())
              ~workload:(workload ()) ~slots:0 ()))
     with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_tail_slots_accounted () =
  (* A file accepted near the end books slots past the arrival window; the
     link_volumes matrix must cover them. *)
  let g = base () in
  let scheduler = Postcard.Direct_scheduler.make () in
  let spec =
    { (Sim.Workload.paper_spec ~nodes:2 ~files_max:1 ~max_deadline:4) with
      Sim.Workload.size_min = 8.;
      size_max = 9.;
      deadlines = Sim.Workload.Fixed_deadline 4 }
  in
  let workload = Sim.Workload.create spec (Prelude.Rng.of_int 3) in
  let outcome =
    Sim.Engine.(run (make ~base:g ~scheduler ~workload ~slots:2 ()))
  in
  (* The slot-1 file of deadline 4 books up to slot 4. *)
  Alcotest.(check bool) "tail recorded" true
    (Array.length outcome.Sim.Engine.link_volumes.(0) >= 4)

(* ------------------------------------------------------------------ *)
(* Fault injection: stranding, re-planning, loss and byte accounting. *)

let parse_faults spec =
  match Sim.Faults.parse spec with
  | Ok sc -> sc
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg

(* One file 0 -> 1 of size 12 with deadline 4 on a capacity-10 link: the
   direct scheduler spreads it at 3 GB per slot over slots 0..3, so an
   outage revealed mid-transfer strands exactly the not-yet-flowed half. *)
let scripted_run ~faults ~deadline ~size =
  let g = base () in
  let workload =
    Sim.Workload.scripted
      [ File.make ~id:0 ~src:0 ~dst:1 ~size ~deadline ~release:0 ]
  in
  Sim.Engine.(
    run
      (make ~base:g
         ~scheduler:(Postcard.Direct_scheduler.make ())
         ~workload ~slots:deadline ~faults ()))

let test_strand_and_recover () =
  (* Outage at slot 2 only: slots 2 and 3 (3 + 3 GB) are stranded; the
     re-offer fits entirely into slot 3 (6 <= capacity 10). *)
  let o =
    scripted_run ~faults:(parse_faults "link:0-1@2..2") ~deadline:4 ~size:12.
  in
  Alcotest.(check (float 1e-9)) "offered" 12. o.Sim.Engine.offered_volume;
  Alcotest.(check (float 1e-9)) "stranded" 6. o.Sim.Engine.stranded_volume;
  Alcotest.(check (float 1e-9)) "recovered" 6. o.Sim.Engine.recovered_volume;
  Alcotest.(check (float 1e-9)) "nothing lost" 0. o.Sim.Engine.lost_volume;
  Alcotest.(check (float 1e-9)) "delivered in full" 12.
    o.Sim.Engine.delivered_volume;
  Alcotest.(check int) "one replan" 1 o.Sim.Engine.replanned_files;
  Alcotest.(check int) "no losses" 0 o.Sim.Engine.lost_files;
  Alcotest.(check int) "no rejections" 0 o.Sim.Engine.rejected_files;
  (* The re-planned bytes moved into slot 3; the dead slot carries 0. *)
  Alcotest.(check (float 1e-9)) "slot 2 empty" 0.
    o.Sim.Engine.link_volumes.(0).(2);
  Alcotest.(check (float 1e-9)) "slot 3 doubled" 6.
    o.Sim.Engine.link_volumes.(0).(3)

let test_strand_and_lose () =
  (* Outage over slots 2..3 kills the whole remaining window: the
     re-offer cannot be placed and its 6 GB are lost. *)
  let o =
    scripted_run ~faults:(parse_faults "link:0-1@2..3") ~deadline:4 ~size:12.
  in
  Alcotest.(check (float 1e-9)) "stranded" 6. o.Sim.Engine.stranded_volume;
  Alcotest.(check (float 1e-9)) "nothing recovered" 0.
    o.Sim.Engine.recovered_volume;
  Alcotest.(check (float 1e-9)) "lost" 6. o.Sim.Engine.lost_volume;
  Alcotest.(check (float 1e-9)) "half delivered" 6.
    o.Sim.Engine.delivered_volume;
  Alcotest.(check int) "one loss" 1 o.Sim.Engine.lost_files;
  Alcotest.(check int) "a lost re-offer is not a rejection" 0
    o.Sim.Engine.rejected_files;
  (* Accounting closes: offered = delivered + lost + rejected. *)
  Alcotest.(check (float 1e-9)) "byte decomposition" 12.
    (o.Sim.Engine.delivered_volume +. o.Sim.Engine.lost_volume
    +. o.Sim.Engine.rejected_volume)

let test_degrade_evicts_over_cap () =
  (* 36 GB over 4 slots runs at 9 GB/slot; halving the link to 5 GB/slot
     from slot 2 strands the remaining 18 GB, and the 10 GB of degraded
     window left cannot absorb them. *)
  let o =
    scripted_run
      ~faults:(parse_faults "degrade:0-1@2..3:0.5")
      ~deadline:4 ~size:36.
  in
  Alcotest.(check (float 1e-9)) "stranded" 18. o.Sim.Engine.stranded_volume;
  Alcotest.(check (float 1e-9)) "lost" 18. o.Sim.Engine.lost_volume;
  Alcotest.(check (float 1e-9)) "delivered" 18. o.Sim.Engine.delivered_volume

let test_charge_drops_with_voided_bookings () =
  (* Stranding un-books future volume; when that volume drove the peak,
     the charge falls with it (never-flowed bytes are never billed). *)
  let o_faulty =
    scripted_run ~faults:(parse_faults "link:0-1@2..3") ~deadline:4 ~size:12.
  in
  let o_clean = scripted_run ~faults:Sim.Faults.empty ~deadline:4 ~size:12. in
  Alcotest.(check bool) "charge never exceeds the clean run" true
    (o_faulty.Sim.Engine.final_charged.(0)
    <= o_clean.Sim.Engine.final_charged.(0) +. 1e-9)

let test_empty_scenario_bit_identical () =
  (* An empty scenario must take the exact fault-free code path: outcomes
     and trace streams are bit-identical, not merely close. *)
  let collect f =
    let lines = ref [] in
    Obs.Trace.set_callback (fun line -> lines := line :: !lines);
    let r = Fun.protect ~finally:Obs.Trace.close f in
    (r, List.rev !lines)
  in
  let strip_ts line =
    (* Timestamps and wall-clock durations are the only nondeterminism. *)
    match Obs.Json.parse line with
    | Error msg -> Alcotest.failf "bad trace line (%s): %s" msg line
    | Ok (Obs.Json.Obj fields) ->
        Obs.Json.to_string
          (Obs.Json.Obj
             (List.filter
                (fun (k, _) ->
                  k <> "ts" && k <> "dur_ms" && k <> "ms" && k <> "sched_ms")
                fields))
    | Ok _ -> Alcotest.failf "trace line is not an object: %s" line
  in
  let traced faults =
    collect (fun () ->
        let g = base () in
        let workload =
          Sim.Workload.create
            { (Sim.Workload.paper_spec ~nodes:2 ~files_max:2 ~max_deadline:3)
              with
              Sim.Workload.size_min = 2.;
              size_max = 8. }
            (Prelude.Rng.of_int 5)
        in
        Sim.Engine.(
          run
            (make ~base:g
               ~scheduler:(Postcard.Direct_scheduler.make ())
               ~workload ~slots:5 ?faults ())))
  in
  let o1, t1 = traced None in
  let o2, t2 = traced (Some Sim.Faults.empty) in
  Alcotest.(check bool) "trace captured" true (List.length t1 > 0);
  Alcotest.(check (array (float 0.))) "identical cost series"
    o1.Sim.Engine.cost_series o2.Sim.Engine.cost_series;
  Alcotest.(check (array (float 0.))) "identical charges"
    o1.Sim.Engine.final_charged o2.Sim.Engine.final_charged;
  Alcotest.(check (float 0.)) "identical delivered"
    o1.Sim.Engine.delivered_volume o2.Sim.Engine.delivered_volume;
  Alcotest.(check (list string)) "identical trace stream"
    (List.map strip_ts t1) (List.map strip_ts t2)

let test_faulted_sweep_pool_invariant () =
  (* The paired-comparison sweep stays bit-identical across pool sizes
     with a fault scenario injected into every cell. *)
  let setting =
    Sim.Experiment.with_overrides ~label:"fault-sweep" ~nodes:5 ~capacity:20.
      ~files_max:2 ~slots:6 ~runs:2 ~seed:7
      ~faults:(parse_faults "link:0-1@2..3")
      Sim.Experiment.custom_default
  in
  let schedulers =
    [ (fun () -> Postcard.Postcard_scheduler.make ());
      (fun () -> Postcard.Direct_scheduler.make ()) ]
  in
  let serial = Sim.Experiment.run_setting setting ~schedulers in
  let pool = Exec.Pool.create ~domains:2 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () -> Sim.Experiment.run_setting ~pool setting ~schedulers)
  in
  let strip (s : Sim.Experiment.scheduler_summary) =
    { s with Sim.Experiment.mean_decision_ms = 0. }
  in
  Alcotest.(check bool) "bit-identical summaries" true
    (List.map strip serial.Sim.Experiment.summaries
    = List.map strip par.Sim.Experiment.summaries)

let test_trace_reconciles_under_faults () =
  (* The fault trace points and the extended run totals must satisfy the
     analyzer's byte-accounting reconciliation. *)
  let lines = ref [] in
  Obs.Trace.set_callback (fun line -> lines := line :: !lines);
  let o =
    Fun.protect ~finally:Obs.Trace.close (fun () ->
        scripted_run
          ~faults:(parse_faults "link:0-1@2..2")
          ~deadline:4 ~size:12.)
  in
  let events =
    (* [lines] accumulated newest-first; rev_map restores stream order. *)
    List.rev_map
      (fun line ->
        match Obs.Trace_reader.of_line line with
        | Ok ev -> ev
        | Error msg -> Alcotest.failf "invalid trace line: %s" msg)
      !lines
  in
  match Sim.Trace_summary.of_events events with
  | [ run ] ->
      (match Sim.Trace_summary.reconcile run with
       | Ok () -> ()
       | Error msg -> Alcotest.failf "reconciliation failed: %s" msg);
      Alcotest.(check int) "one reveal" 1 run.Sim.Trace_summary.fault_reveals;
      Alcotest.(check int) "one strand" 1 run.Sim.Trace_summary.fault_strands;
      Alcotest.(check int) "no losses" 0 run.Sim.Trace_summary.fault_losses;
      Alcotest.(check (option int)) "replans carried" (Some 1)
        run.Sim.Trace_summary.replanned_files;
      Alcotest.(check (option (float 1e-9))) "offered carried" (Some 12.)
        run.Sim.Trace_summary.offered_volume;
      Alcotest.(check (option (float 1e-9))) "delivered carried"
        (Some o.Sim.Engine.delivered_volume)
        run.Sim.Trace_summary.delivered_volume;
      let stranded_by_slot =
        List.fold_left
          (fun acc (r : Sim.Trace_summary.slot_row) ->
            acc +. r.Sim.Trace_summary.stranded_bytes)
          0. run.Sim.Trace_summary.rows
      in
      Alcotest.(check (float 1e-9)) "per-slot stranding sums" 6.
        stranded_by_slot
  | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs)

let test_postcard_replans_at_least_greedy () =
  (* The acceptance scenario: a mid-run outage on a 6-DC network. The
     postcard scheduler's store-and-forward re-planning must deliver at
     least as much as the greedy baseline facing the same faults. *)
  let setting =
    Sim.Experiment.with_overrides ~label:"outage-comparison" ~nodes:6
      ~capacity:30. ~files_max:4 ~slots:8 ~runs:2 ~seed:42
      ~faults:(parse_faults "link:0-1@3..5")
      Sim.Experiment.custom_default
  in
  let results =
    Sim.Experiment.run_setting setting
      ~schedulers:
        [ (fun () -> Postcard.Postcard_scheduler.make ());
          (fun () -> Postcard.Greedy_scheduler.make ()) ]
  in
  let postcard = Sim.Experiment.find_summary_exn results "postcard" in
  let greedy = Sim.Experiment.find_summary_exn results "greedy-snf" in
  Alcotest.(check bool) "postcard delivers at least as much" true
    (postcard.Sim.Experiment.delivered_volume
    >= greedy.Sim.Experiment.delivered_volume -. 1e-6)

let suite =
  [ Alcotest.test_case "overbooked caught" `Quick test_overbooked_plan_caught;
    Alcotest.test_case "underdelivery caught" `Quick test_underdelivery_caught;
    Alcotest.test_case "deadline violation caught" `Quick test_deadline_violation_caught;
    Alcotest.test_case "fluid skips conservation" `Quick test_fluid_skips_conservation;
    Alcotest.test_case "zero slots rejected" `Quick test_engine_rejects_zero_slots;
    Alcotest.test_case "tail slots accounted" `Quick test_tail_slots_accounted;
    Alcotest.test_case "strand and recover" `Quick test_strand_and_recover;
    Alcotest.test_case "strand and lose" `Quick test_strand_and_lose;
    Alcotest.test_case "degrade evicts over cap" `Quick
      test_degrade_evicts_over_cap;
    Alcotest.test_case "voided bookings uncharge" `Quick
      test_charge_drops_with_voided_bookings;
    Alcotest.test_case "empty scenario bit-identical" `Quick
      test_empty_scenario_bit_identical;
    Alcotest.test_case "faulted sweep pool-invariant" `Quick
      test_faulted_sweep_pool_invariant;
    Alcotest.test_case "trace reconciles under faults" `Quick
      test_trace_reconciles_under_faults;
    Alcotest.test_case "postcard replans at least greedy" `Quick
      test_postcard_replans_at_least_greedy ]
