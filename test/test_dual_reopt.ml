(* Dual-simplex re-optimization: when only the RHS or bounds move, the
   carried basis stays dual-feasible and the solver must reach the new
   optimum through the dual path — zero phase-1 pivots, zero repair
   rounds — while agreeing with a cold primal solve on the outcome class
   and (to 1e-6) on the objective. The property tests replay randomized
   online instances, including mid-run link outages; the engine test
   drives a real post-strand re-plan through a trace sink. *)

module Model = Lp.Model
module Status = Lp.Status
module Graph = Netgraph.Graph
module File = Postcard.File
module Formulate = Postcard.Formulate
module Trace = Obs.Trace
module Reader = Obs.Trace_reader
module Gen = QCheck2.Gen

let to_alcotest = QCheck_alcotest.to_alcotest

let get_opt = function
  | Status.Optimal s -> s
  | other ->
      Alcotest.failf "expected optimal, got %a" Status.pp_outcome other

let check_pivot_split (s : Status.solution) =
  let st = s.Status.stats in
  Alcotest.(check int) "phase1 + phase2 + dual = iterations"
    s.Status.iterations
    (st.Status.phase1_pivots + st.Status.phase2_pivots
    + st.Status.dual_pivots)

(* The sample model of the warm-start suite, with a movable Ge RHS and a
   movable upper bound: both perturbations leave the carried basis
   dual-feasible (costs untouched), so they are pure dual territory. *)
let model ~demand ~x_ub =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:2. ~ub:x_ub () in
  let y = Model.add_var m ~obj:3. () in
  let z = Model.add_var m ~obj:1. ~ub:4. () in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.); (z, 1.) ] Model.Ge demand);
  ignore (Model.add_constraint m [ (x, 1.); (y, -1.) ] Model.Eq 1.);
  ignore (Model.add_constraint m [ (y, 2.); (z, 1.) ] Model.Le 8.);
  m

let carried_basis () =
  let cold = get_opt (Lp.Simplex.solve (model ~demand:5. ~x_ub:6.)) in
  match cold.Status.basis with
  | Some b -> b
  | None -> Alcotest.fail "revised simplex returned no basis"

let test_rhs_perturbation_takes_dual_path () =
  let basis = carried_basis () in
  (* Raise the demand: the old optimum goes primal-infeasible but the
     reduced costs are untouched, so the dual simplex must finish it. *)
  let perturbed = model ~demand:9. ~x_ub:6. in
  let cold = get_opt (Lp.Simplex.solve perturbed) in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:basis perturbed) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective;
  let st = warm.Status.stats in
  Alcotest.(check bool)
    (Format.asprintf "dual re-opt taken (got %a)" Status.pp_warm_start_outcome
       st.Status.warm_start)
    true
    (st.Status.warm_start = Status.Dual_reopt);
  Alcotest.(check int) "zero phase-1 pivots" 0 st.Status.phase1_pivots;
  check_pivot_split warm

let test_dual_pivots_fix_bound_violation () =
  (* min x + 2y, x + y >= d, x <= 4, y <= 4. At d = 2 the optimal basis
     has x basic at 2; raising d to 6 pushes x past its upper bound, so
     the dual simplex must pivot x out and y in — at least one genuine
     dual pivot, not just a recompute. *)
  let build d =
    let m = Model.create Model.Minimize in
    let x = Model.add_var m ~obj:1. ~ub:4. () in
    let y = Model.add_var m ~obj:2. ~ub:4. () in
    ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge d);
    m
  in
  let cold0 = get_opt (Lp.Simplex.solve (build 2.)) in
  let basis = Option.get cold0.Status.basis in
  let perturbed = build 6. in
  let cold = get_opt (Lp.Simplex.solve perturbed) in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:basis perturbed) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective;
  let st = warm.Status.stats in
  Alcotest.(check bool) "dual re-opt taken" true
    (st.Status.warm_start = Status.Dual_reopt);
  Alcotest.(check int) "zero phase-1 pivots" 0 st.Status.phase1_pivots;
  Alcotest.(check bool)
    (Printf.sprintf "dual pivots did the work (%d)" st.Status.dual_pivots)
    true
    (st.Status.dual_pivots > 0);
  check_pivot_split warm

let test_bound_tightening_takes_dual_path () =
  let basis = carried_basis () in
  (* Clamp x below its optimal value: a bound move, again dual work. *)
  let perturbed = model ~demand:5. ~x_ub:1.5 in
  let cold = get_opt (Lp.Simplex.solve perturbed) in
  let warm = get_opt (Lp.Simplex.solve ~warm_start:basis perturbed) in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective;
  let st = warm.Status.stats in
  Alcotest.(check bool) "dual re-opt taken" true
    (st.Status.warm_start = Status.Dual_reopt);
  Alcotest.(check int) "zero phase-1 pivots" 0 st.Status.phase1_pivots;
  check_pivot_split warm

let test_dual_reopt_flag_forces_primal () =
  let basis = carried_basis () in
  let perturbed = model ~demand:9. ~x_ub:6. in
  let cold = get_opt (Lp.Simplex.solve perturbed) in
  let warm =
    get_opt (Lp.Simplex.solve ~warm_start:basis ~dual_reopt:false perturbed)
  in
  Alcotest.(check (float 1e-9))
    "same objective" cold.Status.objective warm.Status.objective;
  let st = warm.Status.stats in
  Alcotest.(check bool) "primal warm path taken" true
    (match st.Status.warm_start with
     | Status.Warm_accepted _ | Status.Warm_fell_back -> true
     | Status.No_warm_start | Status.Dual_reopt -> false);
  Alcotest.(check int) "no dual pivots on the primal path" 0
    st.Status.dual_pivots

let test_infeasible_after_perturbation () =
  (* Tighten until the program is infeasible: the dual path must not
     invent a verdict — the primal fallback certifies Infeasible. *)
  let basis = carried_basis () in
  let impossible = model ~demand:50. ~x_ub:6. in
  Alcotest.(check bool) "still infeasible from a carried basis" true
    (Lp.Simplex.solve ~warm_start:basis impossible = Status.Infeasible)

(* ------------------------------------------------------------------ *)
(* Property: on randomized multi-slot online instances the dual-warm
   pipeline agrees with the cold one everywhere, and every solve that
   reports [Dual_reopt] spent zero phase-1 pivots. *)

(* [outage] kills one link's residual capacity from slot [cut] on — the
   mid-run RHS shock the dual path exists for. *)
let replay_instance ~seed ~nodes ~slots ~files_max ~outage =
  let rng = Prelude.Rng.of_int (seed + 1) in
  let base =
    Netgraph.Topology.complete ~n:nodes ~rng ~cost_lo:1. ~cost_hi:10.
      ~capacity:30.
  in
  let dead_link, cut =
    match outage with
    | Some cut -> (Prelude.Rng.int rng (Graph.num_arcs base), cut)
    | None -> (-1, max_int)
  in
  let spec =
    { (Sim.Workload.paper_spec ~nodes ~files_max ~max_deadline:3) with
      Sim.Workload.size_min = 2.;
      size_max = 15.;
      deadlines = Sim.Workload.Uniform_deadline (2, 3) }
  in
  let workload = Sim.Workload.create spec (Prelude.Rng.of_int seed) in
  let ledger = Sim.Ledger.create ~base in
  let carried = ref None in
  let ok = ref true in
  for slot = 0 to slots - 1 do
    let files = Sim.Workload.arrivals workload ~slot in
    if files <> [] then begin
      let capacity ~link ~layer =
        if link = dead_link && slot + layer >= cut then 0.
        else Sim.Ledger.residual ledger ~link ~slot:(slot + layer)
      in
      let make () =
        Formulate.create ~base
          ~charged:(Sim.Ledger.charged_all ledger)
          ~capacity ~files ~epoch:slot ()
      in
      let cold, _ = Formulate.solve_with_info (make ()) in
      let warm, warm_info =
        Formulate.solve_with_info ?warm_start:!carried (make ())
      in
      let st = warm_info.Formulate.stats in
      if
        st.Status.warm_start = Status.Dual_reopt
        && st.Status.phase1_pivots > 0
      then ok := false;
      if
        warm_info.Formulate.iterations
        <> st.Status.phase1_pivots + st.Status.phase2_pivots
           + st.Status.dual_pivots
      then ok := false;
      (match (cold, warm) with
       | ( Formulate.Scheduled { objective = co; plan; _ },
           Formulate.Scheduled { objective = wo; _ } ) ->
           if abs_float (co -. wo) > 1e-6 then ok := false;
           Sim.Ledger.commit_plan ledger plan
       | Formulate.Infeasible, Formulate.Infeasible -> ()
       | _ -> ok := false);
      carried := warm_info.Formulate.basis
    end
  done;
  !ok

let gen_instance =
  Gen.(
    let* seed = int_range 0 9999 in
    let* nodes = int_range 3 5 in
    let* slots = int_range 2 4 in
    let* files_max = int_range 1 3 in
    return (seed, nodes, slots, files_max))

let prop_dual_equals_cold =
  QCheck2.Test.make ~name:"dual re-opt objective = cold objective per epoch"
    ~count:40 gen_instance (fun (seed, nodes, slots, files_max) ->
      replay_instance ~seed ~nodes ~slots ~files_max ~outage:None)

let prop_dual_equals_cold_under_outage =
  QCheck2.Test.make
    ~name:"dual re-opt survives a mid-run link outage" ~count:40 gen_instance
    (fun (seed, nodes, slots, files_max) ->
      replay_instance ~seed ~nodes ~slots ~files_max
        ~outage:(Some (max 1 (slots / 2))))

(* ------------------------------------------------------------------ *)
(* Post-strand re-plan through the real engine: a revealed outage
   strands bytes mid-run, the engine re-offers them, and the scheduler's
   re-solve must keep the carried basis dual-feasible. Verified from the
   trace, the same channel the trace-summary reads. *)

let test_post_strand_replan_keeps_dual_basis () =
  (* A 12 GB file over the cheap capacity-5 direct link needs three of
     the four slots, so an outage covering slots 1..3 strands bytes no
     matter how the optimal plan placed them; the expensive relay
     0 -> 2 -> 1 keeps the re-offer feasible. *)
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:5. ~cost:1. ());
  ignore (Graph.add_arc g ~src:0 ~dst:2 ~capacity:10. ~cost:3. ());
  ignore (Graph.add_arc g ~src:2 ~dst:1 ~capacity:10. ~cost:3. ());
  let faults =
    match Sim.Faults.parse "link:0-1@1..3" with
    | Ok sc -> sc
    | Error msg -> Alcotest.failf "bad fault spec: %s" msg
  in
  let workload =
    Sim.Workload.scripted
      [ File.make ~id:0 ~src:0 ~dst:1 ~size:12. ~deadline:4 ~release:0 ]
  in
  let outcome = ref None in
  let lines = ref [] in
  Trace.set_callback (fun line -> lines := line :: !lines);
  Fun.protect ~finally:Trace.close (fun () ->
      outcome :=
        Some
          (Sim.Engine.(
             run
               (make ~base:g
                  ~scheduler:(Postcard.Postcard_scheduler.make ())
                  ~workload ~slots:4 ~faults ()))));
  let outcome = Option.get !outcome in
  Alcotest.(check bool) "the outage stranded and re-planned a file" true
    (outcome.Sim.Engine.replanned_files >= 1);
  let solves =
    List.rev !lines
    |> List.filter_map (fun line ->
           match Reader.of_line line with
           | Error msg -> Alcotest.failf "invalid trace line: %s" msg
           | Ok ev ->
               if ev.Reader.kind = Reader.Point && ev.Reader.name = "lp.solve"
               then Some ev
               else None)
  in
  Alcotest.(check int) "two solves: admission, then the re-plan" 2
    (List.length solves);
  let replan = List.nth solves 1 in
  Alcotest.(check (option string)) "re-plan re-optimized via the dual simplex"
    (Some "dual_reopt")
    (Reader.str_field replan "warm");
  Alcotest.(check (option int)) "zero phase-1 pivots on the re-plan" (Some 0)
    (Reader.int_field replan "phase1_pivots");
  Alcotest.(check (option int)) "zero repair rounds on the re-plan" (Some 0)
    (Reader.int_field replan "repair_rounds")

(* ------------------------------------------------------------------ *)
(* The bench aggregates are recomputed from per-slot records; tampering
   with either side must be caught (satellite of the warm_accepted:0
   defect). *)

let test_bench_reconcile_detects_tampering () =
  let summary = Sim.Solver_bench.run ~nodes:4 ~slots:4 ~seed:7 () in
  (match Sim.Solver_bench.reconcile summary with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "honest summary failed to reconcile: %s" msg);
  let tampered =
    { summary with
      Sim.Solver_bench.warm_accepted = summary.Sim.Solver_bench.warm_accepted + 1
    }
  in
  Alcotest.(check bool) "inflated warm_accepted is caught" true
    (Result.is_error (Sim.Solver_bench.reconcile tampered));
  let zeroed = { summary with Sim.Solver_bench.dual_reopts = 0 } in
  Alcotest.(check bool) "zeroed dual_reopts is caught" true
    (summary.Sim.Solver_bench.dual_reopts = 0
    || Result.is_error (Sim.Solver_bench.reconcile zeroed))

let suite =
  [ Alcotest.test_case "RHS perturbation takes the dual path" `Quick
      test_rhs_perturbation_takes_dual_path;
    Alcotest.test_case "bound tightening takes the dual path" `Quick
      test_bound_tightening_takes_dual_path;
    Alcotest.test_case "dual pivots fix a bound violation" `Quick
      test_dual_pivots_fix_bound_violation;
    Alcotest.test_case "~dual_reopt:false forces the primal path" `Quick
      test_dual_reopt_flag_forces_primal;
    Alcotest.test_case "infeasible verdict survives the dual path" `Quick
      test_infeasible_after_perturbation;
    Alcotest.test_case "post-strand re-plan keeps a dual-feasible basis"
      `Quick test_post_strand_replan_keeps_dual_basis;
    Alcotest.test_case "bench reconcile detects tampering" `Quick
      test_bench_reconcile_detects_tampering;
    to_alcotest prop_dual_equals_cold;
    to_alcotest prop_dual_equals_cold_under_outage ]
