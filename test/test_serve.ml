(* The serving layer, tested without a socket in sight: protocol codec
   round-trips (requests and events, floats bit-exact) and the request
   lifecycle through the transport-free session state machine. *)

module Protocol = Serve.Protocol
module Session = Serve.Session

let scheduler name =
  match Postcard.Scheduler.make name with
  | Some s -> s
  | None -> Alcotest.failf "scheduler %s not registered" name

(* {1 Codec round-trips} *)

let requests : Protocol.request list =
  [ Protocol.Submit { src = 0; dst = 4; size = 12.5; deadline = 3 };
    Protocol.Submit
      { src = 2; dst = 1; size = 0.30000000000000004; deadline = 1 };
    Protocol.Tick;
    Protocol.Status;
    Protocol.Scrape Protocol.Scrape_json;
    Protocol.Scrape Protocol.Scrape_prom;
    Protocol.Stop;
    Protocol.Quit ]

let events : Protocol.event list =
  [ Protocol.Hello { version = Protocol.version; nodes = 6; slots = 64;
                     clock = "turbo" };
    Protocol.Queued { id = 0; slot = 3 };
    Protocol.Accepted { id = 1; slot = 4 };
    Protocol.Rejected { id = 2; slot = 4 };
    Protocol.Completed { id = 1; slot = 9 };
    Protocol.Stranded { id = 3; slot = 5 };
    Protocol.Recovered { id = 3; slot = 5 };
    Protocol.Lost { id = 4; slot = 6 };
    Protocol.Slot { slot = 4; arrivals = 7; admitted = 6; rejected = 1;
                    cost = 123.45600000000002 };
    Protocol.Status_report
      { slot = 5; slots = 64; pending = 2; in_flight = 3; offered_files = 40;
        rejected_files = 1; lost_files = 0; offered_bytes = 812.25;
        delivered_bytes = 640.5; cost = 55.5 };
    Protocol.Scrape_report
      (Obs.Json.Obj
         [ ("counters", Obs.Json.Obj [ ("sim.slots", Obs.Json.Int 64) ]);
           ("labels", Obs.Json.List [ Obs.Json.Str "a"; Obs.Json.Null ]) ]);
    Protocol.Session_end
      { slot = 64; offered_bytes = 1000.; delivered_bytes = 900.0001;
        rejected_bytes = 99.9999; lost_bytes = 0.; cost = 77.7 };
    Protocol.Error "src 9 outside [0, 6)";
    Protocol.Bye ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let line = Protocol.request_to_line r in
      Alcotest.(check bool)
        (Printf.sprintf "no newline in %S" line)
        false
        (String.contains line '\n');
      match Protocol.request_of_line (line ^ "\n") with
      | Error msg -> Alcotest.failf "decode %S: %s" line msg
      | Ok r' ->
          Alcotest.(check bool) (Printf.sprintf "round-trip %S" line) true
            (r = r'))
    requests

let test_event_roundtrip () =
  List.iter
    (fun e ->
      let line = Protocol.event_to_line e in
      match Protocol.event_of_line line with
      | Error msg -> Alcotest.failf "decode %S: %s" line msg
      | Ok e' ->
          Alcotest.(check bool) (Printf.sprintf "round-trip %S" line) true
            (e = e'))
    events

let test_codec_rejects_garbage () =
  let bad decode line =
    match decode line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted garbage %S" line
  in
  bad Protocol.request_of_line "not json";
  bad Protocol.request_of_line {|{"op":"launch_missiles"}|};
  bad Protocol.request_of_line {|{"ev":"hello"}|};
  bad Protocol.request_of_line {|{"op":"submit","src":0}|};
  bad Protocol.event_of_line {|{"ev":"warp"}|};
  bad Protocol.event_of_line {|{"op":"tick"}|};
  bad Protocol.event_of_line "[1,2,3]"

(* {1 Session lifecycle} *)

let make_session ?(clock = "manual") ?(slots = 4) () =
  let base =
    Netgraph.Topology.complete ~n:3 ~rng:(Prelude.Rng.of_int 1) ~cost_lo:1.
      ~cost_hi:10. ~capacity:10.
  in
  Session.create ~base ~scheduler:(scheduler "direct") ~slots ~clock ()

let submit ~src ~dst ~size ~deadline =
  Protocol.request_to_line
    (Protocol.Submit { src; dst; size; deadline })

let fail_effects what effects =
  Alcotest.failf "%s: unexpected effects (%d)" what (List.length effects)

(* A rejected and an accepted transfer side by side: the oversized file
   cannot fit a 10-capacity link within deadline 1; the feasible one is
   admitted, paced over two slots, completed, and the session-end totals
   reconcile byte-for-byte. *)
let test_rejected_then_completed () =
  let s = make_session () in
  let me = 7 in
  (match Session.connect s me with
  | [ Session.Send (c, Protocol.Hello { version; nodes; slots; clock }) ] ->
      Alcotest.(check int) "hello to me" me c;
      Alcotest.(check int) "version" Protocol.version version;
      Alcotest.(check int) "nodes" 3 nodes;
      Alcotest.(check int) "slots" 4 slots;
      Alcotest.(check string) "clock" "manual" clock
  | effects -> fail_effects "connect" effects);
  (match Session.on_line s me (submit ~src:0 ~dst:1 ~size:50. ~deadline:1) with
  | [ Session.Send (c, Protocol.Queued { id; slot }) ] ->
      Alcotest.(check int) "ack to me" me c;
      Alcotest.(check int) "first id" 0 id;
      Alcotest.(check int) "offered at next slot" 0 slot
  | effects -> fail_effects "oversized submit" effects);
  (match Session.on_line s me (submit ~src:0 ~dst:1 ~size:5. ~deadline:2) with
  | [ Session.Send (_, Protocol.Queued { id; slot }) ] ->
      Alcotest.(check int) "second id" 1 id;
      Alcotest.(check int) "same batch" 0 slot
  | effects -> fail_effects "feasible submit" effects);
  (* Slot 0: the batch is offered; direct spreads the feasible file at
     rate 2.5 over slots 0-1, so it is not yet complete. *)
  (match Session.on_line s me (Protocol.request_to_line Protocol.Tick) with
  | [ Session.Send (_, Protocol.Accepted { id = 1; slot = 0 });
      Session.Send (_, Protocol.Rejected { id = 0; slot = 0 });
      Session.Broadcast
        (Protocol.Slot { slot = 0; arrivals = 2; admitted = 1; rejected = 1; _ })
    ] ->
      ()
  | effects -> fail_effects "tick 0" effects);
  (* Slot 1: the tail of the plan flows; the file completes. *)
  (match Session.tick s with
  | [ Session.Send (c, Protocol.Completed { id = 1; slot = 1 });
      Session.Broadcast
        (Protocol.Slot { slot = 1; arrivals = 0; admitted = 0; rejected = 0; _ })
    ] ->
      Alcotest.(check int) "completion to owner" me c
  | effects -> fail_effects "tick 1" effects);
  (* Early stop: session-end byte totals must decompose exactly. *)
  (match Session.on_line s me (Protocol.request_to_line Protocol.Stop) with
  | [ Session.Broadcast
        (Protocol.Session_end
           { offered_bytes; delivered_bytes; rejected_bytes; lost_bytes; _ });
      Session.End_session ] ->
      Alcotest.(check (float 1e-9)) "offered" 55. offered_bytes;
      Alcotest.(check (float 1e-9)) "delivered" 5. delivered_bytes;
      Alcotest.(check (float 1e-9)) "rejected" 50. rejected_bytes;
      Alcotest.(check (float 1e-9)) "lost" 0. lost_bytes;
      Alcotest.(check (float 1e-9)) "offered = delivered + rejected + lost"
        offered_bytes
        (delivered_bytes +. rejected_bytes +. lost_bytes)
  | effects -> fail_effects "stop" effects);
  Alcotest.(check bool) "ended" true (Session.ended s);
  Alcotest.(check bool) "stop idempotent" true (Session.stop s = []);
  (* The capture holds both submissions, replayable through
     [postcard_sim custom --workload]. *)
  (match Session.capture s with
  | [ a; b ] ->
      Alcotest.(check int) "capture order" 0 Postcard.File.(a.id);
      Alcotest.(check int) "capture order" 1 Postcard.File.(b.id);
      Alcotest.(check (float 0.)) "capture size" 5. Postcard.File.(b.size)
  | files -> Alcotest.failf "capture has %d files" (List.length files))

let test_submit_validation () =
  let s = make_session () in
  ignore (Session.connect s 1);
  let expect_error what line =
    match Session.on_line s 1 line with
    | [ Session.Send (1, Protocol.Error _) ] -> ()
    | effects -> fail_effects what effects
  in
  expect_error "src out of range" (submit ~src:3 ~dst:0 ~size:1. ~deadline:1);
  expect_error "negative dst" (submit ~src:0 ~dst:(-1) ~size:1. ~deadline:1);
  expect_error "src = dst" (submit ~src:2 ~dst:2 ~size:1. ~deadline:1);
  expect_error "non-positive size" (submit ~src:0 ~dst:1 ~size:0. ~deadline:1);
  expect_error "non-positive deadline"
    (submit ~src:0 ~dst:1 ~size:1. ~deadline:0);
  expect_error "malformed line" "}{ nope";
  (* Tick is gated on the manual clock. *)
  let turbo = make_session ~clock:"turbo" () in
  ignore (Session.connect turbo 1);
  (match Session.on_line turbo 1 (Protocol.request_to_line Protocol.Tick) with
  | [ Session.Send (1, Protocol.Error _) ] -> ()
  | effects -> fail_effects "tick under turbo clock" effects);
  (* Quit closes just that connection. *)
  match Session.on_line s 1 (Protocol.request_to_line Protocol.Quit) with
  | [ Session.Send (1, Protocol.Bye); Session.Disconnect 1 ] -> ()
  | effects -> fail_effects "quit" effects

(* Running the manual clock to the horizon ends the session on its own,
   and late submissions are refused. *)
let test_horizon_ends_session () =
  let s = make_session ~slots:2 () in
  ignore (Session.connect s 1);
  (match Session.tick s with
  | [ Session.Broadcast (Protocol.Slot { slot = 0; _ }) ] -> ()
  | effects -> fail_effects "tick 0" effects);
  (match Session.tick s with
  | [ Session.Broadcast (Protocol.Slot { slot = 1; _ });
      Session.Broadcast (Protocol.Session_end _); Session.End_session ] ->
      ()
  | effects -> fail_effects "tick 1" effects);
  Alcotest.(check bool) "ended at horizon" true (Session.ended s);
  Alcotest.(check bool) "outcome available" true
    (Session.outcome s <> None);
  match Session.on_line s 1 (submit ~src:0 ~dst:1 ~size:1. ~deadline:1) with
  | [ Session.Send (1, Protocol.Error _) ] -> ()
  | effects -> fail_effects "late submit" effects

let suite =
  [ Alcotest.test_case "request codec round-trip" `Quick
      test_request_roundtrip;
    Alcotest.test_case "event codec round-trip" `Quick test_event_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick
      test_codec_rejects_garbage;
    Alcotest.test_case "rejected then completed lifecycle" `Quick
      test_rejected_then_completed;
    Alcotest.test_case "submit validation and clock gating" `Quick
      test_submit_validation;
    Alcotest.test_case "horizon ends the session" `Quick
      test_horizon_ends_session ]
