(* The percentile-aware burst scheduler: free burst slots under q-th
   percentile billing. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Scheduler = Postcard.Scheduler

let ctx ?(period = 20) ?(occupied = fun ~link:_ ~slot:_ -> 0.) base capacity =
  { Scheduler.base;
    epoch = 0;
    period;
    charged = Array.make (Graph.num_arcs base) 0.;
    links =
      Postcard.Linkview.make
        ~residual:(fun ~link ~slot -> capacity -. occupied ~link ~slot)
        ~occupied
        ~down:(fun ~link:_ ~slot:_ -> false) }

let line () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:100. ~cost:3. ());
  g

let test_bursts_are_free () =
  (* Period 20, 90th percentile: the top 2 slots per link are free. A
     single urgent file fits entirely in one burst slot, so the 90th
     percentile bill stays zero. *)
  let base = line () in
  let scheduler = Postcard.Greedy_scheduler.make_percentile ~percentile:90. () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:50. ~deadline:1 ~release:0 ] in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (ctx base 100.) files
  in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  (* Build the period's volume series and evaluate under the scheme. *)
  let volumes = Array.make 20 0. in
  List.iter
    (fun tx -> volumes.(tx.Plan.slot) <- volumes.(tx.Plan.slot) +. tx.Plan.volume)
    plan.Plan.transmissions;
  let billed =
    Postcard.Charging.charged_volume (Postcard.Charging.scheme 90.) volumes
  in
  Alcotest.(check (float 1e-9)) "90th percentile bill is zero" 0. billed

let test_peak_mode_pays () =
  (* The same instance under the peak-aware greedy: the 100th percentile
     charge is size / deadline. *)
  let base = line () in
  let scheduler = Postcard.Greedy_scheduler.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:50. ~deadline:1 ~release:0 ] in
  let { Scheduler.plan; _ } = Scheduler.schedule scheduler (ctx base 100.) files in
  Alcotest.(check (float 1e-9)) "peak charge" 50.
    (Plan.volume_on plan ~link:0 ~slot:0)

let test_reuses_existing_burst_slot () =
  (* Slot 3 already carries a huge committed burst: the percentile
     scheduler should pile onto it rather than open a second burst slot,
     when the deadline window allows. *)
  let base = line () in
  let occupied ~link:_ ~slot = if slot = 3 then 60. else 0. in
  let scheduler = Postcard.Greedy_scheduler.make_percentile ~percentile:95. () in
  (* 95th percentile of 20 slots discards only the single top slot. *)
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:30. ~deadline:6 ~release:0 ] in
  let { Scheduler.plan; _ } =
    Scheduler.schedule scheduler (ctx ~occupied base 100.) files
  in
  (* All volume should land in slot 3 (the already-discarded burst slot). *)
  Alcotest.(check (float 1e-6)) "piled onto the burst slot" 30.
    (Plan.volume_on plan ~link:0 ~slot:3)

let test_plans_stay_valid () =
  let rng = Prelude.Rng.of_int 77 in
  for _ = 1 to 10 do
    let n = 4 + Prelude.Rng.int rng 3 in
    let base =
      Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:40.
    in
    let files =
      List.init (1 + Prelude.Rng.int rng 4) (fun id ->
          let src = Prelude.Rng.int rng n in
          let rec dst () =
            let d = Prelude.Rng.int rng n in
            if d = src then dst () else d
          in
          File.make ~id ~src ~dst:(dst ())
            ~size:(Prelude.Rng.float_range rng 5. 30.)
            ~deadline:(Prelude.Rng.int_incl rng 1 4)
            ~release:0)
    in
    let scheduler = Postcard.Greedy_scheduler.make_percentile () in
    let { Scheduler.plan; accepted; _ } =
      Scheduler.schedule scheduler (ctx ~period:30 base 40.) files
    in
    match
      Plan.validate ~base ~files:accepted
        ~capacity:(fun ~link:_ ~slot:_ -> 40.)
        plan
    with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg
  done

let test_end_to_end_beats_peak_under_95 () =
  (* Full engine runs: under 95th percentile *evaluation*, the burst-aware
     scheduler should not be worse than the peak-aware greedy. *)
  let rng = Prelude.Rng.of_int 5150 in
  let base =
    Netgraph.Topology.complete ~n:5 ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:40.
  in
  let spec =
    { (Sim.Workload.paper_spec ~nodes:5 ~files_max:3 ~max_deadline:4) with
      Sim.Workload.size_min = 5.;
      size_max = 25.;
      deadlines = Sim.Workload.Uniform_deadline (1, 4) }
  in
  let slots = 40 in
  let run scheduler =
    let workload = Sim.Workload.create spec (Prelude.Rng.of_int 31415) in
    let outcome =
      Sim.Engine.(run (make ~base ~scheduler ~workload ~slots ()))
    in
    Sim.Engine.evaluate_cost outcome ~scheme:(Postcard.Charging.scheme 95.)
      ~base
  in
  let peak_cost = run (Postcard.Greedy_scheduler.make ()) in
  let burst_cost = run (Postcard.Greedy_scheduler.make_percentile ()) in
  Alcotest.(check bool)
    (Printf.sprintf "burst %.1f <= peak %.1f under 95th-percentile billing"
       burst_cost peak_cost)
    true
    (burst_cost <= peak_cost +. 1e-6)

let suite =
  [ Alcotest.test_case "bursts are free" `Quick test_bursts_are_free;
    Alcotest.test_case "peak mode pays" `Quick test_peak_mode_pays;
    Alcotest.test_case "reuses burst slot" `Quick test_reuses_existing_burst_slot;
    Alcotest.test_case "plans stay valid" `Quick test_plans_stay_valid;
    Alcotest.test_case "beats peak under 95th" `Quick test_end_to_end_beats_peak_under_95 ]
