(* The combinatorial admission tier and the tiered combinator: ALAP
   deadline guarantees, free-first filling, fast/fallback composition,
   registry probing, and ledger consistency under commit + strand +
   re-offer storms. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Scheduler = Postcard.Scheduler
module Ledger = Postcard.Ledger_scheduler
module Linkview = Postcard.Linkview

let ctx ?(epoch = 0) ?(period = 100) ?(charged_value = 0.) base =
  { Scheduler.base;
    epoch;
    period;
    charged = Array.make (Graph.num_arcs base) charged_value;
    links = Linkview.of_capacity ~base }

let line ~capacity ~cost =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity ~cost ());
  g

let validate_or_fail ~base ~files ~capacity plan =
  match Plan.validate ~base ~files ~capacity:(fun ~link:_ ~slot:_ -> capacity) plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* The ledger tier in isolation. *)

let test_alap_places_late () =
  (* One link, capacity 10, peak already charged at 5: a size-5
     deadline-3 file fits inside the free headroom of any single slot,
     and free volume is placed as late as possible. *)
  let base = line ~capacity:10. ~cost:2. in
  let scheduler = Ledger.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:5. ~deadline:3 ~release:0 ] in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (ctx ~charged_value:5. base) files
  in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  Alcotest.(check (float 1e-9)) "everything in the last slot" 5.
    (Plan.volume_on plan ~link:0 ~slot:2);
  Alcotest.(check (float 1e-9)) "earlier slots untouched" 0.
    (Plan.volume_on plan ~link:0 ~slot:0 +. Plan.volume_on plan ~link:0 ~slot:1)

let test_paid_volume_is_leveled () =
  (* Paid volume is billed by the link's peak slot usage, so bursting a
     size-10 deadline-3 file into one slot would charge a peak of 10;
     the water-fill spreads it to 10/3 per slot instead. *)
  let base = line ~capacity:10. ~cost:2. in
  let scheduler = Ledger.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:10. ~deadline:3 ~release:0 ] in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (ctx base) files
  in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  Alcotest.(check (float 1e-9)) "all volume moved" 10.
    (Plan.total_transmitted plan);
  for slot = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d stays at the water level" slot)
      true
      (Plan.volume_on plan ~link:0 ~slot <= (10. /. 3.) +. 1e-4)
  done

let test_free_first_rides_charged_peak () =
  (* The link's peak is already charged at 5: a size-15 deadline-3 file
     fits entirely inside the free headroom (5 per slot), so no slot may
     exceed the paid-for peak. *)
  let base = line ~capacity:10. ~cost:5. in
  let scheduler = Ledger.make () in
  let files = [ File.make ~id:0 ~src:0 ~dst:1 ~size:15. ~deadline:3 ~release:0 ] in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (ctx ~charged_value:5. base) files
  in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  Alcotest.(check (float 1e-9)) "all volume moved" 15.
    (Plan.total_transmitted plan);
  for slot = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d stays under the charged peak" slot)
      true
      (* 1e-4 slack: the water level sits a hair above the charged peak
         so that float noise never strands the last sliver of a fill. *)
      (Plan.volume_on plan ~link:0 ~slot <= 5. +. 1e-4)
  done

let random_instance rng =
  let n = 4 + Prelude.Rng.int rng 3 in
  let base =
    Netgraph.Topology.complete ~n ~rng ~cost_lo:1. ~cost_hi:10. ~capacity:40.
  in
  let files =
    List.init (1 + Prelude.Rng.int rng 5) (fun id ->
        let src = Prelude.Rng.int rng n in
        let rec dst () =
          let d = Prelude.Rng.int rng n in
          if d = src then dst () else d
        in
        File.make ~id ~src ~dst:(dst ())
          ~size:(Prelude.Rng.float_range rng 5. 30.)
          ~deadline:(Prelude.Rng.int_incl rng 1 4)
          ~release:0)
  in
  (base, files)

let test_alap_deadline_guarantee () =
  (* The tier's core promise: whatever it admits is a valid slot-accurate
     store-and-forward schedule meeting every deadline under the booked
     ledgers — on random instances, batch after batch. *)
  let rng = Prelude.Rng.of_int 4242 in
  let scheduler = Ledger.make () in
  for trial = 1 to 25 do
    let base, files = random_instance rng in
    let { Scheduler.plan; accepted; rejected } =
      Scheduler.schedule scheduler (ctx base) files
    in
    Alcotest.(check int)
      (Printf.sprintf "trial %d: accepted + rejected = offered" trial)
      (List.length files)
      (List.length accepted + List.length rejected);
    (match
       Plan.validate ~base ~files:accepted
         ~capacity:(fun ~link:_ ~slot:_ -> 40.)
         plan
     with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "trial %d: %s" trial msg)
  done

let test_admit_agrees_with_schedule () =
  (* The capability contract on singleton batches, beyond the registry's
     single probe: same verdict, same moved volume. *)
  let rng = Prelude.Rng.of_int 7777 in
  let scheduler = Ledger.make () in
  let admit =
    match Scheduler.admit scheduler with
    | Some f -> f
    | None -> Alcotest.fail "ledger must expose the admit capability"
  in
  for trial = 1 to 25 do
    let base, files = random_instance rng in
    let file = List.hd files in
    let verdict = admit (ctx base) file in
    let { Scheduler.plan; accepted; _ } =
      Scheduler.schedule scheduler (ctx base) [ file ]
    in
    match (verdict, accepted) with
    | Scheduler.Denied, [] -> ()
    | Scheduler.Admitted p, [ _ ] ->
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "trial %d: same volume" trial)
          (Plan.total_transmitted plan)
          (Plan.total_transmitted p)
    | Scheduler.Denied, _ ->
        Alcotest.failf "trial %d: admit denied, schedule accepted" trial
    | Scheduler.Admitted _, _ ->
        Alcotest.failf "trial %d: admit accepted, schedule denied" trial
  done

(* ------------------------------------------------------------------ *)
(* The tiered combinator. *)

(* Two parallel arcs of capacity 5 and 1: a size-6 deadline-1 file needs
   the exact 5 + 1 split. The ledger's equal-chunk splitting can only
   move quarters (1.5 each), so once the big arc holds three chunks
   neither arc fits the fourth; the LP's fractional split saves it. *)
let split_graph () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:5. ~cost:1. ());
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:1. ~cost:2. ());
  g

let split_file () = File.make ~id:0 ~src:0 ~dst:1 ~size:6. ~deadline:1 ~release:0

let test_fallback_catches_ledger_denial () =
  let base = split_graph () in
  let files = [ split_file () ] in
  (* The fast tier alone rejects... *)
  let { Scheduler.rejected; _ } =
    Scheduler.schedule (Ledger.make ()) (ctx base) files
  in
  Alcotest.(check int) "ledger alone rejects the split file" 1
    (List.length rejected);
  (* ...the tiered scheduler saves it through the LP. *)
  let tiered =
    Scheduler.tiered ~fast:(Ledger.make ())
      ~fallback:(Postcard.Postcard_scheduler.make ())
      ()
  in
  Alcotest.(check string) "default combinator name" "ledger+postcard"
    (Scheduler.name tiered);
  let { Scheduler.plan; accepted; rejected } =
    Scheduler.schedule tiered (ctx base) files
  in
  Alcotest.(check int) "tiered accepts" 1 (List.length accepted);
  Alcotest.(check int) "tiered rejects none" 0 (List.length rejected);
  match
    Plan.validate ~base ~files
      ~capacity:(fun ~link ~slot:_ -> if link = 0 then 5. else 1.)
      plan
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_high_value_routes_to_fallback () =
  (* A file the fast tier would happily admit still goes to the LP when
     the policy marks it high-value. *)
  let base = line ~capacity:10. ~cost:1. in
  let lp = Postcard.Postcard_scheduler.make () in
  let seen = ref [] in
  let recorder =
    Scheduler.stateless ~name:"recorder" ~fluid:false (fun c fs ->
        seen := List.map (fun f -> f.File.id) fs @ !seen;
        Scheduler.schedule lp c fs)
  in
  let tiered =
    Scheduler.tiered ~fast:(Ledger.make ()) ~fallback:recorder
      ~high_value:(fun f -> f.File.size >= 8.)
      ()
  in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0;
      File.make ~id:1 ~src:0 ~dst:1 ~size:2. ~deadline:3 ~release:0 ]
  in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule tiered (ctx base) files
  in
  Alcotest.(check int) "both accepted" 2 (List.length accepted);
  Alcotest.(check (list int)) "only the big file hit the fallback" [ 0 ] !seen;
  validate_or_fail ~base ~files ~capacity:10. plan

let test_tiered_requires_fast_admit () =
  (* The postcard LP is batch-only: it cannot serve as the fast tier. *)
  match
    Scheduler.tiered
      ~fast:(Postcard.Postcard_scheduler.make ())
      ~fallback:(Ledger.make ())
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an admit-less fast tier"

(* ------------------------------------------------------------------ *)
(* Registry probing and health. *)

let test_register_rejects_probe_disagreement () =
  (* A scheduler whose admit denies what its schedule accepts must be
     turned away at registration. *)
  let liar () =
    Scheduler.create ~name:"probe-liar" ~fluid:false
      ~admit:(fun _ _ -> Scheduler.Denied)
      (fun _ files -> { Scheduler.plan = Plan.empty; accepted = files; rejected = [] })
  in
  match Scheduler.register ~name:"probe-liar-test" liar with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for a disagreeing probe"

let test_register_rejects_raising_factory () =
  match
    Scheduler.register ~name:"raising-test" (fun () ->
        failwith "constructor boom")
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument for a raising factory"

let test_make_all_surfaces_broken_factory () =
  (* A factory can pass its registration probe and still fail later (it
     is stateful): make_all must report it as Error, not crash. *)
  let broken = ref false in
  Scheduler.register ~name:"flaky-test"
    ~doc:"test-only factory that can be poisoned" (fun () ->
      if !broken then failwith "flaky boom"
      else Postcard.Direct_scheduler.make ());
  broken := true;
  (match Scheduler.make_all () with
   | Ok _ -> Alcotest.fail "expected Error from the poisoned factory"
   | Error errs ->
       Alcotest.(check bool) "the broken factory is named" true
         (List.exists
            (fun e ->
              let has sub =
                let rec go i =
                  i + String.length sub <= String.length e
                  && (String.sub e i (String.length sub) = sub || go (i + 1))
                in
                go 0
              in
              has "flaky-test")
            errs));
  (* Un-poison so later registry-wide tests see a healthy registry. *)
  broken := false;
  match Scheduler.make_all () with
  | Ok _ -> ()
  | Error errs ->
      Alcotest.failf "registry still broken: %s" (String.concat "; " errs)

(* ------------------------------------------------------------------ *)
(* Ledger consistency under commit + strand + re-offer storms, with the
   per-request offer path interleaved. *)

let test_storm_reconciliation () =
  let rng = Prelude.Rng.of_int 31337 in
  (* A single shared link: every booking lands on it, and ALAP placement
     pushes volume late — straight into the outage window. *)
  let base = line ~capacity:30. ~cost:2. in
  let spec =
    { (Sim.Workload.paper_spec ~nodes:2 ~files_max:2 ~max_deadline:4) with
      Sim.Workload.size_min = 5.;
      size_max = 20.;
      deadlines = Sim.Workload.Uniform_deadline (2, 4) }
  in
  let workload = Sim.Workload.create spec (Prelude.Rng.of_int 99) in
  let faults =
    match Sim.Faults.parse "link:0-1@4..5" with
    | Ok sc -> sc
    | Error msg -> Alcotest.fail msg
  in
  let slots = 8 in
  let cfg =
    Sim.Engine.make ~base
      ~scheduler:(Scheduler.make_exn "postcard-tiered")
      ~workload ~slots ~faults ()
  in
  let t = Sim.Engine.init cfg in
  let offers_decided = ref 0 in
  for slot = 0 to slots - 1 do
    (* A couple of per-request offers squeeze in before each batch step:
       they commit (or bounce) against the same ledgers. *)
    if slot mod 2 = 0 then begin
      let f =
        File.make ~id:(1000 + slot) ~src:0 ~dst:1
          ~size:(Prelude.Rng.float_range rng 4. 12.)
          ~deadline:3 ~release:slot
      in
      match Sim.Engine.offer t f with
      | None -> Alcotest.fail "tiered must expose the offer fast path"
      | Some _ -> incr offers_decided
    end;
    ignore (Sim.Engine.step t ~arrivals:(Sim.Workload.arrivals workload ~slot))
  done;
  let outcome = Sim.Engine.drain t in
  Alcotest.(check int) "every interleaved offer was decided" 4 !offers_decided;
  Alcotest.(check bool) "the storm actually stranded something" true
    (outcome.Sim.Engine.stranded_volume > 0.);
  (* The books must balance exactly, strands and re-offers included. *)
  Alcotest.(check (float 1e-6)) "delivered + lost + rejected = offered"
    outcome.Sim.Engine.offered_volume
    (outcome.Sim.Engine.delivered_volume +. outcome.Sim.Engine.lost_volume
    +. outcome.Sim.Engine.rejected_volume);
  (* And the final cost point prices exactly the final charged peaks. *)
  let expected_cost =
    Graph.fold_arcs base ~init:0. ~f:(fun acc a ->
        acc +. (a.Graph.cost *. outcome.Sim.Engine.final_charged.(a.Graph.id)))
  in
  Alcotest.(check (float 1e-6)) "cost series reconciles with charges"
    expected_cost
    outcome.Sim.Engine.cost_series.(slots - 1)

(* ------------------------------------------------------------------ *)
(* Bit-identical tiered sweeps, serial vs parallel. *)

let test_tiered_parallel_bit_identical () =
  let setting =
    Sim.Experiment.with_overrides ~label:"tier-test" ~nodes:5 ~capacity:25.
      ~files_max:2 ~slots:6 ~runs:2 ~seed:11
      Sim.Experiment.custom_default
  in
  let schedulers =
    [ Option.get (Scheduler.factory "postcard-tiered");
      Option.get (Scheduler.factory "ledger") ]
  in
  let serial = Sim.Experiment.run_setting setting ~schedulers in
  let pool = Exec.Pool.create ~domains:4 () in
  let par =
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () -> Sim.Experiment.run_setting ~pool setting ~schedulers)
  in
  (* Wall-clock decision latency is the one legitimately nondeterministic
     field; everything else must match to the bit. *)
  let strip (s : Sim.Experiment.scheduler_summary) =
    { s with Sim.Experiment.mean_decision_ms = 0. }
  in
  Alcotest.(check bool) "-j 1 and -j 4 tiered cells bit-identical" true
    (List.map strip serial.Sim.Experiment.summaries
    = List.map strip par.Sim.Experiment.summaries)

let suite =
  [ Alcotest.test_case "ledger: ALAP places late" `Quick test_alap_places_late;
    Alcotest.test_case "ledger: paid volume is leveled" `Quick
      test_paid_volume_is_leveled;
    Alcotest.test_case "ledger: free-first rides charged peak" `Quick
      test_free_first_rides_charged_peak;
    Alcotest.test_case "ledger: deadline guarantee x25" `Quick
      test_alap_deadline_guarantee;
    Alcotest.test_case "ledger: admit agrees with schedule x25" `Quick
      test_admit_agrees_with_schedule;
    Alcotest.test_case "tiered: fallback catches ledger denial" `Quick
      test_fallback_catches_ledger_denial;
    Alcotest.test_case "tiered: high-value routes to fallback" `Quick
      test_high_value_routes_to_fallback;
    Alcotest.test_case "tiered: requires an admit-capable fast tier" `Quick
      test_tiered_requires_fast_admit;
    Alcotest.test_case "registry: probe rejects disagreement" `Quick
      test_register_rejects_probe_disagreement;
    Alcotest.test_case "registry: probe rejects raising factory" `Quick
      test_register_rejects_raising_factory;
    Alcotest.test_case "registry: make_all surfaces broken factory" `Quick
      test_make_all_surfaces_broken_factory;
    Alcotest.test_case "storm: ledgers reconcile through strands + offers"
      `Quick test_storm_reconciliation;
    Alcotest.test_case "tiered: -j 1 and -j 4 bit-identical" `Quick
      test_tiered_parallel_bit_identical ]
