(* Scheduler-level behaviour: admission control, context plumbing, and the
   flow baseline's static model. *)

module Graph = Netgraph.Graph
module File = Postcard.File
module Plan = Postcard.Plan
module Scheduler = Postcard.Scheduler
module Flow = Postcard.Flow_baseline

let simple_ctx ?(charged_value = 0.) base capacity =
  { Scheduler.base;
    epoch = 0;
    period = 100;
    charged = Array.make (Graph.num_arcs base) charged_value;
    links =
      Postcard.Linkview.make
        ~residual:(fun ~link:_ ~slot:_ -> capacity)
        ~occupied:(fun ~link:_ ~slot:_ -> 0.)
        ~down:(fun ~link:_ ~slot:_ -> false) }

let line_graph () =
  let g = Graph.create ~n:2 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:2. ());
  g

let test_admit_greedy_drops_hardest () =
  let f1 = File.make ~id:0 ~src:0 ~dst:1 ~size:10. ~deadline:1 ~release:0 in
  let f2 = File.make ~id:1 ~src:0 ~dst:1 ~size:6. ~deadline:3 ~release:0 in
  let f3 = File.make ~id:2 ~src:0 ~dst:1 ~size:30. ~deadline:2 ~release:0 in
  (* Pretend only batches with total rate <= 13 fit. *)
  let try_solve subset =
    let rate = List.fold_left (fun acc f -> acc +. File.rate f) 0. subset in
    if rate <= 13. then Some rate else None
  in
  match Scheduler.admit_greedy ~files:[ f1; f2; f3 ] ~try_solve with
  | None -> Alcotest.fail "nonempty feasible subset exists"
  | Some (rate, accepted, rejected) ->
      (* f3 (rate 15) is the hardest and must go first. *)
      Alcotest.(check (list int)) "rejected ids" [ 2 ]
        (List.map (fun f -> f.File.id) rejected);
      Alcotest.(check int) "accepted" 2 (List.length accepted);
      Alcotest.(check (float 1e-9)) "solution passed through" 12. rate

let test_admit_greedy_empty_failure () =
  Alcotest.(check bool) "None when even empty fails" true
    (Scheduler.admit_greedy ~files:[] ~try_solve:(fun _ -> None) = None)

let test_postcard_scheduler_accepts () =
  let base = line_graph () in
  let scheduler = Postcard.Postcard_scheduler.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0 ]
  in
  let { Scheduler.plan; accepted; rejected } =
    Scheduler.schedule scheduler (simple_ctx base 10.) files
  in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  Alcotest.(check int) "rejected" 0 (List.length rejected);
  Alcotest.(check (float 1e-4)) "total moved" 9. (Plan.total_transmitted plan)

let test_postcard_scheduler_rejects_oversize () =
  let base = line_graph () in
  let scheduler = Postcard.Postcard_scheduler.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:9. ~deadline:3 ~release:0;
      (* This one can never fit: 50 GB in 1 slot of capacity 10. *)
      File.make ~id:1 ~src:0 ~dst:1 ~size:50. ~deadline:1 ~release:0 ]
  in
  let { Scheduler.accepted; rejected; _ } =
    Scheduler.schedule scheduler (simple_ctx base 10.) files
  in
  Alcotest.(check (list int)) "rejected oversize" [ 1 ]
    (List.map (fun f -> f.File.id) rejected);
  Alcotest.(check (list int)) "kept the rest" [ 0 ]
    (List.map (fun f -> f.File.id) accepted)

let test_postcard_scheduler_empty () =
  let base = line_graph () in
  let scheduler = Postcard.Postcard_scheduler.make () in
  let { Scheduler.plan; _ } =
    Scheduler.schedule scheduler (simple_ctx base 10.) []
  in
  Alcotest.(check (float 0.)) "empty plan" 0. (Plan.total_transmitted plan)

let test_direct_scheduler_batch_contention () =
  (* Two files sharing the same direct link: together they exceed the
     per-slot capacity at the desired rates, so the second spills into
     its window; both still fit. *)
  let base = line_graph () in
  let scheduler = Postcard.Direct_scheduler.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:16. ~deadline:2 ~release:0;
      File.make ~id:1 ~src:0 ~dst:1 ~size:4. ~deadline:4 ~release:0 ]
  in
  let { Scheduler.plan; accepted; rejected } =
    Scheduler.schedule scheduler (simple_ctx base 10.) files
  in
  Alcotest.(check int) "both accepted" 2 (List.length accepted);
  Alcotest.(check int) "none rejected" 0 (List.length rejected);
  (* Per-slot totals never exceed 10. *)
  for slot = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d within capacity" slot)
      true
      (Plan.volume_on plan ~link:0 ~slot <= 10. +. 1e-9)
  done;
  Alcotest.(check (float 1e-9)) "all volume moved" 20.
    (Plan.total_transmitted plan)

let test_direct_scheduler_rejects_missing_link () =
  let g = Graph.create ~n:3 in
  ignore (Graph.add_arc g ~src:0 ~dst:1 ~capacity:10. ~cost:1. ());
  ignore (Graph.add_arc g ~src:1 ~dst:2 ~capacity:10. ~cost:1. ());
  let scheduler = Postcard.Direct_scheduler.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:2 ~size:1. ~deadline:2 ~release:0 ]
  in
  let { Scheduler.rejected; _ } =
    Scheduler.schedule scheduler (simple_ctx g 10.) files
  in
  Alcotest.(check int) "rejected (no direct link)" 1 (List.length rejected)

let test_flow_instance_of_context () =
  let base = line_graph () in
  let ctx =
    { Scheduler.base;
      epoch = 5;
      period = 100;
      charged = [| 4. |];
      links =
        Postcard.Linkview.make
          ~residual:(fun ~link:_ ~slot -> if slot = 6 then 3. else 10.)
          ~occupied:(fun ~link:_ ~slot -> if slot = 6 then 7. else 0.)
          ~down:(fun ~link:_ ~slot:_ -> false) }
  in
  let inst = Flow.instance_of_context ctx ~horizon:3 in
  (* Worst residual over slots 5..7 is 3; peak occupancy is 7. *)
  Alcotest.(check (float 0.)) "cap" 3. inst.Flow.cap.(0);
  Alcotest.(check (float 0.)) "occ peak" 7. inst.Flow.occ_peak.(0);
  Alcotest.(check (float 0.)) "charged" 4. inst.Flow.charged.(0)

let test_flow_free_riding () =
  (* A link already charged at 6 with nothing committed: a rate-5 demand
     rides free; estimated cost stays at the charge floor. *)
  let base = line_graph () in
  let inst =
    { Flow.base;
      cap = [| 10. |];
      occ_peak = [| 0. |];
      charged = [| 6. |] }
  in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:10. ~deadline:2 ~release:0 ]
  in
  match Flow.solve_two_stage inst ~files with
  | None -> Alcotest.fail "feasible"
  | Some flows ->
      Alcotest.(check (float 1e-4)) "lambda = 1" 1. flows.Flow.lambda;
      Alcotest.(check (float 1e-4)) "no extra cost" 12. flows.Flow.estimated_cost

let test_flow_partial_free_riding () =
  (* Free headroom 2, demand rate 5: stage 1 carries 2/5 of it. *)
  let base = line_graph () in
  let inst =
    { Flow.base; cap = [| 10. |]; occ_peak = [| 0. |]; charged = [| 2. |] }
  in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:10. ~deadline:2 ~release:0 ]
  in
  match Flow.solve_two_stage inst ~files with
  | None -> Alcotest.fail "feasible"
  | Some flows ->
      Alcotest.(check (float 1e-4)) "lambda" 0.4 flows.Flow.lambda;
      (* Total rate 5, charge rises from 2 to 5: cost 2 * 5. *)
      Alcotest.(check (float 1e-4)) "cost" 10. flows.Flow.estimated_cost

let test_flow_scheduler_plan_capacity () =
  let base = line_graph () in
  let scheduler = Flow.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:12. ~deadline:3 ~release:0;
      File.make ~id:1 ~src:0 ~dst:1 ~size:8. ~deadline:2 ~release:0 ]
  in
  let { Scheduler.plan; accepted; _ } =
    Scheduler.schedule scheduler (simple_ctx base 10.) files
  in
  Alcotest.(check int) "both accepted" 2 (List.length accepted);
  (match
     Plan.validate_capacity ~base
       ~capacity:(fun ~link:_ ~slot:_ -> 10.)
       plan
   with
   | Ok () -> ()
   | Error msg -> Alcotest.fail msg);
  (* Rates 4 and 4: slot 0 and 1 carry 8, slot 2 carries 4. *)
  Alcotest.(check (float 1e-4)) "slot 0" 8. (Plan.volume_on plan ~link:0 ~slot:0);
  Alcotest.(check (float 1e-4)) "slot 2" 4. (Plan.volume_on plan ~link:0 ~slot:2)

let test_flow_scheduler_rejects_overload () =
  let base = line_graph () in
  let scheduler = Flow.make () in
  let files =
    [ File.make ~id:0 ~src:0 ~dst:1 ~size:30. ~deadline:2 ~release:0 ]
  in
  let { Scheduler.rejected; _ } =
    Scheduler.schedule scheduler (simple_ctx base 10.) files
  in
  Alcotest.(check int) "rejected" 1 (List.length rejected)

let suite =
  [ Alcotest.test_case "admit_greedy drops hardest" `Quick test_admit_greedy_drops_hardest;
    Alcotest.test_case "admit_greedy empty failure" `Quick test_admit_greedy_empty_failure;
    Alcotest.test_case "postcard accepts" `Quick test_postcard_scheduler_accepts;
    Alcotest.test_case "postcard rejects oversize" `Quick test_postcard_scheduler_rejects_oversize;
    Alcotest.test_case "postcard empty batch" `Quick test_postcard_scheduler_empty;
    Alcotest.test_case "direct batch contention" `Quick test_direct_scheduler_batch_contention;
    Alcotest.test_case "direct missing link" `Quick test_direct_scheduler_rejects_missing_link;
    Alcotest.test_case "flow instance of context" `Quick test_flow_instance_of_context;
    Alcotest.test_case "flow free riding" `Quick test_flow_free_riding;
    Alcotest.test_case "flow partial free riding" `Quick test_flow_partial_free_riding;
    Alcotest.test_case "flow plan capacity" `Quick test_flow_scheduler_plan_capacity;
    Alcotest.test_case "flow rejects overload" `Quick test_flow_scheduler_rejects_overload ]
